/**
 * @file
 * Property tests for the overload-robustness primitives: the circuit
 * breaker state machine, SLO-aware admission purity, retry-budget
 * conservation under arbitrary interleavings, decorrelated jitter
 * bounds, and the SLO attainability verdict. All pure and worker-count
 * independent — no simulator involved.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "exec/failure.h"
#include "serve/autoscaler.h"
#include "serve/latency_model.h"
#include "serve/robustness.h"

namespace tacc::serve {
namespace {

TimePoint
at(double s)
{
    return TimePoint::origin() + Duration::from_seconds(s);
}

TEST(CircuitBreaker, ClosedOpenHalfOpenClosedWalk)
{
    BreakerConfig config;
    config.failure_threshold = 3;
    config.cooldown_s = 30.0;
    config.probe_quota = 2;
    config.probe_successes = 2;
    CircuitBreaker breaker(config);

    // Closed admits; sub-threshold failure runs don't trip.
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
    EXPECT_TRUE(breaker.allow(at(0)));
    breaker.on_failure(at(1));
    breaker.on_failure(at(2));
    breaker.on_success(at(3)); // resets the consecutive count
    breaker.on_failure(at(4));
    breaker.on_failure(at(5));
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
    breaker.on_failure(at(6)); // third consecutive: trips
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    EXPECT_EQ(breaker.trips(), 1u);

    // Open sheds until the cooldown elapses.
    EXPECT_FALSE(breaker.can_allow(at(10)));
    EXPECT_FALSE(breaker.allow(at(20)));
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);

    // First allow after cooldown: half-open, one probe in flight.
    EXPECT_TRUE(breaker.can_allow(at(37)));
    EXPECT_TRUE(breaker.allow(at(37)));
    EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
    EXPECT_EQ(breaker.probes_in_flight(), 1);

    // Probe quota bounds concurrency.
    EXPECT_TRUE(breaker.allow(at(38)));
    EXPECT_EQ(breaker.probes_in_flight(), 2);
    EXPECT_FALSE(breaker.can_allow(at(38)));
    EXPECT_FALSE(breaker.allow(at(38)));

    // Enough probe successes close it again.
    breaker.on_success(at(39));
    EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
    EXPECT_EQ(breaker.probes_in_flight(), 1);
    breaker.on_success(at(40));
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
    EXPECT_TRUE(breaker.allow(at(41)));
}

TEST(CircuitBreaker, HalfOpenFailureReopens)
{
    BreakerConfig config;
    config.failure_threshold = 1;
    config.cooldown_s = 10.0;
    CircuitBreaker breaker(config);

    breaker.on_failure(at(0));
    ASSERT_EQ(breaker.state(), BreakerState::kOpen);
    ASSERT_TRUE(breaker.allow(at(11)));
    ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
    breaker.on_failure(at(12));
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    EXPECT_EQ(breaker.trips(), 2u);
    // The cooldown restarts from the reopen.
    EXPECT_FALSE(breaker.can_allow(at(21)));
    EXPECT_TRUE(breaker.can_allow(at(23)));
}

TEST(CircuitBreaker, ExplicitTripRefreshesCooldown)
{
    BreakerConfig config;
    config.cooldown_s = 30.0;
    CircuitBreaker breaker(config);

    breaker.trip(at(0));
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    EXPECT_EQ(breaker.trips(), 1u);
    // Re-tripping an open breaker pushes the cooldown out but is not a
    // new trip (the node-health hook fires every dispatch).
    breaker.trip(at(20));
    EXPECT_EQ(breaker.trips(), 1u);
    EXPECT_FALSE(breaker.can_allow(at(45)));
    EXPECT_TRUE(breaker.can_allow(at(51)));
}

TEST(CircuitBreaker, RandomWalkInvariants)
{
    // Whatever the event order, probes never exceed the quota, and the
    // breaker only admits in Closed or within-quota HalfOpen states.
    Rng rng(2024);
    BreakerConfig config;
    config.failure_threshold = 2;
    config.cooldown_s = 5.0;
    config.probe_quota = 3;
    config.probe_successes = 2;
    CircuitBreaker breaker(config);
    double now = 0;
    for (int i = 0; i < 5000; ++i) {
        now += rng.uniform(0.0, 3.0);
        const double u = rng.uniform();
        if (u < 0.4) {
            const bool pure = breaker.can_allow(at(now));
            EXPECT_EQ(pure, breaker.allow(at(now)));
        } else if (u < 0.65) {
            breaker.on_success(at(now));
        } else if (u < 0.9) {
            breaker.on_failure(at(now));
        } else {
            breaker.trip(at(now));
            // The trip just refreshed the cooldown: nothing may pass
            // until it elapses.
            EXPECT_FALSE(breaker.can_allow(at(now)));
        }
        EXPECT_GE(breaker.probes_in_flight(), 0);
        EXPECT_LE(breaker.probes_in_flight(), config.probe_quota);
    }
}

TEST(Admission, NeverAdmitsPredictedDeadlineMiss)
{
    AdmissionConfig config;
    config.queue_cap = 32;
    Rng rng(7);
    int admitted = 0, rejected = 0;
    for (int i = 0; i < 20000; ++i) {
        const int depth = int(rng.uniform(0.0, 40.0));
        const double backlog = rng.uniform(0.0, 3.0);
        const double service = rng.uniform(0.01, 0.5);
        const double now = rng.uniform(0.0, 1000.0);
        const double deadline = now + rng.uniform(0.0, 2.5);
        const auto d = admit_request(config, depth, backlog, service,
                                     now, deadline);
        if (d.admit) {
            ++admitted;
            EXPECT_LT(depth, config.queue_cap);
            EXPECT_LE(d.predicted_completion_s, deadline);
            EXPECT_STREQ(d.reason, "ok");
        } else {
            ++rejected;
            EXPECT_TRUE(depth >= config.queue_cap ||
                        d.predicted_completion_s > deadline)
                << d.reason;
        }
    }
    // The draw ranges straddle the boundary: both outcomes must occur.
    EXPECT_GT(admitted, 0);
    EXPECT_GT(rejected, 0);
}

TEST(RetryBudget, ConservationUnderArbitraryInterleavings)
{
    RetryBudgetConfig config;
    config.ratio = 0.1;
    config.initial = 5.0;
    config.cap = 50.0;
    Rng rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        RetryBudget budget(config);
        for (int i = 0; i < 2000; ++i) {
            if (rng.uniform() < 0.45)
                budget.on_request();
            else
                (void)budget.try_spend();
            // The conservation bound: what was spent never exceeds what
            // was earned (initial grant included), and the balance never
            // goes negative or above the cap.
            EXPECT_LE(double(budget.spent()), budget.earned() + 1e-9);
            EXPECT_GE(budget.balance(), 0.0);
            EXPECT_LE(budget.balance(), config.cap + 1e-9);
        }
        // Accounting identity: earned - spent == balance + (denied
        // spends changed nothing).
        EXPECT_NEAR(budget.earned() - double(budget.spent()),
                    budget.balance(), 1e-6);
    }
}

TEST(RetryBudget, DeniesWhenExhaustedAndRecovers)
{
    RetryBudgetConfig config;
    config.ratio = 0.5;
    config.initial = 2.0;
    config.cap = 10.0;
    RetryBudget budget(config);
    EXPECT_TRUE(budget.try_spend());
    EXPECT_TRUE(budget.try_spend());
    EXPECT_FALSE(budget.try_spend());
    EXPECT_EQ(budget.denied(), 1u);
    // Two first-attempt requests earn one token back.
    budget.on_request();
    budget.on_request();
    EXPECT_TRUE(budget.try_spend());
    EXPECT_FALSE(budget.try_spend());
}

TEST(DecorrelatedJitter, StaysWithinEnvelope)
{
    Rng rng(42);
    const double base = 0.1, cap = 10.0;
    double prev = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double d = decorrelated_jitter(rng, base, cap, prev);
        EXPECT_GE(d, base);
        EXPECT_LE(d, cap);
        // Growth is bounded by 3x the previous sleep (cap aside).
        EXPECT_LE(d, std::max(prev, base) * 3.0 + 1e-12);
        prev = d;
    }
}

TEST(DecorrelatedJitter, DeterministicPerStream)
{
    Rng a(7), b(7);
    double prev_a = 0, prev_b = 0;
    for (int i = 0; i < 100; ++i) {
        prev_a = decorrelated_jitter(a, 0.1, 10.0, prev_a);
        prev_b = decorrelated_jitter(b, 0.1, 10.0, prev_b);
        EXPECT_DOUBLE_EQ(prev_a, prev_b);
    }
}

TEST(ExecRequeueJitter, OffIsExactlyTheExponentialSchedule)
{
    // Satellite: with requeue_jitter off (the default), requeue_delay
    // must be the byte-identical pure-exponential backoff — that is
    // what keeps every existing sweep golden unchanged.
    exec::FailureConfig config;
    config.requeue_backoff_base_s = 5.0;
    config.requeue_backoff_cap_s = 300.0;
    exec::FailureModel model(config, 17);
    for (int attempts = 0; attempts < 10; ++attempts) {
        EXPECT_EQ(model.requeue_delay(42, attempts),
                  model.requeue_backoff(attempts));
    }
}

TEST(ExecRequeueJitter, OnIsBoundedDecorrelatedAndPerJob)
{
    exec::FailureConfig config;
    config.requeue_backoff_base_s = 5.0;
    config.requeue_backoff_cap_s = 300.0;
    config.requeue_jitter = true;
    exec::FailureModel model(config, 17);
    exec::FailureModel twin(config, 17);

    double prev = config.requeue_backoff_base_s;
    bool jobs_differ = false;
    for (int attempts = 1; attempts <= 8; ++attempts) {
        const double a =
            model.requeue_delay(1, attempts).to_seconds();
        const double b = twin.requeue_delay(1, attempts).to_seconds();
        const double other =
            model.requeue_delay(2, attempts).to_seconds();
        // Deterministic per (seed, job, attempt)...
        EXPECT_DOUBLE_EQ(a, b);
        // ...within the decorrelated envelope...
        EXPECT_GE(a, config.requeue_backoff_base_s);
        EXPECT_LE(a, config.requeue_backoff_cap_s);
        EXPECT_LE(a, std::max(prev, config.requeue_backoff_base_s) *
                         3.0 + 1e-9);
        prev = a;
        // ...and decorrelated across jobs.
        if (a != other)
            jobs_differ = true;
    }
    EXPECT_TRUE(jobs_differ);
}

TEST(ReplicaPlan, AttainableMatchesLegacyScalar)
{
    const auto plan = plan_replicas_for_slo(50.0, 10.0, 0.5, 0.99, 64);
    EXPECT_TRUE(plan.attainable);
    EXPECT_EQ(plan.replicas,
              min_replicas_for_slo(50.0, 10.0, 0.5, 0.99, 64));
    EXPECT_GE(plan.attainment, 0.99);
    EXPECT_GE(slo_attainment(plan.replicas, 50.0, 10.0, 0.5), 0.99);
}

TEST(ReplicaPlan, UnattainableIsExplicit)
{
    // Demand far beyond the pool: the plan pins max but says so.
    const auto over = plan_replicas_for_slo(1000.0, 10.0, 0.5, 0.99, 16);
    EXPECT_FALSE(over.attainable);
    EXPECT_EQ(over.replicas, 16);
    EXPECT_LT(over.attainment, 0.99);
    // An SLO below the mean service time is unattainable at any count.
    const auto tight = plan_replicas_for_slo(1.0, 10.0, 0.05, 0.99, 64);
    EXPECT_FALSE(tight.attainable);
}

TEST(SloAwareAutoscaler, LatchesUnattainableAndRecovers)
{
    SloAwareAutoscaler scaler(1.2);
    ScaleContext ctx;
    ctx.service_rate_hz = 10.0;
    ctx.slo_s = 0.5;
    ctx.slo_target = 0.99;
    ctx.max_replicas = 8;

    ctx.arrival_rate_hz = 20.0;
    EXPECT_GT(scaler.decide(ctx), 0);
    EXPECT_FALSE(scaler.slo_unattainable());

    ctx.arrival_rate_hz = 500.0; // demand >> 8-replica pool
    EXPECT_EQ(scaler.decide(ctx), 8);
    EXPECT_TRUE(scaler.slo_unattainable());

    ctx.arrival_rate_hz = 20.0; // demand subsides: flag resets
    EXPECT_GT(scaler.decide(ctx), 0);
    EXPECT_FALSE(scaler.slo_unattainable());
}

} // namespace
} // namespace tacc::serve
