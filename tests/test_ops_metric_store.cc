/**
 * @file
 * Unit tests for the fixed-memory time-series store: ring behavior,
 * rollup math, windowed queries, and the bounded-memory guarantee.
 */
#include <gtest/gtest.h>

#include "ops/metric_store.h"

namespace tacc::ops {
namespace {

using namespace time_literals;

TimePoint
at(double seconds)
{
    return TimePoint::origin() + Duration::from_seconds(seconds);
}

TEST(MetricRing, WrapsOverwritingOldest)
{
    MetricRing<int> ring(3);
    EXPECT_TRUE(ring.empty());
    for (int i = 0; i < 5; ++i)
        ring.push(i);
    ASSERT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.at(0), 2); // oldest survivor
    EXPECT_EQ(ring.at(1), 3);
    EXPECT_EQ(ring.at(2), 4);
    EXPECT_EQ(ring.back(), 4);
    EXPECT_EQ(ring.capacity(), 3u);
}

TEST(MetricStore, DefineIsIdempotent)
{
    MetricStore store;
    const SeriesId a = store.define("cluster.gpu_util", SeriesKind::kGauge);
    const SeriesId b = store.define("cluster.gpu_util", SeriesKind::kGauge);
    EXPECT_EQ(a, b);
    EXPECT_EQ(store.series_count(), 1u);
    EXPECT_EQ(store.find("cluster.gpu_util"), a);
    EXPECT_EQ(store.find("nope"), kInvalidSeries);
    EXPECT_EQ(store.name_of(a), "cluster.gpu_util");
    EXPECT_EQ(store.kind_of(a), SeriesKind::kGauge);
}

TEST(MetricStore, LatestReturnsNewestSample)
{
    MetricStore store;
    const SeriesId id = store.define("g", SeriesKind::kGauge);
    EXPECT_FALSE(store.latest(id).has_value());
    store.record(id, at(10), 1.0);
    store.record(id, at(20), 2.0);
    store.record(id, at(20), 3.0); // equal timestamps allowed
    ASSERT_TRUE(store.latest(id).has_value());
    EXPECT_EQ(store.latest(id)->t, at(20));
    EXPECT_DOUBLE_EQ(store.latest(id)->v, 3.0);
}

TEST(MetricStore, MinuteRollupAggregatesOpenBucket)
{
    MetricStore store;
    const SeriesId id = store.define("g", SeriesKind::kGauge);
    store.record(id, at(5), 4.0);
    store.record(id, at(25), 2.0);
    store.record(id, at(45), 6.0);

    // Still inside minute 0: range must include the open bucket.
    const auto open = store.range(id, at(0), at(60), Resolution::kMinute);
    ASSERT_EQ(open.size(), 1u);
    EXPECT_EQ(open[0].start, at(0));
    EXPECT_DOUBLE_EQ(open[0].min, 2.0);
    EXPECT_DOUBLE_EQ(open[0].max, 6.0);
    EXPECT_DOUBLE_EQ(open[0].sum, 12.0);
    EXPECT_DOUBLE_EQ(open[0].last, 6.0);
    EXPECT_EQ(open[0].count, 3u);
    EXPECT_DOUBLE_EQ(open[0].mean(), 4.0);

    // Crossing the boundary closes minute 0 and opens minute 1.
    store.record(id, at(70), 10.0);
    const auto both = store.range(id, at(0), at(120), Resolution::kMinute);
    ASSERT_EQ(both.size(), 2u);
    EXPECT_EQ(both[0].count, 3u);
    EXPECT_EQ(both[1].start, at(60));
    EXPECT_DOUBLE_EQ(both[1].last, 10.0);
    EXPECT_EQ(both[1].count, 1u);
}

TEST(MetricStore, RangeFiltersByWindowAtEveryResolution)
{
    MetricStore store;
    const SeriesId id = store.define("g", SeriesKind::kGauge);
    for (int i = 0; i < 240; ++i) // one sample/minute for 4 hours
        store.record(id, at(60.0 * i), double(i));

    const auto raw = store.range(id, at(60), at(180), Resolution::kRaw);
    ASSERT_EQ(raw.size(), 3u); // samples at 60, 120, 180
    EXPECT_DOUBLE_EQ(raw[0].last, 1.0);
    EXPECT_DOUBLE_EQ(raw[2].last, 3.0);

    const auto hours =
        store.range(id, at(0), at(4 * 3600 - 1), Resolution::kHour);
    ASSERT_EQ(hours.size(), 4u); // 3 closed + the open hour 3
    EXPECT_EQ(hours[0].count, 60u);
    EXPECT_DOUBLE_EQ(hours[1].min, 60.0);
    EXPECT_DOUBLE_EQ(hours[1].max, 119.0);

    // A window clipped to one hour returns exactly that bucket.
    const auto one =
        store.range(id, at(3600), at(2 * 3600 - 1), Resolution::kHour);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].start, at(3600));
}

TEST(MetricStore, PercentileOverWindowInterpolates)
{
    MetricStore store;
    const SeriesId id = store.define("g", SeriesKind::kGauge);
    // Values 1..5 inside the window, plus an outlier before it.
    store.record(id, at(0), 1000.0);
    for (int i = 1; i <= 5; ++i)
        store.record(id, at(100.0 + i), double(i));

    EXPECT_DOUBLE_EQ(
        store.percentile_over(id, at(110), Duration::seconds(10), 0), 1.0);
    EXPECT_DOUBLE_EQ(
        store.percentile_over(id, at(110), Duration::seconds(10), 100),
        5.0);
    EXPECT_DOUBLE_EQ(
        store.percentile_over(id, at(110), Duration::seconds(10), 50),
        3.0);
    EXPECT_DOUBLE_EQ(
        store.percentile_over(id, at(110), Duration::seconds(10), 75),
        4.0);
    // Empty window -> 0.
    EXPECT_DOUBLE_EQ(
        store.percentile_over(id, at(5000), Duration::seconds(1), 50),
        0.0);
}

TEST(MetricStore, MeanOverFallsBackToRollupsOnceRawWrapped)
{
    MetricStoreConfig config;
    config.raw_capacity = 8; // tiny: force the raw ring to wrap
    MetricStore store(config);
    const SeriesId id = store.define("g", SeriesKind::kGauge);
    // One sample per 30s for one hour: 120 samples, raw keeps last 8.
    for (int i = 0; i < 120; ++i)
        store.record(id, at(30.0 * i), 5.0);

    // Window reaches an hour back; raw no longer covers it, but the
    // minute rollups do, and the mean is still exact.
    EXPECT_DOUBLE_EQ(store.mean_over(id, at(3570), Duration::hours(1)),
                     5.0);
    // Raw-covered short window also works.
    EXPECT_DOUBLE_EQ(
        store.mean_over(id, at(3570), Duration::seconds(60)), 5.0);
}

TEST(MetricStore, RateOverComputesCounterSlope)
{
    MetricStore store;
    const SeriesId id = store.define("c", SeriesKind::kCounter);
    // Counter climbing 2/s.
    for (int i = 0; i <= 100; ++i)
        store.record(id, at(double(i)), 2.0 * i);

    EXPECT_NEAR(store.rate_over(id, at(100), Duration::seconds(50)), 2.0,
                1e-12);
    // Flat segment -> rate 0.
    store.record(id, at(200), 200.0);
    store.record(id, at(260), 200.0);
    EXPECT_DOUBLE_EQ(
        store.rate_over(id, at(260), Duration::seconds(60)), 0.0);
    // Counter born inside the window: first observation anchors it.
    MetricStore fresh;
    const SeriesId young = fresh.define("c", SeriesKind::kCounter);
    fresh.record(young, at(30), 0.0);
    fresh.record(young, at(60), 30.0);
    EXPECT_NEAR(fresh.rate_over(young, at(60), Duration::minutes(1)), 0.5,
                1e-12);
}

TEST(MetricStore, RateOverUsesRollupsPastTheRawRing)
{
    MetricStoreConfig config;
    config.raw_capacity = 4;
    MetricStore store(config);
    const SeriesId id = store.define("c", SeriesKind::kCounter);
    for (int i = 0; i <= 600; ++i) // 10 minutes at 1/s, counter = i
        store.record(id, at(double(i)), double(i));
    // The raw ring holds only the last 4 samples; the 5-minute-window
    // start is served from minute-rollup `last` values.
    EXPECT_NEAR(store.rate_over(id, at(600), Duration::minutes(5)), 1.0,
                0.05);
}

TEST(MetricStore, MemoryIsBoundedAcrossSimulatedDays)
{
    MetricStore store;
    const SeriesId util = store.define("u", SeriesKind::kGauge);
    const SeriesId depth = store.define("d", SeriesKind::kGauge);
    const SeriesId fails = store.define("f", SeriesKind::kCounter);

    // Warm up until every ring has wrapped at least once (30s cadence:
    // raw wraps after ~17h; minute ring after 2 days; hour after 30).
    double counter = 0;
    TimePoint t = TimePoint::origin();
    auto run_days = [&](int days) {
        const int samples = days * 86400 / 30;
        for (int i = 0; i < samples; ++i) {
            t += Duration::seconds(30);
            store.record(util, t, 0.5);
            store.record(depth, t, 10.0);
            store.record(fails, t, counter += 0.25);
        }
    };
    run_days(31);
    const size_t after_fill = store.memory_bytes();
    EXPECT_GT(after_fill, 0u);

    // Thirty more simulated days: not one byte of growth.
    run_days(30);
    EXPECT_EQ(store.memory_bytes(), after_fill);

    // Queries still answer from the retained window.
    EXPECT_DOUBLE_EQ(store.mean_over(util, t, Duration::hours(1)), 0.5);
    EXPECT_NEAR(store.rate_over(fails, t, Duration::hours(1)),
                0.25 / 30.0, 1e-9);

    // Only *defining* series grows memory, never recording.
    store.define("extra", SeriesKind::kGauge);
    EXPECT_GT(store.memory_bytes(), after_fill);
}

} // namespace
} // namespace tacc::ops
