/**
 * @file
 * Unit tests for Duration / TimePoint.
 */
#include <gtest/gtest.h>

#include "common/time.h"

namespace tacc {
namespace {

using namespace time_literals;

TEST(Duration, NamedConstructorsAgree)
{
    EXPECT_EQ(Duration::seconds(1).to_micros(), 1'000'000);
    EXPECT_EQ(Duration::millis(1500).to_micros(), 1'500'000);
    EXPECT_EQ(Duration::minutes(2), Duration::seconds(120));
    EXPECT_EQ(Duration::hours(1), Duration::minutes(60));
    EXPECT_EQ(Duration::days(1), Duration::hours(24));
}

TEST(Duration, Literals)
{
    EXPECT_EQ(5_us, Duration::micros(5));
    EXPECT_EQ(5_ms, Duration::millis(5));
    EXPECT_EQ(5_s, Duration::seconds(5));
    EXPECT_EQ(5_min, Duration::minutes(5));
    EXPECT_EQ(5_h, Duration::hours(5));
}

TEST(Duration, Arithmetic)
{
    EXPECT_EQ(3_s + 2_s, 5_s);
    EXPECT_EQ(3_s - 5_s, -(2_s));
    EXPECT_EQ((3_s) * 4, 12_s);
    EXPECT_EQ(4 * (3_s), 12_s);
    EXPECT_EQ((12_s) / 4, 3_s);
    EXPECT_DOUBLE_EQ((6_s) / (4_s), 1.5);
}

TEST(Duration, FractionalScaling)
{
    EXPECT_EQ((10_s) * 0.5, 5_s);
    // Rounds to the nearest microsecond.
    EXPECT_EQ(Duration::micros(3) * 0.5, Duration::micros(2));
    EXPECT_EQ(Duration::from_seconds(1.25e-6), Duration::micros(1));
}

TEST(Duration, FromSecondsRoundTrip)
{
    const Duration d = Duration::from_seconds(123.456789);
    EXPECT_NEAR(d.to_seconds(), 123.456789, 1e-6);
}

TEST(Duration, Comparisons)
{
    EXPECT_LT(1_s, 2_s);
    EXPECT_GE(2_s, 2_s);
    EXPECT_TRUE((0_s).is_zero());
    EXPECT_TRUE((1_s - 2_s).is_negative());
}

TEST(Duration, Compounds)
{
    Duration d = 1_s;
    d += 500_ms;
    EXPECT_EQ(d, Duration::millis(1500));
    d -= 1_s;
    EXPECT_EQ(d, 500_ms);
}

TEST(Duration, StringRendering)
{
    EXPECT_EQ((500_us).str(), "500us");
    EXPECT_EQ((-(500_us)).str(), "-500us");
    EXPECT_EQ((2_ms).str(), "2ms");
    EXPECT_EQ((30_s).str(), "30s");
    EXPECT_NE((90_s).str().find("1m"), std::string::npos);
    EXPECT_NE((25_h).str().find("25h"), std::string::npos);
}

TEST(TimePoint, Arithmetic)
{
    const TimePoint t0 = TimePoint::origin();
    const TimePoint t1 = t0 + 10_s;
    EXPECT_EQ(t1 - t0, 10_s);
    EXPECT_EQ(t1 - 4_s, t0 + 6_s);
    EXPECT_LT(t0, t1);
}

TEST(TimePoint, MaxActsAsInfinity)
{
    EXPECT_GT(TimePoint::max(), TimePoint::origin() + Duration::days(10000));
}

} // namespace
} // namespace tacc
