/**
 * @file
 * Power subsystem tests: static model arithmetic, the PowerManager's
 * permutation-independence and never-negative determinism contract, cap
 * policies (admission refusal, DVFS clock selection), the energy-ledger
 * reconciliation identity, the scheduler-side PowerGate, stack-level
 * byte-identity when power is off or uncapped, cap enforcement end to
 * end, and the sweep driver's power axis.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "core/config_io.h"
#include "core/scenario.h"
#include "driver/digest.h"
#include "driver/sweep.h"
#include "power/power_manager.h"
#include "sched/types.h"

namespace tacc::power {
namespace {

cluster::ClusterConfig
small_cluster_config(int racks = 2, int nodes_per_rack = 4)
{
    cluster::ClusterConfig config;
    config.topology.racks = racks;
    config.topology.nodes_per_rack = nodes_per_rack;
    return config;
}

/** A gang placement from (node, gpu count) pairs. */
cluster::Placement
gang(std::initializer_list<std::pair<cluster::NodeId, int>> slices)
{
    cluster::Placement placement;
    for (const auto &[node, gpus] : slices) {
        cluster::PlacementSlice slice;
        slice.node = node;
        for (int g = 0; g < gpus; ++g)
            slice.gpu_indices.push_back(g);
        placement.slices.push_back(std::move(slice));
    }
    return placement;
}

TimePoint
at(double seconds)
{
    return TimePoint::origin() + Duration::from_seconds(seconds);
}

// With the default wattage (host 400 W, GPU 60/400 W) one 8-GPU node
// idles at 880 W, one fully-busy GPU adds 340 W.
constexpr double kNodeIdleW = 400.0 + 8 * 60.0;
constexpr double kGpuDeltaW = 340.0;

TEST(PowerModel, BaselineIsIdleFloorOfEveryNode)
{
    cluster::Cluster cl(small_cluster_config(4, 8));
    PowerConfig config;
    PowerModel model(cl, config);
    EXPECT_DOUBLE_EQ(model.baseline_w(), 32 * kNodeIdleW); // 28160 W
    ASSERT_EQ(model.rack_count(), 4);
    for (int rack = 0; rack < 4; ++rack)
        EXPECT_DOUBLE_EQ(model.rack_baseline_w(rack), 8 * kNodeIdleW);
    EXPECT_DOUBLE_EQ(model.gpu_delta_w("A100"), kGpuDeltaW);
    EXPECT_DOUBLE_EQ(model.max_gpu_delta_w(), kGpuDeltaW);
}

TEST(PowerModel, PerModelWattageOverrides)
{
    cluster::Cluster cl(small_cluster_config());
    PowerConfig config;
    config.gpu_power["A100"] = {100.0, 500.0};
    PowerModel model(cl, config);
    EXPECT_DOUBLE_EQ(model.gpu_delta_w("A100"), 400.0);
    // Models not listed fall back to the default spec.
    EXPECT_DOUBLE_EQ(model.gpu_delta_w("H100"), kGpuDeltaW);
    // The inventory is all A100, so the gate bound uses the override.
    EXPECT_DOUBLE_EQ(model.max_gpu_delta_w(), 400.0);
}

/** One segment's start parameters, for the permutation property. */
struct SegSpec {
    cluster::JobId job;
    std::string group;
    cluster::Placement placement;
    double activity;
    double clock;
};

std::vector<SegSpec>
property_segments()
{
    return {
        {1, "alpha", gang({{0, 8}}), 1.0, 1.0},
        {2, "alpha", gang({{1, 4}, {2, 4}}), 0.7, 1.0},
        {3, "beta", gang({{4, 8}, {5, 8}}), 0.9, 0.8},
        {4, "beta", gang({{3, 2}}), 0.3, 1.0},
        {5, "gamma", gang({{6, 1}, {7, 1}, {2, 2}}), 0.55, 0.6},
    };
}

void
start(PowerManager &pm, const SegSpec &seg, TimePoint now)
{
    pm.on_segment_start(seg.job, seg.group, seg.placement, seg.activity,
                        seg.clock, now);
}

TEST(PowerManagerProperty, DrawIsPermutationIndependentOfStartOrder)
{
    const cluster::Cluster cl(small_cluster_config());
    const auto segs = property_segments();

    PowerManager reference(cl, PowerConfig{});
    for (const auto &seg : segs)
        start(reference, seg, at(0));
    const double want = reference.draw_w();
    EXPECT_GT(want, reference.baseline_w());

    std::vector<size_t> order(segs.size());
    std::iota(order.begin(), order.end(), 0);
    do {
        PowerManager pm(cl, PowerConfig{});
        for (size_t i : order)
            start(pm, segs[i], at(0));
        // Exact equality: totals are rebuilt from the id-ordered active
        // set, so arrival order must not leave any fp residue.
        EXPECT_EQ(pm.draw_w(), want);
        for (int rack = 0; rack < 2; ++rack)
            EXPECT_EQ(pm.rack_draw_w(rack), reference.rack_draw_w(rack));
        EXPECT_EQ(pm.throttled_nodes(), reference.throttled_nodes());
    } while (std::next_permutation(order.begin(), order.end()));
}

TEST(PowerManagerProperty, DrawIsPermutationIndependentOfStopOrder)
{
    const cluster::Cluster cl(small_cluster_config());
    const auto segs = property_segments();

    // Stop {1, 3, 5} in every order; survivors {2, 4} price identically.
    std::vector<cluster::JobId> stops = {1, 3, 5};
    double want = -1;
    do {
        PowerManager pm(cl, PowerConfig{});
        for (const auto &seg : segs)
            start(pm, seg, at(0));
        for (cluster::JobId id : stops)
            pm.on_segment_stop(id, at(0));
        if (want < 0)
            want = pm.draw_w();
        EXPECT_EQ(pm.draw_w(), want);
        EXPECT_GE(pm.draw_w(), pm.baseline_w());
        // All scaled segments are gone, so no node stays throttled.
        EXPECT_EQ(pm.throttled_nodes(), 0);
    } while (std::next_permutation(stops.begin(), stops.end()));
}

TEST(PowerManagerProperty, ReleasePathsNeverGoNegative)
{
    const cluster::Cluster cl(small_cluster_config());
    PowerManager pm(cl, PowerConfig{});
    const auto segs = property_segments();

    // Unknown-job stops (a failure path races a completion) are no-ops.
    pm.on_segment_stop(99, at(0));
    EXPECT_EQ(pm.draw_w(), pm.baseline_w());

    for (const auto &seg : segs)
        start(pm, seg, at(0));
    for (const auto &seg : segs) {
        pm.on_segment_stop(seg.job, at(0));
        pm.on_segment_stop(seg.job, at(0)); // double stop: no-op
        EXPECT_GE(pm.draw_w(), pm.baseline_w());
    }
    EXPECT_EQ(pm.draw_w(), pm.baseline_w());
    EXPECT_EQ(pm.throttled_nodes(), 0);
}

TEST(PowerManager, AdmissionRefusesOverClusterBudget)
{
    const cluster::Cluster cl(small_cluster_config());
    PowerConfig config;
    config.enabled = true;
    config.cluster_cap_w = 8 * kNodeIdleW + 3000.0; // headroom 3000 W
    PowerManager pm(cl, config);
    EXPECT_DOUBLE_EQ(pm.commit_fraction(), 1.0);

    const auto eight = gang({{0, 8}}); // full activity: 2720 W
    auto d = pm.plan_start(eight, 1.0);
    EXPECT_TRUE(d.admit);
    EXPECT_DOUBLE_EQ(d.clock, 1.0);
    pm.on_segment_start(1, "alpha", eight, 1.0, d.clock, at(0));
    EXPECT_NEAR(pm.cluster_headroom_w(), 280.0, 1e-9);

    // A second full gang cannot fit; a tiny one still can.
    EXPECT_FALSE(pm.plan_start(gang({{1, 8}}), 1.0).admit);
    EXPECT_TRUE(pm.plan_start(gang({{1, 8}}), 0.1).admit);
}

TEST(PowerManager, RackAndPduCapsRefuseIndependently)
{
    const cluster::Cluster cl(small_cluster_config());
    PowerConfig config;
    config.enabled = true;
    config.rack_cap_w = 4 * kNodeIdleW + 1000.0; // per-rack headroom 1000
    PowerManager pm(cl, config);
    EXPECT_EQ(pm.cluster_headroom_w(),
              std::numeric_limits<double>::infinity());
    EXPECT_FALSE(pm.plan_start(gang({{0, 8}}), 1.0).admit); // 2720 > 1000
    EXPECT_TRUE(pm.plan_start(gang({{0, 2}}), 1.0).admit);  // 680 <= 1000

    PowerConfig pdu = config;
    pdu.rack_cap_w = 0;
    pdu.racks_per_pdu = 2;
    pdu.pdu_cap_w = 8 * kNodeIdleW + 1000.0; // both racks share one PDU
    PowerManager pm2(cl, pdu);
    EXPECT_EQ(pm2.pdu_count(), 1);
    // Spanning racks does not evade the shared PDU budget.
    EXPECT_FALSE(pm2.plan_start(gang({{0, 4}, {4, 4}}), 1.0).admit);
    EXPECT_TRUE(pm2.plan_start(gang({{0, 1}, {4, 1}}), 1.0).admit);
}

TEST(PowerManager, DvfsClockFillsTightestHeadroom)
{
    const cluster::Cluster cl(small_cluster_config());
    PowerConfig config;
    config.enabled = true;
    config.policy = "dvfs";
    config.cluster_cap_w = 8 * kNodeIdleW + 1000.0;
    PowerManager pm(cl, config);
    EXPECT_TRUE(pm.dvfs());
    EXPECT_DOUBLE_EQ(pm.commit_fraction(), std::pow(0.5, 3.0));

    // 2720 W full-speed into 1000 W headroom: clock = (1000/2720)^(1/3).
    const auto eight = gang({{0, 8}});
    auto d = pm.plan_start(eight, 1.0);
    ASSERT_TRUE(d.admit);
    const double want = std::pow(1000.0 / 2720.0, 1.0 / 3.0);
    EXPECT_NEAR(d.clock, want, 1e-12);
    EXPECT_GE(d.clock, config.min_clock);

    pm.on_segment_start(1, "alpha", eight, 1.0, d.clock, at(0));
    // The scaled delta exactly fills the cap (modulo pow round-trip).
    EXPECT_NEAR(pm.draw_w(), config.cluster_cap_w, 1e-6);
    EXPECT_EQ(pm.dvfs_starts(), 1u);
    EXPECT_EQ(pm.throttled_nodes(), 1);
    EXPECT_NEAR(pm.node_clock_of(0), want, 1e-12);
    EXPECT_DOUBLE_EQ(pm.node_clock_of(1), 1.0);

    // No headroom left: the next start would need clock < min_clock.
    auto refused = pm.plan_start(gang({{1, 8}}), 1.0);
    EXPECT_FALSE(refused.admit);
    EXPECT_LT(refused.clock, config.min_clock);

    // Releasing restores full-speed admission.
    pm.on_segment_stop(1, at(0));
    EXPECT_DOUBLE_EQ(pm.plan_start(gang({{1, 8}}), 0.3).clock, 1.0);
}

TEST(PowerManager, EnergyLedgerReconcilesByConstruction)
{
    const cluster::Cluster cl(small_cluster_config());
    PowerConfig config;
    config.enabled = true;
    PowerManager pm(cl, config);
    const double baseline = pm.baseline_w(); // 7040 W

    // j1: 8 GPUs at full activity (2720 W) over [100, 400].
    // j2: 4 GPUs at half activity (680 W) over [200, 500].
    pm.on_segment_start(1, "alpha", gang({{0, 8}}), 1.0, 1.0, at(100));
    pm.on_segment_start(2, "beta", gang({{4, 4}}), 0.5, 1.0, at(200));
    pm.on_segment_stop(1, at(400));
    pm.advance(at(500));
    pm.advance(at(500)); // idempotent

    const double joules = baseline * 500 + 2720.0 * 300 + 680.0 * 300;
    EXPECT_NEAR(pm.energy_kwh(), joules / 3.6e6, 1e-9);
    EXPECT_NEAR(pm.baseline_energy_kwh(), baseline * 500 / 3.6e6, 1e-9);
    EXPECT_DOUBLE_EQ(pm.peak_draw_w(), baseline + 2720.0 + 680.0);

    const auto groups = pm.group_energy_kwh();
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_NEAR(groups.at("alpha"), 2720.0 * 300 / 3.6e6, 1e-9);
    EXPECT_NEAR(groups.at("beta"), 680.0 * 300 / 3.6e6, 1e-9);

    // The reconciliation identity the T16 bench asserts at 0.0000%.
    double active = 0;
    for (const auto &[group, kwh] : groups)
        active += kwh;
    EXPECT_NEAR(pm.energy_kwh(), pm.baseline_energy_kwh() + active,
                1e-12 * pm.energy_kwh());

    // Per-job meters drain exactly once.
    EXPECT_NEAR(pm.job_energy_kwh(1), groups.at("alpha"), 1e-12);
    EXPECT_NEAR(pm.take_job_energy_kwh(1), groups.at("alpha"), 1e-12);
    EXPECT_DOUBLE_EQ(pm.take_job_energy_kwh(1), 0.0);
}

TEST(PowerGate, AdmitsAndCommitsAcrossScopes)
{
    const cluster::Cluster cl(small_cluster_config());
    sched::PowerGate gate;
    gate.cluster = &cl;
    gate.per_gpu_w = kGpuDeltaW;
    gate.cluster_headroom_w = 3000.0;

    EXPECT_TRUE(gate.admits(8));   // 2720 <= 3000
    EXPECT_FALSE(gate.admits(9));  // 3060 > 3000

    ASSERT_TRUE(gate.try_commit(gang({{0, 8}})));
    EXPECT_NEAR(gate.cluster_headroom_w, 280.0, 1e-9);
    // A failed commit must not deduct anything.
    EXPECT_FALSE(gate.try_commit(gang({{1, 8}})));
    EXPECT_NEAR(gate.cluster_headroom_w, 280.0, 1e-9);

    sched::PowerGate rack_gate;
    rack_gate.cluster = &cl;
    rack_gate.per_gpu_w = kGpuDeltaW;
    rack_gate.rack_headroom_w = {3000.0, 500.0};
    EXPECT_FALSE(rack_gate.try_commit(gang({{4, 2}}))); // rack 1: 680>500
    EXPECT_TRUE(rack_gate.try_commit(gang({{0, 2}})));  // rack 0 fits
    EXPECT_NEAR(rack_gate.rack_headroom_w[0], 3000.0 - 680.0, 1e-9);

    sched::PowerGate pdu_gate;
    pdu_gate.cluster = &cl;
    pdu_gate.per_gpu_w = kGpuDeltaW;
    pdu_gate.racks_per_pdu = 2;
    pdu_gate.pdu_headroom_w = {1000.0}; // racks 0 and 1 share PDU 0
    EXPECT_FALSE(pdu_gate.try_commit(gang({{0, 2}, {4, 2}}))); // 1360
    EXPECT_TRUE(pdu_gate.try_commit(gang({{0, 1}, {4, 1}})));  // 680
    EXPECT_NEAR(pdu_gate.pdu_headroom_w[0], 320.0, 1e-9);
}

/** The stack-level scenario the digest tests run (mirrors tiny_spec). */
core::ScenarioConfig
tiny_scenario()
{
    core::ScenarioConfig sc;
    sc.stack.cluster.topology.racks = 2;
    sc.stack.cluster.topology.nodes_per_rack = 4;
    sc.stack.scheduler = "fairshare";
    sc.stack.emit_monitor_logs = false;
    sc.trace.num_jobs = 12;
    sc.trace.mean_interarrival_s = 120.0;
    sc.trace.seed = 1;
    return sc;
}

TEST(PowerStack, UncappedPowerKeepsDigestsByteIdentical)
{
    const auto off = core::run_scenario(tiny_scenario());
    EXPECT_DOUBLE_EQ(off.energy_kwh, 0.0);
    EXPECT_DOUBLE_EQ(off.peak_draw_w, 0.0);

    for (const char *policy : {"admission", "dvfs"}) {
        auto sc = tiny_scenario();
        sc.stack.power.enabled = true;
        sc.stack.power.policy = policy;
        sc.stack.power.cluster_cap_w = 1e9; // capped, never binding
        const auto on = core::run_scenario(sc);
        // Metering must be pure observation: same decisions, same digest.
        EXPECT_EQ(driver::scenario_digest(on),
                  driver::scenario_digest(off))
            << "policy " << policy;
        EXPECT_EQ(on.power_deferrals, 0u);
        EXPECT_EQ(on.dvfs_starts, 0u);
        EXPECT_GT(on.energy_kwh, on.baseline_energy_kwh);
        EXPECT_GE(on.peak_draw_w, 8 * kNodeIdleW);
    }
}

TEST(PowerStack, TightCapKeepsPeakUnderCapAndLedgerReconciled)
{
    const double cap = 8 * kNodeIdleW + 3000.0; // fits one busy gang
    for (const char *policy : {"admission", "dvfs"}) {
        auto sc = tiny_scenario();
        // Keep every gang small enough to start alone under the cap
        // (8 GPUs flat out = 2720 W < 3000 W of headroom): a gang whose
        // full-speed delta exceeds the whole budget could never be
        // admitted and would pend forever.
        sc.trace.gpu_demand_pmf = {{1, 0.4}, {2, 0.2}, {4, 0.2}, {8, 0.2}};
        sc.stack.power.enabled = true;
        sc.stack.power.policy = policy;
        sc.stack.power.cluster_cap_w = cap;
        const auto r = core::run_scenario(sc);
        EXPECT_GT(r.completed, 0u) << "policy " << policy;
        // Draw is piecewise-constant, so peak <= cap means the cap held
        // at every instant (tolerance covers the DVFS pow round-trip).
        EXPECT_LE(r.peak_draw_w, cap + 1e-6) << "policy " << policy;
        EXPECT_GT(r.peak_draw_w, 8 * kNodeIdleW);

        double active = 0;
        for (const auto &[group, kwh] : r.group_energy_kwh)
            active += kwh;
        ASSERT_GT(r.energy_kwh, 0.0);
        EXPECT_NEAR(r.energy_kwh, r.baseline_energy_kwh + active,
                    1e-9 * r.energy_kwh)
            << "policy " << policy;
    }
}

TEST(PowerSweepExpand, PowerAxisCollapsesOffPointsAndSuffixesNames)
{
    driver::SweepSpec spec;
    spec.schedulers = {"fairshare", "fifo-skip"};
    spec.placements = {"topology"};
    spec.preempt_modes = {"graceful"};
    spec.loads = {1.0};
    spec.seeds = {1, 2};
    spec.base.trace.num_jobs = 12;
    spec.base.stack.cluster.topology.racks = 2;
    spec.base.stack.cluster.topology.nodes_per_rack = 4;

    const auto base_names = driver::expand_sweep(spec);
    ASSERT_EQ(base_names.size(), 4u);

    // Every cap <= 0 collapses to ONE unsuffixed power-off point, so
    // the pre-power grid prefix survives verbatim.
    spec.power_caps = {0.0, -5.0, 80000.0};
    spec.power_policies = {"admission", "dvfs"};
    EXPECT_EQ(spec.power_point_count(), 3u);
    const auto scenarios = driver::expand_sweep(spec);
    ASSERT_EQ(scenarios.size(), spec.grid_size());
    ASSERT_EQ(scenarios.size(), 12u);
    for (size_t i = 0; i < base_names.size(); ++i) {
        EXPECT_EQ(scenarios[i].name, base_names[i].name);
        EXPECT_FALSE(scenarios[i].config.stack.power.enabled);
    }
    EXPECT_EQ(scenarios[4].name,
              "fairshare/topology/graceful/x1/s1+80kW-admission");
    EXPECT_EQ(scenarios[8].name,
              "fairshare/topology/graceful/x1/s1+80kW-dvfs");
    EXPECT_TRUE(scenarios[4].config.stack.power.enabled);
    EXPECT_EQ(scenarios[4].config.stack.power.policy, "admission");
    EXPECT_DOUBLE_EQ(scenarios[4].config.stack.power.cluster_cap_w,
                     80000.0);
    EXPECT_EQ(scenarios[8].config.stack.power.policy, "dvfs");
}

TEST(PowerSweepSpecParse, ParsesPowerAxesAndRejectsBadPolicy)
{
    auto parsed = driver::parse_sweep_spec(
        "power_caps: 0,80000\npower_policies: admission,dvfs\n");
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().str();
    EXPECT_EQ(parsed.value().power_caps, (std::vector<double>{0, 80000}));
    EXPECT_EQ(parsed.value().power_policies,
              (std::vector<std::string>{"admission", "dvfs"}));

    auto bad = driver::parse_sweep_spec("power_policies: turbo\n");
    ASSERT_FALSE(bad.is_ok());
    EXPECT_NE(bad.status().message().find("turbo"), std::string::npos);
}

TEST(PowerConfigIo, OffIsOmittedAndEnabledRoundTrips)
{
    // A power-free config renders without any power key, keeping old
    // config files (and their hashes) untouched.
    core::StackConfig plain;
    EXPECT_EQ(core::stack_config_to_text(plain).find("power"),
              std::string::npos);

    core::StackConfig config;
    config.power.enabled = true;
    config.power.policy = "dvfs";
    config.power.cluster_cap_w = 80000;
    config.power.rack_cap_w = 25000;
    config.power.racks_per_pdu = 4;
    config.power.host_idle_w = 450;
    config.power.default_gpu = {50, 350};
    config.power.gpu_power["H100"] = {80, 700};
    config.power.dvfs_exponent = 2.5;
    config.power.min_clock = 0.6;

    auto parsed =
        core::parse_stack_config(core::stack_config_to_text(config));
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().str();
    const auto &p = parsed.value().power;
    EXPECT_TRUE(p.enabled);
    EXPECT_EQ(p.policy, "dvfs");
    EXPECT_DOUBLE_EQ(p.cluster_cap_w, 80000);
    EXPECT_DOUBLE_EQ(p.rack_cap_w, 25000);
    EXPECT_EQ(p.racks_per_pdu, 4);
    EXPECT_DOUBLE_EQ(p.host_idle_w, 450);
    EXPECT_DOUBLE_EQ(p.default_gpu.idle_w, 50);
    EXPECT_DOUBLE_EQ(p.default_gpu.active_w, 350);
    ASSERT_TRUE(p.gpu_power.contains("H100"));
    EXPECT_DOUBLE_EQ(p.gpu_power.at("H100").active_w, 700);
    EXPECT_DOUBLE_EQ(p.dvfs_exponent, 2.5);
    EXPECT_DOUBLE_EQ(p.min_clock, 0.6);
}

} // namespace
} // namespace tacc::power
