/**
 * @file
 * The million-job streaming regime: batched event-heap inserts,
 * simulator storage recycling, pull-based workload streams, streaming
 * metrics retention, and — the keystone — digest identity between the
 * streaming and materialized pipelines.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/scenario.h"
#include "driver/digest.h"
#include "sim/simulator.h"
#include "workload/stream.h"
#include "workload/trace_io.h"

namespace tacc {
namespace {

using namespace time_literals;
using sim::BatchEvent;
using sim::Simulator;

// ---------------------------------------------------------------------
// Batched heap inserts

/**
 * Property: for any prefix of serial pushes plus any burst sizes and
 * times, schedule_batch produces the exact pop order serial schedule_at
 * calls would — including empty and single-element bursts and bursts
 * colliding with existing instants (ties break on sequence numbers,
 * which the batch assigns in order).
 */
TEST(ScheduleBatch, PopOrderMatchesSerialPushesProperty)
{
    Rng rng(2024);
    for (int trial = 0; trial < 50; ++trial) {
        Simulator serial;
        Simulator batched;
        std::vector<int> serial_order;
        std::vector<int> batched_order;

        int tag = 0;
        const int rounds = int(rng.uniform_int(1, 6));
        for (int round = 0; round < rounds; ++round) {
            // A few serial pushes first, so bursts land in a heap with
            // arbitrary existing structure.
            const int pre = int(rng.uniform_int(0, 8));
            for (int i = 0; i < pre; ++i) {
                const auto t =
                    TimePoint::origin() +
                    Duration::seconds(double(rng.uniform_int(0, 20)));
                const int id = tag++;
                serial.schedule_at(t, "s", [&serial_order, id] {
                    serial_order.push_back(id);
                });
                batched.schedule_at(t, "s", [&batched_order, id] {
                    batched_order.push_back(id);
                });
            }
            // Burst sizes cross the sift-up/Floyd-rebuild threshold
            // (k <= old/4+1 sifts, larger bursts rebuild): 0, 1, and
            // up to 64 entries against heaps of ~tens.
            const int k = int(rng.uniform_int(0, 64));
            std::vector<BatchEvent> batch;
            for (int i = 0; i < k; ++i) {
                const auto t =
                    TimePoint::origin() +
                    Duration::seconds(double(rng.uniform_int(0, 20)));
                const int id = tag++;
                serial.schedule_at(t, "b", [&serial_order, id] {
                    serial_order.push_back(id);
                });
                batch.push_back(BatchEvent{
                    t, "b", [&batched_order, id] {
                        batched_order.push_back(id);
                    }});
            }
            batched.schedule_batch(batch);
        }
        serial.run();
        batched.run();
        ASSERT_EQ(serial_order, batched_order) << "trial " << trial;
    }
}

TEST(ScheduleBatch, EmptyBurstIsANoOp)
{
    Simulator sim;
    std::vector<BatchEvent> batch;
    sim.schedule_batch(batch);
    EXPECT_EQ(sim.pending(), 0u);
    EXPECT_FALSE(sim.step());
}

TEST(ScheduleBatch, SingleEventBurst)
{
    Simulator sim;
    bool fired = false;
    std::vector<BatchEvent> batch;
    batch.push_back(BatchEvent{TimePoint::origin() + 5_s, "one",
                               [&] { fired = true; }});
    sim.schedule_batch(batch);
    EXPECT_EQ(sim.pending(), 1u);
    sim.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.now(), TimePoint::origin() + 5_s);
}

TEST(ScheduleBatch, SameInstantTiesFireInBatchOrder)
{
    Simulator sim;
    std::vector<int> order;
    std::vector<BatchEvent> batch;
    for (int i = 0; i < 16; ++i) {
        batch.push_back(BatchEvent{TimePoint::origin() + 1_s, "tie",
                                   [&order, i] { order.push_back(i); }});
    }
    sim.schedule_batch(batch);
    sim.run();
    std::vector<int> expect;
    for (int i = 0; i < 16; ++i)
        expect.push_back(i);
    EXPECT_EQ(order, expect);
}

TEST(ScheduleBatch, BatchFromInsideEventInterleavesWithSerial)
{
    // A batch scheduled while an event runs (the window-refill shape):
    // its entries must interleave with serially scheduled events purely
    // by (time, seq).
    Simulator sim;
    std::vector<std::string> order;
    sim.schedule_after(10_s, "later",
                       [&] { order.push_back("later"); });
    sim.schedule_after(2_s, "refill", [&] {
        std::vector<BatchEvent> batch;
        batch.push_back(BatchEvent{sim.now() + 3_s, "w1",
                                   [&] { order.push_back("w1"); }});
        batch.push_back(BatchEvent{sim.now() + 8_s, "w2",
                                   [&] { order.push_back("w2"); }});
        sim.schedule_batch(batch);
    });
    sim.run();
    EXPECT_EQ(order,
              (std::vector<std::string>{"w1", "later", "w2"}));
}

// ---------------------------------------------------------------------
// Simulator reset and storage recycling

TEST(SimulatorReset, ReturnsToPristineStateAndKillsStaleIds)
{
    Simulator sim;
    int fired = 0;
    const auto id = sim.schedule_after(5_s, "a", [&] { ++fired; });
    sim.schedule_after(1_s, "b", [&] { ++fired; });
    sim.run_until(TimePoint::origin() + 2_s);
    EXPECT_EQ(fired, 1);

    sim.reset();
    EXPECT_EQ(sim.now(), TimePoint::origin());
    EXPECT_EQ(sim.pending(), 0u);
    EXPECT_EQ(sim.processed(), 0u);
    EXPECT_FALSE(sim.cancel(id)); // stale id from before the reset
    sim.run();
    EXPECT_EQ(fired, 1); // the pending event did not survive

    // The engine is fully usable after reset.
    sim.schedule_after(3_s, "c", [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.now(), TimePoint::origin() + 3_s);
}

TEST(SimulatorStorage, AdoptedStorageReplaysIdenticalEventOrder)
{
    // Run a workload on a fresh engine, recycle its storage into a new
    // engine, run the same workload: the fire order must be identical
    // (slot handout order is normalized by the descending free list).
    auto run_workload = [](Simulator &sim) {
        std::vector<int> order;
        for (int i = 0; i < 40; ++i) {
            sim.schedule_after(Duration::seconds(double((i * 7) % 13)),
                               "w", [&order, i] { order.push_back(i); });
        }
        sim.run();
        return order;
    };

    Simulator first;
    const auto expect = run_workload(first);

    Simulator second;
    second.adopt_storage(first.release_storage());
    EXPECT_EQ(second.pending(), 0u);
    const auto got = run_workload(second);
    EXPECT_EQ(got, expect);
}

TEST(SimulatorStorage, ReleaseDestroysPendingCallbacks)
{
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> watch = token;
    Simulator sim;
    sim.schedule_after(5_s, "hold", [token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(watch.expired()); // the pending event holds it
    (void)sim.release_storage();
    EXPECT_TRUE(watch.expired()); // release dropped the capture
}

// ---------------------------------------------------------------------
// Workload streams

workload::TraceConfig
small_trace(int jobs, uint64_t seed)
{
    workload::TraceConfig trace;
    trace.num_jobs = jobs;
    trace.seed = seed;
    trace.mean_interarrival_s = 40.0;
    return trace;
}

TEST(WorkloadStream, SyntheticStreamMatchesGeneratedTrace)
{
    const auto config = small_trace(300, 11);
    workload::TraceGenerator gen(config);
    const auto trace = gen.generate();

    workload::SyntheticWorkloadStream stream(config);
    EXPECT_EQ(stream.size_hint(), 300u);
    std::vector<workload::SubmittedTask> pulled;
    // Ragged window sizes; the final short pull signals exhaustion.
    while (stream.pull(pulled, 64) == 64) {
    }
    ASSERT_EQ(pulled.size(), trace.size());
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(pulled[i].arrival, trace[i].arrival);
        EXPECT_EQ(pulled[i].spec.name, trace[i].spec.name);
        EXPECT_EQ(pulled[i].spec.gpus, trace[i].spec.gpus);
    }

    // rewind reproduces the identical sequence.
    stream.rewind();
    std::vector<workload::SubmittedTask> again;
    stream.pull(again, trace.size());
    ASSERT_EQ(again.size(), trace.size());
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(again[i].arrival, trace[i].arrival);
}

TEST(WorkloadStream, FileTraceStreamRoundTrips)
{
    workload::TraceGenerator gen(small_trace(120, 5));
    const auto trace = gen.generate();
    const std::string path =
        testing::TempDir() + "/t17_stream_trace.csv";
    ASSERT_TRUE(workload::write_trace_file(path, trace).is_ok());

    workload::FileTraceStream stream(path);
    ASSERT_TRUE(stream.status().is_ok());
    std::vector<workload::SubmittedTask> pulled;
    while (stream.pull(pulled, 17) == 17) {
    }
    ASSERT_TRUE(stream.status().is_ok());
    ASSERT_EQ(pulled.size(), trace.size());
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(pulled[i].arrival, trace[i].arrival);
        EXPECT_EQ(pulled[i].spec.user, trace[i].spec.user);
        EXPECT_EQ(pulled[i].spec.iterations, trace[i].spec.iterations);
    }

    stream.rewind();
    std::vector<workload::SubmittedTask> first;
    EXPECT_EQ(stream.pull(first, 1), 1u);
    EXPECT_EQ(first.at(0).arrival, trace.front().arrival);
    std::remove(path.c_str());
}

TEST(WorkloadStream, FileStreamSurfacesMalformedRows)
{
    const std::string path = testing::TempDir() + "/t17_bad_trace.csv";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(workload::trace_csv_header(), f);
    std::fputs("\nnot,a,valid,row\n", f);
    std::fclose(f);

    workload::FileTraceStream stream(path);
    ASSERT_TRUE(stream.status().is_ok()); // header is fine
    std::vector<workload::SubmittedTask> pulled;
    EXPECT_EQ(stream.pull(pulled, 8), 0u);
    EXPECT_FALSE(stream.status().is_ok());
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Streaming scenarios: digest identity and reclamation

core::ScenarioConfig
scenario(const std::string &scheduler, const std::string &placement,
         uint64_t seed, bool streaming)
{
    core::ScenarioConfig config;
    config.stack.cluster.topology.racks = 2;
    config.stack.cluster.topology.nodes_per_rack = 4;
    config.stack.cluster.node.gpu_count = 8;
    config.stack.scheduler = scheduler;
    config.stack.placement = placement;
    config.stack.seed = seed;
    config.stack.emit_monitor_logs = false;
    config.trace = small_trace(150, seed);
    config.streaming = streaming;
    return config;
}

TEST(StreamingScenario, DigestMatchesMaterializedAcrossPolicies)
{
    for (const char *scheduler :
         {"fairshare", "fifo-skip", "backfill-easy"}) {
        for (uint64_t seed : {1u, 2u}) {
            const auto mat = core::run_scenario(
                scenario(scheduler, "topology", seed, false));
            const auto str = core::run_scenario(
                scenario(scheduler, "topology", seed, true));
            EXPECT_FALSE(mat.streaming);
            EXPECT_TRUE(str.streaming);
            EXPECT_EQ(driver::scenario_digest(mat),
                      driver::scenario_digest(str))
                << scheduler << " seed " << seed;
            // Integer aggregates agree exactly; the float sums agree
            // bit-for-bit because both modes accumulate in record
            // order.
            EXPECT_EQ(mat.submitted, str.submitted);
            EXPECT_EQ(mat.completed, str.completed);
            EXPECT_EQ(mat.failed, str.failed);
            EXPECT_EQ(mat.preemptions, str.preemptions);
            EXPECT_EQ(mat.total_gpu_seconds, str.total_gpu_seconds);
            EXPECT_EQ(mat.makespan_s, str.makespan_s);
        }
    }
}

TEST(StreamingScenario, DigestMatchesUnderFailureInjection)
{
    auto config = scenario("fairshare", "pack", 3, false);
    config.stack.exec.failure.node_mtbf_hours = 40.0;
    config.stack.exec.failure.persistent_prob = 0.05;
    auto streaming_config = config;
    streaming_config.streaming = true;

    const auto mat = core::run_scenario(config);
    const auto str = core::run_scenario(streaming_config);
    EXPECT_GT(mat.segment_failures, 0u); // the axis is actually hot
    EXPECT_EQ(mat.segment_failures, str.segment_failures);
    EXPECT_EQ(driver::scenario_digest(mat),
              driver::scenario_digest(str));
}

TEST(StreamingScenario, ArenaReuseKeepsDigestsIdentical)
{
    core::StackArena arena;
    const auto fresh =
        core::run_scenario(scenario("fairshare", "topology", 9, true));
    // Prime the arena with a *different* scenario, then re-run the
    // reference one on the recycled storage.
    (void)core::run_scenario(scenario("fifo-skip", "pack", 4, true),
                             &arena);
    const auto recycled = core::run_scenario(
        scenario("fairshare", "topology", 9, true), &arena);
    EXPECT_EQ(driver::scenario_digest(fresh),
              driver::scenario_digest(recycled));
    EXPECT_EQ(fresh.completed, recycled.completed);

    // Materialized runs accept an arena too.
    const auto mat = core::run_scenario(
        scenario("fairshare", "topology", 9, false), &arena);
    EXPECT_EQ(driver::scenario_digest(mat),
              driver::scenario_digest(fresh));
}

TEST(StreamingScenario, SketchStatsTrackExactOnes)
{
    const auto mat =
        core::run_scenario(scenario("fairshare", "topology", 1, false));
    const auto str =
        core::run_scenario(scenario("fairshare", "topology", 1, true));
    // Means are exact (RunningStats inside the sketch); percentiles are
    // log-bucketed with ~6.3% worst-case relative error.
    EXPECT_NEAR(str.mean_jct_s, mat.mean_jct_s, 1e-9);
    EXPECT_NEAR(str.mean_wait_s, mat.mean_wait_s, 1e-9);
    // Bucket quantization plus closest-rank discretization: allow the
    // sketch ~one octave sub-bucket (2^(1/8) ~ 9%) plus rank slack.
    if (mat.p99_jct_s > 0) {
        EXPECT_NEAR(str.p99_jct_s, mat.p99_jct_s,
                    0.15 * mat.p99_jct_s);
    }
    if (mat.p50_jct_s > 0) {
        EXPECT_NEAR(str.p50_jct_s, mat.p50_jct_s,
                    0.15 * mat.p50_jct_s);
    }
    EXPECT_NEAR(str.mean_utilization, mat.mean_utilization, 1e-6);
    EXPECT_TRUE(str.records.empty());
    EXPECT_FALSE(mat.records.empty());
}

TEST(StreamingStack, ReclaimsTerminalJobs)
{
    core::StackConfig config;
    config.cluster.topology.racks = 2;
    config.cluster.topology.nodes_per_rack = 4;
    config.cluster.node.gpu_count = 8;
    config.emit_monitor_logs = false;
    config.streaming = true;
    core::TaccStack stack(config);

    workload::SyntheticWorkloadStream stream(small_trace(200, 21));
    stack.submit_stream(stream, 32);
    ASSERT_TRUE(stack.run_to_completion());

    EXPECT_EQ(stack.total_submitted(), 200u);
    const auto &metrics = stack.metrics();
    EXPECT_EQ(metrics.completed_count() + metrics.failed_count(), 200u);
    // Terminal jobs were erased as they finished; only live jobs (none,
    // here) may remain, and no per-job records were retained.
    for (const auto *job : stack.jobs())
        EXPECT_FALSE(job->terminal());
    EXPECT_TRUE(stack.jobs().empty());
    EXPECT_TRUE(metrics.records().empty());
}

} // namespace
} // namespace tacc
