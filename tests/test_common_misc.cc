/**
 * @file
 * Unit tests for Status/StatusOr, string utilities and TextTable.
 */
#include <gtest/gtest.h>

#include "common/status.h"
#include "common/strings.h"
#include "common/table.h"

namespace tacc {
namespace {

TEST(Status, OkByDefault)
{
    Status s;
    EXPECT_TRUE(s.is_ok());
    EXPECT_EQ(s.str(), "ok");
}

TEST(Status, CarriesCodeAndMessage)
{
    const Status s = Status::not_found("job 42");
    EXPECT_FALSE(s.is_ok());
    EXPECT_EQ(s.code(), StatusCode::kNotFound);
    EXPECT_EQ(s.message(), "job 42");
    EXPECT_EQ(s.str(), "not_found: job 42");
}

TEST(Status, AllCodeNamesDistinct)
{
    EXPECT_STREQ(status_code_name(StatusCode::kInvalidArgument),
                 "invalid_argument");
    EXPECT_STREQ(status_code_name(StatusCode::kResourceExhausted),
                 "resource_exhausted");
    EXPECT_STREQ(status_code_name(StatusCode::kFailedPrecondition),
                 "failed_precondition");
    EXPECT_STREQ(status_code_name(StatusCode::kUnavailable), "unavailable");
    EXPECT_STREQ(status_code_name(StatusCode::kInternal), "internal");
    EXPECT_STREQ(status_code_name(StatusCode::kAlreadyExists),
                 "already_exists");
}

TEST(StatusOr, HoldsValue)
{
    StatusOr<int> v(42);
    ASSERT_TRUE(v.is_ok());
    EXPECT_EQ(v.value(), 42);
    EXPECT_TRUE(v.status().is_ok());
    EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOr, HoldsError)
{
    StatusOr<int> v(Status::invalid_argument("nope"));
    EXPECT_FALSE(v.is_ok());
    EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOr, MutableValue)
{
    StatusOr<std::string> v(std::string("abc"));
    v.value() += "d";
    EXPECT_EQ(v.value(), "abcd");
}

TEST(Strings, Strfmt)
{
    EXPECT_EQ(strfmt("j-%03d/%s", 7, "x"), "j-007/x");
    EXPECT_EQ(strfmt("%s", ""), "");
}

TEST(Strings, SplitPreservesEmptyFields)
{
    const auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(Strings, JoinInvertsSplit)
{
    const std::vector<std::string> parts = {"x", "y", "z"};
    EXPECT_EQ(join(parts, ","), "x,y,z");
    EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  abc\t\n"), "abc");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(starts_with("tacc-node", "tacc"));
    EXPECT_FALSE(starts_with("ta", "tacc"));
}

TEST(Strings, FormatBytes)
{
    EXPECT_EQ(format_bytes(512), "512 B");
    EXPECT_EQ(format_bytes(2048), "2.00 KiB");
    EXPECT_EQ(format_bytes(3ull << 30), "3.00 GiB");
}

TEST(Strings, FormatGbps)
{
    EXPECT_EQ(format_gbps(12.5e9 / 8.0 * 8.0 / 8.0), "12.50 Gbps");
}

TEST(TextTable, RendersHeaderRuleAndAlignment)
{
    TextTable t("demo");
    t.set_header({"name", "value"});
    t.add_row({"alpha", "1.5"});
    t.add_row({"b", "10"});
    const std::string s = t.str();
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, NumberFormatters)
{
    EXPECT_EQ(TextTable::fixed(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::pct(0.4567, 1), "45.7%");
    EXPECT_EQ(TextTable::num(1234.5, 3), "1.23e+03");
}

TEST(TextTable, CsvQuoting)
{
    TextTable t;
    t.set_header({"a", "b"});
    t.add_row({"x,y", "with \"quote\""});
    const std::string csv = t.csv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
    EXPECT_NE(csv.find("\"with \"\"quote\"\"\""), std::string::npos);
}

} // namespace
} // namespace tacc
