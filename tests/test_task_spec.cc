/**
 * @file
 * Unit tests for the Task Schema Layer: validation and the canonical text
 * form (the reproducibility guarantee: parse(to_text(s)) == s).
 */
#include <gtest/gtest.h>

#include "workload/task_spec.h"

namespace tacc::workload {
namespace {

TaskSpec
valid_spec()
{
    TaskSpec spec;
    spec.name = "train-1";
    spec.user = "alice";
    spec.group = "cv-lab";
    spec.gpus = 8;
    spec.qos = QosClass::kBatch;
    spec.model = "resnet50";
    spec.iterations = 5000;
    spec.artifacts = {{"alice/code", 1'000'000, 2},
                      {"cv-lab/dataset", 5'000'000'000, 1}};
    return spec;
}

TEST(TaskSpec, ValidSpecPasses)
{
    EXPECT_TRUE(valid_spec().validate().is_ok());
}

struct InvalidCase {
    const char *label;
    void (*mutate)(TaskSpec &);
};

class TaskSpecValidation : public ::testing::TestWithParam<InvalidCase>
{
};

TEST_P(TaskSpecValidation, RejectsInvalidField)
{
    TaskSpec spec = valid_spec();
    GetParam().mutate(spec);
    EXPECT_FALSE(spec.validate().is_ok()) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    AllFields, TaskSpecValidation,
    ::testing::Values(
        InvalidCase{"empty_name", [](TaskSpec &s) { s.name.clear(); }},
        InvalidCase{"empty_user", [](TaskSpec &s) { s.user.clear(); }},
        InvalidCase{"empty_group", [](TaskSpec &s) { s.group.clear(); }},
        InvalidCase{"zero_gpus", [](TaskSpec &s) { s.gpus = 0; }},
        InvalidCase{"negative_gpus", [](TaskSpec &s) { s.gpus = -1; }},
        InvalidCase{"zero_node_limit",
                    [](TaskSpec &s) { s.gpus_per_node_limit = 0; }},
        InvalidCase{"negative_cpu",
                    [](TaskSpec &s) { s.cpu_cores_per_gpu = -1; }},
        InvalidCase{"negative_mem",
                    [](TaskSpec &s) { s.memory_gb_per_gpu = -1; }},
        InvalidCase{"zero_time_limit",
                    [](TaskSpec &s) { s.time_limit = Duration::zero(); }},
        InvalidCase{"empty_model", [](TaskSpec &s) { s.model.clear(); }},
        InvalidCase{"zero_iterations",
                    [](TaskSpec &s) { s.iterations = 0; }},
        InvalidCase{"artifact_empty_name",
                    [](TaskSpec &s) { s.artifacts[0].name.clear(); }},
        InvalidCase{"artifact_zero_bytes",
                    [](TaskSpec &s) { s.artifacts[0].bytes = 0; }},
        InvalidCase{"elastic_only_min",
                    [](TaskSpec &s) { s.min_gpus = 2; }},
        InvalidCase{"elastic_only_max",
                    [](TaskSpec &s) { s.max_gpus = 16; }},
        InvalidCase{"elastic_inverted",
                    [](TaskSpec &s) {
                        s.min_gpus = 16;
                        s.max_gpus = 2;
                    }},
        InvalidCase{"elastic_outside_bounds",
                    [](TaskSpec &s) {
                        s.min_gpus = 16;
                        s.max_gpus = 32; // gpus=8 below min
                    }}),
    [](const ::testing::TestParamInfo<InvalidCase> &info) {
        return info.param.label;
    });

TEST(TaskSpec, ElasticBoundsAccepted)
{
    TaskSpec spec = valid_spec();
    spec.min_gpus = 2;
    spec.max_gpus = 16;
    EXPECT_TRUE(spec.validate().is_ok());
    EXPECT_TRUE(spec.is_elastic());
    EXPECT_FALSE(valid_spec().is_elastic());
}

TEST(TaskSpec, TextRoundTripExact)
{
    TaskSpec spec = valid_spec();
    spec.qos = QosClass::kInteractive;
    spec.preemptible = false;
    spec.runtime = RuntimePref::kContainer;
    spec.transport = TransportPref::kRdma;
    spec.min_gpus = 4;
    spec.max_gpus = 16;
    spec.time_limit = Duration::seconds(7200);

    auto parsed = TaskSpec::parse(spec.to_text());
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().str();
    EXPECT_EQ(parsed.value(), spec);
}

TEST(TaskSpec, RoundTripDefaults)
{
    const TaskSpec spec = valid_spec();
    auto parsed = TaskSpec::parse(spec.to_text());
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), spec);
}

TEST(TaskSpec, ParseSkipsCommentsAndBlankLines)
{
    std::string text = valid_spec().to_text();
    text = "# a comment\n\n" + text + "\n# trailing\n";
    auto parsed = TaskSpec::parse(text);
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), valid_spec());
}

TEST(TaskSpec, ParseRejectsUnknownKey)
{
    auto parsed = TaskSpec::parse(valid_spec().to_text() + "bogus: 1\n");
    EXPECT_FALSE(parsed.is_ok());
}

TEST(TaskSpec, ParseRejectsMalformedLines)
{
    EXPECT_FALSE(TaskSpec::parse("no colon here\n").is_ok());
    EXPECT_FALSE(
        TaskSpec::parse(valid_spec().to_text() + "gpus: soup\n").is_ok());
    EXPECT_FALSE(
        TaskSpec::parse(valid_spec().to_text() + "gpus: 8x\n").is_ok());
    EXPECT_FALSE(
        TaskSpec::parse(valid_spec().to_text() + "artifact: broken\n")
            .is_ok());
    EXPECT_FALSE(
        TaskSpec::parse(valid_spec().to_text() + "preemptible: maybe\n")
            .is_ok());
    EXPECT_FALSE(
        TaskSpec::parse(valid_spec().to_text() + "qos: royal\n").is_ok());
}

TEST(TaskSpec, ParseValidatesResult)
{
    // Structurally fine but semantically invalid (gpus 0).
    std::string text = valid_spec().to_text();
    const auto pos = text.find("gpus: 8");
    text.replace(pos, 7, "gpus: 0");
    EXPECT_FALSE(TaskSpec::parse(text).is_ok());
}

TEST(EnumNames, RoundTrip)
{
    for (auto qos : {QosClass::kInteractive, QosClass::kBatch,
                     QosClass::kBestEffort}) {
        auto back = parse_qos_class(qos_class_name(qos));
        ASSERT_TRUE(back.is_ok());
        EXPECT_EQ(back.value(), qos);
    }
    for (auto r : {RuntimePref::kAuto, RuntimePref::kBareMetal,
                   RuntimePref::kContainer}) {
        auto back = parse_runtime_pref(runtime_pref_name(r));
        ASSERT_TRUE(back.is_ok());
        EXPECT_EQ(back.value(), r);
    }
    for (auto t : {TransportPref::kAuto, TransportPref::kTcp,
                   TransportPref::kRdma, TransportPref::kInNetwork}) {
        auto back = parse_transport_pref(transport_pref_name(t));
        ASSERT_TRUE(back.is_ok());
        EXPECT_EQ(back.value(), t);
    }
}

} // namespace
} // namespace tacc::workload
