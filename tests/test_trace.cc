/**
 * @file
 * Property tests for the campus-workload generator: determinism, sorted
 * arrivals, valid specs, and the published-trace-shaped distributions.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "workload/model.h"
#include "workload/trace.h"

namespace tacc::workload {
namespace {

TraceConfig
config(int jobs = 2000, uint64_t seed = 1)
{
    TraceConfig c;
    c.num_jobs = jobs;
    c.seed = seed;
    return c;
}

TEST(Trace, DeterministicForSeed)
{
    auto a = TraceGenerator(config(200, 5)).generate();
    auto b = TraceGenerator(config(200, 5)).generate();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].spec, b[i].spec);
    }
}

TEST(Trace, DifferentSeedsDiffer)
{
    auto a = TraceGenerator(config(50, 1)).generate();
    auto b = TraceGenerator(config(50, 2)).generate();
    int same = 0;
    for (size_t i = 0; i < a.size(); ++i)
        same += a[i].arrival == b[i].arrival;
    EXPECT_LT(same, 5);
}

TEST(Trace, ArrivalsSortedAndSpecsValid)
{
    const auto trace = TraceGenerator(config()).generate();
    ASSERT_EQ(trace.size(), 2000u);
    for (size_t i = 0; i < trace.size(); ++i) {
        if (i > 0) {
            EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
        }
        EXPECT_TRUE(trace[i].spec.validate().is_ok());
        EXPECT_TRUE(
            ModelCatalog::instance().contains(trace[i].spec.model));
    }
}

TEST(Trace, UniqueJobNames)
{
    const auto trace = TraceGenerator(config(500)).generate();
    std::set<std::string> names;
    for (const auto &t : trace)
        names.insert(t.spec.name);
    EXPECT_EQ(names.size(), trace.size());
}

TEST(Trace, SingleGpuJobsDominate)
{
    const auto trace = TraceGenerator(config()).generate();
    int single = 0;
    for (const auto &t : trace)
        single += t.spec.gpus == 1;
    const double frac = double(single) / double(trace.size());
    EXPECT_GT(frac, 0.45);
    EXPECT_LT(frac, 0.75);
}

TEST(Trace, DemandsArePowersOfTwo)
{
    const auto trace = TraceGenerator(config()).generate();
    for (const auto &t : trace) {
        const int g = t.spec.gpus;
        EXPECT_EQ(g & (g - 1), 0) << "gpus=" << g;
        EXPECT_LE(g, 64);
    }
}

TEST(Trace, QosMixMatchesConfig)
{
    TraceConfig c = config(5000);
    c.frac_interactive = 0.3;
    c.frac_best_effort = 0.2;
    const auto trace = TraceGenerator(c).generate();
    std::map<QosClass, int> counts;
    for (const auto &t : trace)
        ++counts[t.spec.qos];
    EXPECT_NEAR(double(counts[QosClass::kInteractive]) / 5000.0, 0.3,
                0.03);
    EXPECT_NEAR(double(counts[QosClass::kBestEffort]) / 5000.0, 0.2, 0.03);
}

TEST(Trace, InteractiveJobsAreSmallAndNotPreemptible)
{
    const auto trace = TraceGenerator(config()).generate();
    for (const auto &t : trace) {
        if (t.spec.qos == QosClass::kInteractive) {
            EXPECT_LE(t.spec.gpus, 2);
            EXPECT_FALSE(t.spec.preemptible);
        } else {
            EXPECT_TRUE(t.spec.preemptible);
        }
    }
}

TEST(Trace, BatchDurationsHeavyTailed)
{
    const auto trace = TraceGenerator(config(5000)).generate();
    std::vector<double> durations;
    for (const auto &t : trace) {
        if (t.spec.qos != QosClass::kBatch)
            continue;
        const auto profile =
            ModelCatalog::instance().find(t.spec.model).value();
        durations.push_back(double(t.spec.iterations) *
                            estimated_iteration_s(profile, t.spec.gpus));
    }
    std::sort(durations.begin(), durations.end());
    const double p50 = durations[durations.size() / 2];
    const double p99 = durations[durations.size() * 99 / 100];
    EXPECT_GT(p99 / p50, 10.0); // heavy tail
}

TEST(Trace, TimeLimitOverestimatesDuration)
{
    const auto trace = TraceGenerator(config(1000)).generate();
    for (const auto &t : trace) {
        const auto profile =
            ModelCatalog::instance().find(t.spec.model).value();
        const double ideal =
            double(t.spec.iterations) *
            estimated_iteration_s(profile, t.spec.gpus);
        EXPECT_GT(t.spec.time_limit.to_seconds(), ideal * 0.99);
    }
}

TEST(Trace, MeanInterarrivalMatchesConfig)
{
    TraceConfig c = config(5000);
    c.mean_interarrival_s = 42.0;
    const auto trace = TraceGenerator(c).generate();
    const double span = trace.back().arrival.to_seconds();
    EXPECT_NEAR(span / 5000.0, 42.0, 3.0);
}

TEST(Trace, DiurnalModulatesRate)
{
    TraceConfig c = config(20000);
    c.diurnal = true;
    c.diurnal_peak_ratio = 6.0;
    c.mean_interarrival_s = 30.0;
    const auto trace = TraceGenerator(c).generate();
    // Count arrivals near midnight vs near noon over all days.
    int night = 0, day = 0;
    for (const auto &t : trace) {
        const double hour =
            std::fmod(t.arrival.to_seconds(), 86400.0) / 3600.0;
        if (hour < 3.0 || hour >= 21.0)
            ++night;
        else if (hour >= 9.0 && hour < 15.0)
            ++day;
    }
    EXPECT_GT(day, night * 2);
}

TEST(Trace, ElasticFractionHonored)
{
    TraceConfig c = config(5000);
    c.frac_elastic = 0.5;
    const auto trace = TraceGenerator(c).generate();
    int elastic = 0, eligible = 0;
    for (const auto &t : trace) {
        if (t.spec.qos == QosClass::kBatch && t.spec.gpus >= 2) {
            ++eligible;
            elastic += t.spec.is_elastic();
        }
    }
    ASSERT_GT(eligible, 100);
    EXPECT_NEAR(double(elastic) / double(eligible), 0.5, 0.06);
}

TEST(Trace, SharedArtifactsAcrossJobs)
{
    const auto trace = TraceGenerator(config(200)).generate();
    std::map<std::string, int> artifact_uses;
    for (const auto &t : trace) {
        for (const auto &a : t.spec.artifacts)
            ++artifact_uses[a.name];
    }
    // Dependency sets and group datasets are shared heavily.
    int shared = 0;
    for (const auto &[name, uses] : artifact_uses)
        shared += uses > 10;
    EXPECT_GT(shared, 0);
}

TEST(EstimatedIteration, MonotoneInModelSizeAndReasonable)
{
    const auto &catalog = ModelCatalog::instance();
    const auto resnet = catalog.find("resnet50").value();
    const auto gpt = catalog.find("gpt2-xl").value();
    EXPECT_GT(estimated_iteration_s(gpt, 8),
              estimated_iteration_s(resnet, 8));
    // Multi-node is never faster per iteration than single-GPU compute.
    EXPECT_GE(estimated_iteration_s(resnet, 64),
              resnet.compute_time_s(312.0));
}

TEST(ModelCatalog, LookupAndNames)
{
    const auto &catalog = ModelCatalog::instance();
    EXPECT_TRUE(catalog.contains("resnet50"));
    EXPECT_FALSE(catalog.contains("skynet"));
    EXPECT_FALSE(catalog.find("skynet").is_ok());
    EXPECT_EQ(catalog.names().size(), catalog.profiles().size());
    for (const auto &p : catalog.profiles()) {
        EXPECT_GT(p.param_bytes, 0);
        EXPECT_GT(p.flops_per_iter, 0);
        EXPECT_GT(p.compute_efficiency, 0);
        EXPECT_LE(p.compute_efficiency, 1.0);
        EXPECT_GE(p.overlap_fraction, 0.0);
        EXPECT_LE(p.overlap_fraction, 1.0);
        EXPECT_GT(p.compute_time_s(312.0), 0.0);
    }
}

} // namespace
} // namespace tacc::workload
