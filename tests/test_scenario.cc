/**
 * @file
 * Tests for the scenario harness (the API every bench stands on).
 */
#include <gtest/gtest.h>

#include "core/scenario.h"

namespace tacc::core {
namespace {

ScenarioConfig
small_scenario(const std::string &scheduler = "fairshare")
{
    ScenarioConfig config;
    config.stack.cluster.topology.racks = 1;
    config.stack.cluster.topology.nodes_per_rack = 4;
    config.stack.scheduler = scheduler;
    config.stack.emit_monitor_logs = false;
    config.trace.num_jobs = 60;
    config.trace.seed = 5;
    config.trace.mean_interarrival_s = 120.0;
    config.trace.gpu_demand_pmf = {{1, 0.5}, {2, 0.2}, {4, 0.2}, {8, 0.1}};
    return config;
}

TEST(Scenario, PopulatesEverySummaryField)
{
    const auto r = run_scenario(small_scenario());
    EXPECT_EQ(r.scheduler, "fairshare");
    EXPECT_EQ(r.placement, "topology");
    EXPECT_EQ(r.submitted, 60u);
    EXPECT_EQ(r.completed, 60u);
    EXPECT_EQ(r.failed, 0u);
    EXPECT_EQ(r.never_finished, 0u);
    EXPECT_GT(r.mean_jct_s, 0);
    EXPECT_GE(r.p99_jct_s, r.p50_jct_s);
    EXPECT_GE(r.mean_slowdown, 1.0);
    EXPECT_GT(r.mean_utilization, 0);
    EXPECT_LE(r.mean_utilization, 1.0);
    EXPECT_GT(r.arrival_window_utilization, 0);
    EXPECT_GT(r.arrival_span_s, 0);
    EXPECT_GE(r.makespan_s, r.arrival_span_s);
    EXPECT_GT(r.group_fairness, 0);
    EXPECT_LE(r.group_fairness, 1.0);
    EXPECT_GT(r.mean_provision_s, 0);
    EXPECT_GT(r.cache_transfer_savings, 0.5); // shared deps dominate
    EXPECT_EQ(r.jct_samples.count(), 60u);
    EXPECT_EQ(r.wait_samples.count(), 60u);
    EXPECT_FALSE(r.utilization_series.empty());
    EXPECT_EQ(r.utilization_series.size(), r.queue_depth_series.size());
    EXPECT_GT(r.total_gpu_seconds, r.total_ideal_gpu_seconds * 0.5);
    EXPECT_GE(r.total_gpu_seconds, 0);
}

TEST(Scenario, DeterministicAcrossRuns)
{
    const auto a = run_scenario(small_scenario());
    const auto b = run_scenario(small_scenario());
    EXPECT_EQ(a.mean_jct_s, b.mean_jct_s);
    EXPECT_EQ(a.p99_wait_s, b.p99_wait_s);
    EXPECT_EQ(a.total_gpu_seconds, b.total_gpu_seconds);
    EXPECT_EQ(a.utilization_series, b.utilization_series);
}

TEST(Scenario, SchedulerChangesOutcome)
{
    auto strict = small_scenario("fifo");
    strict.trace.mean_interarrival_s = 40.0; // force queueing
    auto skipping = strict;
    skipping.stack.scheduler = "fifo-skip";
    const auto a = run_scenario(strict);
    const auto b = run_scenario(skipping);
    EXPECT_GT(a.mean_wait_s, b.mean_wait_s); // head-of-line blocking
}

TEST(Scenario, DeadlineFieldFlowsThrough)
{
    auto config = small_scenario("edf");
    config.trace.frac_deadline = 1.0;
    config.trace.deadline_factor_lo = 100.0; // generous: all make it
    config.trace.deadline_factor_hi = 200.0;
    config.trace.deadline_slack_s = 86400.0;
    const auto r = run_scenario(config);
    EXPECT_DOUBLE_EQ(r.deadline_miss_rate, 0.0);
}

} // namespace
} // namespace tacc::core
