/**
 * @file
 * Unit tests for tenant accounting: billing-period bucketing, per-group
 * statements, preemption-loss attribution, and ledger totals.
 */
#include <gtest/gtest.h>

#include "ops/accounting.h"

namespace tacc::ops {
namespace {

using namespace time_literals;

UsageEvent
event(const std::string &group, double day, double gpu_seconds)
{
    UsageEvent e;
    e.group = group;
    e.user = "u";
    e.finished = TimePoint::origin() + Duration::from_seconds(day * 86400);
    e.gpu_seconds = gpu_seconds;
    e.ideal_gpu_seconds = gpu_seconds;
    e.started = true;
    e.completed = true;
    return e;
}

TEST(Accountant, PeriodBucketing)
{
    Accountant accountant; // 30-day periods
    EXPECT_EQ(accountant.period_of(TimePoint::origin()), 0);
    EXPECT_EQ(accountant.period_of(TimePoint::origin() +
                                   Duration::days(29)),
              0);
    EXPECT_EQ(accountant.period_of(TimePoint::origin() +
                                   Duration::days(30)),
              1);
    EXPECT_EQ(accountant.period_of(TimePoint::origin() +
                                   Duration::days(100)),
              3);

    Accountant daily(Duration::days(1));
    EXPECT_EQ(daily.period_of(TimePoint::origin() + 25_h), 1);
}

TEST(Accountant, StatementsOrderedByPeriodThenGroup)
{
    Accountant accountant;
    accountant.record(event("zeta", 5, 3600));
    accountant.record(event("alpha", 40, 3600));  // period 1
    accountant.record(event("alpha", 10, 7200));  // period 0
    accountant.record(event("alpha", 12, 1800));  // period 0 again

    const auto statements = accountant.statements();
    ASSERT_EQ(statements.size(), 3u);
    EXPECT_EQ(statements[0].group, "alpha");
    EXPECT_EQ(statements[0].period, 0);
    EXPECT_EQ(statements[0].jobs, 2);
    EXPECT_DOUBLE_EQ(statements[0].gpu_hours, 2.5);
    EXPECT_EQ(statements[1].group, "zeta");
    EXPECT_EQ(statements[1].period, 0);
    EXPECT_EQ(statements[2].group, "alpha");
    EXPECT_EQ(statements[2].period, 1);
    EXPECT_EQ(accountant.event_count(), 4u);
    EXPECT_DOUBLE_EQ(accountant.total_gpu_hours(), 1.0 + 1.0 + 2.0 + 0.5);
}

TEST(Accountant, ClassifiesOutcomesAndPreemptionLoss)
{
    Accountant accountant;

    UsageEvent done = event("g", 1, 7200);
    done.wait_s = 1800;
    accountant.record(done);

    UsageEvent preempted = event("g", 2, 5400);
    preempted.ideal_gpu_seconds = 3600; // 1800 GPU-s re-run tax
    preempted.preemptions = 2;
    accountant.record(preempted);

    UsageEvent failed = event("g", 3, 4000);
    failed.completed = false;
    failed.failed = true;
    failed.ideal_gpu_seconds = 400;
    failed.missed_deadline = true;
    accountant.record(failed);

    UsageEvent killed = event("g", 4, 0);
    killed.completed = false;
    killed.started = false;
    accountant.record(killed);

    // Completed below its ideal (elastic shrink): loss clamps at zero.
    UsageEvent lucky = event("g", 5, 1000);
    lucky.ideal_gpu_seconds = 2000;
    lucky.preemptions = 1;
    accountant.record(lucky);

    const auto statements = accountant.statements();
    ASSERT_EQ(statements.size(), 1u);
    const GroupStatement &s = statements[0];
    EXPECT_EQ(s.jobs, 5);
    EXPECT_EQ(s.completed, 3);
    EXPECT_EQ(s.failed, 1);
    EXPECT_EQ(s.killed, 1);
    EXPECT_EQ(s.preemptions, 3);
    EXPECT_EQ(s.deadline_misses, 1);
    EXPECT_DOUBLE_EQ(s.queue_hours, 0.5);
    // 1800 GPU-s from the preempted job + 3600 from the failed one.
    EXPECT_DOUBLE_EQ(s.preemption_loss_gpu_hours,
                     (1800.0 + 3600.0) / 3600.0);
    EXPECT_DOUBLE_EQ(s.gpu_hours,
                     (7200.0 + 5400.0 + 4000.0 + 1000.0) / 3600.0);
}

TEST(Accountant, PerGroupStatementsIncludeAllTimeTotal)
{
    Accountant accountant;
    accountant.record(event("g", 5, 3600));
    accountant.record(event("g", 35, 7200));
    accountant.record(event("other", 5, 36000));

    const auto rows = accountant.statements_of("g");
    ASSERT_EQ(rows.size(), 3u); // period 0, period 1, all-time
    EXPECT_EQ(rows[0].period, 0);
    EXPECT_EQ(rows[1].period, 1);
    EXPECT_EQ(rows[2].period, -1);
    EXPECT_EQ(rows[2].jobs, 2);
    EXPECT_DOUBLE_EQ(rows[2].gpu_hours, 3.0);

    EXPECT_TRUE(accountant.statements_of("nobody").empty());

    const auto totals = accountant.group_totals();
    ASSERT_EQ(totals.size(), 2u);
    EXPECT_EQ(totals[0].group, "g");
    EXPECT_DOUBLE_EQ(totals[0].gpu_hours, 3.0);
    EXPECT_EQ(totals[1].group, "other");
    EXPECT_DOUBLE_EQ(totals[1].gpu_hours, 10.0);
}

} // namespace
} // namespace tacc::ops
