/**
 * @file
 * Behavioural tests for every scheduling policy, against hand-built
 * cluster states where the correct decision is known.
 */
#include <gtest/gtest.h>

#include "sched_fixture.h"

namespace tacc::sched {
namespace {

using namespace time_literals;
using testing::SchedFixture;
using workload::QosClass;

class FifoTest : public SchedFixture
{
};

TEST_F(FifoTest, StrictBlocksBehindBigJob)
{
    add_running({.gpus = 12}, now_ + 1000_s);
    add_pending({.gpus = 8});  // cannot fit (4 free)
    add_pending({.gpus = 1});  // could fit, but strict FIFO blocks
    FifoScheduler fifo(true);
    const auto decision = fifo.schedule(ctx());
    EXPECT_TRUE(decision.starts.empty());
    EXPECT_TRUE(decision.preemptions.empty());
}

TEST_F(FifoTest, SkipVariantFillsAroundBlocker)
{
    add_running({.gpus = 12}, now_ + 1000_s);
    add_pending({.gpus = 8});
    auto *small = add_pending({.gpus = 1});
    FifoScheduler fifo(false);
    const auto decision = fifo.schedule(ctx());
    EXPECT_EQ(started(decision), (std::vector<cluster::JobId>{small->id()}));
}

TEST_F(FifoTest, ArrivalOrderRespected)
{
    auto *late = add_pending({.gpus = 2, .submit = now_ + 10_s});
    auto *early = add_pending({.gpus = 2, .submit = now_ + 5_s});
    FifoScheduler fifo(true);
    const auto decision = fifo.schedule(ctx());
    ASSERT_EQ(decision.starts.size(), 2u);
    EXPECT_EQ(decision.starts[0].job, early->id());
    EXPECT_EQ(decision.starts[1].job, late->id());
}

TEST_F(FifoTest, StartsCarryCommittablePlacements)
{
    auto *job = add_pending({.gpus = 10});
    FifoScheduler fifo(true);
    const auto decision = fifo.schedule(ctx());
    ASSERT_EQ(decision.starts.size(), 1u);
    EXPECT_EQ(decision.starts[0].placement.total_gpus(), 10);
    EXPECT_TRUE(
        cluster_->allocate(job->id(), decision.starts[0].placement)
            .is_ok());
}

class SjfTest : public SchedFixture
{
};

TEST_F(SjfTest, ShortestEstimateFirst)
{
    add_running({.gpus = 15}, now_ + 1000_s); // 1 GPU free
    auto *long_job = add_pending({.gpus = 1, .time_limit = 10_h,
                                  .submit = now_});
    auto *short_job = add_pending({.gpus = 1, .time_limit = 1_h,
                                   .submit = now_ + 1_s});
    (void)long_job;
    SjfScheduler sjf;
    const auto decision = sjf.schedule(ctx());
    EXPECT_EQ(started(decision),
              (std::vector<cluster::JobId>{short_job->id()}));
}

class FairShareTest : public SchedFixture
{
};

TEST_F(FairShareTest, LightUserBeatsHeavyUser)
{
    add_running({.gpus = 15}, now_ + 1000_s);
    usage_.charge("heavy", 1e6, now_);
    usage_.charge("light", 10.0, now_);
    add_pending({.gpus = 1, .group = "heavy"});
    auto *light = add_pending({.gpus = 1, .group = "light"});
    FairShareScheduler fair;
    const auto decision = fair.schedule(ctx());
    EXPECT_EQ(started(decision),
              (std::vector<cluster::JobId>{light->id()}));
}

TEST_F(FairShareTest, QosRaisesPriority)
{
    add_running({.gpus = 15}, now_ + 1000_s);
    add_pending({.gpus = 1, .qos = QosClass::kBestEffort});
    auto *interactive =
        add_pending({.gpus = 1, .qos = QosClass::kInteractive,
                     .preemptible = false});
    FairShareScheduler fair;
    const auto decision = fair.schedule(ctx());
    EXPECT_EQ(started(decision),
              (std::vector<cluster::JobId>{interactive->id()}));
}

TEST_F(FairShareTest, AgeEventuallyDominates)
{
    SchedulerOptions opts;
    FairShareScheduler fair(opts);
    auto *old_be = add_pending({.gpus = 1, .qos = QosClass::kBestEffort,
                                .submit = TimePoint::origin()});
    auto *new_batch = add_pending({.gpus = 1, .qos = QosClass::kBatch});
    now_ = TimePoint::origin() + Duration::hours(13);
    new_batch->kill(now_); // recreate: want a *fresh* batch job
    pending_.pop_back();
    auto *fresh = add_pending({.gpus = 1, .qos = QosClass::kBatch,
                               .submit = now_});
    auto c = ctx();
    EXPECT_GT(fair.priority(c, *old_be), fair.priority(c, *fresh));
}

class BackfillTest : public SchedFixture
{
};

TEST_F(BackfillTest, BackfillsShortJobInsideReservationGap)
{
    // 4 free now; 12 more at t+100 s.
    add_running({.gpus = 12}, now_ + 100_s);
    add_pending({.gpus = 8, .time_limit = 1000_s}); // head: blocked
    auto *fits_before_shadow =
        add_pending({.gpus = 4, .time_limit = 50_s});
    BackfillScheduler easy(false);
    const auto decision = easy.schedule(ctx());
    EXPECT_EQ(started(decision),
              (std::vector<cluster::JobId>{fits_before_shadow->id()}));
}

TEST_F(BackfillTest, RefusesBackfillThatDelaysHead)
{
    add_running({.gpus = 12}, now_ + 100_s);
    add_pending({.gpus = 16, .time_limit = 1000_s}); // head needs all
    // Long small job: would still be running when the head could start.
    add_pending({.gpus = 4, .time_limit = 5000_s});
    BackfillScheduler easy(false);
    const auto decision = easy.schedule(ctx());
    EXPECT_TRUE(decision.starts.empty());
}

TEST_F(BackfillTest, ConservativeProtectsSecondReservation)
{
    // 16 GPUs total; 12 held until t+100.
    add_running({.gpus = 12}, now_ + 100_s);
    add_pending({.gpus = 8, .time_limit = 50_s});   // head -> [100, 150)
    add_pending({.gpus = 14, .time_limit = 100_s}); // 2nd  -> [150, 250)
    auto *candidate = add_pending({.gpus = 4, .time_limit = 300_s});

    BackfillScheduler easy(false);
    const auto easy_decision = easy.schedule(ctx());
    EXPECT_EQ(started(easy_decision),
              (std::vector<cluster::JobId>{candidate->id()}));

    BackfillScheduler conservative(true);
    const auto cons_decision = conservative.schedule(ctx());
    EXPECT_TRUE(cons_decision.starts.empty());
}

TEST_F(BackfillTest, StartsEverythingOnEmptyCluster)
{
    add_pending({.gpus = 8});
    add_pending({.gpus = 8});
    BackfillScheduler easy(false);
    EXPECT_EQ(easy.schedule(ctx()).starts.size(), 2u);
}

class QosPreemptTest : public SchedFixture
{
};

TEST_F(QosPreemptTest, InteractivePreemptsBestEffort)
{
    auto *victim1 = add_running(
        {.gpus = 8, .qos = QosClass::kBestEffort}, now_ + 1000_s);
    auto *victim2 = add_running(
        {.gpus = 8, .qos = QosClass::kBestEffort}, now_ + 1000_s);
    auto *boss = add_pending({.gpus = 16, .qos = QosClass::kInteractive,
                              .preemptible = false});
    QosPreemptScheduler sched(true);
    const auto decision = sched.schedule(ctx());
    ASSERT_EQ(decision.starts.size(), 1u);
    EXPECT_EQ(decision.starts[0].job, boss->id());
    EXPECT_EQ(decision.preemptions.size(), 2u);
    (void)victim1;
    (void)victim2;
}

TEST_F(QosPreemptTest, PreemptsOnlyAsMuchAsNeeded)
{
    add_running({.gpus = 8, .qos = QosClass::kBestEffort}, now_ + 1000_s);
    add_running({.gpus = 8, .qos = QosClass::kBestEffort}, now_ + 1000_s);
    add_pending({.gpus = 8, .qos = QosClass::kInteractive,
                 .preemptible = false});
    QosPreemptScheduler sched(true);
    const auto decision = sched.schedule(ctx());
    EXPECT_EQ(decision.preemptions.size(), 1u);
    EXPECT_EQ(decision.starts.size(), 1u);
}

TEST_F(QosPreemptTest, NeverPreemptsNonPreemptibleOrHigherTier)
{
    add_running({.gpus = 8, .qos = QosClass::kBatch,
                 .preemptible = false},
                now_ + 1000_s);
    add_running({.gpus = 8, .qos = QosClass::kInteractive,
                 .preemptible = true},
                now_ + 1000_s);
    add_pending({.gpus = 4, .qos = QosClass::kInteractive,
                 .preemptible = false});
    QosPreemptScheduler sched(true);
    const auto decision = sched.schedule(ctx());
    EXPECT_TRUE(decision.preemptions.empty());
    EXPECT_TRUE(decision.starts.empty());
}

TEST_F(QosPreemptTest, DisabledVariantNeverPreempts)
{
    add_running({.gpus = 16, .qos = QosClass::kBestEffort},
                now_ + 1000_s);
    add_pending({.gpus = 8, .qos = QosClass::kInteractive,
                 .preemptible = false});
    QosPreemptScheduler sched(false);
    const auto decision = sched.schedule(ctx());
    EXPECT_TRUE(decision.empty());
}

class LasTest : public SchedFixture
{
};

TEST_F(LasTest, PreemptsLongServiceForNewcomer)
{
    now_ = TimePoint::origin() + 10_h;
    add_running({.gpus = 16}, now_ + 1000_s, /*attained_gpu_s=*/50000.0);
    auto *newcomer = add_pending({.gpus = 8, .submit = now_});
    LasScheduler las(3600.0);
    const auto decision = las.schedule(ctx());
    ASSERT_EQ(decision.starts.size(), 1u);
    EXPECT_EQ(decision.starts[0].job, newcomer->id());
    EXPECT_EQ(decision.preemptions.size(), 1u);
}

TEST_F(LasTest, DoesNotPreemptForLongServicePending)
{
    now_ = TimePoint::origin() + 10_h;
    add_running({.gpus = 16}, now_ + 1000_s, 50000.0);
    // The pending job itself already consumed a lot: same queue.
    auto *old_timer = add_pending({.gpus = 8, .submit = now_});
    // Simulate prior service.
    EXPECT_TRUE(old_timer
                    ->begin_segment(now_ - 2_h, 8, 1.0)
                    .is_ok());
    EXPECT_TRUE(old_timer->end_segment(now_ - 1_h).is_ok());
    LasScheduler las(3600.0);
    const auto decision = las.schedule(ctx());
    EXPECT_TRUE(decision.empty());
}

TEST_F(LasTest, OrdersPendingByAttainedService)
{
    add_running({.gpus = 15}, now_ + 1000_s);
    auto *veteran = add_pending({.gpus = 1});
    EXPECT_TRUE(veteran->begin_segment(now_, 1, 1.0).is_ok());
    now_ += 100_s;
    EXPECT_TRUE(veteran->end_segment(now_).is_ok());
    auto *fresh = add_pending({.gpus = 1, .submit = now_});
    LasScheduler las(3600.0);
    const auto decision = las.schedule(ctx());
    EXPECT_EQ(started(decision),
              (std::vector<cluster::JobId>{fresh->id()}));
}

class GangTest : public SchedFixture
{
};

TEST_F(GangTest, RotatesGangsAcrossRounds)
{
    auto *a = add_pending({.gpus = 16});
    auto *b = add_pending({.gpus = 16, .submit = now_ + 1_s});
    GangScheduler gang(10_min);

    // Round 1: A starts (arrived first), B waits.
    auto d1 = gang.schedule(ctx());
    EXPECT_EQ(started(d1), (std::vector<cluster::JobId>{a->id()}));

    // Apply: A runs, B pending.
    pending_.clear();
    pending_.push_back(b);
    EXPECT_TRUE(cluster_->allocate(a->id(), d1.starts[0].placement)
                    .is_ok());
    EXPECT_TRUE(a->begin_segment(now_, 16, 1.0).is_ok());
    RunningInfo info;
    info.job = a;
    info.placement = cluster_->placement_of(a->id());
    info.expected_end = now_ + 1000_s;
    running_.push_back(info);

    // Round 2: A is preempted, B starts (least recently served).
    now_ += 10_min;
    auto d2 = gang.schedule(ctx());
    EXPECT_EQ(d2.preemptions,
              (std::vector<cluster::JobId>{a->id()}));
    EXPECT_EQ(started(d2), (std::vector<cluster::JobId>{b->id()}));
}

TEST_F(GangTest, KeepsRunningGangWhenCapacityAllows)
{
    auto *a = add_running({.gpus = 4}, now_ + 1000_s);
    auto *b = add_pending({.gpus = 4});
    GangScheduler gang(10_min);
    const auto decision = gang.schedule(ctx());
    // Both fit: no preemption, b starts.
    EXPECT_TRUE(decision.preemptions.empty());
    EXPECT_EQ(started(decision), (std::vector<cluster::JobId>{b->id()}));
    (void)a;
}

class DrfTest : public SchedFixture
{
};

TEST_F(DrfTest, FavorsGroupWithLowerDominantShare)
{
    add_running({.gpus = 12, .group = "hogs"}, now_ + 1000_s);
    add_pending({.gpus = 4, .group = "hogs"});
    auto *meek = add_pending({.gpus = 4, .group = "meek",
                              .submit = now_ + 1_s});
    DrfScheduler drf;
    const auto decision = drf.schedule(ctx());
    ASSERT_FALSE(decision.starts.empty());
    EXPECT_EQ(decision.starts[0].job, meek->id());
}

TEST_F(DrfTest, AlternatesBetweenEqualGroups)
{
    for (int i = 0; i < 3; ++i) {
        add_pending({.gpus = 2, .group = "a"});
        add_pending({.gpus = 2, .group = "b"});
    }
    DrfScheduler drf;
    const auto decision = drf.schedule(ctx());
    ASSERT_EQ(decision.starts.size(), 6u);
    // First two starts must come from different groups.
    const auto *j0 = jobs_[size_t(decision.starts[0].job - 1)].get();
    const auto *j1 = jobs_[size_t(decision.starts[1].job - 1)].get();
    EXPECT_NE(j0->spec().group, j1->spec().group);
}

class ElasticTest : public SchedFixture
{
};

TEST_F(ElasticTest, GrowsElasticJobUpToMax)
{
    auto *job = add_pending(
        {.gpus = 4, .iterations = 100000, .min_gpus = 2, .max_gpus = 16});
    ElasticScheduler elastic;
    const auto decision = elastic.schedule(ctx());
    ASSERT_EQ(decision.starts.size(), 1u);
    EXPECT_EQ(decision.starts[0].job, job->id());
    EXPECT_EQ(decision.starts[0].placement.total_gpus(), 16);
}

TEST_F(ElasticTest, SplitsPoolBetweenElasticJobs)
{
    auto *a = add_pending(
        {.gpus = 8, .iterations = 100000, .min_gpus = 2, .max_gpus = 16});
    auto *b = add_pending(
        {.gpus = 8, .iterations = 100000, .min_gpus = 2, .max_gpus = 16,
         .submit = now_ + 1_s});
    ElasticScheduler elastic;
    const auto decision = elastic.schedule(ctx());
    ASSERT_EQ(decision.starts.size(), 2u);
    int total = 0;
    for (const auto &s : decision.starts) {
        EXPECT_GE(s.placement.total_gpus(), 2);
        total += s.placement.total_gpus();
    }
    EXPECT_EQ(total, 16); // whole cluster used
    (void)a;
    (void)b;
}

TEST_F(ElasticTest, ResizesRunningElasticJob)
{
    // Running elastic job pinned small; cluster otherwise empty.
    auto *job = add_running(
        {.gpus = 2, .iterations = 100000, .min_gpus = 2, .max_gpus = 16},
        now_ + 10000_s);
    ElasticScheduler elastic;
    const auto decision = elastic.schedule(ctx());
    ASSERT_EQ(decision.preemptions.size(), 1u);
    EXPECT_EQ(decision.preemptions[0], job->id());
    ASSERT_EQ(decision.starts.size(), 1u);
    EXPECT_GT(decision.starts[0].placement.total_gpus(), 2);
}

TEST_F(ElasticTest, LeavesNonElasticAlone)
{
    auto *fixed = add_running({.gpus = 4}, now_ + 1000_s);
    auto *pending_fixed = add_pending({.gpus = 4});
    ElasticScheduler elastic;
    const auto decision = elastic.schedule(ctx());
    EXPECT_TRUE(decision.preemptions.empty());
    EXPECT_EQ(started(decision),
              (std::vector<cluster::JobId>{pending_fixed->id()}));
    (void)fixed;
}

class QuotaSchedTest : public SchedFixture
{
};

TEST_F(QuotaSchedTest, GroupQuotaLimitsConcurrentGpus)
{
    quota_.set_group_quota("g", 8);
    add_pending({.gpus = 8, .group = "g"});
    add_pending({.gpus = 8, .group = "g"});
    FifoScheduler fifo(false);
    const auto decision = fifo.schedule(ctx());
    EXPECT_EQ(decision.starts.size(), 1u);
}

TEST_F(QuotaSchedTest, QuotaCountsRunningJobs)
{
    quota_.set_group_quota("g", 8);
    add_running({.gpus = 8, .group = "g"}, now_ + 1000_s);
    add_pending({.gpus = 1, .group = "g"});
    auto *other = add_pending({.gpus = 1, .group = "other"});
    FifoScheduler fifo(false);
    const auto decision = fifo.schedule(ctx());
    EXPECT_EQ(started(decision),
              (std::vector<cluster::JobId>{other->id()}));
}

TEST(SchedulerFactory, BuildsEveryListedName)
{
    for (const auto &name : scheduler_names()) {
        auto sched = make_scheduler(name);
        ASSERT_NE(sched, nullptr) << name;
        EXPECT_EQ(sched->name().find("unknown"), std::string::npos);
    }
    EXPECT_EQ(make_scheduler("bogus"), nullptr);
}

TEST(SchedulerFactory, TickPeriods)
{
    EXPECT_TRUE(make_scheduler("fifo")->tick_period().is_zero());
    EXPECT_FALSE(make_scheduler("gang")->tick_period().is_zero());
    EXPECT_FALSE(make_scheduler("elastic")->tick_period().is_zero());
    EXPECT_FALSE(make_scheduler("las")->tick_period().is_zero());
}

} // namespace
} // namespace tacc::sched
