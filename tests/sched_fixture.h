/**
 * @file
 * Shared fixture for scheduler unit tests: builds a cluster, pending and
 * running jobs, and a SchedulerContext with controllable knobs.
 */
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "sched/placement.h"
#include "sched/schedulers.h"
#include "sched/usage.h"
#include "workload/job.h"
#include "workload/model.h"

namespace tacc::sched::testing {

class SchedFixture : public ::testing::Test
{
  protected:
    /** 2 nodes x 8 GPUs by default. */
    explicit SchedFixture(int racks = 1, int nodes_per_rack = 2,
                          int gpus_per_node = 8)
    {
        cluster::ClusterConfig config;
        config.topology.racks = racks;
        config.topology.nodes_per_rack = nodes_per_rack;
        config.node.gpu_count = gpus_per_node;
        cluster_ = std::make_unique<cluster::Cluster>(config);
        placement_ = std::make_unique<PackPlacement>();
    }

    struct JobOptions {
        int gpus = 1;
        workload::QosClass qos = workload::QosClass::kBatch;
        bool preemptible = true;
        Duration time_limit = Duration::hours(1);
        std::string group = "g";
        int64_t iterations = 1000;
        int min_gpus = 0;
        int max_gpus = 0;
        TimePoint submit = TimePoint::origin();
    };

    workload::Job *
    make_job(const JobOptions &opts)
    {
        workload::TaskSpec spec;
        spec.name = "job-" + std::to_string(next_id_);
        spec.user = "u";
        spec.group = opts.group;
        spec.gpus = opts.gpus;
        spec.qos = opts.qos;
        spec.preemptible = opts.preemptible;
        spec.time_limit = opts.time_limit;
        spec.model = "resnet50";
        spec.iterations = opts.iterations;
        spec.min_gpus = opts.min_gpus;
        spec.max_gpus = opts.max_gpus;
        auto profile = workload::ModelCatalog::instance().find(spec.model);
        auto job = std::make_unique<workload::Job>(
            next_id_++, spec, profile.value(), opts.submit);
        EXPECT_TRUE(job->begin_provisioning(opts.submit).is_ok());
        EXPECT_TRUE(job->finish_provisioning(opts.submit).is_ok());
        jobs_.push_back(std::move(job));
        return jobs_.back().get();
    }

    /** Creates a pending job visible to the scheduler. */
    workload::Job *
    add_pending(const JobOptions &opts)
    {
        workload::Job *job = make_job(opts);
        pending_.push_back(job);
        return job;
    }

    workload::Job *
    add_pending()
    {
        return add_pending(JobOptions{});
    }

    /**
     * Creates a running job: allocates it on the cluster (pack placement)
     * and registers it in the running set.
     * @param expected_end projected completion handed to the scheduler
     */
    workload::Job *
    add_running(const JobOptions &opts, TimePoint expected_end,
                double attained_gpu_s = 0.0)
    {
        workload::Job *job = make_job(opts);
        FreeView view(*cluster_);
        auto plan = placement_->plan(view, cluster_->topology(), opts.gpus,
                                     cluster_->config().node.gpu_count);
        EXPECT_TRUE(plan.is_ok());
        EXPECT_TRUE(cluster_->allocate(job->id(), plan.value()).is_ok());
        // Give the job prior attained service by replaying a segment.
        if (attained_gpu_s > 0) {
            const double seconds = attained_gpu_s / opts.gpus;
            EXPECT_TRUE(job->begin_segment(TimePoint::origin(), opts.gpus,
                                           1.0)
                            .is_ok());
            EXPECT_TRUE(
                job->end_segment(TimePoint::origin() +
                                 Duration::from_seconds(seconds))
                    .is_ok());
        }
        EXPECT_TRUE(
            job->begin_segment(now_, opts.gpus, iteration_s_).is_ok());
        RunningInfo info;
        info.job = job;
        info.placement = cluster_->placement_of(job->id());
        info.expected_end = expected_end;
        running_.push_back(info);
        return job;
    }

    SchedulerContext
    ctx()
    {
        SchedulerContext c;
        c.now = now_;
        c.pending = pending_;
        c.running = running_;
        c.cluster = cluster_.get();
        c.placement = placement_.get();
        c.usage = &usage_;
        c.quota = &quota_;
        const double iter = iteration_s_;
        c.iter_time = [iter](const workload::Job &,
                             const cluster::Placement &) { return iter; };
        return c;
    }

    /** Ids of the started jobs, in decision order. */
    static std::vector<cluster::JobId>
    started(const ScheduleDecision &d)
    {
        std::vector<cluster::JobId> out;
        for (const auto &s : d.starts)
            out.push_back(s.job);
        return out;
    }

    std::unique_ptr<cluster::Cluster> cluster_;
    std::unique_ptr<PlacementPolicy> placement_;
    UsageTracker usage_{Duration::hours(24)};
    QuotaManager quota_;
    std::vector<std::unique_ptr<workload::Job>> jobs_;
    std::vector<workload::Job *> pending_;
    std::vector<RunningInfo> running_;
    TimePoint now_ = TimePoint::origin();
    double iteration_s_ = 1.0;
    cluster::JobId next_id_ = 1;
};

} // namespace tacc::sched::testing
