/**
 * @file
 * End-to-end smoke test: one task through all four layers.
 */
#include <gtest/gtest.h>

#include "core/stack.h"
#include "tcloud/client.h"

namespace tacc {
namespace {

workload::TaskSpec
small_spec()
{
    workload::TaskSpec spec;
    spec.name = "smoke";
    spec.user = "alice";
    spec.group = "lab";
    spec.gpus = 4;
    spec.model = "resnet50";
    spec.iterations = 100;
    spec.artifacts = {{"alice/code", 8'000'000, 1}};
    return spec;
}

TEST(Smoke, SingleJobRunsToCompletion)
{
    core::StackConfig config;
    config.cluster.topology.racks = 1;
    config.cluster.topology.nodes_per_rack = 2;
    config.scheduler = "fifo";

    core::TaccStack stack(config);
    auto id = stack.submit(small_spec());
    ASSERT_TRUE(id.is_ok()) << id.status().str();

    ASSERT_TRUE(stack.run_to_completion(1'000'000));
    const workload::Job *job = stack.find_job(id.value());
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->state(), workload::JobState::kCompleted);
    EXPECT_EQ(job->iterations_done(), 100);
    EXPECT_GT(job->gpu_seconds(), 0.0);
}

TEST(Smoke, TcloudRoundTrip)
{
    core::StackConfig config;
    config.cluster.topology.racks = 1;
    config.cluster.topology.nodes_per_rack = 2;
    core::TaccStack stack(config);

    tcloud::Client client;
    ASSERT_TRUE(client.add_cluster("hkust", &stack).is_ok());

    auto handle = client.submit(small_spec());
    ASSERT_TRUE(handle.is_ok()) << handle.status().str();
    auto final_status = client.wait(handle.value());
    ASSERT_TRUE(final_status.is_ok()) << final_status.status().str();
    EXPECT_EQ(final_status.value().state, workload::JobState::kCompleted);
    EXPECT_DOUBLE_EQ(final_status.value().progress, 1.0);

    auto logs = client.logs(handle.value());
    ASSERT_TRUE(logs.is_ok());
    EXPECT_FALSE(logs.value().empty());
}

} // namespace
} // namespace tacc
