/**
 * @file
 * Auto-tuner property tests — the three invariants DESIGN.md promises:
 *
 *  1. neighbor moves never leave the search box (and integer
 *     dimensions stay integral);
 *  2. the scalarized objective is monotone in every raw input term, so
 *     a candidate can only score better by improving a real metric;
 *  3. a search trajectory is a pure function of (spec, seed): repeat
 *     runs and any thread-pool worker count produce byte-identical
 *     trajectory JSON, preset text, and digests.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/config_io.h"
#include "tune/objective.h"
#include "tune/optimizer.h"
#include "tune/param_space.h"
#include "tune/tuner.h"

namespace tacc::tune {
namespace {

/** A random in-bounds point (integer dims snapped by clamp). */
std::vector<double>
random_point(const ParamSpace &space, Rng &rng)
{
    std::vector<double> values;
    values.reserve(space.size());
    for (const auto &dim : space.dims())
        values.push_back(rng.uniform(dim.lo, dim.hi));
    return space.clamp(std::move(values));
}

TEST(TuneProperty, NeighborMovesStayInBounds)
{
    const ParamSpace space = ParamSpace::all();
    Rng rng(7);
    std::vector<double> values = random_point(space, rng);
    for (int step = 0; step < 2000; ++step) {
        values = neighbor_move(space, values, 0.25, rng);
        ASSERT_TRUE(space.in_bounds(values)) << "step " << step;
        if (step % 200 == 0) // occasionally restart from a fresh point
            values = random_point(space, rng);
    }
}

TEST(TuneProperty, ClampIsIdempotentAndInBounds)
{
    const ParamSpace space = ParamSpace::all();
    Rng rng(11);
    for (int trial = 0; trial < 500; ++trial) {
        std::vector<double> wild;
        for (size_t i = 0; i < space.size(); ++i)
            wild.push_back(rng.uniform(-1e4, 1e4));
        const std::vector<double> once = space.clamp(wild);
        EXPECT_TRUE(space.in_bounds(once));
        EXPECT_EQ(space.clamp(once), once);
    }
}

TEST(TuneProperty, ObjectiveMonotoneInEveryTerm)
{
    ObjectiveWeights weights;
    weights.w_energy = 1.0; // exercise every term
    Rng rng(13);
    for (int trial = 0; trial < 200; ++trial) {
        core::ObjectiveInputs base;
        base.mean_jct_s = rng.uniform(0, 1e5);
        base.p99_jct_s = rng.uniform(0, 1e6);
        base.fairness = rng.uniform(0.01, 1.0);
        base.energy_kwh = rng.uniform(0, 1e3);
        base.slo_miss_rate = rng.uniform(0, 1.0);
        const double score = scalarize(base, weights);

        core::ObjectiveInputs worse = base;
        worse.mean_jct_s *= 1.5;
        EXPECT_GE(scalarize(worse, weights), score);

        worse = base;
        worse.p99_jct_s *= 1.5;
        EXPECT_GE(scalarize(worse, weights), score);

        worse = base;
        worse.fairness *= 0.5; // lower Jain index = less fair
        EXPECT_GE(scalarize(worse, weights), score);

        worse = base;
        worse.energy_kwh += 10.0;
        EXPECT_GE(scalarize(worse, weights), score);

        worse = base;
        worse.slo_miss_rate = std::min(1.0, base.slo_miss_rate + 0.1);
        EXPECT_GE(scalarize(worse, weights), score);
    }
}

TEST(TuneProperty, PresetRenderIsAFixedPoint)
{
    const ParamSpace space = ParamSpace::all();
    Rng rng(17);
    for (int trial = 0; trial < 50; ++trial) {
        core::StackConfig config;
        space.apply(random_point(space, rng), &config);
        const std::string text = core::stack_config_to_text(config);
        auto parsed = core::parse_stack_config(text);
        ASSERT_TRUE(parsed.is_ok()) << parsed.status().str();
        EXPECT_EQ(core::stack_config_to_text(parsed.value()), text);
    }
}

/** A scenario small enough to run dozens of times inside the test. */
TuneSpec
tiny_spec(const std::string &optimizer)
{
    TuneSpec spec;
    spec.base.trace.num_jobs = 12;
    spec.base.trace.mean_interarrival_s = 120.0;
    spec.base.stack.cluster.topology.racks = 2;
    spec.base.stack.cluster.topology.nodes_per_rack = 4;
    spec.base.stack.emit_monitor_logs = false;
    spec.space =
        ParamSpace::subset({"w_age", "w_qos", "backfill_depth"}).value();
    spec.optimizer = optimizer;
    spec.search.seed = 5;
    spec.search.chains = 3;
    spec.search.population = 4;
    spec.budget = 8;
    return spec;
}

TEST(TuneProperty, SaTrajectoryIndependentOfWorkerCount)
{
    const TuneSpec spec = tiny_spec("sa");
    auto serial = run_tune(spec, 1);
    ASSERT_TRUE(serial.is_ok()) << serial.status().str();
    const std::string want =
        trajectory_to_json(spec, serial.value());
    const std::string preset =
        best_config_text(spec, serial.value());
    for (int workers : {2, 4, 8}) {
        auto parallel = run_tune(spec, workers);
        ASSERT_TRUE(parallel.is_ok()) << parallel.status().str();
        EXPECT_EQ(trajectory_to_json(spec, parallel.value()), want)
            << workers << " workers";
        EXPECT_EQ(best_config_text(spec, parallel.value()), preset)
            << workers << " workers";
    }
}

TEST(TuneProperty, GeneticTrajectoryIndependentOfWorkerCount)
{
    const TuneSpec spec = tiny_spec("genetic");
    auto serial = run_tune(spec, 1);
    ASSERT_TRUE(serial.is_ok()) << serial.status().str();
    const std::string want =
        trajectory_to_json(spec, serial.value());
    for (int workers : {4, 8}) {
        auto parallel = run_tune(spec, workers);
        ASSERT_TRUE(parallel.is_ok()) << parallel.status().str();
        EXPECT_EQ(trajectory_to_json(spec, parallel.value()), want)
            << workers << " workers";
    }
}

TEST(TuneProperty, RepeatRunsAreByteIdentical)
{
    const TuneSpec spec = tiny_spec("sa");
    auto a = run_tune(spec, 4);
    auto b = run_tune(spec, 4);
    ASSERT_TRUE(a.is_ok() && b.is_ok());
    EXPECT_EQ(trajectory_to_json(spec, a.value()),
              trajectory_to_json(spec, b.value()));
    EXPECT_EQ(a.value().best_digest, b.value().best_digest);
    EXPECT_EQ(a.value().default_digest, b.value().default_digest);
}

} // namespace
} // namespace tacc::tune
