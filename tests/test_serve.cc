/**
 * @file
 * Tests for the inference-serving substrate: Erlang-C math, autoscaler
 * policies, and the epoch simulator.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "serve/service_sim.h"

namespace tacc::serve {
namespace {

TEST(ErlangC, KnownValues)
{
    // Single server: C(1, a) = a (M/M/1 waiting probability = rho).
    EXPECT_NEAR(erlang_c(1, 0.5), 0.5, 1e-12);
    // Textbook value: c=2, a=1 -> C = 1/3.
    EXPECT_NEAR(erlang_c(2, 1.0), 1.0 / 3.0, 1e-12);
    // No load, no queueing.
    EXPECT_DOUBLE_EQ(erlang_c(4, 0.0), 0.0);
    // Overload: always queue.
    EXPECT_DOUBLE_EQ(erlang_c(2, 2.5), 1.0);
}

TEST(ErlangC, MonotoneInServersAndLoad)
{
    for (int c = 1; c < 10; ++c)
        EXPECT_GE(erlang_c(c, 3.0), erlang_c(c + 1, 3.0));
    for (double a = 0.5; a < 3.5; a += 0.5)
        EXPECT_LE(erlang_c(4, a), erlang_c(4, a + 0.5));
}

TEST(ErlangC, StableAtLargeScale)
{
    // 200 servers at 80% utilization: must not overflow (a^c/c! naive
    // evaluation would).
    const double c_prob = erlang_c(200, 160.0);
    EXPECT_GT(c_prob, 0.0);
    EXPECT_LT(c_prob, 0.1);
}

TEST(MeanWait, MatchesMm1ClosedForm)
{
    // M/M/1: W = rho / (mu - lambda) ... = C/(mu - lambda), C = rho.
    const double w = mean_wait_s(1, 0.5, 1.0);
    EXPECT_NEAR(w, 0.5 / (1.0 - 0.5), 1e-12);
    EXPECT_TRUE(std::isinf(mean_wait_s(2, 3.0, 1.0)));
}

TEST(SloAttainment, BoundsAndShape)
{
    // Impossible SLO (below service time).
    EXPECT_DOUBLE_EQ(slo_attainment(4, 1.0, 10.0, 0.05), 0.0);
    // Overload.
    EXPECT_DOUBLE_EQ(slo_attainment(2, 25.0, 10.0, 1.0), 0.0);
    // Light load, generous SLO: near-perfect.
    EXPECT_GT(slo_attainment(8, 10.0, 10.0, 1.0), 0.999);
    // More replicas never hurt.
    for (int c = 1; c < 12; ++c) {
        EXPECT_LE(slo_attainment(c, 20.0, 10.0, 0.5),
                  slo_attainment(c + 1, 20.0, 10.0, 0.5) + 1e-12);
    }
}

TEST(MinReplicas, FindsSmallestSufficientCount)
{
    const int c = min_replicas_for_slo(50.0, 10.0, 0.5, 0.99, 64);
    ASSERT_GT(c, 5); // needs more than the bare capacity floor
    EXPECT_GE(slo_attainment(c, 50.0, 10.0, 0.5), 0.99);
    EXPECT_LT(slo_attainment(c - 1, 50.0, 10.0, 0.5), 0.99);
    // Cap respected when the target is unreachable.
    EXPECT_EQ(min_replicas_for_slo(1000.0, 10.0, 0.5, 0.99, 16), 16);
}

TEST(Autoscalers, StaticIsFixedAndCapped)
{
    StaticAutoscaler fixed(10);
    ScaleContext ctx;
    ctx.max_replicas = 6;
    EXPECT_EQ(fixed.decide(ctx), 6);
    ctx.max_replicas = 64;
    EXPECT_EQ(fixed.decide(ctx), 10);
}

TEST(Autoscalers, TargetUtilizationTracksRate)
{
    TargetUtilizationAutoscaler scaler(0.5);
    ScaleContext ctx;
    ctx.service_rate_hz = 10.0;
    ctx.max_replicas = 64;
    ctx.arrival_rate_hz = 100.0; // needs 100/(10*0.5) = 20
    EXPECT_EQ(scaler.decide(ctx), 20);
    ctx.arrival_rate_hz = 0.0;
    EXPECT_EQ(scaler.decide(ctx), 0);
    ctx.arrival_rate_hz = 1e6;
    EXPECT_EQ(scaler.decide(ctx), 64); // capped
}

TEST(Autoscalers, SloAwareMeetsTargetWithHeadroom)
{
    SloAwareAutoscaler scaler(1.2);
    ScaleContext ctx;
    ctx.arrival_rate_hz = 50.0;
    ctx.service_rate_hz = 10.0;
    ctx.slo_s = 0.5;
    ctx.slo_target = 0.99;
    ctx.max_replicas = 64;
    const int c = scaler.decide(ctx);
    EXPECT_GE(slo_attainment(c, 50.0, 10.0, 0.5), 0.99);
    EXPECT_EQ(scaler.decide(ScaleContext{}), 0); // idle service
}

TEST(ServiceSimulator, RatesFollowTheDiurnalCurve)
{
    ServiceConfig config;
    config.peak_rate_hz = 100.0;
    config.trough_fraction = 0.2;
    ServiceSimulator sim(config);
    const double midnight =
        sim.arrival_rate_hz(TimePoint::origin());
    const double noon = sim.arrival_rate_hz(
        TimePoint::origin() + Duration::hours(12));
    EXPECT_NEAR(midnight, 20.0, 1e-9);
    EXPECT_NEAR(noon, 100.0, 1e-9);
    EXPECT_GT(sim.service_rate_hz(), 0.0);
}

TEST(ServiceSimulator, SloAwareBeatsStaticMeanAndCostsLessThanPeak)
{
    ServiceConfig config;
    config.peak_rate_hz = 300.0;
    config.pool_gpus = 64;
    ServiceSimulator sim(config);

    // Baselines sized from the model.
    const int for_peak = min_replicas_for_slo(
        config.peak_rate_hz, sim.service_rate_hz(), config.slo_s, 0.99,
        config.pool_gpus);
    const int for_mean = std::max(
        1, int(std::ceil(config.peak_rate_hz * 0.55 /
                         sim.service_rate_hz())));
    StaticAutoscaler peak(for_peak, "static-peak");
    StaticAutoscaler mean(for_mean, "static-mean");
    SloAwareAutoscaler slo;

    const auto r_peak = sim.run(peak);
    const auto r_mean = sim.run(mean);
    const auto r_slo = sim.run(slo);

    // Peak provisioning is near-perfect but expensive.
    EXPECT_GT(r_peak.mean_attainment, 0.99);
    // SLO-aware nearly matches it at a fraction of the replica-hours.
    EXPECT_GT(r_slo.mean_attainment, 0.97);
    EXPECT_LT(r_slo.replica_hours, r_peak.replica_hours * 0.8);
    // Mean provisioning melts at the daily peak.
    EXPECT_LT(r_mean.mean_attainment, r_slo.mean_attainment);
    EXPECT_EQ(r_slo.epochs.size(),
              size_t(config.horizon / config.epoch));
}

} // namespace
} // namespace tacc::serve
