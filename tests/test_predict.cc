/**
 * @file
 * Prediction-layer tests: the decayed-regression runtime model (limit
 * cap, fallback chain, observation-order invariance, error quantiles),
 * the Holt load forecaster, the sweep estimator axis, the tune dims,
 * and the digest-identity contracts (prediction off == pre-prediction
 * baseline; prediction on deterministic across worker counts and
 * batch/streaming retention).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/config_io.h"
#include "driver/runner.h"
#include "driver/sweep.h"
#include "predict/forecast.h"
#include "predict/hub.h"
#include "predict/runtime_model.h"
#include "tune/param_space.h"
#include "workload/model.h"

namespace tacc::predict {
namespace {

using namespace time_literals;

workload::Job
completed_job(cluster::JobId id, const std::string &group,
              const std::string &model, int64_t iterations,
              double iter_seconds, int gpus = 2,
              Duration limit = Duration::hours(100))
{
    workload::TaskSpec spec;
    spec.name = "p" + std::to_string(id);
    spec.user = "alice";
    spec.group = group;
    spec.gpus = gpus;
    spec.model = model;
    spec.iterations = iterations;
    spec.time_limit = limit;
    auto profile = workload::ModelCatalog::instance().find(model);
    workload::Job job(id, spec, profile.value(), TimePoint::origin());
    EXPECT_TRUE(job.begin_provisioning(TimePoint::origin()).is_ok());
    EXPECT_TRUE(job.finish_provisioning(TimePoint::origin()).is_ok());
    EXPECT_TRUE(
        job.begin_segment(TimePoint::origin(), gpus, iter_seconds).is_ok());
    EXPECT_TRUE(job.complete(TimePoint::origin() +
                             Duration::from_seconds(double(iterations) *
                                                    iter_seconds))
                    .is_ok());
    return job;
}

PredictConfig
regress_config()
{
    PredictConfig config;
    config.enabled = true;
    config.mode = EstimatorMode::kRegress;
    return config;
}

TEST(PredictConfig, ValidatesBounds)
{
    PredictConfig config = regress_config();
    EXPECT_TRUE(config.validate().is_ok());
    config.decay = 1.0;
    EXPECT_FALSE(config.validate().is_ok());
    config = regress_config();
    config.safety_min = 3.0; // above safety_max
    EXPECT_FALSE(config.validate().is_ok());
    config = regress_config();
    config.bias = 0.0;
    EXPECT_FALSE(config.validate().is_ok());
    config = regress_config();
    config.sample_floor = 0;
    EXPECT_FALSE(config.validate().is_ok());
}

TEST(PredictConfig, ModeNamesRoundTrip)
{
    for (auto mode : {EstimatorMode::kLimit, EstimatorMode::kEma,
                      EstimatorMode::kRegress}) {
        auto parsed = parse_estimator_mode(estimator_mode_name(mode));
        ASSERT_TRUE(parsed.is_ok());
        EXPECT_EQ(parsed.value(), mode);
    }
    EXPECT_FALSE(parse_estimator_mode("oracle").is_ok());
}

TEST(RuntimeModel, LimitModeIsInert)
{
    PredictConfig config = regress_config();
    config.mode = EstimatorMode::kLimit;
    RuntimeModel model(config);
    model.observe(completed_job(1, "g", "resnet50", 1000, 2.0));
    const auto next = completed_job(2, "g", "resnet50", 500, 2.0);
    EXPECT_FALSE(model.has_history(next));
    EXPECT_EQ(model.predict(next), next.spec().time_limit);
}

TEST(RuntimeModel, NeverExceedsLimitEvenUnderBias)
{
    PredictConfig config = regress_config();
    config.bias = 2.0; // systematic 2x over-prediction
    RuntimeModel model(config);
    for (int i = 0; i < 10; ++i)
        model.observe(completed_job(cluster::JobId(i + 1), "g",
                                    "resnet50", 1000, 2.0));
    // True runtime 2000 s; a 30 min limit must cap whatever the model
    // (raw * safety * 2x bias, far above the limit) wants to say.
    const auto tight = completed_job(99, "g", "resnet50", 1000, 2.0, 2,
                                     Duration::minutes(30));
    EXPECT_TRUE(model.has_history(tight));
    EXPECT_LE(model.predict(tight), Duration::minutes(30));
    EXPECT_LE(model.predict_remaining(tight), Duration::minutes(30));
}

TEST(RuntimeModel, EmaFallbackBelowSampleFloor)
{
    PredictConfig config = regress_config();
    config.sample_floor = 5;
    RuntimeModel model(config);
    model.observe(completed_job(1, "g", "resnet50", 1000, 2.0));
    // One sample < floor: EMA path, per-iter 2 s, empty error ring ->
    // safety clamps to safety_min (1.25).
    const auto next = completed_job(2, "g", "resnet50", 500, 2.0);
    EXPECT_NEAR(model.predict(next).to_seconds(), 500 * 2.0 * 1.25, 1.0);
}

TEST(RuntimeModel, RegressionLearnsGpuScaling)
{
    // Ground truth: per-iteration seconds = 2 + 0.5 * gpus, i.e. wall
    // = 2*iters + 0.5*iters*gpus — exactly the model's feature plane.
    PredictConfig config = regress_config();
    config.sample_floor = 3;
    config.decay = 0.05;
    RuntimeModel regress(config);
    config.mode = EstimatorMode::kEma;
    RuntimeModel ema(config);
    cluster::JobId id = 1;
    for (int64_t iters : {100, 200, 400, 800}) {
        for (int gpus : {1, 2, 4}) {
            const auto job =
                completed_job(id++, "g", "resnet50", iters,
                              2.0 + 0.5 * double(gpus), gpus);
            regress.observe(job);
            ema.observe(job);
        }
    }
    // An 8-GPU job at a scale never observed: truth is 6 s/iter. The
    // safety factor is the clamped p95 of the *online* error history
    // (early predictions came from partial fits), so divide out the
    // disclosed value to judge the converged fit itself.
    const auto big = completed_job(id, "g", "resnet50", 1000, 6.0, 8);
    const double truth = 6000.0;
    const double regress_safety =
        std::clamp(regress.key_p95(big), 1.25, 2.5);
    const double regress_raw =
        regress.predict(big).to_seconds() / regress_safety;
    const double ema_raw = ema.predict(big).to_seconds() / 1.25;
    EXPECT_NEAR(regress_raw, truth, 0.02 * truth);
    // The flat per-iteration EMA cannot extrapolate the comm term.
    EXPECT_GT(std::abs(ema_raw - truth), 0.15 * truth);
    EXPECT_LT(std::abs(regress_raw - truth), std::abs(ema_raw - truth));
}

TEST(RuntimeModel, ObservationOrderIrrelevantAtZeroDecay)
{
    // With decay 0 the sufficient statistics are plain sums; with
    // exactly representable samples (powers of two) the float folds are
    // exact, so any permutation yields the identical fit. Only the
    // confidence ring is path-dependent (it measures the *online* error
    // sequence, by design), so divide the clamped safety back out and
    // compare the underlying regression output.
    PredictConfig config = regress_config();
    config.decay = 0.0;
    config.sample_floor = 1;
    std::vector<std::pair<int64_t, int>> samples = {
        {128, 1}, {256, 2}, {512, 4}, {1024, 8}, {64, 2}, {32, 4}};
    auto feed = [&](const std::vector<std::pair<int64_t, int>> &order) {
        RuntimeModel model(config);
        cluster::JobId id = 1;
        for (const auto &[iters, gpus] : order)
            model.observe(
                completed_job(id++, "g", "resnet50", iters, 2.0, gpus));
        return model;
    };
    const RuntimeModel forward = feed(samples);
    std::vector<std::pair<int64_t, int>> reversed(samples.rbegin(),
                                                  samples.rend());
    const RuntimeModel backward = feed(reversed);
    for (int64_t iters : {100, 1000, 5000}) {
        const auto probe =
            completed_job(99, "g", "resnet50", iters, 2.0, 4);
        const double fwd =
            forward.predict(probe).to_seconds() /
            std::clamp(forward.key_p95(probe), 1.25, 2.5);
        const double bwd =
            backward.predict(probe).to_seconds() /
            std::clamp(backward.key_p95(probe), 1.25, 2.5);
        EXPECT_NEAR(fwd, bwd, 1e-5 * fwd) << "iters=" << iters;
    }
}

TEST(RuntimeModel, KeysAreGroupAndModel)
{
    RuntimeModel model(regress_config());
    model.observe(completed_job(1, "groupA", "resnet50", 1000, 2.0));
    EXPECT_TRUE(
        model.has_history(completed_job(2, "groupA", "resnet50", 10, 1.0)));
    EXPECT_FALSE(
        model.has_history(completed_job(3, "groupB", "resnet50", 10, 1.0)));
    EXPECT_FALSE(
        model.has_history(completed_job(4, "groupA", "vgg19", 10, 1.0)));
    EXPECT_EQ(model.model_keys(), 1u);
}

TEST(ErrorQuantiles, ScaleEquivariantAndOrdered)
{
    ErrorQuantiles plain, inflated;
    const std::vector<double> ratios = {0.5, 0.75, 1.0, 1.1,  1.3,
                                        0.9, 2.0,  1.7, 0.95, 1.05};
    for (double r : ratios) {
        plain.observe(r);
        inflated.observe(2.0 * r);
    }
    EXPECT_LE(plain.p50(), plain.p95());
    // Inflating every ratio by k scales both quantiles by exactly k
    // (nearest-rank on the sorted ring) — monotone under inflation.
    EXPECT_DOUBLE_EQ(inflated.p50(), 2.0 * plain.p50());
    EXPECT_DOUBLE_EQ(inflated.p95(), 2.0 * plain.p95());
    // Negative / zero / NaN ratios are dropped, not folded.
    ErrorQuantiles guarded;
    guarded.observe(-1.0);
    guarded.observe(0.0);
    EXPECT_EQ(guarded.samples(), 0u);
    EXPECT_DOUBLE_EQ(guarded.p95(), 1.0);
}

TEST(ErrorQuantiles, RingBoundsMemory)
{
    ErrorQuantiles q;
    for (int i = 0; i < 1000; ++i)
        q.observe(1.0 + double(i % 7) * 0.1);
    EXPECT_EQ(q.samples(), ErrorQuantiles::kCapacity);
}

TEST(HoltSeries, FallsBackUntilTwoObservations)
{
    HoltSeries series(0.5, 0.2);
    EXPECT_DOUBLE_EQ(series.forecast(1, 42.0), 42.0);
    series.observe(10.0);
    EXPECT_DOUBLE_EQ(series.forecast(1, 42.0), 42.0);
    series.observe(12.0);
    EXPECT_NE(series.forecast(1, 42.0), 42.0);
}

TEST(HoltSeries, TracksRampAboveLastSample)
{
    // A steady ramp must forecast above the most recent measurement:
    // that is the whole point of carrying a trend term.
    HoltSeries series(0.5, 0.2);
    double last = 0;
    for (int i = 1; i <= 20; ++i) {
        last = 10.0 * i;
        series.observe(last);
    }
    EXPECT_GT(series.forecast(1, 0.0), series.level());
    EXPECT_GT(series.trend(), 0.0);
    // And it is a pure fold: same inputs, same outputs.
    HoltSeries replay(0.5, 0.2);
    for (int i = 1; i <= 20; ++i)
        replay.observe(10.0 * i);
    EXPECT_DOUBLE_EQ(series.forecast(3, 0.0), replay.forecast(3, 0.0));
    // Forecasts never go negative on a falling series.
    HoltSeries falling(0.9, 0.9);
    for (int i = 0; i < 10; ++i)
        falling.observe(100.0 - 30.0 * i);
    EXPECT_GE(falling.forecast(5, 0.0), 0.0);
}

TEST(PredictionHub, ForecastServeRateWarmsUp)
{
    PredictConfig config = regress_config();
    PredictionHub hub(config);
    // First sample: fallback (the measurement itself).
    EXPECT_DOUBLE_EQ(hub.forecast_serve_rate(10.0), 10.0);
    // A sustained ramp: once the trend term converges, the plan-ahead
    // rate must exceed the latest measurement — capacity lands when the
    // load does instead of one period late.
    double f = 0, last = 0;
    for (int i = 2; i <= 40; ++i) {
        last = 5.0 * i;
        f = hub.forecast_serve_rate(last);
    }
    EXPECT_GT(f, last);
}

TEST(PredictTune, DimsRegisteredWithIdempotentClamp)
{
    auto space = tune::ParamSpace::subset(
        {"predict.decay", "predict.sample_floor", "predict.safety_min",
         "predict.safety_max"});
    ASSERT_TRUE(space.is_ok()) << space.status().str();
    const auto &dims = space.value();
    // Clamp idempotence: clamp(clamp(v)) == clamp(v) across a spread of
    // raw values, including the integer dim's rounding path.
    for (double raw : {-10.0, 0.0, 0.333, 1.49, 7.7, 1e6}) {
        std::vector<double> v(4, raw);
        const auto once = dims.clamp(v);
        EXPECT_EQ(dims.clamp(once), once) << "raw=" << raw;
    }
    // Round trip through a StackConfig lands inside validate()'s space.
    core::StackConfig config;
    config.predict.enabled = true;
    dims.apply({0.2, 8.0, 1.1, 2.0}, &config);
    EXPECT_DOUBLE_EQ(config.predict.decay, 0.2);
    EXPECT_EQ(config.predict.sample_floor, 8);
    EXPECT_TRUE(config.predict.validate().is_ok());
}

TEST(PredictConfigIo, RendersOnlyWhenEnabledAndRoundTrips)
{
    core::StackConfig off;
    EXPECT_EQ(core::stack_config_to_text(off).find("predict"),
              std::string::npos);

    core::StackConfig on;
    on.predict.enabled = true;
    on.predict.mode = EstimatorMode::kEma;
    on.predict.decay = 0.125;
    on.predict.sample_floor = 7;
    on.predict.safety_min = 1.1;
    on.predict.safety_max = 3.0;
    on.predict.bias = 2.0;
    on.predict.forecast_alpha = 0.25;
    on.predict.forecast_beta = 0.5;
    auto parsed = core::parse_stack_config(core::stack_config_to_text(on));
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().str();
    const auto &p = parsed.value().predict;
    EXPECT_TRUE(p.enabled);
    EXPECT_EQ(p.mode, EstimatorMode::kEma);
    EXPECT_DOUBLE_EQ(p.decay, 0.125);
    EXPECT_EQ(p.sample_floor, 7);
    EXPECT_DOUBLE_EQ(p.safety_min, 1.1);
    EXPECT_DOUBLE_EQ(p.safety_max, 3.0);
    EXPECT_DOUBLE_EQ(p.bias, 2.0);
    EXPECT_DOUBLE_EQ(p.forecast_alpha, 0.25);
    EXPECT_DOUBLE_EQ(p.forecast_beta, 0.5);
}

/** A grid small enough to simulate inside a unit test, long enough
 *  that completions interleave with scheduling (predictions bite). */
driver::SweepSpec
predict_spec()
{
    driver::SweepSpec spec;
    spec.schedulers = {"backfill-easy"};
    spec.placements = {"topology"};
    spec.preempt_modes = {"graceful"};
    spec.loads = {1.6};
    spec.seeds = {1};
    spec.base.trace.num_jobs = 60;
    spec.base.trace.mean_interarrival_s = 60.0;
    spec.base.stack.cluster.topology.racks = 2;
    spec.base.stack.cluster.topology.nodes_per_rack = 4;
    spec.base.stack.emit_monitor_logs = false;
    return spec;
}

TEST(PredictSweep, ParsesAxesAndRejectsBadValues)
{
    auto parsed = driver::parse_sweep_spec(
        "estimator_modes: limit,ema,regress\nmispredict_bias: 0.5,1,2\n");
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().str();
    EXPECT_EQ(parsed.value().estimator_modes,
              (std::vector<std::string>{"limit", "ema", "regress"}));
    EXPECT_EQ(parsed.value().mispredict_bias,
              (std::vector<double>{0.5, 1.0, 2.0}));
    // limit collapses regardless of the bias list: 1 + 2*3 points.
    EXPECT_EQ(parsed.value().predict_point_count(), 7u);
    EXPECT_FALSE(driver::parse_sweep_spec("estimator_modes: oracle\n")
                     .is_ok());
    EXPECT_FALSE(driver::parse_sweep_spec("mispredict_bias: 0\n").is_ok());
    EXPECT_FALSE(driver::parse_sweep_spec("mispredict_bias: -1\n").is_ok());
}

TEST(PredictSweep, ExpansionNamesAndCollapse)
{
    driver::SweepSpec spec = predict_spec();
    spec.estimator_modes = {"limit", "ema", "regress"};
    spec.mispredict_bias = {0.5, 1.0, 2.0};
    auto scenarios = driver::expand_sweep(spec);
    ASSERT_EQ(scenarios.size(), 7u);
    // The prediction-off point is first and unsuffixed: pre-existing
    // grids survive as a prefix of the expansion.
    EXPECT_EQ(scenarios[0].name, "backfill-easy/topology/graceful/x1.6/s1");
    EXPECT_FALSE(scenarios[0].config.stack.predict.enabled);
    EXPECT_EQ(scenarios[1].name,
              "backfill-easy/topology/graceful/x1.6/s1+est-ema-x0.5");
    EXPECT_EQ(scenarios[2].name,
              "backfill-easy/topology/graceful/x1.6/s1+est-ema");
    EXPECT_EQ(scenarios[3].name,
              "backfill-easy/topology/graceful/x1.6/s1+est-ema-x2");
    EXPECT_EQ(scenarios[6].name,
              "backfill-easy/topology/graceful/x1.6/s1+est-regress-x2");
    EXPECT_TRUE(scenarios[6].config.stack.predict.enabled);
    EXPECT_EQ(scenarios[6].config.stack.predict.mode,
              EstimatorMode::kRegress);
    EXPECT_DOUBLE_EQ(scenarios[6].config.stack.predict.bias, 2.0);
}

TEST(PredictSweep, LimitModeDigestsIdenticalToBaseline)
{
    // The integration form of "off is off": a sweep whose estimator
    // axis is the default (limit only) must render byte-identical
    // digests to the same sweep before the prediction layer existed.
    const driver::SweepSpec baseline = predict_spec();
    driver::SweepSpec limit_axis = predict_spec();
    limit_axis.estimator_modes = {"limit"};
    limit_axis.mispredict_bias = {0.5, 1.0, 2.0};
    const auto base_run = driver::run_sweep(baseline, 1);
    const auto limit_run = driver::run_sweep(limit_axis, 1);
    EXPECT_EQ(driver::digests_text(base_run),
              driver::digests_text(limit_run));
}

TEST(PredictSweep, PredictionChangesOutcomesDeterministically)
{
    driver::SweepSpec spec = predict_spec();
    // Sensitivity needs completions interleaved with arrivals (same
    // rationale as ci_sweep_predict.spec): at 60 jobs the trace
    // schedules before the model has history and the axis is inert.
    spec.base.trace.num_jobs = 160;
    spec.estimator_modes = {"limit", "regress"};
    const auto serial = driver::run_sweep(spec, 1);
    const auto parallel = driver::run_sweep(spec, 4);
    ASSERT_EQ(serial.runs.size(), 2u);
    // Worker count is throughput, never semantics — with predictions on.
    EXPECT_EQ(driver::digests_text(serial), driver::digests_text(parallel));
    // And the axis is not inert at this scale: the authoritative model
    // must actually change scheduling outcomes.
    EXPECT_NE(serial.runs[0].digest, serial.runs[1].digest);
}

TEST(PredictSweep, BatchAndStreamingDigestsAgree)
{
    driver::SweepSpec spec = predict_spec();
    spec.estimator_modes = {"regress"};
    driver::SweepSpec streaming = spec;
    streaming.base.streaming = true;
    const auto batch_run = driver::run_sweep(spec, 2);
    const auto stream_run = driver::run_sweep(streaming, 2);
    EXPECT_EQ(driver::digests_text(batch_run),
              driver::digests_text(stream_run));
}

} // namespace
} // namespace tacc::predict
