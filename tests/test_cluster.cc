/**
 * @file
 * Unit tests for nodes, cluster allocation, and occupancy accounting.
 */
#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace tacc::cluster {
namespace {

ClusterConfig
small_config(int racks = 2, int nodes_per_rack = 2, int gpus = 4)
{
    ClusterConfig config;
    config.topology.racks = racks;
    config.topology.nodes_per_rack = nodes_per_rack;
    config.node.gpu_count = gpus;
    return config;
}

NodeSpec
four_gpu_node()
{
    NodeSpec spec;
    spec.gpu_count = 4;
    return spec;
}

Placement
single(NodeId node, int count)
{
    Placement p;
    PlacementSlice slice;
    slice.node = node;
    slice.gpu_indices.resize(size_t(count), 0);
    p.slices.push_back(slice);
    return p;
}

TEST(Node, AllocatesLowestFreeIndices)
{
    Node node(0, "n0", 0, four_gpu_node());
    auto got = node.allocate(1, 2);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value(), (std::vector<int>{0, 1}));
    EXPECT_EQ(node.free_gpu_count(), 2);

    auto more = node.allocate(2, 2);
    ASSERT_TRUE(more.is_ok());
    EXPECT_EQ(more.value(), (std::vector<int>{2, 3}));
    EXPECT_TRUE(node.is_full());
}

TEST(Node, ReleaseReturnsIndicesForReuse)
{
    Node node(0, "n0", 0, four_gpu_node());
    ASSERT_TRUE(node.allocate(1, 2).is_ok());
    ASSERT_TRUE(node.allocate(2, 2).is_ok());
    EXPECT_EQ(node.release(1), 2);
    EXPECT_TRUE(node.gpu_free(0));
    EXPECT_TRUE(node.gpu_free(1));
    auto again = node.allocate(3, 2);
    ASSERT_TRUE(again.is_ok());
    EXPECT_EQ(again.value(), (std::vector<int>{0, 1}));
}

TEST(Node, OverAllocationFails)
{
    Node node(0, "n0", 0, four_gpu_node());
    EXPECT_FALSE(node.allocate(1, 5).is_ok());
    EXPECT_FALSE(node.allocate(1, 0).is_ok());
    EXPECT_FALSE(node.allocate(1, -1).is_ok());
    EXPECT_EQ(node.free_gpu_count(), 4);
}

TEST(Node, ResidentJobsAndGpusOf)
{
    Node node(0, "n0", 0, four_gpu_node());
    ASSERT_TRUE(node.allocate(7, 1).is_ok());
    ASSERT_TRUE(node.allocate(9, 2).is_ok());
    EXPECT_EQ(node.resident_jobs(), (std::vector<JobId>{7, 9}));
    EXPECT_EQ(node.gpus_of(9), (std::vector<int>{1, 2}));
    EXPECT_TRUE(node.gpus_of(42).empty());
}

TEST(Cluster, BuildsNamedNodesInRacks)
{
    Cluster cluster(small_config());
    EXPECT_EQ(cluster.node_count(), 4);
    EXPECT_EQ(cluster.total_gpus(), 16);
    EXPECT_EQ(cluster.node(0).rack(), 0);
    EXPECT_EQ(cluster.node(3).rack(), 1);
    EXPECT_NE(cluster.node(2).name().find("r01"), std::string::npos);
}

TEST(Cluster, AtomicMultiNodeAllocation)
{
    Cluster cluster(small_config());
    Placement p;
    p.slices.push_back(single(0, 3).slices[0]);
    p.slices.push_back(single(1, 2).slices[0]);
    ASSERT_TRUE(cluster.allocate(1, p).is_ok());
    EXPECT_EQ(cluster.used_gpus(), 5);
    EXPECT_TRUE(cluster.has_job(1));

    const Placement held = cluster.placement_of(1);
    EXPECT_EQ(held.total_gpus(), 5);
    ASSERT_EQ(held.slices.size(), 2u);
    // Granted indices are concrete.
    EXPECT_EQ(held.slices[0].gpu_indices, (std::vector<int>{0, 1, 2}));
}

TEST(Cluster, FailedAllocationLeavesNoResidue)
{
    Cluster cluster(small_config());
    ASSERT_TRUE(cluster.allocate(1, single(0, 3)).is_ok());
    // Wants 2 on node 0 (only 1 free) and 2 on node 1: must fail whole.
    Placement p;
    p.slices.push_back(single(0, 2).slices[0]);
    p.slices.push_back(single(1, 2).slices[0]);
    EXPECT_FALSE(cluster.allocate(2, p).is_ok());
    EXPECT_EQ(cluster.used_gpus(), 3);
    EXPECT_EQ(cluster.node(1).free_gpu_count(), 4);
    EXPECT_FALSE(cluster.has_job(2));
}

TEST(Cluster, RejectsMalformedPlacements)
{
    Cluster cluster(small_config());
    EXPECT_FALSE(cluster.allocate(1, Placement{}).is_ok());
    EXPECT_FALSE(cluster.allocate(kInvalidJob, single(0, 1)).is_ok());
    Placement dup;
    dup.slices.push_back(single(0, 1).slices[0]);
    dup.slices.push_back(single(0, 1).slices[0]);
    EXPECT_FALSE(cluster.allocate(1, dup).is_ok());
    Placement unknown = single(99, 1);
    EXPECT_FALSE(cluster.allocate(1, unknown).is_ok());
    // Duplicate job id.
    ASSERT_TRUE(cluster.allocate(1, single(0, 1)).is_ok());
    EXPECT_FALSE(cluster.allocate(1, single(1, 1)).is_ok());
}

TEST(Cluster, ReleaseFreesEverything)
{
    Cluster cluster(small_config());
    Placement p;
    p.slices.push_back(single(0, 2).slices[0]);
    p.slices.push_back(single(3, 4).slices[0]);
    ASSERT_TRUE(cluster.allocate(1, p).is_ok());
    EXPECT_EQ(cluster.release(1), 6);
    EXPECT_EQ(cluster.used_gpus(), 0);
    EXPECT_EQ(cluster.release(1), 0); // idempotent
}

TEST(Cluster, RunningJobsSorted)
{
    Cluster cluster(small_config());
    ASSERT_TRUE(cluster.allocate(5, single(0, 1)).is_ok());
    ASSERT_TRUE(cluster.allocate(2, single(1, 1)).is_ok());
    EXPECT_EQ(cluster.running_jobs(), (std::vector<JobId>{2, 5}));
}

TEST(Cluster, OccupancyAndFragmentation)
{
    Cluster cluster(small_config(1, 4, 4)); // 4 nodes x 4 GPUs
    ASSERT_TRUE(cluster.allocate(1, single(0, 4)).is_ok()); // full node
    ASSERT_TRUE(cluster.allocate(2, single(1, 1)).is_ok()); // partial
    const auto snap = cluster.occupancy();
    EXPECT_EQ(snap.total_gpus, 16);
    EXPECT_EQ(snap.used_gpus, 5);
    EXPECT_EQ(snap.full_nodes, 1);
    EXPECT_EQ(snap.partial_nodes, 1);
    EXPECT_EQ(snap.idle_nodes, 2);
    EXPECT_EQ(snap.largest_free_block, 4);
    // 3 of 11 free GPUs are stranded on the partial node.
    EXPECT_NEAR(snap.fragmentation, 3.0 / 11.0, 1e-12);
    EXPECT_NEAR(snap.utilization(), 5.0 / 16.0, 1e-12);
}

} // namespace
} // namespace tacc::cluster
