/**
 * @file
 * Stress tests for the pooled-slot event engine: cancel/reschedule churn,
 * slot reuse, and generation safety of stale EventIds.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"

namespace tacc {
namespace {

using namespace time_literals;
using sim::EventId;
using sim::Simulator;

TEST(SimStress, StaleIdAfterFireIsInert)
{
    Simulator sim;
    int fired = 0;
    const EventId id = sim.schedule_after(1_s, "a", [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
    // The id is dead; cancelling it must fail and must not disturb a
    // later event that recycles the same slot.
    EXPECT_FALSE(sim.cancel(id));
    int second = 0;
    const EventId next = sim.schedule_after(1_s, "b", [&] { ++second; });
    EXPECT_NE(next, id);
    EXPECT_FALSE(sim.cancel(id));
    sim.run();
    EXPECT_EQ(second, 1);
}

TEST(SimStress, StaleIdAfterCancelCannotKillSlotReuser)
{
    Simulator sim;
    const EventId old_id = sim.schedule_after(5_s, "victim", [] {});
    ASSERT_TRUE(sim.cancel(old_id));
    // The freed slot is recycled by the next schedule; the old id now
    // aliases the slot but not the generation.
    int fired = 0;
    const EventId new_id = sim.schedule_after(2_s, "reuser", [&] {
        ++fired;
    });
    EXPECT_NE(new_id, old_id);
    EXPECT_FALSE(sim.cancel(old_id));
    EXPECT_EQ(sim.pending(), 1u);
    sim.run();
    EXPECT_EQ(fired, 1);
}

TEST(SimStress, DoubleCancelReportsFalse)
{
    Simulator sim;
    const EventId id = sim.schedule_after(1_s, "x", [] {});
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.cancel(id));
    EXPECT_EQ(sim.pending(), 0u);
    sim.run();
    EXPECT_EQ(sim.processed(), 0u);
}

TEST(SimStress, CancelFromInsideCallback)
{
    Simulator sim;
    int late_fired = 0;
    const EventId late = sim.schedule_after(10_s, "late", [&] {
        ++late_fired;
    });
    sim.schedule_after(1_s, "killer", [&] { EXPECT_TRUE(sim.cancel(late)); });
    sim.run();
    EXPECT_EQ(late_fired, 0);
    EXPECT_EQ(sim.processed(), 1u);
}

TEST(SimStress, NextEventTimeSkipsCancelledPrefix)
{
    Simulator sim;
    std::vector<EventId> doomed;
    for (int i = 0; i < 64; ++i)
        doomed.push_back(sim.schedule_after(Duration::seconds(i + 1),
                                            "doomed", [] {}));
    const EventId keeper = sim.schedule_after(100_s, "keeper", [] {});
    for (EventId id : doomed)
        EXPECT_TRUE(sim.cancel(id));
    // The const observer must look through the pile of stale heap
    // entries without firing anything.
    EXPECT_EQ(sim.next_event_time(), TimePoint::origin() + 100_s);
    EXPECT_EQ(sim.pending(), 1u);
    EXPECT_TRUE(sim.cancel(keeper));
    EXPECT_EQ(sim.next_event_time(), TimePoint::max());
}

/**
 * Randomized churn: schedule, cancel, and fire in bursts for thousands of
 * rounds, checking that exactly the never-cancelled events fire, in
 * global (time, schedule order) sequence, while ids recycle slots.
 */
TEST(SimStress, RandomChurnFiresExactlyTheLiveSet)
{
    Simulator sim;
    Rng rng(20250806);

    struct Tracked {
        EventId id;
        int64_t t_us;
        uint64_t order; ///< schedule sequence (for same-time ties)
        bool cancelled = false;
        bool fired = false;
    };
    std::vector<Tracked> events;
    events.reserve(20000);
    uint64_t order = 0;

    std::vector<size_t> fire_log;
    for (int round = 0; round < 200; ++round) {
        // Burst of schedules at varied horizons (including duplicates of
        // the same instant to exercise the tie-break).
        const int burst = int(rng.uniform_int(1, 40));
        for (int i = 0; i < burst; ++i) {
            const int64_t delay_us = rng.uniform_int(0, 5'000'000);
            const size_t idx = events.size();
            Tracked tr;
            tr.t_us = (sim.now() + Duration::micros(delay_us)).to_micros();
            tr.order = order++;
            tr.id = sim.schedule_after(Duration::micros(delay_us), "churn",
                                       [&fire_log, &events, idx] {
                                           events[idx].fired = true;
                                           fire_log.push_back(idx);
                                       });
            events.push_back(tr);
        }
        // Cancel a random sample of whatever is still pending.
        for (int i = 0; i < 8; ++i) {
            auto &tr = events[size_t(
                rng.uniform_int(0, int64_t(events.size()) - 1))];
            const bool expect_live = !tr.cancelled && !tr.fired;
            EXPECT_EQ(sim.cancel(tr.id), expect_live);
            tr.cancelled = tr.cancelled || expect_live;
        }
        // Fire a few events to advance time and recycle slots.
        for (int i = 0; i < 10 && sim.step(); ++i) {
        }
    }
    sim.run();

    size_t expected_fired = 0;
    for (const auto &tr : events) {
        EXPECT_NE(tr.fired, tr.cancelled);
        expected_fired += tr.fired ? 1u : 0u;
    }
    ASSERT_EQ(fire_log.size(), expected_fired);
    // Global order: (time, schedule sequence) strictly increasing.
    for (size_t i = 1; i < fire_log.size(); ++i) {
        const auto &a = events[fire_log[i - 1]];
        const auto &b = events[fire_log[i]];
        if (a.t_us != b.t_us) {
            EXPECT_LT(a.t_us, b.t_us);
        } else {
            EXPECT_LT(a.order, b.order);
        }
    }
    EXPECT_EQ(sim.pending(), 0u);
    EXPECT_EQ(sim.processed(), expected_fired);
}

/** Cancel + immediate reschedule loops must not leak pending count or
 *  grow the live set, however many times a slot is reused. */
TEST(SimStress, CancelRescheduleLoopKeepsBookkeepingExact)
{
    Simulator sim;
    EventId current = 0;
    int fired = 0;
    for (int i = 0; i < 10000; ++i) {
        if (current != 0)
            sim.cancel(current);
        current = sim.schedule_after(Duration::seconds(1 + (i % 7)),
                                     "rearm", [&] { ++fired; });
        ASSERT_EQ(sim.pending(), 1u);
    }
    sim.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.pending(), 0u);
}

} // namespace
} // namespace tacc
