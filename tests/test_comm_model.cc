/**
 * @file
 * Unit tests for the communication model: cost formulas, transport
 * effects, and the overlap rule.
 */
#include <gtest/gtest.h>

#include "exec/comm_model.h"

namespace tacc::exec {
namespace {

using cluster::Placement;
using cluster::Topology;
using cluster::TopologyConfig;

Placement
make_placement(std::vector<std::pair<cluster::NodeId, int>> slices)
{
    Placement p;
    for (const auto &[node, count] : slices) {
        cluster::PlacementSlice s;
        s.node = node;
        s.gpu_indices.resize(size_t(count), 0);
        p.slices.push_back(s);
    }
    return p;
}

workload::ModelProfile
model(double param_mib = 1024.0)
{
    workload::ModelProfile m;
    m.name = "m";
    m.param_bytes = param_mib * 1024 * 1024;
    m.flops_per_iter = 1e12;
    return m;
}

class CommModelTest : public ::testing::Test
{
  protected:
    CommModelTest() : topo_(TopologyConfig{}), comm_(CommModelConfig{}) {}
    Topology topo_;
    CommModel comm_;
};

TEST_F(CommModelTest, SingleGpuIsFree)
{
    EXPECT_DOUBLE_EQ(
        comm_.sync_time_s(model(), make_placement({{0, 1}}), topo_,
                          Transport::kRdma,
                          SyncAlgorithm::kRingAllReduce),
        0.0);
}

TEST_F(CommModelTest, RingCostMatchesFormula)
{
    // 2 nodes intra-rack over RDMA: B = 100 Gbps * 0.95.
    const auto p = make_placement({{0, 8}, {1, 8}});
    const double got = comm_.sync_time_s(model(1024.0), p, topo_,
                                         Transport::kRdma,
                                         SyncAlgorithm::kRingAllReduce);
    const double bw = 100e9 / 8.0 * 0.95;
    const double expected =
        2.0 * 0.5 * 1024.0 * 1024 * 1024 / bw +
        2.0 * (6e-6 + 10e-6);
    EXPECT_NEAR(got, expected, expected * 1e-9);
}

TEST_F(CommModelTest, TcpSlowerThanRdma)
{
    const auto p = make_placement({{0, 8}, {1, 8}});
    const double tcp = comm_.sync_time_s(model(), p, topo_,
                                         Transport::kTcp,
                                         SyncAlgorithm::kRingAllReduce);
    const double rdma = comm_.sync_time_s(model(), p, topo_,
                                          Transport::kRdma,
                                          SyncAlgorithm::kRingAllReduce);
    EXPECT_GT(tcp, rdma * 1.3);
}

TEST_F(CommModelTest, ParameterServerIncastScalesWithNodes)
{
    const auto two = make_placement({{0, 8}, {1, 8}});
    const auto four = make_placement({{0, 8}, {1, 8}, {2, 8}, {3, 8}});
    const double ps2 = comm_.sync_time_s(model(), two, topo_,
                                         Transport::kRdma,
                                         SyncAlgorithm::kParameterServer);
    const double ps4 = comm_.sync_time_s(model(), four, topo_,
                                         Transport::kRdma,
                                         SyncAlgorithm::kParameterServer);
    EXPECT_NEAR(ps4 / ps2, 2.0, 0.01);
    // At scale PS loses to ring all-reduce.
    const double ring4 = comm_.sync_time_s(model(), four, topo_,
                                           Transport::kRdma,
                                           SyncAlgorithm::kRingAllReduce);
    EXPECT_GT(ps4, ring4 * 2.0);
}

TEST_F(CommModelTest, InNetworkBeatsRingInRack)
{
    const auto p = make_placement({{0, 8}, {1, 8}, {2, 8}, {3, 8}});
    const double ring = comm_.sync_time_s(model(), p, topo_,
                                          Transport::kRdma,
                                          SyncAlgorithm::kRingAllReduce);
    const double atp = comm_.sync_time_s(model(), p, topo_,
                                         Transport::kInNetwork,
                                         SyncAlgorithm::kRingAllReduce);
    EXPECT_LT(atp, ring);
    // Approaches the 2(n-1)/n -> 2x gain for large n; here n=4 -> 1.5x.
    EXPECT_NEAR(ring / atp, 1.5, 0.1);
}

TEST_F(CommModelTest, InNetworkFallsBackAcrossRacks)
{
    // Nodes 0 and 8 are in different racks (8 nodes/rack default).
    const auto cross = make_placement({{0, 8}, {8, 8}});
    const double atp = comm_.sync_time_s(model(), cross, topo_,
                                         Transport::kInNetwork,
                                         SyncAlgorithm::kRingAllReduce);
    const double rdma = comm_.sync_time_s(model(), cross, topo_,
                                          Transport::kRdma,
                                          SyncAlgorithm::kRingAllReduce);
    EXPECT_DOUBLE_EQ(atp, rdma);
}

TEST_F(CommModelTest, CrossRackSlowerThanIntraRackWhenOversubscribed)
{
    TopologyConfig oversub;
    oversub.oversubscription = 4.0;
    Topology topo(oversub);
    const auto intra = make_placement({{0, 8}, {1, 8}});
    const auto cross = make_placement({{0, 8}, {8, 8}});
    EXPECT_GT(comm_.sync_time_s(model(), cross, topo, Transport::kRdma,
                                SyncAlgorithm::kRingAllReduce),
              comm_.sync_time_s(model(), intra, topo, Transport::kRdma,
                                SyncAlgorithm::kRingAllReduce) * 2.0);
    // On a non-blocking fabric only latency differs.
    const double flat_cross = comm_.sync_time_s(
        model(), cross, topo_, Transport::kRdma,
        SyncAlgorithm::kRingAllReduce);
    const double flat_intra = comm_.sync_time_s(
        model(), intra, topo_, Transport::kRdma,
        SyncAlgorithm::kRingAllReduce);
    EXPECT_NEAR(flat_cross / flat_intra, 1.0, 0.01);
}

TEST_F(CommModelTest, IntraNodeUsesNvlinkEndpoints)
{
    const auto p = make_placement({{0, 8}});
    const double got = comm_.sync_time_s(model(1024.0), p, topo_,
                                         Transport::kRdma,
                                         SyncAlgorithm::kRingAllReduce);
    // NVLink per-endpoint: 19200/8 Gbps * 0.95; n = 8 GPUs.
    const double bw = 19200e9 / 8.0 / 8.0 / 8.0 * 0.95 * 8.0;
    const double expected = 2.0 * 7.0 / 8.0 *
                                1024.0 * 1024 * 1024 / bw +
                            2.0 * 7.0 * (6e-6 + 2e-6);
    EXPECT_NEAR(got, expected, expected * 0.01);
}

TEST_F(CommModelTest, OverlapHidesCommunicationUnderCompute)
{
    // sync 1.0 s, compute 2.0 s, overlap 0.6 -> exposed 0.4 s.
    EXPECT_NEAR(comm_.effective_comm_s(1.0, 2.0, 0.6), 0.4, 1e-12);
    // Hidden part capped by compute: sync 10, compute 1, overlap 0.9 ->
    // hidden min(9, 1) = 1 -> exposed 9.
    EXPECT_NEAR(comm_.effective_comm_s(10.0, 1.0, 0.9), 9.0, 1e-12);
    // No overlap.
    EXPECT_NEAR(comm_.effective_comm_s(1.0, 2.0, 0.0), 1.0, 1e-12);
    // Full overlap, plenty of compute.
    EXPECT_NEAR(comm_.effective_comm_s(1.0, 2.0, 1.0), 0.0, 1e-12);
}

TEST(CommNames, Stable)
{
    EXPECT_STREQ(transport_name(Transport::kTcp), "tcp");
    EXPECT_STREQ(transport_name(Transport::kRdma), "rdma");
    EXPECT_STREQ(transport_name(Transport::kInNetwork), "innetwork");
    EXPECT_STREQ(sync_algorithm_name(SyncAlgorithm::kRingAllReduce),
                 "ring-allreduce");
    EXPECT_STREQ(sync_algorithm_name(SyncAlgorithm::kParameterServer),
                 "parameter-server");
}

} // namespace
} // namespace tacc::exec
