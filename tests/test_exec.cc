/**
 * @file
 * Unit tests for the execution layer: shared FS, failure model, monitor
 * hub, and the engine's segment planning.
 */
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "exec/engine.h"
#include "exec/monitor.h"
#include "workload/model.h"

namespace tacc::exec {
namespace {

using namespace time_literals;

workload::TaskSpec
spec(int gpus = 8, const std::string &model = "resnet50")
{
    workload::TaskSpec s;
    s.name = "t";
    s.user = "u";
    s.group = "g";
    s.gpus = gpus;
    s.model = model;
    s.iterations = 1000;
    return s;
}

workload::Job
make_job(const workload::TaskSpec &s)
{
    auto profile = workload::ModelCatalog::instance().find(s.model);
    workload::Job job(1, s, profile.value(), TimePoint::origin());
    EXPECT_TRUE(job.begin_provisioning(TimePoint::origin()).is_ok());
    EXPECT_TRUE(job.finish_provisioning(TimePoint::origin()).is_ok());
    return job;
}

cluster::Placement
place(cluster::Cluster &cluster, cluster::JobId id, int gpus)
{
    cluster::Placement want;
    int remaining = gpus;
    for (cluster::NodeId n = 0; remaining > 0; ++n) {
        const int free = cluster.node(n).free_gpu_count();
        const int take = std::min(remaining, free);
        if (take == 0)
            continue;
        cluster::PlacementSlice slice;
        slice.node = n;
        slice.gpu_indices.resize(size_t(take), 0);
        want.slices.push_back(slice);
        remaining -= take;
    }
    EXPECT_TRUE(cluster.allocate(id, want).is_ok());
    return cluster.placement_of(id);
}

TEST(SharedFilesystem, EqualShareWithClientCap)
{
    FsConfig config;
    config.aggregate_read_gbps = 100.0;
    config.per_client_gbps = 40.0;
    SharedFilesystem fs(config);
    // One reader: capped by the client NIC.
    fs.register_reader(1);
    EXPECT_DOUBLE_EQ(fs.read_bw_Bps(), 40.0 * 1e9 / 8.0);
    // Five readers: 20 Gbps shares below the cap.
    for (cluster::JobId id = 2; id <= 5; ++id)
        fs.register_reader(id);
    EXPECT_DOUBLE_EQ(fs.read_bw_Bps(), 20.0 * 1e9 / 8.0);
    EXPECT_EQ(fs.active_readers(), 5);
    fs.unregister_reader(3);
    EXPECT_EQ(fs.active_readers(), 4);
    EXPECT_DOUBLE_EQ(fs.read_bw_Bps(), 25.0 * 1e9 / 8.0);
}

TEST(SharedFilesystem, ReadTime)
{
    SharedFilesystem fs(FsConfig{.aggregate_read_gbps = 80.0,
                                 .per_client_gbps = 80.0});
    fs.register_reader(1);
    EXPECT_DOUBLE_EQ(fs.read_time_s(0), 0.0);
    EXPECT_NEAR(fs.read_time_s(10e9), 1.0, 1e-9);
}

TEST(FailureModel, DisabledInjectsNothing)
{
    FailureModel fm(FailureConfig{}, 1);
    const auto job = make_job(spec());
    cluster::Cluster cluster(cluster::ClusterConfig{});
    cluster::Placement p;
    p.slices.push_back({0, {0, 1}});
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(fm.sample_segment_failure(
                           job, p, compiler::RuntimeKind::kContainer,
                           Duration::hours(1000))
                         .has_value());
    }
}

TEST(FailureModel, TransientRateScalesWithNodesAndHorizon)
{
    FailureConfig config;
    config.node_mtbf_hours = 100.0;
    FailureModel fm(config, 7);
    const auto job = make_job(spec());
    cluster::Placement one_node;
    one_node.slices.push_back({0, {0}});
    cluster::Placement eight_nodes;
    for (cluster::NodeId n = 0; n < 8; ++n)
        eight_nodes.slices.push_back({n, {0}});

    int fail_one = 0, fail_eight = 0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i) {
        fail_one += fm.sample_segment_failure(
                          job, one_node,
                          compiler::RuntimeKind::kContainer,
                          Duration::hours(10))
                        .has_value();
        fail_eight += fm.sample_segment_failure(
                            job, eight_nodes,
                            compiler::RuntimeKind::kContainer,
                            Duration::hours(10))
                          .has_value();
    }
    // P(fail in 10h) = 1-exp(-10/100) ~ 9.5% vs 1-exp(-80/100) ~ 55%.
    EXPECT_NEAR(double(fail_one) / trials, 0.095, 0.03);
    EXPECT_NEAR(double(fail_eight) / trials, 0.551, 0.05);
}

TEST(FailureModel, PersistentIncompatibilityIsDeterministic)
{
    FailureConfig config;
    config.persistent_prob = 1.0; // every job has one bad runtime
    FailureModel fm(config, 11);
    const auto job = make_job(spec());
    const bool bad_container =
        fm.is_incompatible(job, compiler::RuntimeKind::kContainer);
    const bool bad_baremetal =
        fm.is_incompatible(job, compiler::RuntimeKind::kBareMetal);
    EXPECT_NE(bad_container, bad_baremetal); // exactly one is broken
    // Stable across queries.
    EXPECT_EQ(fm.is_incompatible(job, compiler::RuntimeKind::kContainer),
              bad_container);

    const auto bad = bad_container ? compiler::RuntimeKind::kContainer
                                   : compiler::RuntimeKind::kBareMetal;
    const auto failure = fm.sample_segment_failure(job, {}, bad,
                                                   Duration::hours(10));
    ASSERT_TRUE(failure.has_value());
    EXPECT_NEAR(failure->to_seconds(), config.persistent_fail_after_s,
                1e-6);
}

TEST(FailureModel, FailsafeSwitchingAlternatesRuntime)
{
    FailureConfig config;
    config.failsafe_switching = true;
    FailureModel fm(config, 11);
    const auto job = make_job(spec());
    const auto compiled = compiler::RuntimeKind::kContainer;
    EXPECT_EQ(fm.choose_runtime(job, compiled), compiled);
    fm.on_failure(job);
    EXPECT_EQ(fm.choose_runtime(job, compiled),
              compiler::RuntimeKind::kBareMetal);
    fm.on_failure(job);
    EXPECT_EQ(fm.choose_runtime(job, compiled), compiled);
    EXPECT_EQ(fm.attempts_of(job.id()), 2);
}

TEST(FailureModel, SwitchingDisabledKeepsRuntime)
{
    FailureConfig config;
    config.failsafe_switching = false;
    FailureModel fm(config, 11);
    const auto job = make_job(spec());
    fm.on_failure(job);
    EXPECT_EQ(fm.choose_runtime(job, compiler::RuntimeKind::kContainer),
              compiler::RuntimeKind::kContainer);
}

TEST(FailureModel, MaxAttemptsExhausts)
{
    FailureConfig config;
    config.max_attempts = 3;
    FailureModel fm(config, 1);
    const auto job = make_job(spec());
    EXPECT_FALSE(fm.on_failure(job));
    EXPECT_FALSE(fm.on_failure(job));
    EXPECT_TRUE(fm.on_failure(job));
}

TEST(FailureModel, MaxAttemptsOfOneFailsImmediately)
{
    FailureConfig config;
    config.max_attempts = 1;
    FailureModel fm(config, 1);
    const auto job = make_job(spec());
    EXPECT_TRUE(fm.on_failure(job));
}

TEST(FailureModel, ChooseRuntimeBeforeAnyFailureIsCompiled)
{
    FailureModel fm(FailureConfig{}, 3);
    const auto job = make_job(spec());
    EXPECT_EQ(fm.attempts_of(job.id()), 0);
    EXPECT_EQ(fm.choose_runtime(job, compiler::RuntimeKind::kBareMetal),
              compiler::RuntimeKind::kBareMetal);
}

TEST(FailureModel, ClassifyPersistentOnlyOnBadRuntime)
{
    FailureConfig config;
    config.persistent_prob = 1.0;
    FailureModel fm(config, 11);
    const auto job = make_job(spec());
    const bool bad_container =
        fm.is_incompatible(job, compiler::RuntimeKind::kContainer);
    const auto bad = bad_container ? compiler::RuntimeKind::kContainer
                                   : compiler::RuntimeKind::kBareMetal;
    const auto good = bad_container ? compiler::RuntimeKind::kBareMetal
                                    : compiler::RuntimeKind::kContainer;
    EXPECT_EQ(fm.classify(job, bad), FailureKind::kPersistent);
    EXPECT_EQ(fm.classify(job, good), FailureKind::kTransient);
}

TEST(FailureModel, RequeueBackoffDisabledByDefault)
{
    FailureModel fm(FailureConfig{}, 1);
    EXPECT_EQ(fm.requeue_backoff(1), Duration::zero());
    EXPECT_EQ(fm.requeue_backoff(10), Duration::zero());
}

TEST(FailureModel, RequeueBackoffDoublesAndCaps)
{
    FailureConfig config;
    config.requeue_backoff_base_s = 10.0;
    config.requeue_backoff_cap_s = 60.0;
    FailureModel fm(config, 1);
    EXPECT_EQ(fm.requeue_backoff(0), Duration::zero());
    EXPECT_NEAR(fm.requeue_backoff(1).to_seconds(), 10.0, 1e-9);
    EXPECT_NEAR(fm.requeue_backoff(2).to_seconds(), 20.0, 1e-9);
    EXPECT_NEAR(fm.requeue_backoff(3).to_seconds(), 40.0, 1e-9);
    EXPECT_NEAR(fm.requeue_backoff(4).to_seconds(), 60.0, 1e-9); // capped
    EXPECT_NEAR(fm.requeue_backoff(20).to_seconds(), 60.0, 1e-9);
}

TEST(FailureModel, RequeueBackoffCapBelowBaseClampsToCap)
{
    FailureConfig config;
    config.requeue_backoff_base_s = 100.0;
    config.requeue_backoff_cap_s = 30.0;
    FailureModel fm(config, 1);
    EXPECT_NEAR(fm.requeue_backoff(1).to_seconds(), 30.0, 1e-9);
    EXPECT_NEAR(fm.requeue_backoff(5).to_seconds(), 30.0, 1e-9);
}

TEST(MonitorHub, AggregatesAcrossNodesInTimeOrder)
{
    MonitorHub hub(4);
    cluster::Placement p;
    p.slices.push_back({0, {0}});
    p.slices.push_back({2, {0}});
    hub.emit(TimePoint::origin() + 5_s, 1, 2, "late");
    hub.emit(TimePoint::origin() + 1_s, 1, 0, "early");
    hub.emit(TimePoint::origin() + 3_s, 2, 1, "other job");
    hub.emit_all(TimePoint::origin() + 9_s, 1, p, "both");

    const auto lines = hub.aggregate(1);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines[0].text, "early");
    EXPECT_EQ(lines[1].text, "late");
    EXPECT_EQ(lines[2].text, "both");
    EXPECT_EQ(lines[3].text, "both");
    EXPECT_EQ(hub.total_emitted(), 5u);
    EXPECT_TRUE(hub.aggregate(42).empty());
}

TEST(MonitorHub, BoundedBuffersDropOldest)
{
    MonitorHub hub(1, 3);
    for (int i = 0; i < 5; ++i)
        hub.emit(TimePoint::origin() + Duration::seconds(i), 1, 0,
                 "line" + std::to_string(i));
    EXPECT_EQ(hub.node_line_count(0), 3u);
    EXPECT_EQ(hub.total_dropped(), 2u);
    const auto lines = hub.aggregate(1);
    EXPECT_EQ(lines.front().text, "line2");
}

TEST(MonitorHub, IncrementalFetchesConcatenateToFullAggregate)
{
    MonitorHub hub(3);
    LogCursor cursor = 0;
    std::vector<LogLine> fetched;
    auto drain = [&] {
        for (auto &line : hub.aggregate_since(1, cursor))
            fetched.push_back(std::move(line));
    };

    hub.emit(TimePoint::origin() + 2_s, 1, 0, "n0-first");
    hub.emit(TimePoint::origin() + 2_s, 1, 2, "n2-tied");
    hub.emit(TimePoint::origin() + 3_s, 2, 1, "other-job");
    drain();
    EXPECT_EQ(fetched.size(), 2u);

    // The cursor advanced past the other job's line too: nothing old is
    // re-fetched, only what is emitted from here on.
    drain();
    EXPECT_EQ(fetched.size(), 2u);

    hub.emit(TimePoint::origin() + 4_s, 1, 1, "n1-late");
    hub.emit(TimePoint::origin() + 4_s, 1, 0, "n0-tied-late");
    drain();

    const auto full = hub.aggregate(1);
    ASSERT_EQ(fetched.size(), full.size());
    for (size_t i = 0; i < full.size(); ++i) {
        EXPECT_EQ(fetched[i].seq, full[i].seq) << "position " << i;
        EXPECT_EQ(fetched[i].text, full[i].text) << "position " << i;
    }
    // Time-ordered, ties broken by emission order.
    EXPECT_EQ(full[0].text, "n0-first");
    EXPECT_EQ(full[1].text, "n2-tied");
    EXPECT_EQ(full[2].text, "n1-late");
    EXPECT_EQ(full[3].text, "n0-tied-late");
}

TEST(MonitorHub, InterleavedEmissionsMergeTimeOrdered)
{
    // Emissions land on nodes round-robin while polls interleave at
    // arbitrary points; the concatenation of incremental fetches must
    // equal one shot of the full merge, whatever the poll cadence.
    MonitorHub hub(4);
    LogCursor cursor = 0;
    std::vector<LogLine> fetched;
    TimePoint t = TimePoint::origin();
    for (int i = 0; i < 200; ++i) {
        // Bursts share a timestamp across several nodes (emit_all-like).
        if (i % 3 != 2)
            t += Duration::seconds(1);
        hub.emit(t, 1, cluster::NodeId(i % 4),
                 "line" + std::to_string(i));
        if (i % 7 == 0) {
            for (auto &line : hub.aggregate_since(1, cursor))
                fetched.push_back(std::move(line));
        }
    }
    for (auto &line : hub.aggregate_since(1, cursor))
        fetched.push_back(std::move(line));

    const auto full = hub.aggregate(1);
    ASSERT_EQ(fetched.size(), 200u);
    ASSERT_EQ(full.size(), 200u);
    for (size_t i = 0; i < full.size(); ++i) {
        EXPECT_EQ(fetched[i].seq, full[i].seq);
        EXPECT_GE(i + 1 < full.size() ? full[i + 1].time : full[i].time,
                  full[i].time);
    }
    // One more poll finds nothing new and leaves the cursor in place.
    const LogCursor before = cursor;
    EXPECT_TRUE(hub.aggregate_since(1, cursor).empty());
    EXPECT_EQ(cursor, before);
}

class EngineTest : public ::testing::Test
{
  protected:
    EngineTest() : cluster_(cluster::ClusterConfig{}) {}

    ExecutionEngine
    engine(ExecConfig config = {})
    {
        return ExecutionEngine(cluster_, config, 3);
    }

    cluster::Cluster cluster_;
};

TEST_F(EngineTest, TransportAutoSelection)
{
    auto eng = engine();
    auto s = spec();

    cluster::Placement intra_rack;
    intra_rack.slices.push_back({0, {0}});
    intra_rack.slices.push_back({1, {0}});
    EXPECT_EQ(eng.resolve_transport(s, intra_rack),
              Transport::kInNetwork);

    cluster::Placement cross_rack;
    cross_rack.slices.push_back({0, {0}});
    cross_rack.slices.push_back({8, {0}});
    EXPECT_EQ(eng.resolve_transport(s, cross_rack), Transport::kRdma);

    cluster::Placement single;
    single.slices.push_back({0, {0, 1}});
    EXPECT_EQ(eng.resolve_transport(s, single), Transport::kRdma);

    s.transport = workload::TransportPref::kTcp;
    EXPECT_EQ(eng.resolve_transport(s, intra_rack), Transport::kTcp);
}

TEST_F(EngineTest, TransportDowngradesWhenHardwareMissing)
{
    ExecConfig config;
    config.rdma_available = false;
    config.innetwork_available = false;
    auto eng = engine(config);
    auto s = spec();
    s.transport = workload::TransportPref::kRdma;
    cluster::Placement p;
    p.slices.push_back({0, {0}});
    p.slices.push_back({1, {0}});
    EXPECT_EQ(eng.resolve_transport(s, p), Transport::kTcp);
    s.transport = workload::TransportPref::kInNetwork;
    EXPECT_EQ(eng.resolve_transport(s, p), Transport::kTcp);
}

TEST_F(EngineTest, IterationTimeGrowsWithScopeAndContention)
{
    auto eng = engine();
    auto job8 = make_job(spec(8, "bert-large"));
    const auto p_single = place(cluster_, 1, 8);
    auto job16 = make_job(spec(16, "bert-large"));
    const auto p_two = place(cluster_, 2, 16);

    const double t8 = eng.iteration_time_s(job8, p_single);
    const double t16 = eng.iteration_time_s(job16, p_two);
    EXPECT_GT(t16, t8); // crossing nodes costs

    // FS contention can only slow things down.
    const double before = eng.iteration_time_s(job8, p_single);
    for (cluster::JobId id = 100; id < 200; ++id)
        eng.fs().register_reader(id);
    const double after = eng.iteration_time_s(job8, p_single);
    EXPECT_GE(after, before);
}

TEST_F(EngineTest, SegmentPlanChargesStartupAndRestart)
{
    auto eng = engine();
    auto job = make_job(spec(8));
    const auto p = place(cluster_, 1, 8);

    auto first = eng.plan_segment(job, p,
                                  compiler::RuntimeKind::kContainer);
    EXPECT_GT(first.iteration_s, 0);
    EXPECT_NEAR(first.startup.to_seconds(),
                eng.config().container_startup_s, 1e-9);
    EXPECT_FALSE(first.failure_after.has_value());

    // After a segment, a restart pays checkpoint-restore too.
    EXPECT_TRUE(job.begin_segment(TimePoint::origin(), 8,
                                  first.iteration_s)
                    .is_ok());
    EXPECT_TRUE(job.preempt(TimePoint::origin() + 10_s).is_ok());
    auto second = eng.plan_segment(job, p,
                                   compiler::RuntimeKind::kBareMetal);
    EXPECT_NEAR(second.startup.to_seconds(),
                eng.config().baremetal_startup_s +
                    eng.config().restart_overhead_s,
                1e-9);
}

TEST_F(EngineTest, SpineContentionScalesCrossRackBandwidth)
{
    // Default topology: 8 nodes/rack, oversubscription 1.0 -> the quiet
    // scale is capped at 1 (no headroom on a non-blocking fabric).
    auto flat = engine();
    EXPECT_DOUBLE_EQ(flat.cross_rack_bw_scale(1), 1.0);

    // Oversubscribed fabric: a lone cross-rack job gets the full NIC.
    cluster::ClusterConfig oversub_config;
    oversub_config.topology.oversubscription = 4.0;
    cluster::Cluster oversub_cluster(oversub_config);
    ExecutionEngine eng(oversub_cluster, ExecConfig{}, 3);
    EXPECT_DOUBLE_EQ(eng.cross_rack_bw_scale(1), 4.0);

    // Contention degrades toward the oversubscription floor.
    for (cluster::JobId id = 1; id <= 8; ++id)
        eng.register_cross_rack_job(id);
    EXPECT_EQ(eng.cross_rack_jobs(), 8);
    EXPECT_DOUBLE_EQ(eng.cross_rack_bw_scale(1), 1.0);
    // An unregistered newcomer counts itself as a 9th sharer.
    EXPECT_DOUBLE_EQ(eng.cross_rack_bw_scale(99), 1.0);
    for (cluster::JobId id = 3; id <= 8; ++id)
        eng.unregister_cross_rack_job(id);
    EXPECT_DOUBLE_EQ(eng.cross_rack_bw_scale(1), 4.0); // 8/2 capped at 4

    // Disabled: always the static floor.
    ExecConfig off;
    off.model_spine_contention = false;
    ExecutionEngine plain(oversub_cluster, off, 3);
    EXPECT_DOUBLE_EQ(plain.cross_rack_bw_scale(1), 1.0);
}

TEST_F(EngineTest, CrossRackIterationSpeedsUpOnQuietSpine)
{
    cluster::ClusterConfig oversub_config;
    oversub_config.topology.oversubscription = 4.0;
    cluster::Cluster oversub_cluster(oversub_config);
    ExecutionEngine eng(oversub_cluster, ExecConfig{}, 3);

    auto job = make_job(spec(16, "vgg19")); // comm-heavy
    cluster::Placement cross;
    cross.slices.push_back({0, {0, 1, 2, 3, 4, 5, 6, 7}});
    cross.slices.push_back({8, {0, 1, 2, 3, 4, 5, 6, 7}});
    EXPECT_TRUE(oversub_cluster.allocate(job.id(), cross).is_ok());

    const double quiet = eng.iteration_time_s(job, cross);
    for (cluster::JobId id = 100; id < 108; ++id)
        eng.register_cross_rack_job(id);
    const double contended = eng.iteration_time_s(job, cross);
    EXPECT_GT(contended, quiet * 1.5);
}

TEST_F(EngineTest, CheckpointCostAmortizedIntoIterationTime)
{
    ExecConfig with_ckpt;
    with_ckpt.checkpoint_interval_s = 100.0;
    with_ckpt.checkpoint_cost_s = 10.0;
    auto plain = engine();
    auto ckpt = engine(with_ckpt);
    auto job = make_job(spec(8));
    const auto p = place(cluster_, 1, 8);
    const double base = plain.iteration_time_s(job, p);
    const double taxed = ckpt.iteration_time_s(job, p);
    EXPECT_NEAR(taxed / base, 1.1, 1e-9);
}

TEST_F(EngineTest, PlanSamplesFailureWhenInjected)
{
    ExecConfig config;
    config.failure.persistent_prob = 1.0;
    auto eng = engine(config);
    auto s = spec(8);
    s.iterations = 1'000'000; // long enough to reach the crash point
    auto job = make_job(s);
    const auto p = place(cluster_, 1, 8);
    const bool bad_container = eng.failures().is_incompatible(
        job, compiler::RuntimeKind::kContainer);
    const auto bad = bad_container ? compiler::RuntimeKind::kContainer
                                   : compiler::RuntimeKind::kBareMetal;
    auto plan = eng.plan_segment(job, p, bad);
    ASSERT_TRUE(plan.failure_after.has_value());
}

} // namespace
} // namespace tacc::exec
