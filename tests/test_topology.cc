/**
 * @file
 * Unit tests for the topology / bandwidth model.
 */
#include <gtest/gtest.h>

#include "cluster/topology.h"

namespace tacc::cluster {
namespace {

TopologyConfig
config(int racks = 2, int nodes = 4, double oversub = 4.0)
{
    TopologyConfig c;
    c.racks = racks;
    c.nodes_per_rack = nodes;
    c.oversubscription = oversub;
    return c;
}

Placement
make_placement(std::vector<std::pair<NodeId, int>> slices)
{
    Placement p;
    for (const auto &[node, count] : slices) {
        PlacementSlice s;
        s.node = node;
        s.gpu_indices.resize(size_t(count), 0);
        p.slices.push_back(s);
    }
    return p;
}

TEST(Topology, RackMapping)
{
    Topology topo(config());
    EXPECT_EQ(topo.rack_of(0), 0);
    EXPECT_EQ(topo.rack_of(3), 0);
    EXPECT_EQ(topo.rack_of(4), 1);
    EXPECT_EQ(topo.total_nodes(), 8);
}

TEST(Topology, ScopeClassification)
{
    Topology topo(config());
    EXPECT_EQ(topo.scope_of(make_placement({{0, 1}})),
              CommScope::kSingleGpu);
    EXPECT_EQ(topo.scope_of(make_placement({{0, 4}})),
              CommScope::kIntraNode);
    EXPECT_EQ(topo.scope_of(make_placement({{0, 4}, {1, 4}})),
              CommScope::kIntraRack);
    EXPECT_EQ(topo.scope_of(make_placement({{0, 4}, {4, 4}})),
              CommScope::kCrossRack);
}

TEST(Topology, CollectiveBandwidthOrdering)
{
    Topology topo(config());
    const double intra_node =
        topo.collective_bw_Bps(make_placement({{0, 2}}));
    const double intra_rack =
        topo.collective_bw_Bps(make_placement({{0, 4}, {1, 4}}));
    const double cross_rack =
        topo.collective_bw_Bps(make_placement({{0, 4}, {4, 4}}));
    EXPECT_GT(intra_node, intra_rack);
    EXPECT_GT(intra_rack, cross_rack);
    // Oversubscription factor is exactly 4.
    EXPECT_NEAR(intra_rack / cross_rack, 4.0, 1e-9);
}

TEST(Topology, NvlinkSharedAcrossJobGpus)
{
    Topology topo(config());
    const double two =
        topo.collective_bw_Bps(make_placement({{0, 2}}));
    const double eight =
        topo.collective_bw_Bps(make_placement({{0, 8}}));
    EXPECT_NEAR(two / eight, 4.0, 1e-9);
}

TEST(Topology, NonBlockingFabricHasNoCrossRackPenalty)
{
    Topology topo(config(2, 4, 1.0));
    const double intra_rack =
        topo.collective_bw_Bps(make_placement({{0, 4}, {1, 4}}));
    const double cross_rack =
        topo.collective_bw_Bps(make_placement({{0, 4}, {4, 4}}));
    EXPECT_DOUBLE_EQ(intra_rack, cross_rack);
}

TEST(Topology, P2pBandwidth)
{
    Topology topo(config());
    EXPECT_GT(topo.p2p_bw_Bps(0, 0), topo.p2p_bw_Bps(0, 1));
    EXPECT_GT(topo.p2p_bw_Bps(0, 1), topo.p2p_bw_Bps(0, 4));
}

TEST(Topology, LatencyIncreasesWithScope)
{
    Topology topo(config());
    EXPECT_LT(topo.latency_s(CommScope::kIntraNode),
              topo.latency_s(CommScope::kIntraRack));
    EXPECT_LT(topo.latency_s(CommScope::kIntraRack),
              topo.latency_s(CommScope::kCrossRack));
}

TEST(Topology, ScopeNames)
{
    EXPECT_STREQ(comm_scope_name(CommScope::kIntraNode), "intra-node");
    EXPECT_STREQ(comm_scope_name(CommScope::kCrossRack), "cross-rack");
}

} // namespace
} // namespace tacc::cluster
