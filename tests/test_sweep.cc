/**
 * @file
 * Sweep driver tests: spec parsing, grid expansion, preemption-cost
 * modes, digest stability across worker counts (the determinism
 * contract the CI gate enforces), and golden-file comparison.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hash.h"
#include "driver/digest.h"
#include "driver/runner.h"
#include "driver/sweep.h"

namespace tacc::driver {
namespace {

/** A grid small enough to simulate inside a unit test. */
SweepSpec
tiny_spec()
{
    SweepSpec spec;
    spec.schedulers = {"fairshare", "fifo-skip"};
    spec.placements = {"topology"};
    spec.preempt_modes = {"graceful"};
    spec.loads = {1.0};
    spec.seeds = {1, 2};
    spec.base.trace.num_jobs = 12;
    spec.base.trace.mean_interarrival_s = 120.0;
    spec.base.stack.cluster.topology.racks = 2;
    spec.base.stack.cluster.topology.nodes_per_rack = 4;
    spec.base.stack.emit_monitor_logs = false;
    return spec;
}

TEST(SweepSpecParse, ParsesAxesAndBaseKnobs)
{
    const std::string text = R"(# comment line
schedulers: fairshare, fifo-skip
placements: topology,pack
preempt_modes: graceful,free
loads: 1.0, 1.6
seeds: 1,2,3

jobs: 25
interarrival_s: 75
racks: 2
nodes_per_rack: 4
gpus_per_node: 8
oversubscription: 2.0
)";
    auto parsed = parse_sweep_spec(text);
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().str();
    const SweepSpec &spec = parsed.value();
    EXPECT_EQ(spec.schedulers,
              (std::vector<std::string>{"fairshare", "fifo-skip"}));
    EXPECT_EQ(spec.placements,
              (std::vector<std::string>{"topology", "pack"}));
    EXPECT_EQ(spec.preempt_modes,
              (std::vector<std::string>{"graceful", "free"}));
    EXPECT_EQ(spec.loads, (std::vector<double>{1.0, 1.6}));
    EXPECT_EQ(spec.seeds, (std::vector<uint64_t>{1, 2, 3}));
    EXPECT_EQ(spec.grid_size(), 2u * 2u * 2u * 2u * 3u);
    EXPECT_EQ(spec.base.trace.num_jobs, 25);
    EXPECT_DOUBLE_EQ(spec.base.trace.mean_interarrival_s, 75.0);
    EXPECT_EQ(spec.base.stack.cluster.topology.racks, 2);
    EXPECT_EQ(spec.base.stack.cluster.topology.nodes_per_rack, 4);
}

TEST(SweepSpecParse, RejectsUnknownKey)
{
    auto spec = parse_sweep_spec("schedulers: fairshare\nbogus_knob: 3\n");
    EXPECT_FALSE(spec.is_ok());
    EXPECT_NE(spec.status().message().find("bogus_knob"),
              std::string::npos);
}

TEST(SweepSpecParse, RejectsUnknownScheduler)
{
    auto spec = parse_sweep_spec("schedulers: no-such-policy\n");
    EXPECT_FALSE(spec.is_ok());
}

TEST(SweepSpecParse, RejectsUnknownPreemptMode)
{
    auto spec = parse_sweep_spec("preempt_modes: yolo\n");
    EXPECT_FALSE(spec.is_ok());
}

TEST(SweepExpand, CanonicalOrderAndNames)
{
    SweepSpec spec = tiny_spec();
    auto scenarios = expand_sweep(spec);
    ASSERT_EQ(scenarios.size(), spec.grid_size());
    // Seeds iterate innermost, schedulers outermost.
    EXPECT_EQ(scenarios[0].name, "fairshare/topology/graceful/x1/s1");
    EXPECT_EQ(scenarios[1].name, "fairshare/topology/graceful/x1/s2");
    EXPECT_EQ(scenarios[2].name, "fifo-skip/topology/graceful/x1/s1");
    EXPECT_EQ(scenarios[3].name, "fifo-skip/topology/graceful/x1/s2");
    EXPECT_EQ(scenarios[0].config.stack.scheduler, "fairshare");
    EXPECT_EQ(scenarios[2].config.stack.scheduler, "fifo-skip");
    EXPECT_EQ(scenarios[1].config.trace.seed, 2u);
    EXPECT_EQ(scenarios[1].config.stack.seed, 2u);
}

TEST(SweepExpand, LoadScalesInterarrival)
{
    SweepSpec spec = tiny_spec();
    spec.schedulers = {"fairshare"};
    spec.seeds = {1};
    spec.loads = {1.0, 2.0};
    auto scenarios = expand_sweep(spec);
    ASSERT_EQ(scenarios.size(), 2u);
    EXPECT_DOUBLE_EQ(scenarios[0].config.trace.mean_interarrival_s, 120.0);
    EXPECT_DOUBLE_EQ(scenarios[1].config.trace.mean_interarrival_s, 60.0);
    EXPECT_EQ(scenarios[1].name, "fairshare/topology/graceful/x2/s1");
}

TEST(SweepPreemptModes, MapToExecCosts)
{
    core::StackConfig graceful, free_mode, costly, checkpoint;
    ASSERT_TRUE(apply_preempt_mode("graceful", &graceful).is_ok());
    ASSERT_TRUE(apply_preempt_mode("free", &free_mode).is_ok());
    ASSERT_TRUE(apply_preempt_mode("costly", &costly).is_ok());
    ASSERT_TRUE(apply_preempt_mode("checkpoint", &checkpoint).is_ok());
    EXPECT_DOUBLE_EQ(free_mode.exec.restart_overhead_s, 0.0);
    EXPECT_GT(costly.exec.restart_overhead_s,
              graceful.exec.restart_overhead_s);
    EXPECT_GT(checkpoint.exec.checkpoint_interval_s, 0.0);
    EXPECT_FALSE(apply_preempt_mode("bogus", &graceful).is_ok());
}

TEST(SweepDeterminism, DigestsIdenticalAcrossWorkerCounts)
{
    const SweepSpec spec = tiny_spec();
    const SweepSummary serial = run_sweep(spec, 1);
    const SweepSummary parallel = run_sweep(spec, 8);
    ASSERT_EQ(serial.runs.size(), spec.grid_size());
    ASSERT_EQ(parallel.runs.size(), spec.grid_size());
    // The golden-file rendering must be byte-identical: worker count is
    // throughput, never semantics.
    EXPECT_EQ(digests_text(serial), digests_text(parallel));
    for (size_t i = 0; i < serial.runs.size(); ++i) {
        EXPECT_EQ(serial.runs[i].scenario.name,
                  parallel.runs[i].scenario.name);
        EXPECT_EQ(serial.runs[i].digest, parallel.runs[i].digest);
        EXPECT_EQ(serial.runs[i].result.completed,
                  parallel.runs[i].result.completed);
    }
}

TEST(SweepDeterminism, DigestSensitiveToPolicyAndSeed)
{
    const SweepSpec spec = tiny_spec();
    const SweepSummary summary = run_sweep(spec, 2);
    ASSERT_EQ(summary.runs.size(), 4u);
    // fairshare/s1 vs fifo-skip/s1 and fairshare/s1 vs fairshare/s2
    // must all differ — otherwise the digest is not discriminating.
    EXPECT_NE(summary.runs[0].digest, summary.runs[2].digest);
    EXPECT_NE(summary.runs[0].digest, summary.runs[1].digest);
}

TEST(SweepGoldens, RoundTripAndDriftDetection)
{
    SweepSpec spec = tiny_spec();
    spec.schedulers = {"fairshare"};
    spec.seeds = {1, 2};
    const SweepSummary summary = run_sweep(spec, 2);

    const std::string golden = digests_text(summary);
    EXPECT_NE(golden.find("# tacc_sweep digests v1"), std::string::npos);
    auto check = check_digests(summary, golden);
    EXPECT_TRUE(check.ok) << check.report;

    // Flip one digest: must be reported as drift, by name.
    std::string drifted = golden;
    const auto pos = drifted.find(Fnv1a::hex(summary.runs[0].digest));
    ASSERT_NE(pos, std::string::npos);
    drifted[pos] = drifted[pos] == 'f' ? '0' : 'f';
    check = check_digests(summary, drifted);
    EXPECT_FALSE(check.ok);
    EXPECT_NE(check.report.find(summary.runs[0].scenario.name),
              std::string::npos);

    // A golden missing one run must fail, as must one with an extra run.
    std::string missing = golden;
    missing.erase(missing.find(summary.runs[0].scenario.name),
                  missing.find('\n', missing.find(
                      summary.runs[0].scenario.name)) + 1 -
                      missing.find(summary.runs[0].scenario.name));
    check = check_digests(summary, missing);
    EXPECT_FALSE(check.ok);

    std::string extra = golden + "phantom/run/x1/s9 0123456789abcdef\n";
    check = check_digests(summary, extra);
    EXPECT_FALSE(check.ok);
    EXPECT_NE(check.report.find("phantom"), std::string::npos);
}

TEST(SweepSummaryJson, ContainsRunsAndStableKeys)
{
    SweepSpec spec = tiny_spec();
    spec.schedulers = {"fairshare"};
    spec.seeds = {1};
    const SweepSummary summary = run_sweep(spec, 1);
    const std::string json = summary_to_json(summary);
    EXPECT_NE(json.find("\"workers\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"fairshare/topology/graceful/x1/s1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"digest\": \""), std::string::npos);
    EXPECT_NE(json.find("\"completed\""), std::string::npos);
    EXPECT_NE(json.find("\"utilization\""), std::string::npos);
}

TEST(SweepDigest, PlacementDigestFoldedIntoRecords)
{
    // Runs with different placement policies over the same trace must
    // produce different digests even if timing happened to coincide —
    // the per-job placement fingerprint guarantees it. Sanity-check that
    // records carry a non-zero placement digest for started jobs.
    SweepSpec spec = tiny_spec();
    spec.schedulers = {"fairshare"};
    spec.seeds = {1};
    const SweepSummary summary = run_sweep(spec, 1);
    ASSERT_EQ(summary.runs.size(), 1u);
    int started_with_digest = 0;
    for (const auto &r : summary.runs[0].result.records) {
        if (r.started && r.placement_digest != 0)
            ++started_with_digest;
    }
    EXPECT_GT(started_with_digest, 0);
}

} // namespace
} // namespace tacc::driver
