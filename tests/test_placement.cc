/**
 * @file
 * Tests for FreeView and the placement policies: shared invariants run as
 * a parameterized suite over every policy; policy-specific shape tests
 * follow.
 */
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "sched/placement.h"

namespace tacc::sched {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Placement;

ClusterConfig
config(int racks = 2, int nodes_per_rack = 4, int gpus = 8)
{
    ClusterConfig c;
    c.topology.racks = racks;
    c.topology.nodes_per_rack = nodes_per_rack;
    c.node.gpu_count = gpus;
    return c;
}

TEST(FreeView, MirrorsClusterAndTracksTakes)
{
    Cluster cluster(config());
    FreeView view(cluster);
    EXPECT_EQ(view.total_free(), 64);
    EXPECT_EQ(view.free(0), 8);
    EXPECT_EQ(view.node_capacity(0), 8);
    EXPECT_EQ(view.max_node_capacity(), 8);

    Placement p;
    p.slices.push_back({0, {0, 1, 2}});
    view.take(p);
    EXPECT_EQ(view.free(0), 5);
    EXPECT_EQ(view.total_free(), 61);
    view.give(p);
    EXPECT_EQ(view.free(0), 8);
    EXPECT_TRUE(view.fits_single_node(8));
    EXPECT_FALSE(view.fits_single_node(9));
}

class PlacementInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(PlacementInvariants, ProducesValidPlacementOrRefuses)
{
    const auto &[policy_name, gpus] = GetParam();
    auto policy = make_placement_policy(policy_name, 7);
    ASSERT_NE(policy, nullptr);

    Cluster cluster(config());
    // Pre-occupy some capacity so policies face fragmentation.
    ASSERT_TRUE(cluster.allocate(900, Placement{{{0, {0, 1, 2, 3, 4}}}})
                    .is_ok());
    ASSERT_TRUE(cluster.allocate(901, Placement{{{3, {0, 1, 2, 3, 4, 5}}}})
                    .is_ok());
    FreeView view(cluster);

    auto plan = policy->plan(view, cluster.topology(), gpus, 8);
    if (int(view.total_free()) < gpus) {
        EXPECT_FALSE(plan.is_ok());
        return;
    }
    ASSERT_TRUE(plan.is_ok())
        << policy_name << " refused " << gpus << " GPUs with "
        << view.total_free() << " free";
    const Placement &p = plan.value();
    EXPECT_EQ(p.total_gpus(), gpus);
    // Slices must respect per-node free capacity and the per-node limit,
    // and must name distinct nodes.
    std::set<cluster::NodeId> seen;
    for (const auto &slice : p.slices) {
        EXPECT_TRUE(seen.insert(slice.node).second);
        EXPECT_LE(int(slice.gpu_indices.size()), 8);
        EXPECT_LE(int(slice.gpu_indices.size()), view.free(slice.node));
        EXPECT_GE(int(slice.gpu_indices.size()), 1);
    }
    // The plan must be committable against the real cluster.
    EXPECT_TRUE(cluster.allocate(1, p).is_ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAllSizes, PlacementInvariants,
    ::testing::Combine(::testing::Values("firstfit", "pack", "spread",
                                         "topology", "random"),
                       ::testing::Values(1, 2, 3, 8, 13, 16, 32, 53, 64)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_g" +
               std::to_string(std::get<1>(info.param));
    });

TEST(PlacementPolicy, PerNodeLimitRespected)
{
    Cluster cluster(config());
    FreeView view(cluster);
    for (const char *name : {"firstfit", "pack", "spread", "topology",
                             "random"}) {
        auto policy = make_placement_policy(name);
        auto plan = policy->plan(view, cluster.topology(), 8, 2);
        ASSERT_TRUE(plan.is_ok()) << name;
        for (const auto &slice : plan.value().slices)
            EXPECT_LE(slice.gpu_indices.size(), 2u) << name;
        // Consolidating policies use the minimum node count; spread may
        // use up to one node per GPU.
        EXPECT_GE(plan.value().slices.size(), 4u) << name;
        EXPECT_LE(plan.value().slices.size(), 8u) << name;
    }
}

TEST(PackPlacement, PrefersTightestSingleNode)
{
    Cluster cluster(config());
    // node0 has 3 free, node1 has 5 free, others 8.
    ASSERT_TRUE(
        cluster.allocate(900, Placement{{{0, {0, 1, 2, 3, 4}}}}).is_ok());
    ASSERT_TRUE(
        cluster.allocate(901, Placement{{{1, {0, 1, 2}}}}).is_ok());
    FreeView view(cluster);
    PackPlacement pack;
    auto plan = pack.plan(view, cluster.topology(), 3, 8, nullptr);
    ASSERT_TRUE(plan.is_ok());
    ASSERT_EQ(plan.value().slices.size(), 1u);
    EXPECT_EQ(plan.value().slices[0].node, 0u); // tightest fit, not node 2+
}

TEST(PackPlacement, MinimizesNodeCountWhenSpanning)
{
    Cluster cluster(config(1, 4, 8));
    FreeView view(cluster);
    PackPlacement pack;
    auto plan = pack.plan(view, cluster.topology(), 24, 8, nullptr);
    ASSERT_TRUE(plan.is_ok());
    EXPECT_EQ(plan.value().slices.size(), 3u);
}

TEST(SpreadPlacement, MaximizesNodeCount)
{
    Cluster cluster(config(1, 4, 8));
    FreeView view(cluster);
    SpreadPlacement spread;
    auto plan = spread.plan(view, cluster.topology(), 4, 8, nullptr);
    ASSERT_TRUE(plan.is_ok());
    EXPECT_EQ(plan.value().slices.size(), 4u); // one GPU per node
}

TEST(TopologyAwarePlacement, StaysInOneRackWhenPossible)
{
    Cluster cluster(config(2, 4, 8));
    // Rack 0 has 20 free (node0 holds 12 used), rack 1 fully free (32).
    ASSERT_TRUE(cluster
                    .allocate(900, Placement{{{0, {0, 1, 2, 3, 4, 5}},
                                              {1, {0, 1, 2, 3, 4, 5}}}})
                    .is_ok());
    FreeView view(cluster);
    TopologyAwarePlacement topo;
    auto plan = topo.plan(view, cluster.topology(), 16, 8, nullptr);
    ASSERT_TRUE(plan.is_ok());
    std::set<int> racks;
    for (const auto &slice : plan.value().slices)
        racks.insert(cluster.topology().rack_of(slice.node));
    EXPECT_EQ(racks.size(), 1u);
    // Tightest rack that fits is rack 0 (20 free) for a 16-GPU ask.
    EXPECT_EQ(*racks.begin(), 0);
}

TEST(TopologyAwarePlacement, SpansRacksOnlyWhenForced)
{
    Cluster cluster(config(2, 4, 8));
    FreeView view(cluster);
    TopologyAwarePlacement topo;
    auto plan = topo.plan(view, cluster.topology(), 48, 8, nullptr);
    ASSERT_TRUE(plan.is_ok());
    std::set<int> racks;
    for (const auto &slice : plan.value().slices)
        racks.insert(cluster.topology().rack_of(slice.node));
    EXPECT_EQ(racks.size(), 2u);
}

TEST(FirstFitPlacement, ScansInNodeOrder)
{
    Cluster cluster(config());
    FreeView view(cluster);
    FirstFitPlacement ff;
    auto plan = ff.plan(view, cluster.topology(), 12, 8, nullptr);
    ASSERT_TRUE(plan.is_ok());
    ASSERT_EQ(plan.value().slices.size(), 2u);
    EXPECT_EQ(plan.value().slices[0].node, 0u);
    EXPECT_EQ(plan.value().slices[1].node, 1u);
}

TEST(RandomPlacement, DeterministicPerSeedStream)
{
    Cluster cluster(config());
    FreeView view(cluster);
    RandomPlacement a(5), b(5);
    auto pa = a.plan(view, cluster.topology(), 4, 8, nullptr);
    auto pb = b.plan(view, cluster.topology(), 4, 8, nullptr);
    ASSERT_TRUE(pa.is_ok() && pb.is_ok());
    EXPECT_EQ(pa.value().slices[0].node, pb.value().slices[0].node);
}

TEST(PlacementFactory, UnknownNameReturnsNull)
{
    EXPECT_EQ(make_placement_policy("bogus"), nullptr);
}

} // namespace
} // namespace tacc::sched
