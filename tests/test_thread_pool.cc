/**
 * @file
 * ThreadPool contract tests: results and exceptions propagate through
 * futures, shutdown drains every queued task (no work lost), and the
 * pool survives heavy churn. The work-stealing internals (deque
 * semantics, steal races, bulk groups, the relaxed ordering contract)
 * are property-tested in test_pool_property.cc; both files run under
 * the ThreadSanitizer `pool-stress` CI job, which is where the memory
 * orders are actually proven.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace tacc {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);

    std::vector<std::future<int>> results;
    for (int i = 0; i < 100; ++i)
        results.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(results[size_t(i)].get(), i * i);
}

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::hardware_threads(), 1);
    ThreadPool pool(0); // 0 = hardware concurrency
    EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPool, ExceptionPropagatesThroughFutureNotWorker)
{
    ThreadPool pool(2);
    auto failing = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW(failing.get(), std::runtime_error);

    // The worker that ran the throwing task must still be alive.
    auto after = pool.submit([] { return 7; });
    EXPECT_EQ(after.get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueuedWork)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        // Far more tasks than workers; most are still queued when the
        // destructor begins. Every one must still run.
        for (int i = 0; i < 64; ++i) {
            pool.submit([&ran] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ran.fetch_add(1);
            });
        }
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, NoWorkLostUnderChurn)
{
    std::atomic<int64_t> sum{0};
    constexpr int kTasks = 2000;
    {
        ThreadPool pool(4);
        std::vector<std::future<void>> done;
        done.reserve(kTasks);
        for (int i = 1; i <= kTasks; ++i)
            done.push_back(pool.submit([&sum, i] { sum += i; }));
        for (auto &f : done)
            f.get();
        EXPECT_EQ(sum.load(), int64_t(kTasks) * (kTasks + 1) / 2);
    }
}

TEST(ThreadPool, TasksFromOneSubmitterStartInFifoOrder)
{
    // The relaxed ordering contract: per-submitter FIFO survives only
    // on a single worker (no thieves; the injection batch transfer
    // replays submission order). Multi-worker reordering is asserted
    // in test_pool_property.cc.
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> done;
    for (int i = 0; i < 16; ++i)
        done.push_back(pool.submit([&order, i] { order.push_back(i); }));
    for (auto &f : done)
        f.get();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[size_t(i)], i);
}

TEST(ThreadPool, MoveOnlyResultsSupported)
{
    ThreadPool pool(2);
    auto fut = pool.submit([] { return std::make_unique<int>(42); });
    EXPECT_EQ(*fut.get(), 42);
}

} // namespace
} // namespace tacc
