/**
 * @file
 * Unit tests for the metrics collector.
 */
#include <gtest/gtest.h>

#include "core/metrics.h"
#include "workload/model.h"

namespace tacc::core {
namespace {

using namespace time_literals;
using workload::JobState;
using workload::QosClass;

workload::Job
finished_job(cluster::JobId id, const std::string &group, QosClass qos,
             TimePoint submit, Duration wait, Duration run, int gpus = 2)
{
    workload::TaskSpec spec;
    spec.name = "j" + std::to_string(id);
    spec.user = "u";
    spec.group = group;
    spec.qos = qos;
    spec.gpus = gpus;
    spec.model = "resnet50";
    spec.iterations = 100;
    auto profile = workload::ModelCatalog::instance().find(spec.model);
    workload::Job job(id, spec, profile.value(), submit);
    EXPECT_TRUE(job.begin_provisioning(submit).is_ok());
    EXPECT_TRUE(job.finish_provisioning(submit + 5_s).is_ok());
    const TimePoint start = submit + wait;
    const double iter_s = run.to_seconds() / 100.0;
    EXPECT_TRUE(job.begin_segment(start, gpus, iter_s).is_ok());
    EXPECT_TRUE(job.complete(start + run).is_ok());
    return job;
}

TEST(MetricsCollector, JobRecordsCaptureLifecycle)
{
    MetricsCollector m;
    const auto job = finished_job(1, "g", QosClass::kBatch,
                                  TimePoint::origin(), 60_s, 600_s);
    m.record_job(job);
    ASSERT_EQ(m.records().size(), 1u);
    const auto &r = m.records()[0];
    EXPECT_EQ(r.final_state, JobState::kCompleted);
    EXPECT_DOUBLE_EQ(r.wait_s, 60.0);
    EXPECT_DOUBLE_EQ(r.jct_s, 660.0);
    EXPECT_DOUBLE_EQ(r.provision_s, 5.0);
    EXPECT_GT(r.ideal_s, 0.0);
    EXPECT_DOUBLE_EQ(r.gpu_seconds, 1200.0);
    EXPECT_EQ(m.completed_count(), 1u);
    EXPECT_EQ(m.failed_count(), 0u);
    EXPECT_EQ(m.makespan(), TimePoint::origin() + 660_s);
}

TEST(MetricsCollector, SamplesFilterByQosAndState)
{
    MetricsCollector m;
    m.record_job(finished_job(1, "g", QosClass::kBatch,
                              TimePoint::origin(), 10_s, 100_s));
    m.record_job(finished_job(2, "g", QosClass::kInteractive,
                              TimePoint::origin(), 20_s, 50_s));
    EXPECT_EQ(m.jct_samples().count(), 2u);
    EXPECT_EQ(m.jct_samples_of(QosClass::kInteractive).count(), 1u);
    EXPECT_DOUBLE_EQ(m.wait_samples_of(QosClass::kInteractive).mean(),
                     20.0);
    EXPECT_EQ(m.records_of(QosClass::kBatch).size(), 1u);
}

TEST(MetricsCollector, UtilizationTimeline)
{
    MetricsCollector m;
    m.on_gpus_in_use(TimePoint::origin(), 0);
    m.on_gpus_in_use(TimePoint::origin() + 10_s, 8);
    m.on_gpus_in_use(TimePoint::origin() + 20_s, 0);
    // Mean over [0, 40): 8 GPUs for 10 of 40 seconds = 2 of 16 = 12.5%.
    EXPECT_NEAR(m.mean_utilization(TimePoint::origin(),
                                   TimePoint::origin() + 40_s, 16),
                0.125, 1e-12);
    const auto series = m.utilization_series(
        TimePoint::origin(), TimePoint::origin() + 40_s, 10_s, 16);
    ASSERT_EQ(series.size(), 4u);
    EXPECT_DOUBLE_EQ(series[0], 0.0);
    EXPECT_DOUBLE_EQ(series[1], 0.5);
    EXPECT_DOUBLE_EQ(series[2], 0.0);
}

TEST(MetricsCollector, QueueDepthAverage)
{
    MetricsCollector m;
    m.on_queue_depth(TimePoint::origin(), 4);
    m.on_queue_depth(TimePoint::origin() + 10_s, 0);
    EXPECT_NEAR(m.mean_queue_depth(TimePoint::origin(),
                                   TimePoint::origin() + 20_s),
                2.0, 1e-12);
}

TEST(MetricsCollector, GroupAccounting)
{
    MetricsCollector m;
    m.record_job(finished_job(1, "a", QosClass::kBatch,
                              TimePoint::origin(), 0_s, 100_s, 4));
    m.record_job(finished_job(2, "b", QosClass::kBatch,
                              TimePoint::origin(), 0_s, 100_s, 2));
    const auto by_group = m.gpu_seconds_by_group();
    EXPECT_DOUBLE_EQ(by_group.at("a"), 400.0);
    EXPECT_DOUBLE_EQ(by_group.at("b"), 200.0);
    EXPECT_GT(m.group_fairness(), 0.0);
    EXPECT_LE(m.group_fairness(), 1.0);
}

TEST(MetricsCollector, SlowdownFairnessEqualWhenDelaysEqual)
{
    MetricsCollector m;
    // Same wait/run shape for both groups -> equal slowdowns -> Jain 1.
    m.record_job(finished_job(1, "a", QosClass::kBatch,
                              TimePoint::origin(), 50_s, 100_s));
    m.record_job(finished_job(2, "b", QosClass::kBatch,
                              TimePoint::origin(), 50_s, 100_s));
    EXPECT_NEAR(m.group_fairness(), 1.0, 1e-9);
    EXPECT_EQ(m.slowdown_samples().count(), 2u);
    EXPECT_GE(m.slowdown_samples().min(), 1.0);
}

TEST(MetricsCollector, CountersAccumulate)
{
    MetricsCollector m;
    m.on_preemption();
    m.on_preemption();
    m.on_segment_failure();
    EXPECT_EQ(m.preemptions(), 2u);
    EXPECT_EQ(m.segment_failures(), 1u);
}

} // namespace
} // namespace tacc::core
