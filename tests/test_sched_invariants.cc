/**
 * @file
 * Randomized invariant checks over every scheduling policy.
 *
 * For a sweep of (policy, seed) pairs, builds a random cluster state
 * (random running set, random pending queue) and verifies properties
 * that every decision must satisfy regardless of policy:
 *
 *  - starts reference pending jobs only, at most once each;
 *  - preemptions reference running jobs only, at most once, and only
 *    preemptible ones;
 *  - after applying the preemptions, every start's placement fits the
 *    real cluster (slice capacities, distinct nodes);
 *  - non-elastic jobs are started with exactly their requested GPUs;
 *    elastic ones within [min, max];
 *  - group quotas are never exceeded by the post-decision holdings.
 */
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "sched_fixture.h"

namespace tacc::sched {
namespace {

using namespace time_literals;
using testing::SchedFixture;

class SchedulerInvariants
    : public SchedFixture,
      public ::testing::WithParamInterface<std::tuple<std::string, int>>
{
  protected:
    SchedulerInvariants() : SchedFixture(2, 4, 8) {}

    void
    populate(Rng &rng)
    {
        quota_.set_group_quota("quotagrp", 12);
        // Random running set.
        const int running = int(rng.uniform_int(0, 5));
        for (int i = 0; i < running; ++i) {
            JobOptions opts;
            opts.gpus = int(rng.uniform_int(1, 12));
            opts.preemptible = rng.bernoulli(0.7);
            opts.group = rng.bernoulli(0.3) ? "quotagrp"
                                            : "g" + std::to_string(i % 3);
            opts.qos = rng.bernoulli(0.3)
                           ? workload::QosClass::kBestEffort
                           : workload::QosClass::kBatch;
            if (cluster_->free_gpus() < opts.gpus)
                break;
            add_running(opts,
                        now_ + Duration::seconds(
                                   rng.uniform_int(60, 7200)),
                        rng.uniform(0, 1e5));
        }
        // Random pending queue.
        const int pending = int(rng.uniform_int(1, 10));
        for (int i = 0; i < pending; ++i) {
            JobOptions opts;
            opts.gpus = int(rng.uniform_int(1, 16));
            opts.preemptible = rng.bernoulli(0.8);
            opts.group = rng.bernoulli(0.3) ? "quotagrp"
                                            : "g" + std::to_string(i % 3);
            opts.time_limit =
                Duration::seconds(rng.uniform_int(600, 86400));
            if (rng.bernoulli(0.25)) {
                opts.qos = workload::QosClass::kInteractive;
                opts.preemptible = false;
                opts.gpus = std::min(opts.gpus, 2);
            }
            if (rng.bernoulli(0.3) && opts.gpus >= 2) {
                opts.min_gpus = std::max(1, opts.gpus / 2);
                opts.max_gpus = opts.gpus * 2;
            }
            opts.submit = now_ + Duration::seconds(i);
            add_pending(opts);
        }
    }
};

TEST_P(SchedulerInvariants, DecisionIsSound)
{
    const auto &[policy_name, seed] = GetParam();
    Rng rng(uint64_t(seed) * 7919 + 13);
    now_ = TimePoint::origin() + Duration::hours(2);
    populate(rng);

    auto scheduler = make_scheduler(policy_name);
    ASSERT_NE(scheduler, nullptr);
    const auto decision = scheduler->schedule(ctx());

    std::set<cluster::JobId> pending_ids, running_ids;
    std::map<cluster::JobId, workload::Job *> by_id;
    for (auto *job : pending_) {
        pending_ids.insert(job->id());
        by_id[job->id()] = job;
    }
    for (auto &r : running_) {
        running_ids.insert(r.job->id());
        by_id[r.job->id()] = r.job;
    }

    // Preemptions: running, preemptible, unique.
    std::set<cluster::JobId> preempted;
    for (auto victim : decision.preemptions) {
        EXPECT_TRUE(running_ids.contains(victim))
            << policy_name << " preempted non-running job " << victim;
        EXPECT_TRUE(preempted.insert(victim).second)
            << policy_name << " preempted job " << victim << " twice";
        EXPECT_TRUE(by_id[victim]->spec().preemptible)
            << policy_name << " preempted non-preemptible job";
    }

    // Apply preemptions to the real cluster.
    for (auto victim : preempted)
        cluster_->release(victim);

    // Starts: pending (or just-preempted) jobs, unique, correct sizes,
    // and committable placements.
    std::set<cluster::JobId> started_ids;
    std::map<std::string, int> held;
    for (auto &r : running_) {
        if (!preempted.contains(r.job->id()))
            held[r.job->spec().group] += r.job->running_gpus();
    }
    // The random running set may already exceed the quota (it was built
    // without the scheduler); the invariant is that decisions never push
    // the group beyond max(quota, what it already held).
    const int quota_floor = std::max(12, held["quotagrp"]);
    for (const auto &start : decision.starts) {
        EXPECT_TRUE(pending_ids.contains(start.job) ||
                    preempted.contains(start.job))
            << policy_name << " started unknown job " << start.job;
        EXPECT_TRUE(started_ids.insert(start.job).second)
            << policy_name << " started job twice";
        workload::Job *job = by_id[start.job];
        const int granted = start.placement.total_gpus();
        if (job->spec().is_elastic()) {
            EXPECT_GE(granted, job->spec().min_gpus) << policy_name;
            EXPECT_LE(granted, job->spec().max_gpus) << policy_name;
        } else {
            EXPECT_EQ(granted, job->spec().gpus) << policy_name;
        }
        EXPECT_TRUE(cluster_->allocate(start.job, start.placement).is_ok())
            << policy_name
            << " produced an uncommittable placement for job "
            << start.job;
        held[job->spec().group] += granted;
    }

    // Quota respected after the whole decision.
    EXPECT_LE(held["quotagrp"], quota_floor)
        << policy_name << " violated quota";
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, SchedulerInvariants,
    ::testing::Combine(
        ::testing::Values("fifo", "fifo-skip", "sjf", "sjf-pred",
                          "fairshare", "backfill-easy", "backfill-cons",
                          "backfill-pred", "qos-preempt", "las", "gang",
                          "drf", "edf", "edf-preempt", "elastic"),
        ::testing::Range(0, 12)),
    [](const auto &info) {
        auto name = std::get<0>(info.param);
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name + "_s" + std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace tacc::sched
