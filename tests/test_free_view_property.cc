/**
 * @file
 * Property tests for FreeView's incremental bucket index: after any
 * randomized sequence of take()/give(), every accelerated query must
 * return exactly what the straightforward linear scan over the raw
 * per-node free counts returns.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "sched/free_view.h"

namespace tacc {
namespace {

using cluster::NodeId;
using cluster::Placement;
using cluster::PlacementSlice;
using sched::FreeView;

/** The un-indexed reference: answers every query by scanning `free`. */
struct NaiveView {
    std::vector<int> free;
    std::vector<int> capacity;
    int nodes_per_rack = 1;

    bool
    fits_single_node(int n) const
    {
        if (n <= 0)
            return !free.empty();
        return std::any_of(free.begin(), free.end(),
                           [n](int f) { return f >= n; });
    }

    NodeId
    tightest_single_node(int gpus, int per_node_limit,
                         const std::vector<uint8_t> *eligible) const
    {
        if (gpus > per_node_limit)
            return cluster::kInvalidNode;
        NodeId best = cluster::kInvalidNode;
        for (NodeId n = 0; n < free.size(); ++n) {
            if (eligible && !(*eligible)[n])
                continue;
            if (free[n] < gpus)
                continue;
            if (best == cluster::kInvalidNode || free[n] < free[best])
                best = n;
        }
        return best;
    }

    std::vector<NodeId>
    nodes_fullest_first() const
    {
        std::vector<NodeId> order;
        for (NodeId n = 0; n < free.size(); ++n)
            if (free[n] > 0)
                order.push_back(n);
        std::stable_sort(order.begin(), order.end(),
                         [this](NodeId a, NodeId b) {
                             return free[a] > free[b];
                         });
        return order;
    }

    int
    rack_free(int rack) const
    {
        int total = 0;
        for (size_t n = 0; n < free.size(); ++n)
            if (int(n) / nodes_per_rack == rack)
                total += free[n];
        return total;
    }

    int total_free() const
    {
        return std::accumulate(free.begin(), free.end(), 0);
    }
};

Placement
slice_on(NodeId node, int gpus)
{
    PlacementSlice slice;
    slice.node = node;
    for (int g = 0; g < gpus; ++g)
        slice.gpu_indices.push_back(g);
    Placement p;
    p.slices.push_back(std::move(slice));
    return p;
}

void
expect_views_agree(const FreeView &view, const NaiveView &naive,
                   const std::vector<uint8_t> &mask)
{
    ASSERT_EQ(view.node_count(), int(naive.free.size()));
    ASSERT_EQ(view.total_free(), naive.total_free());
    for (NodeId n = 0; n < naive.free.size(); ++n)
        ASSERT_EQ(view.free(n), naive.free[n]);

    const int max_cap = view.max_node_capacity();
    for (int n = 0; n <= max_cap + 1; ++n)
        ASSERT_EQ(view.fits_single_node(n), naive.fits_single_node(n))
            << "fits_single_node(" << n << ")";

    for (int gpus = 1; gpus <= max_cap + 1; ++gpus) {
        for (int limit : {gpus, max_cap, max_cap + 4}) {
            ASSERT_EQ(view.tightest_single_node(gpus, limit),
                      naive.tightest_single_node(gpus, limit, nullptr))
                << "tightest(" << gpus << ", " << limit << ")";
            ASSERT_EQ(view.tightest_single_node(gpus, limit, &mask),
                      naive.tightest_single_node(gpus, limit, &mask))
                << "tightest masked(" << gpus << ", " << limit << ")";
        }
    }

    std::vector<NodeId> order;
    view.nodes_fullest_first(order);
    ASSERT_EQ(order, naive.nodes_fullest_first());

    ASSERT_EQ(view.rack_count() * view.nodes_per_rack(),
              int(naive.free.size()));
    for (int r = 0; r < view.rack_count(); ++r)
        ASSERT_EQ(view.rack_free(r), naive.rack_free(r)) << "rack " << r;
}

cluster::ClusterConfig
hetero_config(int racks, int nodes_per_rack, int gpus_per_node)
{
    cluster::ClusterConfig config;
    config.topology.racks = racks;
    config.topology.nodes_per_rack = nodes_per_rack;
    config.node.gpu_count = gpus_per_node;
    // One rack with bigger nodes: capacities must stay per-node, not
    // cluster-wide.
    cluster::NodeSpec big = config.node;
    big.gpu_count = gpus_per_node * 2;
    config.rack_node_overrides[racks - 1] = big;
    return config;
}

TEST(FreeViewProperty, FreshViewMatchesNaive)
{
    cluster::Cluster cluster(hetero_config(3, 4, 8));
    FreeView view(cluster);
    NaiveView naive;
    for (int n = 0; n < view.node_count(); ++n) {
        naive.free.push_back(view.free(NodeId(n)));
        naive.capacity.push_back(view.node_capacity(NodeId(n)));
    }
    naive.nodes_per_rack = view.nodes_per_rack();
    std::vector<uint8_t> mask(naive.free.size(), 1);
    expect_views_agree(view, naive, mask);
}

/** Randomized take/give churn, checking agreement after every step. */
TEST(FreeViewProperty, RandomTakeGiveChurnMatchesNaive)
{
    cluster::Cluster cluster(hetero_config(4, 4, 8));
    FreeView view(cluster);
    NaiveView naive;
    for (int n = 0; n < view.node_count(); ++n) {
        naive.free.push_back(view.free(NodeId(n)));
        naive.capacity.push_back(view.node_capacity(NodeId(n)));
    }
    naive.nodes_per_rack = view.nodes_per_rack();

    Rng rng(42);
    // A fixed pseudo-random eligibility mask stresses the masked
    // (linear-scan) path against the same model.
    std::vector<uint8_t> mask;
    for (size_t n = 0; n < naive.free.size(); ++n)
        mask.push_back(uint8_t(rng.uniform_int(0, 1)));

    // Outstanding placements we can give back later.
    std::vector<Placement> held;
    for (int round = 0; round < 400; ++round) {
        const bool can_take = naive.total_free() > 0;
        const bool do_take =
            held.empty() || (can_take && rng.uniform() < 0.55);
        if (do_take && can_take) {
            // Take a random amount from a random node with free GPUs.
            std::vector<NodeId> nonempty;
            for (NodeId n = 0; n < naive.free.size(); ++n)
                if (naive.free[n] > 0)
                    nonempty.push_back(n);
            const NodeId node = nonempty[size_t(
                rng.uniform_int(0, int64_t(nonempty.size()) - 1))];
            const int gpus =
                int(rng.uniform_int(1, naive.free[node]));
            held.push_back(slice_on(node, gpus));
            view.take(held.back());
            naive.free[node] -= gpus;
        } else if (!held.empty()) {
            const size_t pick = size_t(
                rng.uniform_int(0, int64_t(held.size()) - 1));
            const Placement p = held[pick];
            held.erase(held.begin() + long(pick));
            view.give(p);
            naive.free[p.slices[0].node] +=
                int(p.slices[0].gpu_indices.size());
        }
        expect_views_agree(view, naive, mask);
    }
}

/** Draining the whole cluster and refilling it must round-trip the
 *  index through the empty and full extremes. */
TEST(FreeViewProperty, DrainAndRefillRoundTrips)
{
    cluster::Cluster cluster(hetero_config(2, 3, 4));
    FreeView view(cluster);
    NaiveView naive;
    for (int n = 0; n < view.node_count(); ++n) {
        naive.free.push_back(view.free(NodeId(n)));
        naive.capacity.push_back(view.node_capacity(NodeId(n)));
    }
    naive.nodes_per_rack = view.nodes_per_rack();
    std::vector<uint8_t> mask(naive.free.size(), 1);

    std::vector<Placement> all;
    for (NodeId n = 0; n < naive.free.size(); ++n) {
        all.push_back(slice_on(n, naive.free[n]));
        view.take(all.back());
        naive.free[n] = 0;
        expect_views_agree(view, naive, mask);
    }
    EXPECT_EQ(view.total_free(), 0);
    EXPECT_FALSE(view.fits_single_node(1));
    for (const Placement &p : all) {
        view.give(p);
        naive.free[p.slices[0].node] +=
            int(p.slices[0].gpu_indices.size());
        expect_views_agree(view, naive, mask);
    }
    EXPECT_EQ(view.total_free(), naive.total_free());
}

/** reset() must fully rebuild the index from a dirty view. */
TEST(FreeViewProperty, ResetRebuildsFromDirtyState)
{
    cluster::Cluster small(hetero_config(2, 2, 4));
    cluster::Cluster large(hetero_config(3, 5, 8));
    FreeView view(small);
    view.take(slice_on(0, 2));
    view.take(slice_on(3, 4));

    view.reset(large);
    NaiveView naive;
    for (int n = 0; n < view.node_count(); ++n) {
        naive.free.push_back(view.node_capacity(NodeId(n)));
        naive.capacity.push_back(view.node_capacity(NodeId(n)));
    }
    naive.nodes_per_rack = view.nodes_per_rack();
    std::vector<uint8_t> mask(naive.free.size(), 1);
    expect_views_agree(view, naive, mask);

    // And shrinking back down must not leave phantom nodes behind.
    view.reset(small);
    NaiveView naive_small;
    for (int n = 0; n < view.node_count(); ++n) {
        naive_small.free.push_back(view.node_capacity(NodeId(n)));
        naive_small.capacity.push_back(view.node_capacity(NodeId(n)));
    }
    naive_small.nodes_per_rack = view.nodes_per_rack();
    std::vector<uint8_t> mask_small(naive_small.free.size(), 1);
    expect_views_agree(view, naive_small, mask_small);
}

} // namespace
} // namespace tacc
