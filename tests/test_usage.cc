/**
 * @file
 * Unit tests for fair-share usage decay and quota enforcement.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sched/usage.h"

namespace tacc::sched {
namespace {

using namespace time_literals;

TEST(UsageTracker, UnknownKeyIsZero)
{
    UsageTracker tracker(1_h);
    EXPECT_DOUBLE_EQ(tracker.usage("g", TimePoint::origin()), 0.0);
    EXPECT_DOUBLE_EQ(tracker.total_usage(TimePoint::origin()), 0.0);
    EXPECT_DOUBLE_EQ(tracker.usage_share("g", TimePoint::origin()), 0.0);
}

TEST(UsageTracker, ChargeAccumulates)
{
    UsageTracker tracker(1_h);
    tracker.charge("g", 100.0, TimePoint::origin());
    tracker.charge("g", 50.0, TimePoint::origin());
    EXPECT_DOUBLE_EQ(tracker.usage("g", TimePoint::origin()), 150.0);
}

TEST(UsageTracker, HalfLifeDecay)
{
    UsageTracker tracker(1_h);
    tracker.charge("g", 100.0, TimePoint::origin());
    EXPECT_NEAR(tracker.usage("g", TimePoint::origin() + 1_h), 50.0,
                1e-9);
    EXPECT_NEAR(tracker.usage("g", TimePoint::origin() + 2_h), 25.0,
                1e-9);
}

TEST(UsageTracker, DecayAppliedOnCharge)
{
    UsageTracker tracker(1_h);
    tracker.charge("g", 100.0, TimePoint::origin());
    tracker.charge("g", 10.0, TimePoint::origin() + 1_h);
    EXPECT_NEAR(tracker.usage("g", TimePoint::origin() + 1_h), 60.0,
                1e-9);
}

TEST(UsageTracker, ShareAcrossKeys)
{
    UsageTracker tracker(24_h);
    tracker.charge("a", 300.0, TimePoint::origin());
    tracker.charge("b", 100.0, TimePoint::origin());
    EXPECT_NEAR(tracker.usage_share("a", TimePoint::origin()), 0.75,
                1e-12);
    EXPECT_NEAR(tracker.usage_share("b", TimePoint::origin()), 0.25,
                1e-12);
}

TEST(UsageTracker, OldUsageFadesFromShares)
{
    UsageTracker tracker(1_h);
    tracker.charge("old", 1000.0, TimePoint::origin());
    tracker.charge("new", 100.0, TimePoint::origin() + 10_h);
    // After 10 half-lives "old" is ~1; "new" dominates.
    EXPECT_GT(tracker.usage_share("new", TimePoint::origin() + 10_h),
              0.98);
}

/** Brute-force total: what total_usage computed before memoization. */
double
summed_usage(const UsageTracker &tracker,
             const std::vector<std::string> &keys, TimePoint now)
{
    double total = 0;
    for (const auto &key : keys)
        total += tracker.usage(key, now);
    return total;
}

// Regression for the memoized aggregate: the cached total must be
// *bit-identical* to per-key recomputation at the same instant — the
// fair-share scheduler compares shares built from it, so even 1-ulp
// drift could flip a scheduling decision.
TEST(UsageTracker, CachedTotalBitIdenticalToRecomputation)
{
    UsageTracker tracker(24_h);
    Rng rng(99);
    const std::vector<std::string> keys = {"a", "b", "c", "d", "e"};
    TimePoint now = TimePoint::origin();
    for (int step = 0; step < 500; ++step) {
        now += Duration::from_seconds(rng.exponential(300.0));
        tracker.charge(keys[size_t(rng.uniform_int(0, 4))],
                       rng.uniform(0.0, 5000.0), now);
        const TimePoint query =
            now + Duration::from_seconds(rng.uniform(0.0, 3600.0));
        // The charge invalidated the cache, so the first call
        // recomputes; the repeat must serve the cache with the exact
        // same bits.
        const double first = tracker.total_usage(query);
        const double cached = tracker.total_usage(query);
        EXPECT_EQ(first, cached);
        EXPECT_EQ(tracker.usage_share("a", query),
                  tracker.usage("a", query) / first);
    }
}

TEST(UsageTracker, CacheInvalidatedByCharge)
{
    UsageTracker tracker(1_h);
    const TimePoint t = TimePoint::origin();
    tracker.charge("a", 100.0, t);
    EXPECT_DOUBLE_EQ(tracker.total_usage(t), 100.0);
    // Same query timestamp, new charge: the cache must not serve stale
    // totals.
    tracker.charge("b", 50.0, t);
    EXPECT_DOUBLE_EQ(tracker.total_usage(t), 150.0);
    tracker.charge("a", 25.0, t);
    EXPECT_DOUBLE_EQ(tracker.total_usage(t), 175.0);
}

TEST(UsageTracker, CacheIsPerTimestamp)
{
    UsageTracker tracker(1_h);
    tracker.charge("a", 100.0, TimePoint::origin());
    EXPECT_NEAR(tracker.total_usage(TimePoint::origin() + 1_h), 50.0,
                1e-9);
    // A different timestamp must recompute, not reuse the cached value.
    EXPECT_NEAR(tracker.total_usage(TimePoint::origin() + 2_h), 25.0,
                1e-9);
    EXPECT_NEAR(tracker.total_usage(TimePoint::origin() + 1_h), 50.0,
                1e-9);
}

TEST(UsageTracker, SnapshotSortedAndConsistent)
{
    UsageTracker tracker(24_h);
    const TimePoint t = TimePoint::origin();
    tracker.charge("zeta", 10.0, t);
    tracker.charge("alpha", 30.0, t);
    tracker.charge("mid", 20.0, t);
    const auto snap = tracker.snapshot(t + 1_h);
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].first, "alpha");
    EXPECT_EQ(snap[1].first, "mid");
    EXPECT_EQ(snap[2].first, "zeta");
    double total = 0;
    for (const auto &[key, value] : snap) {
        EXPECT_EQ(value, tracker.usage(key, t + 1_h));
        total += value;
    }
    EXPECT_NEAR(total, summed_usage(tracker, {"alpha", "mid", "zeta"},
                                    t + 1_h),
                1e-12);
    EXPECT_EQ(tracker.key_count(), 3u);
}

TEST(QuotaManager, UnlimitedByDefault)
{
    QuotaManager quota;
    EXPECT_FALSE(quota.would_exceed("g", 1000, 1000));
    EXPECT_EQ(quota.quota_of("g"), -1);
}

TEST(QuotaManager, GroupCapEnforced)
{
    QuotaManager quota;
    quota.set_group_quota("g", 16);
    EXPECT_FALSE(quota.would_exceed("g", 8, 8));
    EXPECT_TRUE(quota.would_exceed("g", 8, 9));
    EXPECT_FALSE(quota.would_exceed("other", 100, 100));
}

TEST(QuotaManager, DefaultCapAppliesToUnknownGroups)
{
    QuotaManager quota;
    quota.set_default_quota(8);
    quota.set_group_quota("vip", 64);
    EXPECT_TRUE(quota.would_exceed("g", 4, 5));
    EXPECT_FALSE(quota.would_exceed("vip", 4, 32));
}

} // namespace
} // namespace tacc::sched
