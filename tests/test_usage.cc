/**
 * @file
 * Unit tests for fair-share usage decay and quota enforcement.
 */
#include <gtest/gtest.h>

#include "sched/usage.h"

namespace tacc::sched {
namespace {

using namespace time_literals;

TEST(UsageTracker, UnknownKeyIsZero)
{
    UsageTracker tracker(1_h);
    EXPECT_DOUBLE_EQ(tracker.usage("g", TimePoint::origin()), 0.0);
    EXPECT_DOUBLE_EQ(tracker.total_usage(TimePoint::origin()), 0.0);
    EXPECT_DOUBLE_EQ(tracker.usage_share("g", TimePoint::origin()), 0.0);
}

TEST(UsageTracker, ChargeAccumulates)
{
    UsageTracker tracker(1_h);
    tracker.charge("g", 100.0, TimePoint::origin());
    tracker.charge("g", 50.0, TimePoint::origin());
    EXPECT_DOUBLE_EQ(tracker.usage("g", TimePoint::origin()), 150.0);
}

TEST(UsageTracker, HalfLifeDecay)
{
    UsageTracker tracker(1_h);
    tracker.charge("g", 100.0, TimePoint::origin());
    EXPECT_NEAR(tracker.usage("g", TimePoint::origin() + 1_h), 50.0,
                1e-9);
    EXPECT_NEAR(tracker.usage("g", TimePoint::origin() + 2_h), 25.0,
                1e-9);
}

TEST(UsageTracker, DecayAppliedOnCharge)
{
    UsageTracker tracker(1_h);
    tracker.charge("g", 100.0, TimePoint::origin());
    tracker.charge("g", 10.0, TimePoint::origin() + 1_h);
    EXPECT_NEAR(tracker.usage("g", TimePoint::origin() + 1_h), 60.0,
                1e-9);
}

TEST(UsageTracker, ShareAcrossKeys)
{
    UsageTracker tracker(24_h);
    tracker.charge("a", 300.0, TimePoint::origin());
    tracker.charge("b", 100.0, TimePoint::origin());
    EXPECT_NEAR(tracker.usage_share("a", TimePoint::origin()), 0.75,
                1e-12);
    EXPECT_NEAR(tracker.usage_share("b", TimePoint::origin()), 0.25,
                1e-12);
}

TEST(UsageTracker, OldUsageFadesFromShares)
{
    UsageTracker tracker(1_h);
    tracker.charge("old", 1000.0, TimePoint::origin());
    tracker.charge("new", 100.0, TimePoint::origin() + 10_h);
    // After 10 half-lives "old" is ~1; "new" dominates.
    EXPECT_GT(tracker.usage_share("new", TimePoint::origin() + 10_h),
              0.98);
}

TEST(QuotaManager, UnlimitedByDefault)
{
    QuotaManager quota;
    EXPECT_FALSE(quota.would_exceed("g", 1000, 1000));
    EXPECT_EQ(quota.quota_of("g"), -1);
}

TEST(QuotaManager, GroupCapEnforced)
{
    QuotaManager quota;
    quota.set_group_quota("g", 16);
    EXPECT_FALSE(quota.would_exceed("g", 8, 8));
    EXPECT_TRUE(quota.would_exceed("g", 8, 9));
    EXPECT_FALSE(quota.would_exceed("other", 100, 100));
}

TEST(QuotaManager, DefaultCapAppliesToUnknownGroups)
{
    QuotaManager quota;
    quota.set_default_quota(8);
    quota.set_group_quota("vip", 64);
    EXPECT_TRUE(quota.would_exceed("g", 4, 5));
    EXPECT_FALSE(quota.would_exceed("vip", 4, 32));
}

} // namespace
} // namespace tacc::sched
