/**
 * @file
 * Property and stress suites for the work-stealing execution backbone:
 *
 *  - WorkDeque.*     — the Chase–Lev deque in isolation (LIFO pop /
 *                      FIFO steal, growth, owner-vs-thief conservation);
 *  - PoolProperty.*  — the relaxed ThreadPool contract: drain-on-
 *                      destruct, exceptions through futures from stolen
 *                      tasks, bulk exactly-once, ordering guarantees,
 *                      affinity-aware sizing;
 *  - PoolStress.*    — races the TSan `pool-stress` CI job exists for:
 *                      steal storms, shutdown-vs-steal churn, and an
 *                      oversubscribed microtask flood.
 *
 * Everything here also runs under ThreadSanitizer, which is where the
 * deque's memory orders are actually proven.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

#include "common/thread_pool.h"
#include "common/work_deque.h"

namespace tacc {
namespace {

TEST(WorkDeque, OwnerPopsLifoThievesStealFifo)
{
    WorkStealingDeque<int> deque(8);
    std::vector<int> items(6);
    std::iota(items.begin(), items.end(), 0);
    for (int &item : items)
        deque.push(&item);

    // Thief side sees the oldest first...
    EXPECT_EQ(deque.steal(), &items[0]);
    EXPECT_EQ(deque.steal(), &items[1]);
    // ...the owner the newest.
    EXPECT_EQ(deque.pop(), &items[5]);
    EXPECT_EQ(deque.pop(), &items[4]);
    EXPECT_EQ(deque.steal(), &items[2]);
    EXPECT_EQ(deque.pop(), &items[3]);
    EXPECT_EQ(deque.pop(), nullptr);
    EXPECT_EQ(deque.steal(), nullptr);
    EXPECT_TRUE(deque.empty_approx());
}

TEST(WorkDeque, GrowthPreservesEveryElement)
{
    constexpr int kItems = 1000;
    WorkStealingDeque<int> deque(8); // forces several growths
    std::vector<int> items(kItems);
    for (int i = 0; i < kItems; ++i) {
        items[size_t(i)] = i;
        deque.push(&items[size_t(i)]);
    }
    EXPECT_GE(deque.growth_count(), 1u);
    EXPECT_EQ(deque.size_approx(), size_t(kItems));

    std::set<int *> seen;
    for (int i = 0; i < kItems; ++i) {
        // Alternate ends so the live range crosses old ring boundaries.
        int *item = (i % 2 == 0) ? deque.pop() : deque.steal();
        ASSERT_NE(item, nullptr);
        EXPECT_TRUE(seen.insert(item).second) << "duplicate element";
    }
    EXPECT_EQ(seen.size(), size_t(kItems));
    EXPECT_EQ(deque.pop(), nullptr);
}

TEST(WorkDeque, InterleavedPushPopAcrossWrapAround)
{
    WorkStealingDeque<int> deque(8);
    int value = 7;
    // Far more operations than capacity: indices wrap many times.
    for (int round = 0; round < 1000; ++round) {
        deque.push(&value);
        deque.push(&value);
        EXPECT_EQ(deque.pop(), &value);
        EXPECT_EQ(deque.steal(), &value);
    }
    EXPECT_TRUE(deque.empty_approx());
}

TEST(WorkDeque, ConcurrentOwnerAndThievesConsumeExactlyOnce)
{
    constexpr int kItems = 50'000;
    constexpr int kThieves = 3;
    WorkStealingDeque<int> deque(16); // grows under contention
    std::vector<std::atomic<int>> claimed(kItems);
    std::vector<int> items(kItems);
    for (int i = 0; i < kItems; ++i)
        items[size_t(i)] = i;

    std::atomic<bool> owner_done{false};
    std::atomic<int> consumed{0};
    auto claim = [&](int *item) {
        ASSERT_EQ(claimed[size_t(*item)].fetch_add(1), 0)
            << "element consumed twice";
        consumed.fetch_add(1);
    };

    std::vector<std::thread> thieves;
    thieves.reserve(kThieves);
    for (int t = 0; t < kThieves; ++t) {
        thieves.emplace_back([&] {
            while (!owner_done.load() || !deque.empty_approx()) {
                if (int *item = deque.steal())
                    claim(item);
            }
        });
    }

    // Owner: push everything, popping intermittently to exercise the
    // bottom-end race on nearly-empty deques.
    for (int i = 0; i < kItems; ++i) {
        deque.push(&items[size_t(i)]);
        if (i % 3 == 0) {
            if (int *item = deque.pop())
                claim(item);
        }
    }
    while (int *item = deque.pop())
        claim(item);
    owner_done.store(true);
    for (auto &thief : thieves)
        thief.join();
    // Stragglers a thief claimed between our last pop and its exit.
    while (int *item = deque.steal())
        claim(item);

    EXPECT_EQ(consumed.load(), kItems);
    for (int i = 0; i < kItems; ++i)
        EXPECT_EQ(claimed[size_t(i)].load(), 1);
}

TEST(PoolProperty, NoTaskLostAcrossDestruction)
{
    // Destroy the pool while most tasks are still queued, repeatedly:
    // the drain-on-destruct guarantee must hold through every shutdown
    // interleaving (including shutdown-vs-steal).
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> ran{0};
        {
            ThreadPool pool(4);
            for (int i = 0; i < 256; ++i)
                pool.submit([&ran] { ran.fetch_add(1); });
        }
        EXPECT_EQ(ran.load(), 256) << "round " << round;
    }
}

TEST(PoolProperty, NestedSpawnsSurviveDestruction)
{
    // Tasks that spawn children during the drain: children land in the
    // spawning worker's own deque and must still run before join.
    std::atomic<int> ran{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 32; ++i) {
            pool.submit([&pool, &ran] {
                for (int c = 0; c < 8; ++c)
                    pool.submit([&ran] { ran.fetch_add(1); });
                ran.fetch_add(1);
            });
        }
    }
    EXPECT_EQ(ran.load(), 32 * 9);
}

TEST(PoolProperty, StolenTasksRethrowThroughTheirFutures)
{
    // The parent blocks one worker on its children's futures, so the
    // children — sitting in the parent's own deque — can only run by
    // being stolen. Their exceptions must still arrive through the
    // futures, on whichever thread gets them.
    ThreadPool pool(4);
    auto parent = pool.submit([&pool] {
        std::vector<std::future<int>> children;
        children.reserve(24);
        for (int i = 0; i < 24; ++i) {
            children.push_back(pool.submit([i]() -> int {
                if (i % 3 == 0)
                    throw std::runtime_error("stolen child failed");
                return i;
            }));
        }
        int threw = 0, sum = 0;
        for (auto &child : children) {
            try {
                sum += child.get();
            } catch (const std::runtime_error &) {
                ++threw;
            }
        }
        return threw * 1000 + sum;
    });
    // 8 of 24 throw; the rest sum to (1+2+4+5+...+23) = 276 - 84 = 192.
    EXPECT_EQ(parent.get(), 8 * 1000 + 192);

    // Every worker survived the exceptions.
    std::atomic<int> alive{0};
    pool.submit_bulk(8, [&](size_t) { alive.fetch_add(1); }).wait();
    EXPECT_EQ(alive.load(), 8);
}

TEST(PoolProperty, WorkConservationUnderMicrotaskFlood)
{
    constexpr int kTasks = 10'000;
    std::atomic<int64_t> sum{0};
    ThreadPool pool(8);
    {
        std::vector<std::future<void>> done;
        done.reserve(kTasks);
        for (int i = 1; i <= kTasks; ++i)
            done.push_back(pool.submit([&sum, i] { sum += i; }));
        for (auto &f : done)
            f.get();
    }
    EXPECT_EQ(sum.load(), int64_t(kTasks) * (kTasks + 1) / 2);
    const auto stats = pool.stats();
    EXPECT_GE(stats.executed, uint64_t(kTasks));
    EXPECT_GE(stats.injected, uint64_t(kTasks));
}

TEST(PoolProperty, BulkRunsEveryIndexExactlyOnce)
{
    constexpr size_t kIndices = 10'000;
    std::vector<std::atomic<int>> counts(kIndices);
    ThreadPool pool(6);
    pool.submit_bulk(kIndices, [&](size_t i) {
        counts[i].fetch_add(1);
    }).wait();
    for (size_t i = 0; i < kIndices; ++i)
        ASSERT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(PoolProperty, BulkRethrowsFirstExceptionAfterAllIndicesRan)
{
    constexpr size_t kIndices = 500;
    std::atomic<int> ran{0};
    ThreadPool pool(4);
    auto group = pool.submit_bulk(kIndices, [&](size_t i) {
        ran.fetch_add(1);
        if (i % 100 == 37)
            throw std::invalid_argument("index " + std::to_string(i));
    });
    EXPECT_THROW(group.wait(), std::invalid_argument);
    // Work conservation: a throwing index never cancels the others.
    EXPECT_EQ(ran.load(), int(kIndices));
}

TEST(PoolProperty, BulkEdgeSizes)
{
    ThreadPool pool(4);
    // Empty group: wait returns immediately.
    pool.submit_bulk(0, [](size_t) { FAIL(); }).wait();
    // Single index; fewer indices than workers.
    std::atomic<int> ran{0};
    pool.submit_bulk(1, [&](size_t i) {
        EXPECT_EQ(i, 0u);
        ran.fetch_add(1);
    }).wait();
    pool.submit_bulk(2, [&](size_t) { ran.fetch_add(1); }).wait();
    EXPECT_EQ(ran.load(), 3);
    // Destructor-waits path: group dropped without wait() still runs.
    std::atomic<int> dropped{0};
    { pool.submit_bulk(64, [&](size_t) { dropped.fetch_add(1); }); }
    EXPECT_EQ(dropped.load(), 64);
}

TEST(PoolProperty, SingleWorkerKeepsExternalFifoOrder)
{
    // The relaxed ordering contract's surviving half: with one worker
    // there are no thieves, and the injection batch transfer replays
    // submission order, so an external submitter still sees FIFO.
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> done;
    for (int i = 0; i < 64; ++i)
        done.push_back(pool.submit([&order, i] { order.push_back(i); }));
    for (auto &f : done)
        f.get();
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[size_t(i)], i);
}

TEST(PoolProperty, SingleWorkerRunsNestedSubmissionsLifo)
{
    // The other half of the relaxed contract: worker-local submissions
    // go to the worker's own deque and pop LIFO, ahead of injected
    // work — newest-first is the documented (and asserted) behavior.
    ThreadPool pool(1);
    std::vector<int> order;
    pool.submit([&pool, &order] {
          for (int i = 0; i < 4; ++i)
              pool.submit([&order, i] { order.push_back(i); });
      }).get();
    pool.submit([] {}).get(); // fence: children ran before injected work
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
}

TEST(PoolProperty, HardwareThreadsRespectsAffinityMask)
{
    const int reported = ThreadPool::hardware_threads();
    EXPECT_GE(reported, 1);
#if defined(__linux__)
    cpu_set_t allowed;
    CPU_ZERO(&allowed);
    ASSERT_EQ(sched_getaffinity(0, sizeof(allowed), &allowed), 0);
    const int usable = CPU_COUNT(&allowed);
    ASSERT_GT(usable, 0);
    // The whole point of the fix: never report more parallelism than
    // the scheduler will actually grant this process.
    EXPECT_LE(reported, usable);
#endif
    const int advertised = int(std::thread::hardware_concurrency());
    if (advertised > 0) {
        EXPECT_LE(reported, advertised);
    }
}

TEST(PoolStress, ShutdownVsStealChurn)
{
    // Rapid create/flood/destroy cycles with nested spawns: the
    // shutdown protocol races live steals every round.
    for (int round = 0; round < 30; ++round) {
        std::atomic<int> ran{0};
        {
            ThreadPool pool(4);
            for (int i = 0; i < 64; ++i) {
                pool.submit([&pool, &ran] {
                    pool.submit([&ran] { ran.fetch_add(1); });
                    ran.fetch_add(1);
                });
            }
        }
        EXPECT_EQ(ran.load(), 128) << "round " << round;
    }
}

TEST(PoolStress, OversubscribedBulkFlood)
{
    // More workers than any CI container has cores: the digests gate
    // runs --jobs 32 on purpose, so the pool must stay correct (and
    // make progress) when heavily oversubscribed.
    constexpr size_t kIndices = 20'000;
    std::vector<std::atomic<int>> counts(kIndices);
    ThreadPool pool(32);
    EXPECT_EQ(pool.size(), 32);
    pool.submit_bulk(kIndices, [&](size_t i) {
        counts[i].fetch_add(1);
    }).wait();
    int64_t total = 0;
    for (size_t i = 0; i < kIndices; ++i)
        total += counts[i].load();
    EXPECT_EQ(total, int64_t(kIndices));
}

TEST(PoolStress, ConcurrentExternalSubmittersAndBulkGroups)
{
    // Several external threads mixing submit() and submit_bulk()
    // against one pool: injection, batch transfer, and steals all
    // interleave.
    ThreadPool pool(4);
    std::atomic<int64_t> total{0};
    constexpr int kSubmitters = 4;
    constexpr int kPerSubmitter = 500;
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&pool, &total] {
            std::vector<std::future<void>> done;
            done.reserve(kPerSubmitter);
            for (int i = 0; i < kPerSubmitter; ++i)
                done.push_back(
                    pool.submit([&total] { total.fetch_add(1); }));
            pool.submit_bulk(kPerSubmitter, [&total](size_t) {
                    total.fetch_add(1);
                })
                .wait();
            for (auto &f : done)
                f.get();
        });
    }
    for (auto &submitter : submitters)
        submitter.join();
    EXPECT_EQ(total.load(), int64_t(kSubmitters) * kPerSubmitter * 2);
}

} // namespace
} // namespace tacc
