/**
 * @file
 * Unit tests for the backfill capacity timeline.
 */
#include <gtest/gtest.h>

#include "sched/capacity_profile.h"

namespace tacc::sched {
namespace {

using namespace time_literals;

const TimePoint t0 = TimePoint::origin() + 100_s;

TEST(CapacityProfile, ConstantWhenEmpty)
{
    CapacityProfile p(t0, 10);
    EXPECT_EQ(p.capacity_at(t0), 10);
    EXPECT_EQ(p.capacity_at(t0 + 1000_h), 10);
    EXPECT_EQ(p.earliest_fit(10, 5_h), t0);
    EXPECT_EQ(p.earliest_fit(11, 1_s), TimePoint::max());
}

TEST(CapacityProfile, ReleasesAddCapacity)
{
    CapacityProfile p(t0, 4);
    p.add_release(t0 + 60_s, 4);
    EXPECT_EQ(p.capacity_at(t0), 4);
    EXPECT_EQ(p.capacity_at(t0 + 59_s), 4);
    EXPECT_EQ(p.capacity_at(t0 + 60_s), 8);
    EXPECT_EQ(p.earliest_fit(8, 10_s), t0 + 60_s);
    EXPECT_EQ(p.earliest_fit(4, 10_s), t0);
}

TEST(CapacityProfile, ReserveDebitsWindow)
{
    CapacityProfile p(t0, 10);
    p.reserve(t0 + 10_s, 20_s, 6);
    EXPECT_EQ(p.capacity_at(t0), 10);
    EXPECT_EQ(p.capacity_at(t0 + 10_s), 4);
    EXPECT_EQ(p.capacity_at(t0 + 29_s), 4);
    EXPECT_EQ(p.capacity_at(t0 + 30_s), 10);
    // A 5-GPU job that needs 15 s cannot fit inside the reservation
    // window; it fits right after it ends.
    EXPECT_EQ(p.earliest_fit(5, 15_s), t0 + 30_s);
    // A 4-GPU job fits immediately.
    EXPECT_EQ(p.earliest_fit(4, 15_s), t0);
}

TEST(CapacityProfile, EarliestFitNeedsWholeWindow)
{
    CapacityProfile p(t0, 8);
    p.add_release(t0 + 100_s, 8);
    p.reserve(t0 + 50_s, 100_s, 8); // occupies [50, 150)
    // 8 GPUs free on [0, 50) but a 60 s job does not fit there; from
    // 100 s the release leaves 8 free throughout.
    EXPECT_EQ(p.earliest_fit(8, 60_s), t0 + 100_s);
    EXPECT_EQ(p.earliest_fit(8, 50_s), t0);
}

TEST(CapacityProfile, BackToBackReservations)
{
    CapacityProfile p(t0, 4);
    p.reserve(t0, 10_s, 4);
    EXPECT_EQ(p.earliest_fit(4, 10_s), t0 + 10_s);
    p.reserve(t0 + 10_s, 10_s, 4);
    EXPECT_EQ(p.earliest_fit(4, 10_s), t0 + 20_s);
    EXPECT_EQ(p.earliest_fit(1, 1_s), t0 + 20_s);
}

TEST(CapacityProfile, HugeDurationsClampToHorizon)
{
    CapacityProfile p(t0, 4);
    // A "runs forever" reservation must not overflow.
    p.reserve(t0, Duration::days(100000), 4);
    EXPECT_EQ(p.capacity_at(t0 + Duration::days(300)), 0);
    EXPECT_EQ(p.earliest_fit(1, 1_s), TimePoint::max());
}

TEST(CapacityProfile, ZeroGpuOpsAreNoOps)
{
    CapacityProfile p(t0, 4);
    p.add_release(t0 + 10_s, 0);
    p.reserve(t0, 10_s, 0);
    EXPECT_EQ(p.capacity_at(t0), 4);
    EXPECT_EQ(p.earliest_fit(0, 1_h), t0);
}

TEST(CapacityProfile, StackedReleases)
{
    CapacityProfile p(t0, 0);
    p.add_release(t0 + 10_s, 2);
    p.add_release(t0 + 20_s, 3);
    p.add_release(t0 + 20_s, 1); // same instant accumulates
    EXPECT_EQ(p.capacity_at(t0 + 15_s), 2);
    EXPECT_EQ(p.capacity_at(t0 + 20_s), 6);
    EXPECT_EQ(p.earliest_fit(6, 1_s), t0 + 20_s);
}

} // namespace
} // namespace tacc::sched
