/**
 * @file
 * Unit tests for the job lifecycle state machine and progress accounting.
 */
#include <gtest/gtest.h>

#include "workload/job.h"
#include "workload/model.h"

namespace tacc::workload {
namespace {

using namespace time_literals;

TaskSpec
spec(int64_t iterations = 100, int gpus = 4)
{
    TaskSpec s;
    s.name = "j";
    s.user = "u";
    s.group = "g";
    s.gpus = gpus;
    s.model = "resnet50";
    s.iterations = iterations;
    return s;
}

Job
make_job(int64_t iterations = 100, TimePoint submit = TimePoint::origin())
{
    const auto profile = ModelCatalog::instance().find("resnet50");
    return Job(1, spec(iterations), profile.value(), submit);
}

TEST(Job, HappyPathLifecycle)
{
    Job job = make_job(100);
    EXPECT_EQ(job.state(), JobState::kSubmitted);
    ASSERT_TRUE(job.begin_provisioning(TimePoint::origin() + 1_s).is_ok());
    EXPECT_EQ(job.state(), JobState::kProvisioning);
    ASSERT_TRUE(job.finish_provisioning(TimePoint::origin() + 5_s).is_ok());
    EXPECT_EQ(job.state(), JobState::kPending);
    EXPECT_EQ(job.provision_latency(), 4_s);

    // 100 iterations at 1 s each.
    ASSERT_TRUE(
        job.begin_segment(TimePoint::origin() + 10_s, 4, 1.0).is_ok());
    EXPECT_EQ(job.state(), JobState::kRunning);
    EXPECT_EQ(job.running_gpus(), 4);
    EXPECT_TRUE(job.has_started());
    EXPECT_EQ(job.queueing_delay(), 10_s);

    ASSERT_TRUE(job.complete(TimePoint::origin() + 110_s).is_ok());
    EXPECT_EQ(job.state(), JobState::kCompleted);
    EXPECT_EQ(job.iterations_done(), 100);
    EXPECT_DOUBLE_EQ(job.progress(), 1.0);
    EXPECT_EQ(job.jct(), 110_s);
    EXPECT_DOUBLE_EQ(job.gpu_seconds(), 400.0);
}

TEST(Job, InvalidTransitionsRejected)
{
    Job job = make_job();
    EXPECT_FALSE(job.finish_provisioning(TimePoint::origin()).is_ok());
    EXPECT_FALSE(job.begin_segment(TimePoint::origin(), 1, 1.0).is_ok());
    EXPECT_FALSE(job.end_segment(TimePoint::origin()).is_ok());
    EXPECT_FALSE(job.complete(TimePoint::origin()).is_ok());
    ASSERT_TRUE(job.begin_provisioning(TimePoint::origin()).is_ok());
    EXPECT_FALSE(job.begin_provisioning(TimePoint::origin()).is_ok());
}

TEST(Job, BadSegmentParametersRejected)
{
    Job job = make_job();
    ASSERT_TRUE(job.begin_provisioning(TimePoint::origin()).is_ok());
    ASSERT_TRUE(job.finish_provisioning(TimePoint::origin()).is_ok());
    EXPECT_FALSE(job.begin_segment(TimePoint::origin(), 0, 1.0).is_ok());
    EXPECT_FALSE(job.begin_segment(TimePoint::origin(), 4, 0.0).is_ok());
    EXPECT_FALSE(job.begin_segment(TimePoint::origin(), 4, -1.0).is_ok());
    EXPECT_EQ(job.state(), JobState::kPending);
}

TEST(Job, PreemptionCreditsPartialProgress)
{
    Job job = make_job(100);
    ASSERT_TRUE(job.begin_provisioning(TimePoint::origin()).is_ok());
    ASSERT_TRUE(job.finish_provisioning(TimePoint::origin()).is_ok());
    ASSERT_TRUE(job.begin_segment(TimePoint::origin(), 4, 1.0).is_ok());
    ASSERT_TRUE(job.preempt(TimePoint::origin() + 30_s).is_ok());

    EXPECT_EQ(job.state(), JobState::kPending);
    EXPECT_EQ(job.iterations_done(), 30);
    EXPECT_EQ(job.iterations_remaining(), 70);
    EXPECT_EQ(job.preemption_count(), 1);
    EXPECT_DOUBLE_EQ(job.gpu_seconds(), 120.0);

    // Restart with a different allocation and finish.
    ASSERT_TRUE(
        job.begin_segment(TimePoint::origin() + 50_s, 2, 2.0).is_ok());
    ASSERT_TRUE(job.complete(TimePoint::origin() + 190_s).is_ok());
    EXPECT_EQ(job.iterations_done(), 100);
    EXPECT_EQ(job.segment_count(), 2);
}

TEST(Job, StartupDelaysIterationCredit)
{
    Job job = make_job(100);
    ASSERT_TRUE(job.begin_provisioning(TimePoint::origin()).is_ok());
    ASSERT_TRUE(job.finish_provisioning(TimePoint::origin()).is_ok());
    // 10 s startup: GPUs held but no progress.
    ASSERT_TRUE(
        job.begin_segment(TimePoint::origin(), 4, 1.0, 10_s).is_ok());
    ASSERT_TRUE(job.preempt(TimePoint::origin() + 15_s).is_ok());
    EXPECT_EQ(job.iterations_done(), 5); // only 5 s of compute
    EXPECT_DOUBLE_EQ(job.gpu_seconds(), 60.0); // but 15 s of holding

    // Preempted during startup: no progress at all.
    ASSERT_TRUE(
        job.begin_segment(TimePoint::origin() + 20_s, 4, 1.0, 10_s)
            .is_ok());
    ASSERT_TRUE(job.preempt(TimePoint::origin() + 25_s).is_ok());
    EXPECT_EQ(job.iterations_done(), 5);
}

TEST(Job, CompleteRequiresAllIterations)
{
    Job job = make_job(100);
    ASSERT_TRUE(job.begin_provisioning(TimePoint::origin()).is_ok());
    ASSERT_TRUE(job.finish_provisioning(TimePoint::origin()).is_ok());
    ASSERT_TRUE(job.begin_segment(TimePoint::origin(), 4, 1.0).is_ok());
    EXPECT_FALSE(job.complete(TimePoint::origin() + 50_s).is_ok());
}

TEST(Job, CreditCappedAtRemaining)
{
    Job job = make_job(10);
    ASSERT_TRUE(job.begin_provisioning(TimePoint::origin()).is_ok());
    ASSERT_TRUE(job.finish_provisioning(TimePoint::origin()).is_ok());
    ASSERT_TRUE(job.begin_segment(TimePoint::origin(), 1, 1.0).is_ok());
    // Ran far longer than needed (e.g. completion event delayed).
    ASSERT_TRUE(job.complete(TimePoint::origin() + 100_s).is_ok());
    EXPECT_EQ(job.iterations_done(), 10);
}

TEST(Job, FailTerminatesFromRunning)
{
    Job job = make_job();
    ASSERT_TRUE(job.begin_provisioning(TimePoint::origin()).is_ok());
    ASSERT_TRUE(job.finish_provisioning(TimePoint::origin()).is_ok());
    ASSERT_TRUE(job.begin_segment(TimePoint::origin(), 4, 1.0).is_ok());
    ASSERT_TRUE(job.fail(TimePoint::origin() + 7_s, "boom").is_ok());
    EXPECT_EQ(job.state(), JobState::kFailed);
    EXPECT_EQ(job.failure_reason(), "boom");
    EXPECT_EQ(job.iterations_done(), 7);
    EXPECT_FALSE(job.fail(TimePoint::origin() + 8_s, "again").is_ok());
}

TEST(Job, KillFromAnyNonTerminalState)
{
    Job a = make_job();
    ASSERT_TRUE(a.kill(TimePoint::origin()).is_ok()); // from submitted
    EXPECT_EQ(a.state(), JobState::kKilled);
    EXPECT_FALSE(a.kill(TimePoint::origin()).is_ok());

    Job b = make_job();
    ASSERT_TRUE(b.begin_provisioning(TimePoint::origin()).is_ok());
    ASSERT_TRUE(b.finish_provisioning(TimePoint::origin()).is_ok());
    ASSERT_TRUE(b.begin_segment(TimePoint::origin(), 4, 1.0).is_ok());
    ASSERT_TRUE(b.kill(TimePoint::origin() + 3_s).is_ok());
    EXPECT_EQ(b.state(), JobState::kKilled);
    EXPECT_EQ(b.iterations_done(), 3); // work until the kill is kept
}

TEST(Job, AttainedServiceIncludesInFlightSegment)
{
    Job job = make_job(1000);
    ASSERT_TRUE(job.begin_provisioning(TimePoint::origin()).is_ok());
    ASSERT_TRUE(job.finish_provisioning(TimePoint::origin()).is_ok());
    EXPECT_DOUBLE_EQ(job.attained_gpu_seconds(TimePoint::origin() + 50_s),
                     0.0);
    ASSERT_TRUE(job.begin_segment(TimePoint::origin(), 4, 1.0).is_ok());
    EXPECT_DOUBLE_EQ(job.attained_gpu_seconds(TimePoint::origin() + 50_s),
                     200.0);
    ASSERT_TRUE(job.preempt(TimePoint::origin() + 50_s).is_ok());
    EXPECT_DOUBLE_EQ(job.attained_gpu_seconds(TimePoint::origin() + 99_s),
                     200.0);
}

TEST(Job, RemainingRuntimeRoundsUp)
{
    Job job = make_job(3);
    const Duration d = job.remaining_runtime(0.3333333);
    EXPECT_GE(d.to_seconds(), 3 * 0.3333333);
    EXPECT_LT(d.to_seconds(), 3 * 0.3333333 + 1e-3);
}

TEST(Job, CrashCreditRollsBackToCheckpoint)
{
    Job job = make_job(1000);
    ASSERT_TRUE(job.begin_provisioning(TimePoint::origin()).is_ok());
    ASSERT_TRUE(job.finish_provisioning(TimePoint::origin()).is_ok());
    ASSERT_TRUE(job.begin_segment(TimePoint::origin(), 1, 1.0).is_ok());
    // Crash at 95 s with 30 s checkpoints: roll back to 90 iterations.
    ASSERT_TRUE(
        job.end_segment(TimePoint::origin() + 95_s, 30.0).is_ok());
    EXPECT_EQ(job.iterations_done(), 90);
    // GPU time is still charged for the full 95 s.
    EXPECT_DOUBLE_EQ(job.gpu_seconds(), 95.0);
}

TEST(Job, CrashWithoutCheckpointsLosesSegment)
{
    Job job = make_job(1000);
    ASSERT_TRUE(job.begin_provisioning(TimePoint::origin()).is_ok());
    ASSERT_TRUE(job.finish_provisioning(TimePoint::origin()).is_ok());
    ASSERT_TRUE(job.begin_segment(TimePoint::origin(), 1, 1.0).is_ok());
    ASSERT_TRUE(
        job.end_segment(TimePoint::origin() + 95_s, 0.0).is_ok());
    EXPECT_EQ(job.iterations_done(), 0);
    // A graceful preemption afterwards still credits fully.
    ASSERT_TRUE(
        job.begin_segment(TimePoint::origin() + 100_s, 1, 1.0).is_ok());
    ASSERT_TRUE(job.preempt(TimePoint::origin() + 150_s).is_ok());
    EXPECT_EQ(job.iterations_done(), 50);
}

TEST(JobStateNames, TerminalClassification)
{
    EXPECT_TRUE(job_state_terminal(JobState::kCompleted));
    EXPECT_TRUE(job_state_terminal(JobState::kFailed));
    EXPECT_TRUE(job_state_terminal(JobState::kKilled));
    EXPECT_FALSE(job_state_terminal(JobState::kRunning));
    EXPECT_FALSE(job_state_terminal(JobState::kPending));
    EXPECT_STREQ(job_state_name(JobState::kProvisioning), "provisioning");
}

} // namespace
} // namespace tacc::workload
