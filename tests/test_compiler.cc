/**
 * @file
 * Unit tests for the Compiler Layer: chunking determinism, delta caching,
 * LRU eviction, runtime resolution, and provisioning pricing.
 */
#include <gtest/gtest.h>

#include <set>

#include "compiler/compiler.h"

namespace tacc::compiler {
namespace {

constexpr uint64_t kMiB = 1024 * 1024;

workload::Artifact
artifact(const std::string &name, uint64_t bytes, uint64_t version = 1)
{
    return workload::Artifact{name, bytes, version};
}

workload::TaskSpec
spec_with(std::vector<workload::Artifact> artifacts)
{
    workload::TaskSpec s;
    s.name = "t";
    s.user = "u";
    s.group = "g";
    s.gpus = 1;
    s.model = "resnet50";
    s.iterations = 10;
    s.artifacts = std::move(artifacts);
    return s;
}

TEST(Chunking, CoversExactByteCount)
{
    const auto chunks =
        chunk_artifact(artifact("a", 10 * kMiB + 123), 4 * kMiB, 0.1);
    ASSERT_EQ(chunks.size(), 3u);
    uint64_t total = 0;
    for (const auto &c : chunks)
        total += c.bytes;
    EXPECT_EQ(total, 10 * kMiB + 123);
    EXPECT_EQ(chunks.back().bytes, 2 * kMiB + 123);
}

TEST(Chunking, DeterministicAndVersionStable)
{
    const auto a = chunk_artifact(artifact("x", 40 * kMiB, 3), 4 * kMiB,
                                  0.1);
    const auto b = chunk_artifact(artifact("x", 40 * kMiB, 3), 4 * kMiB,
                                  0.1);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].id, b[i].id);
}

TEST(Chunking, DifferentArtifactsShareNothing)
{
    const auto a = chunk_artifact(artifact("x", 40 * kMiB), 4 * kMiB, 0.1);
    const auto b = chunk_artifact(artifact("y", 40 * kMiB), 4 * kMiB, 0.1);
    std::set<ChunkId> ids;
    for (const auto &c : a)
        ids.insert(c.id);
    for (const auto &c : b)
        EXPECT_FALSE(ids.contains(c.id));
}

TEST(Chunking, VersionBumpRewritesAboutDeltaFraction)
{
    const double delta = 0.1;
    const auto v1 =
        chunk_artifact(artifact("x", 400 * kMiB, 1), kMiB, delta);
    const auto v2 =
        chunk_artifact(artifact("x", 400 * kMiB, 2), kMiB, delta);
    ASSERT_EQ(v1.size(), v2.size());
    int changed = 0;
    for (size_t i = 0; i < v1.size(); ++i)
        changed += v1[i].id != v2[i].id;
    EXPECT_NEAR(double(changed) / double(v1.size()), delta, 0.05);
}

TEST(Chunking, ChangesAccumulateMonotonically)
{
    const auto v1 = chunk_artifact(artifact("x", 100 * kMiB, 1), kMiB, 0.1);
    const auto v5 = chunk_artifact(artifact("x", 100 * kMiB, 5), kMiB, 0.1);
    const auto v6 = chunk_artifact(artifact("x", 100 * kMiB, 6), kMiB, 0.1);
    int d15 = 0, d56 = 0;
    for (size_t i = 0; i < v1.size(); ++i) {
        d15 += v1[i].id != v5[i].id;
        d56 += v5[i].id != v6[i].id;
    }
    EXPECT_GT(d15, d56); // four bumps change more than one
}

TEST(ChunkStore, HitMissAccounting)
{
    ChunkStore store;
    EXPECT_FALSE(store.lookup(1));
    store.insert(1, 100);
    EXPECT_TRUE(store.lookup(1));
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.misses(), 1u);
    EXPECT_EQ(store.resident_bytes(), 100u);
    store.insert(1, 100); // duplicate: no double count
    EXPECT_EQ(store.resident_bytes(), 100u);
}

TEST(ChunkStore, LruEviction)
{
    ChunkStore store(300);
    store.insert(1, 100);
    store.insert(2, 100);
    store.insert(3, 100);
    EXPECT_TRUE(store.lookup(1)); // refresh 1: now 2 is the LRU
    store.insert(4, 100);         // evicts 2
    EXPECT_FALSE(store.lookup(2));
    EXPECT_TRUE(store.lookup(1));
    EXPECT_TRUE(store.lookup(3));
    EXPECT_TRUE(store.lookup(4));
    EXPECT_EQ(store.evictions(), 1u);
    EXPECT_LE(store.resident_bytes(), 300u);
}

TEST(ChunkStore, ClearDropsEverything)
{
    ChunkStore store;
    store.insert(1, 50);
    store.clear();
    EXPECT_EQ(store.resident_bytes(), 0u);
    EXPECT_EQ(store.resident_chunks(), 0u);
    EXPECT_FALSE(store.lookup(1));
}

TEST(Compiler, ColdCompileTransfersEverything)
{
    Compiler compiler;
    const auto out =
        compiler.compile(spec_with({artifact("a", 100 * kMiB)}));
    ASSERT_TRUE(out.is_ok());
    EXPECT_EQ(out.value().total_bytes, 100 * kMiB);
    EXPECT_EQ(out.value().transferred_bytes, 100 * kMiB);
    EXPECT_EQ(out.value().cached_bytes, 0u);
    EXPECT_DOUBLE_EQ(out.value().cache_hit_ratio(), 0.0);
}

TEST(Compiler, WarmResubmissionIsAllHits)
{
    Compiler compiler;
    const auto spec = spec_with({artifact("a", 100 * kMiB)});
    ASSERT_TRUE(compiler.compile(spec).is_ok());
    const auto warm = compiler.compile(spec);
    ASSERT_TRUE(warm.is_ok());
    EXPECT_EQ(warm.value().transferred_bytes, 0u);
    EXPECT_DOUBLE_EQ(warm.value().cache_hit_ratio(), 1.0);
    EXPECT_LT(warm.value().provision_time.to_seconds(),
              compiler.config().container_build.to_seconds() +
                  compiler.config().fixed_overhead.to_seconds() + 1.0);
}

TEST(Compiler, VersionBumpTransfersOnlyDelta)
{
    CompilerConfig config;
    config.delta_fraction = 0.05;
    Compiler compiler(config);
    ASSERT_TRUE(
        compiler.compile(spec_with({artifact("a", 400 * kMiB, 1)}))
            .is_ok());
    const auto v2 =
        compiler.compile(spec_with({artifact("a", 400 * kMiB, 2)}));
    ASSERT_TRUE(v2.is_ok());
    const double frac = double(v2.value().transferred_bytes) /
                        double(v2.value().total_bytes);
    EXPECT_LT(frac, 0.15);
    EXPECT_GT(frac, 0.0);
}

TEST(Compiler, CacheDisabledAlwaysTransfers)
{
    CompilerConfig config;
    config.cache_enabled = false;
    Compiler compiler(config);
    const auto spec = spec_with({artifact("a", 100 * kMiB)});
    ASSERT_TRUE(compiler.compile(spec).is_ok());
    const auto again = compiler.compile(spec);
    ASSERT_TRUE(again.is_ok());
    EXPECT_EQ(again.value().transferred_bytes, 100 * kMiB);
}

TEST(Compiler, RuntimeResolutionBySizeAndPreference)
{
    Compiler compiler;
    // Small task, auto -> bare metal.
    auto small = compiler.compile(spec_with({artifact("a", 10 * kMiB)}));
    ASSERT_TRUE(small.is_ok());
    EXPECT_EQ(small.value().runtime, RuntimeKind::kBareMetal);
    // Large task, auto -> container.
    auto large = compiler.compile(spec_with({artifact("b", 2000 * kMiB)}));
    ASSERT_TRUE(large.is_ok());
    EXPECT_EQ(large.value().runtime, RuntimeKind::kContainer);
    // Explicit preference wins.
    auto spec = spec_with({artifact("c", 10 * kMiB)});
    spec.runtime = workload::RuntimePref::kContainer;
    auto forced = compiler.compile(spec);
    ASSERT_TRUE(forced.is_ok());
    EXPECT_EQ(forced.value().runtime, RuntimeKind::kContainer);
}

TEST(Compiler, ProvisionTimeScalesWithTransfer)
{
    Compiler compiler;
    auto small = compiler.compile(spec_with({artifact("s", 10 * kMiB)}));
    auto large =
        compiler.compile(spec_with({artifact("l", 10'000 * kMiB)}));
    ASSERT_TRUE(small.is_ok() && large.is_ok());
    EXPECT_GT(large.value().provision_time, small.value().provision_time);
}

TEST(Compiler, RejectsInvalidSpecAndUnknownModel)
{
    Compiler compiler;
    workload::TaskSpec bad = spec_with({artifact("a", kMiB)});
    bad.gpus = 0;
    EXPECT_FALSE(compiler.compile(bad).is_ok());
    workload::TaskSpec unknown = spec_with({artifact("a", kMiB)});
    unknown.model = "skynet";
    EXPECT_FALSE(compiler.compile(unknown).is_ok());
}

TEST(Compiler, StatsAccumulate)
{
    Compiler compiler;
    const auto spec = spec_with({artifact("a", 100 * kMiB)});
    ASSERT_TRUE(compiler.compile(spec).is_ok());
    ASSERT_TRUE(compiler.compile(spec).is_ok());
    const auto &stats = compiler.stats();
    EXPECT_EQ(stats.tasks_compiled, 2u);
    EXPECT_EQ(stats.bytes_total, 200 * kMiB);
    EXPECT_EQ(stats.bytes_transferred, 100 * kMiB);
    EXPECT_NEAR(stats.transfer_savings(), 0.5, 1e-12);
    EXPECT_GT(stats.mean_provision_s(), 0.0);
}

TEST(Compiler, ClearCacheRestoresColdBehaviour)
{
    Compiler compiler;
    const auto spec = spec_with({artifact("a", 100 * kMiB)});
    ASSERT_TRUE(compiler.compile(spec).is_ok());
    compiler.clear_cache();
    const auto again = compiler.compile(spec);
    ASSERT_TRUE(again.is_ok());
    EXPECT_EQ(again.value().transferred_bytes, 100 * kMiB);
}

} // namespace
} // namespace tacc::compiler
