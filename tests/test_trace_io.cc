/**
 * @file
 * Tests for trace CSV import/export.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "workload/trace_io.h"

namespace tacc::workload {
namespace {

std::vector<SubmittedTask>
sample_trace(int n = 50)
{
    TraceConfig config;
    config.num_jobs = n;
    config.seed = 77;
    config.frac_deadline = 0.3;
    config.frac_elastic = 0.3;
    return TraceGenerator(config).generate();
}

TEST(TraceIo, RoundTripsSchedulingFields)
{
    const auto original = sample_trace();
    auto parsed = trace_from_csv(trace_to_csv(original));
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().str();
    ASSERT_EQ(parsed.value().size(), original.size());
    for (size_t i = 0; i < original.size(); ++i) {
        const auto &a = original[i];
        const auto &b = parsed.value()[i];
        EXPECT_EQ(a.arrival, b.arrival);
        EXPECT_EQ(a.spec.name, b.spec.name);
        EXPECT_EQ(a.spec.user, b.spec.user);
        EXPECT_EQ(a.spec.group, b.spec.group);
        EXPECT_EQ(a.spec.gpus, b.spec.gpus);
        EXPECT_EQ(a.spec.gpu_model, b.spec.gpu_model);
        EXPECT_EQ(a.spec.qos, b.spec.qos);
        EXPECT_EQ(a.spec.preemptible, b.spec.preemptible);
        EXPECT_EQ(a.spec.model, b.spec.model);
        EXPECT_EQ(a.spec.iterations, b.spec.iterations);
        // Durations round to whole seconds in the wire format.
        EXPECT_NEAR(a.spec.time_limit.to_seconds(),
                    b.spec.time_limit.to_seconds(), 1.0);
        EXPECT_NEAR(a.spec.deadline.to_seconds(),
                    b.spec.deadline.to_seconds(), 1.0);
        EXPECT_EQ(a.spec.min_gpus, b.spec.min_gpus);
        EXPECT_EQ(a.spec.max_gpus, b.spec.max_gpus);
        // Artifacts are reconstructed, not transported.
        EXPECT_FALSE(b.spec.artifacts.empty());
    }
}

TEST(TraceIo, SecondRoundTripIsExact)
{
    const auto original = sample_trace(20);
    auto once = trace_from_csv(trace_to_csv(original));
    ASSERT_TRUE(once.is_ok());
    const std::string csv = trace_to_csv(once.value());
    auto twice = trace_from_csv(csv);
    ASSERT_TRUE(twice.is_ok());
    EXPECT_EQ(trace_to_csv(twice.value()), csv);
}

TEST(TraceIo, RejectsMalformedInput)
{
    EXPECT_FALSE(trace_from_csv("").is_ok());
    EXPECT_FALSE(trace_from_csv("not,a,header\n").is_ok());
    const auto csv = trace_to_csv(sample_trace(3));
    // Truncated row.
    EXPECT_FALSE(trace_from_csv(csv + "1.0,only,three\n").is_ok());
    // Non-numeric gpus.
    auto broken = csv;
    const auto pos = broken.find('\n', broken.find('\n') + 1);
    EXPECT_FALSE(
        trace_from_csv(csv + "9.0,j,u,g,soup,,batch,1,resnet50,10,60,0,0,0\n")
            .is_ok());
    (void)pos;
    // Unsorted arrivals.
    EXPECT_FALSE(
        trace_from_csv(csv + "0.0,j,u,g,1,,batch,1,resnet50,10,60,0,0,0\n")
            .is_ok());
    // Semantically invalid (gpus 0).
    EXPECT_FALSE(trace_from_csv(
                     std::string("arrival_s,name,user,group,gpus,gpu_model,"
                                 "qos,preemptible,model,iterations,"
                                 "time_limit_s,deadline_s,min_gpus,"
                                 "max_gpus\n") +
                     "1.0,j,u,g,0,,batch,1,resnet50,10,60,0,0,0\n")
                     .is_ok());
}

TEST(TraceIo, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/tacc_trace.csv";
    const auto original = sample_trace(10);
    ASSERT_TRUE(write_trace_file(path, original).is_ok());
    auto loaded = read_trace_file(path);
    ASSERT_TRUE(loaded.is_ok()) << loaded.status().str();
    EXPECT_EQ(loaded.value().size(), original.size());
    std::remove(path.c_str());
    EXPECT_FALSE(read_trace_file(path + ".does-not-exist").is_ok());
}

TEST(TraceIo, ImportedTraceRunsOnAStack)
{
    // The reconstructed artifacts must be acceptable to the compiler.
    const auto csv = trace_to_csv(sample_trace(5));
    auto parsed = trace_from_csv(csv);
    ASSERT_TRUE(parsed.is_ok());
    for (const auto &entry : parsed.value())
        EXPECT_TRUE(entry.spec.validate().is_ok());
}

} // namespace
} // namespace tacc::workload
