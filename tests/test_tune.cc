/**
 * @file
 * Auto-tuner unit tests: the ParamSpace registry and its config
 * accessors, objective scalarization and validation, the tune-spec
 * dialect (hard errors with line numbers), workload mixes, the
 * optimizer factory, and a tiny end-to-end run whose winning preset
 * must load back through the deployment dialect.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "core/config_io.h"
#include "tune/objective.h"
#include "tune/optimizer.h"
#include "tune/param_space.h"
#include "tune/tuner.h"

namespace tacc::tune {
namespace {

/** A scenario small enough to simulate inside a unit test. */
TuneSpec
tiny_spec()
{
    TuneSpec spec;
    spec.base.trace.num_jobs = 12;
    spec.base.trace.mean_interarrival_s = 120.0;
    spec.base.stack.cluster.topology.racks = 2;
    spec.base.stack.cluster.topology.nodes_per_rack = 4;
    spec.base.stack.emit_monitor_logs = false;
    spec.space =
        ParamSpace::subset({"w_age", "w_qos", "backfill_depth"}).value();
    spec.search.chains = 2;
    spec.budget = 6;
    return spec;
}

TEST(ParamSpace, RegistryIsStableAndBounded)
{
    const auto &dims = ParamSpace::registry();
    ASSERT_GE(dims.size(), 9u);
    for (const auto &d : dims) {
        EXPECT_LT(d.lo, d.hi) << d.name;
        EXPECT_NE(d.get, nullptr) << d.name;
        EXPECT_NE(d.set, nullptr) << d.name;
    }
    // The multifactor weights lead, in scheduler order.
    EXPECT_EQ(dims[0].name, "w_age");
    EXPECT_EQ(ParamSpace::all().size(), dims.size());
}

TEST(ParamSpace, SubsetKeepsRequestedOrderAndRejectsUnknown)
{
    auto sub = ParamSpace::subset({"backfill_depth", "w_qos"});
    ASSERT_TRUE(sub.is_ok()) << sub.status().str();
    EXPECT_EQ(sub.value().names_csv(), "backfill_depth,w_qos");

    auto bad = ParamSpace::subset({"w_qos", "warp_factor"});
    ASSERT_FALSE(bad.is_ok());
    EXPECT_NE(bad.status().message().find("warp_factor"),
              std::string::npos);
}

TEST(ParamSpace, ApplyExtractRoundTrip)
{
    ParamSpace space =
        ParamSpace::subset({"w_age", "backfill_depth"}).value();
    core::StackConfig config;
    space.apply({0.75, 17}, &config);
    EXPECT_EQ(space.extract(config), (std::vector<double>{0.75, 17}));
}

TEST(ParamSpace, ClampProjectsIntoBoundsAndSnapsIntegers)
{
    ParamSpace space =
        ParamSpace::subset({"w_age", "backfill_depth"}).value();
    const std::vector<double> clamped = space.clamp({-3.0, 7.4});
    EXPECT_EQ(clamped[0], space.dims()[0].lo);
    EXPECT_EQ(clamped[1], 7.0); // integer dim snaps
    EXPECT_TRUE(space.in_bounds(clamped));
    EXPECT_FALSE(space.in_bounds({0.5, 7.4})); // non-integer rejected
    EXPECT_FALSE(space.in_bounds({2.0, 7.0})); // above hi
}

TEST(Objective, ValidateRejectsBadWeights)
{
    ObjectiveWeights w;
    EXPECT_TRUE(validate_weights(w).is_ok());
    w.w_energy = -0.1;
    EXPECT_FALSE(validate_weights(w).is_ok());
    w = ObjectiveWeights{};
    w.jct_ref_s = 0;
    EXPECT_FALSE(validate_weights(w).is_ok());
}

TEST(Objective, ScalarizeMatchesHandComputation)
{
    ObjectiveWeights w;
    w.w_mean_jct = 1.0;
    w.w_p99_jct = 0.5;
    w.w_fairness = 2.0;
    w.w_energy = 1.0;
    w.w_slo = 4.0;
    w.jct_ref_s = 1000.0;
    w.energy_ref_kwh = 10.0;
    core::ObjectiveInputs in;
    in.mean_jct_s = 500.0;
    in.p99_jct_s = 2000.0;
    in.fairness = 0.8;
    in.energy_kwh = 5.0;
    in.slo_miss_rate = 0.25;
    // 0.5 + 0.5*2 + 2*0.2 + 1*0.5 + 4*0.25 = 3.4
    EXPECT_NEAR(scalarize(in, w), 3.4, 1e-12);
    // A perfect run scores zero.
    EXPECT_EQ(scalarize(core::ObjectiveInputs{}, w), 0.0);
}

TEST(TuneSpecParse, ParsesSearchAndWorkloadKeys)
{
    auto parsed = parse_tune_spec(R"(# comment
optimizer: genetic
budget: 12
seed: 9
params: w_qos,backfill_depth
ga_population: 6
w_energy: 0.5
mixes: train-heavy,infer-fault
eval_seeds: 3,4
jobs: 20
racks: 2
nodes_per_rack: 4
)");
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().str();
    const TuneSpec &spec = parsed.value();
    EXPECT_EQ(spec.optimizer, "genetic");
    EXPECT_EQ(spec.budget, 12);
    EXPECT_EQ(spec.search.seed, 9u);
    EXPECT_EQ(spec.search.population, 6);
    EXPECT_EQ(spec.space.names_csv(), "w_qos,backfill_depth");
    EXPECT_EQ(spec.weights.w_energy, 0.5);
    EXPECT_EQ(spec.mixes,
              (std::vector<std::string>{"train-heavy", "infer-fault"}));
    EXPECT_EQ(spec.eval_seeds, (std::vector<uint64_t>{3, 4}));
    EXPECT_EQ(spec.base.trace.num_jobs, 20);
}

TEST(TuneSpecParse, HardErrorsCarryLineNumbers)
{
    auto unknown = parse_tune_spec("budget: 10\nwarp_drive: 9\n");
    ASSERT_FALSE(unknown.is_ok());
    EXPECT_NE(unknown.status().message().find("line 2:"),
              std::string::npos);

    auto malformed = parse_tune_spec("optimizer: sa\nno colon here\n");
    ASSERT_FALSE(malformed.is_ok());
    EXPECT_NE(malformed.status().message().find("line 2:"),
              std::string::npos);

    auto range = parse_tune_spec("budget: 0\n");
    ASSERT_FALSE(range.is_ok());
    EXPECT_NE(range.status().message().find("line 1:"),
              std::string::npos);

    EXPECT_FALSE(parse_tune_spec("mixes: bogus-mix\n").is_ok());
    EXPECT_FALSE(parse_tune_spec("params: warp_factor\n").is_ok());
    EXPECT_FALSE(parse_tune_spec("optimizer: hillclimb\n").is_ok());
    EXPECT_FALSE(parse_tune_spec("w_mean_jct: -1\n").is_ok());
    EXPECT_FALSE(parse_tune_spec("ga_population: 1\n").is_ok());
    EXPECT_FALSE(parse_tune_spec("sa_cooling: 1.5\n").is_ok());
}

TEST(TuneMixes, KnownMixesApplyUnknownRejected)
{
    for (const std::string &mix : mix_names()) {
        core::ScenarioConfig config;
        EXPECT_TRUE(apply_mix(mix, &config).is_ok()) << mix;
    }
    core::ScenarioConfig config;
    const double base_interactive = config.trace.frac_interactive;
    ASSERT_TRUE(apply_mix("infer-heavy", &config).is_ok());
    EXPECT_GT(config.trace.frac_interactive, base_interactive);
    EXPECT_FALSE(apply_mix("bogus", &config).is_ok());
}

TEST(OptimizerFactory, RejectsUnknownEnginePadsAndClampsStart)
{
    ParamSpace space =
        ParamSpace::subset({"w_age", "backfill_depth"}).value();
    OptimizerConfig cfg;
    EXPECT_FALSE(make_optimizer("hillclimb", space, cfg).is_ok());

    // A short, out-of-bounds start is normalized: the first proposal of
    // chain 0 (the anchor) must be in bounds.
    cfg.start = {42.0};
    auto sa = make_optimizer("sa", space, cfg);
    ASSERT_TRUE(sa.is_ok()) << sa.status().str();
    const auto batch = sa.value()->propose(1);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_TRUE(space.in_bounds(batch[0].values));
}

TEST(TuneRun, TinySearchNeverWorseThanDefaultAndPresetLoads)
{
    const TuneSpec spec = tiny_spec();
    auto result = run_tune(spec, 2);
    ASSERT_TRUE(result.is_ok()) << result.status().str();
    const TuneResult &r = result.value();
    EXPECT_EQ(r.trajectory.size(), size_t(spec.budget));
    EXPECT_LE(r.best_objective, r.default_objective);
    EXPECT_TRUE(spec.space.in_bounds(r.best_values));
    for (const auto &step : r.trajectory)
        EXPECT_TRUE(spec.space.in_bounds(step.values)) << step.step;

    // The preset is a loadable deployment file and a render fixed
    // point: parsing and re-rendering reproduces the config section.
    const std::string preset = best_config_text(spec, r);
    auto loaded = core::parse_stack_config(preset);
    ASSERT_TRUE(loaded.is_ok()) << loaded.status().str();
    const std::string rendered =
        core::stack_config_to_text(loaded.value());
    auto reloaded = core::parse_stack_config(rendered);
    ASSERT_TRUE(reloaded.is_ok()) << reloaded.status().str();
    EXPECT_EQ(core::stack_config_to_text(reloaded.value()), rendered);
}

TEST(TuneRun, LoadTuneSpecReadsFilesAndReportsMissing)
{
    const std::string path = ::testing::TempDir() + "/tacc_tiny.tune";
    {
        std::ofstream out(path);
        out << "optimizer: sa\nbudget: 5\nparams: w_qos\njobs: 10\n";
    }
    auto spec = load_tune_spec(path);
    ASSERT_TRUE(spec.is_ok()) << spec.status().str();
    EXPECT_EQ(spec.value().budget, 5);
    EXPECT_FALSE(load_tune_spec("/nonexistent/x.tune").is_ok());
}

} // namespace
} // namespace tacc::tune
