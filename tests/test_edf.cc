/**
 * @file
 * Tests for deadlines in the schema and the EDF schedulers.
 */
#include <gtest/gtest.h>

#include "core/stack.h"
#include "sched_fixture.h"

namespace tacc::sched {
namespace {

using namespace time_literals;
using testing::SchedFixture;
using workload::JobState;

class EdfTest : public SchedFixture
{
  protected:
    workload::Job *
    add_deadline_pending(int gpus, Duration deadline, TimePoint submit)
    {
        workload::Job *job = add_pending({.gpus = gpus, .submit = submit});
        // Rebuild with a deadline: easier to mutate via a fresh spec.
        workload::TaskSpec spec = job->spec();
        spec.deadline = deadline;
        pending_.pop_back();
        jobs_.pop_back();
        auto profile =
            workload::ModelCatalog::instance().find(spec.model);
        auto owned = std::make_unique<workload::Job>(
            next_id_++, spec, profile.value(), submit);
        EXPECT_TRUE(owned->begin_provisioning(submit).is_ok());
        EXPECT_TRUE(owned->finish_provisioning(submit).is_ok());
        pending_.push_back(owned.get());
        jobs_.push_back(std::move(owned));
        return pending_.back();
    }
};

TEST_F(EdfTest, OrdersByAbsoluteDeadline)
{
    add_running({.gpus = 15}, now_ + 1000_s);
    // Arrived earlier but later deadline.
    add_deadline_pending(1, 10_h, now_);
    auto *urgent = add_deadline_pending(1, 1_h, now_ + 1_s);
    EdfScheduler edf(false);
    const auto decision = edf.schedule(ctx());
    EXPECT_EQ(started(decision),
              (std::vector<cluster::JobId>{urgent->id()}));
}

TEST_F(EdfTest, DeadlineFreeJobsSortLast)
{
    add_running({.gpus = 15}, now_ + 1000_s);
    add_pending({.gpus = 1}); // no deadline, arrived first
    auto *dl = add_deadline_pending(1, 5_h, now_ + 1_s);
    EdfScheduler edf(false);
    const auto decision = edf.schedule(ctx());
    EXPECT_EQ(started(decision), (std::vector<cluster::JobId>{dl->id()}));
}

TEST_F(EdfTest, NonPreemptiveVariantNeverPreempts)
{
    add_running({.gpus = 16}, now_ + 10000_s);
    add_deadline_pending(8, 10_min, now_); // hopeless without preemption
    EdfScheduler edf(false);
    EXPECT_TRUE(edf.schedule(ctx()).empty());
}

TEST_F(EdfTest, UrgentJobPreemptsLaterDeadlineWork)
{
    auto *victim = add_running({.gpus = 16}, now_ + 10000_s);
    auto *urgent = add_deadline_pending(8, 30_min, now_);
    EdfScheduler edf(true, /*urgency_window=*/Duration::hours(1));
    const auto decision = edf.schedule(ctx());
    ASSERT_EQ(decision.starts.size(), 1u);
    EXPECT_EQ(decision.starts[0].job, urgent->id());
    EXPECT_EQ(decision.preemptions,
              (std::vector<cluster::JobId>{victim->id()}));
}

TEST_F(EdfTest, NonUrgentJobWaitsInstead)
{
    add_running({.gpus = 16}, now_ + 10000_s);
    // Plenty of slack (deadline far beyond the predicted runtime).
    add_deadline_pending(8, Duration::days(10), now_);
    EdfScheduler edf(true, Duration::minutes(30));
    EXPECT_TRUE(edf.schedule(ctx()).empty());
}

TEST(DeadlineSpec, ValidationAndRoundTrip)
{
    workload::TaskSpec spec;
    spec.name = "t";
    spec.user = "u";
    spec.group = "g";
    spec.model = "resnet50";
    spec.deadline = Duration::hours(3);
    EXPECT_TRUE(spec.has_deadline());
    auto parsed = workload::TaskSpec::parse(spec.to_text());
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value().deadline, Duration::hours(3));
    spec.deadline = Duration::seconds(-1);
    EXPECT_FALSE(spec.validate().is_ok());
}

TEST(DeadlineStack, MissAccountingEndToEnd)
{
    core::StackConfig config;
    config.cluster.topology.racks = 1;
    config.cluster.topology.nodes_per_rack = 2;
    config.scheduler = "edf";
    core::TaccStack stack(config);

    workload::TaskSpec ok_spec;
    ok_spec.name = "makes-it";
    ok_spec.user = "u";
    ok_spec.group = "g";
    ok_spec.gpus = 4;
    ok_spec.model = "resnet50";
    ok_spec.iterations = 100;
    ok_spec.deadline = Duration::hours(10);
    auto ok_id = stack.submit(ok_spec);
    ASSERT_TRUE(ok_id.is_ok());

    workload::TaskSpec late_spec = ok_spec;
    late_spec.name = "misses";
    late_spec.iterations = 1'000'000;
    late_spec.deadline = Duration::minutes(5); // impossible
    auto late_id = stack.submit(late_spec);
    ASSERT_TRUE(late_id.is_ok());

    ASSERT_TRUE(stack.run_to_completion());
    EXPECT_FALSE(stack.find_job(ok_id.value())->missed_deadline());
    EXPECT_TRUE(stack.find_job(late_id.value())->missed_deadline());
    EXPECT_DOUBLE_EQ(stack.metrics().deadline_miss_rate(), 0.5);
}

TEST(DeadlineJob, AbsoluteDeadlineAndMissRules)
{
    workload::TaskSpec spec;
    spec.name = "t";
    spec.user = "u";
    spec.group = "g";
    spec.model = "resnet50";
    spec.iterations = 10;
    auto profile = workload::ModelCatalog::instance().find(spec.model);

    // No deadline: never a miss.
    workload::Job free_job(1, spec, profile.value(),
                           TimePoint::origin() + 100_s);
    EXPECT_EQ(free_job.absolute_deadline(), TimePoint::max());
    EXPECT_TRUE(free_job.kill(TimePoint::origin() + 200_s).is_ok());
    EXPECT_FALSE(free_job.missed_deadline());

    // Deadline carried from submit time; a killed job counts as missed.
    spec.deadline = 50_s;
    workload::Job dl(2, spec, profile.value(),
                     TimePoint::origin() + 100_s);
    EXPECT_EQ(dl.absolute_deadline(), TimePoint::origin() + 150_s);
    EXPECT_FALSE(dl.missed_deadline()); // not terminal yet
    EXPECT_TRUE(dl.kill(TimePoint::origin() + 120_s).is_ok());
    EXPECT_TRUE(dl.missed_deadline());
}

} // namespace
} // namespace tacc::sched
