/**
 * @file
 * Unit tests for the tcloud client: multi-cluster profiles, text
 * submission, status/logs/kill/wait.
 */
#include <gtest/gtest.h>

#include "tcloud/client.h"

namespace tacc::tcloud {
namespace {

using namespace time_literals;
using workload::JobState;

core::StackConfig
tiny()
{
    core::StackConfig config;
    config.cluster.topology.racks = 1;
    config.cluster.topology.nodes_per_rack = 1;
    config.cluster.node.gpu_count = 8;
    return config;
}

workload::TaskSpec
spec(const std::string &name = "t", int gpus = 2)
{
    workload::TaskSpec s;
    s.name = name;
    s.user = "u";
    s.group = "g";
    s.gpus = gpus;
    s.model = "resnet50";
    s.iterations = 50;
    return s;
}

TEST(TcloudClient, ClusterProfileManagement)
{
    core::TaccStack a(tiny()), b(tiny());
    Client client;
    EXPECT_FALSE(client.add_cluster("", &a).is_ok());
    EXPECT_FALSE(client.add_cluster("a", nullptr).is_ok());
    EXPECT_TRUE(client.add_cluster("a", &a).is_ok());
    EXPECT_FALSE(client.add_cluster("a", &b).is_ok()); // duplicate
    EXPECT_TRUE(client.add_cluster("b", &b).is_ok());
    EXPECT_EQ(client.default_cluster(), "a"); // first registered
    EXPECT_TRUE(client.set_default_cluster("b").is_ok());
    EXPECT_FALSE(client.set_default_cluster("zzz").is_ok());
    EXPECT_EQ(client.cluster_names(),
              (std::vector<std::string>{"a", "b"}));
}

TEST(TcloudClient, SubmitRoutesToNamedCluster)
{
    core::TaccStack a(tiny()), b(tiny());
    Client client;
    ASSERT_TRUE(client.add_cluster("a", &a).is_ok());
    ASSERT_TRUE(client.add_cluster("b", &b).is_ok());

    auto to_default = client.submit(spec("one"));
    ASSERT_TRUE(to_default.is_ok());
    EXPECT_EQ(to_default.value().cluster, "a");
    EXPECT_EQ(a.jobs().size(), 1u);
    EXPECT_TRUE(b.jobs().empty());

    // "Change one line of configuration" -> other instance.
    auto to_b = client.submit(spec("two"), "b");
    ASSERT_TRUE(to_b.is_ok());
    EXPECT_EQ(b.jobs().size(), 1u);

    EXPECT_FALSE(client.submit(spec(), "nope").is_ok());
}

TEST(TcloudClient, SubmitTextParsesSchema)
{
    core::TaccStack a(tiny());
    Client client;
    ASSERT_TRUE(client.add_cluster("a", &a).is_ok());
    auto handle = client.submit_text(spec("textual").to_text());
    ASSERT_TRUE(handle.is_ok());
    auto final_status = client.wait(handle.value());
    ASSERT_TRUE(final_status.is_ok());
    EXPECT_EQ(final_status.value().state, JobState::kCompleted);

    EXPECT_FALSE(client.submit_text("garbage").is_ok());
}

TEST(TcloudClient, StatusProgressesAndSummaryReadable)
{
    core::TaccStack a(tiny());
    Client client;
    ASSERT_TRUE(client.add_cluster("a", &a).is_ok());
    auto handle = client.submit(spec("watched", 4));
    ASSERT_TRUE(handle.is_ok());

    auto early = client.status(handle.value());
    ASSERT_TRUE(early.is_ok());
    EXPECT_EQ(early.value().state, JobState::kProvisioning);

    auto done = client.wait(handle.value());
    ASSERT_TRUE(done.is_ok());
    EXPECT_DOUBLE_EQ(done.value().progress, 1.0);
    EXPECT_NE(done.value().summary.find("watched"), std::string::npos);
    EXPECT_NE(done.value().summary.find("completed"), std::string::npos);

    TaskHandle bogus{"a", 999};
    EXPECT_FALSE(client.status(bogus).is_ok());
}

TEST(TcloudClient, PendingStatusCarriesEta)
{
    core::TaccStack a(tiny());
    tcloud::Client client;
    ASSERT_TRUE(client.add_cluster("a", &a).is_ok());
    auto hog = client.submit(spec("hog", 8));
    ASSERT_TRUE(hog.is_ok());
    a.run_until(TimePoint::origin() + 5_min);
    auto queued = client.submit(spec("queued", 8));
    ASSERT_TRUE(queued.is_ok());
    auto st = client.status(queued.value());
    ASSERT_TRUE(st.is_ok());
    EXPECT_NE(st.value().summary.find("eta="), std::string::npos)
        << st.value().summary;
}

TEST(TcloudClient, LogsAggregateAcrossNodes)
{
    core::TaccStack a(tiny());
    Client client;
    ASSERT_TRUE(client.add_cluster("a", &a).is_ok());
    auto handle = client.submit(spec("loggy", 8));
    ASSERT_TRUE(handle.is_ok());
    ASSERT_TRUE(client.wait(handle.value()).is_ok());
    auto logs = client.logs(handle.value());
    ASSERT_TRUE(logs.is_ok());
    ASSERT_GE(logs.value().size(), 2u);
    EXPECT_NE(logs.value()[0].find("node"), std::string::npos);
}

TEST(TcloudClient, KillStopsTask)
{
    core::TaccStack a(tiny());
    Client client;
    ASSERT_TRUE(client.add_cluster("a", &a).is_ok());
    auto handle = client.submit(spec("doomed", 2));
    ASSERT_TRUE(handle.is_ok());
    EXPECT_TRUE(client.kill(handle.value()).is_ok());
    auto st = client.status(handle.value());
    ASSERT_TRUE(st.is_ok());
    EXPECT_EQ(st.value().state, JobState::kKilled);
    EXPECT_FALSE(client.kill(handle.value()).is_ok()); // already dead
}

} // namespace
} // namespace tacc::tcloud
