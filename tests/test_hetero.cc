/**
 * @file
 * Heterogeneous-cluster tests: per-rack hardware generations, GPU-model
 * placement constraints, the slowest-worker gang rule, and the
 * no-mixed-gang scheduling policy.
 */
#include <gtest/gtest.h>

#include <set>

#include "core/stack.h"
#include "exec/engine.h"
#include "sched/placement.h"

namespace tacc {
namespace {

using namespace time_literals;

/** 2 racks of A100 nodes + 1 rack of V100 nodes (4 GPUs, slower). */
cluster::ClusterConfig
hetero_config()
{
    cluster::ClusterConfig config;
    config.topology.racks = 3;
    config.topology.nodes_per_rack = 2;
    config.node.gpu = {"A100", 312.0, 80.0};
    config.node.gpu_count = 8;
    cluster::NodeSpec v100 = config.node;
    v100.gpu = {"V100", 125.0, 32.0};
    v100.gpu_count = 4;
    config.rack_node_overrides[2] = v100;
    return config;
}

TEST(HeteroCluster, BuildsMixedRacks)
{
    cluster::Cluster cluster(hetero_config());
    EXPECT_EQ(cluster.total_gpus(), 2 * 2 * 8 + 2 * 4);
    EXPECT_EQ(cluster.config().total_gpus(), cluster.total_gpus());
    EXPECT_EQ(cluster.max_gpus_per_node(), 8);
    EXPECT_EQ(cluster.node(0).spec().gpu.model, "A100");
    EXPECT_EQ(cluster.node(4).spec().gpu.model, "V100");
    EXPECT_EQ(cluster.node(4).gpu_count(), 4);
    EXPECT_EQ(cluster.gpu_models(),
              (std::vector<std::string>{"A100", "V100"}));
}

TEST(HeteroCluster, EligibleMask)
{
    cluster::Cluster cluster(hetero_config());
    const auto any = cluster.eligible_mask("");
    EXPECT_EQ(std::count(any.begin(), any.end(), 1), 6);
    const auto v100 = cluster.eligible_mask("V100");
    EXPECT_EQ(std::count(v100.begin(), v100.end(), 1), 2);
    EXPECT_EQ(v100[0], 0);
    EXPECT_EQ(v100[4], 1);
    const auto none = cluster.eligible_mask("H100");
    EXPECT_EQ(std::count(none.begin(), none.end(), 1), 0);
}

TEST(HeteroPlacement, MaskConfinesPlan)
{
    cluster::Cluster cluster(hetero_config());
    sched::FreeView view(cluster);
    const auto mask = cluster.eligible_mask("V100");
    sched::TopologyAwarePlacement topo;
    auto plan = topo.plan(view, cluster.topology(), 8, 8, &mask);
    ASSERT_TRUE(plan.is_ok());
    for (const auto &slice : plan.value().slices)
        EXPECT_EQ(cluster.node(slice.node).spec().gpu.model, "V100");
    // More than the V100 pool cannot be placed under the mask.
    EXPECT_FALSE(topo.plan(view, cluster.topology(), 9, 8, &mask).is_ok());
}

TEST(HeteroEngine, GangRunsAtSlowestWorker)
{
    cluster::Cluster cluster(hetero_config());
    exec::ExecutionEngine engine(cluster, exec::ExecConfig{}, 1);
    workload::TaskSpec spec;
    spec.name = "t";
    spec.user = "u";
    spec.group = "g";
    spec.gpus = 8;
    spec.model = "rl-ppo"; // compute-bound: comm barely matters
    spec.iterations = 100;
    auto profile = workload::ModelCatalog::instance().find(spec.model);
    workload::Job job(1, spec, profile.value(), TimePoint::origin());

    cluster::Placement a100;
    a100.slices.push_back({0, {0, 1, 2, 3}});
    a100.slices.push_back({1, {0, 1, 2, 3}});
    cluster::Placement mixed;
    mixed.slices.push_back({0, {0, 1, 2, 3}});
    mixed.slices.push_back({4, {0, 1, 2, 3}});

    const double fast = engine.iteration_time_s(job, a100);
    const double slow = engine.iteration_time_s(job, mixed);
    // Mixed gang computes at V100 speed: ~312/125 = 2.5x slower compute.
    EXPECT_GT(slow / fast, 1.8);
}

TEST(HeteroStack, GpuModelRequirementHonored)
{
    core::StackConfig config;
    config.cluster = hetero_config();
    config.scheduler = "fifo";
    core::TaccStack stack(config);

    workload::TaskSpec spec;
    spec.name = "v100-only";
    spec.user = "u";
    spec.group = "g";
    spec.gpus = 4;
    spec.gpu_model = "V100";
    spec.model = "resnet50";
    spec.iterations = 50;
    auto id = stack.submit(spec);
    ASSERT_TRUE(id.is_ok());
    ASSERT_TRUE(stack.run_to_completion());

    const workload::Job *job = stack.find_job(id.value());
    EXPECT_EQ(job->state(), workload::JobState::kCompleted);
    // It ran somewhere; the monitor log names the node, but easier:
    // re-submit a long copy and catch it running.
    spec.iterations = 1'000'000;
    auto id2 = stack.submit(spec);
    ASSERT_TRUE(id2.is_ok());
    stack.run_until(stack.simulator().now() + 5_min);
    const auto placement = stack.cluster().placement_of(id2.value());
    ASSERT_FALSE(placement.empty());
    for (const auto &slice : placement.slices) {
        EXPECT_EQ(stack.cluster().node(slice.node).spec().gpu.model,
                  "V100");
    }
    ASSERT_TRUE(stack.run_to_completion());
}

TEST(HeteroStack, AvoidMixingKeepsGangsWithinGeneration)
{
    core::StackConfig config;
    config.cluster = hetero_config();
    config.scheduler = "fifo-skip";
    config.placement = "firstfit"; // would happily mix if allowed
    config.avoid_gpu_mixing = true;
    core::TaccStack stack(config);

    // Occupy most of the A100 pool so a naive 8-GPU plan would have to
    // span into the V100 rack.
    workload::TaskSpec filler;
    filler.name = "filler";
    filler.user = "u";
    filler.group = "g";
    filler.gpus = 12;
    filler.model = "resnet50";
    filler.iterations = 100000;
    ASSERT_TRUE(stack.submit(filler).is_ok());
    stack.run_until(TimePoint::origin() + 5_min);

    workload::TaskSpec gang = filler;
    gang.name = "gang";
    gang.gpus = 6;
    gang.iterations = 1'000'000;
    auto id = stack.submit(gang);
    ASSERT_TRUE(id.is_ok());
    stack.run_until(stack.simulator().now() + 5_min);
    const auto placement = stack.cluster().placement_of(id.value());
    ASSERT_FALSE(placement.empty());
    std::set<std::string> models;
    for (const auto &slice : placement.slices)
        models.insert(stack.cluster().node(slice.node).spec().gpu.model);
    EXPECT_EQ(models.size(), 1u) << "gang mixed GPU generations";
}

TEST(HeteroSpec, GpuModelRoundTrips)
{
    workload::TaskSpec spec;
    spec.name = "t";
    spec.user = "u";
    spec.group = "g";
    spec.gpu_model = "V100";
    spec.model = "resnet50";
    auto parsed = workload::TaskSpec::parse(spec.to_text());
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().str();
    EXPECT_EQ(parsed.value().gpu_model, "V100");
    EXPECT_EQ(parsed.value(), spec);
}

} // namespace
} // namespace tacc
