/**
 * @file
 * Tests for the deployment-config dialect.
 */
#include <gtest/gtest.h>

#include "core/config_io.h"

namespace tacc::core {
namespace {

TEST(ConfigIo, EmptyTextGivesDefaults)
{
    auto config = parse_stack_config("");
    ASSERT_TRUE(config.is_ok());
    EXPECT_EQ(config.value().scheduler, "fairshare");
    EXPECT_EQ(config.value().cluster.topology.racks, 4);
}

TEST(ConfigIo, ParsesFullDeployment)
{
    const char *text =
        "# campus deployment\n"
        "cluster: hkust\n"
        "racks: 3\n"
        "nodes_per_rack: 6\n"
        "gpus_per_node: 8\n"
        "gpu: A100,312,80\n"
        "rack_override: 2,V100,125,32,4\n"
        "oversubscription: 4\n"
        "nic_gbps: 200\n"
        "scheduler: backfill-pred\n"
        "placement: pack\n"
        "usage_half_life_h: 12\n"
        "quota: cv-lab,64\n"
        "quota: nlp-lab,96\n"
        "default_quota: 32\n"
        "avoid_gpu_mixing: true\n"
        "rdma: true\n"
        "innetwork: false\n"
        "failsafe: true\n"
        "spine_contention: false\n"
        "mtbf_hours: 1000\n"
        "persistent_failure_prob: 0.05\n"
        "checkpoint_interval_s: 600\n"
        "seed: 9\n";
    auto parsed = parse_stack_config(text);
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().str();
    const StackConfig &c = parsed.value();
    EXPECT_EQ(c.cluster.name, "hkust");
    EXPECT_EQ(c.cluster.topology.racks, 3);
    EXPECT_EQ(c.cluster.topology.nodes_per_rack, 6);
    EXPECT_EQ(c.cluster.node.gpu.model, "A100");
    ASSERT_TRUE(c.cluster.rack_node_overrides.contains(2));
    EXPECT_EQ(c.cluster.rack_node_overrides.at(2).gpu.model, "V100");
    EXPECT_EQ(c.cluster.rack_node_overrides.at(2).gpu_count, 4);
    EXPECT_DOUBLE_EQ(c.cluster.topology.oversubscription, 4.0);
    EXPECT_DOUBLE_EQ(c.cluster.topology.nic_gbps, 200.0);
    EXPECT_DOUBLE_EQ(c.cluster.node.nic_gbps, 200.0);
    EXPECT_EQ(c.scheduler, "backfill-pred");
    EXPECT_EQ(c.placement, "pack");
    EXPECT_EQ(c.usage_half_life, Duration::hours(12));
    EXPECT_EQ(c.group_quotas.at("cv-lab"), 64);
    EXPECT_EQ(c.group_quotas.at("nlp-lab"), 96);
    EXPECT_EQ(c.default_group_quota, 32);
    EXPECT_TRUE(c.avoid_gpu_mixing);
    EXPECT_FALSE(c.exec.innetwork_available);
    EXPECT_FALSE(c.exec.model_spine_contention);
    EXPECT_DOUBLE_EQ(c.exec.failure.node_mtbf_hours, 1000.0);
    EXPECT_DOUBLE_EQ(c.exec.failure.persistent_prob, 0.05);
    EXPECT_DOUBLE_EQ(c.exec.checkpoint_interval_s, 600.0);
    EXPECT_EQ(c.seed, 9u);

    // The parsed config must boot a working stack.
    TaccStack stack(c);
    EXPECT_EQ(stack.cluster().total_gpus(), 2 * 6 * 8 + 6 * 4);
}

TEST(ConfigIo, RoundTrip)
{
    StackConfig config;
    config.cluster.name = "x";
    config.cluster.topology.racks = 2;
    config.scheduler = "las";
    config.group_quotas["g"] = 10;
    config.avoid_gpu_mixing = true;
    config.exec.checkpoint_interval_s = 300;
    cluster::NodeSpec old = config.cluster.node;
    old.gpu.model = "P100";
    old.gpu.tflops = 65;
    config.cluster.rack_node_overrides[1] = old;

    auto parsed = parse_stack_config(stack_config_to_text(config));
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().str();
    EXPECT_EQ(stack_config_to_text(parsed.value()),
              stack_config_to_text(config));
}

TEST(ConfigIo, RejectsBadInput)
{
    EXPECT_FALSE(parse_stack_config("no colon").is_ok());
    EXPECT_FALSE(parse_stack_config("unknown_key: 1\n").is_ok());
    EXPECT_FALSE(parse_stack_config("racks: -1\n").is_ok());
    EXPECT_FALSE(parse_stack_config("racks: soup\n").is_ok());
    EXPECT_FALSE(parse_stack_config("gpu: A100,312\n").is_ok());
    EXPECT_FALSE(parse_stack_config("scheduler: bogus\n").is_ok());
    EXPECT_FALSE(parse_stack_config("placement: bogus\n").is_ok());
    EXPECT_FALSE(parse_stack_config("oversubscription: 0.5\n").is_ok());
    EXPECT_FALSE(
        parse_stack_config("persistent_failure_prob: 2\n").is_ok());
    EXPECT_FALSE(parse_stack_config("avoid_gpu_mixing: maybe\n").is_ok());
    EXPECT_FALSE(parse_stack_config("quota: justgroup\n").is_ok());
    EXPECT_FALSE(parse_stack_config("rack_override: 1,V100\n").is_ok());
    EXPECT_FALSE(parse_stack_config("usage_half_life_h: 0\n").is_ok());
}

TEST(ConfigIo, ErrorsCarryLineNumbers)
{
    auto unknown = parse_stack_config("racks: 2\n\nwarp_drive: 9\n");
    ASSERT_FALSE(unknown.is_ok());
    EXPECT_NE(unknown.status().message().find("line 3:"),
              std::string::npos)
        << unknown.status().str();

    auto malformed = parse_stack_config("racks: 2\nno colon\n");
    ASSERT_FALSE(malformed.is_ok());
    EXPECT_NE(malformed.status().message().find("line 2:"),
              std::string::npos)
        << malformed.status().str();

    auto range = parse_stack_config("oversubscription: 0.5\n");
    ASSERT_FALSE(range.is_ok());
    EXPECT_NE(range.status().message().find("line 1:"),
              std::string::npos)
        << range.status().str();
}

} // namespace
} // namespace tacc::core
