/**
 * @file
 * Unit tests for the discrete-event engine.
 */
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace tacc {
namespace {

using namespace time_literals;
using sim::Simulator;

TEST(Simulator, StartsAtOrigin)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), TimePoint::origin());
    EXPECT_EQ(sim.pending(), 0u);
    EXPECT_FALSE(sim.step());
}

TEST(Simulator, FiresInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule_after(20_s, "b", [&] { order.push_back(2); });
    sim.schedule_after(10_s, "a", [&] { order.push_back(1); });
    sim.schedule_after(30_s, "c", [&] { order.push_back(3); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), TimePoint::origin() + 30_s);
    EXPECT_EQ(sim.processed(), 3u);
}

TEST(Simulator, SameInstantFiresInScheduleOrder)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sim.schedule_after(10_s, "e", [&order, i] { order.push_back(i); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesDuringCallbacks)
{
    Simulator sim;
    TimePoint seen;
    sim.schedule_after(42_s, "t", [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, TimePoint::origin() + 42_s);
}

TEST(Simulator, EventsScheduleMoreEvents)
{
    Simulator sim;
    int count = 0;
    std::function<void()> chain = [&] {
        ++count;
        if (count < 5)
            sim.schedule_after(1_s, "chain", chain);
    };
    sim.schedule_after(1_s, "chain", chain);
    sim.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(sim.now(), TimePoint::origin() + 5_s);
}

TEST(Simulator, CancelPreventsFiring)
{
    Simulator sim;
    bool fired = false;
    const auto id = sim.schedule_after(5_s, "x", [&] { fired = true; });
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.cancel(id)); // second cancel is a no-op
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, CancelFromInsideEarlierEvent)
{
    Simulator sim;
    bool fired = false;
    const auto victim = sim.schedule_after(10_s, "victim",
                                           [&] { fired = true; });
    sim.schedule_after(5_s, "killer", [&] { sim.cancel(victim); });
    sim.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.processed(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents)
{
    Simulator sim;
    sim.run_until(TimePoint::origin() + 100_s);
    EXPECT_EQ(sim.now(), TimePoint::origin() + 100_s);
}

TEST(Simulator, RunUntilHonorsHorizon)
{
    Simulator sim;
    int fired = 0;
    sim.schedule_after(10_s, "in", [&] { ++fired; });
    sim.schedule_after(50_s, "out", [&] { ++fired; });
    sim.run_until(TimePoint::origin() + 20_s);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), TimePoint::origin() + 20_s);
    EXPECT_EQ(sim.pending(), 1u);
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents)
{
    Simulator sim;
    bool fired = false;
    sim.schedule_after(20_s, "edge", [&] { fired = true; });
    sim.run_until(TimePoint::origin() + 20_s);
    EXPECT_TRUE(fired);
}

TEST(Simulator, NextEventTime)
{
    Simulator sim;
    EXPECT_EQ(sim.next_event_time(), TimePoint::max());
    const auto id = sim.schedule_after(7_s, "x", [] {});
    EXPECT_EQ(sim.next_event_time(), TimePoint::origin() + 7_s);
    sim.cancel(id);
    EXPECT_EQ(sim.next_event_time(), TimePoint::max());
}

TEST(PeriodicTask, FiresAtFixedInterval)
{
    Simulator sim;
    int ticks = 0;
    sim::PeriodicTask task(sim, 10_s, "tick", [&] { ++ticks; });
    task.start();
    sim.run_until(TimePoint::origin() + 35_s);
    EXPECT_EQ(ticks, 3); // at 10, 20, 30
}

TEST(PeriodicTask, StopIsIdempotentAndEffective)
{
    Simulator sim;
    int ticks = 0;
    sim::PeriodicTask task(sim, 10_s, "tick", [&] { ++ticks; });
    task.start();
    sim.run_until(TimePoint::origin() + 15_s);
    task.stop();
    task.stop();
    sim.run_until(TimePoint::origin() + 100_s);
    EXPECT_EQ(ticks, 1);
    EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, StopFromInsideCallback)
{
    Simulator sim;
    int ticks = 0;
    sim::PeriodicTask task(sim, 10_s, "tick", [&] {
        ++ticks;
        // stop() mid-callback must prevent re-arming.
    });
    task.start();
    sim.schedule_after(11_s, "stopper", [&] { task.stop(); });
    sim.run_until(TimePoint::origin() + 100_s);
    EXPECT_EQ(ticks, 1);
}

TEST(PeriodicTask, RestartAfterStop)
{
    Simulator sim;
    int ticks = 0;
    sim::PeriodicTask task(sim, 10_s, "tick", [&] { ++ticks; });
    task.start();
    sim.run_until(TimePoint::origin() + 10_s);
    task.stop();
    task.start();
    sim.run_until(TimePoint::origin() + 25_s);
    EXPECT_EQ(ticks, 2); // 10s, then 20s (re-armed at 10s)
}

} // namespace
} // namespace tacc
