/**
 * @file
 * Tests for the alert engine's for-duration hysteresis: deterministic
 * boundary cases, burn-rate rules, and a property-style test under
 * randomized metric streams against an independent reference state
 * machine — neither firing nor resolving may ever happen without the
 * condition holding (or staying clear) for the full `for` duration.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ops/alert.h"
#include "ops/metric_store.h"

namespace tacc::ops {
namespace {

using namespace time_literals;

TimePoint
at(double seconds)
{
    return TimePoint::origin() + Duration::from_seconds(seconds);
}

AlertRule
above_rule(double threshold, Duration for_duration)
{
    AlertRule rule;
    rule.name = "above";
    rule.series = "g";
    rule.agg = AlertRule::Agg::kLast;
    rule.cmp = AlertRule::Cmp::kAbove;
    rule.threshold = threshold;
    rule.for_duration = for_duration;
    return rule;
}

TEST(AlertEngine, FiresOnlyAfterForDuration)
{
    MetricStore store;
    const SeriesId id = store.define("g", SeriesKind::kGauge);
    AlertEngine engine;
    engine.add_rule(above_rule(10.0, 5_min));

    // Condition true from t=0, evaluated every minute.
    for (int i = 0; i <= 4; ++i) {
        store.record(id, at(60.0 * i), 20.0);
        engine.evaluate(store, at(60.0 * i));
        EXPECT_FALSE(engine.is_firing("above")) << "minute " << i;
    }
    store.record(id, at(300), 20.0);
    engine.evaluate(store, at(300)); // held exactly 5 minutes
    EXPECT_TRUE(engine.is_firing("above"));
    ASSERT_EQ(engine.incidents().size(), 1u);
    EXPECT_EQ(engine.incidents()[0].fired_at, at(300));
    EXPECT_TRUE(engine.incidents()[0].active());
    EXPECT_EQ(engine.active_count(), 1u);
}

TEST(AlertEngine, BlipShorterThanForNeverFires)
{
    MetricStore store;
    const SeriesId id = store.define("g", SeriesKind::kGauge);
    AlertEngine engine;
    engine.add_rule(above_rule(10.0, 5_min));

    // 4-minute spikes separated by clear samples: never fires.
    for (int cycle = 0; cycle < 10; ++cycle) {
        const double base = 600.0 * cycle;
        for (int i = 0; i < 4; ++i) {
            store.record(id, at(base + 60.0 * i), 20.0);
            engine.evaluate(store, at(base + 60.0 * i));
        }
        store.record(id, at(base + 240.0), 0.0);
        engine.evaluate(store, at(base + 240.0));
    }
    EXPECT_FALSE(engine.is_firing("above"));
    EXPECT_TRUE(engine.incidents().empty());
}

TEST(AlertEngine, ResolvesOnlyAfterClearHeldForDuration)
{
    MetricStore store;
    const SeriesId id = store.define("g", SeriesKind::kGauge);
    AlertEngine engine;
    engine.add_rule(above_rule(10.0, 2_min));

    double t = 0;
    auto step = [&](double v) {
        store.record(id, at(t), v);
        engine.evaluate(store, at(t));
        t += 60.0;
    };
    step(20.0);
    step(20.0);
    step(20.0); // held 2 min -> firing
    ASSERT_TRUE(engine.is_firing("above"));

    step(0.0);  // clear run starts
    step(20.0); // ...interrupted: clear_since resets
    EXPECT_TRUE(engine.is_firing("above"));
    step(0.0);
    step(0.0);
    EXPECT_TRUE(engine.is_firing("above")); // clear held only 1 min
    step(0.0);                              // clear held 2 min -> resolved
    EXPECT_FALSE(engine.is_firing("above"));
    ASSERT_EQ(engine.incidents().size(), 1u);
    EXPECT_FALSE(engine.incidents()[0].active());
    EXPECT_EQ(engine.incidents()[0].resolved_at, at(t - 60.0));
    EXPECT_DOUBLE_EQ(engine.incidents()[0].peak, 20.0);
}

TEST(AlertEngine, MissingSeriesAndEmptyWindowsAreInert)
{
    MetricStore store;
    AlertEngine engine;
    AlertRule rule = above_rule(-1.0, 0_s); // would fire on any data
    rule.name = "no-series";
    engine.add_rule(rule);

    AlertRule mean = above_rule(-1.0, 0_s);
    mean.name = "empty-mean";
    mean.series = "m";
    mean.agg = AlertRule::Agg::kMean;
    mean.window = 10_min;
    engine.add_rule(mean);
    store.define("m", SeriesKind::kGauge); // defined but never recorded

    for (int i = 0; i < 10; ++i)
        engine.evaluate(store, at(60.0 * i));
    EXPECT_FALSE(engine.is_firing("no-series"));
    EXPECT_FALSE(engine.is_firing("empty-mean"));
    EXPECT_TRUE(engine.incidents().empty());
}

TEST(AlertEngine, BurnRateRuleFiresOnCounterSlope)
{
    MetricStore store;
    const SeriesId id = store.define("failures", SeriesKind::kCounter);
    AlertEngine engine;
    AlertRule rule;
    rule.name = "failure-storm";
    rule.series = "failures";
    rule.agg = AlertRule::Agg::kRate;
    rule.cmp = AlertRule::Cmp::kAbove;
    rule.threshold = 5.0 / 3600.0; // >5 events/hour
    rule.window = 1_h;
    rule.for_duration = 10_min;
    engine.add_rule(rule);

    // Quiet counter: 1 event/hour, no alert.
    double count = 0;
    double t = 0;
    for (int i = 0; i < 120; ++i, t += 60.0) {
        if (i % 60 == 0)
            count += 1;
        store.record(id, at(t), count);
        engine.evaluate(store, at(t));
    }
    EXPECT_FALSE(engine.is_firing("failure-storm"));

    // Storm: an event per minute.
    for (int i = 0; i < 30; ++i, t += 60.0) {
        store.record(id, at(t), count += 1);
        engine.evaluate(store, at(t));
    }
    EXPECT_TRUE(engine.is_firing("failure-storm"));

    // Counter flattens; the hour-long window drains below threshold and
    // the alert resolves after the hysteresis.
    for (int i = 0; i < 90; ++i, t += 60.0) {
        store.record(id, at(t), count);
        engine.evaluate(store, at(t));
    }
    EXPECT_FALSE(engine.is_firing("failure-storm"));
    ASSERT_EQ(engine.incidents().size(), 1u);
    EXPECT_FALSE(engine.incidents()[0].active());
}

/**
 * Reference hysteresis state machine, written independently of the
 * engine: condition history in, firing state out.
 */
class ReferenceHysteresis
{
  public:
    explicit ReferenceHysteresis(Duration for_duration)
        : for_(for_duration)
    {
    }

    bool
    step(TimePoint now, bool condition)
    {
        if (condition) {
            clear_held_ = false;
            if (!true_held_) {
                true_since_ = now;
                true_held_ = true;
            }
            if (!firing_ && now - true_since_ >= for_) {
                firing_ = true;
                ++fired;
            }
        } else {
            true_held_ = false;
            if (firing_) {
                if (!clear_held_) {
                    clear_since_ = now;
                    clear_held_ = true;
                }
                if (now - clear_since_ >= for_) {
                    firing_ = false;
                    clear_held_ = false;
                    ++resolved;
                }
            }
        }
        return firing_;
    }

    int fired = 0;
    int resolved = 0;

  private:
    Duration for_;
    TimePoint true_since_;
    TimePoint clear_since_;
    bool true_held_ = false;
    bool clear_held_ = false;
    bool firing_ = false;
};

// Property test: under randomized gauge streams and irregular sampling
// cadences, the engine's firing state must match the reference machine
// at every step — no fire or resolve without the condition holding (or
// staying clear) for the full `for` duration.
TEST(AlertEngine, HysteresisMatchesReferenceUnderRandomStreams)
{
    Rng rng(20250806);
    for (int trial = 0; trial < 20; ++trial) {
        MetricStore store;
        const SeriesId id = store.define("g", SeriesKind::kGauge);
        const double threshold = rng.uniform(20.0, 80.0);
        const Duration for_duration =
            Duration::from_seconds(rng.uniform(60.0, 900.0));

        AlertEngine engine;
        engine.add_rule(above_rule(threshold, for_duration));
        ReferenceHysteresis reference(for_duration);

        TimePoint now = TimePoint::origin();
        for (int step = 0; step < 400; ++step) {
            now += Duration::from_seconds(rng.uniform(5.0, 120.0));
            // A random walk that crosses the threshold repeatedly.
            const double value = rng.uniform(0.0, 100.0);
            store.record(id, now, value);
            engine.evaluate(store, now);
            const bool expected =
                reference.step(now, value > threshold);
            ASSERT_EQ(engine.is_firing("above"), expected)
                << "trial " << trial << " step " << step << " value "
                << value << " threshold " << threshold;
        }
        // Incident ledger agrees with the reference transition counts.
        size_t resolved_incidents = 0;
        for (const auto &incident : engine.incidents())
            resolved_incidents += !incident.active();
        EXPECT_EQ(engine.incidents().size(), size_t(reference.fired));
        EXPECT_EQ(resolved_incidents, size_t(reference.resolved));
        // Every resolved incident's lifetime must exceed `for` twice
        // (held to fire, held clear to resolve).
        for (const auto &incident : engine.incidents()) {
            if (!incident.active()) {
                EXPECT_GE(incident.resolved_at - incident.fired_at,
                          for_duration);
            }
        }
    }
}

} // namespace
} // namespace tacc::ops
