/**
 * @file
 * Unit tests for the runtime estimator and its scheduler integration.
 */
#include <gtest/gtest.h>

#include "sched/estimator.h"
#include "sched_fixture.h"
#include "workload/model.h"

namespace tacc::sched {
namespace {

using namespace time_literals;

workload::Job
completed_job(cluster::JobId id, const std::string &user,
              const std::string &model, int64_t iterations,
              double iter_seconds, int gpus = 2)
{
    workload::TaskSpec spec;
    spec.name = "e" + std::to_string(id);
    spec.user = user;
    spec.group = "g";
    spec.gpus = gpus;
    spec.model = model;
    spec.iterations = iterations;
    spec.time_limit = Duration::hours(100);
    auto profile = workload::ModelCatalog::instance().find(model);
    workload::Job job(id, spec, profile.value(), TimePoint::origin());
    EXPECT_TRUE(job.begin_provisioning(TimePoint::origin()).is_ok());
    EXPECT_TRUE(job.finish_provisioning(TimePoint::origin()).is_ok());
    EXPECT_TRUE(
        job.begin_segment(TimePoint::origin(), gpus, iter_seconds).is_ok());
    EXPECT_TRUE(job.complete(TimePoint::origin() +
                             Duration::from_seconds(double(iterations) *
                                                    iter_seconds))
                    .is_ok());
    return job;
}

TEST(RuntimeEstimator, FallsBackToTimeLimitWithoutHistory)
{
    RuntimeEstimator estimator;
    const auto job = completed_job(1, "alice", "resnet50", 100, 1.0);
    EXPECT_FALSE(estimator.has_history(job));
    EXPECT_EQ(estimator.predict(job), job.spec().time_limit);
}

TEST(RuntimeEstimator, LearnsPerIterationRate)
{
    RuntimeEstimator estimator(/*safety_factor=*/1.0);
    estimator.observe(completed_job(1, "alice", "resnet50", 1000, 2.0));
    const auto next = completed_job(2, "alice", "resnet50", 500, 2.0);
    ASSERT_TRUE(estimator.has_history(next));
    EXPECT_NEAR(estimator.predict(next).to_seconds(), 1000.0, 1.0);
    EXPECT_EQ(estimator.observations(), 1u);
}

TEST(RuntimeEstimator, SafetyFactorApplied)
{
    RuntimeEstimator estimator(/*safety_factor=*/1.5);
    estimator.observe(completed_job(1, "alice", "resnet50", 1000, 2.0));
    const auto next = completed_job(2, "alice", "resnet50", 1000, 2.0);
    EXPECT_NEAR(estimator.predict(next).to_seconds(), 3000.0, 1.0);
}

TEST(RuntimeEstimator, PredictionCappedByTimeLimit)
{
    RuntimeEstimator estimator(1.0);
    estimator.observe(completed_job(1, "alice", "resnet50", 1000, 2.0));
    auto next = completed_job(2, "alice", "resnet50", 1'000'000, 2.0);
    // Prediction would be ~2e6 s; the limit (100 h) caps it.
    EXPECT_EQ(estimator.predict(next), Duration::hours(100));
}

TEST(RuntimeEstimator, KeysAreUserAndModel)
{
    RuntimeEstimator estimator(1.0);
    estimator.observe(completed_job(1, "alice", "resnet50", 1000, 2.0));
    const auto other_user =
        completed_job(2, "bob", "resnet50", 1000, 2.0);
    const auto other_model =
        completed_job(3, "alice", "vgg19", 1000, 2.0);
    EXPECT_FALSE(estimator.has_history(other_user));
    EXPECT_FALSE(estimator.has_history(other_model));
    EXPECT_EQ(estimator.tracked_keys(), 1u);
}

TEST(RuntimeEstimator, EmaTracksDrift)
{
    RuntimeEstimator estimator(1.0, /*ema_alpha=*/0.5);
    estimator.observe(completed_job(1, "alice", "resnet50", 100, 1.0));
    estimator.observe(completed_job(2, "alice", "resnet50", 100, 3.0));
    const auto next = completed_job(3, "alice", "resnet50", 100, 1.0);
    // EMA: 0.5*3 + 0.5*1 = 2 s/iter.
    EXPECT_NEAR(estimator.predict(next).to_seconds(), 200.0, 0.5);
}

TEST(RuntimeEstimator, IgnoresNonCompletedJobs)
{
    RuntimeEstimator estimator;
    workload::TaskSpec spec;
    spec.name = "k";
    spec.user = "alice";
    spec.group = "g";
    spec.gpus = 1;
    spec.model = "resnet50";
    spec.iterations = 100;
    auto profile = workload::ModelCatalog::instance().find(spec.model);
    workload::Job job(9, spec, profile.value(), TimePoint::origin());
    ASSERT_TRUE(job.kill(TimePoint::origin()).is_ok());
    estimator.observe(job);
    EXPECT_EQ(estimator.observations(), 0u);
}

class PredictiveSchedulers : public testing::SchedFixture
{
};

TEST_F(PredictiveSchedulers, SjfPredReordersByHistory)
{
    // Two 1-GPU jobs compete for one free GPU. By user limits, A looks
    // shorter; by learned history (same user+model rate, far fewer
    // iterations), B is actually shorter.
    add_running({.gpus = 15}, now_ + 1000_s);
    auto *a = add_pending({.gpus = 1, .time_limit = 1_h,
                           .iterations = 100000});
    auto *b = add_pending({.gpus = 1, .time_limit = 10_h, .group = "g",
                           .iterations = 10, .submit = now_ + 1_s});

    RuntimeEstimator estimator(1.0);
    // History: B's user+model pair completes at 0.001 s/iter.
    {
        workload::TaskSpec s = b->spec();
        s.name = "hist";
        auto profile =
            workload::ModelCatalog::instance().find(s.model);
        workload::Job hist(99, s, profile.value(), TimePoint::origin());
        EXPECT_TRUE(hist.begin_provisioning(TimePoint::origin()).is_ok());
        EXPECT_TRUE(hist.finish_provisioning(TimePoint::origin()).is_ok());
        EXPECT_TRUE(
            hist.begin_segment(TimePoint::origin(), 1, 0.001).is_ok());
        EXPECT_TRUE(hist.complete(TimePoint::origin() + 1_s).is_ok());
        estimator.observe(hist);
    }

    auto context = ctx();
    context.estimator = &estimator;

    SjfScheduler plain(false);
    EXPECT_EQ(started(plain.schedule(context)),
              (std::vector<cluster::JobId>{a->id()}));

    SjfScheduler predictive(true);
    EXPECT_EQ(started(predictive.schedule(context)),
              (std::vector<cluster::JobId>{b->id()}));
}

TEST_F(PredictiveSchedulers, BackfillPredAdmitsMoreWithTightBounds)
{
    // 4 GPUs free until a 12-GPU job releases at t+100 s; the head needs
    // 16. A 4-GPU candidate claims a 5000 s limit but history says its
    // jobs finish in ~50 s: plain backfill refuses, predictive admits.
    add_running({.gpus = 12}, now_ + 100_s);
    add_pending({.gpus = 16, .time_limit = 1000_s});
    auto *candidate = add_pending({.gpus = 4, .time_limit = 5000_s,
                                   .iterations = 50});

    RuntimeEstimator estimator(1.0);
    {
        workload::TaskSpec s = candidate->spec();
        s.name = "hist";
        auto profile =
            workload::ModelCatalog::instance().find(s.model);
        workload::Job hist(99, s, profile.value(), TimePoint::origin());
        EXPECT_TRUE(hist.begin_provisioning(TimePoint::origin()).is_ok());
        EXPECT_TRUE(hist.finish_provisioning(TimePoint::origin()).is_ok());
        EXPECT_TRUE(
            hist.begin_segment(TimePoint::origin(), 4, 1.0).is_ok());
        EXPECT_TRUE(hist.complete(TimePoint::origin() + 50_s).is_ok());
        estimator.observe(hist);
    }

    auto context = ctx();
    context.estimator = &estimator;

    BackfillScheduler plain(false, false);
    EXPECT_TRUE(plain.schedule(context).starts.empty());

    BackfillScheduler predictive(false, true);
    EXPECT_EQ(started(predictive.schedule(context)),
              (std::vector<cluster::JobId>{candidate->id()}));
}

} // namespace
} // namespace tacc::sched
