/**
 * @file
 * Tests for the fault-domain subsystem: the node health state machine,
 * FreeView health masking, the fault injector's deterministic chains and
 * self-healing lifecycle, operator verbs (cordon/drain/uncordon/health),
 * the flaky-node scoreboard, order-independent failure sampling, the
 * sweep fault axis, and the ops layer's no-perturbation guarantee under
 * a fault storm.
 */
#include <gtest/gtest.h>

#include "cluster/health.h"
#include "core/fault_domain.h"
#include "core/scenario.h"
#include "core/stack.h"
#include "driver/sweep.h"
#include "exec/failure.h"
#include "sched/free_view.h"
#include "sched/placement.h"
#include "tcloud/client.h"
#include "workload/model.h"

namespace tacc {
namespace {

using namespace time_literals;
using cluster::NodeHealth;
using cluster::NodeId;

core::StackConfig
small_config()
{
    core::StackConfig config;
    config.cluster.topology.racks = 2;
    config.cluster.topology.nodes_per_rack = 2;
    config.cluster.node.gpu_count = 4;
    config.scheduler = "fairshare";
    config.placement = "pack";
    config.emit_monitor_logs = false;
    return config;
}

workload::TaskSpec
spec(const std::string &name, int gpus, int64_t iterations)
{
    workload::TaskSpec s;
    s.name = name;
    s.user = "u";
    s.group = "g";
    s.gpus = gpus;
    s.model = "resnet50";
    s.iterations = iterations;
    return s;
}

TEST(FaultHealth, TrackerTransitionsAndCounts)
{
    cluster::NodeHealthTracker tracker(4);
    EXPECT_TRUE(tracker.all_healthy());
    EXPECT_EQ(tracker.schedulable_count(), 4);
    EXPECT_EQ(tracker.count(NodeHealth::kHealthy), 4);

    const uint64_t e1 = tracker.set_state(1, NodeHealth::kDegraded);
    EXPECT_FALSE(tracker.all_healthy()); // Degraded counts as unhealthy
    EXPECT_TRUE(tracker.schedulable(1)); // but stays schedulable
    EXPECT_EQ(tracker.schedulable_count(), 4);

    const uint64_t e2 = tracker.set_state(1, NodeHealth::kDown);
    EXPECT_GT(e2, e1); // every transition bumps the epoch
    EXPECT_FALSE(tracker.schedulable(1));
    EXPECT_EQ(tracker.schedulable_count(), 3);
    EXPECT_EQ(tracker.count(NodeHealth::kDown), 1);

    tracker.set_state(1, NodeHealth::kRepairing);
    EXPECT_FALSE(tracker.schedulable(1));
    tracker.set_state(1, NodeHealth::kHealthy);
    EXPECT_TRUE(tracker.all_healthy());
    EXPECT_EQ(tracker.schedulable_count(), 4);
}

TEST(FaultHealth, FreeViewMasksUnschedulableNodes)
{
    cluster::ClusterConfig config;
    config.topology.racks = 1;
    config.topology.nodes_per_rack = 4;
    config.node.gpu_count = 4;
    cluster::Cluster cluster(config);

    sched::FreeView view(cluster);
    EXPECT_EQ(view.total_free(), 16);
    EXPECT_TRUE(view.schedulable(2));

    cluster.health().set_state(2, NodeHealth::kCordoned);
    view.reset(cluster);
    EXPECT_EQ(view.total_free(), 12);
    EXPECT_EQ(view.free(2), 0);
    EXPECT_FALSE(view.schedulable(2));
    EXPECT_TRUE(view.schedulable(1));

    // Degraded-only stays on the fast path: nothing is masked.
    cluster.health().set_state(2, NodeHealth::kHealthy);
    cluster.health().set_state(3, NodeHealth::kDegraded);
    view.reset(cluster);
    EXPECT_EQ(view.total_free(), 16);
    EXPECT_TRUE(view.schedulable(3));
}

TEST(FaultHealth, FreeViewGiveSkipsMaskedNodes)
{
    cluster::ClusterConfig config;
    config.topology.racks = 1;
    config.topology.nodes_per_rack = 2;
    config.node.gpu_count = 4;
    cluster::Cluster cluster(config);
    cluster::Placement p;
    p.slices.push_back({0, {0, 1}});
    ASSERT_TRUE(cluster.allocate(1, p).is_ok());

    cluster.health().set_state(0, NodeHealth::kDraining);
    sched::FreeView view(cluster);
    EXPECT_EQ(view.free(0), 0);
    // A planned preemption of the resident gang must not re-expose the
    // draining node's capacity to the same decision.
    view.give(cluster.placement_of(1));
    EXPECT_EQ(view.free(0), 0);
    EXPECT_EQ(view.total_free(), 4);
}

TEST(FaultInjector, ScriptedOutageKillsAndSelfHeals)
{
    core::StackConfig config = small_config();
    config.faults.enabled = true;
    config.faults.detection_delay_s = 30.0;
    config.faults.scripted.push_back({600.0, 0, 1800.0});

    core::TaccStack stack(config);
    // Fill the cluster with long jobs so rack 0 has residents at t=600s.
    std::vector<cluster::JobId> ids;
    for (int i = 0; i < 4; ++i) {
        auto id = stack.submit(spec("j" + std::to_string(i), 4, 2000000));
        ASSERT_TRUE(id.is_ok());
        ids.push_back(id.value());
    }
    stack.run_until(TimePoint::origin() + 5_min);
    ASSERT_EQ(stack.running_count(), 4u);

    stack.run_until(TimePoint::origin() + 11_min);
    // Both nodes of rack 0 went Down and their gangs died.
    EXPECT_EQ(stack.metrics().node_faults(), 2u);
    EXPECT_EQ(stack.cluster().health().count(NodeHealth::kHealthy), 2);
    EXPECT_GT(stack.metrics().fault_lost_gpu_seconds(), 0.0);
    EXPECT_EQ(stack.fault_injector().rack_outages(), 1u);

    // After the outage window the nodes self-heal and work resumes.
    ASSERT_TRUE(stack.run_to_completion());
    EXPECT_EQ(stack.fault_injector().repairs(), 2u);
    EXPECT_TRUE(stack.cluster().health().all_healthy());
    for (cluster::JobId id : ids) {
        EXPECT_EQ(stack.find_job(id)->state(),
                  workload::JobState::kCompleted);
    }
}

TEST(FaultInjector, OverlappingOutagesExtendDowntime)
{
    core::StackConfig config = small_config();
    config.faults.enabled = true;
    config.faults.detection_delay_s = 10.0;
    // Second outage lands while the first is still repairing.
    config.faults.scripted.push_back({100.0, 0, 600.0});
    config.faults.scripted.push_back({400.0, 0, 600.0});

    core::TaccStack stack(config);
    stack.run_until(TimePoint::origin() + Duration::from_seconds(750));
    // The first repair (due t=700) went stale; nodes are still out.
    EXPECT_FALSE(stack.cluster().health().schedulable(0));
    stack.run_until(TimePoint::origin() + Duration::from_seconds(1100));
    EXPECT_TRUE(stack.cluster().health().all_healthy());
    EXPECT_EQ(stack.fault_injector().repairs(), 2u);
}

TEST(FaultInjector, StormRunsAreDeterministic)
{
    auto run = [] {
        core::ScenarioConfig config;
        config.stack = small_config();
        config.stack.exec.failure.node_mtbf_hours = 100.0;
        config.stack.exec.failure.requeue_backoff_base_s = 5.0;
        config.stack.faults.enabled = true;
        config.stack.faults.node_crash_mtbf_hours = 50.0;
        config.stack.faults.node_degrade_mtbf_hours = 80.0;
        config.stack.faults.rack_outage_mtbf_hours = 200.0;
        config.stack.faults.pdu_outage_mtbf_hours = 400.0;
        config.trace.num_jobs = 30;
        config.trace.seed = 5;
        config.trace.mean_interarrival_s = 60.0;
        return core::run_scenario(config);
    };
    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.records.size(), b.records.size());
    for (size_t i = 0; i < a.records.size(); ++i) {
        SCOPED_TRACE("record " + std::to_string(i));
        EXPECT_EQ(a.records[i].id, b.records[i].id);
        EXPECT_EQ(a.records[i].final_state, b.records[i].final_state);
        EXPECT_EQ(a.records[i].finished, b.records[i].finished);
        EXPECT_EQ(a.records[i].gpu_seconds, b.records[i].gpu_seconds);
        EXPECT_EQ(a.records[i].placement_digest,
                  b.records[i].placement_digest);
    }
    EXPECT_EQ(a.node_faults, b.node_faults);
    EXPECT_EQ(a.fault_lost_gpu_hours, b.fault_lost_gpu_hours);
    EXPECT_EQ(a.mean_requeue_latency_s, b.mean_requeue_latency_s);
    // The storm actually did something.
    EXPECT_GT(a.node_faults, 0u);
}

TEST(FaultOps, CordonDrainUncordonLifecycle)
{
    core::TaccStack stack(small_config());
    auto id = stack.submit(spec("resident", 4, 2000000));
    ASSERT_TRUE(id.is_ok());
    stack.run_until(TimePoint::origin() + 1_min);
    ASSERT_EQ(stack.running_count(), 1u);
    const auto placed = stack.cluster().placement_of(id.value());
    ASSERT_EQ(placed.slices.size(), 1u);
    const NodeId node = placed.slices[0].node;

    // Cordon: the resident keeps running, no new work lands.
    ASSERT_TRUE(stack.cordon_node(int(node)).is_ok());
    EXPECT_EQ(stack.cluster().health().state(node),
              NodeHealth::kCordoned);
    EXPECT_EQ(stack.running_count(), 1u);
    EXPECT_FALSE(stack.cordon_node(int(node)).is_ok()); // already held
    EXPECT_FALSE(stack.cordon_node(99).is_ok());        // no such node

    // Drain: the resident is gracefully requeued and — with three other
    // healthy nodes free — immediately restarts off the drained node.
    ASSERT_TRUE(stack.drain_node(int(node)).is_ok());
    EXPECT_EQ(stack.cluster().health().state(node),
              NodeHealth::kDraining);
    EXPECT_EQ(stack.cluster().node(node).free_gpu_count(), 4);
    ASSERT_EQ(stack.running_count(), 1u);
    const auto moved = stack.cluster().placement_of(id.value());
    ASSERT_EQ(moved.slices.size(), 1u);
    EXPECT_NE(moved.slices[0].node, node);
    EXPECT_EQ(stack.find_job(id.value())->preemption_count(), 1);

    // Uncordon: the node serves again and the job finishes on it.
    ASSERT_TRUE(stack.uncordon_node(int(node)).is_ok());
    EXPECT_TRUE(stack.cluster().health().all_healthy());
    ASSERT_TRUE(stack.run_to_completion());
    EXPECT_EQ(stack.find_job(id.value())->state(),
              workload::JobState::kCompleted);

    const std::string report = stack.health_report();
    EXPECT_NE(report.find("4 healthy"), std::string::npos);
    EXPECT_NE(report.find("schedulable GPUs: 16/16"), std::string::npos);
}

TEST(FaultOps, CordonedNodeGetsNoNewPlacements)
{
    core::StackConfig config = small_config();
    core::TaccStack stack(config);
    ASSERT_TRUE(stack.cordon_node(0).is_ok());
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(stack.submit(spec("j" + std::to_string(i), 4,
                                      50000)).is_ok());
    ASSERT_TRUE(stack.run_to_completion());
    EXPECT_EQ(stack.cluster().node(0).free_gpu_count(), 4);
    for (const auto *job : stack.jobs())
        EXPECT_EQ(job->state(), workload::JobState::kCompleted);
}

TEST(FaultOps, TcloudVerbsRoundTrip)
{
    core::TaccStack stack(small_config());
    tcloud::Client client;
    ASSERT_TRUE(client.add_cluster("campus", &stack).is_ok());

    ASSERT_TRUE(client.cordon(1).is_ok());
    ASSERT_TRUE(client.drain_node(1).is_ok());
    ASSERT_TRUE(client.uncordon(1).is_ok());
    EXPECT_FALSE(client.uncordon(1).is_ok()); // already healthy
    EXPECT_FALSE(client.cordon(1, "nope").is_ok());

    auto health = client.health();
    ASSERT_TRUE(health.is_ok());
    EXPECT_NE(health.value().find("node health"), std::string::npos);
}

TEST(FaultScoreboard, FlakyNodesAreVetoedUntilStrikesAge)
{
    sim::Simulator sim;
    cluster::ClusterConfig cc;
    cc.topology.racks = 1;
    cc.topology.nodes_per_rack = 4;
    cluster::Cluster cluster(cc);
    core::FaultDomainConfig config;
    config.flaky_strike_threshold = 2;
    config.flaky_window_hours = 1.0;
    core::FaultInjector injector(sim, cluster, config, 1, {});

    std::vector<uint8_t> mask;
    EXPECT_FALSE(injector.build_node_filter(sim.now(), mask));

    const TimePoint t0 = TimePoint::origin();
    injector.record_strike(2, t0);
    EXPECT_FALSE(injector.build_node_filter(t0, mask)); // one strike
    injector.record_strike(2, t0 + 10_min);
    ASSERT_TRUE(injector.build_node_filter(t0 + 10_min, mask));
    EXPECT_EQ(mask[2], 0);
    EXPECT_EQ(mask[0], 1);

    // The first strike ages out of the 1 h window; the veto lifts.
    EXPECT_FALSE(injector.build_node_filter(t0 + 90_min, mask));
}

TEST(FaultScoreboard, RepeatCrasherAvoidedByScheduler)
{
    core::StackConfig config = small_config();
    core::TaccStack stack(config);
    // Two recent strikes against node 3: placements must avoid it.
    auto &injector =
        const_cast<core::FaultInjector &>(stack.fault_injector());
    injector.record_strike(3, stack.simulator().now());
    injector.record_strike(3, stack.simulator().now());

    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(stack.submit(spec("j" + std::to_string(i), 4,
                                      50000)).is_ok());
    stack.run_until(TimePoint::origin() + 1_min);
    EXPECT_EQ(stack.running_count(), 3u);
    EXPECT_EQ(stack.cluster().node(3).free_gpu_count(), 4);
    ASSERT_TRUE(stack.run_to_completion());
}

TEST(FaultModel, SamplingIsOrderIndependent)
{
    // Permutation property: the failure times a job draws depend only on
    // (seed, job id, draw index) — never on how jobs interleave.
    exec::FailureConfig config;
    config.node_mtbf_hours = 50.0;
    auto profile =
        workload::ModelCatalog::instance().find("resnet50").value();
    std::vector<workload::Job> jobs;
    for (cluster::JobId id = 1; id <= 6; ++id) {
        jobs.emplace_back(id, spec("p" + std::to_string(id), 2, 1000),
                          profile, TimePoint::origin());
    }
    cluster::Placement p;
    p.slices.push_back({0, {0, 1}});
    const auto horizon = Duration::hours(10000);

    // Forward order, three draws per job.
    exec::FailureModel forward(config, 9);
    std::vector<std::vector<std::optional<Duration>>> draws_fwd(
        jobs.size());
    for (int round = 0; round < 3; ++round) {
        for (size_t j = 0; j < jobs.size(); ++j) {
            draws_fwd[j].push_back(forward.sample_segment_failure(
                jobs[j], p, compiler::RuntimeKind::kContainer, horizon));
        }
    }
    // Reverse interleaving over a fresh model with the same seed.
    exec::FailureModel reverse(config, 9);
    std::vector<std::vector<std::optional<Duration>>> draws_rev(
        jobs.size());
    for (int round = 0; round < 3; ++round) {
        for (size_t j = jobs.size(); j-- > 0;) {
            draws_rev[j].push_back(reverse.sample_segment_failure(
                jobs[j], p, compiler::RuntimeKind::kContainer, horizon));
        }
    }
    EXPECT_EQ(draws_fwd, draws_rev);
    // And distinct jobs draw distinct streams.
    EXPECT_NE(draws_fwd[0], draws_fwd[1]);
}

TEST(FaultPlacement, AntiAffinitySpreadsAcrossRacks)
{
    cluster::ClusterConfig cc;
    cc.topology.racks = 4;
    cc.topology.nodes_per_rack = 2;
    cc.node.gpu_count = 4;
    cluster::Cluster cluster(cc);
    sched::FreeView view(cluster);
    auto policy = sched::make_placement_policy("antiaffinity");
    ASSERT_NE(policy, nullptr);

    // A single-node fit stays on one node (one node = one fault domain).
    auto single = policy->plan(view, cluster.topology(), 4, 4);
    ASSERT_TRUE(single.is_ok());
    EXPECT_EQ(single.value().slices.size(), 1u);

    // A 16-GPU gang must span nodes: every rack contributes, so one
    // rack outage can never take out the whole gang.
    auto spread = policy->plan(view, cluster.topology(), 16, 4);
    ASSERT_TRUE(spread.is_ok());
    std::set<int> racks;
    int total = 0;
    for (const auto &slice : spread.value().slices) {
        racks.insert(int(slice.node) / cc.topology.nodes_per_rack);
        total += int(slice.gpu_indices.size());
    }
    EXPECT_EQ(total, 16);
    EXPECT_EQ(racks.size(), 4u);
}

TEST(FaultSweep, FaultModeAxisParsesAndExpands)
{
    auto spec = driver::parse_sweep_spec("schedulers: fairshare\n"
                                         "placements: pack\n"
                                         "loads: 1.0\n"
                                         "seeds: 1,2\n"
                                         "fault_modes: none,storm\n");
    ASSERT_TRUE(spec.is_ok());
    EXPECT_EQ(spec.value().grid_size(), 4u);
    const auto scenarios = driver::expand_sweep(spec.value());
    ASSERT_EQ(scenarios.size(), 4u);
    // "none" scenarios keep unsuffixed names and disabled injection, and
    // come first (the fault axis is outermost).
    EXPECT_EQ(scenarios[0].name, "fairshare/pack/graceful/x1/s1");
    EXPECT_FALSE(scenarios[0].config.stack.faults.enabled);
    EXPECT_EQ(scenarios[2].name, "fairshare/pack/graceful/x1/s1+storm");
    EXPECT_TRUE(scenarios[2].config.stack.faults.enabled);
    EXPECT_GT(scenarios[2].config.stack.faults.node_crash_mtbf_hours, 0);
    EXPECT_GT(scenarios[2].config.stack.exec.failure.node_mtbf_hours, 0);

    EXPECT_FALSE(driver::parse_sweep_spec("fault_modes: tsunami\n")
                     .is_ok());
    auto mtbf = driver::parse_sweep_spec("node_mtbf_hours: 250\n");
    ASSERT_TRUE(mtbf.is_ok());
    EXPECT_DOUBLE_EQ(
        mtbf.value().base.stack.exec.failure.node_mtbf_hours, 250.0);
}

// The ops layer stays strictly observational even under a fault storm:
// replaying the same hostile workload with telemetry (and the health
// collectors) on and off must produce byte-identical job records.
TEST(FaultOps, TelemetryDoesNotPerturbFaultyRuns)
{
    auto run = [](bool ops_on) {
        core::ScenarioConfig config;
        config.stack = small_config();
        config.stack.ops.enabled = ops_on;
        config.stack.exec.failure.node_mtbf_hours = 100.0;
        config.stack.exec.failure.requeue_backoff_base_s = 5.0;
        config.stack.faults.enabled = true;
        config.stack.faults.node_crash_mtbf_hours = 50.0;
        config.stack.faults.rack_outage_mtbf_hours = 300.0;
        config.trace.num_jobs = 25;
        config.trace.seed = 7;
        config.trace.mean_interarrival_s = 60.0;
        return core::run_scenario(config);
    };
    const auto with_ops = run(true);
    const auto without_ops = run(false);
    ASSERT_EQ(with_ops.records.size(), without_ops.records.size());
    for (size_t i = 0; i < with_ops.records.size(); ++i) {
        SCOPED_TRACE("record " + std::to_string(i));
        EXPECT_EQ(with_ops.records[i].id, without_ops.records[i].id);
        EXPECT_EQ(with_ops.records[i].final_state,
                  without_ops.records[i].final_state);
        EXPECT_EQ(with_ops.records[i].finished,
                  without_ops.records[i].finished);
        EXPECT_EQ(with_ops.records[i].gpu_seconds,
                  without_ops.records[i].gpu_seconds);
        EXPECT_EQ(with_ops.records[i].placement_digest,
                  without_ops.records[i].placement_digest);
    }
    EXPECT_EQ(with_ops.node_faults, without_ops.node_faults);
}

} // namespace
} // namespace tacc
