/**
 * @file
 * Unit tests for the statistics accumulators.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace tacc {
namespace {

using namespace time_literals;

TEST(RunningStats, Empty)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Samples, PercentileInterpolation)
{
    Samples s;
    for (double x : {10.0, 20.0, 30.0, 40.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
    EXPECT_DOUBLE_EQ(s.median(), 25.0);
}

TEST(Samples, SingleElement)
{
    Samples s;
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.percentile(1), 7.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 7.0);
}

TEST(Samples, PercentileAfterInterleavedAdds)
{
    Samples s;
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
    s.add(1.0); // cache must invalidate
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(Samples, CdfMonotone)
{
    Samples s;
    for (int i = 100; i >= 1; --i)
        s.add(double(i));
    const auto cdf = s.cdf(10);
    ASSERT_EQ(cdf.size(), 10u);
    for (size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i].first, cdf[i - 1].first);
        EXPECT_GT(cdf[i].second, cdf[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
    EXPECT_DOUBLE_EQ(cdf.back().first, 100.0);
}

TEST(Samples, DurationHelper)
{
    Samples s;
    s.add_duration(90_s);
    EXPECT_DOUBLE_EQ(s.mean(), 90.0);
}

TEST(Histogram, BinningAndOutliers)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bin 0
    h.add(9.99);  // bin 4
    h.add(-3.0);  // clamped to bin 0
    h.add(42.0);  // clamped to bin 4
    EXPECT_EQ(h.bin(0), 2u);
    EXPECT_EQ(h.bin(4), 2u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
    EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(TimeWeightedStat, PiecewiseAverage)
{
    TimeWeightedStat s(0.0);
    s.set(TimePoint::origin() + 10_s, 4.0);
    s.set(TimePoint::origin() + 20_s, 8.0);
    // [0,10): 0; [10,20): 4; [20,30): 8 -> mean over [0,30) = 4.0
    EXPECT_DOUBLE_EQ(
        s.average(TimePoint::origin(), TimePoint::origin() + 30_s), 4.0);
    // Window fully inside one segment.
    EXPECT_DOUBLE_EQ(s.average(TimePoint::origin() + 12_s,
                               TimePoint::origin() + 18_s),
                     4.0);
}

TEST(TimeWeightedStat, AddDelta)
{
    TimeWeightedStat s(2.0);
    s.add(TimePoint::origin() + 5_s, 3.0);
    EXPECT_DOUBLE_EQ(s.current(), 5.0);
    s.add(TimePoint::origin() + 5_s, -1.0); // same-instant update
    EXPECT_DOUBLE_EQ(s.current(), 4.0);
}

TEST(TimeWeightedStat, BucketAverages)
{
    TimeWeightedStat s(0.0);
    s.set(TimePoint::origin() + 10_s, 10.0);
    const auto buckets = s.bucket_averages(
        TimePoint::origin(), TimePoint::origin() + 20_s, 10_s);
    ASSERT_EQ(buckets.size(), 2u);
    EXPECT_DOUBLE_EQ(buckets[0], 0.0);
    EXPECT_DOUBLE_EQ(buckets[1], 10.0);
}

TEST(QuantileSketch, ExactMomentsApproximatePercentiles)
{
    QuantileSketch sketch;
    Samples exact;
    // Log-normal-ish spread across several octaves.
    for (int i = 1; i <= 10000; ++i) {
        const double x = 0.001 * double(i) * double(i);
        sketch.add(x);
        exact.add(x);
    }
    EXPECT_EQ(sketch.count(), 10000u);
    // Welford mean vs sum/count differ only in rounding.
    EXPECT_NEAR(sketch.mean(), exact.mean(), 1e-9 * exact.mean());
    EXPECT_DOUBLE_EQ(sketch.sum(), exact.sum());
    EXPECT_DOUBLE_EQ(sketch.min(), 0.001);
    EXPECT_DOUBLE_EQ(sketch.max(), 100000.0);
    // 8 sub-buckets per octave -> worst-case relative error
    // 2^(1/8)-1 ~ 9%.
    for (double p : {10.0, 50.0, 90.0, 99.0}) {
        EXPECT_NEAR(sketch.percentile(p), exact.percentile(p),
                    0.1 * exact.percentile(p))
            << "p" << p;
    }
}

TEST(QuantileSketch, ZerosAndEmpty)
{
    QuantileSketch sketch;
    EXPECT_TRUE(sketch.empty());
    EXPECT_DOUBLE_EQ(sketch.percentile(50), 0.0);
    for (int i = 0; i < 10; ++i)
        sketch.add(0.0);
    sketch.add(4.0);
    EXPECT_DOUBLE_EQ(sketch.percentile(50), 0.0);
    // Closest-rank: p99 of 11 samples is still rank 10 (a zero); only
    // the max rank reaches the lone non-zero.
    EXPECT_DOUBLE_EQ(sketch.percentile(99), 0.0);
    EXPECT_DOUBLE_EQ(sketch.percentile(100), 4.0);
}

TEST(BoundedTimeWeighted, MatchesExactIntegralOnBucketEdges)
{
    // A step signal whose change points land on bucket edges integrates
    // exactly in both accumulators.
    TimeWeightedStat exact(0.0);
    BoundedTimeWeighted bounded(0.0, 1_h);
    const auto t0 = TimePoint::origin();
    for (int h = 0; h < 12; ++h) {
        const double v = double(h % 4);
        exact.set(t0 + Duration::hours(h), v);
        bounded.set(t0 + Duration::hours(h), v);
    }
    const auto end = t0 + Duration::hours(12);
    EXPECT_DOUBLE_EQ(bounded.average_to(end), exact.average(t0, end));
}

TEST(BoundedTimeWeighted, MarkSnapshotsArrivalWindow)
{
    BoundedTimeWeighted stat(0.0, 1_h);
    const auto t0 = TimePoint::origin();
    EXPECT_DOUBLE_EQ(stat.average_to_mark(), 0.0); // before any mark
    stat.set(t0, 2.0);
    stat.mark(t0 + 4_h);
    // Signal keeps changing after the mark; the window average must not.
    stat.set(t0 + 6_h, 100.0);
    EXPECT_DOUBLE_EQ(stat.average_to_mark(), 2.0);
    EXPECT_EQ(stat.mark_time(), t0 + 4_h);
    // A later mark supersedes the earlier one.
    stat.mark(t0 + 8_h);
    EXPECT_DOUBLE_EQ(stat.average_to_mark(), (2.0 * 6 + 100.0 * 2) / 8);
}

TEST(Fairness, JainExtremes)
{
    EXPECT_DOUBLE_EQ(jain_fairness({5, 5, 5, 5}), 1.0);
    // One user hogging everything among n users -> 1/n.
    EXPECT_NEAR(jain_fairness({10, 0, 0, 0}), 0.25, 1e-12);
    EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
    EXPECT_DOUBLE_EQ(jain_fairness({0, 0}), 1.0);
}

TEST(Fairness, GiniExtremes)
{
    EXPECT_DOUBLE_EQ(gini({5, 5, 5, 5}), 0.0);
    EXPECT_NEAR(gini({0, 0, 0, 10}), 0.75, 1e-12);
    EXPECT_DOUBLE_EQ(gini({7}), 0.0);
}

} // namespace
} // namespace tacc
