/**
 * @file
 * Tests for the operator-facing ops surface: the no-perturbation
 * guarantee (telemetry must not change scheduling), accounting
 * reconciliation against the metrics ledger, and golden-output tests
 * for the `tcloud report` / `tcloud accounting` verbs over a fixed
 * deterministic scenario.
 */
#include <gtest/gtest.h>

#include "core/stack.h"
#include "ops/report.h"
#include "tcloud/client.h"

namespace tacc {
namespace {

using namespace time_literals;

core::StackConfig
base_config()
{
    core::StackConfig config;
    config.cluster.topology.racks = 1;
    config.cluster.topology.nodes_per_rack = 2;
    config.cluster.node.gpu_count = 8;
    config.scheduler = "fairshare";
    config.placement = "pack";
    return config;
}

workload::TaskSpec
spec(const std::string &name, const std::string &group, int gpus,
     int64_t iterations)
{
    workload::TaskSpec s;
    s.name = name;
    s.user = "alice";
    s.group = group;
    s.gpus = gpus;
    s.model = "resnet50";
    s.iterations = iterations;
    return s;
}

/** Drives a deterministic two-wave, two-group scenario to completion. */
void
run_scenario(core::TaccStack &stack)
{
    const char *groups[2] = {"lab", "vision"};
    const int gpus[4] = {1, 2, 4, 8};
    for (int i = 0; i < 12; ++i) {
        auto id = stack.submit(spec("a" + std::to_string(i),
                                    groups[i % 2], gpus[i % 4],
                                    20000 + 6000 * (i % 5)));
        ASSERT_TRUE(id.is_ok());
    }
    stack.run_until(TimePoint::origin() + 10_min);
    for (int i = 0; i < 12; ++i) {
        auto id = stack.submit(spec("b" + std::to_string(i),
                                    groups[(i + 1) % 2], gpus[i % 4],
                                    15000 + 4000 * (i % 7)));
        ASSERT_TRUE(id.is_ok());
    }
    ASSERT_TRUE(stack.run_to_completion());
}

TEST(OpsReport, FormatDayTime)
{
    EXPECT_EQ(ops::format_day_time(TimePoint::origin()), "d0 00:00");
    EXPECT_EQ(ops::format_day_time(TimePoint::origin() + 14_h + 30_min),
              "d0 14:30");
    EXPECT_EQ(ops::format_day_time(TimePoint::origin() +
                                   Duration::days(2) + 9_h + 5_min),
              "d2 09:05");
}

// The operations layer is strictly observational: replaying the same
// workload with telemetry on and off must produce byte-identical job
// records — the sampling events may interleave with scheduling events
// but never change a decision.
TEST(OpsReport, TelemetryDoesNotPerturbScheduling)
{
    core::StackConfig with_ops = base_config();
    with_ops.ops.enabled = true;
    core::StackConfig without_ops = base_config();
    without_ops.ops.enabled = false;

    core::TaccStack a(with_ops);
    core::TaccStack b(without_ops);
    run_scenario(a);
    run_scenario(b);
    ASSERT_NE(a.ops(), nullptr);
    EXPECT_EQ(b.ops(), nullptr);
    EXPECT_GT(a.ops()->samples_taken(), 0u);

    const auto &ra = a.metrics().records();
    const auto &rb = b.metrics().records();
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) {
        SCOPED_TRACE("record " + std::to_string(i));
        EXPECT_EQ(ra[i].id, rb[i].id);
        EXPECT_EQ(ra[i].group, rb[i].group);
        EXPECT_EQ(ra[i].final_state, rb[i].final_state);
        EXPECT_EQ(ra[i].submitted, rb[i].submitted);
        EXPECT_EQ(ra[i].finished, rb[i].finished);
        EXPECT_EQ(ra[i].wait_s, rb[i].wait_s);
        EXPECT_EQ(ra[i].jct_s, rb[i].jct_s);
        EXPECT_EQ(ra[i].gpu_seconds, rb[i].gpu_seconds);
        EXPECT_EQ(ra[i].preemptions, rb[i].preemptions);
        EXPECT_EQ(ra[i].segments, rb[i].segments);
    }
}

// The accounting ledger must reconcile with the metrics records it is
// derived from: same job count, GPU-hours within 0.1%.
TEST(OpsReport, AccountingReconcilesWithMetrics)
{
    core::TaccStack stack(base_config());
    run_scenario(stack);
    ASSERT_NE(stack.ops(), nullptr);

    const auto &ledger = stack.ops()->accounting();
    const auto &records = stack.metrics().records();
    EXPECT_EQ(ledger.event_count(), records.size());

    double metric_gpu_hours = 0;
    for (const auto &rec : records)
        metric_gpu_hours += rec.gpu_seconds / 3600.0;
    ASSERT_GT(metric_gpu_hours, 0.0);
    const double rel_err =
        std::abs(ledger.total_gpu_hours() - metric_gpu_hours) /
        metric_gpu_hours;
    EXPECT_LT(rel_err, 0.001);
}

const char kOperatorReportGolden[] = R"GOLD(== operations report: cluster 'campus' at d0 00:22 ==
GPUs 0/16 in use, 0 running, 0 pending; 24 completed, 0 failed, 0 preemption(s)
queueing: mean 2.8 min, p99 7.5 min
compiler cache savings: 0.0%
last 24h: util mean 86.5% p95 100.0%, queue mean 2.8 p95 7
alerts: 0 active, 0 incident(s) total
== alert incidents ==
alert   severity  fired  resolved  duration  peak
-------------------------------------------------
(none)                                           
== per-group usage (all time) ==
period  group   jobs  done  fail  kill  GPUh  queue-h  preempt  loss-GPUh  fault-GPUh  misses
---------------------------------------------------------------------------------------------
total   lab       12    12     0     0   2.4      0.5        0        0.0         0.0       0
total   vision    12    12     0     0   2.9      0.6        0        0.0         0.0       0
)GOLD";

const char kAccountingGolden[] = R"GOLD(== accounting statement: group 'lab' ==
period            group  jobs  done  fail  kill  GPUh  queue-h  preempt  loss-GPUh  fault-GPUh  misses
------------------------------------------------------------------------------------------------------
month 0 (d0-d29)  lab      12    12     0     0   2.4      0.5        0        0.0         0.0       0
total             lab      12    12     0     0   2.4      0.5        0        0.0         0.0       0
)GOLD";

/** The fixed-seed scenario behind both golden-output tests. */
class GoldenScenario
{
  public:
    GoldenScenario()
    {
        core::StackConfig config = base_config();
        config.cluster.name = "campus";
        stack_ = std::make_unique<core::TaccStack>(config);
        EXPECT_TRUE(client_.add_cluster("campus", stack_.get()).is_ok());
        run_scenario(*stack_);
    }

    tcloud::Client client_;
    std::unique_ptr<core::TaccStack> stack_;
};

TEST(OpsReport, OperatorReportGolden)
{
    GoldenScenario scenario;
    auto report = scenario.client_.operator_report();
    ASSERT_TRUE(report.is_ok());
    EXPECT_EQ(report.value(), kOperatorReportGolden);
}

TEST(OpsReport, AccountingGolden)
{
    GoldenScenario scenario;
    auto statement = scenario.client_.accounting("lab");
    ASSERT_TRUE(statement.is_ok());
    EXPECT_EQ(statement.value(), kAccountingGolden);

    // Unknown group: a friendly empty statement, not an error.
    auto empty = scenario.client_.accounting("nobody");
    ASSERT_TRUE(empty.is_ok());
    EXPECT_NE(empty.value().find("no usage recorded"), std::string::npos);

    // Malformed requests are rejected.
    EXPECT_FALSE(scenario.client_.accounting("").is_ok());
    EXPECT_FALSE(scenario.client_.accounting("lab", "mars").is_ok());
    EXPECT_FALSE(scenario.client_.operator_report("mars").is_ok());
}

} // namespace
} // namespace tacc
