/**
 * @file
 * Unit + statistical property tests for the deterministic RNG.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"

namespace tacc {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next_u64() == b.next_u64();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanCloseToHalf)
{
    Rng rng(7);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBoundsInclusive)
{
    Rng rng(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.uniform_int(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u); // all 5 values show up
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(9);
    EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(11);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialPositive)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    const int n = 200000;
    double sum = 0, sq = 0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(10.0, 2.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalMedian)
{
    Rng rng(17);
    std::vector<double> xs;
    for (int i = 0; i < 50001; ++i)
        xs.push_back(rng.lognormal(3.0, 1.0));
    std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
    EXPECT_NEAR(std::log(xs[25000]), 3.0, 0.05);
}

TEST(Rng, ParetoRespectsMinimum)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(23);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Rng, ZipfRankOneMostLikely)
{
    Rng rng(29);
    std::vector<int> counts(11, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[size_t(rng.zipf(10, 1.2))];
    EXPECT_GT(counts[1], counts[2]);
    EXPECT_GT(counts[2], counts[5]);
    EXPECT_EQ(counts[0], 0); // ranks start at 1
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(31);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 40000; ++i)
        ++counts[rng.weighted_index(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(double(counts[2]) / double(counts[0]), 3.0, 0.2);
}

TEST(Rng, PickReturnsElement)
{
    Rng rng(37);
    const std::vector<int> v = {4, 8, 15};
    for (int i = 0; i < 100; ++i) {
        const int x = rng.pick(v);
        EXPECT_TRUE(x == 4 || x == 8 || x == 15);
    }
}

TEST(Rng, ShufflePreservesMultiset)
{
    Rng rng(41);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkedStreamsIndependent)
{
    Rng parent(43);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next_u64() == b.next_u64();
    EXPECT_LT(same, 2);
}

TEST(ZipfSampler, MatchesDirectZipfShape)
{
    Rng rng(47);
    ZipfSampler sampler(100, 1.1);
    std::vector<int> counts(101, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[size_t(sampler(rng))];
    EXPECT_GT(counts[1], counts[10]);
    EXPECT_GT(counts[10], counts[90]);
}

TEST(SplitMix64, KnownSequenceIsStable)
{
    uint64_t s = 0;
    const uint64_t first = split_mix64(s);
    uint64_t s2 = 0;
    EXPECT_EQ(split_mix64(s2), first);
    EXPECT_NE(split_mix64(s2), first); // state advanced
}

} // namespace
} // namespace tacc
