/**
 * @file
 * Integration tests for TaccStack: the four layers wired together on the
 * discrete-event engine.
 */
#include <gtest/gtest.h>

#include "core/stack.h"

namespace tacc::core {
namespace {

using namespace time_literals;
using workload::JobState;

StackConfig
small_config()
{
    StackConfig config;
    config.cluster.topology.racks = 1;
    config.cluster.topology.nodes_per_rack = 2;
    config.cluster.node.gpu_count = 8;
    config.scheduler = "fifo";
    config.placement = "pack";
    return config;
}

workload::TaskSpec
spec(const std::string &name, int gpus = 2, int64_t iterations = 100)
{
    workload::TaskSpec s;
    s.name = name;
    s.user = "alice";
    s.group = "lab";
    s.gpus = gpus;
    s.model = "resnet50";
    s.iterations = iterations;
    return s;
}

TEST(TaccStack, RejectsBadSubmissions)
{
    TaccStack stack(small_config());
    auto bad = spec("x");
    bad.gpus = 0;
    EXPECT_FALSE(stack.submit(bad).is_ok());
    auto huge = spec("y", 17); // 16 GPUs in the cluster
    EXPECT_FALSE(stack.submit(huge).is_ok());
    auto unknown = spec("z");
    unknown.model = "skynet";
    EXPECT_FALSE(stack.submit(unknown).is_ok());
    EXPECT_TRUE(stack.jobs().empty());
}

TEST(TaccStack, LifecycleTimestampsAreOrdered)
{
    TaccStack stack(small_config());
    auto id = stack.submit(spec("a"));
    ASSERT_TRUE(id.is_ok());
    const workload::Job *job = stack.find_job(id.value());
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->state(), JobState::kProvisioning);
    ASSERT_TRUE(stack.run_to_completion());
    EXPECT_EQ(job->state(), JobState::kCompleted);
    EXPECT_GT(job->provision_latency().to_seconds(), 0.0);
    EXPECT_GE(job->queueing_delay(), job->provision_latency());
    EXPECT_GT(job->jct(), job->queueing_delay());
}

TEST(TaccStack, GangWaitsForEnoughGpus)
{
    TaccStack stack(small_config());
    // Fill the cluster with a long job, then submit a full-width job.
    auto long_id = stack.submit(spec("long", 16, 100000));
    ASSERT_TRUE(long_id.is_ok());
    stack.run_until(TimePoint::origin() + 5_min);
    EXPECT_EQ(stack.find_job(long_id.value())->state(),
              JobState::kRunning);

    auto wide = stack.submit(spec("wide", 16, 10));
    ASSERT_TRUE(wide.is_ok());
    stack.run_until(TimePoint::origin() + 10_min);
    EXPECT_EQ(stack.find_job(wide.value())->state(), JobState::kPending);
    ASSERT_TRUE(stack.run_to_completion());
    EXPECT_EQ(stack.find_job(wide.value())->state(),
              JobState::kCompleted);
    // The wide job started only after the long one released.
    EXPECT_GE(stack.find_job(wide.value())->queueing_delay(),
              Duration::minutes(5));
}

TEST(TaccStack, MultipleJobsShareCluster)
{
    TaccStack stack(small_config());
    std::vector<cluster::JobId> ids;
    for (int i = 0; i < 6; ++i) {
        auto id = stack.submit(spec("j" + std::to_string(i), 2, 200));
        ASSERT_TRUE(id.is_ok());
        ids.push_back(id.value());
    }
    ASSERT_TRUE(stack.run_to_completion());
    for (auto id : ids)
        EXPECT_EQ(stack.find_job(id)->state(), JobState::kCompleted);
    EXPECT_EQ(stack.metrics().completed_count(), 6u);
    EXPECT_EQ(stack.cluster().used_gpus(), 0);
    EXPECT_TRUE(stack.quiescent());
}

TEST(TaccStack, KillAtEveryLifecycleStage)
{
    TaccStack stack(small_config());

    // Kill while provisioning.
    auto a = stack.submit(spec("a"));
    ASSERT_TRUE(a.is_ok());
    EXPECT_TRUE(stack.kill(a.value()).is_ok());
    EXPECT_EQ(stack.find_job(a.value())->state(), JobState::kKilled);

    // Kill while pending (cluster full of a long job).
    auto filler = stack.submit(spec("filler", 16, 100000));
    ASSERT_TRUE(filler.is_ok());
    stack.run_until(TimePoint::origin() + 5_min);
    auto b = stack.submit(spec("b", 8));
    ASSERT_TRUE(b.is_ok());
    stack.run_until(TimePoint::origin() + 10_min);
    EXPECT_EQ(stack.find_job(b.value())->state(), JobState::kPending);
    EXPECT_TRUE(stack.kill(b.value()).is_ok());
    EXPECT_EQ(stack.find_job(b.value())->state(), JobState::kKilled);

    // Kill while running.
    EXPECT_TRUE(stack.kill(filler.value()).is_ok());
    EXPECT_EQ(stack.find_job(filler.value())->state(), JobState::kKilled);
    EXPECT_EQ(stack.cluster().used_gpus(), 0);

    // Kill a terminal or unknown job fails cleanly.
    EXPECT_FALSE(stack.kill(filler.value()).is_ok());
    EXPECT_FALSE(stack.kill(12345).is_ok());
    EXPECT_TRUE(stack.run_to_completion());
}

TEST(TaccStack, TraceSubmissionRunsToQuiescence)
{
    StackConfig config = small_config();
    config.scheduler = "fairshare";
    TaccStack stack(config);
    workload::TraceConfig trace;
    trace.num_jobs = 40;
    trace.seed = 3;
    trace.mean_interarrival_s = 120.0;
    // Scale demands to the tiny cluster.
    trace.gpu_demand_pmf = {{1, 0.6}, {2, 0.25}, {4, 0.1}, {8, 0.05}};
    stack.submit_trace(workload::TraceGenerator(trace).generate());
    ASSERT_TRUE(stack.run_to_completion());
    EXPECT_EQ(stack.jobs().size(), 40u);
    EXPECT_EQ(stack.metrics().completed_count(), 40u);
    EXPECT_EQ(stack.cluster().used_gpus(), 0);
}

TEST(TaccStack, DeterministicAcrossRuns)
{
    auto run_once = [] {
        StackConfig config = small_config();
        config.scheduler = "backfill-easy";
        TaccStack stack(config);
        workload::TraceConfig trace;
        trace.num_jobs = 30;
        trace.seed = 9;
        trace.mean_interarrival_s = 60.0;
        trace.gpu_demand_pmf = {{1, 0.6}, {2, 0.2}, {4, 0.1}, {8, 0.1}};
        stack.submit_trace(workload::TraceGenerator(trace).generate());
        EXPECT_TRUE(stack.run_to_completion());
        std::vector<double> jcts;
        for (const auto *job : stack.jobs())
            jcts.push_back(job->jct().to_seconds());
        return jcts;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(TaccStack, PreemptionRoundTripPreservesProgress)
{
    StackConfig config = small_config();
    config.scheduler = "qos-preempt";
    TaccStack stack(config);

    auto victim = stack.submit(spec("victim", 16, 10000000));
    ASSERT_TRUE(victim.is_ok());
    stack.run_until(TimePoint::origin() + 30_min);
    EXPECT_EQ(stack.find_job(victim.value())->state(), JobState::kRunning);
    const int64_t iters_before =
        stack.find_job(victim.value())->iterations_done();

    auto boss_spec = spec("boss", 8, 50);
    boss_spec.qos = workload::QosClass::kInteractive;
    boss_spec.preemptible = false;
    auto boss = stack.submit(boss_spec);
    ASSERT_TRUE(boss.is_ok());
    stack.run_until(TimePoint::origin() + 40_min);
    EXPECT_EQ(stack.find_job(boss.value())->state(),
              JobState::kCompleted);
    EXPECT_EQ(stack.find_job(victim.value())->preemption_count(), 1);
    EXPECT_GE(stack.find_job(victim.value())->iterations_done(),
              iters_before);
    EXPECT_GE(stack.metrics().preemptions(), 1u);

    ASSERT_TRUE(stack.run_to_completion());
    EXPECT_EQ(stack.find_job(victim.value())->state(),
              JobState::kCompleted);
    EXPECT_EQ(stack.find_job(victim.value())->iterations_done(),
              10000000);
}

TEST(TaccStack, FailureInjectionWithFailsafeRecovers)
{
    StackConfig config = small_config();
    config.exec.failure.persistent_prob = 1.0; // every job has a bad runtime
    config.exec.failure.failsafe_switching = true;
    config.exec.failure.max_attempts = 4;
    TaccStack stack(config);
    auto id = stack.submit(spec("flaky", 4, 100000));
    ASSERT_TRUE(id.is_ok());
    ASSERT_TRUE(stack.run_to_completion());
    const workload::Job *job = stack.find_job(id.value());
    // Either the compiled runtime was the good one (no failure) or
    // fail-safe switching saved it after one failure.
    EXPECT_EQ(job->state(), JobState::kCompleted);
    EXPECT_LE(stack.metrics().segment_failures(), 1u);
}

TEST(TaccStack, FailureWithoutFailsafeExhaustsAttempts)
{
    StackConfig config = small_config();
    config.exec.failure.persistent_prob = 1.0;
    config.exec.failure.failsafe_switching = false;
    config.exec.failure.max_attempts = 3;
    config.compiler.container_threshold_bytes = 0; // force container
    TaccStack stack(config);

    // Find a job whose *container* runtime is the broken one by brute
    // force: submit several jobs; at least one must fail permanently.
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(stack.submit(spec("f" + std::to_string(i), 1, 100000))
                        .is_ok());
    ASSERT_TRUE(stack.run_to_completion());
    EXPECT_GT(stack.metrics().failed_count(), 0u);
    for (const auto *job : stack.jobs()) {
        if (job->state() == JobState::kFailed) {
            EXPECT_EQ(job->segment_count(), 3);
        }
    }
}

TEST(TaccStack, CrashRollsBackToCheckpointEndToEnd)
{
    StackConfig config = small_config();
    config.exec.failure.persistent_prob = 1.0;
    config.exec.failure.failsafe_switching = true;
    config.exec.failure.persistent_fail_after_s = 300.0;
    config.exec.checkpoint_interval_s = 60.0;
    config.compiler.container_threshold_bytes = 0; // container first
    TaccStack stack(config);

    // Find a job whose container runtime is broken; its first segment
    // crashes at ~300 s and must roll back to a 60 s checkpoint
    // boundary, then finish on the other runtime.
    for (int i = 0; i < 6; ++i) {
        auto id = stack.submit(spec("c" + std::to_string(i), 1, 100000));
        ASSERT_TRUE(id.is_ok());
    }
    ASSERT_TRUE(stack.run_to_completion());
    EXPECT_GT(stack.metrics().segment_failures(), 0u);
    for (const auto *job : stack.jobs()) {
        EXPECT_EQ(job->state(), JobState::kCompleted);
        EXPECT_EQ(job->iterations_done(), 100000);
    }
}

TEST(TaccStack, UsageTrackerChargesGroups)
{
    TaccStack stack(small_config());
    auto id = stack.submit(spec("a", 4, 500));
    ASSERT_TRUE(id.is_ok());
    ASSERT_TRUE(stack.run_to_completion());
    EXPECT_GT(stack.usage().usage("lab", stack.simulator().now()), 0.0);
}

TEST(TaccStack, QuotaKeepsGroupWithinCap)
{
    StackConfig config = small_config();
    config.group_quotas["lab"] = 4;
    TaccStack stack(config);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(
            stack.submit(spec("q" + std::to_string(i), 2, 5000)).is_ok());
    stack.run_until(TimePoint::origin() + 30_min);
    EXPECT_LE(stack.cluster().used_gpus(), 4);
    ASSERT_TRUE(stack.run_to_completion());
    EXPECT_EQ(stack.metrics().completed_count(), 4u);
}

TEST(TaccStack, RuntimeQuotaChangeReleasesBacklog)
{
    StackConfig config = small_config();
    config.group_quotas["lab"] = 2;
    TaccStack stack(config);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(
            stack.submit(spec("q" + std::to_string(i), 2, 2000000))
                .is_ok());
    stack.run_until(TimePoint::origin() + 10_min);
    EXPECT_EQ(stack.cluster().used_gpus(), 2); // one job at a time

    // Operator widens the partition: the backlog starts immediately.
    stack.set_group_quota("lab", 8);
    EXPECT_EQ(stack.cluster().used_gpus(), 8);
    ASSERT_TRUE(stack.kill(1).is_ok());
    ASSERT_TRUE(stack.kill(2).is_ok());
    ASSERT_TRUE(stack.kill(3).is_ok());
    ASSERT_TRUE(stack.kill(4).is_ok());
    ASSERT_TRUE(stack.run_to_completion());
}

TEST(TaccStack, EstimatedStartTracksCapacityTimeline)
{
    TaccStack stack(small_config());
    auto runner = stack.submit(spec("runner", 16, 1000000));
    ASSERT_TRUE(runner.is_ok());
    stack.run_until(TimePoint::origin() + 5_min);
    ASSERT_EQ(stack.find_job(runner.value())->state(),
              JobState::kRunning);
    // Running job: estimate = its actual segment start.
    auto started = stack.estimated_start(runner.value());
    ASSERT_TRUE(started.is_ok());
    EXPECT_EQ(started.value(),
              stack.find_job(runner.value())->segment_start());

    // A full-width job queued behind it starts when the runner ends.
    auto waiter = stack.submit(spec("waiter", 16, 100));
    ASSERT_TRUE(waiter.is_ok());
    stack.run_until(stack.simulator().now() + 5_min);
    ASSERT_EQ(stack.find_job(waiter.value())->state(),
              JobState::kPending);
    auto eta = stack.estimated_start(waiter.value());
    ASSERT_TRUE(eta.is_ok()) << eta.status().str();
    EXPECT_GT(eta.value(), stack.simulator().now() + Duration::hours(1));

    ASSERT_TRUE(stack.run_to_completion());
    // The realized start must not be later than the (conservative,
    // limit-priced) estimate.
    const workload::Job *w = stack.find_job(waiter.value());
    EXPECT_LE(w->submit_time() + w->queueing_delay(), eta.value());

    // Terminal job: no estimate.
    EXPECT_FALSE(stack.estimated_start(waiter.value()).is_ok());
    EXPECT_FALSE(stack.estimated_start(12345).is_ok());
}

TEST(TaccStack, EstimatedStartOfHeldJobIsUnknown)
{
    TaccStack stack(small_config());
    auto parent = stack.submit(spec("parent", 1, 1000000));
    ASSERT_TRUE(parent.is_ok());
    auto child = stack.submit(spec("child", 1, 10), {parent.value()});
    ASSERT_TRUE(child.is_ok());
    stack.run_until(TimePoint::origin() + 5_min);
    EXPECT_FALSE(stack.estimated_start(child.value()).is_ok());
    ASSERT_TRUE(stack.kill(parent.value()).is_ok());
    ASSERT_TRUE(stack.run_to_completion());
}

TEST(TaccStack, MonitorLogsCoverSegments)
{
    TaccStack stack(small_config());
    auto id = stack.submit(spec("logged", 4, 100));
    ASSERT_TRUE(id.is_ok());
    ASSERT_TRUE(stack.run_to_completion());
    const auto lines = stack.monitor().aggregate(id.value());
    ASSERT_GE(lines.size(), 2u);
    EXPECT_NE(lines.front().text.find("started"), std::string::npos);
    EXPECT_NE(lines.back().text.find("completed"), std::string::npos);
}

TEST(TaccStack, ElasticSchedulerEndToEnd)
{
    StackConfig config = small_config();
    config.scheduler = "elastic";
    TaccStack stack(config);
    auto s = spec("stretchy", 4, 20000);
    s.min_gpus = 2;
    s.max_gpus = 16;
    auto id = stack.submit(s);
    ASSERT_TRUE(id.is_ok());
    ASSERT_TRUE(stack.run_to_completion(10'000'000));
    EXPECT_EQ(stack.find_job(id.value())->state(), JobState::kCompleted);
}

} // namespace
} // namespace tacc::core
