/**
 * @file
 * Integration tests for the request-level serving plane embedded in
 * TaccStack: request conservation, budget conservation under overload,
 * shedding/degradation under burst, breaker reaction to node outages,
 * digest determinism (double-run, batch vs streaming, serve-off
 * byte-identity), and the sweep serve axis.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/stack.h"
#include "driver/digest.h"
#include "driver/runner.h"
#include "driver/sweep.h"

namespace tacc::core {
namespace {

StackConfig
serving_config()
{
    StackConfig config;
    config.cluster.topology.racks = 2;
    config.cluster.topology.nodes_per_rack = 2;
    config.cluster.node.gpu_count = 8;
    config.scheduler = "fairshare";
    config.placement = "topology";
    config.emit_monitor_logs = false;
    auto &serve = config.serve;
    serve.enabled = true;
    serve.request_rate_hz = 20.0;
    serve.horizon_s = 240.0;
    serve.initial_replicas = 2;
    serve.min_replicas = 1;
    serve.max_replicas = 4;
    serve.scale_period_s = 30.0;
    return config;
}

/** Every logical request must end in exactly one of ok/late/dropped. */
void
expect_conservation(const serve::PlaneCounters &c)
{
    EXPECT_EQ(c.requests, c.ok + c.late + c.dropped);
    EXPECT_GE(c.attempts, c.requests);
    EXPECT_LE(c.admitted, c.attempts);
    EXPECT_EQ(c.attempts, c.requests + c.retries);
}

TEST(ServePlane, RunsToQuiescenceAndConservesRequests)
{
    TaccStack stack(serving_config());
    ASSERT_TRUE(stack.run_to_completion());
    const auto *plane = stack.serve_plane();
    ASSERT_NE(plane, nullptr);
    EXPECT_TRUE(plane->idle());
    const auto &c = plane->counters();
    expect_conservation(c);
    EXPECT_GT(c.requests, 1000u);
    EXPECT_GT(c.ok, 0u);
    EXPECT_GE(c.replicas_spawned, 2u);
    // Shutdown killed every replica: the cluster fully drains.
    EXPECT_EQ(stack.cluster().used_gpus(), 0);
    EXPECT_TRUE(stack.quiescent());
    // The report is consistent with the counters.
    auto report = stack.serve_plane()->report();
    EXPECT_EQ(report.counters.ok, c.ok);
    EXPECT_GT(report.slo_attainment, 0.0);
    EXPECT_FALSE(report.offered.empty());
}

TEST(ServePlane, BudgetConservationUnderOverload)
{
    StackConfig config = serving_config();
    auto &serve = config.serve;
    // Overload a pinned single replica so retries actually happen.
    serve.request_rate_hz = 60.0;
    serve.horizon_s = 120.0;
    serve.initial_replicas = 1;
    serve.max_replicas = 1;
    serve.autoscale = false;
    serve.admission = false; // let queues build into timeouts
    serve.hard_queue_cap = 64;
    // Slow service (~13 Hz per replica) so 60 Hz truly overloads it.
    serve.batch_fixed_s = 0.2;
    serve.batch_per_request_s = 0.05;
    TaccStack stack(config);
    ASSERT_TRUE(stack.run_to_completion());
    const auto *plane = stack.serve_plane();
    const auto &c = plane->counters();
    expect_conservation(c);
    EXPECT_GT(c.timeouts, 0u);
    EXPECT_GT(c.retries, 0u);
    // Per-tenant conservation: spent never exceeds earned.
    uint64_t spent = 0;
    for (int t = 0; t < config.serve.tenants; ++t) {
        const auto &budget = plane->tenant_budget(t);
        EXPECT_LE(double(budget.spent()), budget.earned() + 1e-9);
        spent += budget.spent();
    }
    // Every executed retry was paid for.
    EXPECT_EQ(spent, c.retries);
    EXPECT_EQ(c.retries_denied > 0,
              [&] {
                  uint64_t denied = 0;
                  for (int t = 0; t < config.serve.tenants; ++t)
                      denied += plane->tenant_budget(t).denied();
                  return denied > 0;
              }());
}

TEST(ServePlane, BurstShedsAndDegradesButRecovers)
{
    StackConfig config = serving_config();
    auto &serve = config.serve;
    serve.request_rate_hz = 30.0;
    serve.horizon_s = 300.0;
    serve.burst_factor = 4.0;
    serve.burst_start_s = 100.0;
    serve.burst_duration_s = 100.0;
    serve.initial_replicas = 1;
    serve.max_replicas = 2;
    serve.batch_fixed_s = 0.1;
    serve.batch_per_request_s = 0.02;
    TaccStack stack(config);
    ASSERT_TRUE(stack.run_to_completion());
    const auto &c = stack.serve_plane()->counters();
    expect_conservation(c);
    // The burst overwhelms two replicas (~30.8 Hz each at these costs
    // vs 120 Hz offered): protection must have engaged...
    EXPECT_GT(c.shed + c.degraded + c.timeouts, 0u);
    // ...yet most traffic still completes in SLO.
    EXPECT_GT(double(c.ok), 0.5 * double(c.requests));
}

TEST(ServePlane, ScriptedRackOutageTripsBreakersAndHeals)
{
    StackConfig config = serving_config();
    config.faults.enabled = true;
    // No random fault chains: only the scripted outage fires.
    config.faults.node_crash_mtbf_hours = 0;
    config.faults.node_degrade_mtbf_hours = 0;
    config.faults.rack_outage_mtbf_hours = 0;
    config.faults.pdu_outage_mtbf_hours = 0;
    config.faults.scripted.push_back({60.0, 0, 120.0});
    auto &serve = config.serve;
    serve.horizon_s = 400.0;
    serve.initial_replicas = 4;
    serve.max_replicas = 4;
    TaccStack stack(config);
    ASSERT_TRUE(stack.run_to_completion());
    const auto &c = stack.serve_plane()->counters();
    expect_conservation(c);
    // The outage killed replica segments on rack 0; their breakers
    // tripped, the scheduler requeued the jobs, and the plane resumed
    // them (a fault kill requeues rather than terminating, so the
    // spawn count stays at the pool size).
    EXPECT_GT(c.replica_failures, 0u);
    EXPECT_GT(c.breaker_trips, 0u);
    EXPECT_GE(c.replicas_spawned, 4u);
    // Service still mostly worked across the storm.
    EXPECT_GT(double(c.ok), 0.6 * double(c.requests));
    EXPECT_EQ(stack.cluster().used_gpus(), 0);
}

TEST(ServePlane, ServingReportMentionsTheEssentials)
{
    TaccStack stack(serving_config());
    ASSERT_TRUE(stack.run_to_completion());
    const std::string text = stack.serving_report();
    EXPECT_NE(text.find("requests"), std::string::npos);
    EXPECT_NE(text.find("goodput"), std::string::npos);
    EXPECT_NE(text.find("replicas"), std::string::npos);
}

TEST(ServePlane, OpsSeriesAndAlertsAreWired)
{
    StackConfig config = serving_config();
    // Overload hard enough to shed for several sample windows.
    config.serve.request_rate_hz = 200.0;
    config.serve.horizon_s = 900.0;
    config.serve.initial_replicas = 1;
    config.serve.max_replicas = 1;
    config.serve.autoscale = false;
    TaccStack stack(config);
    ASSERT_TRUE(stack.run_to_completion());
    ASSERT_NE(stack.ops(), nullptr);
    const auto &store = stack.ops()->store();
    const auto shed = store.find(ops::series::kServeShed);
    ASSERT_NE(shed, ops::kInvalidSeries);
    const auto sample = store.latest(shed);
    ASSERT_TRUE(sample.has_value());
    EXPECT_GT(sample->v, 0.0);
    EXPECT_NE(store.find(ops::series::kServeReplicasUp),
              ops::kInvalidSeries);
    EXPECT_NE(store.find(ops::series::kServeGoodput),
              ops::kInvalidSeries);
    // The shed-storm alert must have fired under this much overload.
    bool saw_shed_alert = false;
    for (const auto &incident : stack.ops()->alerts().incidents()) {
        if (incident.rule == "serve-shed-storm")
            saw_shed_alert = true;
    }
    EXPECT_TRUE(saw_shed_alert);
}

ScenarioConfig
serving_scenario(bool streaming)
{
    ScenarioConfig config;
    config.stack = serving_config();
    config.streaming = streaming;
    config.trace.num_jobs = 15;
    config.trace.seed = 5;
    config.trace.mean_interarrival_s = 60.0;
    config.trace.gpu_demand_pmf = {{1, 0.7}, {2, 0.2}, {4, 0.1}};
    config.stack.seed = 5;
    return config;
}

TEST(ServeDigest, DoubleRunIsByteIdentical)
{
    const auto a = run_scenario(serving_scenario(false));
    const auto b = run_scenario(serving_scenario(false));
    ASSERT_TRUE(a.serve_enabled);
    expect_conservation(a.serve_counters);
    EXPECT_EQ(driver::scenario_digest(a), driver::scenario_digest(b));
    EXPECT_EQ(a.serve_counters.ok, b.serve_counters.ok);
    EXPECT_EQ(a.serve_counters.retries, b.serve_counters.retries);
}

TEST(ServeDigest, BatchAndStreamingAgree)
{
    const auto batch = run_scenario(serving_scenario(false));
    const auto streaming = run_scenario(serving_scenario(true));
    ASSERT_TRUE(batch.serve_enabled);
    ASSERT_TRUE(streaming.serve_enabled);
    EXPECT_EQ(batch.serve_counters.requests,
              streaming.serve_counters.requests);
    EXPECT_EQ(batch.serve_counters.ok, streaming.serve_counters.ok);
    EXPECT_EQ(driver::scenario_digest(batch),
              driver::scenario_digest(streaming));
}

TEST(ServeDigest, CountersChangeTheDigest)
{
    auto result = run_scenario(serving_scenario(false));
    const uint64_t before = driver::scenario_digest(result);
    result.serve_counters.ok += 1;
    EXPECT_NE(driver::scenario_digest(result), before);
    result.serve_counters.ok -= 1;
    EXPECT_EQ(driver::scenario_digest(result), before);
}

TEST(ServeSweep, OffCollapsesAndKeepsTheGridAsPrefix)
{
    driver::SweepSpec spec;
    spec.schedulers = {"fairshare"};
    spec.seeds = {1, 2};
    spec.base.trace.num_jobs = 10;
    spec.base.stack.cluster.topology.racks = 2;
    spec.base.stack.cluster.topology.nodes_per_rack = 2;
    spec.base.stack.emit_monitor_logs = false;

    auto plain = expand_sweep(spec);
    spec.serve_modes = {"off", "robust", "baseline"};
    spec.bursts = {1.0, 3.0};
    spec.base.stack.serve.request_rate_hz = 10.0;
    spec.base.stack.serve.horizon_s = 120.0;
    auto with_serve = expand_sweep(spec);

    // off collapses to one point; each live mode crosses the bursts.
    EXPECT_EQ(spec.serve_point_count(), 1u + 2u * 2u);
    ASSERT_EQ(with_serve.size(), plain.size() * 5);
    for (size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(with_serve[i].name, plain[i].name);
        EXPECT_FALSE(with_serve[i].config.stack.serve.enabled);
    }
    EXPECT_EQ(with_serve[plain.size()].name,
              "fairshare/topology/graceful/x1/s1+serve-robust");
    EXPECT_EQ(with_serve[3 * plain.size()].name,
              "fairshare/topology/graceful/x1/s1+serve-baseline");
    const auto &burst3 = with_serve[2 * plain.size()];
    EXPECT_EQ(burst3.name,
              "fairshare/topology/graceful/x1/s1+serve-robust-b3");
    EXPECT_TRUE(burst3.config.stack.serve.enabled);
    EXPECT_DOUBLE_EQ(burst3.config.stack.serve.burst_factor, 3.0);
    EXPECT_GT(burst3.config.stack.serve.burst_duration_s, 0.0);
    // Robust keeps the protections on; baseline turns them off.
    EXPECT_TRUE(burst3.config.stack.serve.admission);
    const auto &baseline = with_serve[3 * plain.size()];
    EXPECT_FALSE(baseline.config.stack.serve.admission);
    EXPECT_FALSE(baseline.config.stack.serve.retry_budget);
    EXPECT_FALSE(baseline.config.stack.serve.breakers);
}

TEST(ServeSweep, SpecKeysParseAndValidate)
{
    auto parsed = driver::parse_sweep_spec(
        "serve_modes: off,robust\nbursts: 1,2.5\n"
        "serve_rate_hz: 15\nserve_horizon_s: 300\n"
        "fault_modes: none,storm-jitter\n");
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().str();
    const auto &spec = parsed.value();
    EXPECT_EQ(spec.serve_modes,
              (std::vector<std::string>{"off", "robust"}));
    EXPECT_EQ(spec.bursts, (std::vector<double>{1.0, 2.5}));
    EXPECT_DOUBLE_EQ(spec.base.stack.serve.request_rate_hz, 15.0);
    EXPECT_DOUBLE_EQ(spec.base.stack.serve.horizon_s, 300.0);

    EXPECT_FALSE(driver::parse_sweep_spec("serve_modes: chaos\n").is_ok());
    EXPECT_FALSE(driver::parse_sweep_spec("bursts: 0.5\n").is_ok());
    EXPECT_FALSE(driver::parse_sweep_spec("serve_rate_hz: -1\n").is_ok());

    // storm-jitter turns on the decorrelated requeue backoff; plain
    // storm leaves it off (the golden-stability satellite).
    core::StackConfig storm, jittered;
    ASSERT_TRUE(driver::apply_fault_mode("storm", &storm).is_ok());
    ASSERT_TRUE(
        driver::apply_fault_mode("storm-jitter", &jittered).is_ok());
    EXPECT_FALSE(storm.exec.failure.requeue_jitter);
    EXPECT_TRUE(jittered.exec.failure.requeue_jitter);
    EXPECT_TRUE(jittered.faults.enabled);
}

TEST(ServeSweep, WorkerCountInvarianceWithServeOn)
{
    driver::SweepSpec spec;
    spec.schedulers = {"fairshare"};
    spec.seeds = {1};
    spec.base.trace.num_jobs = 8;
    spec.base.stack.cluster.topology.racks = 2;
    spec.base.stack.cluster.topology.nodes_per_rack = 2;
    spec.base.stack.emit_monitor_logs = false;
    spec.serve_modes = {"robust", "baseline"};
    spec.bursts = {1.0, 2.0};
    spec.base.stack.serve.request_rate_hz = 10.0;
    spec.base.stack.serve.horizon_s = 120.0;

    const auto serial = driver::run_sweep(spec, 1);
    const auto parallel = driver::run_sweep(spec, 8);
    EXPECT_EQ(driver::digests_text(serial),
              driver::digests_text(parallel));
    // Serving JSON fields ride along for serve-on runs.
    const std::string json = driver::summary_to_json(serial);
    EXPECT_NE(json.find("\"serve_requests\""), std::string::npos);
    EXPECT_NE(json.find("\"serve_slo_attainment\""), std::string::npos);
}

} // namespace
} // namespace tacc::core
