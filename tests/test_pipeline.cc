/**
 * @file
 * Tests for task pipelines (dependency-ordered submission).
 */
#include <gtest/gtest.h>

#include "core/stack.h"
#include "tcloud/client.h"

namespace tacc::core {
namespace {

using namespace time_literals;
using workload::JobState;

StackConfig
small_config()
{
    StackConfig config;
    config.cluster.topology.racks = 1;
    config.cluster.topology.nodes_per_rack = 2;
    config.scheduler = "fifo-skip";
    return config;
}

workload::TaskSpec
spec(const std::string &name, int gpus = 2, int64_t iterations = 100)
{
    workload::TaskSpec s;
    s.name = name;
    s.user = "alice";
    s.group = "lab";
    s.gpus = gpus;
    s.model = "resnet50";
    s.iterations = iterations;
    return s;
}

TEST(Pipeline, ChainRunsInOrder)
{
    TaccStack stack(small_config());
    auto prep = stack.submit(spec("prep", 1, 100));
    ASSERT_TRUE(prep.is_ok());
    auto train = stack.submit(spec("train", 8, 500), {prep.value()});
    ASSERT_TRUE(train.is_ok());
    auto eval = stack.submit(spec("eval", 1, 50), {train.value()});
    ASSERT_TRUE(eval.is_ok());

    ASSERT_TRUE(stack.run_to_completion());
    const auto *p = stack.find_job(prep.value());
    const auto *t = stack.find_job(train.value());
    const auto *e = stack.find_job(eval.value());
    EXPECT_EQ(p->state(), JobState::kCompleted);
    EXPECT_EQ(t->state(), JobState::kCompleted);
    EXPECT_EQ(e->state(), JobState::kCompleted);
    // Strict ordering: each stage starts after its parent finishes.
    EXPECT_GE(t->submit_time() + t->queueing_delay(), p->finish_time());
    EXPECT_GE(e->submit_time() + e->queueing_delay(), t->finish_time());
}

TEST(Pipeline, FanOutRunsInParallelAfterParent)
{
    TaccStack stack(small_config());
    auto prep = stack.submit(spec("prep", 1, 200000));
    ASSERT_TRUE(prep.is_ok());
    auto a = stack.submit(spec("train-a", 4, 300), {prep.value()});
    auto b = stack.submit(spec("train-b", 4, 300), {prep.value()});
    ASSERT_TRUE(a.is_ok() && b.is_ok());

    // While prep runs, both children are held (not pending, not running).
    stack.run_until(TimePoint::origin() + 1_min);
    EXPECT_EQ(stack.find_job(prep.value())->state(), JobState::kRunning);
    EXPECT_EQ(stack.pending_count(), 0u);
    EXPECT_EQ(stack.running_count(), 1u);

    ASSERT_TRUE(stack.run_to_completion());
    const auto *pa = stack.find_job(a.value());
    const auto *pb = stack.find_job(b.value());
    EXPECT_EQ(pa->state(), JobState::kCompleted);
    EXPECT_EQ(pb->state(), JobState::kCompleted);
    // The fan-out pair overlapped (both fit the free cluster).
    const TimePoint a_start = pa->submit_time() + pa->queueing_delay();
    const TimePoint b_start = pb->submit_time() + pb->queueing_delay();
    EXPECT_LT(a_start, pb->finish_time());
    EXPECT_LT(b_start, pa->finish_time());
}

TEST(Pipeline, DependencyOnCompletedJobRunsImmediately)
{
    TaccStack stack(small_config());
    auto prep = stack.submit(spec("prep", 1, 10));
    ASSERT_TRUE(prep.is_ok());
    ASSERT_TRUE(stack.run_to_completion());

    auto late = stack.submit(spec("late", 1, 10), {prep.value()});
    ASSERT_TRUE(late.is_ok());
    ASSERT_TRUE(stack.run_to_completion());
    EXPECT_EQ(stack.find_job(late.value())->state(),
              JobState::kCompleted);
}

TEST(Pipeline, FailureCascadesToDependents)
{
    StackConfig config = small_config();
    // Every job is incompatible with one runtime and never recovers.
    config.exec.failure.persistent_prob = 1.0;
    config.exec.failure.failsafe_switching = false;
    config.exec.failure.max_attempts = 2;
    config.compiler.container_threshold_bytes = 0;
    TaccStack stack(config);

    // Find a parent whose container runtime is broken.
    cluster::JobId doomed = cluster::kInvalidJob;
    for (int i = 0; i < 6 && doomed == cluster::kInvalidJob; ++i) {
        auto id = stack.submit(spec("p" + std::to_string(i), 1, 100000));
        ASSERT_TRUE(id.is_ok());
        if (stack.engine().failures().is_incompatible(
                *stack.find_job(id.value()),
                compiler::RuntimeKind::kContainer)) {
            doomed = id.value();
        }
    }
    ASSERT_NE(doomed, cluster::kInvalidJob);

    auto child = stack.submit(spec("child", 1, 10), {doomed});
    auto grandchild = stack.submit(spec("grandchild", 1, 10),
                                   {child.value()});
    ASSERT_TRUE(child.is_ok() && grandchild.is_ok());

    ASSERT_TRUE(stack.run_to_completion());
    EXPECT_EQ(stack.find_job(doomed)->state(), JobState::kFailed);
    EXPECT_EQ(stack.find_job(child.value())->state(), JobState::kKilled);
    EXPECT_EQ(stack.find_job(grandchild.value())->state(),
              JobState::kKilled);
}

TEST(Pipeline, RejectsBadDependencies)
{
    TaccStack stack(small_config());
    EXPECT_FALSE(stack.submit(spec("x"), {12345}).is_ok());
    auto victim = stack.submit(spec("victim", 1, 10));
    ASSERT_TRUE(victim.is_ok());
    ASSERT_TRUE(stack.kill(victim.value()).is_ok());
    EXPECT_FALSE(stack.submit(spec("y"), {victim.value()}).is_ok());
}

TEST(Pipeline, KillingHeldJobIsClean)
{
    TaccStack stack(small_config());
    auto prep = stack.submit(spec("prep", 1, 100000));
    ASSERT_TRUE(prep.is_ok());
    auto child = stack.submit(spec("child", 1, 10), {prep.value()});
    ASSERT_TRUE(child.is_ok());
    stack.run_until(TimePoint::origin() + 5_min);
    // Child is provisioned but held.
    EXPECT_EQ(stack.find_job(child.value())->state(), JobState::kPending);
    EXPECT_TRUE(stack.kill(child.value()).is_ok());
    EXPECT_TRUE(stack.kill(prep.value()).is_ok());
    ASSERT_TRUE(stack.run_to_completion());
}

TEST(Pipeline, TcloudSubmitAfter)
{
    TaccStack stack(small_config());
    TaccStack other(small_config());
    tcloud::Client client;
    ASSERT_TRUE(client.add_cluster("a", &stack).is_ok());
    ASSERT_TRUE(client.add_cluster("b", &other).is_ok());

    auto prep = client.submit(spec("prep", 1, 50));
    ASSERT_TRUE(prep.is_ok());
    auto train = client.submit_after(spec("train", 4, 100),
                                     {prep.value()});
    ASSERT_TRUE(train.is_ok());
    // Cross-cluster dependencies are rejected.
    EXPECT_FALSE(
        client.submit_after(spec("bad"), {prep.value()}, "b").is_ok());

    auto done = client.wait(train.value());
    ASSERT_TRUE(done.is_ok());
    EXPECT_EQ(done.value().state, JobState::kCompleted);
}

} // namespace
} // namespace tacc::core
