# Empty dependencies file for tacc_cluster.
# This may be replaced when dependencies are built.
