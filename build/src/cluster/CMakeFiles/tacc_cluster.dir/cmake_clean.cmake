file(REMOVE_RECURSE
  "CMakeFiles/tacc_cluster.dir/cluster.cc.o"
  "CMakeFiles/tacc_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/tacc_cluster.dir/node.cc.o"
  "CMakeFiles/tacc_cluster.dir/node.cc.o.d"
  "CMakeFiles/tacc_cluster.dir/topology.cc.o"
  "CMakeFiles/tacc_cluster.dir/topology.cc.o.d"
  "libtacc_cluster.a"
  "libtacc_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacc_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
