file(REMOVE_RECURSE
  "libtacc_cluster.a"
)
