# Empty compiler generated dependencies file for tacc_core.
# This may be replaced when dependencies are built.
