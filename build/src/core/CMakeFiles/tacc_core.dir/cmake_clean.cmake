file(REMOVE_RECURSE
  "CMakeFiles/tacc_core.dir/config_io.cc.o"
  "CMakeFiles/tacc_core.dir/config_io.cc.o.d"
  "CMakeFiles/tacc_core.dir/metrics.cc.o"
  "CMakeFiles/tacc_core.dir/metrics.cc.o.d"
  "CMakeFiles/tacc_core.dir/scenario.cc.o"
  "CMakeFiles/tacc_core.dir/scenario.cc.o.d"
  "CMakeFiles/tacc_core.dir/stack.cc.o"
  "CMakeFiles/tacc_core.dir/stack.cc.o.d"
  "libtacc_core.a"
  "libtacc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
