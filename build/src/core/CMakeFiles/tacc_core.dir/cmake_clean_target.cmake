file(REMOVE_RECURSE
  "libtacc_core.a"
)
