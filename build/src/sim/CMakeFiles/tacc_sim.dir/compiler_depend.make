# Empty compiler generated dependencies file for tacc_sim.
# This may be replaced when dependencies are built.
