file(REMOVE_RECURSE
  "libtacc_sim.a"
)
