file(REMOVE_RECURSE
  "CMakeFiles/tacc_sim.dir/simulator.cc.o"
  "CMakeFiles/tacc_sim.dir/simulator.cc.o.d"
  "libtacc_sim.a"
  "libtacc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
