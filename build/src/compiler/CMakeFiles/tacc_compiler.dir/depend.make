# Empty dependencies file for tacc_compiler.
# This may be replaced when dependencies are built.
