file(REMOVE_RECURSE
  "CMakeFiles/tacc_compiler.dir/chunk_store.cc.o"
  "CMakeFiles/tacc_compiler.dir/chunk_store.cc.o.d"
  "CMakeFiles/tacc_compiler.dir/compiler.cc.o"
  "CMakeFiles/tacc_compiler.dir/compiler.cc.o.d"
  "libtacc_compiler.a"
  "libtacc_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacc_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
