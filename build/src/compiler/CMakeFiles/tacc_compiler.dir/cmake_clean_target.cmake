file(REMOVE_RECURSE
  "libtacc_compiler.a"
)
