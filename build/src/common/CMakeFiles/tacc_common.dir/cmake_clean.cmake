file(REMOVE_RECURSE
  "CMakeFiles/tacc_common.dir/log.cc.o"
  "CMakeFiles/tacc_common.dir/log.cc.o.d"
  "CMakeFiles/tacc_common.dir/rng.cc.o"
  "CMakeFiles/tacc_common.dir/rng.cc.o.d"
  "CMakeFiles/tacc_common.dir/stats.cc.o"
  "CMakeFiles/tacc_common.dir/stats.cc.o.d"
  "CMakeFiles/tacc_common.dir/status.cc.o"
  "CMakeFiles/tacc_common.dir/status.cc.o.d"
  "CMakeFiles/tacc_common.dir/strings.cc.o"
  "CMakeFiles/tacc_common.dir/strings.cc.o.d"
  "CMakeFiles/tacc_common.dir/table.cc.o"
  "CMakeFiles/tacc_common.dir/table.cc.o.d"
  "CMakeFiles/tacc_common.dir/time.cc.o"
  "CMakeFiles/tacc_common.dir/time.cc.o.d"
  "libtacc_common.a"
  "libtacc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
