file(REMOVE_RECURSE
  "libtacc_common.a"
)
