# Empty compiler generated dependencies file for tacc_common.
# This may be replaced when dependencies are built.
