file(REMOVE_RECURSE
  "CMakeFiles/tacc_workload.dir/job.cc.o"
  "CMakeFiles/tacc_workload.dir/job.cc.o.d"
  "CMakeFiles/tacc_workload.dir/model.cc.o"
  "CMakeFiles/tacc_workload.dir/model.cc.o.d"
  "CMakeFiles/tacc_workload.dir/task_spec.cc.o"
  "CMakeFiles/tacc_workload.dir/task_spec.cc.o.d"
  "CMakeFiles/tacc_workload.dir/trace.cc.o"
  "CMakeFiles/tacc_workload.dir/trace.cc.o.d"
  "CMakeFiles/tacc_workload.dir/trace_io.cc.o"
  "CMakeFiles/tacc_workload.dir/trace_io.cc.o.d"
  "libtacc_workload.a"
  "libtacc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
