file(REMOVE_RECURSE
  "libtacc_workload.a"
)
