# Empty dependencies file for tacc_workload.
# This may be replaced when dependencies are built.
