# Empty compiler generated dependencies file for tacc_serve.
# This may be replaced when dependencies are built.
