file(REMOVE_RECURSE
  "CMakeFiles/tacc_serve.dir/autoscaler.cc.o"
  "CMakeFiles/tacc_serve.dir/autoscaler.cc.o.d"
  "CMakeFiles/tacc_serve.dir/latency_model.cc.o"
  "CMakeFiles/tacc_serve.dir/latency_model.cc.o.d"
  "CMakeFiles/tacc_serve.dir/service_sim.cc.o"
  "CMakeFiles/tacc_serve.dir/service_sim.cc.o.d"
  "libtacc_serve.a"
  "libtacc_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacc_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
