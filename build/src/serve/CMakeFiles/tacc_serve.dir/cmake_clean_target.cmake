file(REMOVE_RECURSE
  "libtacc_serve.a"
)
