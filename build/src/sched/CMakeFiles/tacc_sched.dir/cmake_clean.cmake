file(REMOVE_RECURSE
  "CMakeFiles/tacc_sched.dir/backfill.cc.o"
  "CMakeFiles/tacc_sched.dir/backfill.cc.o.d"
  "CMakeFiles/tacc_sched.dir/capacity_profile.cc.o"
  "CMakeFiles/tacc_sched.dir/capacity_profile.cc.o.d"
  "CMakeFiles/tacc_sched.dir/drf.cc.o"
  "CMakeFiles/tacc_sched.dir/drf.cc.o.d"
  "CMakeFiles/tacc_sched.dir/edf.cc.o"
  "CMakeFiles/tacc_sched.dir/edf.cc.o.d"
  "CMakeFiles/tacc_sched.dir/elastic.cc.o"
  "CMakeFiles/tacc_sched.dir/elastic.cc.o.d"
  "CMakeFiles/tacc_sched.dir/estimator.cc.o"
  "CMakeFiles/tacc_sched.dir/estimator.cc.o.d"
  "CMakeFiles/tacc_sched.dir/factory.cc.o"
  "CMakeFiles/tacc_sched.dir/factory.cc.o.d"
  "CMakeFiles/tacc_sched.dir/free_view.cc.o"
  "CMakeFiles/tacc_sched.dir/free_view.cc.o.d"
  "CMakeFiles/tacc_sched.dir/gang.cc.o"
  "CMakeFiles/tacc_sched.dir/gang.cc.o.d"
  "CMakeFiles/tacc_sched.dir/greedy.cc.o"
  "CMakeFiles/tacc_sched.dir/greedy.cc.o.d"
  "CMakeFiles/tacc_sched.dir/placement.cc.o"
  "CMakeFiles/tacc_sched.dir/placement.cc.o.d"
  "CMakeFiles/tacc_sched.dir/preempt.cc.o"
  "CMakeFiles/tacc_sched.dir/preempt.cc.o.d"
  "CMakeFiles/tacc_sched.dir/queue_schedulers.cc.o"
  "CMakeFiles/tacc_sched.dir/queue_schedulers.cc.o.d"
  "CMakeFiles/tacc_sched.dir/usage.cc.o"
  "CMakeFiles/tacc_sched.dir/usage.cc.o.d"
  "libtacc_sched.a"
  "libtacc_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacc_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
