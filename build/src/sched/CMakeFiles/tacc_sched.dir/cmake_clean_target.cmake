file(REMOVE_RECURSE
  "libtacc_sched.a"
)
