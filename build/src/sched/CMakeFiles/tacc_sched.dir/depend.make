# Empty dependencies file for tacc_sched.
# This may be replaced when dependencies are built.
