
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/backfill.cc" "src/sched/CMakeFiles/tacc_sched.dir/backfill.cc.o" "gcc" "src/sched/CMakeFiles/tacc_sched.dir/backfill.cc.o.d"
  "/root/repo/src/sched/capacity_profile.cc" "src/sched/CMakeFiles/tacc_sched.dir/capacity_profile.cc.o" "gcc" "src/sched/CMakeFiles/tacc_sched.dir/capacity_profile.cc.o.d"
  "/root/repo/src/sched/drf.cc" "src/sched/CMakeFiles/tacc_sched.dir/drf.cc.o" "gcc" "src/sched/CMakeFiles/tacc_sched.dir/drf.cc.o.d"
  "/root/repo/src/sched/edf.cc" "src/sched/CMakeFiles/tacc_sched.dir/edf.cc.o" "gcc" "src/sched/CMakeFiles/tacc_sched.dir/edf.cc.o.d"
  "/root/repo/src/sched/elastic.cc" "src/sched/CMakeFiles/tacc_sched.dir/elastic.cc.o" "gcc" "src/sched/CMakeFiles/tacc_sched.dir/elastic.cc.o.d"
  "/root/repo/src/sched/estimator.cc" "src/sched/CMakeFiles/tacc_sched.dir/estimator.cc.o" "gcc" "src/sched/CMakeFiles/tacc_sched.dir/estimator.cc.o.d"
  "/root/repo/src/sched/factory.cc" "src/sched/CMakeFiles/tacc_sched.dir/factory.cc.o" "gcc" "src/sched/CMakeFiles/tacc_sched.dir/factory.cc.o.d"
  "/root/repo/src/sched/free_view.cc" "src/sched/CMakeFiles/tacc_sched.dir/free_view.cc.o" "gcc" "src/sched/CMakeFiles/tacc_sched.dir/free_view.cc.o.d"
  "/root/repo/src/sched/gang.cc" "src/sched/CMakeFiles/tacc_sched.dir/gang.cc.o" "gcc" "src/sched/CMakeFiles/tacc_sched.dir/gang.cc.o.d"
  "/root/repo/src/sched/greedy.cc" "src/sched/CMakeFiles/tacc_sched.dir/greedy.cc.o" "gcc" "src/sched/CMakeFiles/tacc_sched.dir/greedy.cc.o.d"
  "/root/repo/src/sched/placement.cc" "src/sched/CMakeFiles/tacc_sched.dir/placement.cc.o" "gcc" "src/sched/CMakeFiles/tacc_sched.dir/placement.cc.o.d"
  "/root/repo/src/sched/preempt.cc" "src/sched/CMakeFiles/tacc_sched.dir/preempt.cc.o" "gcc" "src/sched/CMakeFiles/tacc_sched.dir/preempt.cc.o.d"
  "/root/repo/src/sched/queue_schedulers.cc" "src/sched/CMakeFiles/tacc_sched.dir/queue_schedulers.cc.o" "gcc" "src/sched/CMakeFiles/tacc_sched.dir/queue_schedulers.cc.o.d"
  "/root/repo/src/sched/usage.cc" "src/sched/CMakeFiles/tacc_sched.dir/usage.cc.o" "gcc" "src/sched/CMakeFiles/tacc_sched.dir/usage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tacc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tacc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tacc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tacc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
