# Empty dependencies file for tacc_tcloud.
# This may be replaced when dependencies are built.
