file(REMOVE_RECURSE
  "libtacc_tcloud.a"
)
