file(REMOVE_RECURSE
  "CMakeFiles/tacc_tcloud.dir/client.cc.o"
  "CMakeFiles/tacc_tcloud.dir/client.cc.o.d"
  "libtacc_tcloud.a"
  "libtacc_tcloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacc_tcloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
