# Empty compiler generated dependencies file for tacc_exec.
# This may be replaced when dependencies are built.
