file(REMOVE_RECURSE
  "libtacc_exec.a"
)
