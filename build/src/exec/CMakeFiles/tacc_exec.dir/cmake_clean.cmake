file(REMOVE_RECURSE
  "CMakeFiles/tacc_exec.dir/comm_model.cc.o"
  "CMakeFiles/tacc_exec.dir/comm_model.cc.o.d"
  "CMakeFiles/tacc_exec.dir/engine.cc.o"
  "CMakeFiles/tacc_exec.dir/engine.cc.o.d"
  "CMakeFiles/tacc_exec.dir/failure.cc.o"
  "CMakeFiles/tacc_exec.dir/failure.cc.o.d"
  "CMakeFiles/tacc_exec.dir/fs.cc.o"
  "CMakeFiles/tacc_exec.dir/fs.cc.o.d"
  "CMakeFiles/tacc_exec.dir/monitor.cc.o"
  "CMakeFiles/tacc_exec.dir/monitor.cc.o.d"
  "libtacc_exec.a"
  "libtacc_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacc_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
