
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/comm_model.cc" "src/exec/CMakeFiles/tacc_exec.dir/comm_model.cc.o" "gcc" "src/exec/CMakeFiles/tacc_exec.dir/comm_model.cc.o.d"
  "/root/repo/src/exec/engine.cc" "src/exec/CMakeFiles/tacc_exec.dir/engine.cc.o" "gcc" "src/exec/CMakeFiles/tacc_exec.dir/engine.cc.o.d"
  "/root/repo/src/exec/failure.cc" "src/exec/CMakeFiles/tacc_exec.dir/failure.cc.o" "gcc" "src/exec/CMakeFiles/tacc_exec.dir/failure.cc.o.d"
  "/root/repo/src/exec/fs.cc" "src/exec/CMakeFiles/tacc_exec.dir/fs.cc.o" "gcc" "src/exec/CMakeFiles/tacc_exec.dir/fs.cc.o.d"
  "/root/repo/src/exec/monitor.cc" "src/exec/CMakeFiles/tacc_exec.dir/monitor.cc.o" "gcc" "src/exec/CMakeFiles/tacc_exec.dir/monitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tacc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tacc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tacc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/tacc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tacc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
