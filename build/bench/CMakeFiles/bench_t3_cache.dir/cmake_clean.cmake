file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_cache.dir/bench_t3_cache.cc.o"
  "CMakeFiles/bench_t3_cache.dir/bench_t3_cache.cc.o.d"
  "bench_t3_cache"
  "bench_t3_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
