file(REMOVE_RECURSE
  "CMakeFiles/bench_t9_hetero.dir/bench_t9_hetero.cc.o"
  "CMakeFiles/bench_t9_hetero.dir/bench_t9_hetero.cc.o.d"
  "bench_t9_hetero"
  "bench_t9_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t9_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
