file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_fairshare.dir/bench_t5_fairshare.cc.o"
  "CMakeFiles/bench_t5_fairshare.dir/bench_t5_fairshare.cc.o.d"
  "bench_t5_fairshare"
  "bench_t5_fairshare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_fairshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
