# Empty dependencies file for bench_t7_engine_micro.
# This may be replaced when dependencies are built.
