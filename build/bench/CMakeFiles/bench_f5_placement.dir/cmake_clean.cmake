file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_placement.dir/bench_f5_placement.cc.o"
  "CMakeFiles/bench_f5_placement.dir/bench_f5_placement.cc.o.d"
  "bench_f5_placement"
  "bench_f5_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
