file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_failover.dir/bench_f8_failover.cc.o"
  "CMakeFiles/bench_f8_failover.dir/bench_f8_failover.cc.o.d"
  "bench_f8_failover"
  "bench_f8_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
