# Empty compiler generated dependencies file for bench_t11_serving.
# This may be replaced when dependencies are built.
