file(REMOVE_RECURSE
  "CMakeFiles/bench_t11_serving.dir/bench_t11_serving.cc.o"
  "CMakeFiles/bench_t11_serving.dir/bench_t11_serving.cc.o.d"
  "bench_t11_serving"
  "bench_t11_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t11_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
