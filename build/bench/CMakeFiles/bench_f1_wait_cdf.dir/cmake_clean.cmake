file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_wait_cdf.dir/bench_f1_wait_cdf.cc.o"
  "CMakeFiles/bench_f1_wait_cdf.dir/bench_f1_wait_cdf.cc.o.d"
  "bench_f1_wait_cdf"
  "bench_f1_wait_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_wait_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
