# Empty dependencies file for tacc_bench_util.
# This may be replaced when dependencies are built.
