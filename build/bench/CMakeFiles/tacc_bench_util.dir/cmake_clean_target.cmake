file(REMOVE_RECURSE
  "libtacc_bench_util.a"
)
