file(REMOVE_RECURSE
  "CMakeFiles/tacc_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/tacc_bench_util.dir/bench_util.cc.o.d"
  "libtacc_bench_util.a"
  "libtacc_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacc_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
