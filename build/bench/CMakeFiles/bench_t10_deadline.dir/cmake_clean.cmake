file(REMOVE_RECURSE
  "CMakeFiles/bench_t10_deadline.dir/bench_t10_deadline.cc.o"
  "CMakeFiles/bench_t10_deadline.dir/bench_t10_deadline.cc.o.d"
  "bench_t10_deadline"
  "bench_t10_deadline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t10_deadline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
