# Empty dependencies file for bench_t10_deadline.
# This may be replaced when dependencies are built.
