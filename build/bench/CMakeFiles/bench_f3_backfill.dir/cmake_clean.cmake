file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_backfill.dir/bench_f3_backfill.cc.o"
  "CMakeFiles/bench_f3_backfill.dir/bench_f3_backfill.cc.o.d"
  "bench_f3_backfill"
  "bench_f3_backfill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_backfill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
