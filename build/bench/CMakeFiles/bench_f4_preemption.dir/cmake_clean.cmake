file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_preemption.dir/bench_f4_preemption.cc.o"
  "CMakeFiles/bench_f4_preemption.dir/bench_f4_preemption.cc.o.d"
  "bench_f4_preemption"
  "bench_f4_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
