# Empty dependencies file for bench_f4_preemption.
# This may be replaced when dependencies are built.
