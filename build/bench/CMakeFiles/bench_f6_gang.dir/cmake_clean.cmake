file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_gang.dir/bench_f6_gang.cc.o"
  "CMakeFiles/bench_f6_gang.dir/bench_f6_gang.cc.o.d"
  "bench_f6_gang"
  "bench_f6_gang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_gang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
