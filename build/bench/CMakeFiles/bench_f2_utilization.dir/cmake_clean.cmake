file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_utilization.dir/bench_f2_utilization.cc.o"
  "CMakeFiles/bench_f2_utilization.dir/bench_f2_utilization.cc.o.d"
  "bench_f2_utilization"
  "bench_f2_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
