# Empty dependencies file for bench_t1_workload.
# This may be replaced when dependencies are built.
