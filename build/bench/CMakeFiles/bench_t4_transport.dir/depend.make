# Empty dependencies file for bench_t4_transport.
# This may be replaced when dependencies are built.
