file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_transport.dir/bench_t4_transport.cc.o"
  "CMakeFiles/bench_t4_transport.dir/bench_t4_transport.cc.o.d"
  "bench_t4_transport"
  "bench_t4_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
