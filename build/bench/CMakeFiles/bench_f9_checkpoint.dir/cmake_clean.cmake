file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_checkpoint.dir/bench_f9_checkpoint.cc.o"
  "CMakeFiles/bench_f9_checkpoint.dir/bench_f9_checkpoint.cc.o.d"
  "bench_f9_checkpoint"
  "bench_f9_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
