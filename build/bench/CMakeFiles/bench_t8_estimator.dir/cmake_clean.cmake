file(REMOVE_RECURSE
  "CMakeFiles/bench_t8_estimator.dir/bench_t8_estimator.cc.o"
  "CMakeFiles/bench_t8_estimator.dir/bench_t8_estimator.cc.o.d"
  "bench_t8_estimator"
  "bench_t8_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t8_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
