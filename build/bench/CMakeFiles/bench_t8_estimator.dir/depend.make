# Empty dependencies file for bench_t8_estimator.
# This may be replaced when dependencies are built.
