
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_f7_elastic.cc" "bench/CMakeFiles/bench_f7_elastic.dir/bench_f7_elastic.cc.o" "gcc" "bench/CMakeFiles/bench_f7_elastic.dir/bench_f7_elastic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/tacc_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tacc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/serve/CMakeFiles/tacc_serve.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tacc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/tacc_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/tacc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tacc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tacc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tacc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tacc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
