file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_elastic.dir/bench_f7_elastic.cc.o"
  "CMakeFiles/bench_f7_elastic.dir/bench_f7_elastic.cc.o.d"
  "bench_f7_elastic"
  "bench_f7_elastic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_elastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
