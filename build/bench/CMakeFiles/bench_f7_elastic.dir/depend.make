# Empty dependencies file for bench_f7_elastic.
# This may be replaced when dependencies are built.
