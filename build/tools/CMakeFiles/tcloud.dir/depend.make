# Empty dependencies file for tcloud.
# This may be replaced when dependencies are built.
