file(REMOVE_RECURSE
  "CMakeFiles/tcloud.dir/tcloud_main.cc.o"
  "CMakeFiles/tcloud.dir/tcloud_main.cc.o.d"
  "tcloud"
  "tcloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
