# Empty dependencies file for tacc_tests.
# This may be replaced when dependencies are built.
