
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_capacity_profile.cc" "tests/CMakeFiles/tacc_tests.dir/test_capacity_profile.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_capacity_profile.cc.o.d"
  "/root/repo/tests/test_cluster.cc" "tests/CMakeFiles/tacc_tests.dir/test_cluster.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_cluster.cc.o.d"
  "/root/repo/tests/test_comm_model.cc" "tests/CMakeFiles/tacc_tests.dir/test_comm_model.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_comm_model.cc.o.d"
  "/root/repo/tests/test_common_misc.cc" "tests/CMakeFiles/tacc_tests.dir/test_common_misc.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_common_misc.cc.o.d"
  "/root/repo/tests/test_compiler.cc" "tests/CMakeFiles/tacc_tests.dir/test_compiler.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_compiler.cc.o.d"
  "/root/repo/tests/test_config_io.cc" "tests/CMakeFiles/tacc_tests.dir/test_config_io.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_config_io.cc.o.d"
  "/root/repo/tests/test_edf.cc" "tests/CMakeFiles/tacc_tests.dir/test_edf.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_edf.cc.o.d"
  "/root/repo/tests/test_estimator.cc" "tests/CMakeFiles/tacc_tests.dir/test_estimator.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_estimator.cc.o.d"
  "/root/repo/tests/test_exec.cc" "tests/CMakeFiles/tacc_tests.dir/test_exec.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_exec.cc.o.d"
  "/root/repo/tests/test_hetero.cc" "tests/CMakeFiles/tacc_tests.dir/test_hetero.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_hetero.cc.o.d"
  "/root/repo/tests/test_job.cc" "tests/CMakeFiles/tacc_tests.dir/test_job.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_job.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/tacc_tests.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_pipeline.cc" "tests/CMakeFiles/tacc_tests.dir/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_pipeline.cc.o.d"
  "/root/repo/tests/test_placement.cc" "tests/CMakeFiles/tacc_tests.dir/test_placement.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_placement.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/tacc_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_scenario.cc" "tests/CMakeFiles/tacc_tests.dir/test_scenario.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_scenario.cc.o.d"
  "/root/repo/tests/test_sched_invariants.cc" "tests/CMakeFiles/tacc_tests.dir/test_sched_invariants.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_sched_invariants.cc.o.d"
  "/root/repo/tests/test_schedulers.cc" "tests/CMakeFiles/tacc_tests.dir/test_schedulers.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_schedulers.cc.o.d"
  "/root/repo/tests/test_serve.cc" "tests/CMakeFiles/tacc_tests.dir/test_serve.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_serve.cc.o.d"
  "/root/repo/tests/test_simulator.cc" "tests/CMakeFiles/tacc_tests.dir/test_simulator.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_simulator.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/tacc_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_stack.cc" "tests/CMakeFiles/tacc_tests.dir/test_stack.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_stack.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/tacc_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_task_spec.cc" "tests/CMakeFiles/tacc_tests.dir/test_task_spec.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_task_spec.cc.o.d"
  "/root/repo/tests/test_tcloud.cc" "tests/CMakeFiles/tacc_tests.dir/test_tcloud.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_tcloud.cc.o.d"
  "/root/repo/tests/test_time.cc" "tests/CMakeFiles/tacc_tests.dir/test_time.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_time.cc.o.d"
  "/root/repo/tests/test_topology.cc" "tests/CMakeFiles/tacc_tests.dir/test_topology.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_topology.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/tacc_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_trace_io.cc" "tests/CMakeFiles/tacc_tests.dir/test_trace_io.cc.o" "gcc" "tests/CMakeFiles/tacc_tests.dir/test_trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tacc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcloud/CMakeFiles/tacc_tcloud.dir/DependInfo.cmake"
  "/root/repo/build/src/serve/CMakeFiles/tacc_serve.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tacc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/tacc_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/tacc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tacc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tacc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tacc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tacc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
