file(REMOVE_RECURSE
  "CMakeFiles/serving_autoscale.dir/serving_autoscale.cpp.o"
  "CMakeFiles/serving_autoscale.dir/serving_autoscale.cpp.o.d"
  "serving_autoscale"
  "serving_autoscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_autoscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
