# Empty dependencies file for serving_autoscale.
# This may be replaced when dependencies are built.
