# Empty compiler generated dependencies file for scheduler_bakeoff.
# This may be replaced when dependencies are built.
