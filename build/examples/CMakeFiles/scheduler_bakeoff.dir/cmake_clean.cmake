file(REMOVE_RECURSE
  "CMakeFiles/scheduler_bakeoff.dir/scheduler_bakeoff.cpp.o"
  "CMakeFiles/scheduler_bakeoff.dir/scheduler_bakeoff.cpp.o.d"
  "scheduler_bakeoff"
  "scheduler_bakeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_bakeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
