/**
 * @file
 * capacity_planner — what-if sizing for a campus deployment.
 *
 * Sweeps cluster sizes (rack counts) against a reference workload and
 * reports queueing/utilization per size, then recommends the smallest
 * deployment meeting the wait-time SLO. This answers the operator's
 * recurring question: "how many racks do we need for next semester's
 * load?".
 *
 *   capacity_planner [jobs] [mean_interarrival_s] [target_mean_wait_min]
 *   capacity_planner --config deployment.txt [jobs] [ia_s] [target_min]
 *
 * With --config, the swept deployments inherit everything (scheduler,
 * hardware, failure policy) from the file except the rack count.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/table.h"
#include "core/config_io.h"
#include "core/scenario.h"

using namespace tacc;

int
main(int argc, char **argv)
{
    core::StackConfig base;
    base.scheduler = "fairshare";
    base.placement = "topology";
    base.emit_monitor_logs = false;

    int arg = 1;
    if (arg + 1 < argc && std::strcmp(argv[arg], "--config") == 0) {
        std::ifstream file(argv[arg + 1]);
        if (!file) {
            std::fprintf(stderr, "cannot open %s\n", argv[arg + 1]);
            return 1;
        }
        std::stringstream buffer;
        buffer << file.rdbuf();
        auto parsed = core::parse_stack_config(buffer.str());
        if (!parsed.is_ok()) {
            std::fprintf(stderr, "config: %s\n",
                         parsed.status().str().c_str());
            return 1;
        }
        base = parsed.value();
        base.emit_monitor_logs = false;
        arg += 2;
    }
    const int jobs = arg < argc ? std::atoi(argv[arg++]) : 600;
    const double interarrival =
        arg < argc ? std::atof(argv[arg++]) : 90.0;
    const double target_wait_min =
        arg < argc ? std::atof(argv[arg++]) : 30.0;

    std::printf("workload: %d jobs, %.0f s mean inter-arrival; SLO: mean "
                "wait <= %.0f min\n\n",
                jobs, interarrival, target_wait_min);

    TextTable table("capacity sweep");
    table.set_header({"racks", "GPUs", "meanWait(m)", "p99Wait(m)",
                      "util", "meets SLO"});

    int recommended = -1;
    for (int racks = 1; racks <= 8; ++racks) {
        core::ScenarioConfig config;
        config.stack = base;
        config.stack.cluster.topology.racks = racks;
        config.trace.num_jobs = jobs;
        config.trace.seed = 7;
        config.trace.mean_interarrival_s = interarrival;
        const auto r = core::run_scenario(config);
        const bool meets = r.mean_wait_s / 60.0 <= target_wait_min &&
                           r.never_finished == 0;
        if (meets && recommended < 0)
            recommended = racks;
        table.add_row({TextTable::num(racks, 2),
                       TextTable::num(config.stack.cluster.total_gpus(),
                                      5),
                       TextTable::fixed(r.mean_wait_s / 60.0, 1),
                       TextTable::fixed(r.p99_wait_s / 60.0, 1),
                       TextTable::pct(r.arrival_window_utilization),
                       meets ? "yes" : "no"});
        // Past the SLO with headroom: later rows change little.
        if (meets && r.mean_wait_s / 60.0 < target_wait_min / 8.0)
            break;
    }
    std::fputs(table.str().c_str(), stdout);

    if (recommended > 0) {
        std::printf("\nrecommendation: %d rack(s) of %d nodes\n",
                    recommended, base.cluster.topology.nodes_per_rack);
    } else {
        std::printf("\nno swept size met the SLO; grow beyond 8 racks or "
                    "relax the target\n");
    }
    return 0;
}
