/**
 * @file
 * tacc_tune — search-based policy auto-tuning CLI.
 *
 * Loads a tune spec (search engine + objective weights + workload
 * mixes), runs the optimizer against the deterministic sweep-backed
 * evaluator, and reports the winning configuration. The trajectory and
 * the winner are a pure function of (spec, seed, budget) at any --jobs
 * value, so CI pins them as goldens exactly like sweep digests.
 *
 *   tacc_tune [options]
 *     --spec FILE        tune spec (default tests/goldens/ci_tune.spec)
 *     --budget N         override the spec's candidate budget
 *     --seed N           override the spec's search seed
 *     --jobs N           concurrent simulations (0 = hardware, default 1)
 *     --out FILE         write the deterministic JSON trajectory
 *     --preset FILE      write the winner as a loadable preset (see
 *                        config_io; tcloud `open` and the sweep
 *                        dialect's `preset:` key consume it)
 *     --golden FILE      golden best-config file
 *                        (default tests/goldens/tune_best.txt)
 *     --check-golden     compare the winner against the golden; exit 1
 *                        on drift
 *     --update-golden    rewrite the golden file from this run
 *     --list-params      print the tunable-dimension registry and exit
 *     --streaming        force streaming (million-job) retention for
 *                        every evaluation, overriding the spec
 *     --quiet            suppress the trajectory table
 *
 * Golden workflow: after an intentional behaviour change, run
 *   tacc_tune --update-golden
 * from the repo root and commit the refreshed best-config file.
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include "common/hash.h"
#include "common/table.h"
#include "tune/tuner.h"

using namespace tacc;

namespace {

struct Options {
    std::string spec_path = "tests/goldens/ci_tune.spec";
    std::string out_path;
    std::string preset_path;
    std::string golden_path = "tests/goldens/tune_best.txt";
    int budget = 0; ///< 0 = spec value
    int jobs = 1;
    bool have_seed = false;
    uint64_t seed = 0;
    bool check_golden = false;
    bool update_golden = false;
    bool list_params = false;
    bool streaming = false;
    bool quiet = false;
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--spec FILE] [--budget N] [--seed N] "
                 "[--jobs N] [--out FILE]\n"
                 "       [--preset FILE] [--golden FILE] "
                 "[--check-golden] [--update-golden]\n"
                 "       [--list-params] [--streaming] [--quiet]\n",
                 argv0);
    return 2;
}

bool
write_file(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::trunc);
    out << content;
    return bool(out);
}

void
print_trajectory(const tune::TuneSpec &spec,
                 const tune::TuneResult &result)
{
    TextTable table("tune");
    table.set_header({"step", "chain", "objective", "accepted", "cached",
                      "best", "params"});
    for (const auto &step : result.trajectory) {
        table.add_row({
            TextTable::num(double(step.step), 4),
            TextTable::num(double(step.chain), 3),
            TextTable::fixed(step.objective, 4),
            step.accepted ? "yes" : "no",
            step.cache_hit ? "yes" : "no",
            step.is_best ? "*" : "",
            spec.space.describe(step.values),
        });
    }
    std::printf("%s", table.str().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--spec") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.spec_path = v;
        } else if (arg == "--budget") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.budget = std::atoi(v);
            if (opt.budget <= 0)
                return usage(argv[0]);
        } else if (arg == "--seed") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.have_seed = true;
            opt.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--jobs") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.jobs = std::atoi(v);
            if (opt.jobs < 0)
                return usage(argv[0]);
        } else if (arg == "--out") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.out_path = v;
        } else if (arg == "--preset") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.preset_path = v;
        } else if (arg == "--golden") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.golden_path = v;
        } else if (arg == "--check-golden") {
            opt.check_golden = true;
        } else if (arg == "--update-golden") {
            opt.update_golden = true;
        } else if (arg == "--list-params") {
            opt.list_params = true;
        } else if (arg == "--streaming") {
            opt.streaming = true;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else {
            return usage(argv[0]);
        }
    }

    if (opt.list_params) {
        TextTable table("params");
        table.set_header({"name", "lo", "hi", "type", "what"});
        for (const auto &dim : tune::ParamSpace::registry()) {
            table.add_row({dim.name, TextTable::num(dim.lo, 7),
                           TextTable::num(dim.hi, 7),
                           dim.integer ? "int" : "real", dim.doc});
        }
        std::printf("%s", table.str().c_str());
        return 0;
    }

    auto spec_or = tune::load_tune_spec(opt.spec_path);
    if (!spec_or.is_ok()) {
        std::fprintf(stderr, "tacc_tune: %s\n",
                     spec_or.status().str().c_str());
        return 2;
    }
    tune::TuneSpec &spec = spec_or.value();
    if (opt.budget > 0)
        spec.budget = opt.budget;
    if (opt.have_seed)
        spec.search.seed = opt.seed;
    if (opt.streaming)
        spec.base.streaming = true;

    auto result_or = tune::run_tune(spec, opt.jobs);
    if (!result_or.is_ok()) {
        std::fprintf(stderr, "tacc_tune: %s\n",
                     result_or.status().str().c_str());
        return 2;
    }
    const tune::TuneResult &result = result_or.value();

    if (!opt.quiet)
        print_trajectory(spec, result);
    std::printf("default objective %.6f  best %.6f (step %d)  "
                "digest %s\n",
                result.default_objective, result.best_objective,
                result.best_step,
                Fnv1a::hex(result.best_digest).c_str());
    std::printf("%zu candidate(s), %zu simulation(s), %zu cache hit(s), "
                "%d worker(s), %.1f ms wall\n",
                result.trajectory.size(), result.scenario_runs,
                result.cache_hits, result.workers, result.wall_ms);

    const std::string best_text = tune::best_config_text(spec, result);
    if (!opt.out_path.empty() &&
        !write_file(opt.out_path,
                    tune::trajectory_to_json(spec, result))) {
        std::fprintf(stderr, "tacc_tune: cannot write %s\n",
                     opt.out_path.c_str());
        return 2;
    }
    if (!opt.preset_path.empty() &&
        !write_file(opt.preset_path, best_text)) {
        std::fprintf(stderr, "tacc_tune: cannot write %s\n",
                     opt.preset_path.c_str());
        return 2;
    }

    if (opt.update_golden) {
        if (!write_file(opt.golden_path, best_text)) {
            std::fprintf(stderr, "tacc_tune: cannot write %s\n",
                         opt.golden_path.c_str());
            return 2;
        }
        std::printf("updated golden: %s\n", opt.golden_path.c_str());
    }

    if (opt.check_golden) {
        std::ifstream in(opt.golden_path);
        if (!in) {
            std::fprintf(stderr,
                         "tacc_tune: cannot read golden %s "
                         "(run --update-golden first)\n",
                         opt.golden_path.c_str());
            return 2;
        }
        std::string golden((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
        if (golden != best_text) {
            std::fprintf(stderr,
                         "GOLDEN TUNE MISMATCH (%s)\n"
                         "--- golden ---\n%s--- actual ---\n%s",
                         opt.golden_path.c_str(), golden.c_str(),
                         best_text.c_str());
            return 1;
        }
        std::printf("golden OK (%s)\n", opt.golden_path.c_str());
    }
    return 0;
}
