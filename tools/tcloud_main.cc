/**
 * @file
 * tcloud — the TACC task-management CLI.
 *
 * A scriptable shell over the tcloud client library, bound to two
 * embedded simulated clusters ("campus", a 256-GPU deployment, and
 * "lab", a small 32-GPU one). Commands mirror the deployed tool:
 *
 *   clusters              list cluster profiles
 *   use <name>            switch the default cluster
 *   submit <file>         submit a task schema file
 *   demo [n]              submit n generated campus jobs (default 10)
 *   run <seconds>         advance simulated time
 *   drain                 run until everything finishes
 *   ps                    list jobs on the default cluster
 *   status <id>           one job's status
 *   logs <id>             aggregated distributed logs
 *   kill <id>             kill a job
 *   report                operator summary (telemetry, alerts, usage)
 *   accounting <group>    the group's per-period billing statements
 *   cordon <node>         hold a node (no new placements)
 *   drain <node>          evacuate a node for maintenance
 *   uncordon <node>       return a cordoned/drained node to service
 *   health                per-state node counts + fault totals
 *   power                 draw vs caps, throttling, deferrals
 *   energy                cluster/baseline/per-group kWh ledger
 *   serve demo [mode] [hz]  open a serve-enabled clone of the default
 *                         cluster ("robust" or "baseline" protections)
 *   serve status          replica pool, goodput, shed/retry/breakers
 *   help | quit
 *
 * Example:  printf 'demo 20\ndrain\nps\nreport\n' | ./build/tools/tcloud
 */
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <iostream>
#include <sstream>
#include <string>

#include "common/strings.h"
#include "core/config_io.h"
#include "common/table.h"
#include "core/stack.h"
#include "driver/sweep.h"
#include "tcloud/client.h"
#include "workload/trace.h"
#include "workload/trace_io.h"

using namespace tacc;

namespace {

core::StackConfig
campus_config()
{
    core::StackConfig config;
    config.cluster.name = "campus";
    config.cluster.topology.racks = 4;
    config.cluster.topology.nodes_per_rack = 8;
    config.scheduler = "fairshare";
    config.placement = "topology";
    return config;
}

core::StackConfig
lab_config()
{
    core::StackConfig config;
    config.cluster.name = "lab";
    config.cluster.topology.racks = 1;
    config.cluster.topology.nodes_per_rack = 4;
    config.scheduler = "fifo-skip";
    return config;
}

/** The CLI session: cluster profiles, one client, a demo-trace cursor. */
class Shell
{
  public:
    Shell()
    {
        add("campus", campus_config());
        add("lab", lab_config());
    }

    int
    repl(std::istream &in, bool interactive)
    {
        std::string line;
        if (interactive)
            std::fputs("tcloud> ", stdout);
        while (std::getline(in, line)) {
            if (!dispatch(line))
                return 0;
            if (interactive)
                std::fputs("tcloud> ", stdout);
        }
        return 0;
    }

  private:
    void
    add(const std::string &name, core::StackConfig config)
    {
        stacks_[name] = std::make_unique<core::TaccStack>(config);
        client_.add_cluster(name, stacks_[name].get());
    }

    core::TaccStack &
    stack()
    {
        return *stacks_.at(client_.default_cluster());
    }

    /** @return false to exit the REPL. */
    bool
    dispatch(const std::string &line)
    {
        std::istringstream is(line);
        std::string cmd;
        is >> cmd;
        if (cmd.empty())
            return true;
        if (cmd == "quit" || cmd == "exit")
            return false;
        if (cmd == "help") {
            help();
        } else if (cmd == "clusters") {
            for (const auto &name : client_.cluster_names()) {
                std::printf("%s%s\n", name.c_str(),
                            name == client_.default_cluster() ? " *" : "");
            }
        } else if (cmd == "use") {
            std::string name;
            is >> name;
            auto s = client_.set_default_cluster(name);
            std::printf("%s\n", s.is_ok() ? "ok" : s.str().c_str());
        } else if (cmd == "submit") {
            std::string path;
            is >> path;
            submit_file(path);
        } else if (cmd == "open") {
            std::string path, name;
            is >> path >> name;
            open_cluster(path, name);
        } else if (cmd == "replay") {
            std::string path;
            is >> path;
            replay(path);
        } else if (cmd == "demo") {
            int n = 10;
            is >> n;
            demo(n);
        } else if (cmd == "run") {
            double seconds = 60;
            is >> seconds;
            stack().run_until(stack().simulator().now() +
                              Duration::from_seconds(seconds));
            std::printf("now %s\n",
                        stack().simulator().now().str().c_str());
        } else if (cmd == "drain") {
            // `drain <node>` evacuates one node; bare `drain` keeps the
            // historical meaning: run the simulation to completion.
            int node = -1;
            if (is >> node) {
                auto s = client_.drain_node(node);
                std::printf("%s\n", s.str().c_str());
            } else {
                stack().run_to_completion();
                std::printf("drained at %s\n",
                            stack().simulator().now().str().c_str());
            }
        } else if (cmd == "cordon") {
            int node = -1;
            is >> node;
            auto s = client_.cordon(node);
            std::printf("%s\n", s.str().c_str());
        } else if (cmd == "uncordon") {
            int node = -1;
            is >> node;
            auto s = client_.uncordon(node);
            std::printf("%s\n", s.str().c_str());
        } else if (cmd == "health") {
            auto text = client_.health();
            std::fputs(text.is_ok() ? text.value().c_str()
                                    : (text.status().str() + "\n").c_str(),
                       stdout);
        } else if (cmd == "power") {
            auto text = client_.power();
            std::fputs(text.is_ok() ? text.value().c_str()
                                    : (text.status().str() + "\n").c_str(),
                       stdout);
        } else if (cmd == "energy") {
            auto text = client_.energy();
            std::fputs(text.is_ok() ? text.value().c_str()
                                    : (text.status().str() + "\n").c_str(),
                       stdout);
        } else if (cmd == "ps") {
            ps();
        } else if (cmd == "status") {
            cluster::JobId id = 0;
            is >> id;
            auto s = client_.status({client_.default_cluster(), id});
            std::printf("%s\n", s.is_ok() ? s.value().summary.c_str()
                                          : s.status().str().c_str());
        } else if (cmd == "logs") {
            cluster::JobId id = 0;
            is >> id;
            auto logs = client_.logs({client_.default_cluster(), id});
            if (!logs.is_ok()) {
                std::printf("%s\n", logs.status().str().c_str());
            } else {
                for (const auto &entry : logs.value())
                    std::printf("%s\n", entry.c_str());
            }
        } else if (cmd == "kill") {
            cluster::JobId id = 0;
            is >> id;
            auto s = client_.kill({client_.default_cluster(), id});
            std::printf("%s\n", s.str().c_str());
        } else if (cmd == "report") {
            auto text = client_.operator_report();
            std::fputs(text.is_ok() ? text.value().c_str()
                                    : (text.status().str() + "\n").c_str(),
                       stdout);
        } else if (cmd == "serve") {
            std::string verb;
            is >> verb;
            serve(verb, is);
        } else if (cmd == "accounting") {
            std::string group;
            is >> group;
            auto text = client_.accounting(group);
            std::fputs(text.is_ok() ? text.value().c_str()
                                    : (text.status().str() + "\n").c_str(),
                       stdout);
        } else {
            std::printf("unknown command '%s' (try: help)\n", cmd.c_str());
        }
        return true;
    }

    void
    help()
    {
        std::fputs(
            "clusters | use <name> | open <cfg> <name> | submit <file> "
            "| replay <csv> |\ndemo [n] | run <s> | drain [node] | ps | "
            "status <id> | logs <id> | kill <id> |\nreport | "
            "accounting <group> | cordon <node> | uncordon <node> | "
            "health | power | energy |\nserve demo [robust|baseline] "
            "[rate_hz] | serve status | quit\n",
            stdout);
    }

    /**
     * `serve demo [mode] [rate_hz]` clones the default cluster's config
     * with the request-serving plane enabled (the plane is wired at
     * stack construction, so it needs a fresh profile), registers it as
     * "<cluster>-serve" and makes it default; `serve status` prints the
     * default cluster's serving report.
     */
    void
    serve(const std::string &verb, std::istream &is)
    {
        if (verb == "status") {
            std::fputs(stack().serving_report().c_str(), stdout);
            return;
        }
        if (verb != "demo") {
            std::printf(
                "usage: serve demo [robust|baseline] [rate_hz] | "
                "serve status\n");
            return;
        }
        std::string mode = "robust";
        double rate_hz = 40.0;
        is >> mode >> rate_hz;
        core::StackConfig config = stack().config();
        config.serve.request_rate_hz = rate_hz;
        auto s = driver::apply_serve_mode(mode, 1.0, &config);
        if (!s.is_ok()) {
            std::printf("%s\n", s.str().c_str());
            return;
        }
        const std::string name = client_.default_cluster() + "-serve";
        if (stacks_.contains(name)) {
            std::printf("profile '%s' already open\n", name.c_str());
            return;
        }
        config.cluster.name = name;
        add(name, config);
        client_.set_default_cluster(name);
        std::printf("opened serving cluster '%s' (%s, %.0f req/s over "
                    "%.0f s); try: run %.0f ; serve status\n",
                    name.c_str(), mode.c_str(),
                    config.serve.request_rate_hz,
                    config.serve.horizon_s, config.serve.horizon_s);
    }

    void
    open_cluster(const std::string &path, const std::string &name)
    {
        if (name.empty() || stacks_.contains(name)) {
            std::printf("usage: open <config-file> <new-profile-name>\n");
            return;
        }
        std::ifstream file(path);
        if (!file) {
            std::printf("cannot open %s\n", path.c_str());
            return;
        }
        std::stringstream buffer;
        buffer << file.rdbuf();
        auto parsed = core::parse_stack_config(buffer.str());
        if (!parsed.is_ok()) {
            std::printf("%s\n", parsed.status().str().c_str());
            return;
        }
        add(name, parsed.value());
        client_.set_default_cluster(name);
        std::printf("opened cluster '%s' (%d GPUs), now default\n",
                    name.c_str(),
                    stacks_[name]->cluster().total_gpus());
    }

    void
    replay(const std::string &path)
    {
        auto trace = workload::read_trace_file(path);
        if (!trace.is_ok()) {
            std::printf("%s\n", trace.status().str().c_str());
            return;
        }
        // Arrivals are relative to t=0; shift to "now".
        const TimePoint now = stack().simulator().now();
        auto shifted = trace.value();
        for (auto &entry : shifted)
            entry.arrival = now + (entry.arrival - TimePoint::origin());
        stack().submit_trace(shifted);
        std::printf("replaying %zu task(s) from %s\n", shifted.size(),
                    path.c_str());
    }

    void
    submit_file(const std::string &path)
    {
        std::ifstream file(path);
        if (!file) {
            std::printf("cannot open %s\n", path.c_str());
            return;
        }
        std::stringstream buffer;
        buffer << file.rdbuf();
        auto handle = client_.submit_text(buffer.str());
        if (handle.is_ok()) {
            std::printf("submitted job %llu to %s\n",
                        (unsigned long long)handle.value().job,
                        handle.value().cluster.c_str());
        } else {
            std::printf("%s\n", handle.status().str().c_str());
        }
    }

    void
    demo(int n)
    {
        workload::TraceConfig trace;
        trace.num_jobs = n;
        trace.seed = demo_seed_++;
        trace.mean_interarrival_s = 1.0; // submit "now"-ish
        int ok = 0;
        for (auto &entry : workload::TraceGenerator(trace).generate()) {
            if (entry.spec.gpus > stack().cluster().total_gpus())
                entry.spec.gpus = stack().cluster().total_gpus();
            ok += client_.submit(entry.spec).is_ok();
        }
        std::printf("submitted %d demo job(s)\n", ok);
    }

    void
    ps()
    {
        TextTable table;
        table.set_header(
            {"id", "name", "user", "gpus", "state", "progress"});
        for (const auto *job : stack().jobs()) {
            table.add_row({std::to_string(job->id()), job->spec().name,
                           job->spec().user,
                           std::to_string(job->spec().gpus),
                           workload::job_state_name(job->state()),
                           TextTable::pct(job->estimated_progress(
                                              stack().simulator().now()),
                                          0)});
        }
        std::fputs(table.str().c_str(), stdout);
    }

    std::map<std::string, std::unique_ptr<core::TaccStack>> stacks_;
    tcloud::Client client_;
    uint64_t demo_seed_ = 1;
};

} // namespace

int
main(int argc, char **argv)
{
    Shell shell;
    // `tcloud -c "cmd; cmd"` runs a one-liner script.
    if (argc == 3 && std::string(argv[1]) == "-c") {
        std::string script(argv[2]);
        for (auto &c : script) {
            if (c == ';')
                c = '\n';
        }
        std::istringstream in(script);
        return shell.repl(in, false);
    }
    return shell.repl(std::cin, false);
}
