/**
 * @file
 * tacc_sweep — the parallel experiment-sweep driver CLI.
 *
 * Expands a sweep spec (grid over power cap x policy / fault mode /
 * scheduler / placement / preemption mode / load / seed) into
 * independent scenario runs, executes them on a thread pool, and
 * reports per-run metrics plus determinism digests.
 * The digests are the CI regression gate: any change to scheduling or
 * placement decisions moves a digest, and `--check-goldens` fails.
 *
 *   tacc_sweep [options]
 *     --spec FILE        sweep spec (default tests/goldens/ci_sweep.spec)
 *     --jobs N           concurrent simulations (0 = hardware, default 1)
 *     --out FILE         write the JSON summary
 *     --digests FILE     write the canonical digests text
 *     --goldens FILE     golden digests file
 *                        (default tests/goldens/sweep_digests.txt)
 *     --check-goldens    compare against the golden file; exit 1 on drift
 *     --update-goldens   rewrite the golden file from this run
 *     --list             dry run: print the expanded grid (a summary
 *                        line plus one scenario name per line) and exit
 *     --streaming        force streaming (million-job) retention for
 *                        every run, overriding the spec; digests are
 *                        identical to materialized runs, so the same
 *                        golden files apply
 *     --quiet            suppress the per-run table
 *
 * Golden workflow: after an intentional behaviour change, run
 *   tacc_sweep --update-goldens
 * from the repo root and commit the refreshed digests file.
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include "common/hash.h"
#include "common/table.h"
#include "driver/runner.h"

using namespace tacc;

namespace {

struct Options {
    std::string spec_path = "tests/goldens/ci_sweep.spec";
    std::string out_path;
    std::string digests_path;
    std::string goldens_path = "tests/goldens/sweep_digests.txt";
    int jobs = 1;
    bool check_goldens = false;
    bool update_goldens = false;
    bool list_only = false;
    bool streaming = false;
    bool quiet = false;
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--spec FILE] [--jobs N] [--out FILE] "
                 "[--digests FILE]\n"
                 "       [--goldens FILE] [--check-goldens] "
                 "[--update-goldens] [--list] [--streaming] [--quiet]\n",
                 argv0);
    return 2;
}

bool
write_file(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::trunc);
    out << content;
    return bool(out);
}

void
print_table(const driver::SweepSummary &summary)
{
    TextTable table("sweep");
    table.set_header({"scenario", "done", "meanJCT(h)", "meanWait(m)",
                      "util", "preempt", "wall(ms)", "digest"});
    for (const auto &run : summary.runs) {
        const auto &r = run.result;
        table.add_row({
            run.scenario.name,
            TextTable::num(double(r.completed), 6),
            TextTable::fixed(r.mean_jct_s / 3600.0, 2),
            TextTable::fixed(r.mean_wait_s / 60.0, 1),
            TextTable::pct(r.arrival_window_utilization),
            TextTable::num(double(r.preemptions), 6),
            TextTable::fixed(run.wall_ms, 1),
            Fnv1a::hex(run.digest),
        });
    }
    std::printf("%s", table.str().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--spec") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.spec_path = v;
        } else if (arg == "--jobs") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.jobs = std::atoi(v);
            if (opt.jobs < 0)
                return usage(argv[0]);
        } else if (arg == "--out") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.out_path = v;
        } else if (arg == "--digests") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.digests_path = v;
        } else if (arg == "--goldens") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.goldens_path = v;
        } else if (arg == "--check-goldens") {
            opt.check_goldens = true;
        } else if (arg == "--update-goldens") {
            opt.update_goldens = true;
        } else if (arg == "--list") {
            opt.list_only = true;
        } else if (arg == "--streaming") {
            opt.streaming = true;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else {
            return usage(argv[0]);
        }
    }

    auto spec = driver::load_sweep_spec(opt.spec_path);
    if (!spec.is_ok()) {
        std::fprintf(stderr, "tacc_sweep: %s\n",
                     spec.status().str().c_str());
        return 2;
    }
    if (opt.streaming)
        spec.value().base.streaming = true;

    if (opt.list_only) {
        const auto scenarios = driver::expand_sweep(spec.value());
        std::printf("# %zu scenario(s) from %s\n", scenarios.size(),
                    opt.spec_path.c_str());
        for (const auto &scenario : scenarios)
            std::printf("%s\n", scenario.name.c_str());
        return 0;
    }

    const auto summary = driver::run_sweep(spec.value(), opt.jobs);
    if (!opt.quiet)
        print_table(summary);
    std::printf("%zu runs, %d worker(s), %.1f ms wall\n",
                summary.runs.size(), summary.workers, summary.wall_ms);

    if (!opt.out_path.empty() &&
        !write_file(opt.out_path, driver::summary_to_json(summary))) {
        std::fprintf(stderr, "tacc_sweep: cannot write %s\n",
                     opt.out_path.c_str());
        return 2;
    }
    if (!opt.digests_path.empty() &&
        !write_file(opt.digests_path, driver::digests_text(summary))) {
        std::fprintf(stderr, "tacc_sweep: cannot write %s\n",
                     opt.digests_path.c_str());
        return 2;
    }

    if (opt.update_goldens) {
        if (!write_file(opt.goldens_path, driver::digests_text(summary))) {
            std::fprintf(stderr, "tacc_sweep: cannot write %s\n",
                         opt.goldens_path.c_str());
            return 2;
        }
        std::printf("updated goldens: %s\n", opt.goldens_path.c_str());
    }

    if (opt.check_goldens) {
        std::ifstream in(opt.goldens_path);
        if (!in) {
            std::fprintf(stderr,
                         "tacc_sweep: cannot read goldens %s "
                         "(run --update-goldens first)\n",
                         opt.goldens_path.c_str());
            return 2;
        }
        std::string golden((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
        const auto check = driver::check_digests(summary, golden);
        if (!check.ok) {
            std::fprintf(stderr, "GOLDEN DIGEST MISMATCH\n%s",
                         check.report.c_str());
            return 1;
        }
        std::printf("goldens OK (%zu digests match %s)\n",
                    summary.runs.size(), opt.goldens_path.c_str());
    }
    return 0;
}
