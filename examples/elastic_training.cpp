/**
 * @file
 * Elastic training: watching the goodput scheduler resize a job.
 *
 * Submits one elastic job (min 2, max 32 GPUs) onto a cluster, then
 * floods the cluster with fixed-size batch work and lets it drain. The
 * allocation timeline shows the elastic job growing into idle capacity,
 * shrinking under contention, and growing back — the Pollux behaviour,
 * driven here by TACC's ElasticScheduler.
 */
#include <cstdio>

#include "core/stack.h"

using namespace tacc;

namespace {

workload::TaskSpec
batch_spec(int index)
{
    workload::TaskSpec spec;
    spec.name = "batch-" + std::to_string(index);
    spec.user = "bob";
    spec.group = "rivals";
    spec.gpus = 8;
    spec.model = "resnet50";
    spec.iterations = 400000;
    return spec;
}

} // namespace

int
main()
{
    core::StackConfig config;
    // Two 16-GPU NVSwitch islands (DGX-style "superpod" nodes), so that
    // growth inside an island pays off in the communication model.
    config.cluster.topology.racks = 1;
    config.cluster.topology.nodes_per_rack = 2;
    config.cluster.node.gpu_count = 16;
    config.cluster.topology.nvlink_gbps = 38400.0;
    config.cluster.node.nvlink_gbps = 38400.0;
    config.scheduler = "elastic";
    config.sched_opts.elastic_period = Duration::minutes(2);
    config.emit_monitor_logs = false;
    core::TaccStack stack(config);

    workload::TaskSpec elastic;
    elastic.name = "stretchy";
    elastic.user = "alice";
    elastic.group = "nlp";
    elastic.gpus = 8;
    elastic.gpus_per_node_limit = 16;
    elastic.min_gpus = 2;
    elastic.max_gpus = 16;
    elastic.model = "bert-large";
    elastic.iterations = 600000;
    auto id = stack.submit(elastic);
    if (!id.is_ok()) {
        std::fprintf(stderr, "submit: %s\n", id.status().str().c_str());
        return 1;
    }
    const workload::Job *job = stack.find_job(id.value());

    std::printf("t(min)  elastic GPUs  cluster used  progress\n");
    int last_gpus = -1;
    int batch_index = 0;
    for (int minute = 0; minute <= 240 && !job->terminal(); minute += 2) {
        stack.run_until(TimePoint::origin() + Duration::minutes(minute));
        // Phase 2 (40-90 min): fixed-size rivals flood the cluster.
        if (minute >= 40 && minute < 90 && minute % 10 == 0)
            (void)stack.submit(batch_spec(batch_index++));
        const int gpus = job->running_gpus();
        if (gpus != last_gpus) {
            std::printf("%6d  %12d  %12d  %7.1f%%\n", minute, gpus,
                        stack.cluster().used_gpus(),
                        job->progress() * 100.0);
            last_gpus = gpus;
        }
    }
    stack.run_to_completion();

    std::printf("\nelastic job finished: state=%s, segments=%d, "
                "resizes(preemptions)=%d, JCT=%s\n",
                workload::job_state_name(job->state()),
                job->segment_count(), job->preemption_count(),
                job->terminal() ? job->jct().str().c_str() : "-");
    return 0;
}
