/**
 * @file
 * Comparing scheduling policies on your own workload.
 *
 * Demonstrates the scenario harness: one ScenarioConfig describes the
 * deployment + workload; run_scenario() returns the summary metrics.
 * Swap policies (or placements) by changing a string.
 *
 *   ./build/examples/scheduler_bakeoff [policy ...]
 *   ./build/examples/scheduler_bakeoff fifo sjf las
 */
#include <cstdio>

#include "common/table.h"
#include "core/scenario.h"
#include "sched/schedulers.h"

using namespace tacc;

int
main(int argc, char **argv)
{
    std::vector<std::string> policies;
    for (int i = 1; i < argc; ++i)
        policies.push_back(argv[i]);
    if (policies.empty())
        policies = {"fifo", "fairshare", "backfill-easy", "qos-preempt"};

    // Validate requested names against the factory before running.
    for (const auto &name : policies) {
        if (!sched::make_scheduler(name)) {
            std::fprintf(stderr, "unknown scheduler '%s'; known: ",
                         name.c_str());
            for (const auto &known : sched::scheduler_names())
                std::fprintf(stderr, "%s ", known.c_str());
            std::fprintf(stderr, "\n");
            return 1;
        }
    }

    TextTable table("scheduler bakeoff (300 jobs, 128 GPUs)");
    table.set_header({"policy", "meanJCT(h)", "meanWait(m)", "p99Wait(m)",
                      "slowdown", "fairness", "preempt"});

    for (const auto &policy : policies) {
        core::ScenarioConfig config;
        // A half-size cluster to make contention visible.
        config.stack.cluster.topology.racks = 2;
        config.stack.cluster.topology.nodes_per_rack = 8;
        config.stack.scheduler = policy;
        config.stack.placement = "topology";
        config.stack.emit_monitor_logs = false;
        config.trace.num_jobs = 300;
        config.trace.seed = 7;
        config.trace.mean_interarrival_s = 110.0;
        config.trace.gpu_demand_pmf = {
            {1, 0.5}, {2, 0.15}, {4, 0.15}, {8, 0.12}, {16, 0.06},
            {32, 0.02}};

        const auto r = core::run_scenario(config);
        table.add_row({policy, TextTable::fixed(r.mean_jct_s / 3600.0, 2),
                       TextTable::fixed(r.mean_wait_s / 60.0, 1),
                       TextTable::fixed(r.p99_wait_s / 60.0, 1),
                       TextTable::fixed(r.mean_slowdown, 2),
                       TextTable::fixed(r.group_fairness, 3),
                       TextTable::num(double(r.preemptions), 6)});
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf("\ntip: pass policy names as arguments, e.g. "
                "`scheduler_bakeoff las drf gang`\n");
    return 0;
}
