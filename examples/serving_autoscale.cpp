/**
 * @file
 * Serving a model with an SLO on a diurnal demand curve.
 *
 * Uses the serve substrate directly: builds a resnet50 service with a
 * 250 ms / 99% SLO, rides a day of demand under the queueing-model
 * autoscaler, and prints the replica timeline plus the cost comparison
 * against provisioning for peak.
 */
#include <cmath>
#include <cstdio>

#include "serve/service_sim.h"

using namespace tacc;

int
main()
{
    serve::ServiceConfig config;
    config.name = "campus-classifier";
    config.model = "resnet50";
    config.peak_rate_hz = 1200.0;
    config.trough_fraction = 0.2;
    config.slo_s = 0.25;
    config.slo_target = 0.99;
    config.pool_gpus = 48;
    serve::ServiceSimulator sim(config);

    std::printf("service '%s': %.0f req/s per replica, SLO %.0f ms @ "
                "%.0f%%\n\n",
                config.name.c_str(), sim.service_rate_hz(),
                config.slo_s * 1000.0, config.slo_target * 100.0);

    serve::SloAwareAutoscaler autoscaler(1.15);
    const auto result = sim.run(autoscaler);

    std::printf("hour  req/s  replicas  attainment\n");
    for (size_t i = 0; i < result.epochs.size(); i += 6) {
        const auto &e = result.epochs[i];
        std::printf("%4.0f  %5.0f  %8d  %9.2f%%\n", e.start.to_hours(),
                    e.arrival_rate_hz, e.replicas,
                    e.attainment * 100.0);
    }

    const int for_peak = serve::min_replicas_for_slo(
        config.peak_rate_hz, sim.service_rate_hz(), config.slo_s,
        config.slo_target, config.pool_gpus);
    serve::StaticAutoscaler peak(for_peak, "static-peak");
    const auto baseline = sim.run(peak);

    std::printf("\nday summary: attainment %.2f%% using %.0f "
                "replica-hours\n",
                result.mean_attainment * 100.0, result.replica_hours);
    std::printf("provision-for-peak baseline: attainment %.2f%% using "
                "%.0f replica-hours\n",
                baseline.mean_attainment * 100.0,
                baseline.replica_hours);
    std::printf("autoscaling saves %.0f%% of the GPU bill at equal "
                "SLO.\n",
                (1.0 - result.replica_hours / baseline.replica_hours) *
                    100.0);
    return 0;
}
