/**
 * @file
 * An ML application workflow as a task pipeline:
 *
 *   data-prep -> { train-vision , train-language } -> evaluate
 *
 * Dependencies are submitted up front with tcloud's submit_after; TACC
 * holds each stage until its parents complete, then schedules it like
 * any other task. The example prints the pipeline's realized timeline.
 */
#include <cstdio>

#include "core/stack.h"
#include "tcloud/client.h"

using namespace tacc;

namespace {

workload::TaskSpec
stage(const std::string &name, const std::string &model, int gpus,
      int64_t iterations)
{
    workload::TaskSpec spec;
    spec.name = name;
    spec.user = "alice";
    spec.group = "nlp-lab";
    spec.gpus = gpus;
    spec.model = model;
    spec.iterations = iterations;
    return spec;
}

} // namespace

int
main()
{
    core::StackConfig config;
    config.cluster.topology.racks = 1;
    config.cluster.topology.nodes_per_rack = 4;
    config.scheduler = "fifo-skip";
    core::TaccStack stack(config);

    tcloud::Client client;
    client.add_cluster("campus", &stack);

    auto prep = client.submit(stage("data-prep", "dlrm", 1, 20000));
    if (!prep.is_ok()) {
        std::fprintf(stderr, "%s\n", prep.status().str().c_str());
        return 1;
    }
    auto vision = client.submit_after(
        stage("train-vision", "resnet50", 8, 100000), {prep.value()});
    auto language = client.submit_after(
        stage("train-language", "bert-large", 16, 20000), {prep.value()});
    auto eval = client.submit_after(stage("evaluate", "resnet50", 2, 500),
                                    {vision.value(), language.value()});
    if (!eval.is_ok()) {
        std::fprintf(stderr, "%s\n", eval.status().str().c_str());
        return 1;
    }

    std::printf("pipeline submitted: %llu -> {%llu, %llu} -> %llu\n",
                (unsigned long long)prep.value().job,
                (unsigned long long)vision.value().job,
                (unsigned long long)language.value().job,
                (unsigned long long)eval.value().job);

    auto final_status = client.wait(eval.value());
    if (!final_status.is_ok()) {
        std::fprintf(stderr, "%s\n",
                     final_status.status().str().c_str());
        return 1;
    }

    std::printf("\nstage timeline:\n");
    std::printf("%-16s %12s %12s %12s\n", "stage", "submitted",
                "started", "finished");
    for (const auto &handle : {prep.value(), vision.value(),
                               language.value(), eval.value()}) {
        const workload::Job *job = stack.find_job(handle.job);
        std::printf("%-16s %11.1fm %11.1fm %11.1fm\n",
                    job->spec().name.c_str(),
                    job->submit_time().to_seconds() / 60.0,
                    (job->submit_time() + job->queueing_delay())
                            .to_seconds() /
                        60.0,
                    job->finish_time().to_seconds() / 60.0);
    }
    std::printf("\nnote: both training stages start together right after "
                "data-prep; evaluate\nwaits for the slower one.\n");
    return 0;
}
