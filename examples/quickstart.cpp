/**
 * @file
 * Quickstart: bring up a TACC cluster, submit a training task through
 * tcloud using the canonical task-schema text, watch it run, and read the
 * aggregated distributed logs.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "core/stack.h"
#include "tcloud/client.h"

using namespace tacc;

int
main()
{
    // 1. Deploy a small cluster: 2 racks x 4 nodes x 8 A100s.
    core::StackConfig config;
    config.cluster.name = "quickstart";
    config.cluster.topology.racks = 2;
    config.cluster.topology.nodes_per_rack = 4;
    config.scheduler = "fairshare";
    config.placement = "topology";
    core::TaccStack stack(config);

    // 2. Point a tcloud client at it (one line of configuration).
    tcloud::Client client;
    client.add_cluster("campus", &stack);

    // 3. Submit a task from its self-contained schema text. This is
    //    exactly what `tcloud submit task.yaml` sends.
    const char *task_text =
        "task: bert-finetune\n"
        "user: alice\n"
        "group: nlp-lab\n"
        "gpus: 16\n"
        "qos: batch\n"
        "model: bert-large\n"
        "iterations: 2000\n"
        "time_limit_s: 86400\n"
        "artifact: alice/code,9000000,3\n"
        "artifact: deps/tacc/pytorch:2.1,2200000000,1\n"
        "artifact: nlp-lab/dataset,18000000000,1\n";

    auto handle = client.submit_text(task_text);
    if (!handle.is_ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     handle.status().str().c_str());
        return 1;
    }
    std::printf("submitted job %llu to cluster '%s'\n",
                (unsigned long long)handle.value().job,
                handle.value().cluster.c_str());

    // 4. Let provisioning finish and peek at the status mid-flight.
    stack.run_until(stack.simulator().now() + Duration::minutes(10));
    auto mid = client.status(handle.value());
    if (mid.is_ok())
        std::printf("after 10 min: %s\n", mid.value().summary.c_str());

    // 5. Wait for completion and show the distributed log aggregation.
    auto final_status = client.wait(handle.value());
    if (!final_status.is_ok()) {
        std::fprintf(stderr, "wait failed: %s\n",
                     final_status.status().str().c_str());
        return 1;
    }
    std::printf("final: %s\n", final_status.value().summary.c_str());
    std::printf("JCT: %s, provisioning: %s\n",
                stack.find_job(handle.value().job)->jct().str().c_str(),
                stack.find_job(handle.value().job)
                    ->provision_latency()
                    .str()
                    .c_str());

    std::printf("\naggregated logs (tcloud logs):\n");
    auto logs = client.logs(handle.value());
    for (const auto &line : logs.value())
        std::printf("  %s\n", line.c_str());
    return 0;
}
