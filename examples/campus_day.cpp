/**
 * @file
 * Operating a shared campus cluster for a simulated week.
 *
 * Sets up the reference deployment (4 racks x 8 nodes x 8 GPUs) with
 * fair-share scheduling, group quotas, and a diurnal arrival pattern,
 * then prints the operator's daily report: utilization and queue depth
 * by day, per-group service and fairness, compiler-cache savings, and
 * the week's job outcomes.
 *
 *   ./build/examples/campus_day [num_jobs] [seed]
 */
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "common/table.h"
#include "core/stack.h"
#include "workload/trace.h"

using namespace tacc;

int
main(int argc, char **argv)
{
    const int num_jobs = argc > 1 ? std::atoi(argv[1]) : 3000;
    const uint64_t seed = argc > 2 ? uint64_t(std::atoll(argv[2])) : 2026;

    // Deployment: the campus cluster with per-group quotas.
    core::StackConfig config;
    config.cluster.name = "campus";
    config.cluster.topology.racks = 4;
    config.cluster.topology.nodes_per_rack = 8;
    config.cluster.topology.oversubscription = 4.0;
    config.scheduler = "fairshare";
    config.placement = "topology";
    config.usage_half_life = Duration::hours(24);
    config.default_group_quota = 128; // half the cluster per group
    config.emit_monitor_logs = false;
    core::TaccStack stack(config);

    // Workload: one week of diurnal arrivals.
    workload::TraceConfig trace;
    trace.num_jobs = num_jobs;
    trace.seed = seed;
    trace.diurnal = true;
    trace.diurnal_peak_ratio = 4.0;
    trace.mean_interarrival_s = 800.0; // ~320 s effective gap
    const auto entries = workload::TraceGenerator(trace).generate();
    const double span_days = entries.back().arrival.to_hours() / 24.0;
    std::printf("submitting %d jobs over %.1f days to %d GPUs...\n",
                num_jobs, span_days, stack.cluster().total_gpus());
    stack.submit_trace(entries);
    if (!stack.run_to_completion()) {
        std::fprintf(stderr, "warning: run did not quiesce\n");
    }

    const auto &metrics = stack.metrics();
    const TimePoint end = metrics.makespan();
    const int total_gpus = stack.cluster().total_gpus();

    TextTable daily("daily operations report");
    daily.set_header({"day", "utilization", "mean queue depth"});
    const auto util = metrics.utilization_series(
        TimePoint::origin(), end, Duration::hours(24), total_gpus);
    const auto queue = metrics.queue_depth_series(
        TimePoint::origin(), end, Duration::hours(24));
    for (size_t day = 0; day < util.size() && day < 10; ++day) {
        daily.add_row({TextTable::num(double(day), 2),
                       TextTable::pct(util[day]),
                       TextTable::fixed(queue[day], 1)});
    }
    std::fputs(daily.str().c_str(), stdout);

    TextTable groups("per-group service");
    groups.set_header({"group", "GPU-hours", "mean slowdown"});
    const auto slowdowns = metrics.mean_slowdown_by_group();
    for (const auto &[group, gpu_s] : metrics.gpu_seconds_by_group()) {
        const auto it = slowdowns.find(group);
        groups.add_row({group, TextTable::fixed(gpu_s / 3600.0, 0),
                        it != slowdowns.end()
                            ? TextTable::fixed(it->second, 2)
                            : "-"});
    }
    std::fputs(groups.str().c_str(), stdout);

    const auto &cstats = stack.task_compiler().stats();
    TextTable summary("week summary");
    summary.set_header({"metric", "value"});
    summary.add_row({"jobs completed",
                     TextTable::num(double(metrics.completed_count()), 6)});
    summary.add_row({"jobs failed",
                     TextTable::num(double(metrics.failed_count()), 6)});
    summary.add_row({"preemptions",
                     TextTable::num(double(metrics.preemptions()), 6)});
    summary.add_row(
        {"mean wait", strfmt("%.1f min",
                             metrics.wait_samples().mean() / 60.0)});
    summary.add_row(
        {"p99 wait", strfmt("%.1f min",
                            metrics.wait_samples().percentile(99) / 60.0)});
    summary.add_row({"slowdown fairness (Jain)",
                     TextTable::fixed(metrics.group_fairness(), 3)});
    summary.add_row({"compiler cache savings",
                     TextTable::pct(cstats.transfer_savings())});
    summary.add_row({"bytes not re-transferred",
                     format_bytes(cstats.bytes_cached)});
    std::fputs(summary.str().c_str(), stdout);
    return 0;
}
