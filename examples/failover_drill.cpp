/**
 * @file
 * Failure-injection drill: watching fail-safe runtime switching work.
 *
 * Deploys a cluster where every job is incompatible with one of the two
 * runtime systems, submits a training task that the compiler (by
 * construction) starts on its broken runtime, and follows the recovery
 * through tcloud's aggregated logs: segment failure -> requeue -> retry
 * on the other runtime -> completion.
 */
#include <cstdio>

#include "core/stack.h"
#include "tcloud/client.h"

using namespace tacc;

int
main()
{
    core::StackConfig config;
    config.cluster.topology.racks = 1;
    config.cluster.topology.nodes_per_rack = 4;
    config.scheduler = "fifo";
    // Every job has a broken runtime; fail-safe switching is on.
    config.exec.failure.persistent_prob = 1.0;
    config.exec.failure.failsafe_switching = true;
    config.exec.failure.max_attempts = 4;
    // Compile everything to the container runtime so half the jobs start
    // on their broken side.
    config.compiler.container_threshold_bytes = 0;
    core::TaccStack stack(config);

    tcloud::Client client;
    client.add_cluster("drill", &stack);

    // Submit tasks until we find one whose broken runtime is the
    // container runtime (i.e. the first attempt will crash).
    tcloud::TaskHandle victim{};
    for (int i = 0; i < 8; ++i) {
        workload::TaskSpec spec;
        spec.name = "drill-" + std::to_string(i);
        spec.user = "ops";
        spec.group = "sre";
        spec.gpus = 4;
        spec.model = "bert-large";
        spec.iterations = 20000;
        auto handle = client.submit(spec);
        if (!handle.is_ok()) {
            std::fprintf(stderr, "submit: %s\n",
                         handle.status().str().c_str());
            return 1;
        }
        const workload::Job *job = stack.find_job(handle.value().job);
        if (stack.engine().failures().is_incompatible(
                *job, compiler::RuntimeKind::kContainer)) {
            victim = handle.value();
            std::printf("job %llu ('%s') is container-incompatible: "
                        "its first attempt will crash\n",
                        (unsigned long long)victim.job,
                        job->spec().name.c_str());
            break;
        }
        // Not a demo candidate; let it run in the background.
    }
    if (victim.job == cluster::kInvalidJob) {
        std::fprintf(stderr, "no container-incompatible job in 8 draws\n");
        return 1;
    }

    auto final_status = client.wait(victim);
    if (!final_status.is_ok()) {
        std::fprintf(stderr, "wait: %s\n",
                     final_status.status().str().c_str());
        return 1;
    }

    std::printf("\nfinal: %s\n", final_status.value().summary.c_str());
    std::printf("segments used: %d (first crashed, second switched "
                "runtime)\n",
                final_status.value().segments);
    std::printf("cluster-wide segment failures: %llu\n",
                (unsigned long long)stack.metrics().segment_failures());

    std::printf("\ntcloud logs %llu:\n", (unsigned long long)victim.job);
    const auto logs = client.logs(victim);
    for (const auto &line : logs.value())
        std::printf("  %s\n", line.c_str());

    const workload::Job *job = stack.find_job(victim.job);
    return job->state() == workload::JobState::kCompleted ? 0 : 1;
}
