#include "cluster/cluster.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/strings.h"

namespace tacc::cluster {

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)), topology_(config_.topology)
{
    const int n = config_.topology.total_nodes();
    nodes_.reserve(size_t(n));
    for (int i = 0; i < n; ++i) {
        const int rack = i / config_.topology.nodes_per_rack;
        const auto override_it = config_.rack_node_overrides.find(rack);
        const NodeSpec &spec =
            override_it != config_.rack_node_overrides.end()
                ? override_it->second
                : config_.node;
        nodes_.emplace_back(NodeId(i),
                            strfmt("%s-r%02d-n%02d", config_.name.c_str(),
                                   rack, i % config_.topology.nodes_per_rack),
                            rack, spec);
        total_gpus_ += spec.gpu_count;
        max_gpus_per_node_ = std::max(max_gpus_per_node_, spec.gpu_count);
    }
    free_gpus_ = total_gpus_;
    health_ = NodeHealthTracker(n);
}

int
Cluster::schedulable_free_gpus() const
{
    if (health_.all_healthy())
        return free_gpus_;
    int free = 0;
    for (const auto &n : nodes_)
        if (health_.schedulable(n.id()))
            free += n.free_gpu_count();
    return free;
}

int
Cluster::schedulable_total_gpus() const
{
    if (health_.all_healthy())
        return total_gpus_;
    int total = 0;
    for (const auto &n : nodes_)
        if (health_.schedulable(n.id()))
            total += n.gpu_count();
    return total;
}

const Node &
Cluster::node(NodeId id) const
{
    assert(size_t(id) < nodes_.size());
    return nodes_[id];
}

Node &
Cluster::node(NodeId id)
{
    assert(size_t(id) < nodes_.size());
    return nodes_[id];
}

Status
Cluster::allocate(JobId job, const Placement &placement)
{
    if (job == kInvalidJob)
        return Status::invalid_argument("invalid job id");
    if (placement.empty() || placement.total_gpus() == 0)
        return Status::invalid_argument("empty placement");
    if (holdings_.contains(job)) {
        return Status::already_exists(
            strfmt("job %llu already holds GPUs", (unsigned long long)job));
    }

    // Validate before mutating so failure leaves no residue.
    std::unordered_set<NodeId> seen;
    for (const auto &slice : placement.slices) {
        if (size_t(slice.node) >= nodes_.size())
            return Status::invalid_argument("placement names unknown node");
        if (!seen.insert(slice.node).second)
            return Status::invalid_argument("duplicate node in placement");
        if (slice.gpu_indices.empty())
            return Status::invalid_argument("empty slice in placement");
        if (int(slice.gpu_indices.size()) >
            nodes_[slice.node].free_gpu_count()) {
            return Status::resource_exhausted(
                strfmt("%s has %d free GPUs, slice needs %zu",
                       nodes_[slice.node].name().c_str(),
                       nodes_[slice.node].free_gpu_count(),
                       slice.gpu_indices.size()));
        }
    }

    Placement granted;
    for (const auto &slice : placement.slices) {
        auto result =
            nodes_[slice.node].allocate(job, int(slice.gpu_indices.size()));
        assert(result.is_ok());
        granted.slices.push_back(
            PlacementSlice{slice.node, result.value()});
    }
    free_gpus_ -= granted.total_gpus();
    holdings_.emplace(job, std::move(granted));
    return Status::ok();
}

int
Cluster::release(JobId job)
{
    auto it = holdings_.find(job);
    if (it == holdings_.end())
        return 0;
    int freed = 0;
    for (const auto &slice : it->second.slices)
        freed += nodes_[slice.node].release(job);
    free_gpus_ += freed;
    holdings_.erase(it);
    return freed;
}

Placement
Cluster::placement_of(JobId job) const
{
    auto it = holdings_.find(job);
    return it == holdings_.end() ? Placement{} : it->second;
}

std::vector<JobId>
Cluster::running_jobs() const
{
    std::vector<JobId> out;
    out.reserve(holdings_.size());
    for (const auto &[job, placement] : holdings_)
        out.push_back(job);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::string>
Cluster::gpu_models() const
{
    std::vector<std::string> out;
    for (const auto &n : nodes_) {
        if (std::find(out.begin(), out.end(), n.spec().gpu.model) ==
            out.end()) {
            out.push_back(n.spec().gpu.model);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<uint8_t>
Cluster::eligible_mask(const std::string &gpu_model) const
{
    std::vector<uint8_t> mask(nodes_.size(), 1);
    if (gpu_model.empty())
        return mask;
    for (size_t i = 0; i < nodes_.size(); ++i)
        mask[i] = nodes_[i].spec().gpu.model == gpu_model ? 1 : 0;
    return mask;
}

OccupancySnapshot
Cluster::occupancy() const
{
    OccupancySnapshot snap;
    snap.total_gpus = total_gpus_;
    snap.used_gpus = used_gpus();
    int stranded_free = 0;
    for (const auto &n : nodes_) {
        if (n.is_idle()) {
            ++snap.idle_nodes;
        } else if (n.is_full()) {
            ++snap.full_nodes;
        } else {
            ++snap.partial_nodes;
            stranded_free += n.free_gpu_count();
        }
        snap.largest_free_block =
            std::max(snap.largest_free_block, n.free_gpu_count());
    }
    snap.fragmentation =
        free_gpus_ ? double(stranded_free) / double(free_gpus_) : 0.0;
    return snap;
}

} // namespace tacc::cluster
