/**
 * @file
 * Compute node model: GPU inventory plus CPU/memory tracking.
 *
 * A node owns a fixed set of identical GPUs. Allocation is per-GPU so the
 * execution layer knows exactly which devices a job holds (NVLink locality
 * depends on it) and so fragmentation is observable.
 */
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/types.h"
#include "common/status.h"

namespace tacc::cluster {

/** Static description of a GPU model. */
struct GpuSpec {
    std::string model = "A100";
    double tflops = 312.0;   ///< dense fp16 peak, used by the compute model
    double memory_gb = 80.0;
};

/** Static per-node hardware description. */
struct NodeSpec {
    GpuSpec gpu;
    int gpu_count = 8;
    int cpu_cores = 128;
    double memory_gb = 1024.0;
    double nic_gbps = 100.0;      ///< node uplink to the ToR switch
    double nvlink_gbps = 19200.0; ///< aggregate intra-node GPU fabric
};

/** A compute node with per-GPU allocation state. */
class Node
{
  public:
    Node(NodeId id, std::string name, int rack, NodeSpec spec);

    NodeId id() const { return id_; }
    const std::string &name() const { return name_; }
    int rack() const { return rack_; }
    const NodeSpec &spec() const { return spec_; }

    int gpu_count() const { return spec_.gpu_count; }
    int free_gpu_count() const { return free_gpus_; }
    int used_gpu_count() const { return spec_.gpu_count - free_gpus_; }
    bool is_idle() const { return free_gpus_ == spec_.gpu_count; }
    bool is_full() const { return free_gpus_ == 0; }

    /** Jobs currently holding GPUs on this node. */
    std::vector<JobId> resident_jobs() const;

    /** GPUs held by a given job on this node (empty if none). */
    std::vector<int> gpus_of(JobId job) const;

    /**
     * Allocates count GPUs to job; picks the lowest-indexed free devices
     * (deterministic).
     * @return the granted GPU indices, or resource_exhausted.
     */
    StatusOr<std::vector<int>> allocate(JobId job, int count);

    /** Releases everything job holds here. @return number of GPUs freed. */
    int release(JobId job);

    /** True if the given GPU index is currently free. */
    bool gpu_free(int index) const;

  private:
    NodeId id_;
    std::string name_;
    int rack_;
    NodeSpec spec_;
    int free_gpus_;
    std::vector<JobId> gpu_owner_; ///< kInvalidJob when free
};

} // namespace tacc::cluster
