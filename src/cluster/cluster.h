/**
 * @file
 * The Cluster: node inventory + topology + allocation bookkeeping.
 *
 * The cluster is pure mechanism: it validates and applies placements that
 * the scheduling layer computed, tracks which job holds which GPUs, and
 * exposes occupancy/fragmentation metrics. It never decides anything.
 */
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/health.h"
#include "cluster/node.h"
#include "cluster/topology.h"
#include "cluster/types.h"
#include "common/status.h"

namespace tacc::cluster {

/**
 * Everything needed to build a cluster. By default all racks share one
 * NodeSpec; campus clusters are usually bought in generations, so
 * rack_node_overrides swaps whole racks to different hardware (older
 * GPUs, fewer devices, slower NICs).
 */
struct ClusterConfig {
    std::string name = "tacc";
    TopologyConfig topology;
    NodeSpec node;
    /** rack index -> hardware for that rack (others use `node`). */
    std::map<int, NodeSpec> rack_node_overrides;

    ClusterConfig()
    {
        // Keep the per-node NIC/NVLink numbers and the topology's in sync
        // by default; callers overriding one should override both.
        node.nic_gbps = topology.nic_gbps;
        node.nvlink_gbps = topology.nvlink_gbps;
    }

    /** Total GPUs, accounting for per-rack overrides. */
    int
    total_gpus() const
    {
        int total = 0;
        for (int r = 0; r < topology.racks; ++r) {
            auto it = rack_node_overrides.find(r);
            const NodeSpec &spec =
                it != rack_node_overrides.end() ? it->second : node;
            total += topology.nodes_per_rack * spec.gpu_count;
        }
        return total;
    }
};

/** Cluster-wide occupancy snapshot. */
struct OccupancySnapshot {
    int total_gpus = 0;
    int used_gpus = 0;
    int idle_nodes = 0;
    int full_nodes = 0;
    int partial_nodes = 0;
    /**
     * Fragmentation: fraction of free GPUs stranded on partially-occupied
     * nodes (free GPUs that cannot serve a whole-node request).
     */
    double fragmentation = 0.0;
    /** Largest single-node free block, in GPUs. */
    int largest_free_block = 0;

    double
    utilization() const
    {
        return total_gpus ? double(used_gpus) / double(total_gpus) : 0.0;
    }
};

/** A homogeneous GPU cluster with per-GPU allocation state. */
class Cluster
{
  public:
    explicit Cluster(ClusterConfig config);

    const ClusterConfig &config() const { return config_; }
    const std::string &name() const { return config_.name; }
    const Topology &topology() const { return topology_; }

    int node_count() const { return int(nodes_.size()); }
    int total_gpus() const { return total_gpus_; }
    /** Largest per-node GPU count across (possibly heterogeneous) racks. */
    int max_gpus_per_node() const { return max_gpus_per_node_; }
    /** Distinct GPU models present, sorted. */
    std::vector<std::string> gpu_models() const;
    /**
     * Per-node eligibility for a GPU model requirement: 1 where the node
     * carries that model. An empty model matches every node.
     */
    std::vector<uint8_t> eligible_mask(const std::string &gpu_model) const;
    int free_gpus() const { return free_gpus_; }
    int used_gpus() const { return total_gpus_ - free_gpus_; }

    const Node &node(NodeId id) const;
    Node &node(NodeId id);
    const std::vector<Node> &nodes() const { return nodes_; }

    /** Per-node health, shared by scheduler / injector / operator verbs. */
    const NodeHealthTracker &health() const { return health_; }
    NodeHealthTracker &health() { return health_; }

    /** Free GPUs on schedulable (Healthy/Degraded) nodes only. */
    int schedulable_free_gpus() const;
    /** Total GPUs on schedulable nodes (capacity net of outages). */
    int schedulable_total_gpus() const;

    /**
     * Applies a placement atomically: either every slice is granted or
     * nothing is. Slices must name distinct nodes.
     * @return invalid_argument / resource_exhausted on failure.
     */
    Status allocate(JobId job, const Placement &placement);

    /**
     * Releases all GPUs held by the job across the cluster.
     * @return number of GPUs freed (0 if the job held nothing).
     */
    int release(JobId job);

    /** The placement currently held by a job (empty if none). */
    Placement placement_of(JobId job) const;

    bool has_job(JobId job) const { return holdings_.contains(job); }

    /** Jobs currently holding GPUs anywhere. */
    std::vector<JobId> running_jobs() const;

    OccupancySnapshot occupancy() const;

  private:
    ClusterConfig config_;
    Topology topology_;
    std::vector<Node> nodes_;
    int total_gpus_ = 0;
    int max_gpus_per_node_ = 0;
    int free_gpus_ = 0;
    NodeHealthTracker health_;
    std::unordered_map<JobId, Placement> holdings_;
};

} // namespace tacc::cluster
