#include "cluster/topology.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace tacc::cluster {

namespace {

constexpr double kGbpsToBps = 1e9 / 8.0;

} // namespace

const char *
comm_scope_name(CommScope scope)
{
    switch (scope) {
      case CommScope::kSingleGpu: return "single-gpu";
      case CommScope::kIntraNode: return "intra-node";
      case CommScope::kIntraRack: return "intra-rack";
      case CommScope::kCrossRack: return "cross-rack";
    }
    return "unknown";
}

Topology::Topology(TopologyConfig config) : config_(config)
{
    assert(config_.racks > 0 && config_.nodes_per_rack > 0);
    assert(config_.oversubscription >= 1.0);
}

int
Topology::rack_of(NodeId node) const
{
    assert(int(node) < total_nodes());
    return int(node) / config_.nodes_per_rack;
}

CommScope
Topology::scope_of(const Placement &placement) const
{
    if (placement.total_gpus() <= 1)
        return CommScope::kSingleGpu;
    if (placement.slices.size() == 1)
        return CommScope::kIntraNode;
    std::unordered_set<int> racks;
    for (const auto &slice : placement.slices)
        racks.insert(rack_of(slice.node));
    return racks.size() == 1 ? CommScope::kIntraRack : CommScope::kCrossRack;
}

double
Topology::collective_bw_Bps(const Placement &placement) const
{
    const CommScope scope = scope_of(placement);
    switch (scope) {
      case CommScope::kSingleGpu:
        return config_.nvlink_gbps * kGbpsToBps; // unused by callers
      case CommScope::kIntraNode: {
        // NVLink aggregate shared by the job's GPUs on that node.
        const int gpus = placement.total_gpus();
        return config_.nvlink_gbps * kGbpsToBps / std::max(1, gpus);
      }
      case CommScope::kIntraRack:
        return config_.nic_gbps * kGbpsToBps;
      case CommScope::kCrossRack:
        return config_.nic_gbps * kGbpsToBps / config_.oversubscription;
    }
    return config_.nic_gbps * kGbpsToBps;
}

double
Topology::p2p_bw_Bps(NodeId a, NodeId b) const
{
    if (a == b)
        return config_.nvlink_gbps * kGbpsToBps;
    if (rack_of(a) == rack_of(b))
        return config_.nic_gbps * kGbpsToBps;
    return config_.nic_gbps * kGbpsToBps / config_.oversubscription;
}

double
Topology::latency_s(CommScope scope) const
{
    switch (scope) {
      case CommScope::kSingleGpu: return 0.0;
      case CommScope::kIntraNode: return 2e-6;
      case CommScope::kIntraRack: return 10e-6;
      case CommScope::kCrossRack: return 25e-6;
    }
    return 25e-6;
}

} // namespace tacc::cluster
