/**
 * @file
 * Network topology and bandwidth model.
 *
 * TACC's execution layer runs distributed training over a two-tier
 * (leaf/spine) fabric: GPUs inside one node talk over NVLink, nodes in one
 * rack share a ToR switch, racks connect through a spine whose uplink
 * capacity can be oversubscribed. The topology answers "what bandwidth does
 * a collective spanning these nodes see?", which drives the communication
 * model and topology-aware placement.
 */
#pragma once

#include <vector>

#include "cluster/types.h"

namespace tacc::cluster {

/** Parameters of the two-tier fabric. */
struct TopologyConfig {
    int racks = 4;
    int nodes_per_rack = 8;
    /** Aggregate intra-node GPU fabric: 8 GPUs x ~300 GB/s NVSwitch. */
    double nvlink_gbps = 19200.0;
    double nic_gbps = 100.0;       ///< per-node uplink to the ToR
    /**
     * Ratio of aggregate downlink to uplink capacity at the ToR. 1.0 is a
     * non-blocking fabric; 4.0 means cross-rack flows see 1/4 of the NIC
     * bandwidth when all nodes transmit.
     */
    double oversubscription = 1.0;

    int total_nodes() const { return racks * nodes_per_rack; }
};

/** Span classification of a set of communicating endpoints. */
enum class CommScope {
    kSingleGpu,  ///< no communication
    kIntraNode,  ///< NVLink only
    kIntraRack,  ///< through one ToR
    kCrossRack,  ///< through the spine
};

const char *comm_scope_name(CommScope scope);

/** Static two-tier topology with bandwidth queries. */
class Topology
{
  public:
    explicit Topology(TopologyConfig config);

    const TopologyConfig &config() const { return config_; }
    int rack_of(NodeId node) const;
    int racks() const { return config_.racks; }
    int total_nodes() const { return config_.total_nodes(); }

    /** Scope of a placement: single GPU, one node, one rack, or wider. */
    CommScope scope_of(const Placement &placement) const;

    /**
     * Per-endpoint bottleneck bandwidth (bytes/second) seen by a collective
     * over the given placement.
     *
     * - intra-node: NVLink aggregate split across the job's local GPUs;
     * - intra-rack: the node NIC;
     * - cross-rack: the NIC scaled down by the oversubscription factor.
     */
    double collective_bw_Bps(const Placement &placement) const;

    /**
     * Point-to-point bandwidth (bytes/second) between two nodes, assuming
     * an otherwise idle fabric.
     */
    double p2p_bw_Bps(NodeId a, NodeId b) const;

    /** One-way latency between two endpoints (seconds). */
    double latency_s(CommScope scope) const;

  private:
    TopologyConfig config_;
};

} // namespace tacc::cluster
