/**
 * @file
 * Per-node health state machine.
 *
 * Every node carries a health state that the scheduler, the fault
 * injector, and the operator tooling all agree on:
 *
 *   Healthy ──degrade──> Degraded ──fault──> Down
 *      │                    │                 │
 *      │ cordon             │ cordon          │ detect
 *      v                    v                 v
 *   Cordoned ──drain──> Draining ──empty──> Repairing ──repair──> Healthy
 *
 * Healthy and Degraded nodes are schedulable (Degraded merely raises the
 * per-segment fault rate); Cordoned/Draining/Down/Repairing nodes are
 * masked out of the FreeView so no new gang lands on them. The tracker
 * itself is pure bookkeeping — transitions are driven by the FaultInjector
 * (timed crashes, outages, repairs) and by operator verbs (cordon/drain/
 * uncordon); it never schedules events on its own.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/types.h"

namespace tacc::cluster {

enum class NodeHealth : uint8_t {
    kHealthy = 0,
    kDegraded,  ///< up, but faulting at an elevated rate
    kCordoned,  ///< operator hold: running gangs keep going, no new work
    kDraining,  ///< evacuating residents before maintenance
    kDown,      ///< crashed or lost to a fault-domain outage
    kRepairing, ///< repair crew on it; comes back Healthy
};

const char *health_name(NodeHealth state);

/** Health bookkeeping for a fixed node inventory. */
class NodeHealthTracker
{
  public:
    NodeHealthTracker() = default;
    explicit NodeHealthTracker(int node_count)
        : states_(size_t(node_count), NodeHealth::kHealthy),
          epochs_(size_t(node_count), 0)
    {
    }

    int node_count() const { return int(states_.size()); }

    NodeHealth state(NodeId id) const { return states_[size_t(id)]; }

    /** True while the scheduler may place new work on the node. */
    bool
    schedulable(NodeId id) const
    {
        const NodeHealth s = states_[size_t(id)];
        return s == NodeHealth::kHealthy || s == NodeHealth::kDegraded;
    }

    /** True when every node is Healthy (fast path: skip all masking). */
    bool all_healthy() const { return unhealthy_ == 0; }

    /**
     * Moves a node to a new state. Bumps the node's epoch so stale
     * timer callbacks (e.g. a repair scheduled before a second outage
     * extended the downtime) can detect they are out of date.
     * @return the node's new epoch.
     */
    uint64_t set_state(NodeId id, NodeHealth next);

    /** Epoch counter for stale-callback detection. */
    uint64_t epoch(NodeId id) const { return epochs_[size_t(id)]; }

    int count(NodeHealth state) const;
    int schedulable_count() const;

  private:
    std::vector<NodeHealth> states_;
    std::vector<uint64_t> epochs_;
    int unhealthy_ = 0; ///< nodes not Healthy (incl. Degraded)
};

} // namespace tacc::cluster
