#include "cluster/health.h"

#include <cassert>

namespace tacc::cluster {

const char *
health_name(NodeHealth state)
{
    switch (state) {
    case NodeHealth::kHealthy: return "healthy";
    case NodeHealth::kDegraded: return "degraded";
    case NodeHealth::kCordoned: return "cordoned";
    case NodeHealth::kDraining: return "draining";
    case NodeHealth::kDown: return "down";
    case NodeHealth::kRepairing: return "repairing";
    }
    return "?";
}

uint64_t
NodeHealthTracker::set_state(NodeId id, NodeHealth next)
{
    assert(size_t(id) < states_.size());
    NodeHealth &slot = states_[size_t(id)];
    if (slot != next) {
        unhealthy_ += (slot == NodeHealth::kHealthy ? 1 : 0) -
                      (next == NodeHealth::kHealthy ? 1 : 0);
        slot = next;
    }
    return ++epochs_[size_t(id)];
}

int
NodeHealthTracker::count(NodeHealth state) const
{
    int n = 0;
    for (NodeHealth s : states_)
        n += s == state ? 1 : 0;
    return n;
}

int
NodeHealthTracker::schedulable_count() const
{
    int n = 0;
    for (size_t i = 0; i < states_.size(); ++i)
        n += schedulable(NodeId(i)) ? 1 : 0;
    return n;
}

} // namespace tacc::cluster
