#include "cluster/node.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace tacc::cluster {

Node::Node(NodeId id, std::string name, int rack, NodeSpec spec)
    : id_(id),
      name_(std::move(name)),
      rack_(rack),
      spec_(std::move(spec)),
      free_gpus_(spec_.gpu_count),
      gpu_owner_(size_t(spec_.gpu_count), kInvalidJob)
{
    assert(spec_.gpu_count >= 0);
}

std::vector<JobId>
Node::resident_jobs() const
{
    std::vector<JobId> out;
    for (JobId owner : gpu_owner_) {
        if (owner != kInvalidJob &&
            std::find(out.begin(), out.end(), owner) == out.end()) {
            out.push_back(owner);
        }
    }
    return out;
}

std::vector<int>
Node::gpus_of(JobId job) const
{
    std::vector<int> out;
    for (size_t i = 0; i < gpu_owner_.size(); ++i) {
        if (gpu_owner_[i] == job)
            out.push_back(int(i));
    }
    return out;
}

StatusOr<std::vector<int>>
Node::allocate(JobId job, int count)
{
    if (count <= 0) {
        return Status::invalid_argument(
            strfmt("allocate %d GPUs on %s", count, name_.c_str()));
    }
    if (count > free_gpus_) {
        return Status::resource_exhausted(
            strfmt("%s: requested %d GPUs, %d free", name_.c_str(), count,
                   free_gpus_));
    }
    std::vector<int> granted;
    granted.reserve(size_t(count));
    for (size_t i = 0; i < gpu_owner_.size() && int(granted.size()) < count;
         ++i) {
        if (gpu_owner_[i] == kInvalidJob) {
            gpu_owner_[i] = job;
            granted.push_back(int(i));
        }
    }
    assert(int(granted.size()) == count);
    free_gpus_ -= count;
    return granted;
}

int
Node::release(JobId job)
{
    int freed = 0;
    for (auto &owner : gpu_owner_) {
        if (owner == job) {
            owner = kInvalidJob;
            ++freed;
        }
    }
    free_gpus_ += freed;
    return freed;
}

bool
Node::gpu_free(int index) const
{
    assert(index >= 0 && index < spec_.gpu_count);
    return gpu_owner_[size_t(index)] == kInvalidJob;
}

} // namespace tacc::cluster
