/**
 * @file
 * Identifier and small value types shared by the cluster-facing modules.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tacc::cluster {

/** Dense index of a node within a cluster. */
using NodeId = uint32_t;

/** Unique id of a submitted job/task instance. */
using JobId = uint64_t;

constexpr NodeId kInvalidNode = ~NodeId(0);
constexpr JobId kInvalidJob = 0;

/** GPUs granted to one job on one node. */
struct PlacementSlice {
    NodeId node = kInvalidNode;
    std::vector<int> gpu_indices;
};

/** A complete mapping of a job's GPUs onto the cluster. */
struct Placement {
    std::vector<PlacementSlice> slices;

    int
    total_gpus() const
    {
        int n = 0;
        for (const auto &s : slices)
            n += int(s.gpu_indices.size());
        return n;
    }

    bool empty() const { return slices.empty(); }

    /** Node ids covered by this placement (in slice order). */
    std::vector<NodeId>
    nodes() const
    {
        std::vector<NodeId> out;
        out.reserve(slices.size());
        for (const auto &s : slices)
            out.push_back(s.node);
        return out;
    }
};

} // namespace tacc::cluster
