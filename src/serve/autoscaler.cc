#include "serve/autoscaler.h"

#include <cassert>
#include <cmath>

#include "common/log.h"

namespace tacc::serve {

int
TargetUtilizationAutoscaler::decide(const ScaleContext &ctx)
{
    assert(target_ > 0 && target_ <= 1.0);
    // Replicas so that lambda / (c * mu) ~= target.
    const double wanted = ctx.arrival_rate_hz /
                          (ctx.service_rate_hz * target_);
    const int replicas = int(std::ceil(wanted));
    return std::clamp(replicas, ctx.arrival_rate_hz > 0 ? 1 : 0,
                      ctx.max_replicas);
}

int
SloAwareAutoscaler::decide(const ScaleContext &ctx)
{
    if (ctx.arrival_rate_hz <= 0)
        return 0;
    const double planned_rate = ctx.arrival_rate_hz * headroom_;
    const ReplicaPlan plan =
        plan_replicas_for_slo(planned_rate, ctx.service_rate_hz,
                              ctx.slo_s, ctx.slo_target,
                              ctx.max_replicas);
    if (!plan.attainable && !unattainable_) {
        // Warn once per unattainable stretch, not once per epoch: a
        // pinned pool with no signal is how overload hides.
        Log::warnf("slo-aware autoscaler: target %.3f unattainable at "
                   "max pool %d (predicted attainment %.3f at "
                   "%.1f req/s) — pinning max replicas",
                   ctx.slo_target, ctx.max_replicas, plan.attainment,
                   planned_rate);
    }
    unattainable_ = !plan.attainable;
    return plan.replicas;
}

} // namespace tacc::serve
