#include "serve/autoscaler.h"

#include <cassert>
#include <cmath>

namespace tacc::serve {

int
TargetUtilizationAutoscaler::decide(const ScaleContext &ctx)
{
    assert(target_ > 0 && target_ <= 1.0);
    // Replicas so that lambda / (c * mu) ~= target.
    const double wanted = ctx.arrival_rate_hz /
                          (ctx.service_rate_hz * target_);
    const int replicas = int(std::ceil(wanted));
    return std::clamp(replicas, ctx.arrival_rate_hz > 0 ? 1 : 0,
                      ctx.max_replicas);
}

int
SloAwareAutoscaler::decide(const ScaleContext &ctx)
{
    if (ctx.arrival_rate_hz <= 0)
        return 0;
    const double planned_rate = ctx.arrival_rate_hz * headroom_;
    return min_replicas_for_slo(planned_rate, ctx.service_rate_hz,
                                ctx.slo_s, ctx.slo_target,
                                ctx.max_replicas);
}

} // namespace tacc::serve
