/**
 * @file
 * Request-granular serving plane (the T20 subsystem).
 *
 * Replaces the analytic M/M/c epoch view with an actual request path on
 * the discrete-event simulator: an open-loop arrival process (diurnal
 * curve plus an optional burst window, generated in bounded windows via
 * the streaming batched-event path so a day of millions of requests
 * runs in flat memory), per-replica bounded batching queues, and the
 * robustness stack from robustness.h — SLO-aware admission, per-tenant
 * retry budgets with backoff + decorrelated jitter, per-replica
 * circuit breakers fed by node health, and tiered graceful
 * degradation.
 *
 * The plane knows nothing about the cluster: replicas are opaque slots
 * backed by PlaneHooks (the embedding TaccStack spawns a 1-GPU
 * inference job per slot and routes its lifecycle notifications back).
 * Timed-out requests are *not* dequeued — the replica still burns
 * service time on them, which is exactly the wasted-work feedback loop
 * that makes an unprotected tier metastable and what admission control
 * plus retry budgets are shown to break in bench_t20_serving.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "serve/robustness.h"
#include "sim/simulator.h"

namespace tacc::serve {

/** Configuration of the request-level serving plane. */
struct ServePlaneConfig {
    /** Master switch; off leaves every existing digest byte-identical. */
    bool enabled = false;

    /** Tenant group the replica jobs bill to. */
    std::string group = "serve";
    /** Model served (becomes the replica jobs' model tag). */
    std::string model = "resnet50";

    /** @name Replica pool */
    ///@{
    int initial_replicas = 2;
    int min_replicas = 1;
    int max_replicas = 8;
    ///@}

    /** @name Arrival process (open loop) */
    ///@{
    /** Mean arrival rate at the diurnal trough. */
    double request_rate_hz = 20.0;
    /** Arrivals stop after this much simulated time. */
    double horizon_s = 3600.0;
    /** Sinusoidal day curve (peak/trough ratio; 1 = flat). */
    bool diurnal = false;
    double diurnal_peak_ratio = 2.0;
    /** Burst window multiplier (1 = no burst). */
    double burst_factor = 1.0;
    double burst_start_s = 0.0;
    double burst_duration_s = 0.0;
    /** Distinct client tenants (round-robin request attribution). */
    int tenants = 4;
    /** Arrival candidates generated per streaming window refill. */
    int arrival_window = 512;
    ///@}

    /** @name Replica service (bounded batching) */
    ///@{
    int max_batch = 8;
    /** Per-batch fixed cost (weights load, kernel launch). */
    double batch_fixed_s = 0.040;
    /** Incremental cost per request in the batch. */
    double batch_per_request_s = 0.010;
    ///@}

    /** @name Client behaviour */
    ///@{
    /** Latency SLO (end to end, from first arrival). */
    double slo_s = 1.0;
    /** Client abandons an attempt after this long. */
    double client_timeout_s = 2.0;
    /** Retries per logical request (beyond the first attempt). */
    int max_retries = 3;
    double retry_base_s = 0.1;
    double retry_cap_s = 10.0;
    /** Decorrelated jitter on retry backoff (off = pure exponential). */
    bool retry_jitter = true;
    ///@}

    /** @name Robustness toggles */
    ///@{
    bool admission = true;
    AdmissionConfig admission_cfg;
    bool retry_budget = true;
    RetryBudgetConfig budget;
    bool breakers = true;
    BreakerConfig breaker;
    /** Tiered degradation: serve a cheap response under pressure. */
    bool degrade = true;
    /** Queue backlog (seconds) beyond which responses degrade. */
    double degrade_backlog_s = 0.5;
    /** Service-cost multiplier of a degraded response. */
    double degrade_cost_factor = 0.25;
    /** Absolute per-replica queue bound (memory safety; enforced even
     *  with admission off — the no-admission baseline sheds only here). */
    int hard_queue_cap = 1024;
    ///@}

    /** @name Autoscaling on measured signals */
    ///@{
    bool autoscale = true;
    double scale_period_s = 60.0;
    /** Provisioning headroom over the measured arrival rate. */
    double scale_headroom = 1.3;
    ///@}

    /** Resolution of the goodput/offered/capacity report series. */
    double series_bucket_s = 60.0;

    /** Saturated per-replica throughput (requests/s at full batches). */
    double
    per_replica_capacity_hz() const
    {
        const double batch_s =
            batch_fixed_s + max_batch * batch_per_request_s;
        return batch_s > 0 ? max_batch / batch_s : 0.0;
    }
};

/** How the plane reaches the embedding stack (replica lifecycle). */
struct PlaneHooks {
    /** Submit a replica job for slot; returns its job id (0 = refused). */
    std::function<uint64_t(int slot)> spawn_replica;
    /** Terminally kill a replica job (scale-down / shutdown). */
    std::function<void(uint64_t job)> kill_replica;
    /** Is the node backing a replica degraded or worse? */
    std::function<bool(uint32_t node)> node_degraded;
    /**
     * Load forecaster (the stack's PredictionHub): folds the arrival
     * rate measured over the last scale period and returns the rate to
     * provision for the next one. Null = autoscale on the measured
     * (instantaneous) signal, byte-identical to pre-prediction runs.
     */
    std::function<double(double measured_rate_hz)> forecast_rate;
};

/** Monotonic counters; folded into the run digest when the plane ran. */
struct PlaneCounters {
    uint64_t requests = 0;   ///< logical requests (first attempts)
    uint64_t attempts = 0;   ///< dispatch attempts incl. retries
    uint64_t admitted = 0;
    uint64_t ok = 0;         ///< completed within SLO (goodput)
    uint64_t late = 0;       ///< completed but over SLO
    uint64_t degraded = 0;   ///< completions served in degraded tier
    uint64_t wasted = 0;     ///< server work burned on abandoned requests
    uint64_t shed = 0;       ///< refused before queueing
    uint64_t breaker_shed = 0;
    uint64_t timeouts = 0;
    uint64_t retries = 0;
    uint64_t retries_denied = 0;
    uint64_t dropped = 0;    ///< logical requests that never completed
    uint64_t breaker_trips = 0;
    uint64_t replica_failures = 0;
    uint64_t replicas_spawned = 0;
};

/** Snapshot handed to tools/bench (series are per series_bucket_s). */
struct ServingReport {
    PlaneCounters counters;
    double slo_attainment = 0; ///< ok / logical requests
    int replicas_up = 0;
    bool slo_unattainable = false;
    double bucket_s = 0;
    std::vector<double> offered;  ///< first-attempt arrivals per bucket
    std::vector<double> goodput;  ///< in-SLO completions per bucket
    std::vector<double> capacity; ///< surviving capacity (requests/bucket)
};

class RequestPlane
{
  public:
    RequestPlane(sim::Simulator &sim, ServePlaneConfig config,
                 uint64_t seed, PlaneHooks hooks);

    /** Spawns the initial pool and starts arrivals + autoscaling. */
    void start();

    /** @name Replica lifecycle notifications (from the stack) */
    ///@{
    /** The replica job was placed and is running on `node`. */
    void on_replica_up(uint64_t job, uint32_t node);
    /** The replica job stopped running (crash/preempt); the stack will
     *  requeue it, so the slot keeps the job id and waits. */
    void on_replica_down(uint64_t job);
    /** The replica job is terminally gone (killed or failed out). */
    void on_replica_gone(uint64_t job);
    ///@}

    /** True once arrivals finished and every request resolved; the
     *  stack treats a non-idle plane as pending work. */
    bool idle() const { return !config_.enabled || done_; }

    const ServePlaneConfig &config() const { return config_; }
    const PlaneCounters &counters() const { return counters_; }
    int replicas_up() const;
    int replicas_desired() const { return desired_; }
    /** Total admitted-but-unserved requests across replicas. */
    int queue_depth() const;
    bool slo_unattainable() const { return slo_unattainable_; }
    const RetryBudget &tenant_budget(int tenant) const;
    /** Non-const: settles the capacity accrual up to now(). */
    ServingReport report();

  private:
    struct Request {
        uint64_t id = 0;
        int tenant = 0;
        int attempt = 1;
        bool degraded = false;
        /** Client gave up (timeout); server work on it is wasted. */
        bool abandoned = false;
        double last_backoff_s = 0;
        TimePoint first_arrival;
        sim::EventId timeout_event = 0;
        int replica_slot = -1;
    };

    struct Replica {
        uint64_t job = 0;
        uint32_t node = 0;
        bool up = false;
        /** False once scale-down/shutdown decided to retire the slot. */
        bool wanted = false;
        std::deque<uint64_t> queue;
        std::vector<uint64_t> batch;
        sim::EventId batch_event = 0;
        CircuitBreaker breaker;
    };

    void refill_arrivals();
    double rate_at(double t_s) const;
    void on_arrival();
    void dispatch(uint64_t request_id);
    int pick_replica();
    double backlog_s(const Replica &replica) const;
    void maybe_start_batch(int slot);
    void on_batch_done(int slot);
    void on_timeout(uint64_t request_id);
    /** Client-side failure of one attempt: retry or drop. */
    void attempt_failed(uint64_t request_id);
    void flush_replica(int slot);
    void spawn_missing();
    void autoscale_tick();
    void maybe_shutdown();
    void record_offered(TimePoint t);
    void record_goodput(TimePoint t);
    void accrue_capacity(TimePoint now);
    static void bump_bucket(std::vector<double> &buckets, size_t index,
                            double amount);

    sim::Simulator &sim_;
    ServePlaneConfig config_;
    PlaneHooks hooks_;
    Rng arrival_rng_;
    Rng retry_rng_;

    std::vector<Replica> replicas_;
    std::vector<RetryBudget> budgets_;
    std::unordered_map<uint64_t, Request> requests_;
    PlaneCounters counters_;
    sim::PeriodicTask autoscale_task_;
    std::vector<sim::BatchEvent> batch_scratch_;

    uint64_t next_request_id_ = 1;
    int desired_ = 0;
    int retry_timers_ = 0;
    int pending_arrivals_ = 0;
    /** Arrival-process clock: time of the last generated candidate. */
    double last_candidate_s_ = 0;
    bool horizon_reached_ = false;
    bool done_ = false;
    bool slo_unattainable_ = false;
    /** Offered rate measured over the current autoscale period. */
    uint64_t arrivals_this_period_ = 0;

    /** @name Report series (per series_bucket_s buckets) */
    ///@{
    std::vector<double> offered_buckets_;
    std::vector<double> goodput_buckets_;
    std::vector<double> capacity_buckets_;
    TimePoint capacity_accrued_to_;
    ///@}
};

} // namespace tacc::serve
