#include "serve/request_plane.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/log.h"

namespace tacc::serve {

namespace {
constexpr uint64_t kPlaneSeedSalt = 0x5e4e'0b1a'57ab'1e01ULL;
constexpr double kDaySeconds = 86400.0;
} // namespace

RequestPlane::RequestPlane(sim::Simulator &sim, ServePlaneConfig config,
                           uint64_t seed, PlaneHooks hooks)
    : sim_(sim), config_(std::move(config)), hooks_(std::move(hooks)),
      arrival_rng_(Rng(seed ^ kPlaneSeedSalt).fork(1)),
      retry_rng_(Rng(seed ^ kPlaneSeedSalt).fork(2)),
      autoscale_task_(
          sim, Duration::from_seconds(std::max(1.0, config_.scale_period_s)),
          "serve.autoscale", [this] { autoscale_tick(); })
{
    config_.tenants = std::max(1, config_.tenants);
    config_.max_replicas = std::max(1, config_.max_replicas);
    config_.min_replicas =
        std::clamp(config_.min_replicas, 0, config_.max_replicas);
}

void
RequestPlane::start()
{
    if (!config_.enabled)
        return;
    budgets_.assign(size_t(config_.tenants), RetryBudget(config_.budget));
    replicas_.resize(size_t(config_.max_replicas));
    for (auto &replica : replicas_)
        replica.breaker = CircuitBreaker(config_.breaker);
    desired_ = std::clamp(config_.initial_replicas, config_.min_replicas,
                          config_.max_replicas);
    spawn_missing();
    refill_arrivals();
    if (config_.autoscale)
        autoscale_task_.start();
}

double
RequestPlane::rate_at(double t_s) const
{
    double rate = config_.request_rate_hz;
    if (config_.diurnal && config_.diurnal_peak_ratio > 1.0) {
        const double swing = (config_.diurnal_peak_ratio - 1.0) * 0.5;
        rate *= 1.0 +
                swing * (1.0 - std::cos(2.0 * M_PI * t_s / kDaySeconds));
    }
    if (config_.burst_factor > 1.0 && t_s >= config_.burst_start_s &&
        t_s < config_.burst_start_s + config_.burst_duration_s) {
        rate *= config_.burst_factor;
    }
    return rate;
}

void
RequestPlane::refill_arrivals()
{
    if (horizon_reached_)
        return;
    // Thinning over the peak-rate envelope: candidates are drawn at the
    // maximum rate the configured curve can reach and accepted with
    // probability rate(t)/peak, so one homogeneous stream reproduces
    // the diurnal curve and the burst window exactly. Only one window
    // of events is in the heap at a time (the streaming regime): the
    // last candidate doubles as the refill point.
    double peak = config_.request_rate_hz;
    if (config_.diurnal && config_.diurnal_peak_ratio > 1.0)
        peak *= config_.diurnal_peak_ratio;
    if (config_.burst_factor > 1.0)
        peak *= config_.burst_factor;
    if (peak <= 0) {
        horizon_reached_ = true;
        maybe_shutdown();
        return;
    }

    batch_scratch_.clear();
    double t = last_candidate_s_;
    const int window = std::max(1, config_.arrival_window);
    for (int i = 0; i < window; ++i) {
        t += arrival_rng_.exponential(1.0 / peak);
        if (t >= config_.horizon_s) {
            horizon_reached_ = true;
            break;
        }
        if (arrival_rng_.uniform() < rate_at(t) / peak) {
            ++pending_arrivals_;
            batch_scratch_.push_back(
                {TimePoint::origin() + Duration::from_seconds(t),
                 "serve.arrival", [this] { on_arrival(); }});
        }
    }
    last_candidate_s_ = t;
    if (!horizon_reached_) {
        batch_scratch_.push_back(
            {TimePoint::origin() + Duration::from_seconds(t),
             "serve.refill", [this] { refill_arrivals(); }});
    }
    sim_.schedule_batch(batch_scratch_);
    if (horizon_reached_)
        maybe_shutdown();
}

void
RequestPlane::on_arrival()
{
    --pending_arrivals_;
    ++counters_.requests;
    ++arrivals_this_period_;
    record_offered(sim_.now());

    const uint64_t id = next_request_id_++;
    Request request;
    request.id = id;
    request.tenant = int(id % uint64_t(config_.tenants));
    request.first_arrival = sim_.now();
    budgets_[size_t(request.tenant)].on_request();
    requests_.emplace(id, request);
    dispatch(id);
}

double
RequestPlane::backlog_s(const Replica &replica) const
{
    const double capacity = config_.per_replica_capacity_hz();
    const double queued =
        double(replica.queue.size() + replica.batch.size());
    double backlog = capacity > 0 ? queued / capacity : 0.0;
    if (replica.batch_event != 0)
        backlog += config_.batch_fixed_s;
    return backlog;
}

int
RequestPlane::pick_replica()
{
    int best = -1;
    size_t best_depth = 0;
    for (int slot = 0; slot < int(replicas_.size()); ++slot) {
        Replica &replica = replicas_[size_t(slot)];
        if (replica.job == 0 || !replica.up || !replica.wanted)
            continue;
        if (config_.breakers) {
            if (hooks_.node_degraded &&
                hooks_.node_degraded(replica.node)) {
                const uint64_t before = replica.breaker.trips();
                replica.breaker.trip(sim_.now());
                counters_.breaker_trips +=
                    replica.breaker.trips() - before;
                continue;
            }
            if (!replica.breaker.can_allow(sim_.now()))
                continue;
        }
        const size_t depth = replica.queue.size();
        if (depth >= size_t(config_.hard_queue_cap))
            continue;
        if (best < 0 || depth < best_depth) {
            best = slot;
            best_depth = depth;
        }
    }
    return best;
}

void
RequestPlane::dispatch(uint64_t request_id)
{
    ++counters_.attempts;
    auto it = requests_.find(request_id);
    assert(it != requests_.end());

    const int slot = pick_replica();
    if (slot < 0) {
        ++counters_.shed;
        // Distinguish "no healthy replica would take it" caused by
        // breakers from plain unavailability, for the ops series.
        for (const auto &replica : replicas_) {
            if (replica.job != 0 && replica.up && replica.wanted &&
                config_.breakers &&
                !replica.breaker.can_allow(sim_.now())) {
                ++counters_.breaker_shed;
                break;
            }
        }
        attempt_failed(request_id);
        return;
    }

    Replica &replica = replicas_[size_t(slot)];
    const double now_s = sim_.now().to_seconds();
    const double backlog = backlog_s(replica);
    const double service =
        config_.batch_fixed_s + config_.batch_per_request_s;
    if (config_.admission) {
        const AdmissionDecision decision = admit_request(
            config_.admission_cfg, int(replica.queue.size()), backlog,
            service, now_s, now_s + config_.client_timeout_s);
        if (!decision.admit) {
            ++counters_.shed;
            attempt_failed(request_id);
            return;
        }
    }
    if (config_.breakers && !replica.breaker.allow(sim_.now())) {
        ++counters_.shed;
        ++counters_.breaker_shed;
        attempt_failed(request_id);
        return;
    }

    Request &request = it->second;
    ++counters_.admitted;
    request.degraded =
        config_.degrade && backlog > config_.degrade_backlog_s;
    request.replica_slot = slot;
    replica.queue.push_back(request_id);
    request.timeout_event = sim_.schedule_after(
        Duration::from_seconds(config_.client_timeout_s), "serve.timeout",
        [this, request_id] { on_timeout(request_id); });
    maybe_start_batch(slot);
}

void
RequestPlane::maybe_start_batch(int slot)
{
    Replica &replica = replicas_[size_t(slot)];
    if (!replica.up || replica.batch_event != 0 || replica.queue.empty())
        return;
    double duration = config_.batch_fixed_s;
    while (!replica.queue.empty() &&
           int(replica.batch.size()) < config_.max_batch) {
        const uint64_t id = replica.queue.front();
        replica.queue.pop_front();
        replica.batch.push_back(id);
        // Abandoned requests burn full service — the wasted-work loop.
        const auto it = requests_.find(id);
        const bool cheap =
            it != requests_.end() && it->second.degraded &&
            !it->second.abandoned;
        duration += config_.batch_per_request_s *
                    (cheap ? config_.degrade_cost_factor : 1.0);
    }
    replica.batch_event =
        sim_.schedule_after(Duration::from_seconds(duration),
                            "serve.batch", [this, slot] {
                                on_batch_done(slot);
                            });
}

void
RequestPlane::on_batch_done(int slot)
{
    Replica &replica = replicas_[size_t(slot)];
    replica.batch_event = 0;
    for (const uint64_t id : replica.batch) {
        auto it = requests_.find(id);
        if (it == requests_.end())
            continue;
        Request &request = it->second;
        if (request.abandoned) {
            ++counters_.wasted;
        } else {
            sim_.cancel(request.timeout_event);
            const double latency =
                (sim_.now() - request.first_arrival).to_seconds();
            if (request.degraded)
                ++counters_.degraded;
            if (latency <= config_.slo_s) {
                ++counters_.ok;
                record_goodput(sim_.now());
            } else {
                ++counters_.late;
            }
        }
        requests_.erase(it);
    }
    replica.batch.clear();
    if (config_.breakers && replica.up)
        replica.breaker.on_success(sim_.now());
    maybe_start_batch(slot);
    maybe_shutdown();
}

void
RequestPlane::on_timeout(uint64_t request_id)
{
    auto it = requests_.find(request_id);
    if (it == requests_.end())
        return;
    it->second.timeout_event = 0;
    it->second.abandoned = true;
    ++counters_.timeouts;
    // The entry stays queued server-side (wasted work); the client
    // moves on to the retry decision.
    attempt_failed(request_id);
}

void
RequestPlane::attempt_failed(uint64_t request_id)
{
    auto it = requests_.find(request_id);
    assert(it != requests_.end());
    const int tenant = it->second.tenant;
    const int attempt = it->second.attempt;
    const double prev_backoff = it->second.last_backoff_s;
    const TimePoint first_arrival = it->second.first_arrival;
    // A shed attempt never reached a queue: drop its entry now.
    // Abandoned entries stay behind until the server burns them.
    if (it->second.replica_slot < 0)
        requests_.erase(it);

    if (attempt > config_.max_retries) {
        ++counters_.dropped;
        maybe_shutdown();
        return;
    }
    if (config_.retry_budget && !budgets_[size_t(tenant)].try_spend()) {
        ++counters_.retries_denied;
        ++counters_.dropped;
        maybe_shutdown();
        return;
    }
    ++counters_.retries;
    double backoff;
    if (config_.retry_jitter) {
        backoff = decorrelated_jitter(retry_rng_, config_.retry_base_s,
                                      config_.retry_cap_s, prev_backoff);
    } else {
        backoff = std::min(config_.retry_cap_s,
                           config_.retry_base_s *
                               std::pow(2.0, double(attempt - 1)));
    }
    ++retry_timers_;
    sim_.schedule_after(
        Duration::from_seconds(backoff), "serve.retry",
        [this, tenant, attempt, backoff, first_arrival] {
            --retry_timers_;
            const uint64_t id = next_request_id_++;
            Request request;
            request.id = id;
            request.tenant = tenant;
            request.attempt = attempt + 1;
            request.last_backoff_s = backoff;
            request.first_arrival = first_arrival;
            requests_.emplace(id, request);
            dispatch(id);
        });
}

void
RequestPlane::flush_replica(int slot)
{
    Replica &replica = replicas_[size_t(slot)];
    if (replica.batch_event != 0) {
        sim_.cancel(replica.batch_event);
        replica.batch_event = 0;
    }
    std::vector<uint64_t> in_flight;
    in_flight.reserve(replica.batch.size() + replica.queue.size());
    in_flight.insert(in_flight.end(), replica.batch.begin(),
                     replica.batch.end());
    in_flight.insert(in_flight.end(), replica.queue.begin(),
                     replica.queue.end());
    replica.batch.clear();
    replica.queue.clear();
    for (const uint64_t id : in_flight) {
        auto it = requests_.find(id);
        if (it == requests_.end())
            continue;
        if (it->second.abandoned) {
            ++counters_.wasted;
            requests_.erase(it);
            continue;
        }
        sim_.cancel(it->second.timeout_event);
        it->second.timeout_event = 0;
        it->second.replica_slot = -1;
        attempt_failed(id); // client sees a connection reset
    }
}

void
RequestPlane::on_replica_up(uint64_t job, uint32_t node)
{
    for (auto &replica : replicas_) {
        if (replica.job != job)
            continue;
        accrue_capacity(sim_.now());
        replica.up = true;
        replica.node = node;
        return;
    }
}

void
RequestPlane::on_replica_down(uint64_t job)
{
    for (int slot = 0; slot < int(replicas_.size()); ++slot) {
        Replica &replica = replicas_[size_t(slot)];
        if (replica.job != job)
            continue;
        accrue_capacity(sim_.now());
        const bool was_up = replica.up;
        replica.up = false;
        flush_replica(slot);
        if (was_up) {
            ++counters_.replica_failures;
            if (config_.breakers) {
                const uint64_t before = replica.breaker.trips();
                replica.breaker.trip(sim_.now());
                counters_.breaker_trips +=
                    replica.breaker.trips() - before;
            }
        }
        return;
    }
}

void
RequestPlane::on_replica_gone(uint64_t job)
{
    for (int slot = 0; slot < int(replicas_.size()); ++slot) {
        Replica &replica = replicas_[size_t(slot)];
        if (replica.job != job)
            continue;
        accrue_capacity(sim_.now());
        replica.up = false;
        flush_replica(slot);
        replica.job = 0;
        if (!done_ && replica.wanted) {
            replica.job = hooks_.spawn_replica(slot);
            if (replica.job != 0)
                ++counters_.replicas_spawned;
        }
        return;
    }
}

void
RequestPlane::spawn_missing()
{
    for (int slot = 0; slot < int(replicas_.size()); ++slot) {
        Replica &replica = replicas_[size_t(slot)];
        replica.wanted = slot < desired_;
        if (replica.wanted && replica.job == 0) {
            replica.job = hooks_.spawn_replica(slot);
            if (replica.job != 0)
                ++counters_.replicas_spawned;
        }
    }
}

void
RequestPlane::autoscale_tick()
{
    if (done_)
        return;
    const double rate =
        double(arrivals_this_period_) / config_.scale_period_s;
    arrivals_this_period_ = 0;
    // Plan against the forecast when a forecaster is wired: a climbing
    // rate provisions ahead of the trend instead of one period behind
    // it. The SLO-unattainable latch stays on the *measured* rate — it
    // reports what was offered, not what was predicted.
    const double planning_rate =
        hooks_.forecast_rate ? hooks_.forecast_rate(rate) : rate;
    const double capacity = config_.per_replica_capacity_hz();
    int want = desired_;
    if (capacity > 0) {
        want = int(
            std::ceil(planning_rate * config_.scale_headroom / capacity));
        // Queue pressure overrides a stale rate estimate: a backlog of
        // more than two full batches per replica asks for one more.
        if (queue_depth() >
            std::max(1, desired_) * config_.max_batch * 2) {
            ++want;
        }
        if (rate * config_.scale_headroom >
                capacity * config_.max_replicas &&
            !slo_unattainable_) {
            slo_unattainable_ = true;
            Log::warnf("serve: SLO unattainable at max pool "
                       "(offered %.1f req/s > %.1f req/s at %d replicas)",
                       rate, capacity * config_.max_replicas,
                       config_.max_replicas);
        }
    }
    desired_ =
        std::clamp(want, config_.min_replicas, config_.max_replicas);

    // Retire slots beyond the target: requeue their admitted work onto
    // surviving replicas (no retry-budget charge), then kill the job.
    for (int slot = desired_; slot < int(replicas_.size()); ++slot) {
        Replica &replica = replicas_[size_t(slot)];
        if (!replica.wanted && replica.job == 0)
            continue;
        replica.wanted = false;
        if (replica.job == 0)
            continue;
        accrue_capacity(sim_.now());
        if (replica.batch_event != 0) {
            sim_.cancel(replica.batch_event);
            replica.batch_event = 0;
        }
        std::vector<uint64_t> moved;
        moved.insert(moved.end(), replica.batch.begin(),
                     replica.batch.end());
        moved.insert(moved.end(), replica.queue.begin(),
                     replica.queue.end());
        replica.batch.clear();
        replica.queue.clear();
        replica.up = false;
        for (const uint64_t id : moved) {
            auto it = requests_.find(id);
            if (it == requests_.end())
                continue;
            if (it->second.abandoned) {
                ++counters_.wasted;
                requests_.erase(it);
                continue;
            }
            const int target = pick_replica();
            if (target >= 0) {
                it->second.replica_slot = target;
                replicas_[size_t(target)].queue.push_back(id);
                maybe_start_batch(target);
            } else {
                sim_.cancel(it->second.timeout_event);
                it->second.timeout_event = 0;
                it->second.replica_slot = -1;
                attempt_failed(id);
            }
        }
        hooks_.kill_replica(replica.job);
    }
    spawn_missing();
}

void
RequestPlane::maybe_shutdown()
{
    if (!config_.enabled || done_)
        return;
    if (!horizon_reached_ || pending_arrivals_ > 0)
        return;
    if (retry_timers_ > 0 || !requests_.empty())
        return;
    done_ = true;
    accrue_capacity(sim_.now());
    autoscale_task_.stop();
    for (auto &replica : replicas_) {
        replica.wanted = false;
        if (replica.job != 0)
            hooks_.kill_replica(replica.job);
    }
}

int
RequestPlane::replicas_up() const
{
    int up = 0;
    for (const auto &replica : replicas_)
        up += (replica.job != 0 && replica.up) ? 1 : 0;
    return up;
}

int
RequestPlane::queue_depth() const
{
    size_t depth = 0;
    for (const auto &replica : replicas_)
        depth += replica.queue.size() + replica.batch.size();
    return int(depth);
}

const RetryBudget &
RequestPlane::tenant_budget(int tenant) const
{
    return budgets_.at(size_t(tenant));
}

void
RequestPlane::bump_bucket(std::vector<double> &buckets, size_t index,
                          double amount)
{
    if (buckets.size() <= index)
        buckets.resize(index + 1, 0.0);
    buckets[index] += amount;
}

void
RequestPlane::record_offered(TimePoint t)
{
    const size_t bucket =
        size_t(t.to_seconds() / std::max(1.0, config_.series_bucket_s));
    bump_bucket(offered_buckets_, bucket, 1.0);
}

void
RequestPlane::record_goodput(TimePoint t)
{
    const size_t bucket =
        size_t(t.to_seconds() / std::max(1.0, config_.series_bucket_s));
    bump_bucket(goodput_buckets_, bucket, 1.0);
}

void
RequestPlane::accrue_capacity(TimePoint now)
{
    // Called BEFORE any up-count change: integrates the current
    // surviving capacity (requests/s) over [accrued_to, now), split
    // across report buckets.
    const double bucket_s = std::max(1.0, config_.series_bucket_s);
    double from = capacity_accrued_to_.to_seconds();
    const double to = now.to_seconds();
    capacity_accrued_to_ = now;
    if (to <= from)
        return;
    const double rate_hz =
        replicas_up() * config_.per_replica_capacity_hz();
    if (rate_hz <= 0)
        return;
    while (from < to) {
        const size_t bucket = size_t(from / bucket_s);
        const double end = std::min(to, double(bucket + 1) * bucket_s);
        bump_bucket(capacity_buckets_, bucket, rate_hz * (end - from));
        from = end;
    }
}

ServingReport
RequestPlane::report()
{
    accrue_capacity(sim_.now());
    ServingReport out;
    out.counters = counters_;
    out.slo_attainment =
        counters_.requests > 0
            ? double(counters_.ok) / double(counters_.requests)
            : 0.0;
    out.replicas_up = replicas_up();
    out.slo_unattainable = slo_unattainable_;
    out.bucket_s = std::max(1.0, config_.series_bucket_s);
    out.offered = offered_buckets_;
    out.goodput = goodput_buckets_;
    out.capacity = capacity_buckets_;
    return out;
}

} // namespace tacc::serve
