#include "serve/robustness.h"

#include <algorithm>

namespace tacc::serve {

RetryBudget::RetryBudget(RetryBudgetConfig config)
    : config_(config), balance_(config.initial), earned_(config.initial)
{}

void
RetryBudget::on_request()
{
    const double grant =
        std::min(config_.ratio, std::max(0.0, config_.cap - balance_));
    balance_ += grant;
    earned_ += grant;
}

bool
RetryBudget::try_spend()
{
    if (balance_ < 1.0) {
        ++denied_;
        return false;
    }
    balance_ -= 1.0;
    ++spent_;
    return true;
}

const char *
breaker_state_name(BreakerState state)
{
    switch (state) {
      case BreakerState::kClosed: return "closed";
      case BreakerState::kOpen: return "open";
      case BreakerState::kHalfOpen: return "half-open";
    }
    return "?";
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {}

bool
CircuitBreaker::can_allow(TimePoint now) const
{
    switch (state_) {
      case BreakerState::kClosed:
        return true;
      case BreakerState::kOpen:
        return (now - opened_at_).to_seconds() >= config_.cooldown_s;
      case BreakerState::kHalfOpen:
        return probes_in_flight_ < config_.probe_quota;
    }
    return false;
}

bool
CircuitBreaker::allow(TimePoint now)
{
    if (!can_allow(now))
        return false;
    if (state_ == BreakerState::kOpen) {
        state_ = BreakerState::kHalfOpen;
        probes_in_flight_ = 0;
        probe_successes_ = 0;
    }
    if (state_ == BreakerState::kHalfOpen)
        ++probes_in_flight_;
    return true;
}

void
CircuitBreaker::on_success(TimePoint now)
{
    (void)now;
    switch (state_) {
      case BreakerState::kClosed:
        consecutive_failures_ = 0;
        break;
      case BreakerState::kOpen:
        // A success from before the trip; the breaker stays open.
        break;
      case BreakerState::kHalfOpen:
        probes_in_flight_ = std::max(0, probes_in_flight_ - 1);
        if (++probe_successes_ >= config_.probe_successes) {
            state_ = BreakerState::kClosed;
            consecutive_failures_ = 0;
            probes_in_flight_ = 0;
            probe_successes_ = 0;
        }
        break;
    }
}

void
CircuitBreaker::on_failure(TimePoint now)
{
    switch (state_) {
      case BreakerState::kClosed:
        if (++consecutive_failures_ >= config_.failure_threshold)
            open(now);
        break;
      case BreakerState::kOpen:
        break;
      case BreakerState::kHalfOpen:
        // One failed probe is enough evidence the replica is still
        // sick: back to open, restart the cooldown.
        open(now);
        break;
    }
}

void
CircuitBreaker::trip(TimePoint now)
{
    if (state_ == BreakerState::kOpen) {
        opened_at_ = now; // refresh the cooldown, don't double-count
        return;
    }
    open(now);
}

void
CircuitBreaker::open(TimePoint now)
{
    state_ = BreakerState::kOpen;
    opened_at_ = now;
    consecutive_failures_ = 0;
    probes_in_flight_ = 0;
    probe_successes_ = 0;
    ++trips_;
}

AdmissionDecision
admit_request(const AdmissionConfig &config, int queue_depth,
              double backlog_s, double service_s, double now_s,
              double deadline_s)
{
    AdmissionDecision decision;
    decision.predicted_completion_s = now_s + backlog_s + service_s;
    if (queue_depth >= config.queue_cap) {
        decision.reason = "queue-full";
        return decision;
    }
    if (decision.predicted_completion_s > deadline_s) {
        decision.reason = "deadline";
        return decision;
    }
    decision.admit = true;
    return decision;
}

double
decorrelated_jitter(Rng &rng, double base_s, double cap_s, double prev_s)
{
    const double prev = std::max(prev_s, base_s);
    return std::min(cap_s, rng.uniform(base_s, prev * 3.0));
}

} // namespace tacc::serve
