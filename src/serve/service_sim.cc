#include "serve/service_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tacc::serve {

ServiceSimulator::ServiceSimulator(ServiceConfig config)
    : config_(std::move(config))
{
    assert(config_.peak_rate_hz > 0);
    assert(config_.trough_fraction > 0 && config_.trough_fraction <= 1);
    assert(config_.pool_gpus >= 1);
    auto profile =
        workload::ModelCatalog::instance().find(config_.model);
    assert(profile.is_ok());
    // Inference = forward pass only (~1/3 of a training step's FLOPs),
    // but without the training batch's amortization.
    const double service_s =
        profile.value().compute_time_s(config_.gpu_tflops) / 3.0 *
        config_.batch1_penalty;
    service_rate_hz_ = 1.0 / service_s;
}

double
ServiceSimulator::arrival_rate_hz(TimePoint t) const
{
    // Sinusoidal day: trough at midnight, peak at noon.
    const double day_frac = std::fmod(t.to_seconds(), 86400.0) / 86400.0;
    const double phase = 0.5 * (1.0 - std::cos(2.0 * M_PI * day_frac));
    const double trough = config_.peak_rate_hz * config_.trough_fraction;
    return trough + (config_.peak_rate_hz - trough) * phase;
}

ServingResult
ServiceSimulator::run(Autoscaler &autoscaler,
                      const EpochObserver &on_epoch) const
{
    ServingResult out;
    out.autoscaler = autoscaler.name();

    int replicas = 0;
    double attainment_weighted = 0;
    double total_requests = 0;
    int good = 0;
    const double epoch_s = config_.epoch.to_seconds();
    const double delay_frac = std::min(
        1.0, config_.scale_up_delay.to_seconds() / epoch_s);

    for (TimePoint t = TimePoint::origin();
         t < TimePoint::origin() + config_.horizon;
         t += config_.epoch) {
        const double rate = arrival_rate_hz(t);

        ScaleContext ctx;
        ctx.arrival_rate_hz = rate;
        ctx.service_rate_hz = service_rate_hz_;
        ctx.slo_s = config_.slo_s;
        ctx.slo_target = config_.slo_target;
        ctx.current_replicas = replicas;
        ctx.max_replicas = config_.pool_gpus;
        const int target = std::clamp(autoscaler.decide(ctx), 0,
                                      config_.pool_gpus);

        // Scale-ups take effect after the provisioning delay: for that
        // slice of the epoch the old replica count carries the load.
        double attainment;
        if (target > replicas) {
            const double before = slo_attainment(
                std::max(1, replicas), rate, service_rate_hz_,
                config_.slo_s);
            const double after = slo_attainment(
                std::max(1, target), rate, service_rate_hz_,
                config_.slo_s);
            attainment =
                delay_frac * before + (1.0 - delay_frac) * after;
        } else {
            attainment = slo_attainment(std::max(1, target), rate,
                                        service_rate_hz_, config_.slo_s);
        }
        if (target == 0)
            attainment = 0.0;
        replicas = target;

        const double requests = rate * epoch_s;
        attainment_weighted += attainment * requests;
        total_requests += requests;
        good += attainment >= config_.slo_target;
        out.replica_hours += double(replicas) * epoch_s / 3600.0;
        out.epochs.push_back(EpochStats{t, rate, replicas, attainment});
        if (on_epoch)
            on_epoch(out.epochs.back());
    }

    if (total_requests > 0) {
        out.mean_attainment = attainment_weighted / total_requests;
        out.replica_hours_per_mreq =
            out.replica_hours / (total_requests / 1e6);
    }
    if (!out.epochs.empty())
        out.good_epochs = double(good) / double(out.epochs.size());
    return out;
}

} // namespace tacc::serve
