#include "serve/latency_model.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace tacc::serve {

double
erlang_c(int servers, double offered_load)
{
    assert(servers >= 1);
    assert(offered_load >= 0);
    if (offered_load <= 0)
        return 0.0;
    if (offered_load >= double(servers))
        return 1.0;

    // Iteratively build a^k/k! relative terms to avoid overflow.
    double term = 1.0; // a^0/0!
    double sum = term; // sum over k < c
    for (int k = 1; k < servers; ++k) {
        term *= offered_load / double(k);
        sum += term;
    }
    const double last = term * offered_load / double(servers); // a^c/c!
    const double rho = offered_load / double(servers);
    const double numerator = last / (1.0 - rho);
    return numerator / (sum + numerator);
}

double
mean_wait_s(int servers, double arrival_rate_hz, double service_rate_hz)
{
    assert(service_rate_hz > 0);
    const double a = arrival_rate_hz / service_rate_hz;
    if (a >= double(servers))
        return std::numeric_limits<double>::infinity();
    const double c_prob = erlang_c(servers, a);
    return c_prob /
           (double(servers) * service_rate_hz - arrival_rate_hz);
}

double
wait_tail(int servers, double arrival_rate_hz, double service_rate_hz,
          double t_s)
{
    assert(t_s >= 0);
    const double a = arrival_rate_hz / service_rate_hz;
    if (a >= double(servers))
        return 1.0;
    const double c_prob = erlang_c(servers, a);
    const double drain =
        double(servers) * service_rate_hz - arrival_rate_hz;
    return c_prob * std::exp(-drain * t_s);
}

double
slo_attainment(int servers, double arrival_rate_hz,
               double service_rate_hz, double slo_s)
{
    const double service_s = 1.0 / service_rate_hz;
    if (slo_s <= service_s)
        return 0.0;
    const double a = arrival_rate_hz / service_rate_hz;
    if (a >= double(servers))
        return 0.0;
    const double tail =
        wait_tail(servers, arrival_rate_hz, service_rate_hz,
                  slo_s - service_s);
    const double attainment = 1.0 - tail;
    return attainment < 0.0 ? 0.0 : attainment;
}

ReplicaPlan
plan_replicas_for_slo(double arrival_rate_hz, double service_rate_hz,
                      double slo_s, double target, int max_servers)
{
    assert(max_servers >= 1);
    ReplicaPlan plan;
    for (int c = 1; c <= max_servers; ++c) {
        const double attainment =
            slo_attainment(c, arrival_rate_hz, service_rate_hz, slo_s);
        if (attainment >= target) {
            plan.replicas = c;
            plan.attainable = true;
            plan.attainment = attainment;
            return plan;
        }
    }
    plan.replicas = max_servers;
    plan.attainable = false;
    plan.attainment = slo_attainment(max_servers, arrival_rate_hz,
                                     service_rate_hz, slo_s);
    return plan;
}

int
min_replicas_for_slo(double arrival_rate_hz, double service_rate_hz,
                     double slo_s, double target, int max_servers)
{
    return plan_replicas_for_slo(arrival_rate_hz, service_rate_hz, slo_s,
                                 target, max_servers)
        .replicas;
}

} // namespace tacc::serve
