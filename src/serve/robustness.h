/**
 * @file
 * Overload-robustness primitives of the request-serving plane.
 *
 * Three mechanisms keep a serving tier from collapsing when offered
 * load exceeds surviving capacity (the metastable-failure literature's
 * standard toolkit):
 *
 *  - RetryBudget: an SRE-style token bucket per tenant. First-attempt
 *    requests *earn* a fraction of a token; every retry *spends* one.
 *    A burst can therefore amplify itself by at most (1 + ratio) —
 *    never into an unbounded retry storm.
 *  - CircuitBreaker: the closed -> open -> half-open state machine per
 *    replica. Consecutive failures (or an explicit trip when the
 *    backing node crashes or degrades) open the breaker; after a
 *    cooldown a bounded number of half-open probes test the replica,
 *    and enough probe successes close it again.
 *  - admit_request: SLO-aware admission control — a pure predicate
 *    that rejects a request whose *predicted* completion (backlog plus
 *    its own service) would already miss its deadline, and bounds the
 *    per-replica queue. Rejecting early is what makes shed load cheap.
 *
 * All three are deterministic, allocation-free, and independent of the
 * simulator — the property tests drive them directly.
 */
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/time.h"

namespace tacc::serve {

/** @name Retry budgets */
///@{

/** Token-bucket parameters of one tenant's retry budget. */
struct RetryBudgetConfig {
    /** Tokens earned per first-attempt request (retry amplification
     *  bound: long-run retries <= ratio * requests + initial). */
    double ratio = 0.1;
    /** Starting balance (lets a cold tenant retry at all). */
    double initial = 10.0;
    /** Balance cap (a long quiet period cannot bank a storm). */
    double cap = 100.0;
};

/** Deterministic token bucket; one per tenant. */
class RetryBudget
{
  public:
    explicit RetryBudget(RetryBudgetConfig config = {});

    /** A first-attempt request arrived: earn `ratio` (up to cap). */
    void on_request();

    /** A retry wants to run: spends one token, or is denied.
     *  @return true if the retry may proceed. */
    bool try_spend();

    double balance() const { return balance_; }
    /** Total earned, including the initial grant (conservation bound:
     *  spent() <= earned() at every point of any interleaving). */
    double earned() const { return earned_; }
    uint64_t spent() const { return spent_; }
    uint64_t denied() const { return denied_; }

  private:
    RetryBudgetConfig config_;
    double balance_;
    double earned_;
    uint64_t spent_ = 0;
    uint64_t denied_ = 0;
};

///@}

/** @name Circuit breakers */
///@{

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char *breaker_state_name(BreakerState state);

/** Parameters of one replica's breaker. */
struct BreakerConfig {
    /** Consecutive failures that trip Closed -> Open. */
    int failure_threshold = 3;
    /** Open -> HalfOpen once this much time has passed. */
    double cooldown_s = 30.0;
    /** Max half-open probes in flight at once. */
    int probe_quota = 2;
    /** Probe successes required to close again. */
    int probe_successes = 2;
};

/**
 * Per-replica breaker state machine. Time flows in via the `now`
 * arguments (the plane passes simulator time), so the class itself has
 * no clock and property tests can drive arbitrary schedules.
 */
class CircuitBreaker
{
  public:
    explicit CircuitBreaker(BreakerConfig config = {});

    /** Would allow() admit a request at `now`? Pure (no transition). */
    bool can_allow(TimePoint now) const;

    /**
     * Routes a request through the breaker. Open transitions to
     * HalfOpen when the cooldown has elapsed; HalfOpen admits at most
     * probe_quota concurrent probes (each on_success/on_failure for a
     * half-open admission settles one probe).
     * @return true if the request may be sent to the replica.
     */
    bool allow(TimePoint now);

    /** The replica answered a routed request successfully. */
    void on_success(TimePoint now);

    /** A routed request failed (replica death, batch destroyed). */
    void on_failure(TimePoint now);

    /**
     * Force-opens the breaker (backing node went Down or Degraded).
     * Tripping an already-open breaker only refreshes the cooldown.
     */
    void trip(TimePoint now);

    BreakerState state() const { return state_; }
    /** Closed/HalfOpen -> Open transitions (incl. explicit trips). */
    uint64_t trips() const { return trips_; }
    int probes_in_flight() const { return probes_in_flight_; }
    int probe_successes() const { return probe_successes_; }

  private:
    void open(TimePoint now);

    BreakerConfig config_;
    BreakerState state_ = BreakerState::kClosed;
    TimePoint opened_at_;
    int consecutive_failures_ = 0;
    int probes_in_flight_ = 0;
    int probe_successes_ = 0;
    uint64_t trips_ = 0;
};

///@}

/** @name SLO-aware admission */
///@{

/** Admission-control parameters of one replica queue. */
struct AdmissionConfig {
    /** Max requests queued (admitted but not yet in service). */
    int queue_cap = 64;
};

/** Why a request was (not) admitted. */
struct AdmissionDecision {
    bool admit = false;
    /** Predicted completion instant used for the deadline check. */
    double predicted_completion_s = 0;
    /** Static reason string ("ok", "queue-full", "deadline"). */
    const char *reason = "ok";
};

/**
 * SLO-aware admission predicate. Admits iff the queue has room AND the
 * predicted completion — now, plus the backlog of admitted work ahead,
 * plus this request's own service time — meets the deadline. Pure:
 * admitted requests NEVER have predicted_completion_s > deadline_s.
 */
AdmissionDecision admit_request(const AdmissionConfig &config,
                                int queue_depth, double backlog_s,
                                double service_s, double now_s,
                                double deadline_s);

///@}

/**
 * Decorrelated-jitter backoff (the AWS Architecture Blog variant):
 * sleep = min(cap, uniform(base, prev * 3)). Desynchronizes retry
 * herds that pure exponential backoff re-releases in lockstep.
 * @param prev_s the previous sleep (pass <= 0 on the first retry).
 */
double decorrelated_jitter(Rng &rng, double base_s, double cap_s,
                           double prev_s);

} // namespace tacc::serve
