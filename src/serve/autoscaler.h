/**
 * @file
 * Replica autoscaling policies for inference services.
 *
 * Every epoch the serving simulator asks the autoscaler how many
 * replicas a service should hold given the demand it just observed.
 * Policies:
 *
 *  - StaticAutoscaler: a fixed replica count (provision-for-peak or
 *    provision-for-mean baselines);
 *  - TargetUtilizationAutoscaler: classic reactive scaling toward a
 *    utilization setpoint (Kubernetes-HPA-like);
 *  - SloAwareAutoscaler: solves the M/M/c model for the fewest replicas
 *    meeting the SLO-attainment target at the predicted rate (Nexus-like
 *    "squishy" planning), plus a headroom factor for prediction error.
 */
#pragma once

#include <algorithm>
#include <memory>
#include <string>

#include "serve/latency_model.h"

namespace tacc::serve {

/** What the autoscaler sees each epoch. */
struct ScaleContext {
    double arrival_rate_hz = 0;  ///< observed over the last epoch
    double service_rate_hz = 1;  ///< per-replica capacity
    double slo_s = 0.1;
    double slo_target = 0.99;    ///< desired attainment
    int current_replicas = 0;
    int max_replicas = 1;        ///< pool bound
};

/** Policy interface. */
class Autoscaler
{
  public:
    virtual ~Autoscaler() = default;
    virtual std::string name() const = 0;
    /** Replica count for the next epoch, in [0, ctx.max_replicas]. */
    virtual int decide(const ScaleContext &ctx) = 0;
};

/** Fixed allocation. */
class StaticAutoscaler : public Autoscaler
{
  public:
    explicit StaticAutoscaler(int replicas, std::string label = "static")
        : replicas_(replicas), label_(std::move(label))
    {
    }
    std::string name() const override { return label_; }
    int
    decide(const ScaleContext &ctx) override
    {
        return std::min(replicas_, ctx.max_replicas);
    }

  private:
    int replicas_;
    std::string label_;
};

/** Reactive scaling toward a utilization setpoint. */
class TargetUtilizationAutoscaler : public Autoscaler
{
  public:
    explicit TargetUtilizationAutoscaler(double target_utilization = 0.6)
        : target_(target_utilization)
    {
    }
    std::string name() const override { return "target-util"; }
    int decide(const ScaleContext &ctx) override;

  private:
    double target_;
};

/** Queueing-model-driven minimal provisioning for the SLO. */
class SloAwareAutoscaler : public Autoscaler
{
  public:
    explicit SloAwareAutoscaler(double rate_headroom = 1.15)
        : headroom_(rate_headroom)
    {
    }
    std::string name() const override { return "slo-aware"; }
    int decide(const ScaleContext &ctx) override;

    /** True once a decide() found the SLO unattainable even at the
     *  pool bound (pins max_replicas AND warns once instead of
     *  silently pinning). Latched until the SLO becomes attainable
     *  again, when the next unattainable stretch warns anew. */
    bool slo_unattainable() const { return unattainable_; }

  private:
    double headroom_;
    bool unattainable_ = false;
};

} // namespace tacc::serve
