/**
 * @file
 * Queueing-theoretic latency model for inference serving.
 *
 * A model served by c identical 1-GPU replicas under Poisson request
 * arrivals behaves (to first order) as an M/M/c queue. This header
 * implements the standard formulas the autoscalers and the serving
 * simulator price SLOs with:
 *
 *  - Erlang-C: probability an arriving request must queue;
 *  - mean waiting time;
 *  - the waiting-time tail P(W > t) = C e^{-(c mu - lambda) t};
 *  - SLO attainment P(W + S <= slo) under an exponential service
 *    approximation.
 *
 * All functions are pure and deterministic.
 */
#pragma once

namespace tacc::serve {

/**
 * Erlang-C: probability of queueing with c servers at offered load
 * a = lambda/mu. Requires c >= 1; returns 1.0 when the system is
 * overloaded (a >= c), where the queue grows without bound.
 */
double erlang_c(int servers, double offered_load);

/** Mean waiting time (seconds); infinity when overloaded. */
double mean_wait_s(int servers, double arrival_rate_hz,
                   double service_rate_hz);

/** P(W > t): probability a request waits more than t seconds. */
double wait_tail(int servers, double arrival_rate_hz,
                 double service_rate_hz, double t_s);

/**
 * SLO attainment: P(response time <= slo). Response = wait + service;
 * service is approximated by its mean (the deterministic GPU batch time
 * dominates), so attainment = 1 - P(W > slo - 1/mu), clamped to [0, 1].
 * Zero when the mean service time alone exceeds the SLO or the system
 * is overloaded.
 */
double slo_attainment(int servers, double arrival_rate_hz,
                      double service_rate_hz, double slo_s);

/** Result of planning a replica count against an SLO target. */
struct ReplicaPlan {
    /** Replicas to provision (== max_servers when unattainable). */
    int replicas = 0;
    /** False when even max_servers cannot meet the target — e.g. the
     *  mean service time alone exceeds the SLO. Callers must not treat
     *  `replicas` as sufficient in that case. */
    bool attainable = false;
    /** Predicted attainment at `replicas`. */
    double attainment = 0;
};

/**
 * Smallest replica count whose attainment meets `target` (e.g. 0.99)
 * for the given rates and SLO, capped at max_servers — with an explicit
 * attainability verdict instead of silently pinning the pool.
 */
ReplicaPlan plan_replicas_for_slo(double arrival_rate_hz,
                                  double service_rate_hz, double slo_s,
                                  double target, int max_servers);

/**
 * Legacy scalar form of plan_replicas_for_slo. Returns max_servers
 * when even that does not suffice — prefer the plan form, which says
 * so explicitly.
 */
int min_replicas_for_slo(double arrival_rate_hz, double service_rate_hz,
                         double slo_s, double target, int max_servers);

} // namespace tacc::serve
