/**
 * @file
 * Epoch-driven simulator for an inference service on a GPU pool.
 *
 * A service holds replicas (1 GPU each) out of a bounded pool carved
 * from the cluster. Demand follows a diurnal request-rate curve; each
 * epoch the autoscaler re-targets the replica count (scale-ups pay a
 * provisioning delay during which the old capacity serves), and the
 * M/M/c model prices that epoch's SLO attainment. The simulator reports
 * the operator's trade-off: attainment vs. GPU-hours spent.
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/time.h"
#include "serve/autoscaler.h"
#include "workload/model.h"

namespace tacc::serve {

/** Service description and demand shape. */
struct ServiceConfig {
    std::string name = "classifier";
    /** Catalog model served (forward pass ~ 1/3 of a training step). */
    std::string model = "resnet50";
    double gpu_tflops = 312.0;
    /**
     * Single-request serving runs far below the training batch's
     * efficiency (no batching amortization): multiplier on the per-
     * sample forward time.
     */
    double batch1_penalty = 8.0;
    /** Requests per second at the daily peak. */
    double peak_rate_hz = 400.0;
    /** Trough rate as a fraction of peak. */
    double trough_fraction = 0.15;
    double slo_s = 0.25;
    double slo_target = 0.99;
    /** GPUs the service may use at most. */
    int pool_gpus = 64;
    /** Re-evaluation epoch. */
    Duration epoch = Duration::minutes(10);
    /** Scale-up provisioning delay (container start + weights load). */
    Duration scale_up_delay = Duration::minutes(2);
    /** Simulated horizon. */
    Duration horizon = Duration::hours(24);
};

/** One epoch's outcome. */
struct EpochStats {
    TimePoint start;
    double arrival_rate_hz = 0;
    int replicas = 0;
    double attainment = 0;
};

/** Aggregate outcome of a run. */
struct ServingResult {
    std::string autoscaler;
    /** Request-weighted mean SLO attainment. */
    double mean_attainment = 0;
    /** Fraction of epochs meeting the target. */
    double good_epochs = 0;
    double replica_hours = 0;
    /** Replica-hours per million requests served. */
    double replica_hours_per_mreq = 0;
    std::vector<EpochStats> epochs;
};

/** Observer invoked once per epoch (the ops-telemetry export hook). */
using EpochObserver = std::function<void(const EpochStats &)>;

/** Runs one service under one autoscaler. */
class ServiceSimulator
{
  public:
    explicit ServiceSimulator(ServiceConfig config);

    /** Per-replica service rate implied by the model profile (req/s). */
    double service_rate_hz() const { return service_rate_hz_; }

    /** Diurnal request rate at time t (deterministic). */
    double arrival_rate_hz(TimePoint t) const;

    /**
     * @param on_epoch optional telemetry export: called with each
     *        epoch's stats as it is priced (e.g. to feed an
     *        ops::MetricStore SLO-attainment series).
     */
    ServingResult run(Autoscaler &autoscaler,
                      const EpochObserver &on_epoch = nullptr) const;

  private:
    ServiceConfig config_;
    double service_rate_hz_;
};

} // namespace tacc::serve
