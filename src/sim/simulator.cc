#include "sim/simulator.h"

#include <algorithm>
#include <cassert>

namespace tacc::sim {

bool
Simulator::is_live(EventId id) const
{
    const uint32_t slot = slot_of(id);
    return slot < slots_.size() &&
           slots_[slot].generation == generation_of(id);
}

uint32_t
Simulator::acquire_slot()
{
    if (!free_.empty()) {
        const uint32_t slot = free_.back();
        free_.pop_back();
        return slot;
    }
    slots_.emplace_back();
    return uint32_t(slots_.size() - 1);
}

void
Simulator::release_slot(uint32_t slot)
{
    Slot &s = slots_[slot];
    ++s.generation; // invalidates every outstanding id for this slot
    s.fn = nullptr;
    s.label = nullptr;
    free_.push_back(slot);
}

void
Simulator::heap_sift_up(size_t i) const
{
    const QueueEntry entry = heap_[i];
    while (i > 0) {
        const size_t parent = (i - 1) >> 2;
        if (!fires_before(entry, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = entry;
}

void
Simulator::heap_sift_down(size_t i) const
{
    const size_t n = heap_.size();
    const QueueEntry entry = heap_[i];
    for (;;) {
        const size_t first_child = (i << 2) + 1;
        if (first_child >= n)
            break;
        size_t best = first_child;
        const size_t end = std::min(first_child + 4, n);
        for (size_t c = first_child + 1; c < end; ++c) {
            if (fires_before(heap_[c], heap_[best]))
                best = c;
        }
        if (!fires_before(heap_[best], entry))
            break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = entry;
}

void
Simulator::heap_push(QueueEntry entry) const
{
    heap_.push_back(entry);
    heap_sift_up(heap_.size() - 1);
}

void
Simulator::heap_pop() const
{
    assert(!heap_.empty());
    const QueueEntry last = heap_.back();
    heap_.pop_back();
    const size_t n = heap_.size();
    if (n == 0)
        return;
    // The next minimum is one of the old root's children (heap property),
    // so start their slot lines now: by the time the next fire checks the
    // generation and moves the callback out, the line is already here.
    for (size_t c = 1; c <= 4 && c < n; ++c)
        __builtin_prefetch(&slots_[slot_of(heap_[c].id)]);
    // Bottom-up deletion: walk the min-child path to the bottom first
    // (no comparisons against `last`), then sift `last` up from there.
    // `last` is a leaf value, so the up-pass almost always stops at once.
    size_t i = 0;
    for (;;) {
        const size_t first_child = (i << 2) + 1;
        if (first_child >= n)
            break;
        // Pull the whole grandchild range while comparing this level (the
        // four children's child groups are 16 contiguous entries); the
        // walk is memory-bound once the heap outgrows the cache.
        const size_t grandchild = (first_child << 2) + 1;
        if (grandchild < n) {
            const char *base =
                reinterpret_cast<const char *>(&heap_[grandchild]);
            for (size_t off = 0; off < 16 * sizeof(QueueEntry); off += 64)
                __builtin_prefetch(base + off);
        }
        size_t best = first_child;
        const size_t end = std::min(first_child + 4, n);
        for (size_t c = first_child + 1; c < end; ++c) {
            if (fires_before(heap_[c], heap_[best]))
                best = c;
        }
        heap_[i] = heap_[best];
        i = best;
    }
    while (i > 0) {
        const size_t parent = (i - 1) >> 2;
        if (!fires_before(last, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = last;
}

EventId
Simulator::schedule_at(TimePoint t, const char *label, EventFn fn)
{
    assert(t >= now_ && "cannot schedule in the past");
    const uint32_t slot = acquire_slot();
    Slot &s = slots_[slot];
    s.fn = std::move(fn);
    s.label = label;
    const EventId id = make_id(s.generation, slot);
    heap_push(QueueEntry{t.to_micros(), next_seq_++, id});
    ++live_count_;
    return id;
}

EventId
Simulator::schedule_after(Duration d, const char *label, EventFn fn)
{
    assert(!d.is_negative());
    return schedule_at(now_ + d, label, std::move(fn));
}

void
Simulator::schedule_batch(std::vector<BatchEvent> &batch)
{
    const size_t k = batch.size();
    if (k == 0)
        return;
    const size_t old_size = heap_.size();
    heap_.reserve(old_size + k);
    for (BatchEvent &ev : batch) {
        assert(ev.t >= now_ && "cannot schedule in the past");
        const uint32_t slot = acquire_slot();
        Slot &s = slots_[slot];
        s.fn = std::move(ev.fn);
        s.label = ev.label;
        heap_.push_back(QueueEntry{ev.t.to_micros(), next_seq_++,
                                   make_id(s.generation, slot)});
    }
    live_count_ += k;
    // Restore the heap once for the whole burst. Sifting each appended
    // entry up costs O(k log n); Floyd's rebuild costs O(n) regardless
    // of k. Cross over when the burst is a sizable fraction of the heap.
    if (k <= old_size / 4 + 1) {
        for (size_t i = old_size; i < heap_.size(); ++i)
            heap_sift_up(i);
    } else if (heap_.size() > 1) {
        for (size_t i = (heap_.size() - 2) >> 2; i != size_t(-1); --i)
            heap_sift_down(i);
    }
}

bool
Simulator::cancel(EventId id)
{
    if (!is_live(id))
        return false;
    release_slot(slot_of(id));
    --live_count_;
    return true;
}

void
Simulator::drain_cancelled() const
{
    while (!heap_.empty() && !is_live(heap_.front().id))
        heap_pop();
}

TimePoint
Simulator::next_event_time() const
{
    drain_cancelled();
    return heap_.empty() ? TimePoint::max()
                         : TimePoint::from_micros(heap_.front().t_us);
}

bool
Simulator::step()
{
    drain_cancelled();
    if (heap_.empty())
        return false;
    const QueueEntry entry = heap_.front();
    heap_pop();
    Slot &slot = slots_[slot_of(entry.id)];
    assert(slot.generation == generation_of(entry.id));
    // Move the callback out before releasing so the event can reschedule
    // or cancel others (including itself, harmlessly) while running.
    EventFn fn = std::move(slot.fn);
    release_slot(slot_of(entry.id));
    --live_count_;
    assert(entry.t_us >= now_.to_micros());
    now_ = TimePoint::from_micros(entry.t_us);
    ++processed_;
    fn();
    return true;
}

void
Simulator::run()
{
    while (step()) {
    }
}

void
Simulator::reset()
{
    // Destroy pending callbacks and invalidate every outstanding id —
    // semantically a cancel() of each pending event, done slab-wide.
    for (Slot &s : slots_) {
        ++s.generation;
        s.fn = nullptr;
        s.label = nullptr;
    }
    free_.clear();
    free_.reserve(slots_.size());
    // Descending, so the next acquire_slot() hands out slot 0 first and
    // a fresh run allocates slots in the same order as a fresh engine.
    for (size_t i = slots_.size(); i > 0; --i)
        free_.push_back(uint32_t(i - 1));
    heap_.clear();
    now_ = TimePoint::origin();
    next_seq_ = 0;
    processed_ = 0;
    live_count_ = 0;
}

void
Simulator::adopt_storage(Storage &&storage)
{
    assert(slots_.empty() && heap_.empty() && next_seq_ == 0 &&
           "adopt_storage requires a pristine engine");
    heap_ = std::move(storage.heap);
    slots_ = std::move(storage.slots);
    free_ = std::move(storage.free_slots);
    heap_.clear();
    // The donor left the slab with all fns destroyed and generations
    // advanced; rebuild the free list so allocation order matches a
    // fresh engine (slot 0 first).
    free_.clear();
    free_.reserve(slots_.size());
    for (size_t i = slots_.size(); i > 0; --i)
        free_.push_back(uint32_t(i - 1));
}

Simulator::Storage
Simulator::release_storage()
{
    reset();
    Storage storage;
    storage.heap = std::move(heap_);
    storage.slots = std::move(slots_);
    storage.free_slots = std::move(free_);
    heap_ = {};
    slots_ = {};
    free_ = {};
    return storage;
}

void
Simulator::run_until(TimePoint t)
{
    assert(t >= now_);
    while (true) {
        drain_cancelled();
        if (heap_.empty() || heap_.front().t_us > t.to_micros())
            break;
        step();
    }
    now_ = t;
}

PeriodicTask::PeriodicTask(Simulator &sim, Duration period, std::string label,
                           EventFn fn)
    : sim_(sim), period_(period), label_(std::move(label)), fn_(std::move(fn))
{
    assert(!period_.is_zero() && !period_.is_negative());
}

PeriodicTask::~PeriodicTask()
{
    stop();
}

void
PeriodicTask::start()
{
    if (running_)
        return;
    running_ = true;
    arm();
}

void
PeriodicTask::stop()
{
    if (!running_)
        return;
    running_ = false;
    if (pending_) {
        sim_.cancel(pending_);
        pending_ = 0;
    }
}

void
PeriodicTask::arm()
{
    pending_ = sim_.schedule_after(period_, label_.c_str(), [this] {
        pending_ = 0;
        if (!running_)
            return;
        fn_();
        // fn_ may have called stop().
        if (running_)
            arm();
    });
}

} // namespace tacc::sim
