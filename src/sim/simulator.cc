#include "sim/simulator.h"

#include <cassert>

namespace tacc::sim {

EventId
Simulator::schedule_at(TimePoint t, std::string label, EventFn fn)
{
    assert(t >= now_ && "cannot schedule in the past");
    const EventId id = next_id_++;
    queue_.push(QueueEntry{t, next_seq_++, id});
    live_.emplace(id, LiveEvent{std::move(label), std::move(fn)});
    return id;
}

EventId
Simulator::schedule_after(Duration d, std::string label, EventFn fn)
{
    assert(!d.is_negative());
    return schedule_at(now_ + d, std::move(label), std::move(fn));
}

bool
Simulator::cancel(EventId id)
{
    return live_.erase(id) > 0;
}

void
Simulator::drain_cancelled()
{
    while (!queue_.empty() && !live_.contains(queue_.top().id))
        queue_.pop();
}

TimePoint
Simulator::next_event_time() const
{
    // Lazily-cancelled entries may sit at the top; scan a copy-free way by
    // const_cast-free peeking is not possible with priority_queue, so we
    // conservatively scan from the top via a mutable copy only when needed.
    auto *self = const_cast<Simulator *>(this);
    self->drain_cancelled();
    return queue_.empty() ? TimePoint::max() : queue_.top().t;
}

bool
Simulator::step()
{
    drain_cancelled();
    if (queue_.empty())
        return false;
    const QueueEntry entry = queue_.top();
    queue_.pop();
    auto it = live_.find(entry.id);
    assert(it != live_.end());
    // Move the callback out before erasing so the event can reschedule or
    // cancel others (including itself, harmlessly) while running.
    EventFn fn = std::move(it->second.fn);
    live_.erase(it);
    assert(entry.t >= now_);
    now_ = entry.t;
    ++processed_;
    fn();
    return true;
}

void
Simulator::run()
{
    while (step()) {
    }
}

void
Simulator::run_until(TimePoint t)
{
    assert(t >= now_);
    while (true) {
        drain_cancelled();
        if (queue_.empty() || queue_.top().t > t)
            break;
        step();
    }
    now_ = t;
}

PeriodicTask::PeriodicTask(Simulator &sim, Duration period, std::string label,
                           EventFn fn)
    : sim_(sim), period_(period), label_(std::move(label)), fn_(std::move(fn))
{
    assert(!period_.is_zero() && !period_.is_negative());
}

PeriodicTask::~PeriodicTask()
{
    stop();
}

void
PeriodicTask::start()
{
    if (running_)
        return;
    running_ = true;
    arm();
}

void
PeriodicTask::stop()
{
    if (!running_)
        return;
    running_ = false;
    if (pending_) {
        sim_.cancel(pending_);
        pending_ = 0;
    }
}

void
PeriodicTask::arm()
{
    pending_ = sim_.schedule_after(period_, label_, [this] {
        pending_ = 0;
        if (!running_)
            return;
        fn_();
        // fn_ may have called stop().
        if (running_)
            arm();
    });
}

} // namespace tacc::sim
