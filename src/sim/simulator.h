/**
 * @file
 * Discrete-event simulation engine.
 *
 * The Simulator owns virtual time and an event queue. Events scheduled for
 * the same instant fire in schedule order (a monotonically increasing
 * sequence number breaks ties), which makes every run deterministic.
 *
 * All higher layers (cluster, scheduler, execution) are written against
 * this engine: they react to events and schedule future ones; nothing in
 * the library uses wall-clock time.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.h"

namespace tacc::sim {

/** Handle for a scheduled event; usable to cancel it before it fires. */
using EventId = uint64_t;

/** Callback invoked when an event fires. */
using EventFn = std::function<void()>;

/** Deterministic discrete-event simulator. */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current virtual time. */
    TimePoint now() const { return now_; }

    /**
     * Schedules fn to run at absolute time t (must be >= now()).
     * The label is kept for diagnostics and tracing.
     * @return an id usable with cancel().
     */
    EventId schedule_at(TimePoint t, std::string label, EventFn fn);

    /** Schedules fn to run after delay d (>= 0) from now. */
    EventId schedule_after(Duration d, std::string label, EventFn fn);

    /**
     * Cancels a pending event.
     * @return true if the event existed and had not yet fired.
     */
    bool cancel(EventId id);

    /** Runs until the event queue is empty. */
    void run();

    /**
     * Runs all events with time <= t, then advances the clock to t.
     * Events scheduled during processing are honoured if they fall
     * within the horizon.
     */
    void run_until(TimePoint t);

    /**
     * Fires the single earliest pending event.
     * @return false if the queue was empty.
     */
    bool step();

    /** Number of events still pending. */
    size_t pending() const { return live_.size(); }

    /** Total events fired so far. */
    uint64_t processed() const { return processed_; }

    /** Time of the earliest pending event, or TimePoint::max() if none. */
    TimePoint next_event_time() const;

  private:
    struct QueueEntry {
        TimePoint t;
        uint64_t seq;
        EventId id;
        bool
        operator>(const QueueEntry &o) const
        {
            if (t != o.t)
                return t > o.t;
            return seq > o.seq;
        }
    };

    struct LiveEvent {
        std::string label;
        EventFn fn;
    };

    void drain_cancelled();

    TimePoint now_ = TimePoint::origin();
    uint64_t next_seq_ = 0;
    uint64_t next_id_ = 1;
    uint64_t processed_ = 0;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        queue_;
    std::unordered_map<EventId, LiveEvent> live_;
};

/**
 * Re-arming periodic event helper (e.g. scheduler ticks, monitors).
 *
 * The task does not fire at start(); the first invocation is one period
 * after start. stop() is idempotent and safe from inside the callback.
 */
class PeriodicTask
{
  public:
    /**
     * @param sim engine the task runs on (must outlive this object)
     * @param period fixed interval between invocations (> 0)
     * @param label diagnostic label
     * @param fn callback; invoked once per period until stop()
     */
    PeriodicTask(Simulator &sim, Duration period, std::string label,
                 EventFn fn);
    ~PeriodicTask();

    PeriodicTask(const PeriodicTask &) = delete;
    PeriodicTask &operator=(const PeriodicTask &) = delete;

    void start();
    void stop();
    bool running() const { return running_; }

  private:
    void arm();

    Simulator &sim_;
    Duration period_;
    std::string label_;
    EventFn fn_;
    bool running_ = false;
    EventId pending_ = 0;
};

} // namespace tacc::sim
