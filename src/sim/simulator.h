/**
 * @file
 * Discrete-event simulation engine.
 *
 * The Simulator owns virtual time and an event queue. Events scheduled for
 * the same instant fire in schedule order (a monotonically increasing
 * sequence number breaks ties), which makes every run deterministic.
 *
 * All higher layers (cluster, scheduler, execution) are written against
 * this engine: they react to events and schedule future ones; nothing in
 * the library uses wall-clock time.
 *
 * ## Event storage and the lazy-cancellation contract
 *
 * Event callbacks live in a slab of pooled slots recycled through a free
 * list; scheduling and cancelling never touch a hash map or allocate
 * per-event metadata. An EventId packs {generation, slot}: cancel() and
 * firing bump the slot's generation, so a stale id (already fired,
 * already cancelled, or referring to a recycled slot) is detected in O(1)
 * by a generation mismatch and safely ignored.
 *
 * Cancellation is *lazy* with respect to the time-ordered heap: cancel()
 * releases the callback and the slot immediately (O(1)), but the heap
 * entry stays behind and is discarded when it surfaces at the top. Heap
 * maintenance is therefore deferred work that const observers such as
 * next_event_time() may perform; the heap is declared mutable for exactly
 * this reason. Observable state (now(), pending(), processed(), event
 * ordering) is never affected by when the stale entries are drained.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/time.h"

namespace tacc::sim {

/**
 * Handle for a scheduled event; usable to cancel it before it fires.
 * Value 0 is never issued (callers may use it as "no event"). Ids are
 * generation-checked: using an id after its event fired or was cancelled
 * is safe and has no effect, even if the underlying slot was recycled.
 */
using EventId = uint64_t;

/** Callback invoked when an event fires. */
using EventFn = std::function<void()>;

/**
 * One future event of a bulk schedule (see Simulator::schedule_batch).
 * Same label-lifetime contract as schedule_at.
 */
struct BatchEvent {
    TimePoint t;
    const char *label = nullptr;
    EventFn fn;
};

/** Deterministic discrete-event simulator. */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current virtual time. */
    TimePoint now() const { return now_; }

    /**
     * Schedules fn to run at absolute time t (must be >= now()).
     * The label is kept for diagnostics and tracing; it is *not* copied,
     * so it must outlive the event (pass a string literal or other
     * statically allocated string).
     * @return an id usable with cancel().
     */
    EventId schedule_at(TimePoint t, const char *label, EventFn fn);

    /** Schedules fn to run after delay d (>= 0) from now. */
    EventId schedule_after(Duration d, const char *label, EventFn fn);

    /**
     * Schedules a burst of events in one pass — the batched event-heap
     * path behind streaming arrival-window refills. Equivalent to
     * calling schedule_at for each entry in order (sequence numbers are
     * assigned in batch order, so same-instant ties fire in batch
     * order and the pop order is identical to serial pushes), but the
     * heap is restored once: small bursts sift only the appended range,
     * large bursts trigger a single Floyd rebuild instead of k
     * leaf-to-root walks. Entries' callbacks are moved from; the batch
     * vector itself is left with empty functions for caller reuse.
     */
    void schedule_batch(std::vector<BatchEvent> &batch);

    /**
     * Cancels a pending event in O(1).
     * @return true if the event existed and had not yet fired.
     */
    bool cancel(EventId id);

    /** Runs until the event queue is empty. */
    void run();

    /**
     * Runs all events with time <= t, then advances the clock to t.
     * Events scheduled during processing are honoured if they fall
     * within the horizon.
     */
    void run_until(TimePoint t);

    /**
     * Fires the single earliest pending event.
     * @return false if the queue was empty.
     */
    bool step();

    /** Number of events still pending. */
    size_t pending() const { return live_count_; }

    /** Total events fired so far. */
    uint64_t processed() const { return processed_; }

    /** Time of the earliest pending event, or TimePoint::max() if none. */
    TimePoint next_event_time() const;

    /**
     * Returns the engine to its just-constructed logical state — clock
     * at origin, empty queue, zero counters — while keeping the event
     * slab, free list, and heap capacity. Outstanding EventIds are
     * invalidated (generations advance, exactly as if every pending
     * event had been cancelled), so a stale id held across reset() is
     * detected and ignored like any other dead id. This is the
     * arena-reuse path: sweep workers run thousands of scenarios
     * without re-paying slab growth each time.
     */
    void reset();

  private:
    /** Pooled event storage; recycled through free_. Cache-line sized
     *  and aligned so firing an event touches exactly one slot line. */
    struct alignas(64) Slot {
        EventFn fn;
        /** Diagnostic label (static string; never read on the fire path). */
        const char *label = nullptr;
        /** Matches the id's generation only while the event is pending. */
        uint32_t generation = 0;
    };

    /** Heap entry; ordering is (time, schedule sequence). */
    struct QueueEntry {
        int64_t t_us;
        uint64_t seq;
        EventId id;
    };

    static bool
    fires_before(const QueueEntry &a, const QueueEntry &b)
    {
        if (a.t_us != b.t_us)
            return a.t_us < b.t_us;
        return a.seq < b.seq;
    }

    /** Packs {generation, slot}; slot is biased by 1 so ids are nonzero. */
    static EventId
    make_id(uint32_t generation, uint32_t slot)
    {
        return (uint64_t(generation) << 32) | uint64_t(slot + 1);
    }
    static uint32_t slot_of(EventId id) { return uint32_t(id) - 1; }
    static uint32_t generation_of(EventId id) { return uint32_t(id >> 32); }

    bool is_live(EventId id) const;
    uint32_t acquire_slot();
    void release_slot(uint32_t slot);

    /** @name Implicit 4-ary min-heap over heap_ (cache-friendlier than a
     *  binary heap at campus-trace queue depths). Const because lazy
     *  cancellation lets const observers discard stale top entries. */
    ///@{
    void heap_push(QueueEntry entry) const;
    void heap_pop() const;
    void heap_sift_up(size_t i) const;
    void heap_sift_down(size_t i) const;
    void drain_cancelled() const;
    ///@}

  public:
    /**
     * The engine's recyclable allocations: the event slab, free list,
     * and heap buffer. Opaque to callers — it exists only to move
     * capacity between Simulator instances (core::StackArena), so sweep
     * workers reconstructing a stack per scenario reuse the previous
     * run's slab instead of growing a fresh one.
     */
    struct Storage {
        std::vector<QueueEntry> heap;
        std::vector<Slot> slots;
        std::vector<uint32_t> free_slots;
    };

    /**
     * Donates previously released storage to this engine. Must be
     * called before any event is scheduled. Slot generations carry
     * over, so ids issued by the storage's previous owner stay dead.
     */
    void adopt_storage(Storage &&storage);

    /**
     * Hands the engine's allocations back for reuse and leaves it
     * logically empty. Pending callbacks are destroyed (their captures
     * are released), exactly as if each had been cancelled.
     */
    Storage release_storage();

  private:

    TimePoint now_ = TimePoint::origin();
    uint64_t next_seq_ = 0;
    uint64_t processed_ = 0;
    size_t live_count_ = 0;
    /** Mutable: stale (cancelled) entries are drained from const paths;
     *  see the lazy-cancellation contract in the file header. */
    mutable std::vector<QueueEntry> heap_;
    std::vector<Slot> slots_;
    std::vector<uint32_t> free_;
};

/**
 * Re-arming periodic event helper (e.g. scheduler ticks, monitors).
 *
 * The task does not fire at start(); the first invocation is one period
 * after start. stop() is idempotent and safe from inside the callback.
 */
class PeriodicTask
{
  public:
    /**
     * @param sim engine the task runs on (must outlive this object)
     * @param period fixed interval between invocations (> 0)
     * @param label diagnostic label
     * @param fn callback; invoked once per period until stop()
     */
    PeriodicTask(Simulator &sim, Duration period, std::string label,
                 EventFn fn);
    ~PeriodicTask();

    PeriodicTask(const PeriodicTask &) = delete;
    PeriodicTask &operator=(const PeriodicTask &) = delete;

    void start();
    void stop();
    bool running() const { return running_; }

  private:
    void arm();

    Simulator &sim_;
    Duration period_;
    /** Owned here; events reference it by pointer (no copy per firing). */
    std::string label_;
    EventFn fn_;
    bool running_ = false;
    EventId pending_ = 0;
};

} // namespace tacc::sim
