#include "tcloud/client.h"

#include "common/strings.h"

namespace tacc::tcloud {

Status
Client::add_cluster(const std::string &name, core::TaccStack *stack)
{
    if (name.empty() || !stack)
        return Status::invalid_argument("cluster name/stack required");
    if (clusters_.contains(name))
        return Status::already_exists("cluster profile: " + name);
    clusters_.emplace(name, stack);
    if (default_cluster_.empty())
        default_cluster_ = name;
    return Status::ok();
}

Status
Client::set_default_cluster(const std::string &name)
{
    if (!clusters_.contains(name))
        return Status::not_found("cluster profile: " + name);
    default_cluster_ = name;
    return Status::ok();
}

std::vector<std::string>
Client::cluster_names() const
{
    std::vector<std::string> out;
    out.reserve(clusters_.size());
    for (const auto &[name, stack] : clusters_)
        out.push_back(name);
    return out;
}

core::TaccStack *
Client::resolve(const std::string &cluster) const
{
    const std::string &name =
        cluster.empty() ? default_cluster_ : cluster;
    auto it = clusters_.find(name);
    return it == clusters_.end() ? nullptr : it->second;
}

StatusOr<TaskHandle>
Client::submit_text(const std::string &spec_text, const std::string &cluster)
{
    auto spec = workload::TaskSpec::parse(spec_text);
    if (!spec.is_ok())
        return spec.status();
    return submit(spec.value(), cluster);
}

StatusOr<TaskHandle>
Client::submit(const workload::TaskSpec &spec, const std::string &cluster)
{
    core::TaccStack *stack = resolve(cluster);
    if (!stack)
        return Status::not_found("no such cluster profile");
    auto id = stack->submit(spec);
    if (!id.is_ok())
        return id.status();
    TaskHandle handle;
    handle.cluster = cluster.empty() ? default_cluster_ : cluster;
    handle.job = id.value();
    return handle;
}

StatusOr<TaskHandle>
Client::submit_after(const workload::TaskSpec &spec,
                     const std::vector<TaskHandle> &dependencies,
                     const std::string &cluster)
{
    const std::string target =
        cluster.empty() ? default_cluster_ : cluster;
    core::TaccStack *stack = resolve(target);
    if (!stack)
        return Status::not_found("no such cluster profile");
    std::vector<cluster::JobId> deps;
    for (const auto &handle : dependencies) {
        if (handle.cluster != target) {
            return Status::invalid_argument(
                "dependency lives on cluster '" + handle.cluster +
                "', task targets '" + target + "'");
        }
        deps.push_back(handle.job);
    }
    auto id = stack->submit(spec, deps);
    if (!id.is_ok())
        return id.status();
    return TaskHandle{target, id.value()};
}

StatusOr<TaskStatus>
Client::status(const TaskHandle &handle) const
{
    core::TaccStack *stack = resolve(handle.cluster);
    if (!stack)
        return Status::not_found("no such cluster profile");
    const workload::Job *job = stack->find_job(handle.job);
    if (!job)
        return Status::not_found(
            strfmt("job %llu", (unsigned long long)handle.job));

    TaskStatus out;
    out.state = job->state();
    out.progress = job->estimated_progress(stack->simulator().now());
    out.gpus = job->running_gpus();
    out.preemptions = job->preemption_count();
    out.segments = job->segment_count();
    out.gpu_seconds = job->gpu_seconds();
    out.summary = strfmt(
        "%s  state=%s  progress=%.1f%%  gpus=%d  segments=%d  preempt=%d",
        job->spec().name.c_str(), workload::job_state_name(job->state()),
        out.progress * 100.0, out.gpus, out.segments, out.preemptions);
    if (job->state() == workload::JobState::kPending ||
        job->state() == workload::JobState::kProvisioning) {
        auto eta = stack->estimated_start(handle.job);
        if (eta.is_ok()) {
            out.summary += strfmt(
                "  eta=%s",
                (eta.value() - stack->simulator().now()).str().c_str());
        }
    }
    return out;
}

StatusOr<std::vector<std::string>>
Client::logs(const TaskHandle &handle) const
{
    core::TaccStack *stack = resolve(handle.cluster);
    if (!stack)
        return Status::not_found("no such cluster profile");
    if (!stack->find_job(handle.job))
        return Status::not_found(
            strfmt("job %llu", (unsigned long long)handle.job));
    std::vector<std::string> out;
    for (const auto &line : stack->monitor().aggregate(handle.job)) {
        out.push_back(strfmt("%s node%03u %s", line.time.str().c_str(),
                             line.node, line.text.c_str()));
    }
    return out;
}

StatusOr<std::string>
Client::operator_report(const std::string &cluster) const
{
    core::TaccStack *stack = resolve(cluster);
    if (!stack)
        return Status::not_found("no such cluster profile");
    return stack->operator_report();
}

StatusOr<std::string>
Client::accounting(const std::string &group,
                   const std::string &cluster) const
{
    if (group.empty())
        return Status::invalid_argument("group name required");
    core::TaccStack *stack = resolve(cluster);
    if (!stack)
        return Status::not_found("no such cluster profile");
    return stack->accounting_report(group);
}

Status
Client::cordon(int node, const std::string &cluster)
{
    core::TaccStack *stack = resolve(cluster);
    if (!stack)
        return Status::not_found("no such cluster profile");
    return stack->cordon_node(node);
}

Status
Client::drain_node(int node, const std::string &cluster)
{
    core::TaccStack *stack = resolve(cluster);
    if (!stack)
        return Status::not_found("no such cluster profile");
    return stack->drain_node(node);
}

Status
Client::uncordon(int node, const std::string &cluster)
{
    core::TaccStack *stack = resolve(cluster);
    if (!stack)
        return Status::not_found("no such cluster profile");
    return stack->uncordon_node(node);
}

StatusOr<std::string>
Client::health(const std::string &cluster) const
{
    core::TaccStack *stack = resolve(cluster);
    if (!stack)
        return Status::not_found("no such cluster profile");
    return stack->health_report();
}

StatusOr<std::string>
Client::power(const std::string &cluster) const
{
    core::TaccStack *stack = resolve(cluster);
    if (!stack)
        return Status::not_found("no such cluster profile");
    return stack->power_report();
}

StatusOr<std::string>
Client::energy(const std::string &cluster) const
{
    core::TaccStack *stack = resolve(cluster);
    if (!stack)
        return Status::not_found("no such cluster profile");
    return stack->energy_report();
}

Status
Client::kill(const TaskHandle &handle)
{
    core::TaccStack *stack = resolve(handle.cluster);
    if (!stack)
        return Status::not_found("no such cluster profile");
    return stack->kill(handle.job);
}

StatusOr<TaskStatus>
Client::wait(const TaskHandle &handle)
{
    core::TaccStack *stack = resolve(handle.cluster);
    if (!stack)
        return Status::not_found("no such cluster profile");
    const workload::Job *job = stack->find_job(handle.job);
    if (!job)
        return Status::not_found(
            strfmt("job %llu", (unsigned long long)handle.job));
    while (!job->terminal()) {
        if (!stack->simulator().step())
            return Status::failed_precondition(
                "simulation drained before the task finished");
    }
    return status(handle);
}

} // namespace tacc::tcloud
