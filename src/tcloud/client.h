/**
 * @file
 * tcloud: the client library for task management on TACC.
 *
 * tcloud gives users a serverless experience: submit a self-contained task
 * description to a cluster, then monitor, fetch aggregated distributed
 * logs, and kill — all without maintaining an experiment environment. A
 * client can register several TACC cluster instances and switch between
 * them with one line of configuration.
 *
 * In the deployed system tcloud talks SSH to cluster frontends; here the
 * transport is a direct in-process binding to TaccStack instances, which
 * exercises the identical task-management surface.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/stack.h"

namespace tacc::tcloud {

/** Opaque reference to a submitted task. */
struct TaskHandle {
    std::string cluster;
    cluster::JobId job = cluster::kInvalidJob;
};

/** Point-in-time view of a task, as `tcloud status` renders it. */
struct TaskStatus {
    workload::JobState state = workload::JobState::kSubmitted;
    double progress = 0;   ///< fraction of iterations done
    int gpus = 0;          ///< currently allocated GPUs
    int preemptions = 0;
    int segments = 0;
    double gpu_seconds = 0;
    std::string summary;   ///< one-line human rendering
};

/** The tcloud client. */
class Client
{
  public:
    Client() = default;

    /**
     * Registers a cluster instance under a profile name. The stack must
     * outlive the client.
     */
    Status add_cluster(const std::string &name, core::TaccStack *stack);

    /** Selects the cluster used when submit() is not given one. */
    Status set_default_cluster(const std::string &name);

    const std::string &default_cluster() const { return default_cluster_; }
    std::vector<std::string> cluster_names() const;

    /**
     * Submits a task from its canonical schema text (the CLI path).
     * @param cluster profile name; empty = default cluster.
     */
    StatusOr<TaskHandle> submit_text(const std::string &spec_text,
                                     const std::string &cluster = "");

    /** Submits an already-built spec. */
    StatusOr<TaskHandle> submit(const workload::TaskSpec &spec,
                                const std::string &cluster = "");

    /**
     * Submits a task that runs only after the given tasks complete
     * (pipelines). All handles must live on the same cluster.
     */
    StatusOr<TaskHandle> submit_after(
        const workload::TaskSpec &spec,
        const std::vector<TaskHandle> &dependencies,
        const std::string &cluster = "");

    /** Current status of a task. */
    StatusOr<TaskStatus> status(const TaskHandle &handle) const;

    /**
     * The task's log lines aggregated across all nodes it ran on,
     * time-ordered — the distributed-debugging view.
     */
    StatusOr<std::vector<std::string>> logs(const TaskHandle &handle) const;

    /** Kills the task wherever it is in its lifecycle. */
    Status kill(const TaskHandle &handle);

    /**
     * The cluster's operator summary (`tcloud report`): occupancy,
     * queueing, telemetry, alert incidents, per-group usage.
     * @param cluster profile name; empty = default cluster.
     */
    StatusOr<std::string> operator_report(
        const std::string &cluster = "") const;

    /**
     * One group's billing statements (`tcloud accounting <group>`).
     * @param cluster profile name; empty = default cluster.
     */
    StatusOr<std::string> accounting(const std::string &group,
                                     const std::string &cluster = "") const;

    /** @name Node lifecycle (`tcloud cordon|drain|uncordon|health`) */
    ///@{
    /** Holds a node: running gangs finish, no new placements land. */
    Status cordon(int node, const std::string &cluster = "");
    /** Evacuates a node: residents are gracefully requeued. */
    Status drain_node(int node, const std::string &cluster = "");
    /** Returns a cordoned/drained node to service. */
    Status uncordon(int node, const std::string &cluster = "");
    /** Per-state node counts, capacity, and fault totals. */
    StatusOr<std::string> health(const std::string &cluster = "") const;
    ///@}

    /** @name Power & energy (`tcloud power|energy`) */
    ///@{
    /** Draw vs caps per scope, throttling, deferrals. */
    StatusOr<std::string> power(const std::string &cluster = "") const;
    /** Cluster/baseline/per-group kWh ledger. */
    StatusOr<std::string> energy(const std::string &cluster = "") const;
    ///@}

    /**
     * Blocks (drives the simulation) until the task is terminal.
     * @return the final status.
     */
    StatusOr<TaskStatus> wait(const TaskHandle &handle);

  private:
    core::TaccStack *resolve(const std::string &cluster) const;

    std::map<std::string, core::TaccStack *> clusters_;
    std::string default_cluster_;
};

} // namespace tacc::tcloud
