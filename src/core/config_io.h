/**
 * @file
 * Text form for deployment configurations.
 *
 * Operators describe a TACC deployment (cluster shape, hardware
 * generations, scheduler, quotas, failure/checkpoint policy) in the same
 * `key: value` dialect as the task schema; parse_stack_config() turns it
 * into a StackConfig and stack_config_to_text() renders one back
 * (parse(render(c)) reproduces every field the format carries). Used by
 * the tcloud CLI (`open <file>`) and the capacity-planner tool.
 *
 * Recognized keys (all optional; omissions keep defaults):
 *
 *   cluster: campus                 name
 *   racks / nodes_per_rack / gpus_per_node: ints
 *   gpu: A100,312,80                model,tflops,memory_gb
 *   rack_override: 2,V100,125,32,4  rack,model,tflops,mem_gb,gpus
 *   oversubscription / nic_gbps / nvlink_gbps: numbers
 *   scheduler / placement: factory names
 *   usage_half_life_h: hours
 *   quota: group,max_gpus           (repeatable)
 *   default_quota: int              (<0 unlimited)
 *   avoid_gpu_mixing / rdma / innetwork / failsafe / spine_contention:
 *       true|false
 *   mtbf_hours / persistent_failure_prob / checkpoint_interval_s /
 *       checkpoint_cost_s / restart_overhead_s: numbers
 *   seed: int
 */
#pragma once

#include <string>

#include "common/status.h"
#include "core/stack.h"

namespace tacc::core {

/** Parses the deployment dialect; unknown keys are errors. */
StatusOr<StackConfig> parse_stack_config(const std::string &text);

/** Renders a config back to the dialect (stable key order). */
std::string stack_config_to_text(const StackConfig &config);

} // namespace tacc::core
