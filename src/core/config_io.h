/**
 * @file
 * Text form for deployment configurations.
 *
 * Operators describe a TACC deployment (cluster shape, hardware
 * generations, scheduler, quotas, failure/checkpoint policy) in the same
 * `key: value` dialect as the task schema; parse_stack_config() turns it
 * into a StackConfig and stack_config_to_text() renders one back
 * (parse(render(c)) reproduces every field the format carries). Used by
 * the tcloud CLI (`open <file>`) and the capacity-planner tool.
 *
 * Recognized keys (all optional; omissions keep defaults):
 *
 *   cluster: campus                 name
 *   racks / nodes_per_rack / gpus_per_node: ints
 *   gpu: A100,312,80                model,tflops,memory_gb
 *   rack_override: 2,V100,125,32,4  rack,model,tflops,mem_gb,gpus
 *   oversubscription / nic_gbps / nvlink_gbps: numbers
 *   scheduler / placement: factory names
 *   w_age / w_fairshare / w_qos / w_size: multifactor priority weights
 *   backfill_depth: queued jobs examined per backfill pass (0 = all)
 *   gang_quantum_s / las_threshold_gpu_s / preempt_cost_gpu_s: numbers
 *   usage_half_life_h: hours
 *   quota: group,max_gpus           (repeatable)
 *   default_quota: int              (<0 unlimited)
 *   avoid_gpu_mixing / rdma / innetwork / failsafe / spine_contention:
 *       true|false
 *   mtbf_hours / persistent_failure_prob / checkpoint_interval_s /
 *       checkpoint_cost_s / restart_overhead_s: numbers
 *   seed: int
 */
#pragma once

#include <string>

#include "common/status.h"
#include "core/stack.h"

namespace tacc::core {

/**
 * Parses the deployment dialect. Unknown keys and out-of-range values
 * are hard errors, and every diagnostic is prefixed with the offending
 * line number ("line 7: unknown key: ...") — checked-in presets that
 * rot fail loudly at load time instead of silently reverting knobs to
 * defaults.
 */
StatusOr<StackConfig> parse_stack_config(const std::string &text);

/** Renders a config back to the dialect (stable key order). */
std::string stack_config_to_text(const StackConfig &config);

} // namespace tacc::core
