/**
 * @file
 * Fault-domain failure injection and the self-healing node lifecycle.
 *
 * The injector drives the cluster's per-node health state machine with
 * three deterministic fault processes, each on its own derived RNG
 * stream so their draws never depend on scheduling order:
 *
 *  - independent node crashes (exponential inter-arrival per node),
 *  - correlated fault-domain outages: a rack switch takes out one rack,
 *    a PDU takes out `racks_per_pdu` adjacent racks at once,
 *  - degradation: a node drops to Degraded, where it keeps running but
 *    faults segments at `degraded_fault_multiplier` times the base rate
 *    (applied by the FailureModel), until it recovers.
 *
 * Every downed node self-heals: Down -> (detection delay) -> Repairing
 * -> (repair time) -> Healthy. Overlapping outages extend downtime via
 * the health tracker's per-node epochs — a repair scheduled before a
 * second hit simply goes stale. Scripted outages give tests and benches
 * exactly reproducible storms without touching the random streams.
 *
 * The injector also keeps the flaky-node scoreboard: nodes whose crashes
 * killed gangs collect strikes; nodes with enough recent strikes are
 * vetoed from placement (SchedulerContext::node_filter) until the
 * strikes age out.
 */
#pragma once

#include <functional>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/time.h"
#include "sim/simulator.h"

namespace tacc::core {

/** One deterministic, pre-planned fault-domain outage. */
struct ScriptedOutage {
    double at_s = 0;       ///< outage start (sim seconds from origin)
    int rack = 0;          ///< rack that loses its switch
    double duration_s = 0; ///< all nodes of the rack are back after this
};

/** Fault-domain / node-lifecycle configuration. */
struct FaultDomainConfig {
    /** Master switch; off means no injector exists at all. */
    bool enabled = false;

    /** @name Random fault processes (<= 0 disables each) */
    ///@{
    double node_crash_mtbf_hours = 0.0;   ///< per-node independent crash
    double node_degrade_mtbf_hours = 0.0; ///< per-node degradation onset
    double degraded_duration_hours = 2.0; ///< Degraded -> Healthy
    double rack_outage_mtbf_hours = 0.0;  ///< per-rack switch outage
    double pdu_outage_mtbf_hours = 0.0;   ///< per-PDU-group outage
    ///@}
    /** Racks sharing one power distribution unit. */
    int racks_per_pdu = 2;

    /** @name Repair-time model */
    ///@{
    double detection_delay_s = 30.0; ///< Down -> Repairing
    double node_repair_hours = 2.0;  ///< crashed node restore
    double rack_repair_hours = 0.5;  ///< switch swap
    double pdu_repair_hours = 1.0;   ///< power restore
    ///@}

    /** Deterministic outages, independent of the random processes. */
    std::vector<ScriptedOutage> scripted;

    /** @name Flaky-node scoreboard */
    ///@{
    /** Recent strikes at which a node is vetoed from placement. */
    int flaky_strike_threshold = 2;
    /** Strikes older than this stop counting. */
    double flaky_window_hours = 1.0;
    ///@}
};

/** Injects faults, heals nodes, and scores flaky ones. */
class FaultInjector
{
  public:
    struct Callbacks {
        /** A node just went Down; the core must kill its gangs. */
        std::function<void(cluster::NodeId)> on_node_down;
        /** A node is Draining; the core gracefully requeues residents. */
        std::function<void(cluster::NodeId)> on_node_evacuate;
        /** Capacity returned (repair/uncordon); worth rescheduling. */
        std::function<void()> on_capacity_change;
    };

    FaultInjector(sim::Simulator &sim, cluster::Cluster &cluster,
                  FaultDomainConfig config, uint64_t seed, Callbacks cb);

    const FaultDomainConfig &config() const { return config_; }

    /** Schedules the initial fault events; call once before running. */
    void start();

    /** @name Operator verbs */
    ///@{
    /** Hold a node: no new placements, residents keep running. */
    Status cordon(cluster::NodeId node);
    /** Evacuate a node for maintenance: residents are gracefully
     *  requeued (no attempt is charged), no new placements. */
    Status drain(cluster::NodeId node);
    /** Return a cordoned/drained node to service. */
    Status uncordon(cluster::NodeId node);
    ///@}

    /** @name Flaky-node scoreboard */
    ///@{
    void record_strike(cluster::NodeId node, TimePoint now);
    /**
     * Fills `mask` (1 = allowed) vetoing nodes with at least
     * flaky_strike_threshold strikes in the window ending at `now`.
     * @return true if any node is vetoed (mask is only valid then).
     */
    bool build_node_filter(TimePoint now, std::vector<uint8_t> &mask);
    ///@}

    /** @name Counters (observability) */
    ///@{
    uint64_t node_crashes() const { return node_crashes_; }
    uint64_t rack_outages() const { return rack_outages_; }
    uint64_t pdu_outages() const { return pdu_outages_; }
    uint64_t degradations() const { return degradations_; }
    uint64_t repairs() const { return repairs_; }
    ///@}

  private:
    /** Takes one node Down (killing gangs) and schedules its healing
     *  after `repair` (detection + fix; total downtime). */
    void take_down(cluster::NodeId node, Duration repair);
    void take_down_rack(int rack, Duration repair);
    void schedule_node_crash(cluster::NodeId node);
    void schedule_node_degrade(cluster::NodeId node);
    void schedule_rack_outage(int rack);
    void schedule_pdu_outage(int pdu);
    int pdu_count() const;

    sim::Simulator &sim_;
    cluster::Cluster &cluster_;
    FaultDomainConfig config_;
    Callbacks cb_;
    /** One stream per fault chain: draws depend only on (seed, chain). */
    std::vector<Rng> crash_rng_, degrade_rng_, rack_rng_, pdu_rng_;
    /** Strike timestamps per node, oldest first. */
    std::vector<std::vector<TimePoint>> strikes_;
    /** Fast path: stays false until the first strike ever. */
    bool any_strikes_ = false;
    uint64_t node_crashes_ = 0;
    uint64_t rack_outages_ = 0;
    uint64_t pdu_outages_ = 0;
    uint64_t degradations_ = 0;
    uint64_t repairs_ = 0;
};

} // namespace tacc::core
