#include "core/metrics.h"

#include <algorithm>

#include "common/hash.h"
#include "workload/trace.h"

namespace tacc::core {

MetricsCollector::MetricsCollector() : used_gpus_(0.0), queue_depth_(0.0) {}

void
MetricsCollector::on_gpus_in_use(TimePoint t, int used)
{
    used_gpus_.set(t, double(used));
}

void
MetricsCollector::on_queue_depth(TimePoint t, int pending)
{
    queue_depth_.set(t, double(pending));
}

void
MetricsCollector::on_placement(cluster::JobId id,
                               const cluster::Placement &p)
{
    auto [it, inserted] = placement_digests_.try_emplace(id, Fnv1a::kBasis);
    Fnv1a h(it->second);
    h.u64(uint64_t(p.slices.size()));
    for (const auto &slice : p.slices) {
        h.u32(slice.node);
        h.u64(uint64_t(slice.gpu_indices.size()));
        for (int gpu : slice.gpu_indices)
            h.i32(gpu);
    }
    it->second = h.value();
}

const JobRecord &
MetricsCollector::record_job(const workload::Job &job)
{
    JobRecord r;
    r.id = job.id();
    r.user = job.spec().user;
    r.group = job.spec().group;
    r.qos = job.spec().qos;
    r.final_state = job.state();
    r.submitted = job.submit_time();
    r.finished = job.terminal() ? job.finish_time() : job.submit_time();
    r.gpus = job.spec().gpus;
    r.started = job.has_started();
    r.wait_s = job.has_started() ? job.queueing_delay().to_seconds() : 0.0;
    r.jct_s = job.terminal() ? job.jct().to_seconds() : 0.0;
    r.provision_s = job.provision_latency().to_seconds();
    r.ideal_s = double(job.spec().iterations) *
                workload::estimated_iteration_s(job.model(),
                                                job.spec().gpus);
    r.gpu_seconds = job.gpu_seconds();
    r.preemptions = job.preemption_count();
    r.segments = job.segment_count();
    r.has_deadline = job.spec().has_deadline();
    r.missed_deadline = job.missed_deadline();
    if (auto it = placement_digests_.find(job.id());
        it != placement_digests_.end())
        r.placement_digest = it->second;
    completed_count_ += r.final_state == workload::JobState::kCompleted;
    failed_count_ += r.final_state == workload::JobState::kFailed;
    deadline_missed_ += r.missed_deadline;
    records_.push_back(std::move(r));
    if (job.terminal())
        makespan_ = std::max(makespan_, job.finish_time());
    return records_.back();
}

std::vector<JobRecord>
MetricsCollector::records_of(workload::QosClass qos) const
{
    std::vector<JobRecord> out;
    for (const auto &r : records_) {
        if (r.qos == qos)
            out.push_back(r);
    }
    return out;
}

Samples
MetricsCollector::jct_samples() const
{
    Samples s;
    for (const auto &r : records_) {
        if (r.final_state == workload::JobState::kCompleted)
            s.add(r.jct_s);
    }
    return s;
}

Samples
MetricsCollector::jct_samples_of(workload::QosClass qos) const
{
    Samples s;
    for (const auto &r : records_) {
        if (r.qos == qos && r.final_state == workload::JobState::kCompleted)
            s.add(r.jct_s);
    }
    return s;
}

Samples
MetricsCollector::wait_samples() const
{
    Samples s;
    for (const auto &r : records_) {
        if (r.started)
            s.add(r.wait_s);
    }
    return s;
}

Samples
MetricsCollector::wait_samples_of(workload::QosClass qos) const
{
    Samples s;
    for (const auto &r : records_) {
        if (r.qos == qos && r.started)
            s.add(r.wait_s);
    }
    return s;
}

double
MetricsCollector::mean_utilization(TimePoint t0, TimePoint t1,
                                   int total_gpus) const
{
    if (total_gpus <= 0)
        return 0.0;
    return used_gpus_.average(t0, t1) / double(total_gpus);
}

std::vector<double>
MetricsCollector::utilization_series(TimePoint t0, TimePoint t1,
                                     Duration bucket, int total_gpus) const
{
    auto series = used_gpus_.bucket_averages(t0, t1, bucket);
    for (auto &v : series)
        v /= double(std::max(1, total_gpus));
    return series;
}

double
MetricsCollector::mean_queue_depth(TimePoint t0, TimePoint t1) const
{
    return queue_depth_.average(t0, t1);
}

std::vector<double>
MetricsCollector::queue_depth_series(TimePoint t0, TimePoint t1,
                                     Duration bucket) const
{
    return queue_depth_.bucket_averages(t0, t1, bucket);
}

Samples
MetricsCollector::slowdown_samples() const
{
    Samples s;
    for (const auto &r : records_) {
        if (r.final_state == workload::JobState::kCompleted &&
            r.ideal_s > 0) {
            s.add(r.jct_s / r.ideal_s);
        }
    }
    return s;
}

std::map<std::string, double>
MetricsCollector::gpu_seconds_by_group() const
{
    std::map<std::string, double> out;
    for (const auto &r : records_)
        out[r.group] += r.gpu_seconds;
    return out;
}

std::map<std::string, double>
MetricsCollector::mean_slowdown_by_group() const
{
    std::map<std::string, double> sums;
    std::map<std::string, int> counts;
    for (const auto &r : records_) {
        if (r.final_state == workload::JobState::kCompleted &&
            r.ideal_s > 0) {
            sums[r.group] += r.jct_s / r.ideal_s;
            ++counts[r.group];
        }
    }
    std::map<std::string, double> out;
    for (const auto &[group, sum] : sums)
        out[group] = sum / double(counts[group]);
    return out;
}

double
MetricsCollector::group_fairness() const
{
    std::vector<double> xs;
    for (const auto &[group, slowdown] : mean_slowdown_by_group())
        xs.push_back(slowdown);
    return jain_fairness(xs);
}

double
MetricsCollector::deadline_miss_rate() const
{
    int with_deadline = 0, missed = 0;
    for (const auto &r : records_) {
        if (r.has_deadline) {
            ++with_deadline;
            missed += r.missed_deadline;
        }
    }
    return with_deadline ? double(missed) / double(with_deadline) : 0.0;
}

} // namespace tacc::core
