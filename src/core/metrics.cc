#include "core/metrics.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "core/digest.h"
#include "workload/trace.h"

namespace tacc::core {

MetricsCollector::MetricsCollector() : used_gpus_(0.0), queue_depth_(0.0) {}

void
MetricsCollector::enable_streaming(const StreamingMetricsConfig &config)
{
    assert(records_.empty() && completed_count_ == 0 &&
           "enable_streaming must precede the first signal");
    streaming_ = true;
    digest_state_ = config.digest_prefix;
    bounded_used_ = BoundedTimeWeighted(0.0, config.series_bucket);
    bounded_queue_ = BoundedTimeWeighted(0.0, config.series_bucket);
}

void
MetricsCollector::reserve_records(size_t n)
{
    if (!streaming_)
        records_.reserve(n);
}

void
MetricsCollector::on_gpus_in_use(TimePoint t, int used)
{
    if (streaming_)
        bounded_used_.set(t, double(used));
    else
        used_gpus_.set(t, double(used));
}

void
MetricsCollector::on_queue_depth(TimePoint t, int pending)
{
    if (streaming_)
        bounded_queue_.set(t, double(pending));
    else
        queue_depth_.set(t, double(pending));
}

void
MetricsCollector::on_arrival(TimePoint t)
{
    if (streaming_) {
        bounded_used_.mark(t);
        bounded_queue_.mark(t);
    }
}

void
MetricsCollector::on_placement(cluster::JobId id,
                               const cluster::Placement &p)
{
    auto [it, inserted] = placement_digests_.try_emplace(id, Fnv1a::kBasis);
    Fnv1a h(it->second);
    h.u64(uint64_t(p.slices.size()));
    for (const auto &slice : p.slices) {
        h.u32(slice.node);
        h.u64(uint64_t(slice.gpu_indices.size()));
        for (int gpu : slice.gpu_indices)
            h.i32(gpu);
    }
    it->second = h.value();
}

JobRecord
MetricsCollector::make_record(const workload::Job &job)
{
    JobRecord r;
    r.id = job.id();
    r.user = job.spec().user;
    r.group = job.spec().group;
    r.qos = job.spec().qos;
    r.final_state = job.state();
    r.submitted = job.submit_time();
    r.finished = job.terminal() ? job.finish_time() : job.submit_time();
    r.gpus = job.spec().gpus;
    r.started = job.has_started();
    r.wait_s = job.has_started() ? job.queueing_delay().to_seconds() : 0.0;
    r.jct_s = job.terminal() ? job.jct().to_seconds() : 0.0;
    r.provision_s = job.provision_latency().to_seconds();
    r.ideal_s = double(job.spec().iterations) *
                workload::estimated_iteration_s(job.model(),
                                                job.spec().gpus);
    r.gpu_seconds = job.gpu_seconds();
    r.preemptions = job.preemption_count();
    r.segments = job.segment_count();
    r.has_deadline = job.spec().has_deadline();
    r.missed_deadline = job.missed_deadline();
    if (auto it = placement_digests_.find(job.id());
        it != placement_digests_.end()) {
        r.placement_digest = it->second;
        placement_digests_.erase(it); // read exactly once; stay bounded
    }
    return r;
}

void
MetricsCollector::drain_fold()
{
    while (!reorder_.empty() && reorder_.begin()->first == next_fold_id_) {
        digest_state_ =
            fold_job_record(digest_state_, reorder_.begin()->second);
        ++folded_records_;
        reorder_.erase(reorder_.begin());
        ++next_fold_id_;
    }
}

const JobRecord &
MetricsCollector::record_job(const workload::Job &job)
{
    JobRecord r = make_record(job);
    const bool completed =
        r.final_state == workload::JobState::kCompleted;
    completed_count_ += completed;
    failed_count_ += r.final_state == workload::JobState::kFailed;
    deadline_missed_ += r.missed_deadline;
    with_deadline_ += r.has_deadline;
    total_gpu_seconds_ += r.gpu_seconds;
    total_ideal_gpu_seconds_ += r.ideal_s * double(r.gpus);
    group_gpu_seconds_[r.group] += r.gpu_seconds;
    if (completed && r.ideal_s > 0) {
        group_slowdown_sum_[r.group] += r.jct_s / r.ideal_s;
        ++group_slowdown_count_[r.group];
    }
    if (job.terminal())
        makespan_ = std::max(makespan_, job.finish_time());
    if (!streaming_) {
        records_.push_back(std::move(r));
        return records_.back();
    }

    // Streaming retention: aggregates + incremental fold, no vector.
    if (completed)
        jct_sketch_.add(r.jct_s);
    if (r.started) {
        wait_sketch_.add(r.wait_s);
        if (r.qos == workload::QosClass::kInteractive)
            interactive_wait_sketch_.add(r.wait_s);
    }
    if (completed && r.ideal_s > 0)
        slowdown_sketch_.add(r.jct_s / r.ideal_s);
    scratch_record_ = r;
    // Terminal events run ahead of the contiguous id prefix only by the
    // set of still-live smaller ids, so this buffer stays O(live jobs).
    reorder_.emplace(r.id, std::move(r));
    drain_fold();
    return scratch_record_;
}

double
MetricsCollector::arrival_window_utilization(int total_gpus) const
{
    assert(streaming_);
    if (total_gpus <= 0)
        return 0.0;
    return bounded_used_.average_to_mark() / double(total_gpus);
}

TimePoint
MetricsCollector::arrival_window_end() const
{
    assert(streaming_);
    return bounded_used_.mark_time();
}

uint64_t
MetricsCollector::finish_streaming_digest(const RunDigestCounts &counts)
{
    assert(streaming_);
    // Jobs that never reached a terminal state leave id gaps; the
    // remaining buffered records fold in id order past them.
    for (const auto &[id, record] : reorder_) {
        digest_state_ = fold_job_record(digest_state_, record);
        ++folded_records_;
    }
    reorder_.clear();
    return finish_run_digest(digest_state_, folded_records_, counts);
}

std::vector<JobRecord>
MetricsCollector::records_of(workload::QosClass qos) const
{
    std::vector<JobRecord> out;
    for (const auto &r : records_) {
        if (r.qos == qos)
            out.push_back(r);
    }
    return out;
}

Samples
MetricsCollector::jct_samples() const
{
    Samples s;
    for (const auto &r : records_) {
        if (r.final_state == workload::JobState::kCompleted)
            s.add(r.jct_s);
    }
    return s;
}

Samples
MetricsCollector::jct_samples_of(workload::QosClass qos) const
{
    Samples s;
    for (const auto &r : records_) {
        if (r.qos == qos && r.final_state == workload::JobState::kCompleted)
            s.add(r.jct_s);
    }
    return s;
}

Samples
MetricsCollector::wait_samples() const
{
    Samples s;
    for (const auto &r : records_) {
        if (r.started)
            s.add(r.wait_s);
    }
    return s;
}

Samples
MetricsCollector::wait_samples_of(workload::QosClass qos) const
{
    Samples s;
    for (const auto &r : records_) {
        if (r.qos == qos && r.started)
            s.add(r.wait_s);
    }
    return s;
}

double
MetricsCollector::mean_utilization(TimePoint t0, TimePoint t1,
                                   int total_gpus) const
{
    if (total_gpus <= 0)
        return 0.0;
    if (streaming_) {
        assert(t0 == TimePoint::origin() &&
               "streaming mode integrates from the origin only");
        return bounded_used_.average_to(t1) / double(total_gpus);
    }
    return used_gpus_.average(t0, t1) / double(total_gpus);
}

std::vector<double>
MetricsCollector::utilization_series(TimePoint t0, TimePoint t1,
                                     Duration bucket, int total_gpus) const
{
    std::vector<double> series;
    if (streaming_) {
        assert(t0 == TimePoint::origin());
        (void)bucket; // fixed at enable_streaming time
        series = bounded_used_.bucket_averages(t1);
    } else {
        series = used_gpus_.bucket_averages(t0, t1, bucket);
    }
    for (auto &v : series)
        v /= double(std::max(1, total_gpus));
    return series;
}

double
MetricsCollector::mean_queue_depth(TimePoint t0, TimePoint t1) const
{
    if (streaming_) {
        assert(t0 == TimePoint::origin());
        return bounded_queue_.average_to(t1);
    }
    return queue_depth_.average(t0, t1);
}

std::vector<double>
MetricsCollector::queue_depth_series(TimePoint t0, TimePoint t1,
                                     Duration bucket) const
{
    if (streaming_) {
        assert(t0 == TimePoint::origin());
        (void)bucket;
        return bounded_queue_.bucket_averages(t1);
    }
    return queue_depth_.bucket_averages(t0, t1, bucket);
}

Samples
MetricsCollector::slowdown_samples() const
{
    Samples s;
    for (const auto &r : records_) {
        if (r.final_state == workload::JobState::kCompleted &&
            r.ideal_s > 0) {
            s.add(r.jct_s / r.ideal_s);
        }
    }
    return s;
}

std::map<std::string, double>
MetricsCollector::gpu_seconds_by_group() const
{
    return group_gpu_seconds_;
}

std::map<std::string, double>
MetricsCollector::mean_slowdown_by_group() const
{
    std::map<std::string, double> out;
    for (const auto &[group, sum] : group_slowdown_sum_)
        out[group] = sum / double(group_slowdown_count_.at(group));
    return out;
}

double
MetricsCollector::group_fairness() const
{
    std::vector<double> xs;
    for (const auto &[group, slowdown] : mean_slowdown_by_group())
        xs.push_back(slowdown);
    return jain_fairness(xs);
}

double
MetricsCollector::deadline_miss_rate() const
{
    return with_deadline_
               ? double(deadline_missed_) / double(with_deadline_)
               : 0.0;
}

} // namespace tacc::core
