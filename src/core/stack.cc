#include "core/stack.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "core/digest.h"
#include "ops/report.h"
#include "sched/capacity_profile.h"
#include "common/strings.h"
#include "workload/model.h"

namespace tacc::core {

using cluster::JobId;
using workload::Job;
using workload::JobState;

TaccStack::TaccStack(StackConfig config, StackArena *arena)
    : config_(std::move(config)),
      cluster_(config_.cluster),
      compiler_(config_.compiler),
      engine_(cluster_, config_.exec, config_.seed),
      monitor_(cluster_.node_count()),
      placement_(sched::make_placement_policy(config_.placement,
                                              config_.seed)),
      scheduler_(sched::make_scheduler(config_.scheduler,
                                       config_.sched_opts)),
      usage_(config_.usage_half_life)
{
    assert(placement_ && "unknown placement policy name");
    assert(scheduler_ && "unknown scheduler name");
    // Adopt recycled allocations before anything schedules an event
    // (the simulator requires a pristine engine).
    if (arena) {
        if (arena->has_storage) {
            sim_.adopt_storage(std::move(arena->sim_storage));
            arena->has_storage = false;
        }
        pending_jobs_ = std::move(arena->pending_scratch);
        pending_jobs_.clear();
        running_cache_ = std::move(arena->running_scratch);
        running_cache_.clear();
    }
    if (config_.streaming) {
        metrics_.enable_streaming(
            {run_digest_prefix(config_.scheduler, config_.placement),
             config_.metrics_bucket});
    }
    quota_.set_default_quota(config_.default_group_quota);
    for (const auto &[group, cap] : config_.group_quotas)
        quota_.set_group_quota(group, cap);

    // The injector always exists (operator verbs need it); its fault
    // chains only run when the subsystem is enabled.
    FaultInjector::Callbacks fault_cb;
    fault_cb.on_node_down = [this](cluster::NodeId node) {
        metrics_.on_node_fault();
        kill_gangs_on(node);
    };
    fault_cb.on_node_evacuate = [this](cluster::NodeId node) {
        evacuate_node(node);
    };
    fault_cb.on_capacity_change = [this] { schedule_now(); };
    faults_ = std::make_unique<FaultInjector>(sim_, cluster_,
                                              config_.faults, config_.seed,
                                              std::move(fault_cb));
    if (config_.faults.enabled)
        faults_->start();

    if (config_.power.enabled) {
        power_ =
            std::make_unique<power::PowerManager>(cluster_, config_.power);
    }

    if (config_.predict.enabled) {
        predict_hub_ =
            std::make_unique<predict::PredictionHub>(config_.predict);
    }

    if (config_.serve.enabled) {
        serve::PlaneHooks hooks;
        hooks.spawn_replica = [this](int slot) {
            return spawn_serve_replica(slot);
        };
        hooks.kill_replica = [this](uint64_t job) {
            Job *victim = find_job(job);
            if (victim && !victim->terminal()) {
                Status s = kill(job);
                assert(s.is_ok());
            }
        };
        hooks.node_degraded = [this](uint32_t node) {
            const auto state =
                cluster_.health().state(cluster::NodeId(node));
            return state == cluster::NodeHealth::kDegraded ||
                   state == cluster::NodeHealth::kDown;
        };
        if (predict_hub_) {
            hooks.forecast_rate = [this](double measured_hz) {
                return predict_hub_->forecast_serve_rate(measured_hz);
            };
        }
        serve_plane_ = std::make_unique<serve::RequestPlane>(
            sim_, config_.serve, config_.seed, std::move(hooks));
    }

    const Duration period = scheduler_->tick_period();
    if (!period.is_zero()) {
        tick_ = std::make_unique<sim::PeriodicTask>(
            sim_, period, "sched-tick", [this] { schedule_now(); });
        tick_->start();
    }
    if (config_.ops.enabled)
        wire_ops();
    // Last: spawning the initial pool and arming arrivals submits jobs,
    // which needs the fully wired stack above.
    if (serve_plane_)
        serve_plane_->start();
}

void
TaccStack::wire_ops()
{
    ops_ = std::make_unique<ops::OpsCenter>(config_.ops);
    namespace series = ops::series;

    // Gauges: live cluster state, read at each sample instant.
    ops_->add_gauge_source(series::kGpuUtil, [this] {
        const int total = cluster_.total_gpus();
        return total > 0 ? double(cluster_.used_gpus()) / double(total)
                         : 0.0;
    });
    ops_->add_gauge_source(series::kFragmentation, [this] {
        return cluster_.occupancy().fragmentation;
    });
    ops_->add_gauge_source(series::kQueueDepth,
                           [this] { return double(pending_.size()); });
    ops_->add_gauge_source(series::kQueueOldestWait, [this] {
        if (pending_.empty())
            return 0.0;
        // pending_ is kept in (submit time, id) order: front is oldest.
        const Job *oldest = find_job(pending_.front());
        return (sim_.now() - oldest->submit_time()).to_seconds();
    });
    ops_->add_gauge_source(series::kRunningJobs,
                           [this] { return double(running_.size()); });
    ops_->add_gauge_source(series::kCrossRackJobs, [this] {
        return double(engine_.cross_rack_jobs());
    });
    ops_->add_gauge_source(series::kNodesHealthy, [this] {
        return double(
            cluster_.health().count(cluster::NodeHealth::kHealthy));
    });
    ops_->add_gauge_source(series::kNodesDegraded, [this] {
        return double(
            cluster_.health().count(cluster::NodeHealth::kDegraded));
    });
    ops_->add_gauge_source(series::kNodesDown, [this] {
        return double(cluster_.health().count(cluster::NodeHealth::kDown));
    });
    ops_->add_gauge_source(series::kSchedulableCapacity, [this] {
        const int total = cluster_.total_gpus();
        return total > 0
                   ? double(cluster_.schedulable_total_gpus()) /
                         double(total)
                   : 0.0;
    });

    // Counters: monotone totals; alert rules consume them as rates.
    ops_->add_counter_source(series::kCompletedJobs, [this] {
        return double(metrics_.completed_count());
    });
    ops_->add_counter_source(series::kFailedJobs, [this] {
        return double(metrics_.failed_count());
    });
    ops_->add_counter_source(series::kPreemptions, [this] {
        return double(metrics_.preemptions());
    });
    ops_->add_counter_source(series::kDeadlineMisses, [this] {
        return double(metrics_.deadline_missed_count());
    });
    ops_->add_counter_source(series::kSegmentFailures, [this] {
        return double(metrics_.segment_failures());
    });
    ops_->add_counter_source(series::kNodeFaults, [this] {
        return double(metrics_.node_faults());
    });
    ops_->add_counter_source(series::kFaultLostGpuSeconds, [this] {
        return metrics_.fault_lost_gpu_seconds();
    });
    ops_->add_counter_source(series::kMonitorLines, [this] {
        return double(monitor_.total_emitted());
    });

    // Power & energy: draw/headroom gauges, the kWh meter, and cap
    // alerting. The energy source advances the ledger first — a pure
    // integration of already-decided draw, so sampling cannot perturb
    // scheduling (the telemetry invariant the ops layer guarantees).
    if (power_) {
        ops_->add_gauge_source(series::kPowerDrawW,
                               [this] { return power_->draw_w(); });
        ops_->add_counter_source(series::kPowerEnergyKwh, [this] {
            power_->advance(sim_.now());
            return power_->energy_kwh();
        });
        ops_->add_counter_source(series::kPowerDeferrals, [this] {
            return double(power_->deferrals());
        });
        ops_->add_counter_source(series::kPowerDvfsStarts, [this] {
            return double(power_->dvfs_starts());
        });
        const double cap = config_.power.cluster_cap_w;
        if (cap > 0) {
            ops_->add_gauge_source(series::kPowerHeadroomW, [this] {
                return power_->cluster_headroom_w();
            });
            ops::AlertRule breach;
            breach.name = "power-cap-breach";
            breach.series = series::kPowerDrawW;
            breach.agg = ops::AlertRule::Agg::kLast;
            breach.cmp = ops::AlertRule::Cmp::kAbove;
            breach.threshold = cap;
            breach.for_duration = Duration::zero();
            breach.severity = ops::AlertSeverity::kCritical;
            breach.description =
                "instantaneous cluster draw exceeds the facility cap";
            ops_->alerts().add_rule(std::move(breach));

            ops::AlertRule sustained;
            sustained.name = "sustained-high-draw";
            sustained.series = series::kPowerDrawW;
            sustained.agg = ops::AlertRule::Agg::kMean;
            sustained.cmp = ops::AlertRule::Cmp::kAbove;
            sustained.threshold = config_.power.high_draw_fraction * cap;
            sustained.window = Duration::minutes(30);
            sustained.for_duration = Duration::minutes(10);
            sustained.severity = ops::AlertSeverity::kWarning;
            sustained.description =
                "mean draw has run near the facility cap for 30 min";
            ops_->alerts().add_rule(std::move(sustained));
        }
    }

    // Request-serving plane: goodput/shed/breaker counters, pool
    // gauges, and the SLO-burn / shed-storm / breaker alert rules. All
    // sources read plane counters — observational, like everything here.
    if (serve_plane_) {
        ops_->add_counter_source(series::kServeRequests, [this] {
            return double(serve_plane_->counters().requests);
        });
        ops_->add_counter_source(series::kServeGoodput, [this] {
            return double(serve_plane_->counters().ok);
        });
        ops_->add_counter_source(series::kServeShed, [this] {
            return double(serve_plane_->counters().shed);
        });
        ops_->add_counter_source(series::kServeDegraded, [this] {
            return double(serve_plane_->counters().degraded);
        });
        ops_->add_counter_source(series::kServeRetries, [this] {
            return double(serve_plane_->counters().retries);
        });
        ops_->add_counter_source(series::kServeBreakerTrips, [this] {
            return double(serve_plane_->counters().breaker_trips);
        });
        ops_->add_gauge_source(series::kServeReplicasUp, [this] {
            return double(serve_plane_->replicas_up());
        });
        ops_->add_gauge_source(series::kServeQueueDepth, [this] {
            return double(serve_plane_->queue_depth());
        });
        // Windowed attainment: in-SLO completions over resolved
        // requests since the previous sample (1.0 when idle).
        ops_->add_gauge_source(
            series::kSloAttainment,
            [this, ok = uint64_t(0), done = uint64_t(0)]() mutable {
                const auto &c = serve_plane_->counters();
                const uint64_t now_ok = c.ok;
                const uint64_t now_done = c.ok + c.late + c.dropped;
                const uint64_t d_ok = now_ok - ok;
                const uint64_t d_done = now_done - done;
                ok = now_ok;
                done = now_done;
                return d_done > 0 ? double(d_ok) / double(d_done) : 1.0;
            });

        ops::AlertRule shed_storm;
        shed_storm.name = "serve-shed-storm";
        shed_storm.series = series::kServeShed;
        shed_storm.agg = ops::AlertRule::Agg::kRate;
        shed_storm.cmp = ops::AlertRule::Cmp::kAbove;
        shed_storm.threshold = 0.5; // shed requests per second
        shed_storm.window = Duration::minutes(5);
        shed_storm.for_duration = Duration::minutes(5);
        shed_storm.severity = ops::AlertSeverity::kWarning;
        shed_storm.description =
            "serving tier is shedding sustained load (over capacity)";
        ops_->alerts().add_rule(std::move(shed_storm));

        ops::AlertRule breaker_trips;
        breaker_trips.name = "serve-breaker-trips";
        breaker_trips.series = series::kServeBreakerTrips;
        breaker_trips.agg = ops::AlertRule::Agg::kRate;
        breaker_trips.cmp = ops::AlertRule::Cmp::kAbove;
        breaker_trips.threshold = 1.0 / 60.0; // one trip per minute
        breaker_trips.window = Duration::minutes(10);
        breaker_trips.for_duration = Duration::minutes(5);
        breaker_trips.severity = ops::AlertSeverity::kWarning;
        breaker_trips.description =
            "replica circuit breakers are tripping repeatedly";
        ops_->alerts().add_rule(std::move(breaker_trips));

        ops::AlertRule slo_burn;
        slo_burn.name = "serve-slo-burn";
        slo_burn.series = series::kSloAttainment;
        slo_burn.agg = ops::AlertRule::Agg::kMean;
        slo_burn.cmp = ops::AlertRule::Cmp::kBelow;
        slo_burn.threshold = 0.9;
        slo_burn.window = Duration::minutes(10);
        slo_burn.for_duration = Duration::minutes(10);
        slo_burn.severity = ops::AlertSeverity::kCritical;
        slo_burn.description =
            "SLO attainment is burning through the error budget";
        ops_->alerts().add_rule(std::move(slo_burn));
    }

    // Per-tenant fair-share usage: one gauge per group, defined lazily
    // as groups first appear (snapshot order is sorted -> deterministic).
    ops_->add_multi_source([this](ops::OpsCenter &center, TimePoint now) {
        const double total = usage_.total_usage(now);
        if (total <= 0)
            return;
        for (const auto &[group, used] : usage_.snapshot(now)) {
            center.record_gauge(
                std::string(ops::series::kGroupSharePrefix) + group, now,
                used / total);
        }
    });

    ops_tick_ = std::make_unique<sim::PeriodicTask>(
        sim_, config_.ops.sample_period, "ops-sample",
        [this] { ops_->sample(sim_.now()); });
    ops_tick_->start();
}

TaccStack::~TaccStack() = default;

StatusOr<JobId>
TaccStack::submit(const workload::TaskSpec &spec,
                  const std::vector<JobId> &dependencies)
{
    if (auto s = spec.validate(); !s.is_ok())
        return s;
    for (JobId dep : dependencies) {
        const Job *parent = find_job(dep);
        if (!parent) {
            return Status::not_found(
                strfmt("dependency job %llu", (unsigned long long)dep));
        }
        if (parent->terminal() &&
            parent->state() != JobState::kCompleted) {
            return Status::failed_precondition(
                strfmt("dependency job %llu already %s",
                       (unsigned long long)dep,
                       workload::job_state_name(parent->state())));
        }
    }
    if (spec.gpus > cluster_.total_gpus()) {
        return Status::invalid_argument(
            strfmt("task wants %d GPUs, cluster has %d", spec.gpus,
                   cluster_.total_gpus()));
    }
    auto profile = workload::ModelCatalog::instance().find(spec.model);
    if (!profile.is_ok())
        return profile.status();

    // Compiler layer: build the instruction (and price provisioning) now.
    auto instruction = compiler_.compile(spec);
    if (!instruction.is_ok())
        return instruction.status();

    const JobId id = next_job_id_++;
    auto job = std::make_unique<Job>(id, spec, profile.value(), sim_.now());
    Job *ptr = job.get();
    jobs_.emplace(id, std::move(job));
    instructions_.emplace(id, std::move(instruction.value()));

    // Register unfinished dependencies; completed ones are satisfied.
    for (JobId dep : dependencies) {
        if (find_job(dep)->state() != JobState::kCompleted) {
            waiting_on_[id].insert(dep);
            dependents_[dep].push_back(id);
        }
    }

    Status s = ptr->begin_provisioning(sim_.now());
    assert(s.is_ok());
    const Duration provision = instructions_.at(id).provision_time;
    provisioning_[id] = sim_.schedule_after(
        provision, "provision-done", [this, id] {
            provisioning_.erase(id);
            Job *job = find_job(id);
            assert(job);
            Status st = job->finish_provisioning(sim_.now());
            assert(st.is_ok());
            auto waiting = waiting_on_.find(id);
            if (waiting != waiting_on_.end() && !waiting->second.empty()) {
                held_.insert(id); // provisioned, blocked on dependencies
                return;
            }
            waiting_on_.erase(id);
            enqueue_pending(id);
            schedule_now();
        });
    return id;
}

void
TaccStack::resolve_dependents(JobId id, bool completed)
{
    auto it = dependents_.find(id);
    if (it == dependents_.end())
        return;
    const std::vector<JobId> dependents = std::move(it->second);
    dependents_.erase(it);
    for (JobId child : dependents) {
        Job *job = find_job(child);
        assert(job);
        if (job->terminal())
            continue;
        if (!completed) {
            // Fail-fast cascade: the parent failed or was killed.
            log_job(*job, cluster_.placement_of(child),
                    "dependency failed; cancelling");
            Status s = kill(child);
            assert(s.is_ok());
            continue;
        }
        auto waiting = waiting_on_.find(child);
        if (waiting == waiting_on_.end())
            continue;
        waiting->second.erase(id);
        if (waiting->second.empty()) {
            waiting_on_.erase(waiting);
            if (held_.erase(child) > 0) {
                enqueue_pending(child);
                schedule_now();
            }
        }
    }
}

void
TaccStack::submit_trace(const std::vector<workload::SubmittedTask> &trace)
{
    metrics_.reserve_records(metrics_.records().size() + trace.size());
    for (const auto &entry : trace) {
        assert(entry.arrival >= sim_.now());
        ++arrivals_outstanding_;
        sim_.schedule_at(entry.arrival, "arrival", [this, entry] {
            --arrivals_outstanding_;
            metrics_.on_arrival(sim_.now());
            auto result = submit(entry.spec);
            if (!result.is_ok()) {
                Log::warnf("trace submission rejected: %s",
                           result.status().str().c_str());
            }
        });
    }
}

void
TaccStack::submit_stream(workload::WorkloadStream &stream, size_t window)
{
    assert(window > 0);
    assert(!stream_ && "a stream is already attached");
    stream_ = &stream;
    stream_window_ = window;
    refill_stream();
}

void
TaccStack::refill_stream()
{
    if (!stream_)
        return;
    stream_tasks_.clear();
    stream_->pull(stream_tasks_, stream_window_);
    if (stream_tasks_.empty()) {
        stream_ = nullptr; // exhausted
        return;
    }
    stream_batch_.clear();
    stream_batch_.reserve(stream_tasks_.size());
    const size_t last = stream_tasks_.size() - 1;
    for (size_t i = 0; i <= last; ++i) {
        assert(stream_tasks_[i].arrival >= sim_.now());
        const TimePoint arrival = stream_tasks_[i].arrival;
        const bool refill = i == last;
        ++arrivals_outstanding_;
        stream_batch_.push_back(sim::BatchEvent{
            arrival, "arrival",
            [this, task = std::move(stream_tasks_[i]), refill] {
                --arrivals_outstanding_;
                metrics_.on_arrival(sim_.now());
                // Pull the next window BEFORE submitting: its arrival
                // events then take consecutive sequence numbers ahead
                // of anything this submission schedules, matching the
                // all-at-once trace order for same-instant arrivals.
                if (refill)
                    refill_stream();
                auto result = submit(task.spec);
                if (!result.is_ok()) {
                    Log::warnf("trace submission rejected: %s",
                               result.status().str().c_str());
                }
            }});
    }
    sim_.schedule_batch(stream_batch_);
}

void
TaccStack::donate_arena(StackArena *arena)
{
    if (!arena)
        return;
    arena->sim_storage = sim_.release_storage();
    arena->has_storage = true;
    pending_jobs_.clear();
    arena->pending_scratch = std::move(pending_jobs_);
    running_cache_.clear();
    arena->running_scratch = std::move(running_cache_);
}

void
TaccStack::enqueue_pending(JobId id)
{
    // Ordered insert keeps the queue in (submit time, id) order even for
    // requeued (preempted/failed) jobs, whose submit time lies in the
    // past; schedulers then consume it without re-sorting.
    const Job *job = find_job(id);
    assert(job);
    const auto pos = std::upper_bound(
        pending_.begin(), pending_.end(), id, [this, job](JobId, JobId rhs) {
            const Job *r = find_job(rhs);
            if (job->submit_time() != r->submit_time())
                return job->submit_time() < r->submit_time();
            return job->id() < r->id();
        });
    pending_.insert(pos, id);
    metrics_.on_queue_depth(sim_.now(), int(pending_.size()));
}

void
TaccStack::remove_pending(JobId id)
{
    auto it = std::find(pending_.begin(), pending_.end(), id);
    if (it != pending_.end()) {
        pending_.erase(it);
        metrics_.on_queue_depth(sim_.now(), int(pending_.size()));
    }
}

Job *
TaccStack::find_job(JobId id)
{
    auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second.get();
}

const Job *
TaccStack::find_job(JobId id) const
{
    auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second.get();
}

std::vector<const Job *>
TaccStack::jobs() const
{
    std::vector<const Job *> out;
    out.reserve(jobs_.size());
    for (const auto &[id, job] : jobs_)
        out.push_back(job.get());
    return out;
}

bool
TaccStack::quiescent() const
{
    if (arrivals_outstanding_ > 0 || !provisioning_.empty() ||
        !pending_.empty() || !running_.empty() || !held_.empty() ||
        !backoff_.empty()) {
        return false;
    }
    // The serving plane counts as pending work until its arrival stream
    // ends and every request resolved (it then retires its replicas).
    if (serve_plane_ && !serve_plane_->idle())
        return false;
    return true;
}

void
TaccStack::run_until(TimePoint t)
{
    sim_.run_until(t);
}

bool
TaccStack::run_to_completion(uint64_t max_events)
{
    uint64_t fired = 0;
    while (!quiescent() && fired < max_events) {
        if (!sim_.step())
            break;
        ++fired;
    }
    if (tick_)
        tick_->stop();
    if (ops_tick_) {
        ops_tick_->stop();
        // Close the books with a final sample at the quiesce instant so
        // the last partial rollup buckets and alert states are current.
        ops_->sample(sim_.now());
    }
    if (power_)
        power_->advance(sim_.now()); // close the energy ledger
    return quiescent();
}

std::string
TaccStack::operator_report() const
{
    ops::ReportContext ctx;
    ctx.cluster_name = config_.cluster.name;
    ctx.now = sim_.now();
    ctx.total_gpus = cluster_.total_gpus();
    ctx.used_gpus = cluster_.used_gpus();
    ctx.running_jobs = running_.size();
    ctx.pending_jobs = pending_.size();
    ctx.completed_jobs = metrics_.completed_count();
    ctx.failed_jobs = metrics_.failed_count();
    ctx.preemptions = metrics_.preemptions();
    const Samples waits = metrics_.wait_samples();
    if (!waits.empty()) {
        ctx.mean_wait_min = waits.mean() / 60.0;
        ctx.p99_wait_min = waits.percentile(99) / 60.0;
    }
    ctx.cache_transfer_savings = compiler_.stats().transfer_savings();
    if (!ops_) {
        return strfmt("cluster %s: ops layer disabled\n"
                      "occupancy: %d/%d GPUs, %zu running, %zu pending\n",
                      ctx.cluster_name.c_str(), ctx.used_gpus,
                      ctx.total_gpus, ctx.running_jobs, ctx.pending_jobs);
    }
    return ops::render_operator_report(ops_->store(), ops_->alerts(),
                                       ops_->accounting(), ctx);
}

std::string
TaccStack::accounting_report(const std::string &group) const
{
    if (!ops_)
        return "ops layer disabled; no accounting available\n";
    return ops::render_group_accounting(ops_->accounting(), group);
}

cluster::JobId
TaccStack::spawn_serve_replica(int slot)
{
    workload::TaskSpec spec;
    spec.name = strfmt("serve-replica-%d", slot);
    spec.user = "inference";
    spec.group = config_.serve.group;
    spec.model = config_.serve.model;
    spec.gpus = 1;
    spec.qos = workload::QosClass::kInteractive;
    spec.preemptible = false;
    // A replica runs until the plane retires it: give the job an
    // effectively unbounded segment so it never completes on its own.
    spec.iterations = 1'000'000'000'000LL;
    spec.time_limit = Duration::days(365);
    auto result = submit(spec);
    if (!result.is_ok()) {
        Log::warnf("serve replica %d refused: %s", slot,
                   result.status().str().c_str());
        return cluster::kInvalidJob;
    }
    serve_jobs_.insert(result.value());
    return result.value();
}

void
TaccStack::notify_serve_stop(JobId id)
{
    if (serve_plane_ && serve_jobs_.count(id))
        serve_plane_->on_replica_down(id);
}

std::string
TaccStack::serving_report()
{
    if (!serve_plane_)
        return "serving plane disabled\n";
    const serve::ServingReport r = serve_plane_->report();
    const auto &c = r.counters;
    std::string out = strfmt(
        "== serving: cluster '%s' at %s ==\n",
        config_.cluster.name.c_str(),
        ops::format_day_time(sim_.now()).c_str());
    out += strfmt("replicas: %d up / %d desired (max %d); %llu spawned, "
                  "%llu failure(s)\n",
                  r.replicas_up, serve_plane_->replicas_desired(),
                  config_.serve.max_replicas,
                  (unsigned long long)c.replicas_spawned,
                  (unsigned long long)c.replica_failures);
    out += strfmt("requests: %llu (%llu attempts), goodput %llu, late "
                  "%llu, dropped %llu — SLO attainment %.4f%s\n",
                  (unsigned long long)c.requests,
                  (unsigned long long)c.attempts,
                  (unsigned long long)c.ok, (unsigned long long)c.late,
                  (unsigned long long)c.dropped, r.slo_attainment,
                  r.slo_unattainable ? " [SLO UNATTAINABLE at max pool]"
                                     : "");
    out += strfmt("robustness: shed %llu (breaker %llu), degraded %llu, "
                  "wasted %llu, timeouts %llu\n",
                  (unsigned long long)c.shed,
                  (unsigned long long)c.breaker_shed,
                  (unsigned long long)c.degraded,
                  (unsigned long long)c.wasted,
                  (unsigned long long)c.timeouts);
    out += strfmt("retries: %llu spent, %llu denied by budget; breaker "
                  "trips %llu\n",
                  (unsigned long long)c.retries,
                  (unsigned long long)c.retries_denied,
                  (unsigned long long)c.breaker_trips);
    out += strfmt("queue depth now: %d\n", serve_plane_->queue_depth());
    return out;
}

void
TaccStack::log_job(const Job &job, const cluster::Placement &placement,
                   const std::string &text)
{
    if (!config_.emit_monitor_logs || placement.empty())
        return;
    monitor_.emit_all(sim_.now(), job.id(), placement,
                      strfmt("[%s] %s", job.spec().name.c_str(),
                             text.c_str()));
}

void
TaccStack::charge_usage(Job &job)
{
    double &charged = charged_gpu_s_[job.id()];
    const double delta = job.gpu_seconds() - charged;
    if (delta > 0) {
        usage_.charge(job.spec().group, delta, sim_.now());
        charged = job.gpu_seconds();
    }
}

void
TaccStack::release_power(JobId id, const cluster::Placement &placement)
{
    if (!power_)
        return;
    power_->on_segment_stop(id, sim_.now());
    // The departing gang may have been the reason its nodes ran
    // throttled; push the refreshed clocks into the engine.
    for (const auto &slice : placement.slices) {
        engine_.set_node_clock(slice.node,
                               power_->node_clock_of(slice.node));
    }
}

void
TaccStack::finalize(Job &job)
{
    estimator_.observe(job); // no-op unless the job completed
    if (predict_hub_)
        predict_hub_->observe_completion(job);
    // Drain the job's energy meter even when accounting is off, so the
    // ledger does not grow with terminal jobs.
    const double energy_kwh =
        power_ ? power_->take_job_energy_kwh(job.id()) : 0.0;
    const JobRecord &rec = metrics_.record_job(job);
    if (ops_) {
        ops::UsageEvent ev;
        ev.group = rec.group;
        ev.user = rec.user;
        ev.finished = rec.finished;
        ev.wait_s = rec.wait_s;
        ev.gpu_seconds = rec.gpu_seconds;
        ev.ideal_gpu_seconds = rec.ideal_s * double(rec.gpus);
        ev.preemptions = rec.preemptions;
        ev.started = rec.started;
        ev.completed = rec.final_state == JobState::kCompleted;
        ev.failed = rec.final_state == JobState::kFailed;
        ev.missed_deadline = rec.missed_deadline;
        if (auto lost = fault_lost_gpu_s_.find(job.id());
            lost != fault_lost_gpu_s_.end()) {
            ev.fault_lost_gpu_seconds = lost->second;
        }
        ev.energy_kwh = energy_kwh;
        ops_->accounting().record(ev);
    }
    charged_gpu_s_.erase(job.id());
    fault_lost_gpu_s_.erase(job.id());
    requeue_killed_at_.erase(job.id());
    const JobId id = job.id();
    resolve_dependents(id, job.state() == JobState::kCompleted);
    // A replica job reaching a terminal state hands its slot back to
    // the plane (which respawns a replacement unless shutting down).
    if (serve_plane_ && serve_jobs_.erase(id) > 0)
        serve_plane_->on_replica_gone(id);
    if (metrics_.streaming()) {
        // Streaming reclamation: the terminal record is folded, so the
        // job's state is dead weight — drop it everywhere. Memory now
        // tracks the live job set, not the trace length. `job` dangles
        // past the last erase; nothing below may touch it.
        engine_.failures().forget(id);
        instructions_.erase(id);
        jobs_.erase(id);
    }
}

void
TaccStack::stop_segment(Job &job, bool count_as_preemption)
{
    auto it = running_.find(job.id());
    assert(it != running_.end());
    sim_.cancel(it->second.event);
    running_.erase(it);
    running_cache_dirty_ = true;

    const cluster::Placement placement = cluster_.placement_of(job.id());
    Status s = count_as_preemption ? job.preempt(sim_.now())
                                   : job.end_segment(sim_.now());
    assert(s.is_ok());
    cluster_.release(job.id());
    engine_.fs().unregister_reader(job.id());
    engine_.unregister_cross_rack_job(job.id());
    release_power(job.id(), placement);
    charge_usage(job);
    if (count_as_preemption) {
        metrics_.on_preemption();
        log_job(job, placement, "preempted");
    }
    metrics_.on_gpus_in_use(sim_.now(), cluster_.used_gpus());
    notify_serve_stop(job.id());
}

void
TaccStack::on_segment_complete(JobId id)
{
    Job *job = find_job(id);
    assert(job && job->state() == JobState::kRunning);
    running_.erase(id);
    running_cache_dirty_ = true;

    const cluster::Placement placement = cluster_.placement_of(id);
    Status s = job->complete(sim_.now());
    assert(s.is_ok());
    cluster_.release(id);
    engine_.fs().unregister_reader(id);
    engine_.unregister_cross_rack_job(id);
    release_power(id, placement);
    charge_usage(*job);
    log_job(*job, placement, "completed");
    metrics_.on_gpus_in_use(sim_.now(), cluster_.used_gpus());
    finalize(*job);
    schedule_now();
}

void
TaccStack::on_segment_failure(JobId id)
{
    // A sampled in-segment fault: transient unless the segment ran on
    // the job's incompatible runtime.
    auto it = running_.find(id);
    assert(it != running_.end());
    const Job *job = find_job(id);
    assert(job);
    handle_segment_failure(
        id, engine_.failures().classify(*job, it->second.runtime));
}

void
TaccStack::handle_segment_failure(JobId id, exec::FailureKind kind)
{
    Job *job = find_job(id);
    assert(job && job->state() == JobState::kRunning);
    auto it = running_.find(id);
    assert(it != running_.end());
    const double iteration_s = it->second.iteration_s;
    sim_.cancel(it->second.event); // no-op for the firing event itself
    running_.erase(it);
    running_cache_dirty_ = true;

    const cluster::Placement placement = cluster_.placement_of(id);
    // A crash rolls progress back to the last periodic checkpoint (or
    // loses the segment when checkpointing is off). The wall-clock the
    // gang held beyond the surviving credited compute is fault loss.
    const int64_t iters_before = job->iterations_done();
    const double held_s =
        (sim_.now() - job->segment_start()).to_seconds();
    const int gpus = job->running_gpus();
    Status s = job->end_segment(
        sim_.now(), engine_.config().checkpoint_interval_s);
    assert(s.is_ok());
    const double useful_s =
        double(job->iterations_done() - iters_before) * iteration_s;
    const double lost_gpu_s =
        std::max(0.0, held_s - useful_s) * double(gpus);
    metrics_.on_fault_loss(lost_gpu_s);
    fault_lost_gpu_s_[id] += lost_gpu_s;
    cluster_.release(id);
    engine_.fs().unregister_reader(id);
    engine_.unregister_cross_rack_job(id);
    release_power(id, placement);
    charge_usage(*job);
    metrics_.on_segment_failure();
    metrics_.on_gpus_in_use(sim_.now(), cluster_.used_gpus());
    notify_serve_stop(id);

    const bool out_of_attempts = engine_.failures().on_failure(*job);
    if (out_of_attempts) {
        log_job(*job, placement, "failed permanently");
        Status st = job->fail(sim_.now(), "exceeded max attempts");
        assert(st.is_ok());
        finalize(*job);
        schedule_now();
        return;
    }
    log_job(*job, placement,
            kind == exec::FailureKind::kNodeLocal
                ? "node fault; requeueing"
                : "segment failed; requeueing");
    requeue_killed_at_[id] = sim_.now();
    const Duration backoff = engine_.failures().requeue_delay(
        id, engine_.failures().attempts_of(id));
    if (backoff.is_zero()) {
        enqueue_pending(id);
    } else {
        // Failure-classified exponential backoff: the job sits out the
        // delay before re-entering the queue, damping crash loops.
        backoff_[id] = sim_.schedule_after(
            backoff, "requeue-backoff", [this, id] {
                backoff_.erase(id);
                enqueue_pending(id);
                schedule_now();
            });
    }
    schedule_now();
}

void
TaccStack::kill_gangs_on(cluster::NodeId node)
{
    // Snapshot first: killing a gang mutates the node's residency.
    std::vector<JobId> victims = cluster_.node(node).resident_jobs();
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()),
                  victims.end());
    for (JobId id : victims) {
        const Job *job = find_job(id);
        if (job && job->state() == JobState::kRunning)
            handle_segment_failure(id, exec::FailureKind::kNodeLocal);
    }
}

void
TaccStack::evacuate_node(cluster::NodeId node)
{
    std::vector<JobId> victims = cluster_.node(node).resident_jobs();
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()),
                  victims.end());
    for (JobId id : victims) {
        Job *job = find_job(id);
        if (!job || job->state() != JobState::kRunning)
            continue;
        // Graceful: checkpoint on demand, no progress lost, no failure
        // attempt charged — the operator asked, the job did nothing.
        stop_segment(*job, true);
        enqueue_pending(id);
    }
    schedule_now();
}

void
TaccStack::apply_decision(const sched::ScheduleDecision &decision)
{
    for (JobId victim : decision.preemptions) {
        Job *job = find_job(victim);
        if (!job || job->state() != JobState::kRunning)
            continue; // stale decision entry; ignore
        stop_segment(*job, true);
        enqueue_pending(victim);
    }

    for (const auto &start : decision.starts) {
        Job *job = find_job(start.job);
        if (!job || job->state() != JobState::kPending)
            continue;
        // Power authority check against the exact model (the scheduler's
        // gate is conservative): a refused start simply stays pending.
        double activity = 0;
        power::StartDecision power_start;
        if (power_) {
            activity = engine_.compute_activity(*job, start.placement);
            power_start = power_->plan_start(start.placement, activity);
            if (!power_start.admit) {
                power_->note_deferrals(1);
                continue;
            }
        }
        Status alloc = cluster_.allocate(start.job, start.placement);
        if (!alloc.is_ok()) {
            Log::warnf("placement failed for job %llu: %s",
                       (unsigned long long)start.job,
                       alloc.str().c_str());
            continue;
        }
        const cluster::Placement granted =
            cluster_.placement_of(start.job);
        metrics_.on_placement(start.job, granted);
        if (power_) {
            // Commit draw and push node clocks before pricing, so
            // plan_segment sees any DVFS stretch this start causes.
            power_->on_segment_start(start.job, job->spec().group,
                                     granted, activity,
                                     power_start.clock, sim_.now());
            for (const auto &slice : granted.slices) {
                engine_.set_node_clock(
                    slice.node, power_->node_clock_of(slice.node));
            }
        }
        const auto &instruction = instructions_.at(start.job);
        exec::SegmentPlan plan =
            engine_.plan_segment(*job, granted, instruction.runtime);

        Status s = job->begin_segment(sim_.now(), granted.total_gpus(),
                                      plan.iteration_s, plan.startup);
        assert(s.is_ok());
        remove_pending(start.job);
        engine_.fs().register_reader(start.job);
        if (cluster_.topology().scope_of(granted) ==
            cluster::CommScope::kCrossRack) {
            engine_.register_cross_rack_job(start.job);
        }

        if (auto killed = requeue_killed_at_.find(start.job);
            killed != requeue_killed_at_.end()) {
            metrics_.on_requeue_latency(
                (sim_.now() - killed->second).to_seconds());
            requeue_killed_at_.erase(killed);
        }

        const Duration total =
            plan.startup + job->remaining_runtime(plan.iteration_s);
        RunningMeta meta;
        meta.iteration_s = plan.iteration_s;
        meta.runtime = plan.runtime;
        meta.expected_end = sim_.now() + total;
        const JobId id = start.job;
        if (plan.failure_after) {
            meta.event = sim_.schedule_after(
                *plan.failure_after, "segment-fail",
                [this, id] { on_segment_failure(id); });
        } else {
            meta.event = sim_.schedule_after(
                total, "segment-done",
                [this, id] { on_segment_complete(id); });
        }
        running_[id] = meta;
        running_cache_dirty_ = true;
        log_job(*job, granted,
                strfmt("started on %zu node(s), %d GPU(s), %s/%s",
                       granted.slices.size(), granted.total_gpus(),
                       compiler::runtime_kind_name(plan.runtime),
                       exec::transport_name(plan.transport)));
        if (serve_plane_ && serve_jobs_.count(id) &&
            !granted.slices.empty()) {
            serve_plane_->on_replica_up(id, granted.slices.front().node);
        }
    }
    metrics_.on_gpus_in_use(sim_.now(), cluster_.used_gpus());
}

void
TaccStack::schedule_now()
{
    sched::SchedulerContext ctx;
    ctx.now = sim_.now();
    ctx.cluster = &cluster_;
    ctx.placement = placement_.get();
    ctx.usage = &usage_;
    ctx.quota = &quota_;
    ctx.estimator = &active_estimator();
    ctx.predictions_authoritative =
        predict_hub_ &&
        config_.predict.mode != predict::EstimatorMode::kLimit;
    ctx.avoid_gpu_mixing = config_.avoid_gpu_mixing;
    // Flaky-node scoreboard: veto nodes with recent fault strikes.
    if (faults_->build_node_filter(sim_.now(), node_filter_scratch_))
        ctx.node_filter = &node_filter_scratch_;
    // Power gate: conservative per-scope headroom snapshot the policy
    // deducts from as it commits starts. Only wired when a cap exists.
    const bool power_capped =
        power_ && (config_.power.cluster_cap_w > 0 ||
                   config_.power.rack_cap_w > 0 ||
                   config_.power.pdu_cap_w > 0);
    if (power_capped) {
        power_gate_ = sched::PowerGate{};
        power_gate_.cluster = &cluster_;
        power_gate_.racks_per_pdu = config_.power.racks_per_pdu;
        power_gate_.per_gpu_w =
            power_->model().max_gpu_delta_w() * power_->commit_fraction();
        if (config_.power.cluster_cap_w > 0)
            power_gate_.cluster_headroom_w = power_->cluster_headroom_w();
        if (config_.power.rack_cap_w > 0) {
            const int racks = power_->model().rack_count();
            power_gate_.rack_headroom_w.resize(size_t(racks));
            for (int r = 0; r < racks; ++r)
                power_gate_.rack_headroom_w[size_t(r)] =
                    power_->rack_headroom_w(r);
        }
        if (config_.power.pdu_cap_w > 0) {
            const int pdus = power_->pdu_count();
            power_gate_.pdu_headroom_w.resize(size_t(pdus));
            for (int p = 0; p < pdus; ++p)
                power_gate_.pdu_headroom_w[size_t(p)] =
                    power_->pdu_headroom_w(p);
        }
        ctx.power = &power_gate_;
    }
    ctx.iter_time = [this](const Job &job,
                           const cluster::Placement &placement) {
        return engine_.iteration_time_s(job, placement);
    };
    pending_jobs_.clear();
    pending_jobs_.reserve(pending_.size());
    for (JobId id : pending_) {
        Job *job = find_job(id);
        assert(job && job->state() == JobState::kPending);
        pending_jobs_.push_back(job);
    }
    ctx.pending = pending_jobs_;
    ctx.pending_sorted = true; // enqueue_pending keeps (submit, id) order
    if (predict_hub_) {
        // Backlog series: pending GPU demand sampled per scheduling
        // pass, in event order — deterministic at any worker count.
        double pending_gpus = 0;
        for (const Job *job : pending_jobs_)
            pending_gpus += double(job->spec().gpus);
        predict_hub_->observe_backlog(pending_gpus);
        ctx.forecast_backlog_gpus =
            predict_hub_->forecast_backlog(pending_gpus);
    }
    if (running_cache_dirty_) {
        running_cache_.clear();
        running_cache_.reserve(running_.size());
        for (const auto &[id, meta] : running_) {
            sched::RunningInfo info;
            info.job = find_job(id);
            assert(info.job);
            info.placement = cluster_.placement_of(id);
            info.expected_end = meta.expected_end;
            running_cache_.push_back(std::move(info));
        }
        running_cache_dirty_ = false;
    }
    ctx.running = running_cache_;

    const sched::ScheduleDecision decision = scheduler_->schedule(ctx);
    if (power_capped)
        power_->note_deferrals(power_gate_.rejections);
    if (!decision.empty())
        apply_decision(decision);
}

StatusOr<TimePoint>
TaccStack::estimated_start(cluster::JobId id) const
{
    const Job *job = find_job(id);
    if (!job)
        return Status::not_found(strfmt("job %llu", (unsigned long long)id));
    if (job->state() == JobState::kRunning)
        return job->segment_start();
    if (job->terminal())
        return Status::failed_precondition("job already finished");
    if (held_.contains(id)) {
        return Status::failed_precondition(
            "blocked on pipeline dependencies");
    }

    sched::CapacityProfile profile(sim_.now(), cluster_.free_gpus());
    for (const auto &[running_id, meta] : running_) {
        profile.add_release(meta.expected_end,
                            find_job(running_id)->running_gpus());
    }
    // Queue ahead of (and including) the target, in arrival order.
    std::vector<const Job *> queue;
    for (cluster::JobId pending_id : pending_)
        queue.push_back(find_job(pending_id));
    std::stable_sort(queue.begin(), queue.end(),
                     [](const Job *a, const Job *b) {
                         if (a->submit_time() != b->submit_time())
                             return a->submit_time() < b->submit_time();
                         return a->id() < b->id();
                     });
    for (const Job *ahead : queue) {
        const Duration bound = active_estimator().predict(*ahead);
        const TimePoint fit =
            profile.earliest_fit(ahead->spec().gpus, bound);
        if (ahead->id() == id)
            return fit;
        profile.reserve(fit, bound, ahead->spec().gpus);
    }
    // Provisioning jobs enter the queue after everything pending now.
    if (provisioning_.contains(id)) {
        const Duration bound = active_estimator().predict(*job);
        return profile.earliest_fit(job->spec().gpus, bound);
    }
    return Status::internal("job in no queue");
}

void
TaccStack::set_group_quota(const std::string &group, int max_gpus)
{
    quota_.set_group_quota(group, max_gpus);
    schedule_now();
}

Status
TaccStack::cordon_node(int node)
{
    return faults_->cordon(cluster::NodeId(node));
}

Status
TaccStack::drain_node(int node)
{
    return faults_->drain(cluster::NodeId(node));
}

Status
TaccStack::uncordon_node(int node)
{
    Status s = faults_->uncordon(cluster::NodeId(node));
    return s;
}

std::string
TaccStack::health_report() const
{
    using cluster::NodeHealth;
    const auto &health = cluster_.health();
    std::string out = strfmt(
        "== node health: cluster '%s' at %s ==\n",
        config_.cluster.name.c_str(),
        ops::format_day_time(sim_.now()).c_str());
    out += strfmt(
        "nodes: %d healthy, %d degraded, %d cordoned, %d draining, "
        "%d down, %d repairing\n",
        health.count(NodeHealth::kHealthy),
        health.count(NodeHealth::kDegraded),
        health.count(NodeHealth::kCordoned),
        health.count(NodeHealth::kDraining),
        health.count(NodeHealth::kDown),
        health.count(NodeHealth::kRepairing));
    out += strfmt("schedulable GPUs: %d/%d (%d free)\n",
                  cluster_.schedulable_total_gpus(),
                  cluster_.total_gpus(),
                  cluster_.schedulable_free_gpus());
    out += strfmt(
        "faults: %llu node crash(es), %llu rack outage(s), "
        "%llu PDU outage(s), %llu degradation(s), %llu repair(s)\n",
        (unsigned long long)faults_->node_crashes(),
        (unsigned long long)faults_->rack_outages(),
        (unsigned long long)faults_->pdu_outages(),
        (unsigned long long)faults_->degradations(),
        (unsigned long long)faults_->repairs());
    out += strfmt("fault-lost GPU-hours: %.1f\n",
                  metrics_.fault_lost_gpu_seconds() / 3600.0);
    for (const auto &node : cluster_.nodes()) {
        const NodeHealth s = health.state(node.id());
        if (s == NodeHealth::kHealthy)
            continue;
        out += strfmt("  %s: %s (%d job(s) resident)\n",
                      node.name().c_str(), cluster::health_name(s),
                      int(node.resident_jobs().size()));
    }
    return out;
}

std::string
TaccStack::power_report() const
{
    if (!power_)
        return "power management disabled\n";
    const auto &pc = config_.power;
    std::string out = strfmt(
        "== power: cluster '%s' at %s ==\n", config_.cluster.name.c_str(),
        ops::format_day_time(sim_.now()).c_str());
    out += strfmt("draw: %.1f kW (baseline %.1f kW, peak %.1f kW)\n",
                  power_->draw_w() / 1000.0, power_->baseline_w() / 1000.0,
                  power_->peak_draw_w() / 1000.0);
    out += strfmt("policy: %s\n", pc.policy.c_str());
    if (pc.cluster_cap_w > 0) {
        out += strfmt("cluster cap: %.1f kW (headroom %.1f kW)\n",
                      pc.cluster_cap_w / 1000.0,
                      power_->cluster_headroom_w() / 1000.0);
    }
    if (pc.rack_cap_w > 0)
        out += strfmt("rack cap: %.1f kW\n", pc.rack_cap_w / 1000.0);
    if (pc.pdu_cap_w > 0) {
        out += strfmt("PDU cap: %.1f kW (%d rack(s) per PDU)\n",
                      pc.pdu_cap_w / 1000.0, pc.racks_per_pdu);
    }
    out += strfmt(
        "enforcement: %llu deferral(s), %llu DVFS-scaled start(s), "
        "%d node(s) throttled\n",
        (unsigned long long)power_->deferrals(),
        (unsigned long long)power_->dvfs_starts(),
        power_->throttled_nodes());
    for (int rack = 0; rack < power_->model().rack_count(); ++rack) {
        out += strfmt("  rack %d: %.1f kW\n", rack,
                      power_->rack_draw_w(rack) / 1000.0);
    }
    return out;
}

std::string
TaccStack::energy_report() const
{
    if (!power_)
        return "power management disabled\n";
    power_->advance(sim_.now());
    std::string out = strfmt(
        "== energy: cluster '%s' at %s ==\n", config_.cluster.name.c_str(),
        ops::format_day_time(sim_.now()).c_str());
    const double total = power_->energy_kwh();
    const double baseline = power_->baseline_energy_kwh();
    out += strfmt("cluster: %.1f kWh (baseline %.1f kWh, active %.1f "
                  "kWh)\n",
                  total, baseline, total - baseline);
    const auto groups = power_->group_energy_kwh();
    if (!groups.empty()) {
        out += "active energy by group:\n";
        for (const auto &[group, kwh] : groups)
            out += strfmt("  %s: %.1f kWh\n", group.c_str(), kwh);
    }
    return out;
}

Status
TaccStack::kill(JobId id)
{
    Job *job = find_job(id);
    if (!job)
        return Status::not_found(strfmt("job %llu", (unsigned long long)id));
    if (job->terminal())
        return Status::failed_precondition("job already terminal");

    switch (job->state()) {
      case JobState::kProvisioning: {
        auto it = provisioning_.find(id);
        assert(it != provisioning_.end());
        sim_.cancel(it->second);
        provisioning_.erase(it);
        break;
      }
      case JobState::kPending: {
        remove_pending(id);
        held_.erase(id);
        waiting_on_.erase(id);
        auto backoff = backoff_.find(id);
        if (backoff != backoff_.end()) {
            sim_.cancel(backoff->second);
            backoff_.erase(backoff);
        }
        break;
      }
      case JobState::kRunning:
        stop_segment(*job, false);
        break;
      default:
        break;
    }
    Status s = job->kill(sim_.now());
    assert(s.is_ok());
    finalize(*job);
    schedule_now();
    return Status::ok();
}

} // namespace tacc::core
