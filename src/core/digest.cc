#include "core/digest.h"

#include "common/hash.h"

namespace tacc::core {

uint64_t
run_digest_prefix(const std::string &scheduler,
                  const std::string &placement)
{
    Fnv1a h;
    h.str(kRunDigestVersion);
    h.str(scheduler);
    h.str(placement);
    return h.value();
}

uint64_t
fold_job_record(uint64_t state, const JobRecord &r)
{
    Fnv1a h(state);
    h.u64(r.id);
    h.str(r.group);
    h.str(r.user);
    h.i32(int32_t(r.qos));
    h.i32(int32_t(r.final_state));
    h.i64(r.submitted.to_micros());
    h.i64(r.finished.to_micros());
    h.i32(r.gpus);
    h.boolean(r.started);
    h.i32(r.preemptions);
    h.i32(r.segments);
    h.boolean(r.missed_deadline);
    h.u64(r.placement_digest);
    return h.value();
}

uint64_t
finish_run_digest(uint64_t state, uint64_t record_count,
                  const RunDigestCounts &counts)
{
    Fnv1a h(state);
    h.u64(record_count);
    h.u64(counts.submitted);
    h.u64(counts.completed);
    h.u64(counts.failed);
    h.u64(counts.never_finished);
    h.u64(counts.preemptions);
    h.u64(counts.segment_failures);
    return h.value();
}

uint64_t
fold_serve_counts(uint64_t digest, const ServeDigestCounts &counts)
{
    Fnv1a h(digest);
    h.str("serve-v1");
    h.u64(counts.requests);
    h.u64(counts.attempts);
    h.u64(counts.admitted);
    h.u64(counts.ok);
    h.u64(counts.late);
    h.u64(counts.degraded);
    h.u64(counts.wasted);
    h.u64(counts.shed);
    h.u64(counts.breaker_shed);
    h.u64(counts.timeouts);
    h.u64(counts.retries);
    h.u64(counts.retries_denied);
    h.u64(counts.dropped);
    h.u64(counts.breaker_trips);
    h.u64(counts.replica_failures);
    h.u64(counts.replicas_spawned);
    return h.value();
}

} // namespace tacc::core
