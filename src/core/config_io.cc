#include "core/config_io.h"

#include <sstream>

#include "common/strings.h"
#include "predict/config.h"
#include "sched/placement.h"
#include "sched/schedulers.h"

namespace tacc::core {

namespace {

Status
bad(const std::string &key, const std::string &value)
{
    return Status::invalid_argument("bad value for " + key + ": " + value);
}

StatusOr<bool>
parse_bool(const std::string &key, const std::string &value)
{
    if (value == "true")
        return true;
    if (value == "false")
        return false;
    return bad(key, value);
}

/**
 * Applies one `key: value` line to the config. Returns a Status whose
 * message carries no position; the caller prefixes the line number, so
 * every diagnostic points at the offending preset line. Unknown keys
 * and out-of-range values are hard errors — a tune-emitted preset that
 * rots (renamed knob, bad bound) must fail loudly, never silently
 * fall back to defaults.
 */
Status
apply_stack_key(const std::string &key, const std::string &value,
                StackConfig &config)
{
    auto to_double = [&](double &out) -> Status {
        try {
            size_t pos = 0;
            out = std::stod(value, &pos);
            if (pos != value.size())
                throw std::invalid_argument(value);
        } catch (const std::exception &) {
            return bad(key, value);
        }
        return Status::ok();
    };
    auto to_int = [&](int &out) -> Status {
        try {
            size_t pos = 0;
            out = std::stoi(value, &pos);
            if (pos != value.size())
                throw std::invalid_argument(value);
        } catch (const std::exception &) {
            return bad(key, value);
        }
        return Status::ok();
    };
    auto to_nonneg_double = [&](double &out) -> Status {
        if (auto s = to_double(out); !s.is_ok())
            return s;
        if (out < 0)
            return bad(key, value);
        return Status::ok();
    };

    double dv = 0;
    int iv = 0;
    if (key == "cluster") {
        if (value.empty())
            return bad(key, value);
        config.cluster.name = value;
    } else if (key == "racks") {
        if (auto s = to_int(iv); !s.is_ok())
            return s;
        if (iv <= 0)
            return bad(key, value);
        config.cluster.topology.racks = iv;
    } else if (key == "nodes_per_rack") {
        if (auto s = to_int(iv); !s.is_ok())
            return s;
        if (iv <= 0)
            return bad(key, value);
        config.cluster.topology.nodes_per_rack = iv;
    } else if (key == "gpus_per_node") {
        if (auto s = to_int(iv); !s.is_ok())
            return s;
        if (iv <= 0)
            return bad(key, value);
        config.cluster.node.gpu_count = iv;
    } else if (key == "gpu") {
        const auto parts = split(value, ',');
        if (parts.size() != 3)
            return bad(key, value);
        try {
            config.cluster.node.gpu.model = std::string(trim(parts[0]));
            config.cluster.node.gpu.tflops = std::stod(parts[1]);
            config.cluster.node.gpu.memory_gb = std::stod(parts[2]);
        } catch (const std::exception &) {
            return bad(key, value);
        }
    } else if (key == "rack_override") {
        const auto parts = split(value, ',');
        if (parts.size() != 5)
            return bad(key, value);
        try {
            const int rack = std::stoi(parts[0]);
            cluster::NodeSpec spec = config.cluster.node;
            spec.gpu.model = std::string(trim(parts[1]));
            spec.gpu.tflops = std::stod(parts[2]);
            spec.gpu.memory_gb = std::stod(parts[3]);
            spec.gpu_count = std::stoi(parts[4]);
            if (rack < 0 || spec.gpu_count <= 0)
                return bad(key, value);
            config.cluster.rack_node_overrides[rack] = spec;
        } catch (const std::exception &) {
            return bad(key, value);
        }
    } else if (key == "oversubscription") {
        if (auto s = to_double(dv); !s.is_ok())
            return s;
        if (dv < 1.0)
            return bad(key, value);
        config.cluster.topology.oversubscription = dv;
    } else if (key == "nic_gbps") {
        if (auto s = to_double(dv); !s.is_ok())
            return s;
        if (dv <= 0)
            return bad(key, value);
        config.cluster.topology.nic_gbps = dv;
        config.cluster.node.nic_gbps = dv;
    } else if (key == "nvlink_gbps") {
        if (auto s = to_double(dv); !s.is_ok())
            return s;
        if (dv <= 0)
            return bad(key, value);
        config.cluster.topology.nvlink_gbps = dv;
        config.cluster.node.nvlink_gbps = dv;
    } else if (key == "scheduler") {
        if (!sched::make_scheduler(value))
            return Status::invalid_argument("unknown scheduler: " + value);
        config.scheduler = value;
    } else if (key == "placement") {
        if (!sched::make_placement_policy(value))
            return Status::invalid_argument("unknown placement: " + value);
        config.placement = value;
    } else if (key == "w_age") {
        if (auto s = to_nonneg_double(config.sched_opts.w_age); !s.is_ok())
            return s;
    } else if (key == "w_fairshare") {
        if (auto s = to_nonneg_double(config.sched_opts.w_fairshare);
            !s.is_ok())
            return s;
    } else if (key == "w_qos") {
        if (auto s = to_nonneg_double(config.sched_opts.w_qos); !s.is_ok())
            return s;
    } else if (key == "w_size") {
        if (auto s = to_nonneg_double(config.sched_opts.w_size);
            !s.is_ok())
            return s;
    } else if (key == "backfill_depth") {
        if (auto s = to_int(iv); !s.is_ok())
            return s;
        if (iv < 0)
            return bad(key, value);
        config.sched_opts.backfill_depth = iv;
    } else if (key == "gang_quantum_s") {
        if (auto s = to_double(dv); !s.is_ok())
            return s;
        if (dv <= 0)
            return bad(key, value);
        config.sched_opts.gang_quantum = Duration::from_seconds(dv);
    } else if (key == "las_threshold_gpu_s") {
        if (auto s = to_double(dv); !s.is_ok())
            return s;
        if (dv <= 0)
            return bad(key, value);
        config.sched_opts.las_queue_threshold_gpu_s = dv;
    } else if (key == "preempt_cost_gpu_s") {
        if (auto s = to_nonneg_double(
                config.sched_opts.preempt_cost_threshold_gpu_s);
            !s.is_ok())
            return s;
    } else if (key == "usage_half_life_h") {
        if (auto s = to_double(dv); !s.is_ok())
            return s;
        if (dv <= 0)
            return bad(key, value);
        config.usage_half_life = Duration::from_seconds(dv * 3600.0);
    } else if (key == "quota") {
        const auto parts = split(value, ',');
        if (parts.size() != 2)
            return bad(key, value);
        try {
            config.group_quotas[std::string(trim(parts[0]))] =
                std::stoi(parts[1]);
        } catch (const std::exception &) {
            return bad(key, value);
        }
    } else if (key == "default_quota") {
        if (auto s = to_int(iv); !s.is_ok())
            return s;
        config.default_group_quota = iv;
    } else if (key == "avoid_gpu_mixing") {
        auto b = parse_bool(key, value);
        if (!b.is_ok())
            return b.status();
        config.avoid_gpu_mixing = b.value();
    } else if (key == "rdma") {
        auto b = parse_bool(key, value);
        if (!b.is_ok())
            return b.status();
        config.exec.rdma_available = b.value();
    } else if (key == "innetwork") {
        auto b = parse_bool(key, value);
        if (!b.is_ok())
            return b.status();
        config.exec.innetwork_available = b.value();
    } else if (key == "failsafe") {
        auto b = parse_bool(key, value);
        if (!b.is_ok())
            return b.status();
        config.exec.failure.failsafe_switching = b.value();
    } else if (key == "spine_contention") {
        auto b = parse_bool(key, value);
        if (!b.is_ok())
            return b.status();
        config.exec.model_spine_contention = b.value();
    } else if (key == "mtbf_hours") {
        if (auto s = to_nonneg_double(config.exec.failure.node_mtbf_hours);
            !s.is_ok())
            return s;
    } else if (key == "persistent_failure_prob") {
        if (auto s = to_double(dv); !s.is_ok())
            return s;
        if (dv < 0 || dv > 1)
            return bad(key, value);
        config.exec.failure.persistent_prob = dv;
    } else if (key == "checkpoint_interval_s") {
        if (auto s =
                to_nonneg_double(config.exec.checkpoint_interval_s);
            !s.is_ok())
            return s;
    } else if (key == "checkpoint_cost_s") {
        if (auto s = to_nonneg_double(config.exec.checkpoint_cost_s);
            !s.is_ok())
            return s;
    } else if (key == "restart_overhead_s") {
        if (auto s = to_nonneg_double(config.exec.restart_overhead_s);
            !s.is_ok())
            return s;
    } else if (key == "power") {
        auto b = parse_bool(key, value);
        if (!b.is_ok())
            return b.status();
        config.power.enabled = b.value();
    } else if (key == "power_policy") {
        if (value != "admission" && value != "dvfs")
            return bad(key, value);
        config.power.policy = value;
    } else if (key == "power_cluster_cap_w") {
        if (auto s = to_nonneg_double(config.power.cluster_cap_w);
            !s.is_ok())
            return s;
    } else if (key == "power_rack_cap_w") {
        if (auto s = to_nonneg_double(config.power.rack_cap_w); !s.is_ok())
            return s;
    } else if (key == "power_pdu_cap_w") {
        if (auto s = to_nonneg_double(config.power.pdu_cap_w); !s.is_ok())
            return s;
    } else if (key == "power_racks_per_pdu") {
        if (auto s = to_int(iv); !s.is_ok())
            return s;
        if (iv <= 0)
            return bad(key, value);
        config.power.racks_per_pdu = iv;
    } else if (key == "power_host_idle_w") {
        if (auto s = to_nonneg_double(config.power.host_idle_w);
            !s.is_ok())
            return s;
    } else if (key == "power_gpu_w") {
        // "idle,active" for the default GPU, or "model,idle,active".
        const auto parts = split(value, ',');
        try {
            if (parts.size() == 2) {
                config.power.default_gpu.idle_w = std::stod(parts[0]);
                config.power.default_gpu.active_w = std::stod(parts[1]);
            } else if (parts.size() == 3) {
                power::GpuPowerSpec spec;
                spec.idle_w = std::stod(parts[1]);
                spec.active_w = std::stod(parts[2]);
                config.power.gpu_power[std::string(trim(parts[0]))] = spec;
            } else {
                return bad(key, value);
            }
        } catch (const std::exception &) {
            return bad(key, value);
        }
    } else if (key == "power_dvfs_exponent") {
        if (auto s = to_double(dv); !s.is_ok())
            return s;
        if (dv <= 0)
            return bad(key, value);
        config.power.dvfs_exponent = dv;
    } else if (key == "power_min_clock") {
        if (auto s = to_double(dv); !s.is_ok())
            return s;
        if (dv <= 0 || dv > 1)
            return bad(key, value);
        config.power.min_clock = dv;
    } else if (key == "predict") {
        auto b = parse_bool(key, value);
        if (!b.is_ok())
            return b.status();
        config.predict.enabled = b.value();
    } else if (key == "predict_mode") {
        auto mode = predict::parse_estimator_mode(value);
        if (!mode.is_ok())
            return mode.status();
        config.predict.mode = mode.value();
    } else if (key == "predict_decay") {
        if (auto s = to_double(dv); !s.is_ok())
            return s;
        if (dv < 0 || dv >= 1)
            return bad(key, value);
        config.predict.decay = dv;
    } else if (key == "predict_sample_floor") {
        if (auto s = to_int(iv); !s.is_ok())
            return s;
        if (iv < 1)
            return bad(key, value);
        config.predict.sample_floor = iv;
    } else if (key == "predict_safety_min") {
        if (auto s = to_double(dv); !s.is_ok())
            return s;
        if (dv < 1)
            return bad(key, value);
        config.predict.safety_min = dv;
    } else if (key == "predict_safety_max") {
        if (auto s = to_double(dv); !s.is_ok())
            return s;
        if (dv < 1)
            return bad(key, value);
        config.predict.safety_max = dv;
    } else if (key == "predict_bias") {
        if (auto s = to_double(dv); !s.is_ok())
            return s;
        if (dv <= 0)
            return bad(key, value);
        config.predict.bias = dv;
    } else if (key == "predict_forecast_alpha") {
        if (auto s = to_double(dv); !s.is_ok())
            return s;
        if (dv <= 0 || dv > 1)
            return bad(key, value);
        config.predict.forecast_alpha = dv;
    } else if (key == "predict_forecast_beta") {
        if (auto s = to_double(dv); !s.is_ok())
            return s;
        if (dv < 0 || dv > 1)
            return bad(key, value);
        config.predict.forecast_beta = dv;
    } else if (key == "seed") {
        if (auto s = to_int(iv); !s.is_ok())
            return s;
        if (iv < 0)
            return bad(key, value);
        config.seed = uint64_t(iv);
    } else {
        return Status::invalid_argument("unknown key: " + key);
    }
    return Status::ok();
}

} // namespace

StatusOr<StackConfig>
parse_stack_config(const std::string &text)
{
    StackConfig config;

    int lineno = 0;
    for (const auto &raw_line : split(text, '\n')) {
        ++lineno;
        const std::string line{trim(raw_line)};
        if (line.empty() || line[0] == '#')
            continue;
        const size_t colon = line.find(':');
        if (colon == std::string::npos) {
            return Status::invalid_argument(
                strfmt("line %d: malformed line: ", lineno) + line);
        }
        const std::string key{trim(line.substr(0, colon))};
        const std::string value{trim(line.substr(colon + 1))};
        if (auto s = apply_stack_key(key, value, config); !s.is_ok()) {
            return Status::invalid_argument(strfmt("line %d: ", lineno) +
                                            s.message());
        }
    }
    return config;
}

std::string
stack_config_to_text(const StackConfig &config)
{
    std::ostringstream os;
    os << "cluster: " << config.cluster.name << '\n';
    os << "racks: " << config.cluster.topology.racks << '\n';
    os << "nodes_per_rack: " << config.cluster.topology.nodes_per_rack
       << '\n';
    os << "gpus_per_node: " << config.cluster.node.gpu_count << '\n';
    os << strfmt("gpu: %s,%g,%g\n", config.cluster.node.gpu.model.c_str(),
                 config.cluster.node.gpu.tflops,
                 config.cluster.node.gpu.memory_gb);
    for (const auto &[rack, spec] : config.cluster.rack_node_overrides) {
        os << strfmt("rack_override: %d,%s,%g,%g,%d\n", rack,
                     spec.gpu.model.c_str(), spec.gpu.tflops,
                     spec.gpu.memory_gb, spec.gpu_count);
    }
    os << strfmt("oversubscription: %g\n",
                 config.cluster.topology.oversubscription);
    os << strfmt("nic_gbps: %g\n", config.cluster.topology.nic_gbps);
    os << strfmt("nvlink_gbps: %g\n",
                 config.cluster.topology.nvlink_gbps);
    os << "scheduler: " << config.scheduler << '\n';
    os << "placement: " << config.placement << '\n';
    // Scheduler tunables: the auto-tuner's search dimensions, so a
    // rendered preset carries every knob a search could have moved.
    os << strfmt("w_age: %g\n", config.sched_opts.w_age);
    os << strfmt("w_fairshare: %g\n", config.sched_opts.w_fairshare);
    os << strfmt("w_qos: %g\n", config.sched_opts.w_qos);
    os << strfmt("w_size: %g\n", config.sched_opts.w_size);
    os << "backfill_depth: " << config.sched_opts.backfill_depth << '\n';
    os << strfmt("gang_quantum_s: %g\n",
                 config.sched_opts.gang_quantum.to_seconds());
    os << strfmt("las_threshold_gpu_s: %g\n",
                 config.sched_opts.las_queue_threshold_gpu_s);
    os << strfmt("preempt_cost_gpu_s: %g\n",
                 config.sched_opts.preempt_cost_threshold_gpu_s);
    os << strfmt("usage_half_life_h: %g\n",
                 config.usage_half_life.to_seconds() / 3600.0);
    for (const auto &[group, cap] : config.group_quotas)
        os << "quota: " << group << ',' << cap << '\n';
    os << "default_quota: " << config.default_group_quota << '\n';
    os << "avoid_gpu_mixing: "
       << (config.avoid_gpu_mixing ? "true" : "false") << '\n';
    os << "rdma: " << (config.exec.rdma_available ? "true" : "false")
       << '\n';
    os << "innetwork: "
       << (config.exec.innetwork_available ? "true" : "false") << '\n';
    os << "failsafe: "
       << (config.exec.failure.failsafe_switching ? "true" : "false")
       << '\n';
    os << "spine_contention: "
       << (config.exec.model_spine_contention ? "true" : "false") << '\n';
    os << strfmt("mtbf_hours: %g\n",
                 config.exec.failure.node_mtbf_hours);
    os << strfmt("persistent_failure_prob: %g\n",
                 config.exec.failure.persistent_prob);
    os << strfmt("checkpoint_interval_s: %g\n",
                 config.exec.checkpoint_interval_s);
    os << strfmt("checkpoint_cost_s: %g\n",
                 config.exec.checkpoint_cost_s);
    os << strfmt("restart_overhead_s: %g\n",
                 config.exec.restart_overhead_s);
    // Power keys appear only when the subsystem is on, keeping rendered
    // configs of power-free stacks byte-identical to the pre-power form.
    if (config.power.enabled) {
        os << "power: true\n";
        os << "power_policy: " << config.power.policy << '\n';
        os << strfmt("power_cluster_cap_w: %g\n",
                     config.power.cluster_cap_w);
        os << strfmt("power_rack_cap_w: %g\n", config.power.rack_cap_w);
        os << strfmt("power_pdu_cap_w: %g\n", config.power.pdu_cap_w);
        os << "power_racks_per_pdu: " << config.power.racks_per_pdu
           << '\n';
        os << strfmt("power_host_idle_w: %g\n", config.power.host_idle_w);
        os << strfmt("power_gpu_w: %g,%g\n",
                     config.power.default_gpu.idle_w,
                     config.power.default_gpu.active_w);
        for (const auto &[model, spec] : config.power.gpu_power) {
            os << strfmt("power_gpu_w: %s,%g,%g\n", model.c_str(),
                         spec.idle_w, spec.active_w);
        }
        os << strfmt("power_dvfs_exponent: %g\n",
                     config.power.dvfs_exponent);
        os << strfmt("power_min_clock: %g\n", config.power.min_clock);
    }
    // Prediction keys follow the power precedent: emitted only when the
    // subsystem is on, so prediction-free rendered configs stay
    // byte-identical to the pre-prediction form.
    if (config.predict.enabled) {
        os << "predict: true\n";
        os << "predict_mode: "
           << predict::estimator_mode_name(config.predict.mode) << '\n';
        os << strfmt("predict_decay: %g\n", config.predict.decay);
        os << "predict_sample_floor: " << config.predict.sample_floor
           << '\n';
        os << strfmt("predict_safety_min: %g\n",
                     config.predict.safety_min);
        os << strfmt("predict_safety_max: %g\n",
                     config.predict.safety_max);
        os << strfmt("predict_bias: %g\n", config.predict.bias);
        os << strfmt("predict_forecast_alpha: %g\n",
                     config.predict.forecast_alpha);
        os << strfmt("predict_forecast_beta: %g\n",
                     config.predict.forecast_beta);
    }
    os << "seed: " << config.seed << '\n';
    return os.str();
}

} // namespace tacc::core
