#include "core/scenario.h"

#include <cassert>

namespace tacc::core {

ScenarioResult
run_scenario(const ScenarioConfig &config)
{
    TaccStack stack(config.stack);
    workload::TraceGenerator generator(config.trace);
    const auto trace = generator.generate();
    const TimePoint last_arrival =
        trace.empty() ? TimePoint::origin() : trace.back().arrival;
    stack.submit_trace(trace);
    stack.run_to_completion(config.max_events);

    ScenarioResult out;
    out.scheduler = config.stack.scheduler;
    out.placement = config.stack.placement;

    const auto &metrics = stack.metrics();
    out.submitted = stack.jobs().size();
    out.completed = metrics.completed_count();
    out.failed = metrics.failed_count();
    for (const auto *job : stack.jobs()) {
        if (!job->terminal())
            ++out.never_finished;
    }

    out.records = metrics.records();
    out.jct_samples = metrics.jct_samples();
    out.wait_samples = metrics.wait_samples();
    if (out.jct_samples.count() > 0) {
        out.mean_jct_s = out.jct_samples.mean();
        out.p50_jct_s = out.jct_samples.percentile(50);
        out.p99_jct_s = out.jct_samples.percentile(99);
    }
    if (out.wait_samples.count() > 0) {
        out.mean_wait_s = out.wait_samples.mean();
        out.p50_wait_s = out.wait_samples.percentile(50);
        out.p99_wait_s = out.wait_samples.percentile(99);
    }
    const Samples slowdown = metrics.slowdown_samples();
    if (slowdown.count() > 0) {
        out.mean_slowdown = slowdown.mean();
        out.p99_slowdown = slowdown.percentile(99);
    }
    const Samples interactive_wait =
        metrics.wait_samples_of(workload::QosClass::kInteractive);
    if (interactive_wait.count() > 0) {
        out.interactive_mean_wait_s = interactive_wait.mean();
        out.interactive_p99_wait_s = interactive_wait.percentile(99);
    }

    const TimePoint end = metrics.makespan();
    out.makespan_s = end.to_seconds();
    const int total_gpus = stack.cluster().total_gpus();
    if (end > TimePoint::origin()) {
        out.mean_utilization =
            metrics.mean_utilization(TimePoint::origin(), end, total_gpus);
        out.utilization_series = metrics.utilization_series(
            TimePoint::origin(), end, config.utilization_bucket,
            total_gpus);
        out.queue_depth_series = metrics.queue_depth_series(
            TimePoint::origin(), end, config.utilization_bucket);
    }
    out.arrival_span_s = last_arrival.to_seconds();
    if (last_arrival > TimePoint::origin()) {
        out.arrival_window_utilization = metrics.mean_utilization(
            TimePoint::origin(), last_arrival, total_gpus);
    }
    for (const auto &record : metrics.records()) {
        out.total_gpu_seconds += record.gpu_seconds;
        out.total_ideal_gpu_seconds +=
            record.ideal_s * double(record.gpus);
    }
    out.group_fairness = metrics.group_fairness();
    out.preemptions = metrics.preemptions();
    out.deadline_miss_rate = metrics.deadline_miss_rate();
    out.segment_failures = metrics.segment_failures();

    if (const auto *power = stack.power()) {
        out.peak_draw_w = power->peak_draw_w();
        out.energy_kwh = power->energy_kwh();
        out.baseline_energy_kwh = power->baseline_energy_kwh();
        out.power_deferrals = power->deferrals();
        out.dvfs_starts = power->dvfs_starts();
        for (const auto &[group, kwh] : power->group_energy_kwh())
            out.group_energy_kwh.emplace_back(group, kwh);
    }

    out.node_faults = metrics.node_faults();
    out.fault_lost_gpu_hours = metrics.fault_lost_gpu_seconds() / 3600.0;
    const Samples requeue = metrics.requeue_latency_samples();
    if (requeue.count() > 0) {
        out.mean_requeue_latency_s = requeue.mean();
        out.p99_requeue_latency_s = requeue.percentile(99);
    }

    const auto &cstats = stack.task_compiler().stats();
    out.mean_provision_s = cstats.mean_provision_s();
    out.cache_transfer_savings = cstats.transfer_savings();
    return out;
}

} // namespace tacc::core
