#include "core/scenario.h"

#include <cassert>

#include "core/digest.h"
#include "workload/stream.h"

namespace tacc::core {

namespace {

/** Extraction shared by both retention modes (post-run). */
void
extract_common(const ScenarioConfig &config, TaccStack &stack,
               TimePoint last_arrival, ScenarioResult &out)
{
    const auto &metrics = stack.metrics();
    const TimePoint end = metrics.makespan();
    out.makespan_s = end.to_seconds();
    const int total_gpus = stack.cluster().total_gpus();
    if (end > TimePoint::origin()) {
        out.mean_utilization =
            metrics.mean_utilization(TimePoint::origin(), end, total_gpus);
        out.utilization_series = metrics.utilization_series(
            TimePoint::origin(), end, config.utilization_bucket,
            total_gpus);
        out.queue_depth_series = metrics.queue_depth_series(
            TimePoint::origin(), end, config.utilization_bucket);
    }
    out.arrival_span_s = last_arrival.to_seconds();
    if (metrics.streaming()) {
        // Signals keep arriving after the mark; the bounded stat's
        // mark-integral is the [0, last arrival] window average.
        if (last_arrival > TimePoint::origin()) {
            out.arrival_window_utilization =
                metrics.arrival_window_utilization(total_gpus);
        }
    } else if (last_arrival > TimePoint::origin()) {
        out.arrival_window_utilization = metrics.mean_utilization(
            TimePoint::origin(), last_arrival, total_gpus);
    }
    out.total_gpu_seconds = metrics.total_gpu_seconds();
    out.total_ideal_gpu_seconds = metrics.total_ideal_gpu_seconds();
    out.group_fairness = metrics.group_fairness();
    out.preemptions = metrics.preemptions();
    out.deadline_miss_rate = metrics.deadline_miss_rate();
    out.segment_failures = metrics.segment_failures();

    if (const auto *power = stack.power()) {
        out.peak_draw_w = power->peak_draw_w();
        out.energy_kwh = power->energy_kwh();
        out.baseline_energy_kwh = power->baseline_energy_kwh();
        out.power_deferrals = power->deferrals();
        out.dvfs_starts = power->dvfs_starts();
        for (const auto &[group, kwh] : power->group_energy_kwh())
            out.group_energy_kwh.emplace_back(group, kwh);
    }

    out.node_faults = metrics.node_faults();
    out.fault_lost_gpu_hours = metrics.fault_lost_gpu_seconds() / 3600.0;
    const Samples requeue = metrics.requeue_latency_samples();
    if (requeue.count() > 0) {
        out.mean_requeue_latency_s = requeue.mean();
        out.p99_requeue_latency_s = requeue.percentile(99);
    }

    const auto &cstats = stack.task_compiler().stats();
    out.mean_provision_s = cstats.mean_provision_s();
    out.cache_transfer_savings = cstats.transfer_savings();

    if (const auto *plane = stack.serve_plane()) {
        out.serve_enabled = true;
        out.serve_counters = plane->counters();
        const auto &c = out.serve_counters;
        const uint64_t done = c.ok + c.late + c.dropped;
        out.serve_slo_attainment =
            done > 0 ? double(c.ok) / double(done) : 1.0;
        out.serve_slo_unattainable = plane->slo_unattainable();
    }
}

} // namespace

ObjectiveInputs
ScenarioResult::objective_inputs() const
{
    ObjectiveInputs in;
    in.mean_jct_s = mean_jct_s;
    in.p99_jct_s = p99_jct_s;
    in.mean_wait_s = mean_wait_s;
    in.p99_wait_s = p99_wait_s;
    in.fairness = group_fairness;
    in.energy_kwh = energy_kwh;
    in.slo_miss_rate = deadline_miss_rate;
    in.utilization = arrival_window_utilization;
    return in;
}

ScenarioResult
run_scenario(const ScenarioConfig &config)
{
    return run_scenario(config, nullptr);
}

ScenarioResult
run_scenario(const ScenarioConfig &config, StackArena *arena)
{
    StackConfig stack_config = config.stack;
    stack_config.streaming = config.streaming;
    TaccStack stack(std::move(stack_config), arena);

    ScenarioResult out;
    out.scheduler = config.stack.scheduler;
    out.placement = config.stack.placement;
    out.streaming = config.streaming;

    if (config.streaming) {
        workload::SyntheticWorkloadStream stream(config.trace);
        stack.submit_stream(stream, config.stream_window);
        stack.run_to_completion(config.max_events);

        auto &metrics = stack.metrics();
        out.submitted = size_t(stack.total_submitted());
        out.completed = metrics.completed_count();
        out.failed = metrics.failed_count();
        // Terminal jobs were reclaimed as they finished; whatever is
        // left is exactly the never-finished set.
        for (const auto *job : stack.jobs()) {
            if (!job->terminal())
                ++out.never_finished;
        }

        const QuantileSketch &jct = metrics.jct_sketch();
        if (jct.count() > 0) {
            out.mean_jct_s = jct.mean();
            out.p50_jct_s = jct.percentile(50);
            out.p99_jct_s = jct.percentile(99);
        }
        const QuantileSketch &wait = metrics.wait_sketch();
        if (wait.count() > 0) {
            out.mean_wait_s = wait.mean();
            out.p50_wait_s = wait.percentile(50);
            out.p99_wait_s = wait.percentile(99);
        }
        const QuantileSketch &slowdown = metrics.slowdown_sketch();
        if (slowdown.count() > 0) {
            out.mean_slowdown = slowdown.mean();
            out.p99_slowdown = slowdown.percentile(99);
        }
        const QuantileSketch &iwait = metrics.interactive_wait_sketch();
        if (iwait.count() > 0) {
            out.interactive_mean_wait_s = iwait.mean();
            out.interactive_p99_wait_s = iwait.percentile(99);
        }

        extract_common(config, stack, metrics.arrival_window_end(), out);

        RunDigestCounts counts;
        counts.submitted = out.submitted;
        counts.completed = out.completed;
        counts.failed = out.failed;
        counts.never_finished = out.never_finished;
        counts.preemptions = out.preemptions;
        counts.segment_failures = out.segment_failures;
        out.digest = metrics.finish_streaming_digest(counts);
    } else {
        workload::TraceGenerator generator(config.trace);
        const auto trace = generator.generate();
        const TimePoint last_arrival =
            trace.empty() ? TimePoint::origin() : trace.back().arrival;
        stack.submit_trace(trace);
        stack.run_to_completion(config.max_events);

        const auto &metrics = stack.metrics();
        out.submitted = stack.jobs().size();
        out.completed = metrics.completed_count();
        out.failed = metrics.failed_count();
        for (const auto *job : stack.jobs()) {
            if (!job->terminal())
                ++out.never_finished;
        }

        out.records = metrics.records();
        out.jct_samples = metrics.jct_samples();
        out.wait_samples = metrics.wait_samples();
        if (out.jct_samples.count() > 0) {
            out.mean_jct_s = out.jct_samples.mean();
            out.p50_jct_s = out.jct_samples.percentile(50);
            out.p99_jct_s = out.jct_samples.percentile(99);
        }
        if (out.wait_samples.count() > 0) {
            out.mean_wait_s = out.wait_samples.mean();
            out.p50_wait_s = out.wait_samples.percentile(50);
            out.p99_wait_s = out.wait_samples.percentile(99);
        }
        const Samples slowdown = metrics.slowdown_samples();
        if (slowdown.count() > 0) {
            out.mean_slowdown = slowdown.mean();
            out.p99_slowdown = slowdown.percentile(99);
        }
        const Samples interactive_wait =
            metrics.wait_samples_of(workload::QosClass::kInteractive);
        if (interactive_wait.count() > 0) {
            out.interactive_mean_wait_s = interactive_wait.mean();
            out.interactive_p99_wait_s = interactive_wait.percentile(99);
        }

        extract_common(config, stack, last_arrival, out);
    }

    stack.donate_arena(arena);
    return out;
}

} // namespace tacc::core
