#include "core/fault_domain.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace tacc::core {

using cluster::NodeHealth;
using cluster::NodeId;

namespace {

/** Independent per-chain stream: depends only on (seed, tag). */
Rng
make_stream(uint64_t seed, uint64_t tag)
{
    uint64_t state = seed ^ 0xfa17'd0ca'10de'e5e7ULL ^
                     (tag * 0x9e3779b97f4a7c15ULL);
    return Rng(split_mix64(state));
}

} // namespace

FaultInjector::FaultInjector(sim::Simulator &sim,
                             cluster::Cluster &cluster,
                             FaultDomainConfig config, uint64_t seed,
                             Callbacks cb)
    : sim_(sim), cluster_(cluster), config_(std::move(config)),
      cb_(std::move(cb))
{
    const int nodes = cluster_.node_count();
    const int racks = cluster_.topology().racks();
    crash_rng_.reserve(size_t(nodes));
    degrade_rng_.reserve(size_t(nodes));
    for (int n = 0; n < nodes; ++n) {
        crash_rng_.push_back(make_stream(seed, 0x10000 + uint64_t(n)));
        degrade_rng_.push_back(make_stream(seed, 0x20000 + uint64_t(n)));
    }
    for (int r = 0; r < racks; ++r)
        rack_rng_.push_back(make_stream(seed, 0x30000 + uint64_t(r)));
    for (int p = 0; p < pdu_count(); ++p)
        pdu_rng_.push_back(make_stream(seed, 0x40000 + uint64_t(p)));
    strikes_.resize(size_t(nodes));
}

int
FaultInjector::pdu_count() const
{
    const int rpp = std::max(config_.racks_per_pdu, 1);
    return (cluster_.topology().racks() + rpp - 1) / rpp;
}

void
FaultInjector::start()
{
    const int nodes = cluster_.node_count();
    const int racks = cluster_.topology().racks();
    if (config_.node_crash_mtbf_hours > 0) {
        for (int n = 0; n < nodes; ++n)
            schedule_node_crash(NodeId(n));
    }
    if (config_.node_degrade_mtbf_hours > 0) {
        for (int n = 0; n < nodes; ++n)
            schedule_node_degrade(NodeId(n));
    }
    if (config_.rack_outage_mtbf_hours > 0) {
        for (int r = 0; r < racks; ++r)
            schedule_rack_outage(r);
    }
    if (config_.pdu_outage_mtbf_hours > 0) {
        for (int p = 0; p < pdu_count(); ++p)
            schedule_pdu_outage(p);
    }
    for (const ScriptedOutage &outage : config_.scripted) {
        sim_.schedule_at(
            TimePoint::origin() + Duration::from_seconds(outage.at_s),
            "scripted-outage", [this, outage] {
                ++rack_outages_;
                take_down_rack(outage.rack,
                               Duration::from_seconds(outage.duration_s));
            });
    }
}

void
FaultInjector::take_down(NodeId node, Duration repair)
{
    auto &health = cluster_.health();
    const uint64_t down_epoch = health.set_state(node, NodeHealth::kDown);
    if (cb_.on_node_down)
        cb_.on_node_down(node);

    // Self-healing: detection turns the node over to the repair crew,
    // repair returns it to service. A second hit while down bumps the
    // epoch, invalidating this chain, and schedules a fresh one — so
    // overlapping outages extend downtime instead of racing.
    const Duration detect = std::min(
        Duration::from_seconds(config_.detection_delay_s), repair);
    sim_.schedule_after(detect, "fault-detect", [this, node, down_epoch,
                                                 repair, detect] {
        auto &h = cluster_.health();
        if (h.epoch(node) != down_epoch)
            return;
        const uint64_t repair_epoch =
            h.set_state(node, NodeHealth::kRepairing);
        sim_.schedule_after(
            repair - detect, "fault-repair", [this, node, repair_epoch] {
                auto &hh = cluster_.health();
                if (hh.epoch(node) != repair_epoch)
                    return;
                hh.set_state(node, NodeHealth::kHealthy);
                ++repairs_;
                if (cb_.on_capacity_change)
                    cb_.on_capacity_change();
            });
    });
}

void
FaultInjector::take_down_rack(int rack, Duration repair)
{
    const int per_rack = cluster_.topology().config().nodes_per_rack;
    const NodeId lo = NodeId(rack * per_rack);
    for (NodeId n = lo; n < lo + NodeId(per_rack); ++n)
        take_down(n, repair);
}

void
FaultInjector::schedule_node_crash(NodeId node)
{
    const Duration dt = Duration::from_seconds(
        crash_rng_[size_t(node)].exponential(
            config_.node_crash_mtbf_hours * 3600.0));
    sim_.schedule_after(dt, "node-crash", [this, node] {
        ++node_crashes_;
        record_strike(node, sim_.now());
        take_down(node,
                  Duration::from_seconds(config_.node_repair_hours *
                                         3600.0));
        schedule_node_crash(node);
    });
}

void
FaultInjector::schedule_node_degrade(NodeId node)
{
    const Duration dt = Duration::from_seconds(
        degrade_rng_[size_t(node)].exponential(
            config_.node_degrade_mtbf_hours * 3600.0));
    sim_.schedule_after(dt, "node-degrade", [this, node] {
        auto &health = cluster_.health();
        if (health.state(node) == NodeHealth::kHealthy) {
            ++degradations_;
            const uint64_t epoch =
                health.set_state(node, NodeHealth::kDegraded);
            sim_.schedule_after(
                Duration::from_seconds(config_.degraded_duration_hours *
                                       3600.0),
                "degrade-recover", [this, node, epoch] {
                    auto &h = cluster_.health();
                    if (h.epoch(node) != epoch)
                        return;
                    h.set_state(node, NodeHealth::kHealthy);
                });
        }
        schedule_node_degrade(node);
    });
}

void
FaultInjector::schedule_rack_outage(int rack)
{
    const Duration dt = Duration::from_seconds(
        rack_rng_[size_t(rack)].exponential(
            config_.rack_outage_mtbf_hours * 3600.0));
    sim_.schedule_after(dt, "rack-outage", [this, rack] {
        ++rack_outages_;
        take_down_rack(rack,
                       Duration::from_seconds(config_.rack_repair_hours *
                                              3600.0));
        schedule_rack_outage(rack);
    });
}

void
FaultInjector::schedule_pdu_outage(int pdu)
{
    const Duration dt = Duration::from_seconds(
        pdu_rng_[size_t(pdu)].exponential(config_.pdu_outage_mtbf_hours *
                                          3600.0));
    sim_.schedule_after(dt, "pdu-outage", [this, pdu] {
        ++pdu_outages_;
        const int rpp = std::max(config_.racks_per_pdu, 1);
        const int racks = cluster_.topology().racks();
        const Duration repair = Duration::from_seconds(
            config_.pdu_repair_hours * 3600.0);
        for (int r = pdu * rpp; r < std::min((pdu + 1) * rpp, racks); ++r)
            take_down_rack(r, repair);
        schedule_pdu_outage(pdu);
    });
}

Status
FaultInjector::cordon(NodeId node)
{
    if (size_t(node) >= size_t(cluster_.node_count()))
        return Status::not_found(strfmt("node %d", int(node)));
    auto &health = cluster_.health();
    const NodeHealth s = health.state(node);
    if (s != NodeHealth::kHealthy && s != NodeHealth::kDegraded) {
        return Status::failed_precondition(
            strfmt("node %d is %s", int(node), health_name(s)));
    }
    health.set_state(node, NodeHealth::kCordoned);
    return Status::ok();
}

Status
FaultInjector::drain(NodeId node)
{
    if (size_t(node) >= size_t(cluster_.node_count()))
        return Status::not_found(strfmt("node %d", int(node)));
    auto &health = cluster_.health();
    const NodeHealth s = health.state(node);
    if (s != NodeHealth::kHealthy && s != NodeHealth::kDegraded &&
        s != NodeHealth::kCordoned) {
        return Status::failed_precondition(
            strfmt("node %d is %s", int(node), health_name(s)));
    }
    health.set_state(node, NodeHealth::kDraining);
    if (cb_.on_node_evacuate)
        cb_.on_node_evacuate(node);
    return Status::ok();
}

Status
FaultInjector::uncordon(NodeId node)
{
    if (size_t(node) >= size_t(cluster_.node_count()))
        return Status::not_found(strfmt("node %d", int(node)));
    auto &health = cluster_.health();
    const NodeHealth s = health.state(node);
    if (s != NodeHealth::kCordoned && s != NodeHealth::kDraining) {
        return Status::failed_precondition(
            strfmt("node %d is %s", int(node), health_name(s)));
    }
    health.set_state(node, NodeHealth::kHealthy);
    if (cb_.on_capacity_change)
        cb_.on_capacity_change();
    return Status::ok();
}

void
FaultInjector::record_strike(NodeId node, TimePoint now)
{
    strikes_[size_t(node)].push_back(now);
    any_strikes_ = true;
}

bool
FaultInjector::build_node_filter(TimePoint now,
                                 std::vector<uint8_t> &mask)
{
    if (!any_strikes_)
        return false;
    const Duration window =
        Duration::from_seconds(config_.flaky_window_hours * 3600.0);
    bool any = false;
    mask.assign(size_t(cluster_.node_count()), 1);
    for (size_t n = 0; n < strikes_.size(); ++n) {
        auto &hits = strikes_[n];
        while (!hits.empty() && hits.front() + window < now)
            hits.erase(hits.begin());
        if (int(hits.size()) >= config_.flaky_strike_threshold) {
            mask[n] = 0;
            any = true;
        }
    }
    return any;
}

} // namespace tacc::core
