/**
 * @file
 * Operational metrics of a TACC stack run.
 *
 * Collects exactly what a cluster-operation paper reports: per-job records
 * (JCT, queueing delay, preemptions, service), time-weighted cluster
 * utilization and queue depth, and per-group service for fairness indices.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/time.h"
#include "workload/job.h"

namespace tacc::core {

/** Immutable record of one finished (or abandoned) job. */
struct JobRecord {
    cluster::JobId id = cluster::kInvalidJob;
    std::string user;
    std::string group;
    workload::QosClass qos = workload::QosClass::kBatch;
    workload::JobState final_state = workload::JobState::kCompleted;
    TimePoint submitted;
    /** Terminal time (== submitted for jobs that never went terminal);
     *  what billing-period attribution keys on. */
    TimePoint finished;
    int gpus = 0;
    double wait_s = 0;      ///< submit -> first start (0 if never started)
    double jct_s = 0;       ///< submit -> terminal
    /** Estimated minimal service time at the requested scale. */
    double ideal_s = 0;
    double provision_s = 0; ///< compiler-layer latency
    double gpu_seconds = 0;
    int preemptions = 0;
    int segments = 0;
    bool started = false;
    bool has_deadline = false;
    bool missed_deadline = false;
    /**
     * Fold of every placement committed for the job (node ids + device
     * indices, in commit order). Two runs made the same placement
     * decisions for a job iff the digests match — the per-job input to
     * the sweep driver's determinism digest.
     */
    uint64_t placement_digest = 0;
};

/** Run-wide metric accumulation. */
class MetricsCollector
{
  public:
    MetricsCollector();

    /** @name Signals driven by the core */
    ///@{
    void on_gpus_in_use(TimePoint t, int used);
    void on_queue_depth(TimePoint t, int pending);
    void on_preemption() { ++preemptions_; }
    void on_segment_failure() { ++segment_failures_; }
    /** A node went Down (crash or fault-domain outage). */
    void on_node_fault() { ++node_faults_; }
    /** GPU-seconds of held-but-wasted work a fault destroyed. */
    void
    on_fault_loss(double gpu_seconds)
    {
        fault_lost_gpu_seconds_ += gpu_seconds;
    }
    /** Fault kill -> next segment start, per requeued job. */
    void
    on_requeue_latency(double seconds)
    {
        requeue_latency_.add(seconds);
    }
    /** Folds a committed placement into the job's placement digest. */
    void on_placement(cluster::JobId id, const cluster::Placement &p);
    /** @return the appended record (the ops accounting hand-off). */
    const JobRecord &record_job(const workload::Job &job);
    ///@}

    /** @name Extraction */
    ///@{
    const std::vector<JobRecord> &records() const { return records_; }

    /** Records filtered to one QoS class. */
    std::vector<JobRecord> records_of(workload::QosClass qos) const;

    /** JCT samples (seconds) of completed jobs, optionally one class. */
    Samples jct_samples() const;
    Samples jct_samples_of(workload::QosClass qos) const;
    Samples wait_samples() const;
    Samples wait_samples_of(workload::QosClass qos) const;

    /** Time-weighted mean GPU utilization over [t0, t1], given capacity. */
    double mean_utilization(TimePoint t0, TimePoint t1,
                            int total_gpus) const;

    /** Utilization timeline (bucketed), as a fraction of capacity. */
    std::vector<double> utilization_series(TimePoint t0, TimePoint t1,
                                           Duration bucket,
                                           int total_gpus) const;

    double mean_queue_depth(TimePoint t0, TimePoint t1) const;

    /** Mean pending-queue depth per bucket (diurnal queueing figures). */
    std::vector<double> queue_depth_series(TimePoint t0, TimePoint t1,
                                           Duration bucket) const;

    /** Slowdown (JCT / minimal service time) of completed jobs. */
    Samples slowdown_samples() const;

    /** GPU-seconds delivered per group (completed + partial service). */
    std::map<std::string, double> gpu_seconds_by_group() const;

    /** Mean slowdown per group (completed jobs only). */
    std::map<std::string, double> mean_slowdown_by_group() const;

    /**
     * Jain index across groups' mean slowdowns: 1.0 when every group's
     * jobs are delayed equally, lower when some groups wait much longer
     * than others.
     */
    double group_fairness() const;

    /** Fraction of deadline-carrying jobs that missed (0 if none). */
    double deadline_miss_rate() const;

    uint64_t preemptions() const { return preemptions_; }
    uint64_t segment_failures() const { return segment_failures_; }
    uint64_t node_faults() const { return node_faults_; }
    double fault_lost_gpu_seconds() const { return fault_lost_gpu_seconds_; }
    const Samples &requeue_latency_samples() const
    {
        return requeue_latency_;
    }
    /** @name O(1) counters (polled every ops sample) */
    ///@{
    size_t completed_count() const { return completed_count_; }
    size_t failed_count() const { return failed_count_; }
    size_t deadline_missed_count() const { return deadline_missed_; }
    ///@}
    /** Time of the last recorded job's terminal event. */
    TimePoint makespan() const { return makespan_; }
    ///@}

  private:
    std::vector<JobRecord> records_;
    /** Running placement fold per job; read out by record_job. */
    std::map<cluster::JobId, uint64_t> placement_digests_;
    TimeWeightedStat used_gpus_;
    TimeWeightedStat queue_depth_;
    uint64_t preemptions_ = 0;
    uint64_t segment_failures_ = 0;
    uint64_t node_faults_ = 0;
    double fault_lost_gpu_seconds_ = 0;
    Samples requeue_latency_;
    size_t completed_count_ = 0;
    size_t failed_count_ = 0;
    size_t deadline_missed_ = 0;
    TimePoint makespan_;
};

} // namespace tacc::core
