/**
 * @file
 * Operational metrics of a TACC stack run.
 *
 * Collects exactly what a cluster-operation paper reports: per-job records
 * (JCT, queueing delay, preemptions, service), time-weighted cluster
 * utilization and queue depth, and per-group service for fairness indices.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/time.h"
#include "workload/job.h"

namespace tacc::core {

/** Immutable record of one finished (or abandoned) job. */
struct JobRecord {
    cluster::JobId id = cluster::kInvalidJob;
    std::string user;
    std::string group;
    workload::QosClass qos = workload::QosClass::kBatch;
    workload::JobState final_state = workload::JobState::kCompleted;
    TimePoint submitted;
    /** Terminal time (== submitted for jobs that never went terminal);
     *  what billing-period attribution keys on. */
    TimePoint finished;
    int gpus = 0;
    double wait_s = 0;      ///< submit -> first start (0 if never started)
    double jct_s = 0;       ///< submit -> terminal
    /** Estimated minimal service time at the requested scale. */
    double ideal_s = 0;
    double provision_s = 0; ///< compiler-layer latency
    double gpu_seconds = 0;
    int preemptions = 0;
    int segments = 0;
    bool started = false;
    bool has_deadline = false;
    bool missed_deadline = false;
    /**
     * Fold of every placement committed for the job (node ids + device
     * indices, in commit order). Two runs made the same placement
     * decisions for a job iff the digests match — the per-job input to
     * the sweep driver's determinism digest.
     */
    uint64_t placement_digest = 0;
};

struct RunDigestCounts; // core/digest.h

/** Streaming-mode knobs (see MetricsCollector::enable_streaming). */
struct StreamingMetricsConfig {
    /** FNV state after the run-identity prefix (run_digest_prefix). */
    uint64_t digest_prefix = 0;
    /** Bucket width of the bounded utilization/queue-depth series. */
    Duration series_bucket = Duration::hours(1);
};

/**
 * Run-wide metric accumulation.
 *
 * Two retention modes. The default (materialized) keeps every terminal
 * JobRecord for exact percentiles and post-hoc digests. Streaming mode
 * — the million-job regime — retains no records: each one is folded
 * into the run digest the moment the job-id prefix becomes contiguous
 * (terminal order is arbitrary but the reorder buffer is bounded by
 * the number of live jobs) and into O(1)-memory percentile sketches,
 * and the time-weighted signals switch to flat per-bucket integrals.
 * Aggregate sums (GPU-seconds, per-group service, deadline counters)
 * accumulate identically in both modes.
 */
class MetricsCollector
{
  public:
    MetricsCollector();

    /**
     * Switches to streaming retention. Call before the first signal;
     * the digest prefix seeds the incremental record fold.
     */
    void enable_streaming(const StreamingMetricsConfig &config);

    bool streaming() const { return streaming_; }

    /** Capacity hint for the record vector (materialized mode). */
    void reserve_records(size_t n);

    /** @name Signals driven by the core */
    ///@{
    void on_gpus_in_use(TimePoint t, int used);
    void on_queue_depth(TimePoint t, int pending);
    void on_preemption() { ++preemptions_; }
    void on_segment_failure() { ++segment_failures_; }
    /** A node went Down (crash or fault-domain outage). */
    void on_node_fault() { ++node_faults_; }
    /** GPU-seconds of held-but-wasted work a fault destroyed. */
    void
    on_fault_loss(double gpu_seconds)
    {
        fault_lost_gpu_seconds_ += gpu_seconds;
    }
    /** Fault kill -> next segment start, per requeued job. */
    void
    on_requeue_latency(double seconds)
    {
        requeue_latency_.add(seconds);
    }
    /** Folds a committed placement into the job's placement digest. */
    void on_placement(cluster::JobId id, const cluster::Placement &p);
    /** An arrival fired at t; tracks the arrival-window end (streaming
     *  mode; the materialized path derives it from the trace). */
    void on_arrival(TimePoint t);
    /** @return the appended record (the ops accounting hand-off). In
     *  streaming mode the reference is to a scratch record that stays
     *  valid only until the next record_job call. */
    const JobRecord &record_job(const workload::Job &job);
    ///@}

    /** @name Extraction */
    ///@{
    const std::vector<JobRecord> &records() const { return records_; }

    /** Records filtered to one QoS class. */
    std::vector<JobRecord> records_of(workload::QosClass qos) const;

    /** JCT samples (seconds) of completed jobs, optionally one class. */
    Samples jct_samples() const;
    Samples jct_samples_of(workload::QosClass qos) const;
    Samples wait_samples() const;
    Samples wait_samples_of(workload::QosClass qos) const;

    /** Time-weighted mean GPU utilization over [t0, t1], given capacity. */
    double mean_utilization(TimePoint t0, TimePoint t1,
                            int total_gpus) const;

    /** Utilization timeline (bucketed), as a fraction of capacity. */
    std::vector<double> utilization_series(TimePoint t0, TimePoint t1,
                                           Duration bucket,
                                           int total_gpus) const;

    double mean_queue_depth(TimePoint t0, TimePoint t1) const;

    /** Mean pending-queue depth per bucket (diurnal queueing figures). */
    std::vector<double> queue_depth_series(TimePoint t0, TimePoint t1,
                                           Duration bucket) const;

    /** Slowdown (JCT / minimal service time) of completed jobs. */
    Samples slowdown_samples() const;

    /** GPU-seconds delivered per group (completed + partial service). */
    std::map<std::string, double> gpu_seconds_by_group() const;

    /** Mean slowdown per group (completed jobs only). */
    std::map<std::string, double> mean_slowdown_by_group() const;

    /**
     * Jain index across groups' mean slowdowns: 1.0 when every group's
     * jobs are delayed equally, lower when some groups wait much longer
     * than others.
     */
    double group_fairness() const;

    /** Fraction of deadline-carrying jobs that missed (0 if none). */
    double deadline_miss_rate() const;

    /** @name Streaming-mode extraction */
    ///@{
    /** Percentile sketches (exact count/sum/mean/min/max). */
    const QuantileSketch &jct_sketch() const { return jct_sketch_; }
    const QuantileSketch &wait_sketch() const { return wait_sketch_; }
    const QuantileSketch &
    interactive_wait_sketch() const
    {
        return interactive_wait_sketch_;
    }
    const QuantileSketch &
    slowdown_sketch() const
    {
        return slowdown_sketch_;
    }
    /** Mean utilization over [origin, last arrival] (the mark). */
    double arrival_window_utilization(int total_gpus) const;
    /** Time of the last arrival seen by on_arrival. */
    TimePoint arrival_window_end() const;
    /**
     * Drains the reorder buffer (records of never-contiguous prefixes
     * fold in id order), folds the digest tail, and returns the run
     * digest. Call exactly once, after the run has quiesced.
     */
    uint64_t finish_streaming_digest(const RunDigestCounts &counts);
    ///@}

    /** @name Running aggregates (O(1) per record; both modes) */
    ///@{
    double total_gpu_seconds() const { return total_gpu_seconds_; }
    double
    total_ideal_gpu_seconds() const
    {
        return total_ideal_gpu_seconds_;
    }
    ///@}

    uint64_t preemptions() const { return preemptions_; }
    uint64_t segment_failures() const { return segment_failures_; }
    uint64_t node_faults() const { return node_faults_; }
    double fault_lost_gpu_seconds() const { return fault_lost_gpu_seconds_; }
    const Samples &requeue_latency_samples() const
    {
        return requeue_latency_;
    }
    /** @name O(1) counters (polled every ops sample) */
    ///@{
    size_t completed_count() const { return completed_count_; }
    size_t failed_count() const { return failed_count_; }
    size_t deadline_missed_count() const { return deadline_missed_; }
    ///@}
    /** Time of the last recorded job's terminal event. */
    TimePoint makespan() const { return makespan_; }
    ///@}

  private:
    /** Builds the terminal record (shared by both retention modes). */
    JobRecord make_record(const workload::Job &job);
    /** Folds buffered records while the id prefix is contiguous. */
    void drain_fold();

    std::vector<JobRecord> records_;
    /** Running placement fold per job; erased when the job's terminal
     *  record reads it out (bounded by live jobs). */
    std::map<cluster::JobId, uint64_t> placement_digests_;
    TimeWeightedStat used_gpus_;
    TimeWeightedStat queue_depth_;
    uint64_t preemptions_ = 0;
    uint64_t segment_failures_ = 0;
    uint64_t node_faults_ = 0;
    double fault_lost_gpu_seconds_ = 0;
    Samples requeue_latency_;
    size_t completed_count_ = 0;
    size_t failed_count_ = 0;
    size_t deadline_missed_ = 0;
    size_t with_deadline_ = 0;
    TimePoint makespan_;

    /** @name Running aggregates (both modes; accumulation order equals
     *  record order, so sums match the record-loop values bit-for-bit) */
    ///@{
    double total_gpu_seconds_ = 0;
    double total_ideal_gpu_seconds_ = 0;
    std::map<std::string, double> group_gpu_seconds_;
    std::map<std::string, double> group_slowdown_sum_;
    std::map<std::string, int> group_slowdown_count_;
    ///@}

    /** @name Streaming mode */
    ///@{
    bool streaming_ = false;
    uint64_t digest_state_ = 0;
    uint64_t folded_records_ = 0;
    /** Next job id the contiguous fold is waiting for. */
    cluster::JobId next_fold_id_ = 1;
    /** Terminal records not yet foldable (id order); O(live jobs). */
    std::map<cluster::JobId, JobRecord> reorder_;
    /** Returned by record_job in streaming mode (no retention). */
    JobRecord scratch_record_;
    QuantileSketch jct_sketch_;
    QuantileSketch wait_sketch_;
    QuantileSketch interactive_wait_sketch_;
    QuantileSketch slowdown_sketch_;
    BoundedTimeWeighted bounded_used_;
    BoundedTimeWeighted bounded_queue_;
    ///@}
};

} // namespace tacc::core
