/**
 * @file
 * TaccStack: the full-stack facade wiring the four workflow layers.
 *
 * A TaccStack owns one simulated deployment: the cluster substrate, the
 * compiler layer (with its delta cache), a pluggable scheduling policy and
 * placement policy, the execution engine (runtimes, transports, shared FS,
 * failure injection), monitoring, fair-share usage accounting, and quota
 * enforcement. Tasks flow through exactly the paper's pipeline:
 *
 *   submit(spec)  -> schema validation                     [Task Schema]
 *                 -> compile + provision (delta cache)      [Compiler]
 *                 -> pending queue -> policy decision       [Scheduling]
 *                 -> placement, runtime, transport, run     [Execution]
 *
 * Everything is event-driven on the owned Simulator; runs are
 * deterministic for a fixed config.
 */
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "compiler/compiler.h"
#include "core/fault_domain.h"
#include "core/metrics.h"
#include "exec/engine.h"
#include "exec/monitor.h"
#include "ops/ops_center.h"
#include "power/power_manager.h"
#include "predict/hub.h"
#include "sched/estimator.h"
#include "sched/placement.h"
#include "sched/schedulers.h"
#include "sched/usage.h"
#include "serve/request_plane.h"
#include "sim/simulator.h"
#include "workload/job.h"
#include "workload/stream.h"
#include "workload/trace.h"

namespace tacc::core {

/** Configuration of a full deployment. */
struct StackConfig {
    cluster::ClusterConfig cluster;
    compiler::CompilerConfig compiler;
    exec::ExecConfig exec;
    /** Scheduler factory name (see sched::make_scheduler). */
    std::string scheduler = "fairshare";
    sched::SchedulerOptions sched_opts;
    /** Placement factory name (see sched::make_placement_policy). */
    std::string placement = "topology";
    Duration usage_half_life = Duration::hours(24);
    /** Per-group concurrent GPU caps (ordered map: deterministic). */
    std::map<std::string, int> group_quotas;
    int default_group_quota = -1; ///< <0 = unlimited
    /** Heterogeneous clusters: forbid mixed-generation gangs. */
    bool avoid_gpu_mixing = false;
    uint64_t seed = 1;
    /** Emit per-node monitor log lines on job events. */
    bool emit_monitor_logs = true;
    /**
     * Operations layer: telemetry collectors, alert rules, tenant
     * accounting. Strictly observational — enabling it never changes a
     * scheduling decision or the event ordering jobs see.
     */
    ops::OpsConfig ops;
    /**
     * Fault-domain injection and the self-healing node lifecycle.
     * Disabled (the default) leaves every run byte-identical to a
     * stack without the subsystem; operator verbs (cordon/drain/
     * uncordon) work either way.
     */
    FaultDomainConfig faults;
    /**
     * Power & energy management: draw model, cluster/rack/PDU caps
     * (admission gating or DVFS), per-tenant energy accounting.
     * Disabled (the default) keeps every run byte-identical to a stack
     * without the subsystem.
     */
    power::PowerConfig power;
    /**
     * Request-level serving plane: inference replicas occupying cluster
     * GPUs next to training jobs, with an open-loop request stream and
     * the overload-robustness stack (admission control, retry budgets,
     * circuit breakers, graceful degradation). Disabled (the default)
     * keeps every run byte-identical to a stack without the subsystem.
     */
    serve::ServePlaneConfig serve;
    /**
     * Prediction subsystem: the online runtime model (decayed
     * regression over completions) and short-horizon load forecaster
     * that become the stack's single prediction authority — backfill
     * reservations, elastic shrink victims, and serve autoscaling all
     * consume it. Disabled (the default) keeps every run byte-identical
     * to a stack without the subsystem.
     */
    predict::PredictConfig predict;
    /**
     * Streaming (million-job) retention: terminal jobs are folded into
     * the run digest and percentile sketches and then reclaimed, so
     * memory tracks the *live* job set instead of the trace length.
     * Exact per-record extraction (metrics().records()) is empty in
     * this mode; pair with submit_stream().
     */
    bool streaming = false;
    /** Bucket width of the bounded metric series in streaming mode. */
    Duration metrics_bucket = Duration::hours(1);
};

/**
 * Recyclable allocations handed between successive TaccStack runs —
 * one arena per sweep worker. Holds the simulator's event slab/heap
 * and the scheduler-context scratch vectors, so back-to-back scenarios
 * skip the allocation ramp-up a fresh stack pays.
 */
struct StackArena {
    sim::Simulator::Storage sim_storage;
    bool has_storage = false;
    std::vector<workload::Job *> pending_scratch;
    std::vector<sched::RunningInfo> running_scratch;
};

/** The running deployment. */
class TaccStack
{
  public:
    /**
     * @param arena optional recycled allocations from a previous run
     *        (see StackArena); adopted before any event is scheduled.
     */
    explicit TaccStack(StackConfig config, StackArena *arena = nullptr);
    ~TaccStack();
    TaccStack(const TaccStack &) = delete;
    TaccStack &operator=(const TaccStack &) = delete;

    /** @name Component access */
    ///@{
    sim::Simulator &simulator() { return sim_; }
    const cluster::Cluster &cluster() const { return cluster_; }
    compiler::Compiler &task_compiler() { return compiler_; }
    exec::ExecutionEngine &engine() { return engine_; }
    exec::MonitorHub &monitor() { return monitor_; }
    const MetricsCollector &metrics() const { return metrics_; }
    /** Mutable access (streaming digest finish; see MetricsCollector). */
    MetricsCollector &metrics() { return metrics_; }
    /** The operations layer; nullptr when config.ops.enabled is off. */
    ops::OpsCenter *ops() { return ops_.get(); }
    const ops::OpsCenter *ops() const { return ops_.get(); }
    /** The power manager; nullptr when config.power.enabled is off. */
    const power::PowerManager *power() const { return power_.get(); }
    /** The serving plane; nullptr when config.serve.enabled is off. */
    serve::RequestPlane *serve_plane() { return serve_plane_.get(); }
    const serve::RequestPlane *serve_plane() const
    {
        return serve_plane_.get();
    }
    const sched::UsageTracker &usage() const { return usage_; }
    const sched::RuntimeEstimator &estimator() const { return estimator_; }
    /** The prediction hub; nullptr when config.predict.enabled is off. */
    const predict::PredictionHub *prediction_hub() const
    {
        return predict_hub_.get();
    }
    /**
     * The estimator scheduling actually conditions on: the hub's online
     * model when prediction is enabled, the built-in EMA table
     * otherwise. Every prediction consumer routes through this.
     */
    const sched::RuntimeEstimator &
    active_estimator() const
    {
        return predict_hub_ ? predict_hub_->model() : estimator_;
    }
    sched::Scheduler &scheduler() { return *scheduler_; }
    const StackConfig &config() const { return config_; }
    ///@}

    /**
     * Submits a task at the current simulation time. The spec is schema-
     * validated and compiled; the job becomes schedulable once its
     * provisioning completes *and* every dependency has completed
     * (pipelines: data-prep -> train -> evaluate). If a dependency
     * fails or is killed, the dependent is killed (fail-fast cascade,
     * Slurm `afterok` semantics).
     * @param dependencies ids of previously submitted jobs; already-
     *        completed dependencies are satisfied immediately.
     * @return the assigned job id.
     */
    StatusOr<cluster::JobId> submit(
        const workload::TaskSpec &spec,
        const std::vector<cluster::JobId> &dependencies = {});

    /** Schedules every trace entry for submission at its arrival time. */
    void submit_trace(const std::vector<workload::SubmittedTask> &trace);

    /**
     * Streams arrivals from a pull-based source with bounded lookahead:
     * only `window` arrival events are materialized at a time; the last
     * arrival of each window pulls the next one. Same-instant arrivals
     * keep trace order (the batch assigns consecutive sequence
     * numbers), so the event interleaving matches submit_trace. The
     * stream must outlive the run and yield sorted arrivals >= now().
     */
    void submit_stream(workload::WorkloadStream &stream,
                       size_t window = 4096);

    /** Jobs assigned an id so far (streaming mode reclaims terminal
     *  jobs, so jobs().size() undercounts submissions there). */
    uint64_t total_submitted() const { return next_job_id_ - 1; }

    /** Hands the stack's recyclable allocations to `arena` for the next
     *  run. Call after the run completes; the stack stays destructible
     *  but must not run further events. */
    void donate_arena(StackArena *arena);

    /** Kills a job in any non-terminal state. */
    Status kill(cluster::JobId id);

    /**
     * Estimates when a job will start, from the capacity timeline of
     * running jobs plus the queue ahead of it (each priced by the
     * runtime estimator). Running jobs return their actual segment
     * start. Held (dependency-blocked) jobs cannot be estimated.
     * The estimate assumes arrival-order scheduling, so it is exact for
     * FIFO-like policies and a good hint for the others — precisely
     * what `squeue --start` gives Slurm users.
     */
    StatusOr<TimePoint> estimated_start(cluster::JobId id) const;

    /**
     * Updates a group's concurrent-GPU cap at runtime (an operator
     * action: e.g. handing the serving partition's GPUs to batch
     * training overnight). Negative means unlimited. Takes effect at
     * the next scheduling decision; running jobs are not preempted.
     */
    void set_group_quota(const std::string &group, int max_gpus);

    workload::Job *find_job(cluster::JobId id);
    const workload::Job *find_job(cluster::JobId id) const;

    /** All jobs ever submitted, in id order. */
    std::vector<const workload::Job *> jobs() const;

    /** @name Node lifecycle (operator verbs + introspection) */
    ///@{
    /** Hold a node: running gangs finish, no new placements land. */
    Status cordon_node(int node);
    /** Evacuate a node: residents are gracefully requeued. */
    Status drain_node(int node);
    /** Return a cordoned/drained node to service. */
    Status uncordon_node(int node);
    /** `tcloud health`: per-state node counts, capacity, fault totals. */
    std::string health_report() const;
    /** `tcloud power`: draw vs caps per scope, throttling, deferrals. */
    std::string power_report() const;
    /** `tcloud energy`: cluster/baseline/per-group kWh ledger. */
    std::string energy_report() const;
    /** The fault injector (always present; chains run when enabled). */
    const FaultInjector &fault_injector() const { return *faults_; }
    ///@}

    size_t pending_count() const { return pending_.size(); }
    size_t running_count() const { return running_.size(); }

    /** True once every submitted job reached a terminal state and no
     *  arrivals remain. */
    bool quiescent() const;

    /**
     * The `tcloud report` operator summary: occupancy, queueing, last-day
     * telemetry, alert incidents, per-group usage. Degrades to the
     * header lines when the ops layer is disabled.
     */
    std::string operator_report() const;

    /** One group's accounting statements (`tcloud accounting <group>`). */
    std::string accounting_report(const std::string &group) const;

    /** `tcloud serve status`: replica pool, goodput, shed/retry/breaker
     *  totals. Non-const: settles the plane's capacity accrual. */
    std::string serving_report();

    /** Runs simulated time forward to t. */
    void run_until(TimePoint t);

    /**
     * Runs until every submitted (and scheduled-to-arrive) job is
     * terminal, or max_events fire (safety valve against unschedulable
     * configurations).
     * @return true if the run quiesced.
     */
    bool run_to_completion(uint64_t max_events = 100'000'000);

  private:
    struct RunningMeta {
        sim::EventId event = 0;
        TimePoint expected_end;
        double iteration_s = 0;
        compiler::RuntimeKind runtime = compiler::RuntimeKind::kContainer;
    };

    void wire_ops();
    /** Pulls and schedules the next arrival window (streaming mode). */
    void refill_stream();
    void enqueue_pending(cluster::JobId id);
    void remove_pending(cluster::JobId id);
    /** Releases/cascades dependents when `id` reaches a terminal state. */
    void resolve_dependents(cluster::JobId id, bool completed);
    void schedule_now();
    void apply_decision(const sched::ScheduleDecision &decision);
    /** Stops a running segment (cancel event, release, charge, account). */
    void stop_segment(workload::Job &job, bool count_as_preemption);
    void on_segment_complete(cluster::JobId id);
    void on_segment_failure(cluster::JobId id);
    /** Crash-kills one running segment and requeues (or fails) the job,
     *  with failure-classified backoff and fault-loss accounting. */
    void handle_segment_failure(cluster::JobId id, exec::FailureKind kind);
    /** Fault path: every gang on the node dies (node went Down). */
    void kill_gangs_on(cluster::NodeId node);
    /** Drain path: residents are gracefully preempted and requeued. */
    void evacuate_node(cluster::NodeId node);
    void charge_usage(workload::Job &job);
    void finalize(workload::Job &job);
    /** Submits the 1-GPU inference job backing a replica slot. */
    cluster::JobId spawn_serve_replica(int slot);
    /** Tells the plane a replica's segment stopped (crash/preempt). */
    void notify_serve_stop(cluster::JobId id);
    /** Releases a stopped segment's draw and refreshes node clocks. */
    void release_power(cluster::JobId id,
                       const cluster::Placement &placement);
    void log_job(const workload::Job &job,
                 const cluster::Placement &placement,
                 const std::string &text);

    StackConfig config_;
    sim::Simulator sim_;
    cluster::Cluster cluster_;
    compiler::Compiler compiler_;
    exec::ExecutionEngine engine_;
    exec::MonitorHub monitor_;
    std::unique_ptr<sched::PlacementPolicy> placement_;
    std::unique_ptr<sched::Scheduler> scheduler_;
    sched::UsageTracker usage_;
    sched::QuotaManager quota_;
    sched::RuntimeEstimator estimator_;
    std::unique_ptr<predict::PredictionHub> predict_hub_;
    MetricsCollector metrics_;
    std::unique_ptr<ops::OpsCenter> ops_;
    std::unique_ptr<power::PowerManager> power_;
    std::unique_ptr<serve::RequestPlane> serve_plane_;
    /** Live replica-backing jobs (lifecycle routed to the plane). */
    std::set<cluster::JobId> serve_jobs_;
    /** Scratch the scheduler context's power gate points into. */
    sched::PowerGate power_gate_;

    std::map<cluster::JobId, std::unique_ptr<workload::Job>> jobs_;
    std::map<cluster::JobId, compiler::TaskInstruction> instructions_;
    /** Kept in (submit time, id) order — the arrival order schedulers
     *  start from — so decisions skip their re-sort. */
    std::vector<cluster::JobId> pending_;
    std::map<cluster::JobId, RunningMeta> running_;
    /** @name Scheduler-context caches (backing SchedulerContext spans).
     *  pending_jobs_ is refilled per decision; running_cache_ only when
     *  the running set changed since the last one. */
    ///@{
    std::vector<workload::Job *> pending_jobs_;
    std::vector<sched::RunningInfo> running_cache_;
    bool running_cache_dirty_ = true;
    ///@}
    std::map<cluster::JobId, sim::EventId> provisioning_;
    /** Provisioned jobs held back by unfinished dependencies. */
    std::set<cluster::JobId> held_;
    /** job -> dependencies not yet completed. */
    std::map<cluster::JobId, std::set<cluster::JobId>> waiting_on_;
    /** completed-dependency fan-out: job -> dependents. */
    std::map<cluster::JobId, std::vector<cluster::JobId>> dependents_;
    std::map<cluster::JobId, double> charged_gpu_s_;
    std::unique_ptr<FaultInjector> faults_;
    /** Jobs waiting out a requeue backoff before re-entering pending_. */
    std::map<cluster::JobId, sim::EventId> backoff_;
    /** Fault-kill instants, sampled as requeue latency at next start. */
    std::map<cluster::JobId, TimePoint> requeue_killed_at_;
    /** Per-job GPU-seconds destroyed by faults (flows to accounting). */
    std::map<cluster::JobId, double> fault_lost_gpu_s_;
    /** Scratch for the flaky-node scoreboard's placement veto. */
    std::vector<uint8_t> node_filter_scratch_;
    std::unique_ptr<sim::PeriodicTask> tick_;
    std::unique_ptr<sim::PeriodicTask> ops_tick_;
    cluster::JobId next_job_id_ = 1;
    uint64_t arrivals_outstanding_ = 0;
    /** @name Streaming arrivals (null/empty unless submit_stream ran) */
    ///@{
    workload::WorkloadStream *stream_ = nullptr;
    size_t stream_window_ = 0;
    std::vector<workload::SubmittedTask> stream_tasks_;
    std::vector<sim::BatchEvent> stream_batch_;
    ///@}
};

} // namespace tacc::core
