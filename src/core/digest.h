/**
 * @file
 * Incremental run-digest primitives (the v2 determinism digest).
 *
 * The sweep driver's digest folds every terminal job record plus the
 * run's aggregate counters into one FNV-1a 64 fingerprint. v2 reorders
 * the v1 layout so it can be computed *incrementally*: the record count
 * and aggregates fold AFTER the records, which lets the streaming
 * metrics path fold each record the moment the job-id prefix becomes
 * contiguous and discard it — no terminal-record vector. The
 * materialized path (driver::scenario_digest) folds the identical
 * layout over its sorted record set, so both modes produce
 * byte-identical digests by construction.
 *
 * Fold order: version string, scheduler, placement (the prefix), then
 * records in increasing job-id order, then the record count and the
 * aggregate counters (the tail).
 */
#pragma once

#include <cstdint>
#include <string>

#include "core/metrics.h"

namespace tacc::core {

/** Digest layout version; bump when the fold order or fields change. */
inline constexpr const char *kRunDigestVersion = "tacc-sweep-digest-v2";

/** Aggregate counters folded into the digest tail. */
struct RunDigestCounts {
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t never_finished = 0;
    uint64_t preemptions = 0;
    uint64_t segment_failures = 0;
};

/**
 * Request-serving plane counters folded *after* the v2 tail when a
 * scenario runs with serving enabled. Serving-off runs fold nothing, so
 * every pre-serving digest (and golden) stays byte-identical; the fold
 * itself is mode-independent, so batch and streaming runs of the same
 * serving scenario still agree.
 */
struct ServeDigestCounts {
    uint64_t requests = 0;
    uint64_t attempts = 0;
    uint64_t admitted = 0;
    uint64_t ok = 0;
    uint64_t late = 0;
    uint64_t degraded = 0;
    uint64_t wasted = 0;
    uint64_t shed = 0;
    uint64_t breaker_shed = 0;
    uint64_t timeouts = 0;
    uint64_t retries = 0;
    uint64_t retries_denied = 0;
    uint64_t dropped = 0;
    uint64_t breaker_trips = 0;
    uint64_t replica_failures = 0;
    uint64_t replicas_spawned = 0;
};

/** FNV state after folding the run-identity prefix. */
uint64_t run_digest_prefix(const std::string &scheduler,
                           const std::string &placement);

/** Folds one terminal record; call in increasing job-id order. */
uint64_t fold_job_record(uint64_t state, const JobRecord &r);

/** Folds the tail (record count + aggregates); returns the digest. */
uint64_t finish_run_digest(uint64_t state, uint64_t record_count,
                           const RunDigestCounts &counts);

/** Folds the serving-plane counters onto a finished run digest. */
uint64_t fold_serve_counts(uint64_t digest,
                           const ServeDigestCounts &counts);

} // namespace tacc::core
