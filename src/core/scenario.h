/**
 * @file
 * Scenario harness: one call from (deployment config, workload config) to
 * the summary metrics the paper-style tables report. All bench binaries
 * and the integration tests are thin wrappers over run_scenario().
 */
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "core/metrics.h"
#include "core/stack.h"
#include "workload/trace.h"

namespace tacc::core {

/** A full experiment: a deployment plus a workload. */
struct ScenarioConfig {
    StackConfig stack;
    workload::TraceConfig trace;
    /** Bucket width for the utilization timeline. */
    Duration utilization_bucket = Duration::hours(1);
    /** Safety valve passed to run_to_completion. */
    uint64_t max_events = 100'000'000;
    /**
     * Streaming (million-job) retention: the workload is pulled in
     * bounded windows, terminal jobs fold into the run digest and
     * sketches and are reclaimed. `records`/`jct_samples`/
     * `wait_samples` come back empty; percentiles are sketch-derived
     * (exact means, ~6% worst-case percentile error).
     */
    bool streaming = false;
    /** Arrival lookahead (events in flight) in streaming mode. */
    size_t stream_window = 4096;
};

/**
 * The per-scenario summary terms every scalarized comparison consumes:
 * the tuner's objective, the sweep JSON, and the report tables all read
 * this one fold instead of re-deriving the numbers from raw samples.
 * All terms are "raw" (seconds, kWh, rates); weighting and
 * normalization are the consumer's business.
 */
struct ObjectiveInputs {
    double mean_jct_s = 0;
    double p99_jct_s = 0;
    double mean_wait_s = 0;
    double p99_wait_s = 0;
    /** Jain fairness index over group GPU-hour shares, in (0, 1]. */
    double fairness = 1.0;
    /** Integrated cluster energy (0 when power metering is off). */
    double energy_kwh = 0;
    /** Deadline-carrying jobs that missed, as a fraction (SLO misses). */
    double slo_miss_rate = 0;
    /** Arrival-window utilization (drain tails excluded). */
    double utilization = 0;
};

/** Summary of one scenario run. */
struct ScenarioResult {
    std::string scheduler;
    std::string placement;
    /** The run used streaming retention (records empty; see below). */
    bool streaming = false;
    /**
     * Determinism digest, computed incrementally during the run
     * (streaming mode only; materialized runs fold `records` in the
     * sweep driver instead — both paths produce the identical v2
     * digest for the same scenario).
     */
    uint64_t digest = 0;
    size_t submitted = 0;
    size_t completed = 0;
    size_t failed = 0;
    size_t never_finished = 0; ///< non-terminal when the run stopped

    double mean_jct_s = 0;
    double p50_jct_s = 0;
    double p99_jct_s = 0;
    double mean_wait_s = 0;
    double p50_wait_s = 0;
    double p99_wait_s = 0;
    double interactive_mean_wait_s = 0;
    double interactive_p99_wait_s = 0;
    double mean_slowdown = 0;
    double p99_slowdown = 0;

    double mean_utilization = 0;
    /** Utilization measured only over the arrival window [0, last
     *  arrival] — comparable across policies whose drain tails differ. */
    double arrival_window_utilization = 0;
    double arrival_span_s = 0;
    double makespan_s = 0;
    double group_fairness = 1.0;
    uint64_t preemptions = 0;
    uint64_t segment_failures = 0;
    double deadline_miss_rate = 0;

    double mean_provision_s = 0;
    double cache_transfer_savings = 0;

    /** @name Fault-domain summary (zero when injection is off) */
    ///@{
    uint64_t node_faults = 0;            ///< nodes taken Down by faults
    double fault_lost_gpu_hours = 0;     ///< work destroyed by fault kills
    double mean_requeue_latency_s = 0;   ///< fault kill -> next start
    double p99_requeue_latency_s = 0;
    ///@}

    /** @name Power & energy summary (zero when power is off) */
    ///@{
    double peak_draw_w = 0;          ///< highest instantaneous draw
    double energy_kwh = 0;           ///< integrated cluster draw
    double baseline_energy_kwh = 0;  ///< idle-floor share of the energy
    uint64_t power_deferrals = 0;    ///< starts blocked on headroom
    uint64_t dvfs_starts = 0;        ///< starts frequency-scaled
    /** Active (above-baseline) kWh per group, name order. */
    std::vector<std::pair<std::string, double>> group_energy_kwh;
    ///@}

    /** @name Request-serving summary (all zero when serving is off) */
    ///@{
    bool serve_enabled = false;
    serve::PlaneCounters serve_counters;
    double serve_slo_attainment = 0;  ///< ok / (ok + late + dropped)
    bool serve_slo_unattainable = false; ///< demand > max-pool capacity
    ///@}

    /** Aggregate GPU-seconds actually charged across all jobs. */
    double total_gpu_seconds = 0;
    /** Aggregate minimal GPU-seconds (ideal service at requested scale). */
    double total_ideal_gpu_seconds = 0;

    /**
     * Terminal per-job records (id order is the collector's terminal-
     * event order). The sweep driver's determinism digests fold these,
     * so the full record set rides along with the aggregates.
     */
    std::vector<JobRecord> records;

    /** The objective-relevant summary terms (see ObjectiveInputs). */
    ObjectiveInputs objective_inputs() const;

    /** Raw samples for CDF figures. */
    Samples jct_samples;
    Samples wait_samples;
    /** Utilization fraction per bucket over [0, makespan]. */
    std::vector<double> utilization_series;
    /** Mean pending-queue depth per bucket over [0, makespan]. */
    std::vector<double> queue_depth_series;
};

/** Runs a scenario to completion and extracts the summary. */
ScenarioResult run_scenario(const ScenarioConfig &config);

/**
 * Arena-reuse variant: the stack adopts `arena`'s recycled allocations
 * (event slab, scheduler scratch) and donates them back after the run.
 * Sweep workers pass one thread-local arena across thousands of
 * scenarios. arena may be null (equivalent to the plain overload).
 */
ScenarioResult run_scenario(const ScenarioConfig &config,
                            StackArena *arena);

} // namespace tacc::core
