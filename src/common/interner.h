/**
 * @file
 * String interning: dense integer ids for recurring names.
 *
 * Scheduling touches accounting-group names on every decision (quota
 * checks, held-GPU tallies, fair-share lookups). Interning maps each
 * distinct name to a small dense id once, so hot paths index plain
 * vectors instead of hashing strings. Ids are assigned in first-seen
 * order and never recycled; name storage is stable for the interner's
 * lifetime, so returned references may be kept.
 */
#pragma once

#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>

namespace tacc {

/** Append-only string <-> dense-id table. */
class StringInterner
{
  public:
    StringInterner() = default;
    StringInterner(const StringInterner &) = delete;
    StringInterner &operator=(const StringInterner &) = delete;

    /** Id for the string, assigning the next dense id on first sight. */
    int intern(const std::string &s);

    /** The string for a previously assigned id. */
    const std::string &name(int id) const;

    /** Number of distinct strings interned so far. */
    int size() const;

    /** Process-wide table for accounting-group names. */
    static StringInterner &groups();
    /** Process-wide table for user names (runtime-estimator keys). */
    static StringInterner &users();
    /** Process-wide table for model/template names. */
    static StringInterner &models();

  private:
    mutable std::mutex mu_;
    std::unordered_map<std::string, int> ids_;
    /** Stable storage: deque never moves elements on growth. */
    std::deque<std::string> names_;
};

} // namespace tacc
