#include "common/status.h"

namespace tacc {

const char *
status_code_name(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "ok";
      case StatusCode::kInvalidArgument: return "invalid_argument";
      case StatusCode::kNotFound: return "not_found";
      case StatusCode::kAlreadyExists: return "already_exists";
      case StatusCode::kResourceExhausted: return "resource_exhausted";
      case StatusCode::kFailedPrecondition: return "failed_precondition";
      case StatusCode::kUnavailable: return "unavailable";
      case StatusCode::kInternal: return "internal";
    }
    return "unknown";
}

std::string
Status::str() const
{
    if (is_ok())
        return "ok";
    return std::string(status_code_name(code_)) + ": " + message_;
}

} // namespace tacc
