#include "common/proc.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace tacc {

size_t
peak_rss_bytes()
{
#if defined(__APPLE__)
    struct rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    return size_t(usage.ru_maxrss); // bytes on macOS
#elif defined(__unix__)
    struct rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    return size_t(usage.ru_maxrss) * 1024; // kilobytes on Linux
#else
    return 0;
#endif
}

} // namespace tacc
