/**
 * @file
 * Deterministic simulation time types.
 *
 * All simulation timing in TACC uses integer microseconds wrapped in the
 * strong types Duration and TimePoint. Integer time makes runs bit-exact
 * across platforms and lets events be ordered deterministically.
 */
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace tacc {

/** A signed span of simulated time with microsecond resolution. */
class Duration
{
  public:
    constexpr Duration() : us_(0) {}

    /** @name Named constructors */
    ///@{
    static constexpr Duration micros(int64_t v) { return Duration(v); }
    static constexpr Duration millis(int64_t v) { return Duration(v * 1000); }
    static constexpr Duration seconds(int64_t v)
    {
        return Duration(v * 1'000'000);
    }
    static constexpr Duration minutes(int64_t v) { return seconds(v * 60); }
    static constexpr Duration hours(int64_t v) { return minutes(v * 60); }
    static constexpr Duration days(int64_t v) { return hours(v * 24); }
    /** Builds a duration from fractional seconds (rounds to nearest us). */
    static Duration from_seconds(double s);
    static constexpr Duration zero() { return Duration(0); }
    static constexpr Duration max()
    {
        return Duration(std::numeric_limits<int64_t>::max());
    }
    ///@}

    constexpr int64_t to_micros() const { return us_; }
    constexpr int64_t to_millis() const { return us_ / 1000; }
    constexpr double to_seconds() const { return double(us_) / 1e6; }
    constexpr double to_hours() const { return to_seconds() / 3600.0; }

    constexpr bool is_zero() const { return us_ == 0; }
    constexpr bool is_negative() const { return us_ < 0; }

    constexpr Duration operator+(Duration o) const
    {
        return Duration(us_ + o.us_);
    }
    constexpr Duration operator-(Duration o) const
    {
        return Duration(us_ - o.us_);
    }
    constexpr Duration operator-() const { return Duration(-us_); }
    Duration &operator+=(Duration o) { us_ += o.us_; return *this; }
    Duration &operator-=(Duration o) { us_ -= o.us_; return *this; }
    constexpr Duration operator*(int64_t k) const { return Duration(us_ * k); }
    /** Disambiguates d * 4 (int converts to both int64_t and double). */
    constexpr Duration operator*(int k) const { return *this * int64_t(k); }
    /** Scales by a double, rounding to the nearest microsecond. */
    Duration operator*(double k) const;
    constexpr Duration operator/(int64_t k) const { return Duration(us_ / k); }
    /** Ratio of two durations as a double; o must be non-zero. */
    constexpr double operator/(Duration o) const
    {
        return double(us_) / double(o.us_);
    }

    constexpr auto operator<=>(const Duration &) const = default;

    /** Human-readable rendering, e.g. "3.5s", "2h05m", "120us". */
    std::string str() const;

  private:
    explicit constexpr Duration(int64_t us) : us_(us) {}
    int64_t us_;
};

/** An absolute instant on the simulation clock (microseconds from t=0). */
class TimePoint
{
  public:
    constexpr TimePoint() : us_(0) {}

    static constexpr TimePoint origin() { return TimePoint(0); }
    static constexpr TimePoint from_micros(int64_t v) { return TimePoint(v); }
    static constexpr TimePoint max()
    {
        return TimePoint(std::numeric_limits<int64_t>::max());
    }

    constexpr int64_t to_micros() const { return us_; }
    constexpr double to_seconds() const { return double(us_) / 1e6; }
    constexpr double to_hours() const { return to_seconds() / 3600.0; }

    constexpr TimePoint operator+(Duration d) const
    {
        return TimePoint(us_ + d.to_micros());
    }
    constexpr TimePoint operator-(Duration d) const
    {
        return TimePoint(us_ - d.to_micros());
    }
    constexpr Duration operator-(TimePoint o) const
    {
        return Duration::micros(us_ - o.us_);
    }
    TimePoint &operator+=(Duration d)
    {
        us_ += d.to_micros();
        return *this;
    }

    constexpr auto operator<=>(const TimePoint &) const = default;

    /** Rendering as "[ 123.456s]". */
    std::string str() const;

  private:
    explicit constexpr TimePoint(int64_t us) : us_(us) {}
    int64_t us_;
};

constexpr Duration
operator*(int64_t k, Duration d)
{
    return d * k;
}

namespace time_literals {

constexpr Duration operator""_us(unsigned long long v)
{
    return Duration::micros(int64_t(v));
}
constexpr Duration operator""_ms(unsigned long long v)
{
    return Duration::millis(int64_t(v));
}
constexpr Duration operator""_s(unsigned long long v)
{
    return Duration::seconds(int64_t(v));
}
constexpr Duration operator""_min(unsigned long long v)
{
    return Duration::minutes(int64_t(v));
}
constexpr Duration operator""_h(unsigned long long v)
{
    return Duration::hours(int64_t(v));
}

} // namespace time_literals
} // namespace tacc
