#include "common/table.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace tacc {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::set_header(std::vector<std::string> header)
{
    assert(rows_.empty() && "header must precede rows");
    header_ = std::move(header);
}

void
TextTable::add_row(std::vector<std::string> row)
{
    assert(header_.empty() || row.size() == header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int significant)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", significant, v);
    return buf;
}

std::string
TextTable::fixed(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
TextTable::pct(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

namespace {

bool
looks_numeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit((unsigned char)c) && c != '.' && c != '-' &&
            c != '+' && c != 'e' && c != 'E' && c != '%' && c != 'x') {
            return false;
        }
    }
    return true;
}

} // namespace

std::string
TextTable::str() const
{
    std::vector<size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    std::ostringstream os;
    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    auto emit_row = [&](const std::vector<std::string> &row, bool align) {
        for (size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < row.size() ? row[i] : std::string();
            const bool right = align && looks_numeric(cell);
            os << (i ? "  " : "");
            if (right)
                os << std::string(widths[i] - cell.size(), ' ') << cell;
            else
                os << cell << std::string(widths[i] - cell.size(), ' ');
        }
        os << '\n';
    };

    if (!header_.empty()) {
        emit_row(header_, false);
        size_t rule = 0;
        for (size_t w : widths)
            rule += w + 2;
        os << std::string(rule > 2 ? rule - 2 : rule, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit_row(row, true);
    return os.str();
}

std::string
TextTable::csv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ',';
            const bool quote =
                row[i].find_first_of(",\"\n") != std::string::npos;
            if (quote) {
                os << '"';
                for (char c : row[i]) {
                    if (c == '"')
                        os << '"';
                    os << c;
                }
                os << '"';
            } else {
                os << row[i];
            }
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

} // namespace tacc
