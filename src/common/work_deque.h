/**
 * @file
 * Chase–Lev work-stealing deque: the per-worker queue of the execution
 * backbone (see thread_pool.h and DESIGN.md "Execution backbone").
 *
 * One thread — the owner — pushes and pops at the *bottom* (LIFO), any
 * other thread steals from the *top* (FIFO). The combination is what
 * makes work stealing cheap: the owner's hot path never takes a lock,
 * touches only the bottom index, and keeps its freshest (cache-warm)
 * task; thieves drain the oldest (coldest) tasks and only contend with
 * the owner on the final element.
 *
 * Implementation notes:
 *  - This is the C11-formalized Chase–Lev algorithm (Lê/Pop/Cohen/
 *    Nardelli, "Correct and Efficient Work-Stealing for Weak Memory
 *    Models"), with every standalone memory fence replaced by the
 *    equivalent (strictly stronger) ordering on the operation itself.
 *    ThreadSanitizer models atomic operations but not standalone
 *    fences, so the fence-free formulation is what lets the CI
 *    `pool-stress` job prove the memory orders instead of drowning in
 *    false positives.
 *  - Slots are `std::atomic<T *>`: a thief may read a slot while the
 *    owner rewrites it after index wrap-around. The read value is only
 *    *used* if the subsequent CAS on `top` succeeds, which certifies
 *    the slot had not been reclaimed; the racy read itself is atomic,
 *    so it is defined behavior (and TSan-clean).
 *  - The ring grows when full (owner-only). Retired rings are kept
 *    alive until the deque is destroyed, so a thief holding a stale
 *    ring pointer dereferences valid (frozen) memory; its CAS then
 *    decides whether the value it read was current.
 *
 * The deque never owns the pointed-to items: callers hand over
 * ownership to whichever thread's pop()/steal() returns the pointer.
 */
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace tacc {

template <class T>
class WorkStealingDeque
{
  public:
    /** @param capacity initial ring size; rounded up to a power of 2. */
    explicit WorkStealingDeque(size_t capacity = 256)
    {
        size_t cap = 8;
        while (cap < capacity)
            cap *= 2;
        live_ = std::make_unique<Ring>(cap);
        ring_.store(live_.get(), std::memory_order_relaxed);
    }

    WorkStealingDeque(const WorkStealingDeque &) = delete;
    WorkStealingDeque &operator=(const WorkStealingDeque &) = delete;

    /**
     * Owner only: publishes an item at the bottom. Grows the ring when
     * full; the previous ring is retired, not freed, so concurrent
     * thieves stay memory-safe.
     */
    void
    push(T *item)
    {
        const int64_t b = bottom_.load(std::memory_order_relaxed);
        const int64_t t = top_.load(std::memory_order_acquire);
        Ring *ring = ring_.load(std::memory_order_relaxed);
        if (b - t >= int64_t(ring->cap))
            ring = grow(ring, t, b);
        ring->slot(b).store(item, std::memory_order_relaxed);
        // seq_cst rather than plain release: participates in the total
        // order the sleep protocol's sleeper-count handshake relies on
        // (see ThreadPool::maybe_wake).
        bottom_.store(b + 1, std::memory_order_seq_cst);
    }

    /**
     * Owner only: takes the most recently pushed item (LIFO), or
     * nullptr when empty. On the final element the owner races thieves
     * through a CAS on `top`; exactly one side wins.
     */
    T *
    pop()
    {
        const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
        Ring *ring = ring_.load(std::memory_order_relaxed);
        // The store must be ordered before the top load (the classic
        // seq_cst fence site): both seq_cst keeps the store-load pair
        // in the single total order.
        bottom_.store(b, std::memory_order_seq_cst);
        int64_t t = top_.load(std::memory_order_seq_cst);
        if (t > b) {
            // Already empty; restore the canonical empty state.
            bottom_.store(b + 1, std::memory_order_relaxed);
            return nullptr;
        }
        T *item = ring->slot(b).load(std::memory_order_relaxed);
        if (t == b) {
            // Last element: win it against thieves or lose it to one.
            if (!top_.compare_exchange_strong(
                    t, t + 1, std::memory_order_seq_cst,
                    std::memory_order_relaxed))
                item = nullptr;
            bottom_.store(b + 1, std::memory_order_relaxed);
        }
        return item;
    }

    /**
     * Any thread: claims the oldest item (FIFO), or nullptr when the
     * deque is empty *or* the claim race was lost (spurious failure —
     * callers treat it as "try elsewhere").
     */
    T *
    steal()
    {
        int64_t t = top_.load(std::memory_order_seq_cst);
        const int64_t b = bottom_.load(std::memory_order_seq_cst);
        if (t >= b)
            return nullptr;
        // Ring load ordered after the index loads: if bottom's value
        // came from a push that post-dates a grow, the acquire here is
        // guaranteed to see the new ring (grow publishes before the
        // owner ever advances bottom again). A stale ring is still
        // safe: it is frozen and retains slot `t`.
        Ring *ring = ring_.load(std::memory_order_acquire);
        T *item = ring->slot(t).load(std::memory_order_relaxed);
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
            return nullptr;
        return item;
    }

    /** Racy size estimate; exact when no other thread is mutating. */
    size_t
    size_approx() const
    {
        const int64_t b = bottom_.load(std::memory_order_acquire);
        const int64_t t = top_.load(std::memory_order_acquire);
        return b > t ? size_t(b - t) : 0;
    }

    bool
    empty_approx() const
    {
        return size_approx() == 0;
    }

    /** Ring growths so far (observability for tests/benches). */
    size_t
    growth_count() const
    {
        return retired_.size();
    }

  private:
    struct Ring {
        explicit Ring(size_t capacity)
            : cap(capacity),
              slots(std::make_unique<std::atomic<T *>[]>(capacity))
        {
            assert((cap & (cap - 1)) == 0 && "capacity not a power of 2");
        }
        std::atomic<T *> &
        slot(int64_t index)
        {
            return slots[size_t(index) & (cap - 1)];
        }
        const size_t cap;
        std::unique_ptr<std::atomic<T *>[]> slots;
    };

    /** Owner only: doubles the ring, copying the live range [t, b). */
    Ring *
    grow(Ring *old, int64_t t, int64_t b)
    {
        auto fresh = std::make_unique<Ring>(old->cap * 2);
        for (int64_t i = t; i < b; ++i) {
            fresh->slot(i).store(
                old->slot(i).load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        }
        Ring *raw = fresh.get();
        retired_.push_back(std::move(live_));
        live_ = std::move(fresh);
        ring_.store(raw, std::memory_order_release);
        return raw;
    }

    std::atomic<int64_t> top_{0};
    std::atomic<int64_t> bottom_{0};
    std::atomic<Ring *> ring_{nullptr};
    /** Current ring (owner-managed); ring_ mirrors live_.get(). */
    std::unique_ptr<Ring> live_;
    /** Outgrown rings, kept until destruction for thief memory-safety. */
    std::vector<std::unique_ptr<Ring>> retired_;
};

} // namespace tacc
