/**
 * @file
 * Statistics accumulators used throughout the evaluation harness.
 *
 * - RunningStats: O(1)-memory mean/variance/min/max (Welford).
 * - Samples: exact percentiles / CDF over retained samples.
 * - Histogram: fixed linear bins for distribution tables.
 * - QuantileSketch: O(1)-memory approximate percentiles (log buckets).
 * - TimeWeightedStat: time-integrated averages (e.g. GPU utilization).
 * - BoundedTimeWeighted: the same integral with O(makespan/bucket)
 *   memory instead of O(change points), for the streaming regime.
 * - jain_fairness / gini: cross-entity fairness indices.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"

namespace tacc {

/** Streaming mean/variance/min/max without retaining samples. */
class RunningStats
{
  public:
    void add(double x);

    size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Population variance; 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    size_t n_ = 0;
    double mean_ = 0;
    double m2_ = 0;
    double min_ = 0;
    double max_ = 0;
    double sum_ = 0;
};

/** Retains all samples; supports exact percentiles and CDF extraction. */
class Samples
{
  public:
    void add(double x);
    void add_duration(Duration d) { add(d.to_seconds()); }

    size_t count() const { return xs_.size(); }
    bool empty() const { return xs_.empty(); }
    double mean() const;
    double sum() const;
    double min() const;
    double max() const;

    /**
     * Exact percentile by linear interpolation between closest ranks.
     * @param p percentile in [0, 100].
     */
    double percentile(double p) const;

    double median() const { return percentile(50); }

    /**
     * Evaluation points of the empirical CDF: `points` pairs
     * (value, cumulative fraction), evenly spaced in rank.
     */
    std::vector<std::pair<double, double>> cdf(size_t points = 20) const;

    const std::vector<double> &values() const { return xs_; }

  private:
    void ensure_sorted() const;

    std::vector<double> xs_;
    mutable std::vector<double> sorted_;
    mutable bool dirty_ = false;
};

/** Fixed-width linear histogram over [lo, hi); outliers go to edge bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins);

    void add(double x);

    size_t bin_count() const { return counts_.size(); }
    uint64_t bin(size_t i) const { return counts_[i]; }
    /** Inclusive lower edge of bin i. */
    double bin_lo(size_t i) const;
    double bin_hi(size_t i) const;
    uint64_t total() const { return total_; }
    /** Fraction of mass in bin i (0 if empty histogram). */
    double fraction(size_t i) const;

  private:
    double lo_, hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/**
 * Streaming percentile sketch over positive values with O(1) memory.
 *
 * Values land in logarithmic buckets: 8 sub-buckets per octave across a
 * fixed exponent range (512 buckets total), so percentile queries carry
 * at most ~6.3% relative error regardless of sample count — the
 * million-job replacement for retaining every wait/JCT sample. Count,
 * sum, mean, min and max are exact (Welford accumulator alongside the
 * buckets). Non-positive values are counted exactly in a zero bucket.
 * Fully deterministic: same insertion multiset => same answers.
 */
class QuantileSketch
{
  public:
    void add(double x);

    size_t count() const { return stats_.count(); }
    bool empty() const { return stats_.count() == 0; }
    double mean() const { return stats_.mean(); }
    double sum() const { return stats_.sum(); }
    double min() const { return stats_.min(); }
    double max() const { return stats_.max(); }

    /**
     * Approximate percentile (p in [0, 100]): the representative value
     * of the bucket holding the target rank, clamped to [min, max].
     */
    double percentile(double p) const;

  private:
    /** Octaves cover 2^-17 .. 2^46 (~1e-5 s .. ~2000 years). */
    static constexpr int kMinExp = -16;
    static constexpr int kOctaves = 64;
    static constexpr int kSub = 8; ///< sub-buckets per octave

    RunningStats stats_;
    uint64_t zero_count_ = 0;
    uint64_t buckets_[size_t(kOctaves) * kSub] = {};
};

/**
 * Integrates a piecewise-constant signal over simulated time.
 *
 * Call set(t, v) whenever the signal changes; average(t0, t1) returns the
 * time-weighted mean over the window. Used for utilization and queue-depth
 * accounting.
 */
class TimeWeightedStat
{
  public:
    explicit TimeWeightedStat(double initial = 0.0);

    /** Records that the signal takes value v from time t onward. */
    void set(TimePoint t, double v);

    /** Adds delta to the current value at time t. */
    void add(TimePoint t, double delta);

    double current() const { return value_; }

    /** Time-weighted average over [t0, t1]; t1 must be >= last set time. */
    double average(TimePoint t0, TimePoint t1) const;

    /** Raw change points (time, new value), for timeline plots. */
    const std::vector<std::pair<TimePoint, double>> &
    change_points() const
    {
        return points_;
    }

    /**
     * Average per fixed-width bucket across [t0, t1] — the series behind
     * "utilization over the day" figures.
     */
    std::vector<double> bucket_averages(TimePoint t0, TimePoint t1,
                                        Duration bucket) const;

  private:
    double value_;
    std::vector<std::pair<TimePoint, double>> points_;
};

/**
 * TimeWeightedStat's flat-memory sibling for the streaming regime.
 *
 * Keeps a running integral plus fixed-width per-bucket integrals instead
 * of the full change-point list, so memory is O(makespan / bucket) —
 * bounded by simulated time, not by how many events changed the signal.
 * Averages are therefore only available from the origin forward (the
 * only window the scenario harness ever asks for). mark() snapshots the
 * integral at arrival instants so the arrival-window average survives
 * without replaying history.
 */
class BoundedTimeWeighted
{
  public:
    explicit BoundedTimeWeighted(double initial = 0.0,
                                 Duration bucket = Duration::hours(1));

    /** Records that the signal takes value v from time t onward. */
    void set(TimePoint t, double v);

    double current() const { return value_; }

    /** Snapshots the integral at t (call at each arrival; the last call
     *  wins and defines the arrival window [origin, t]). */
    void mark(TimePoint t);

    /** Time-weighted average over [origin, t1]; t1 >= last set time. */
    double average_to(TimePoint t1) const;

    /** Average over [origin, last mark]; 0 before the first mark. */
    double average_to_mark() const;

    /** Time of the last mark (the arrival-window end). */
    TimePoint mark_time() const { return mark_; }

    /** Average per fixed-width bucket across [origin, t1]. */
    std::vector<double> bucket_averages(TimePoint t1) const;

  private:
    void advance_to(TimePoint t);

    double value_;
    int64_t bucket_us_;
    TimePoint last_ = TimePoint::origin();
    double integral_ = 0;
    std::vector<double> bucket_integral_;
    TimePoint mark_ = TimePoint::origin();
    double mark_integral_ = 0;
};

/** Jain's fairness index over non-negative allocations; 1.0 == fair. */
double jain_fairness(const std::vector<double> &xs);

/** Gini coefficient over non-negative values; 0 == perfectly equal. */
double gini(std::vector<double> xs);

} // namespace tacc
