/**
 * @file
 * FNV-1a 64-bit hashing over a canonical byte encoding.
 *
 * Basis of the sweep driver's determinism digests: every value is folded
 * through an explicit fixed-width little-endian encoding, so a digest is
 * a pure function of the logical values — not of host endianness, struct
 * padding, or container layout. Strings are length-prefixed to keep the
 * encoding prefix-free.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace tacc {

/** Streaming FNV-1a 64 hasher with canonical value encoders. */
class Fnv1a
{
  public:
    static constexpr uint64_t kBasis = 14695981039346656037ull;
    static constexpr uint64_t kPrime = 1099511628211ull;

    constexpr Fnv1a() = default;
    explicit constexpr Fnv1a(uint64_t state) : h_(state) {}

    constexpr uint64_t value() const { return h_; }

    constexpr void
    byte(uint8_t b)
    {
        h_ = (h_ ^ uint64_t(b)) * kPrime;
    }

    /** Fixed 8-byte little-endian fold (the canonical integer form). */
    constexpr void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(uint8_t(v >> (8 * i)));
    }

    constexpr void i64(int64_t v) { u64(uint64_t(v)); }
    constexpr void u32(uint32_t v) { u64(uint64_t(v)); }
    constexpr void i32(int32_t v) { u64(uint64_t(int64_t(v))); }
    constexpr void boolean(bool v) { byte(v ? 1 : 0); }

    /** Length-prefixed string fold (prefix-free across fields). */
    void
    str(std::string_view s)
    {
        u64(uint64_t(s.size()));
        for (char c : s)
            byte(uint8_t(c));
    }

    /** 16 lowercase hex digits, the digest rendering in golden files. */
    static std::string
    hex(uint64_t v)
    {
        char buf[17];
        std::snprintf(buf, sizeof buf, "%016llx",
                      (unsigned long long)v);
        return std::string(buf, 16);
    }

  private:
    uint64_t h_ = kBasis;
};

} // namespace tacc
