#include "common/time.h"

#include <cmath>
#include <cstdio>

namespace tacc {

Duration
Duration::from_seconds(double s)
{
    return Duration(int64_t(std::llround(s * 1e6)));
}

Duration
Duration::operator*(double k) const
{
    return Duration(int64_t(std::llround(double(us_) * k)));
}

std::string
Duration::str() const
{
    char buf[64];
    const int64_t us = us_ < 0 ? -us_ : us_;
    const char *sign = us_ < 0 ? "-" : "";
    if (us < 1000) {
        std::snprintf(buf, sizeof(buf), "%s%lldus", sign, (long long)us);
    } else if (us < 1'000'000) {
        std::snprintf(buf, sizeof(buf), "%s%.3gms", sign, double(us) / 1e3);
    } else if (us < 60ll * 1'000'000) {
        std::snprintf(buf, sizeof(buf), "%s%.4gs", sign, double(us) / 1e6);
    } else if (us < 3600ll * 1'000'000) {
        const int64_t m = us / 60'000'000;
        const double s = double(us % 60'000'000) / 1e6;
        std::snprintf(buf, sizeof(buf), "%s%lldm%04.1fs", sign, (long long)m,
                      s);
    } else {
        const int64_t h = us / 3'600'000'000ll;
        const int64_t m = (us / 60'000'000) % 60;
        std::snprintf(buf, sizeof(buf), "%s%lldh%02lldm", sign, (long long)h,
                      (long long)m);
    }
    return buf;
}

std::string
TimePoint::str() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%12.6fs]", to_seconds());
    return buf;
}

} // namespace tacc
