/**
 * @file
 * Small string utilities shared across modules.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tacc {

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Splits on a delimiter; empty fields are preserved. */
std::vector<std::string> split(std::string_view s, char delim);

/** Joins with a separator. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** Strips leading/trailing ASCII whitespace. */
std::string_view trim(std::string_view s);

/** True if s starts with prefix. */
bool starts_with(std::string_view s, std::string_view prefix);

/** Human-readable byte count, e.g. "1.50 GiB". */
std::string format_bytes(uint64_t bytes);

/** Human-readable bandwidth from bytes/second, e.g. "12.5 Gbps". */
std::string format_gbps(double bytes_per_second);

} // namespace tacc
