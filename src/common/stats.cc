#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tacc {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / double(n_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
Samples::add(double x)
{
    xs_.push_back(x);
    dirty_ = true;
}

double
Samples::mean() const
{
    if (xs_.empty())
        return 0.0;
    return sum() / double(xs_.size());
}

double
Samples::sum() const
{
    double s = 0;
    for (double x : xs_)
        s += x;
    return s;
}

double
Samples::min() const
{
    ensure_sorted();
    return sorted_.empty() ? 0.0 : sorted_.front();
}

double
Samples::max() const
{
    ensure_sorted();
    return sorted_.empty() ? 0.0 : sorted_.back();
}

double
Samples::percentile(double p) const
{
    ensure_sorted();
    if (sorted_.empty())
        return 0.0;
    assert(p >= 0.0 && p <= 100.0);
    if (sorted_.size() == 1)
        return sorted_[0];
    const double rank = p / 100.0 * double(sorted_.size() - 1);
    const size_t lo = size_t(rank);
    const size_t hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = rank - double(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>>
Samples::cdf(size_t points) const
{
    ensure_sorted();
    std::vector<std::pair<double, double>> out;
    if (sorted_.empty() || points == 0)
        return out;
    out.reserve(points);
    for (size_t i = 1; i <= points; ++i) {
        const double frac = double(i) / double(points);
        const size_t idx =
            std::min(sorted_.size() - 1,
                     size_t(std::ceil(frac * double(sorted_.size())) - 1));
        out.emplace_back(sorted_[idx], frac);
    }
    return out;
}

void
Samples::ensure_sorted() const
{
    if (dirty_ || sorted_.size() != xs_.size()) {
        sorted_ = xs_;
        std::sort(sorted_.begin(), sorted_.end());
        dirty_ = false;
    }
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    assert(hi > lo && bins > 0);
}

void
Histogram::add(double x)
{
    const double width = (hi_ - lo_) / double(counts_.size());
    int64_t idx = int64_t(std::floor((x - lo_) / width));
    idx = std::clamp<int64_t>(idx, 0, int64_t(counts_.size()) - 1);
    ++counts_[size_t(idx)];
    ++total_;
}

double
Histogram::bin_lo(size_t i) const
{
    const double width = (hi_ - lo_) / double(counts_.size());
    return lo_ + width * double(i);
}

double
Histogram::bin_hi(size_t i) const
{
    return bin_lo(i + 1);
}

double
Histogram::fraction(size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return double(counts_[i]) / double(total_);
}

void
QuantileSketch::add(double x)
{
    stats_.add(x);
    if (!(x > 0)) {
        ++zero_count_;
        return;
    }
    int exp = 0;
    const double m = std::frexp(x, &exp); // x = m * 2^exp, m in [0.5, 1)
    const int sub = std::min(kSub - 1, int((m - 0.5) * 2.0 * kSub));
    const int octave =
        std::clamp(exp - kMinExp, 0, kOctaves - 1);
    ++buckets_[size_t(octave) * kSub + size_t(sub)];
}

double
QuantileSketch::percentile(double p) const
{
    assert(p >= 0.0 && p <= 100.0);
    const uint64_t n = stats_.count();
    if (n == 0)
        return 0.0;
    // Target rank mirrors Samples::percentile's closest-rank scheme
    // (without interpolation: buckets already quantize the value).
    const uint64_t target =
        uint64_t(p / 100.0 * double(n - 1)) + 1;
    if (target <= zero_count_)
        return 0.0;
    uint64_t cum = zero_count_;
    for (size_t i = 0; i < size_t(kOctaves) * kSub; ++i) {
        cum += buckets_[i];
        if (cum >= target) {
            const int octave = int(i) / kSub;
            const int sub = int(i) % kSub;
            // Representative value: the sub-bucket midpoint.
            const double m =
                0.5 + (double(sub) + 0.5) / double(2 * kSub);
            const double v = std::ldexp(m, octave + kMinExp);
            return std::clamp(v, stats_.min(), stats_.max());
        }
    }
    return stats_.max();
}

TimeWeightedStat::TimeWeightedStat(double initial) : value_(initial)
{
    points_.emplace_back(TimePoint::origin(), initial);
}

void
TimeWeightedStat::set(TimePoint t, double v)
{
    assert(points_.empty() || t >= points_.back().first);
    if (!points_.empty() && points_.back().first == t) {
        points_.back().second = v;
    } else {
        points_.emplace_back(t, v);
    }
    value_ = v;
}

void
TimeWeightedStat::add(TimePoint t, double delta)
{
    set(t, value_ + delta);
}

double
TimeWeightedStat::average(TimePoint t0, TimePoint t1) const
{
    if (t1 <= t0)
        return value_;
    double integral = 0;
    for (size_t i = 0; i < points_.size(); ++i) {
        const TimePoint seg_start = std::max(points_[i].first, t0);
        const TimePoint seg_end =
            i + 1 < points_.size() ? std::min(points_[i + 1].first, t1) : t1;
        if (seg_end > seg_start)
            integral += points_[i].second * (seg_end - seg_start).to_seconds();
    }
    return integral / (t1 - t0).to_seconds();
}

std::vector<double>
TimeWeightedStat::bucket_averages(TimePoint t0, TimePoint t1,
                                  Duration bucket) const
{
    std::vector<double> out;
    assert(!bucket.is_zero() && !bucket.is_negative());
    for (TimePoint t = t0; t < t1; t += bucket) {
        const TimePoint end = std::min(t + bucket, t1);
        out.push_back(average(t, end));
    }
    return out;
}

BoundedTimeWeighted::BoundedTimeWeighted(double initial, Duration bucket)
    : value_(initial), bucket_us_(bucket.to_micros())
{
    assert(bucket_us_ > 0);
}

void
BoundedTimeWeighted::advance_to(TimePoint t)
{
    assert(t >= last_);
    int64_t from_us = last_.to_micros();
    const int64_t to_us = t.to_micros();
    // Spread the constant segment across the buckets it covers.
    while (from_us < to_us) {
        const size_t bucket = size_t(from_us / bucket_us_);
        if (bucket >= bucket_integral_.size())
            bucket_integral_.resize(bucket + 1, 0.0);
        const int64_t bucket_end = int64_t(bucket + 1) * bucket_us_;
        const int64_t seg_us = std::min(to_us, bucket_end) - from_us;
        bucket_integral_[bucket] += value_ * double(seg_us) / 1e6;
        from_us += seg_us;
    }
    integral_ += value_ * double(to_us - last_.to_micros()) / 1e6;
    last_ = t;
}

void
BoundedTimeWeighted::set(TimePoint t, double v)
{
    advance_to(t);
    value_ = v;
}

void
BoundedTimeWeighted::mark(TimePoint t)
{
    advance_to(t);
    mark_ = t;
    mark_integral_ = integral_;
}

double
BoundedTimeWeighted::average_to(TimePoint t1) const
{
    if (t1 <= TimePoint::origin())
        return value_;
    assert(t1 >= last_);
    const double integral =
        integral_ + value_ * (t1 - last_).to_seconds();
    return integral / t1.to_seconds();
}

double
BoundedTimeWeighted::average_to_mark() const
{
    if (mark_ <= TimePoint::origin())
        return 0.0;
    return mark_integral_ / mark_.to_seconds();
}

std::vector<double>
BoundedTimeWeighted::bucket_averages(TimePoint t1) const
{
    std::vector<double> out;
    if (t1 <= TimePoint::origin())
        return out;
    const int64_t t1_us = t1.to_micros();
    const size_t buckets = size_t((t1_us + bucket_us_ - 1) / bucket_us_);
    out.reserve(buckets);
    for (size_t i = 0; i < buckets; ++i) {
        const int64_t lo = int64_t(i) * bucket_us_;
        const int64_t hi = std::min(t1_us, int64_t(i + 1) * bucket_us_);
        double integral =
            i < bucket_integral_.size() ? bucket_integral_[i] : 0.0;
        // The signal has been constant at value_ since last_; extend the
        // stored integrals over any uncovered tail of this bucket.
        const int64_t tail_lo = std::max(lo, last_.to_micros());
        if (hi > tail_lo)
            integral += value_ * double(hi - tail_lo) / 1e6;
        out.push_back(integral / (double(hi - lo) / 1e6));
    }
    return out;
}

double
jain_fairness(const std::vector<double> &xs)
{
    if (xs.empty())
        return 1.0;
    double sum = 0, sum_sq = 0;
    for (double x : xs) {
        sum += x;
        sum_sq += x * x;
    }
    if (sum_sq == 0)
        return 1.0;
    return (sum * sum) / (double(xs.size()) * sum_sq);
}

double
gini(std::vector<double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    std::sort(xs.begin(), xs.end());
    double cum = 0, weighted = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
        cum += xs[i];
        weighted += xs[i] * double(i + 1);
    }
    if (cum == 0)
        return 0.0;
    const double n = double(xs.size());
    return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
}

} // namespace tacc
