#include "common/interner.h"

#include <cassert>

namespace tacc {

int
StringInterner::intern(const std::string &s)
{
    std::lock_guard lock(mu_);
    auto [it, inserted] = ids_.try_emplace(s, int(names_.size()));
    if (inserted)
        names_.push_back(s);
    return it->second;
}

const std::string &
StringInterner::name(int id) const
{
    std::lock_guard lock(mu_);
    assert(id >= 0 && size_t(id) < names_.size());
    return names_[size_t(id)];
}

int
StringInterner::size() const
{
    std::lock_guard lock(mu_);
    return int(names_.size());
}

StringInterner &
StringInterner::groups()
{
    static StringInterner table;
    return table;
}

StringInterner &
StringInterner::users()
{
    static StringInterner table;
    return table;
}

StringInterner &
StringInterner::models()
{
    static StringInterner table;
    return table;
}

} // namespace tacc
