/**
 * @file
 * Process introspection helpers for the perf harness.
 */
#pragma once

#include <cstddef>

namespace tacc {

/**
 * Peak resident-set size of the calling process in bytes, as reported
 * by the OS (ru_maxrss). Monotone over the process lifetime — useful
 * for "did this phase grow the high-water mark" deltas, not for
 * instantaneous usage. Returns 0 on platforms without getrusage.
 */
size_t peak_rss_bytes();

} // namespace tacc
