/**
 * @file
 * Deterministic random number generation for simulation.
 *
 * TACC simulations must be reproducible given a seed, so we avoid
 * std::default_random_engine (implementation-defined) and implement
 * xoshiro256** seeded via SplitMix64, plus the distributions the workload
 * generator needs (exponential, lognormal, Pareto, Zipf, ...). All methods
 * are deterministic across platforms.
 */
#pragma once

#include <cstdint>
#include <cstddef>
#include <cassert>
#include <vector>

namespace tacc {

/** SplitMix64 step; used for seeding and as a cheap hash. */
uint64_t split_mix64(uint64_t &state);

/** Deterministic PRNG (xoshiro256**) with simulation-oriented helpers. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed'cafe'f00d'd00dULL);

    /** Next raw 64-bit value. */
    uint64_t next_u64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive); requires lo <= hi. */
    int64_t uniform_int(int64_t lo, int64_t hi);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /** Exponential with the given mean (= 1/rate). */
    double exponential(double mean);

    /** Lognormal: exp(N(mu, sigma^2)). */
    double lognormal(double mu, double sigma);

    /** Standard normal via Box-Muller (deterministic, no cached spare). */
    double normal(double mean, double stddev);

    /**
     * Pareto (heavy-tailed) with minimum x_m and shape alpha.
     * Mean exists only for alpha > 1.
     */
    double pareto(double x_m, double alpha);

    /**
     * Zipf-distributed rank in [1, n] with exponent s, by inversion over
     * the precomputable normalizer. O(n) per call for small n; callers with
     * large n should use ZipfSampler.
     */
    int64_t zipf(int64_t n, double s);

    /**
     * Samples an index in [0, weights.size()) proportionally to weights.
     * Requires a non-empty vector with a positive total weight.
     */
    size_t weighted_index(const std::vector<double> &weights);

    /** Picks a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        assert(!v.empty());
        return v[size_t(uniform_int(0, int64_t(v.size()) - 1))];
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = size_t(uniform_int(0, int64_t(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Forks an independent, deterministically derived stream. */
    Rng fork(uint64_t stream_id);

  private:
    uint64_t s_[4];
};

/** Precomputed-CDF Zipf sampler for repeated draws over large domains. */
class ZipfSampler
{
  public:
    ZipfSampler(int64_t n, double s);

    /** Rank in [1, n]. */
    int64_t operator()(Rng &rng) const;

    int64_t domain() const { return int64_t(cdf_.size()); }

  private:
    std::vector<double> cdf_;
};

} // namespace tacc
