#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace tacc {

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(size_t(n));
        std::vsnprintf(out.data(), size_t(n) + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        const size_t pos = s.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            break;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string_view
trim(std::string_view s)
{
    size_t b = 0, e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' ||
                     s[b] == '\r')) {
        ++b;
    }
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' ||
                     s[e - 1] == '\n' || s[e - 1] == '\r')) {
        --e;
    }
    return s.substr(b, e - b);
}

bool
starts_with(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
format_bytes(uint64_t bytes)
{
    static const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
    double v = double(bytes);
    size_t u = 0;
    while (v >= 1024.0 && u + 1 < sizeof(units) / sizeof(units[0])) {
        v /= 1024.0;
        ++u;
    }
    return strfmt(u == 0 ? "%.0f %s" : "%.2f %s", v, units[u]);
}

std::string
format_gbps(double bytes_per_second)
{
    return strfmt("%.2f Gbps", bytes_per_second * 8.0 / 1e9);
}

} // namespace tacc
