#include "common/thread_pool.h"

#include <algorithm>
#include <cassert>

#if defined(__linux__)
#include <sched.h>
#endif

namespace tacc {

namespace detail {

void
BulkState::run_chunk() noexcept
{
    for (;;) {
        const size_t index = next.fetch_add(1, std::memory_order_relaxed);
        if (index >= n)
            return;
        try {
            invoke(index);
        } catch (...) {
            std::lock_guard lock(mu);
            if (!error)
                error = std::current_exception();
        }
        if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
            std::lock_guard lock(mu);
            done = true;
            done_cv.notify_all();
        }
    }
}

void
BulkState::wait()
{
    std::unique_lock lock(mu);
    done_cv.wait(lock, [this] { return done; });
    if (error) {
        std::exception_ptr first = std::exchange(error, nullptr);
        lock.unlock();
        std::rethrow_exception(first);
    }
}

void
BulkState::wait_nothrow()
{
    std::unique_lock lock(mu);
    done_cv.wait(lock, [this] { return done; });
}

namespace {

/** Which pool (if any) owns the current thread, for submit routing. */
thread_local void *tls_pool = nullptr;
thread_local int tls_worker = -1;

/** xorshift64: cheap per-worker randomness for the steal start. */
uint64_t
next_rand(uint64_t &state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

/** Largest injection batch one worker transfers to its deque. */
constexpr size_t kMaxInjectBatch = 32;

} // namespace
} // namespace detail

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0)
        threads = hardware_threads();
    workers_.reserve(size_t(threads));
    for (int i = 0; i < threads; ++i) {
        auto worker = std::make_unique<Worker>();
        // Deterministic, distinct steal streams (splitmix-style mix).
        worker->steal_rng = 0x9e3779b97f4a7c15ULL * uint64_t(i + 1) + 1;
        workers_.push_back(std::move(worker));
    }
    threads_.reserve(size_t(threads));
    for (int i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lock(inject_mu_);
        stopping_ = true;
        ++epoch_;
    }
    wake_cv_.notify_all();
    for (auto &thread : threads_)
        thread.join();
    assert(inject_.empty() && "workers exited with tasks still queued");
    for ([[maybe_unused]] const auto &worker : workers_)
        assert(worker->deque.empty_approx() &&
               "workers exited with deque tasks pending");
}

int
ThreadPool::hardware_threads()
{
    int n = int(std::thread::hardware_concurrency());
#if defined(__linux__)
    // A cgroup/affinity-limited container often advertises every host
    // CPU through hardware_concurrency while the scheduler only ever
    // runs us on a few; sizing to the affinity mask stops the pool
    // oversubscribing CI runners.
    cpu_set_t allowed;
    CPU_ZERO(&allowed);
    if (sched_getaffinity(0, sizeof(allowed), &allowed) == 0) {
        const int usable = CPU_COUNT(&allowed);
        if (usable > 0 && (n <= 0 || usable < n))
            n = usable;
    }
#endif
    return n <= 0 ? 1 : n;
}

void
ThreadPool::dispatch(detail::TaskNode *node)
{
    if (detail::tls_pool == this) {
        // Worker-local submission: straight into our own deque (LIFO);
        // wake a thief only if someone is actually asleep.
        workers_[size_t(detail::tls_worker)]->deque.push(node);
        maybe_wake();
        return;
    }
    post(node);
}

void
ThreadPool::post(detail::TaskNode *node)
{
    {
        std::lock_guard lock(inject_mu_);
        assert(!stopping_ && "submit() on a stopping ThreadPool");
        inject_.push_back(node);
        ++epoch_;
    }
    injected_.fetch_add(1, std::memory_order_relaxed);
    wake_cv_.notify_one();
}

void
ThreadPool::post_bulk(std::shared_ptr<detail::BulkState> state,
                      size_t fanout)
{
    struct BulkNode final : detail::TaskNode {
        explicit BulkNode(std::shared_ptr<detail::BulkState> s)
            : state(std::move(s))
        {
        }
        void
        run() noexcept override
        {
            state->run_chunk();
        }
        std::shared_ptr<detail::BulkState> state;
    };

    {
        std::lock_guard lock(inject_mu_);
        assert(!stopping_ && "submit_bulk() on a stopping ThreadPool");
        for (size_t i = 0; i < fanout; ++i)
            inject_.push_back(new BulkNode(state));
        ++epoch_;
    }
    injected_.fetch_add(fanout, std::memory_order_relaxed);
    wake_cv_.notify_all();
}

void
ThreadPool::maybe_wake()
{
    // seq_cst pairs with the sleeper's fetch_add-then-rescan: either we
    // observe the sleeper (and bump the epoch), or our enqueue is
    // ordered before its increment and the sleeper's re-scan finds the
    // task itself. Either way no task waits on a sleeping pool.
    if (sleepers_.load(std::memory_order_seq_cst) == 0)
        return;
    {
        std::lock_guard lock(inject_mu_);
        ++epoch_;
    }
    wake_cv_.notify_one();
}

bool
ThreadPool::all_deques_empty() const
{
    for (const auto &worker : workers_) {
        if (!worker->deque.empty_approx())
            return false;
    }
    return true;
}

bool
ThreadPool::run_one(int index)
{
    Worker &self = *workers_[size_t(index)];
    detail::TaskNode *node = self.deque.pop();

    if (!node) {
        // Injection queue: transfer a batch under one lock hold. The
        // first task runs now; the rest are pushed in reverse so the
        // LIFO pops that follow replay the original FIFO order.
        detail::TaskNode *batch[detail::kMaxInjectBatch];
        size_t taken = 0;
        {
            std::lock_guard lock(inject_mu_);
            if (!inject_.empty()) {
                size_t want = inject_.size() / workers_.size();
                want = std::clamp<size_t>(want, 1,
                                          detail::kMaxInjectBatch);
                want = std::min(want, inject_.size());
                for (; taken < want; ++taken) {
                    batch[taken] = inject_.front();
                    inject_.pop_front();
                }
            }
        }
        if (taken > 0) {
            for (size_t i = taken; i-- > 1;)
                self.deque.push(batch[i]);
            if (taken > 1)
                maybe_wake();
            node = batch[0];
        }
    }

    if (!node && workers_.size() > 1) {
        // Steal FIFO from a random victim; one full sweep per scan
        // (failed CAS races just fall through to the next victim).
        const size_t n = workers_.size();
        const size_t start =
            size_t(detail::next_rand(self.steal_rng) % uint64_t(n));
        for (size_t k = 0; k < n && !node; ++k) {
            const size_t victim = (start + k) % n;
            if (victim == size_t(index))
                continue;
            node = workers_[victim]->deque.steal();
        }
        if (node)
            self.stolen.fetch_add(1, std::memory_order_relaxed);
    }

    if (!node)
        return false;
    node->run();
    delete node;
    self.executed.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
ThreadPool::worker_loop(int index)
{
    detail::tls_pool = this;
    detail::tls_worker = index;

    for (;;) {
        if (run_one(index))
            continue;

        std::unique_lock lock(inject_mu_);
        if (stopping_) {
            // Drain-on-destruct: leave only after observing every
            // queue empty. A non-empty deque means its owner (or a
            // thief — us, next scan) still has work to run.
            if (inject_.empty() && all_deques_empty())
                return;
            lock.unlock();
            std::this_thread::yield();
            continue;
        }
        const uint64_t seen = epoch_;
        lock.unlock();

        // Sleep handshake: announce intent, re-scan, then block. Any
        // enqueue after the announcement either sees sleepers_ > 0 and
        // bumps the epoch (waking us) or is ordered before it, in
        // which case this re-scan finds the task.
        sleepers_.fetch_add(1, std::memory_order_seq_cst);
        if (run_one(index)) {
            sleepers_.fetch_sub(1, std::memory_order_relaxed);
            continue;
        }
        lock.lock();
        wake_cv_.wait(lock, [&] { return stopping_ || epoch_ != seen; });
        sleepers_.fetch_sub(1, std::memory_order_relaxed);
    }
}

ThreadPool::Stats
ThreadPool::stats() const
{
    Stats stats;
    for (const auto &worker : workers_) {
        stats.executed +=
            worker->executed.load(std::memory_order_relaxed);
        stats.stolen += worker->stolen.load(std::memory_order_relaxed);
    }
    stats.injected = injected_.load(std::memory_order_relaxed);
    return stats;
}

} // namespace tacc
