#include "common/thread_pool.h"

#include <cassert>

namespace tacc {

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0)
        threads = hardware_threads();
    workers_.reserve(size_t(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lock(mu_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (auto &worker : workers_)
        worker.join();
    assert(queue_.empty() && "workers exited with tasks still queued");
}

int
ThreadPool::hardware_threads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : int(n);
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard lock(mu_);
        assert(!stopping_ && "submit() on a stopping ThreadPool");
        queue_.push_back(std::move(task));
    }
    work_ready_.notify_one();
}

void
ThreadPool::worker_loop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mu_);
            work_ready_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and fully drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // Exceptions are captured by the packaged_task wrapper from
        // submit(); a raw post()ed task must not throw.
        task();
    }
}

} // namespace tacc
