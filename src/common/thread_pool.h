/**
 * @file
 * Fixed-size thread pool for coarse-grained parallel work.
 *
 * Deliberately minimal — one mutex-guarded FIFO queue and N workers, no
 * work stealing. The intended tasks are whole simulation runs (seconds
 * each), so queue contention is negligible and the simple design keeps
 * the pool easy to reason about under ThreadSanitizer.
 *
 * Guarantees:
 *  - every task submitted before destruction runs to completion: the
 *    destructor drains the queue, then joins (no work lost on shutdown);
 *  - exceptions thrown by a task surface through the std::future
 *    returned by submit(), never on the worker thread;
 *  - tasks from one submitter start in submission order (FIFO).
 */
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace tacc {

class ThreadPool
{
  public:
    /** @param threads worker count; <= 0 uses hardware_threads(). */
    explicit ThreadPool(int threads = 0);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int size() const { return int(workers_.size()); }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static int hardware_threads();

    /**
     * Enqueues fn for execution; the future delivers its result or
     * rethrows its exception. Must not be called during/after
     * destruction.
     */
    template <class F>
    auto
    submit(F fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::move(fn));
        std::future<R> result = task->get_future();
        post([task] { (*task)(); });
        return result;
    }

  private:
    void post(std::function<void()> task);
    void worker_loop();

    std::mutex mu_;
    std::condition_variable work_ready_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace tacc
