/**
 * @file
 * Work-stealing thread pool — the execution backbone behind the sweep,
 * tune, and bench drivers.
 *
 * The first-generation pool was one mutex-guarded FIFO on the theory
 * that tasks are whole simulation runs (seconds each) and queue
 * contention therefore negligible. That stopped being true: streaming
 * retention (T17) made cheap scenarios common, the power grid runs 192
 * of them, and the auto-tuner fans hundreds of sub-second candidate
 * evaluations through the pool — at 10k+-scenario grids the single
 * lock is the measured bottleneck (see EXPERIMENTS.md T19).
 *
 * Architecture (details in DESIGN.md "Execution backbone"):
 *  - one Chase–Lev deque per worker (common/work_deque.h): the owner
 *    pushes/pops LIFO at the bottom, thieves steal FIFO from the top;
 *  - a global injection queue for external submitters; workers drain
 *    it in batches into their own deque (amortizing the lock), in an
 *    order that preserves per-submitter FIFO on a single worker;
 *  - randomized steal order: each worker scans victims starting from a
 *    per-worker xorshift draw, so thieves spread instead of convoying;
 *  - an epoch-counted sleep protocol: idle workers snapshot a wake
 *    epoch, re-scan every queue, and only then block on the condition
 *    variable — any enqueue bumps the epoch, closing the lost-wakeup
 *    window without a spinning pool.
 *
 * Guarantees (the relaxed contract; property-tested in
 * tests/test_pool_property.cc):
 *  - drain-on-destruct: every task submitted before destruction runs
 *    to completion — the destructor wakes all workers, each exits only
 *    after observing the injection queue and every deque empty;
 *  - exceptions thrown by a task surface through the std::future from
 *    submit() or the wait() of its BulkTasks group, never on the
 *    worker thread;
 *  - per-submitter ordering is *relaxed*: with a single worker, tasks
 *    from one external submitter still start in submission order; with
 *    several workers, stealing may start them out of order. Tasks
 *    submitted from inside a worker run LIFO and take priority over
 *    injected work on that worker. Nothing may depend on cross-task
 *    execution order for correctness (the sweep/tune drivers write to
 *    indexed slots precisely so that order is irrelevant).
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/work_deque.h"

namespace tacc {

namespace detail {

/** A unit of pool work; exactly one thread runs then deletes it. */
struct TaskNode {
    virtual ~TaskNode() = default;
    /** Must not throw: wrappers capture into futures / group state. */
    virtual void run() noexcept = 0;
};

/** submit() node: one allocation carrying the packaged_task inline. */
template <class F, class R>
struct FutureNode final : TaskNode {
    explicit FutureNode(F fn) : task(std::move(fn)) {}
    void
    run() noexcept override
    {
        task(); // packaged_task captures any exception for the future
    }
    std::packaged_task<R()> task;
};

/**
 * Shared state of one submit_bulk() call: an atomic index dispenser.
 * Each of the O(workers) chunk nodes loops claiming indices, so a grid
 * of N scenarios costs N atomic increments instead of N heap-allocated
 * packaged_tasks through a lock.
 */
struct BulkState {
    virtual ~BulkState() = default;
    /** Runs one index; may throw (first exception is recorded). */
    virtual void invoke(size_t index) = 0;

    /** Chunk-runner loop: claim indices until the dispenser is dry. */
    void run_chunk() noexcept;
    /** Blocks until every index completed; rethrows the first error. */
    void wait();
    /** wait() without the rethrow (destructor path). */
    void wait_nothrow();

    size_t n = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    std::mutex mu;
    std::condition_variable done_cv;
    bool done = false;               // guarded by mu
    std::exception_ptr error;        // guarded by mu; first thrower wins
};

template <class F>
struct BulkStateT final : BulkState {
    explicit BulkStateT(F f) : fn(std::move(f)) {}
    void
    invoke(size_t index) override
    {
        fn(index);
    }
    F fn;
};

} // namespace detail

class ThreadPool
{
  public:
    /** @param threads worker count; <= 0 uses hardware_threads(). */
    explicit ThreadPool(int threads = 0);

    /** Drains every queued task (injection + all deques), then joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int size() const { return int(threads_.size()); }

    /**
     * Usable parallelism with a floor of 1: hardware_concurrency,
     * clamped to the CPUs this process may actually run on
     * (sched_getaffinity) — in a cgroup/affinity-limited CI container
     * the two differ, and the clamp stops the pool oversubscribing.
     */
    static int hardware_threads();

    /**
     * Enqueues fn for execution; the future delivers its result or
     * rethrows its exception. Must not be called during/after
     * destruction. Called from a worker thread, the task goes to that
     * worker's own deque (LIFO) instead of the injection queue.
     */
    template <class F>
    auto
    submit(F fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto *node = new detail::FutureNode<F, R>(std::move(fn));
        std::future<R> result = node->task.get_future();
        dispatch(node);
        return result;
    }

    /**
     * Handle to one submit_bulk() group (the task-group path).
     * wait() blocks until every index ran and rethrows the first
     * exception; the destructor waits without rethrowing.
     */
    class BulkTasks
    {
      public:
        BulkTasks(BulkTasks &&) noexcept = default;
        BulkTasks &operator=(BulkTasks &&) noexcept = default;
        ~BulkTasks()
        {
            if (state_)
                state_->wait_nothrow();
        }
        void
        wait()
        {
            if (state_) {
                auto state = std::move(state_);
                state->wait();
            }
        }

      private:
        friend class ThreadPool;
        explicit BulkTasks(std::shared_ptr<detail::BulkState> state)
            : state_(std::move(state))
        {
        }
        std::shared_ptr<detail::BulkState> state_;
    };

    /**
     * Runs fn(0) .. fn(n-1) on the pool without per-index allocations:
     * min(n, size()) chunk-runner nodes share an atomic index
     * dispenser. Indices may run in any order and on any worker — the
     * caller must write results into per-index slots. The first
     * exception is recorded (remaining indices still run) and rethrown
     * by wait(). Must be called from outside the pool: wait() on a
     * worker thread could deadlock.
     */
    template <class F>
    BulkTasks
    submit_bulk(size_t n, F fn)
    {
        auto state = std::make_shared<detail::BulkStateT<F>>(std::move(fn));
        state->n = n;
        if (n == 0) {
            state->done = true;
            return BulkTasks(std::move(state));
        }
        post_bulk(state, std::min(n, size_t(size())));
        return BulkTasks(std::move(state));
    }

    /** Monotonic counters since construction (informational; the
     *  executed count may trail a just-completed future by a beat). */
    struct Stats {
        uint64_t executed = 0; ///< tasks run to completion
        uint64_t stolen = 0;   ///< tasks taken from another worker
        uint64_t injected = 0; ///< tasks that entered via the queue
    };
    Stats stats() const;

  private:
    /** Per-worker state; stable address (unique_ptr) for thieves. */
    struct Worker {
        WorkStealingDeque<detail::TaskNode> deque;
        uint64_t steal_rng = 0;
        std::atomic<uint64_t> executed{0};
        std::atomic<uint64_t> stolen{0};
    };

    void dispatch(detail::TaskNode *node);
    void post(detail::TaskNode *node);
    void post_bulk(std::shared_ptr<detail::BulkState> state,
                   size_t fanout);
    void worker_loop(int index);
    /** One scan (own deque, injection batch, steal); runs the task. */
    bool run_one(int index);
    bool all_deques_empty() const;
    void maybe_wake();

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    /** Guards inject_, epoch_, stopping_ and pairs with wake_cv_. */
    mutable std::mutex inject_mu_;
    std::condition_variable wake_cv_;
    std::deque<detail::TaskNode *> inject_;
    uint64_t epoch_ = 0;
    bool stopping_ = false;
    /** Workers inside the sleep handshake (seq_cst, see maybe_wake). */
    std::atomic<int> sleepers_{0};
    std::atomic<uint64_t> injected_{0};
};

} // namespace tacc
