#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace tacc {

namespace {

/** Atomic: parallel sweep workers read the level while a main thread
 *  may (re)configure it. */
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char *
level_tag(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DBG";
      case LogLevel::kInfo: return "INF";
      case LogLevel::kWarn: return "WRN";
      case LogLevel::kError: return "ERR";
      case LogLevel::kOff: return "OFF";
    }
    return "???";
}

} // namespace

void
Log::set_level(LogLevel level)
{
    g_level = level;
}

LogLevel
Log::level()
{
    return g_level;
}

void
Log::vlog(LogLevel level, const char *fmt, va_list ap)
{
    if (level < g_level)
        return;
    std::fprintf(stderr, "[tacc %s] ", level_tag(level));
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

#define TACC_LOG_IMPL(name, level)                                           \
    void Log::name(const char *fmt, ...)                                     \
    {                                                                        \
        if ((level) < g_level)                                               \
            return;                                                          \
        va_list ap;                                                          \
        va_start(ap, fmt);                                                   \
        vlog((level), fmt, ap);                                              \
        va_end(ap);                                                          \
    }

TACC_LOG_IMPL(debugf, LogLevel::kDebug)
TACC_LOG_IMPL(infof, LogLevel::kInfo)
TACC_LOG_IMPL(warnf, LogLevel::kWarn)
TACC_LOG_IMPL(errorf, LogLevel::kError)

#undef TACC_LOG_IMPL

} // namespace tacc
