/**
 * @file
 * Minimal leveled logger for the library and its tools.
 *
 * Logging is off by default at Debug level so simulations stay fast and
 * deterministic in output; benches and examples raise the level as needed.
 */
#pragma once

#include <cstdarg>
#include <string>

namespace tacc {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/** Global log configuration (process-wide; tests may lower/raise it). */
class Log
{
  public:
    static void set_level(LogLevel level);
    static LogLevel level();

    /** printf-style logging; no-op below the configured level. */
    static void debugf(const char *fmt, ...)
        __attribute__((format(printf, 1, 2)));
    static void infof(const char *fmt, ...)
        __attribute__((format(printf, 1, 2)));
    static void warnf(const char *fmt, ...)
        __attribute__((format(printf, 1, 2)));
    static void errorf(const char *fmt, ...)
        __attribute__((format(printf, 1, 2)));

  private:
    static void vlog(LogLevel level, const char *fmt, va_list ap);
};

} // namespace tacc
