/**
 * @file
 * Plain-text table and CSV rendering for benches and reports.
 *
 * Every experiment binary prints its table/figure series through TextTable
 * so output is uniform and machine-greppable.
 */
#pragma once

#include <string>
#include <vector>

namespace tacc {

/** Column-aligned ASCII table with a title and header row. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "");

    /** Sets the header row; must be called before add_row. */
    void set_header(std::vector<std::string> header);

    void add_row(std::vector<std::string> row);

    /** Convenience: formats each cell with %.<digits>g for doubles. */
    static std::string num(double v, int significant = 4);
    static std::string fixed(double v, int decimals = 2);
    static std::string pct(double fraction, int decimals = 1);

    /** Renders the full table, ruled, with right-aligned numeric cells. */
    std::string str() const;

    /** Renders as CSV (header then rows), RFC-4180-style quoting. */
    std::string csv() const;

    size_t row_count() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace tacc
