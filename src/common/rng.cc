#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace tacc {

uint64_t
split_mix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = split_mix64(sm);
}

uint64_t
Rng::next_u64()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return double(next_u64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniform_int(int64_t lo, int64_t hi)
{
    assert(lo <= hi);
    const uint64_t span = uint64_t(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return int64_t(next_u64());
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t v;
    do {
        v = next_u64();
    } while (v >= limit);
    return lo + int64_t(v % span);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    assert(mean > 0);
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -mean * std::log(1.0 - uniform());
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::normal(double mean, double stddev)
{
    const double u1 = 1.0 - uniform(); // (0, 1]
    const double u2 = uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
}

double
Rng::pareto(double x_m, double alpha)
{
    assert(x_m > 0 && alpha > 0);
    return x_m / std::pow(1.0 - uniform(), 1.0 / alpha);
}

int64_t
Rng::zipf(int64_t n, double s)
{
    assert(n >= 1);
    double norm = 0;
    for (int64_t k = 1; k <= n; ++k)
        norm += 1.0 / std::pow(double(k), s);
    double u = uniform() * norm;
    double acc = 0;
    for (int64_t k = 1; k <= n; ++k) {
        acc += 1.0 / std::pow(double(k), s);
        if (u <= acc)
            return k;
    }
    return n;
}

size_t
Rng::weighted_index(const std::vector<double> &weights)
{
    assert(!weights.empty());
    double total = 0;
    for (double w : weights)
        total += w;
    assert(total > 0);
    double u = uniform() * total;
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (u <= acc)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork(uint64_t stream_id)
{
    // Derive a child seed from our state plus the stream id; advancing our
    // own state keeps successive forks independent.
    uint64_t mix = next_u64() ^ (stream_id * 0x9e3779b97f4a7c15ULL);
    return Rng(split_mix64(mix));
}

ZipfSampler::ZipfSampler(int64_t n, double s)
{
    assert(n >= 1);
    cdf_.resize(size_t(n));
    double acc = 0;
    for (int64_t k = 1; k <= n; ++k) {
        acc += 1.0 / std::pow(double(k), s);
        cdf_[size_t(k - 1)] = acc;
    }
    for (auto &v : cdf_)
        v /= acc;
}

int64_t
ZipfSampler::operator()(Rng &rng) const
{
    const double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        --it;
    return int64_t(it - cdf_.begin()) + 1;
}

} // namespace tacc
