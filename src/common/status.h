/**
 * @file
 * Lightweight error-reporting types (Status / StatusOr).
 *
 * TACC is a library first: user mistakes (malformed task schema, quota
 * exceeded, unknown cluster) are reported as Status values, never by
 * aborting. Internal invariant violations still use assert.
 */
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace tacc {

/** Error category for a failed operation. */
enum class StatusCode {
    kOk = 0,
    kInvalidArgument,  ///< malformed input (bad schema, negative demand, ...)
    kNotFound,         ///< unknown id / name
    kAlreadyExists,    ///< duplicate id / name
    kResourceExhausted,///< quota or capacity exceeded
    kFailedPrecondition,///< operation not valid in the current state
    kUnavailable,      ///< transient failure (injected fault, node down)
    kInternal,         ///< bug-shaped condition surfaced as an error
};

/** Human-readable name of a StatusCode ("ok", "invalid_argument", ...). */
const char *status_code_name(StatusCode code);

/** Result of an operation that can fail: a code plus a message. */
class Status
{
  public:
    /** Constructs an OK status. */
    Status() : code_(StatusCode::kOk) {}
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status ok() { return Status(); }
    static Status invalid_argument(std::string m)
    {
        return Status(StatusCode::kInvalidArgument, std::move(m));
    }
    static Status not_found(std::string m)
    {
        return Status(StatusCode::kNotFound, std::move(m));
    }
    static Status already_exists(std::string m)
    {
        return Status(StatusCode::kAlreadyExists, std::move(m));
    }
    static Status resource_exhausted(std::string m)
    {
        return Status(StatusCode::kResourceExhausted, std::move(m));
    }
    static Status failed_precondition(std::string m)
    {
        return Status(StatusCode::kFailedPrecondition, std::move(m));
    }
    static Status unavailable(std::string m)
    {
        return Status(StatusCode::kUnavailable, std::move(m));
    }
    static Status internal(std::string m)
    {
        return Status(StatusCode::kInternal, std::move(m));
    }

    bool is_ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "ok" or "<code>: <message>". */
    std::string str() const;

  private:
    StatusCode code_;
    std::string message_;
};

/**
 * Either a value of type T or an error Status.
 *
 * Accessing value() on an error is a programming bug and asserts.
 */
template <typename T>
class StatusOr
{
  public:
    StatusOr(T value) : v_(std::move(value)) {}
    StatusOr(Status status) : v_(std::move(status))
    {
        assert(!std::get<Status>(v_).is_ok() &&
               "StatusOr must not hold an OK status without a value");
    }

    bool is_ok() const { return std::holds_alternative<T>(v_); }

    Status
    status() const
    {
        return is_ok() ? Status::ok() : std::get<Status>(v_);
    }

    const T &
    value() const
    {
        assert(is_ok());
        return std::get<T>(v_);
    }

    T &
    value()
    {
        assert(is_ok());
        return std::get<T>(v_);
    }

    T
    value_or(T fallback) const
    {
        return is_ok() ? std::get<T>(v_) : std::move(fallback);
    }

  private:
    std::variant<T, Status> v_;
};

} // namespace tacc
