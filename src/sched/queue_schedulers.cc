/**
 * @file
 * FIFO, SJF and fair-share multifactor schedulers.
 */
#include <algorithm>

#include "sched/greedy.h"
#include "sched/schedulers.h"
#include "sched/usage.h"

namespace tacc::sched {

ScheduleDecision
FifoScheduler::schedule(const SchedulerContext &ctx)
{
    return detail::greedy(ctx, detail::pending_by_arrival(ctx), strict_);
}

ScheduleDecision
SjfScheduler::schedule(const SchedulerContext &ctx)
{
    auto order = detail::pending_by_arrival(ctx);
    // Shortest estimated runtime first; arrival breaks ties via the
    // stable sort over the arrival-ordered input.
    std::stable_sort(
        order.begin(), order.end(),
        [&](const workload::Job *a, const workload::Job *b) {
            return detail::runtime_bound(ctx, *a, use_estimates_) <
                   detail::runtime_bound(ctx, *b, use_estimates_);
        });
    return detail::greedy(ctx, order, false);
}

double
FairShareScheduler::priority(const SchedulerContext &ctx,
                             const workload::Job &job) const
{
    // Age factor: saturating linear ramp.
    const double age_s = (ctx.now - job.submit_time()).to_seconds();
    const double age = std::min(1.0, age_s / opts_.age_saturation.to_seconds());

    // Fair-share factor: groups consuming less than their (equal) share
    // rank higher. usage_share is in [0, 1].
    double fairshare = 1.0;
    if (ctx.usage)
        fairshare = 1.0 - ctx.usage->usage_share(job.spec().group, ctx.now);

    // QoS factor.
    double qos = 0.5;
    switch (job.spec().qos) {
      case workload::QosClass::kInteractive: qos = 1.0; break;
      case workload::QosClass::kBatch: qos = 0.5; break;
      case workload::QosClass::kBestEffort: qos = 0.0; break;
    }

    // Size factor: mild preference for small jobs (they drain fast and
    // fill fragmentation holes).
    const int cluster_gpus = ctx.cluster->total_gpus();
    const double size =
        1.0 - std::min(1.0, double(job.spec().gpus) /
                                std::max(1, cluster_gpus));

    return opts_.w_age * age + opts_.w_fairshare * fairshare +
           opts_.w_qos * qos + opts_.w_size * size;
}

ScheduleDecision
FairShareScheduler::schedule(const SchedulerContext &ctx)
{
    auto order = detail::pending_by_arrival(ctx);
    // priority() is a pure per-job value; evaluate it once per job rather
    // than once per comparison (the fair-share factor walks every group's
    // decayed usage).
    std::vector<std::pair<double, workload::Job *>> ranked;
    ranked.reserve(order.size());
    for (workload::Job *job : order)
        ranked.emplace_back(priority(ctx, *job), job);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });
    for (size_t i = 0; i < ranked.size(); ++i)
        order[i] = ranked[i].second;
    return detail::greedy(ctx, order, false);
}

} // namespace tacc::sched
