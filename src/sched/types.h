/**
 * @file
 * Scheduling Layer interfaces (layer 3 of the TACC workflow abstraction).
 *
 * The scheduler is pure policy: given a snapshot of the pending queue, the
 * running set, and cluster free-state, it returns a ScheduleDecision
 * (preemptions to apply, then jobs to start, each with a concrete
 * placement). The core applies decisions; the scheduler never mutates
 * simulation state directly, which keeps every policy trivially swappable
 * and unit-testable.
 */
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/types.h"
#include "common/time.h"
#include "workload/job.h"

namespace tacc::sched {

class PlacementPolicy;
class QuotaManager;
class RuntimeEstimator;
class UsageTracker;

/** A running job as the scheduler sees it. */
struct RunningInfo {
    workload::Job *job = nullptr;
    cluster::Placement placement;
    /** Projected completion at the current allocation. */
    TimePoint expected_end;
};

/**
 * Snapshot handed to Scheduler::schedule(). The pending/running views
 * reference storage owned by the caller (the core keeps both cached
 * between decisions); they must stay alive and unchanged for the call.
 */
struct SchedulerContext {
    TimePoint now;
    /** Pending jobs; see pending_sorted for the ordering guarantee. */
    std::span<workload::Job *const> pending;
    /**
     * True when `pending` is already in (submit time, id) order — the
     * arrival order every policy starts from — letting schedulers skip
     * their re-sort. False for ad-hoc contexts (tests, tools).
     */
    bool pending_sorted = false;
    std::span<const RunningInfo> running;
    const cluster::Cluster *cluster = nullptr;
    PlacementPolicy *placement = nullptr;
    /** Decayed per-group service usage; null if untracked. */
    const UsageTracker *usage = nullptr;
    /** Group GPU caps; null if unenforced. */
    const QuotaManager *quota = nullptr;
    /** Learned runtime predictions; null if unavailable. */
    const RuntimeEstimator *estimator = nullptr;
    /**
     * Heterogeneous clusters: plan gangs within one GPU generation
     * (a mixed gang runs at its slowest worker's speed).
     */
    bool avoid_gpu_mixing = false;
    /**
     * Per-node placement veto (1 = allowed), e.g. the flaky-node
     * scoreboard steering requeues away from recently-faulty nodes.
     * Null means every node is allowed. ANDed with any GPU-model mask.
     */
    const std::vector<uint8_t> *node_filter = nullptr;
    /**
     * Per-iteration wall seconds the execution layer predicts for a job on
     * a hypothetical placement. Used for reservations and elastic search.
     */
    std::function<double(const workload::Job &,
                         const cluster::Placement &)>
        iter_time;
};

/** One job start within a decision. */
struct StartAction {
    cluster::JobId job = cluster::kInvalidJob;
    cluster::Placement placement;
};

/** What the scheduler wants done, applied atomically by the core. */
struct ScheduleDecision {
    /** Victims preempted (and their GPUs freed) before any start. */
    std::vector<cluster::JobId> preemptions;
    std::vector<StartAction> starts;

    bool
    empty() const
    {
        return preemptions.empty() && starts.empty();
    }
};

/** Scheduling policy interface. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    virtual std::string name() const = 0;

    /** Computes a decision; must not mutate anything it is handed. */
    virtual ScheduleDecision schedule(const SchedulerContext &ctx) = 0;

    /**
     * Period at which the core should invoke the scheduler even without
     * queue events (time slicing, elastic re-allocation, priority decay).
     * zero() means event-driven only.
     */
    virtual Duration tick_period() const { return Duration::zero(); }
};

} // namespace tacc::sched
