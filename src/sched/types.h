/**
 * @file
 * Scheduling Layer interfaces (layer 3 of the TACC workflow abstraction).
 *
 * The scheduler is pure policy: given a snapshot of the pending queue, the
 * running set, and cluster free-state, it returns a ScheduleDecision
 * (preemptions to apply, then jobs to start, each with a concrete
 * placement). The core applies decisions; the scheduler never mutates
 * simulation state directly, which keeps every policy trivially swappable
 * and unit-testable.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/types.h"
#include "common/time.h"
#include "workload/job.h"

namespace tacc::sched {

class PlacementPolicy;
class QuotaManager;
class RuntimeEstimator;
class UsageTracker;

/**
 * Power admission gate the core fills from the PowerManager before each
 * scheduling pass. Advisory and conservative: headroom is priced at
 * `per_gpu_w` (the worst-case per-GPU delta times the policy's commit
 * fraction), so the gate only skips starts that certainly cannot fit.
 * The core re-checks every start against the exact power model when
 * applying the decision. Mutable headrooms let a const context deduct
 * reservations as the scheduler commits starts within one pass.
 */
struct PowerGate {
    const cluster::Cluster *cluster = nullptr;
    /** Conservative watts reserved per requested GPU. */
    double per_gpu_w = 0;
    int racks_per_pdu = 2;
    /** Remaining budget per scope; empty vector = scope uncapped. */
    mutable double cluster_headroom_w =
        std::numeric_limits<double>::infinity();
    mutable std::vector<double> rack_headroom_w;
    mutable std::vector<double> pdu_headroom_w;
    /** Starts this pass skipped for lack of power headroom. */
    mutable uint64_t rejections = 0;

    /** Cheap pre-plan check: can `gpus` possibly fit anywhere? */
    bool
    admits(int gpus) const
    {
        return double(gpus) * per_gpu_w <= cluster_headroom_w;
    }

    /**
     * Post-plan check against every scope the placement touches;
     * deducts the reservation from each on success.
     */
    bool
    try_commit(const cluster::Placement &placement) const
    {
        const double total = double(placement.total_gpus()) * per_gpu_w;
        if (total > cluster_headroom_w)
            return false;
        if (!rack_headroom_w.empty() || !pdu_headroom_w.empty()) {
            std::vector<std::pair<int, double>> rack_w;
            for (const auto &slice : placement.slices) {
                const int rack = int(cluster->node(slice.node).rack());
                const double w =
                    double(slice.gpu_indices.size()) * per_gpu_w;
                bool merged = false;
                for (auto &[r, acc] : rack_w) {
                    if (r == rack) {
                        acc += w;
                        merged = true;
                        break;
                    }
                }
                if (!merged)
                    rack_w.emplace_back(rack, w);
            }
            const int per = racks_per_pdu > 0 ? racks_per_pdu : 1;
            for (const auto &[rack, w] : rack_w) {
                if (!rack_headroom_w.empty() &&
                    (size_t(rack) >= rack_headroom_w.size() ||
                     w > rack_headroom_w[size_t(rack)]))
                    return false;
                if (!pdu_headroom_w.empty()) {
                    const size_t pdu = size_t(rack / per);
                    double pdu_w = 0;
                    for (const auto &[r2, w2] : rack_w) {
                        if (size_t(r2 / per) == pdu)
                            pdu_w += w2;
                    }
                    if (pdu >= pdu_headroom_w.size() ||
                        pdu_w > pdu_headroom_w[pdu])
                        return false;
                }
            }
            for (const auto &[rack, w] : rack_w) {
                if (!rack_headroom_w.empty())
                    rack_headroom_w[size_t(rack)] -= w;
                if (!pdu_headroom_w.empty())
                    pdu_headroom_w[size_t(rack / per)] -= w;
            }
        }
        cluster_headroom_w -= total;
        return true;
    }
};

/** A running job as the scheduler sees it. */
struct RunningInfo {
    workload::Job *job = nullptr;
    cluster::Placement placement;
    /** Projected completion at the current allocation. */
    TimePoint expected_end;
};

/**
 * Snapshot handed to Scheduler::schedule(). The pending/running views
 * reference storage owned by the caller (the core keeps both cached
 * between decisions); they must stay alive and unchanged for the call.
 */
struct SchedulerContext {
    TimePoint now;
    /** Pending jobs; see pending_sorted for the ordering guarantee. */
    std::span<workload::Job *const> pending;
    /**
     * True when `pending` is already in (submit time, id) order — the
     * arrival order every policy starts from — letting schedulers skip
     * their re-sort. False for ad-hoc contexts (tests, tools).
     */
    bool pending_sorted = false;
    std::span<const RunningInfo> running;
    const cluster::Cluster *cluster = nullptr;
    PlacementPolicy *placement = nullptr;
    /** Decayed per-group service usage; null if untracked. */
    const UsageTracker *usage = nullptr;
    /** Group GPU caps; null if unenforced. */
    const QuotaManager *quota = nullptr;
    /** Learned runtime predictions; null if unavailable. */
    const RuntimeEstimator *estimator = nullptr;
    /**
     * True when `estimator` is the stack's online prediction authority
     * (src/predict in ema/regress mode): policies may condition
     * reservations and victim choice on it even when their own
     * use_estimates knob is off. False leaves every pre-prediction
     * decision byte-identical.
     */
    bool predictions_authoritative = false;
    /**
     * Short-horizon forecast of pending GPU demand (the load
     * forecaster's one-pass-ahead backlog estimate); < 0 when no
     * forecast is available. Elastic allocation leaves headroom for
     * forecast demand beyond what is pending now.
     */
    double forecast_backlog_gpus = -1;
    /**
     * Heterogeneous clusters: plan gangs within one GPU generation
     * (a mixed gang runs at its slowest worker's speed).
     */
    bool avoid_gpu_mixing = false;
    /**
     * Per-node placement veto (1 = allowed), e.g. the flaky-node
     * scoreboard steering requeues away from recently-faulty nodes.
     * Null means every node is allowed. ANDed with any GPU-model mask.
     */
    const std::vector<uint8_t> *node_filter = nullptr;
    /**
     * Power admission gate; null when power management is off or the
     * deployment is uncapped. See PowerGate for the contract.
     */
    const PowerGate *power = nullptr;
    /**
     * Per-iteration wall seconds the execution layer predicts for a job on
     * a hypothetical placement. Used for reservations and elastic search.
     */
    std::function<double(const workload::Job &,
                         const cluster::Placement &)>
        iter_time;
};

/** One job start within a decision. */
struct StartAction {
    cluster::JobId job = cluster::kInvalidJob;
    cluster::Placement placement;
};

/** What the scheduler wants done, applied atomically by the core. */
struct ScheduleDecision {
    /** Victims preempted (and their GPUs freed) before any start. */
    std::vector<cluster::JobId> preemptions;
    std::vector<StartAction> starts;

    bool
    empty() const
    {
        return preemptions.empty() && starts.empty();
    }
};

/** Scheduling policy interface. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    virtual std::string name() const = 0;

    /** Computes a decision; must not mutate anything it is handed. */
    virtual ScheduleDecision schedule(const SchedulerContext &ctx) = 0;

    /**
     * Period at which the core should invoke the scheduler even without
     * queue events (time slicing, elastic re-allocation, priority decay).
     * zero() means event-driven only.
     */
    virtual Duration tick_period() const { return Duration::zero(); }
};

} // namespace tacc::sched
