/**
 * @file
 * EASY and conservative backfill.
 *
 * Both variants walk the queue in arrival order against a free-capacity
 * timeline built from the running jobs' projected completions. A job whose
 * earliest feasible window is "now" (and that actually places) starts; a
 * blocked job gets a reservation that debits the timeline — for the head
 * of the queue only (EASY) or for every blocked job (conservative). Later
 * candidates therefore cannot start in a way that would delay a
 * reservation.
 */
#include "sched/capacity_profile.h"
#include "sched/greedy.h"
#include "sched/schedulers.h"
#include "sched/usage.h"

namespace tacc::sched {

ScheduleDecision
BackfillScheduler::schedule(const SchedulerContext &ctx)
{
    ScheduleDecision out;
    FreeView &view = detail::scratch_view(*ctx.cluster);
    auto held = detail::held_by_group(ctx);

    CapacityProfile profile(ctx.now, view.total_free());
    for (const auto &r : ctx.running) {
        // The system's runtime estimate for running jobs is the actual
        // projected end (Slurm would use the time limit; our monitoring
        // layer knows iteration progress, which is strictly better).
        profile.add_release(r.expected_end, r.job->running_gpus());
    }

    bool reserved_head = false;
    int examined = 0;
    for (workload::Job *job : detail::pending_by_arrival(ctx)) {
        // Bounded scan (Slurm bf_max_job_test): deep queues stop
        // contributing backfill candidates past the configured depth.
        if (depth_ > 0 && ++examined > depth_)
            break;
        const int gpus = job->spec().gpus;
        const Duration bound =
            detail::runtime_bound(ctx, *job, use_estimates_);
        const TimePoint fit = profile.earliest_fit(gpus, bound);
        if (fit == ctx.now &&
            detail::try_start(ctx, view, held, job, gpus, &out)) {
            profile.reserve(ctx.now, bound, gpus);
            continue;
        }
        // Blocked (by capacity, placement fragmentation, or quota).
        if (conservative_) {
            profile.reserve(fit, bound, gpus);
        } else if (!reserved_head) {
            profile.reserve(fit, bound, gpus);
            reserved_head = true;
        }
    }
    return out;
}

} // namespace tacc::sched
