/**
 * @file
 * Online job-runtime estimation for the scheduling layer.
 *
 * The paper's scheduling layer conditions on "runtime characteristic:
 * expected duration" (Table 1). User-provided time limits overestimate
 * runtimes by 1.5-4x in practice, which makes backfill reservations
 * loose and SJF orderings wrong. The estimator learns per-(user, model)
 * service rates from completed jobs — the classic "predict from the
 * user's history" scheme (JVuPredict/3Sigma-style, simplified to an
 * exponential moving average of per-iteration service time).
 *
 * RuntimeEstimator is the scheduler-facing interface: `src/predict`
 * derives from it so the stack can swap the EMA table for the online
 * regression model without the policy zoo noticing.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "common/time.h"
#include "workload/job.h"

namespace tacc::sched {

/**
 * Estimator key: interned (user, model) ids packed into one word.
 * Jobs cache both ids at construction, so hot-path predict()/observe()
 * never allocates or hashes strings.
 */
struct EstimatorKey {
    uint64_t packed;

    static EstimatorKey
    of(const workload::Job &job)
    {
        return {uint64_t(uint32_t(job.user_id())) << 32 |
                uint64_t(uint32_t(job.model_id()))};
    }
    bool operator==(const EstimatorKey &o) const
    {
        return packed == o.packed;
    }
};

struct EstimatorKeyHash {
    size_t
    operator()(const EstimatorKey &k) const
    {
        // Fibonacci mix: interned ids are small and sequential, so the
        // raw packed word would cluster in low buckets.
        return size_t(k.packed * 0x9e3779b97f4a7c15ULL);
    }
};

/** Learns per-(user, model) runtimes; falls back to the user limit. */
class RuntimeEstimator
{
  public:
    /**
     * @param safety_factor multiplier on the raw prediction (backfill
     *        reservations must rarely under-run)
     * @param ema_alpha weight of the newest observation
     */
    explicit RuntimeEstimator(double safety_factor = 1.25,
                              double ema_alpha = 0.3);
    virtual ~RuntimeEstimator() = default;

    /**
     * Records a completed job: its realized service seconds per
     * iteration become the newest sample for (user, model).
     */
    virtual void observe(const workload::Job &job);

    /**
     * Predicted total runtime of a job, never exceeding the user's time
     * limit (the system kills at the limit, so it is a hard bound).
     * Without history for (user, model), returns the time limit.
     */
    virtual Duration predict(const workload::Job &job) const;

    /**
     * Predicted time to finish the *remaining* iterations (elastic
     * shrink-victim selection wants residual work, not total runtime).
     * Falls back to the remaining share of the time limit.
     */
    virtual Duration predict_remaining(const workload::Job &job) const;

    /** True if a prediction (not just the fallback) exists for the job. */
    virtual bool has_history(const workload::Job &job) const;

    size_t tracked_keys() const { return entries_.size(); }
    uint64_t observations() const { return observations_; }

  protected:
    /** Per-iteration service-time sample a completed job contributes,
     *  or < 0 when the job carries no usable signal. */
    static double sample_of(const workload::Job &job);

  private:
    struct Entry {
        double per_iter_s = 0;
        uint64_t count = 0;
    };

    double safety_;
    double alpha_;
    uint64_t observations_ = 0;
    std::unordered_map<EstimatorKey, Entry, EstimatorKeyHash> entries_;
};

} // namespace tacc::sched
