/**
 * @file
 * Online job-runtime estimation for the scheduling layer.
 *
 * The paper's scheduling layer conditions on "runtime characteristic:
 * expected duration" (Table 1). User-provided time limits overestimate
 * runtimes by 1.5-4x in practice, which makes backfill reservations
 * loose and SJF orderings wrong. The estimator learns per-(user, model)
 * service rates from completed jobs — the classic "predict from the
 * user's history" scheme (JVuPredict/3Sigma-style, simplified to an
 * exponential moving average of per-iteration service time).
 */
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>

#include "common/time.h"
#include "workload/job.h"

namespace tacc::sched {

/** Learns per-(user, model) runtimes; falls back to the user limit. */
class RuntimeEstimator
{
  public:
    /**
     * @param safety_factor multiplier on the raw prediction (backfill
     *        reservations must rarely under-run)
     * @param ema_alpha weight of the newest observation
     */
    explicit RuntimeEstimator(double safety_factor = 1.25,
                              double ema_alpha = 0.3);

    /**
     * Records a completed job: its realized service seconds per
     * iteration become the newest sample for (user, model).
     */
    void observe(const workload::Job &job);

    /**
     * Predicted total runtime of a job, never exceeding the user's time
     * limit (the system kills at the limit, so it is a hard bound).
     * Without history for (user, model), returns the time limit.
     */
    Duration predict(const workload::Job &job) const;

    /** True if a prediction (not just the fallback) exists for the job. */
    bool has_history(const workload::Job &job) const;

    size_t tracked_keys() const { return entries_.size(); }
    uint64_t observations() const { return observations_; }

  private:
    struct Entry {
        double per_iter_s = 0;
        uint64_t count = 0;
    };

    static std::string key_of(const workload::Job &job);

    double safety_;
    double alpha_;
    uint64_t observations_ = 0;
    std::unordered_map<std::string, Entry> entries_;
};

} // namespace tacc::sched
