/**
 * @file
 * Placement policies: mapping a GPU grant onto concrete nodes.
 *
 * Placement is the mechanism half of the scheduling layer's decision: once
 * a policy decides *that* a job runs, the placement policy decides *where*.
 * The choice matters because the execution layer's communication model
 * charges NVLink / intra-rack / cross-rack collectives very differently
 * (experiment F5).
 *
 * Planners return placements whose slice sizes express GPU counts; the
 * concrete device indices are assigned by Cluster::allocate when the core
 * commits the decision.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "cluster/types.h"
#include "common/rng.h"
#include "common/status.h"
#include "sched/free_view.h"

namespace tacc::sched {

/** Strategy interface for placing a gang of GPUs. */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    virtual std::string name() const = 0;

    /**
     * Plans a placement of `gpus` devices with at most `per_node_limit`
     * on any node, against the given free view.
     * @param eligible optional per-node mask (heterogeneous clusters:
     *        only nodes with the requested GPU model are eligible);
     *        null means every node qualifies.
     * @return resource_exhausted if the request cannot fit right now.
     */
    virtual StatusOr<cluster::Placement>
    plan(const FreeView &view, const cluster::Topology &topo, int gpus,
         int per_node_limit,
         const std::vector<uint8_t> *eligible = nullptr) = 0;
};

/** Scans nodes in id order, taking what each offers. */
class FirstFitPlacement : public PlacementPolicy
{
  public:
    std::string name() const override { return "firstfit"; }
    StatusOr<cluster::Placement>
    plan(const FreeView &view, const cluster::Topology &topo, int gpus,
         int per_node_limit,
         const std::vector<uint8_t> *eligible) override;
};

/**
 * Consolidating best-fit: single-node tight fit when possible, otherwise
 * the fewest nodes (fullest-first), ignoring rack boundaries.
 */
class PackPlacement : public PlacementPolicy
{
  public:
    std::string name() const override { return "pack"; }
    StatusOr<cluster::Placement>
    plan(const FreeView &view, const cluster::Topology &topo, int gpus,
         int per_node_limit,
         const std::vector<uint8_t> *eligible) override;

  private:
    /** Reused node-order scratch; plan() runs once per candidate job. */
    std::vector<cluster::NodeId> order_scratch_;
};

/**
 * Worst-fit spreading: one GPU at a time to the emptiest node. The
 * fragmentation-maximizing baseline.
 */
class SpreadPlacement : public PlacementPolicy
{
  public:
    std::string name() const override { return "spread"; }
    StatusOr<cluster::Placement>
    plan(const FreeView &view, const cluster::Topology &topo, int gpus,
         int per_node_limit,
         const std::vector<uint8_t> *eligible) override;
};

/**
 * Network-topology-aware consolidation: single node, else a single rack
 * (tightest rack that fits), else the fewest racks.
 */
class TopologyAwarePlacement : public PlacementPolicy
{
  public:
    std::string name() const override { return "topology"; }
    StatusOr<cluster::Placement>
    plan(const FreeView &view, const cluster::Topology &topo, int gpus,
         int per_node_limit,
         const std::vector<uint8_t> *eligible) override;
};

/**
 * Blast-radius-aware anti-affinity: a gang that fits on one node stays on
 * one node (a single node is a single fault domain either way, and keeps
 * NVLink locality), but a gang that must span nodes is spread across as
 * many racks as can contribute, capped per rack, so one rack-switch or
 * PDU outage never takes out the whole gang.
 */
class AntiAffinityPlacement : public PlacementPolicy
{
  public:
    std::string name() const override { return "antiaffinity"; }
    StatusOr<cluster::Placement>
    plan(const FreeView &view, const cluster::Topology &topo, int gpus,
         int per_node_limit,
         const std::vector<uint8_t> *eligible) override;
};

/** First-fit over a randomly shuffled node order (baseline). */
class RandomPlacement : public PlacementPolicy
{
  public:
    explicit RandomPlacement(uint64_t seed = 1) : rng_(seed) {}
    std::string name() const override { return "random"; }
    StatusOr<cluster::Placement>
    plan(const FreeView &view, const cluster::Topology &topo, int gpus,
         int per_node_limit,
         const std::vector<uint8_t> *eligible) override;

  private:
    Rng rng_;
};

/** Builds a placement policy by name; nullptr for unknown names. */
std::unique_ptr<PlacementPolicy> make_placement_policy(
    const std::string &name, uint64_t seed = 1);

} // namespace tacc::sched
