#include "sched/usage.h"

#include <cassert>
#include <cmath>

namespace tacc::sched {

UsageTracker::UsageTracker(Duration half_life) : half_life_(half_life)
{
    assert(!half_life_.is_zero() && !half_life_.is_negative());
}

double
UsageTracker::decayed(const Entry &e, TimePoint now) const
{
    const double dt = (now - e.updated).to_seconds();
    if (dt <= 0)
        return e.value;
    return e.value * std::exp2(-dt / half_life_.to_seconds());
}

void
UsageTracker::charge(const std::string &key, double gpu_seconds,
                     TimePoint now)
{
    assert(gpu_seconds >= 0);
    auto &entry = entries_[key];
    entry.value = decayed(entry, now) + gpu_seconds;
    entry.updated = now;
}

double
UsageTracker::usage(const std::string &key, TimePoint now) const
{
    auto it = entries_.find(key);
    return it == entries_.end() ? 0.0 : decayed(it->second, now);
}

double
UsageTracker::total_usage(TimePoint now) const
{
    double total = 0;
    for (const auto &[key, entry] : entries_)
        total += decayed(entry, now);
    return total;
}

double
UsageTracker::usage_share(const std::string &key, TimePoint now) const
{
    const double total = total_usage(now);
    if (total <= 0)
        return 0.0;
    return usage(key, now) / total;
}

void
QuotaManager::set_group_quota(const std::string &group, int max_gpus)
{
    quotas_[group] = max_gpus;
}

int
QuotaManager::quota_of(const std::string &group) const
{
    auto it = quotas_.find(group);
    return it == quotas_.end() ? default_quota_ : it->second;
}

bool
QuotaManager::would_exceed(const std::string &group, int gpus_held,
                           int request) const
{
    const int quota = quota_of(group);
    if (quota < 0)
        return false;
    return gpus_held + request > quota;
}

} // namespace tacc::sched
