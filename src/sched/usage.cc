#include "sched/usage.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tacc::sched {

UsageTracker::UsageTracker(Duration half_life) : half_life_(half_life)
{
    assert(!half_life_.is_zero() && !half_life_.is_negative());
}

double
UsageTracker::decayed(const Entry &e, TimePoint now) const
{
    const double dt = (now - e.updated).to_seconds();
    if (dt <= 0)
        return e.value;
    return e.value * std::exp2(-dt / half_life_.to_seconds());
}

void
UsageTracker::charge(const std::string &key, double gpu_seconds,
                     TimePoint now)
{
    assert(gpu_seconds >= 0);
    auto &entry = entries_[key];
    entry.value = decayed(entry, now) + gpu_seconds;
    entry.updated = now;
    total_cache_valid_ = false;
}

double
UsageTracker::usage(const std::string &key, TimePoint now) const
{
    auto it = entries_.find(key);
    return it == entries_.end() ? 0.0 : decayed(it->second, now);
}

double
UsageTracker::total_usage(TimePoint now) const
{
    if (total_cache_valid_ && total_cached_at_ == now)
        return total_cached_;
    double total = 0;
    for (const auto &[key, entry] : entries_)
        total += decayed(entry, now);
    total_cached_at_ = now;
    total_cached_ = total;
    total_cache_valid_ = true;
    return total;
}

std::vector<std::pair<std::string, double>>
UsageTracker::snapshot(TimePoint now) const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(entries_.size());
    for (const auto &[key, entry] : entries_)
        out.emplace_back(key, decayed(entry, now));
    std::sort(out.begin(), out.end());
    return out;
}

double
UsageTracker::usage_share(const std::string &key, TimePoint now) const
{
    const double total = total_usage(now);
    if (total <= 0)
        return 0.0;
    return usage(key, now) / total;
}

void
QuotaManager::set_group_quota(const std::string &group, int max_gpus)
{
    quotas_[group] = max_gpus;
}

int
QuotaManager::quota_of(const std::string &group) const
{
    auto it = quotas_.find(group);
    return it == quotas_.end() ? default_quota_ : it->second;
}

bool
QuotaManager::would_exceed(const std::string &group, int gpus_held,
                           int request) const
{
    const int quota = quota_of(group);
    if (quota < 0)
        return false;
    return gpus_held + request > quota;
}

} // namespace tacc::sched
