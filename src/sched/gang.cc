/**
 * @file
 * Cluster-wide gang time-slicing.
 *
 * Every quantum the scheduler recomputes the set of gangs that should hold
 * the cluster, ordered by least-recently-served. Running gangs that stay in
 * the set keep their placement untouched; the rest are preempted and the
 * newly chosen gangs start. This is the "gang scheduling (time-slicing
 * jobs)" mode the paper lists among Slurm's strategies.
 */
#include <algorithm>
#include <unordered_set>

#include "sched/greedy.h"
#include "sched/schedulers.h"
#include "sched/usage.h"

namespace tacc::sched {

ScheduleDecision
GangScheduler::schedule(const SchedulerContext &ctx)
{
    ScheduleDecision out;
    ++round_;

    // Candidates: every non-terminal job; least-recently-served first,
    // then arrival order.
    std::vector<workload::Job *> candidates = detail::pending_by_arrival(ctx);
    std::unordered_set<cluster::JobId> running_ids;
    for (const auto &r : ctx.running) {
        running_ids.insert(r.job->id());
        candidates.push_back(r.job);
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](const workload::Job *a, const workload::Job *b) {
                         uint64_t la = 0, lb = 0;
                         if (auto it = last_served_.find(a->id());
                             it != last_served_.end()) {
                             la = it->second;
                         }
                         if (auto it = last_served_.find(b->id());
                             it != last_served_.end()) {
                             lb = it->second;
                         }
                         return la < lb;
                     });

    // Treat every preemptible running gang's GPUs as reclaimable.
    FreeView &view = detail::scratch_view(*ctx.cluster);
    auto held = detail::held_by_group(ctx);
    std::vector<const RunningInfo *> stoppable;
    for (const auto &r : ctx.running) {
        if (r.job->spec().preemptible) {
            view.give(r.placement);
            held[size_t(r.job->group_id())] -= r.job->running_gpus();
            stoppable.push_back(&r);
        }
    }

    // Fill the cluster in service order.
    std::unordered_set<cluster::JobId> target;
    for (workload::Job *job : candidates) {
        const bool is_running = running_ids.contains(job->id());
        if (is_running && !job->spec().preemptible) {
            // Pinned: it keeps running regardless.
            target.insert(job->id());
            last_served_[job->id()] = round_;
            continue;
        }
        if (is_running) {
            // Keep the existing placement if the view still has room for
            // it (it does unless an earlier candidate claimed the GPUs).
            bool room = true;
            for (const auto &slice : ctx.cluster->placement_of(job->id())
                                         .slices) {
                if (view.free(slice.node) < int(slice.gpu_indices.size())) {
                    room = false;
                    break;
                }
            }
            if (room) {
                view.take(ctx.cluster->placement_of(job->id()));
                held[size_t(job->group_id())] += job->running_gpus();
                target.insert(job->id());
                last_served_[job->id()] = round_;
            }
            continue;
        }
        if (detail::try_start(ctx, view, held, job, job->spec().gpus,
                              &out)) {
            target.insert(job->id());
            last_served_[job->id()] = round_;
        }
    }

    // Preempt the stoppable gangs that lost their slot.
    for (const RunningInfo *r : stoppable) {
        if (!target.contains(r->job->id()))
            out.preemptions.push_back(r->job->id());
    }

    // Drop bookkeeping for jobs that no longer exist anywhere.
    std::unordered_set<cluster::JobId> alive;
    for (const workload::Job *job : candidates)
        alive.insert(job->id());
    std::erase_if(last_served_,
                  [&](const auto &kv) { return !alive.contains(kv.first); });
    return out;
}

} // namespace tacc::sched
