/**
 * @file
 * Goodput-driven elastic scheduling (Pollux-like).
 *
 * Elastic jobs declare [min_gpus, max_gpus]; every period the scheduler
 * redistributes the GPUs left over after fixed-size jobs, assigning one
 * GPU at a time to the elastic job with the best marginal goodput gain.
 * Goodput = raw throughput x statistical efficiency, where efficiency
 * decays beyond the user's requested batch scale — so the allocation
 * saturates instead of hoarding.
 *
 * Resizing a running job is a preempt + start with the new size; the
 * execution layer charges the usual restart overhead, which is exactly the
 * cost Pollux's re-allocation pays for checkpoint-restore.
 */
#include <algorithm>
#include <cmath>
#include <numeric>

#include "sched/estimator.h"
#include "sched/greedy.h"
#include "sched/placement.h"
#include "sched/schedulers.h"
#include "sched/usage.h"

namespace tacc::sched {

namespace {

/**
 * Synthetic placement of g GPUs used only to price communication during
 * the allocation search: consecutive nodes starting at node 0, filled to
 * node capacity. The real placement is planned once sizes are final.
 */
cluster::Placement
synthetic_placement(const cluster::Cluster &cluster, int gpus)
{
    cluster::Placement p;
    const int per_node = cluster.max_gpus_per_node();
    cluster::NodeId node = 0;
    int remaining = gpus;
    while (remaining > 0 && int(node) < cluster.node_count()) {
        const int take = std::min(per_node, remaining);
        cluster::PlacementSlice slice;
        slice.node = node;
        slice.gpu_indices.resize(size_t(take));
        std::iota(slice.gpu_indices.begin(), slice.gpu_indices.end(), 0);
        p.slices.push_back(std::move(slice));
        remaining -= take;
        ++node;
    }
    return p;
}

/** Goodput (useful samples/sec) of a job at g GPUs. */
double
goodput(const SchedulerContext &ctx, const workload::Job &job, int gpus)
{
    if (gpus <= 0)
        return 0.0;
    const auto placement = synthetic_placement(*ctx.cluster, gpus);
    const double iter_s = ctx.iter_time(job, placement);
    if (iter_s <= 0)
        return 0.0;
    const double throughput = double(gpus) / iter_s;
    // Statistical efficiency: 1 up to the requested scale, then decays
    // with the square root of the over-scaling factor.
    const double requested = std::max(1, job.spec().gpus);
    const double eff =
        gpus <= job.spec().gpus
            ? 1.0
            : std::sqrt(requested / double(gpus));
    return throughput * eff;
}

} // namespace

ScheduleDecision
ElasticScheduler::schedule(const SchedulerContext &ctx)
{
    ScheduleDecision out;
    FreeView &view = detail::scratch_view(*ctx.cluster);
    auto held = detail::held_by_group(ctx);

    // Fixed-size pending jobs first, arrival order, skipping blockers.
    // Demand we cannot admit now is remembered: elastic jobs yield that
    // much of the pool (shrink), so the fixed jobs start next cycle.
    std::vector<workload::Job *> elastic_pending;
    int unmet_fixed = 0;
    for (workload::Job *job : detail::pending_by_arrival(ctx)) {
        if (job->spec().is_elastic()) {
            elastic_pending.push_back(job);
        } else if (!detail::try_start(ctx, view, held, job,
                                      job->spec().gpus, &out)) {
            unmet_fixed += job->spec().gpus;
        }
    }

    // Candidates for re-allocation: elastic pending + elastic preemptible
    // running jobs. Reclaim the latter's GPUs into the trial pool.
    struct Candidate {
        workload::Job *job;
        const RunningInfo *running; ///< null if pending
        int alloc = 0;
    };
    std::vector<Candidate> candidates;
    for (workload::Job *job : elastic_pending)
        candidates.push_back(Candidate{job, nullptr, 0});
    for (const auto &r : ctx.running) {
        if (r.job->spec().is_elastic() && r.job->spec().preemptible) {
            view.give(r.placement);
            held[size_t(r.job->group_id())] -= r.job->running_gpus();
            candidates.push_back(Candidate{r.job, &r, 0});
        }
    }
    if (candidates.empty())
        return out;

    // With an authoritative prediction model, rank candidates by
    // predicted remaining work (SRPT-style): when the pool cannot cover
    // every minimum, the jobs with the *most* predicted work left are
    // the ones denied — i.e. the shrink victims — which minimizes the
    // service lost to checkpoint-restore churn. Without predictions the
    // arrival order stands (pre-prediction decisions byte-identical).
    if (ctx.predictions_authoritative && ctx.estimator) {
        struct Ranked {
            Candidate c;
            Duration remaining;
        };
        std::vector<Ranked> ranked;
        ranked.reserve(candidates.size());
        for (auto &c : candidates)
            ranked.push_back(
                Ranked{c, ctx.estimator->predict_remaining(*c.job)});
        std::stable_sort(ranked.begin(), ranked.end(),
                         [](const Ranked &a, const Ranked &b) {
                             if (a.remaining != b.remaining)
                                 return a.remaining < b.remaining;
                             if (a.c.job->submit_time() !=
                                 b.c.job->submit_time())
                                 return a.c.job->submit_time() <
                                        b.c.job->submit_time();
                             return a.c.job->id() < b.c.job->id();
                         });
        for (size_t i = 0; i < candidates.size(); ++i)
            candidates[i] = ranked[i].c;
    }

    // Phase 1: everyone gets min_gpus if the pool allows (arrival order,
    // or predicted-remaining order when predictions are authoritative).
    int pool = view.total_free();
    for (auto &c : candidates) {
        const int want = c.job->spec().min_gpus;
        if (pool >= want) {
            c.alloc = want;
            pool -= want;
        }
    }

    // Yield room for fixed jobs we could not admit: the elastic fleet
    // squeezes toward its minima and the freed GPUs serve the fixed
    // queue at the next scheduling event.
    pool = std::max(0, pool - unmet_fixed);

    // Forecast headroom: when the load forecaster projects more pending
    // GPU demand than is queued now, hold that margin back from the
    // expansion phase — growing the fleet right before an arrival wave
    // just buys a resize (checkpoint-restore) when the wave lands.
    if (ctx.forecast_backlog_gpus >= 0) {
        double queued = 0;
        for (const workload::Job *job : ctx.pending)
            queued += double(job->spec().gpus);
        const int margin =
            int(std::max(0.0, ctx.forecast_backlog_gpus - queued));
        pool = std::max(0, pool - margin);
    }

    // Phase 2: marginal-goodput hill climbing. Besides +1 steps, each
    // candidate may jump to the next node-multiple: +1 across a node
    // boundary is always bad (NVLink -> network), but filling the next
    // node whole can pay off, and a pure +1 walk would never see that.
    const int per_node = ctx.cluster->max_gpus_per_node();
    while (pool > 0) {
        Candidate *best = nullptr;
        int best_target = 0;
        double best_rate = 0;
        for (auto &c : candidates) {
            if (c.alloc == 0 || c.alloc >= c.job->spec().max_gpus)
                continue;
            const double base = goodput(ctx, *c.job, c.alloc);
            const int cap = std::min(c.job->spec().max_gpus,
                                     c.alloc + pool);
            const int next_node = (c.alloc / per_node + 1) * per_node;
            for (int target : {c.alloc + 1, next_node, cap}) {
                if (target <= c.alloc || target > cap)
                    continue;
                const double rate =
                    (goodput(ctx, *c.job, target) - base) /
                    double(target - c.alloc);
                if (rate > best_rate) {
                    best_rate = rate;
                    best = &c;
                    best_target = target;
                }
            }
        }
        if (!best)
            break;
        pool -= best_target - best->alloc;
        best->alloc = best_target;
    }

    // Phase 3a: candidates keeping their current size re-claim their
    // existing placement first, so resizing candidates cannot plan onto
    // their GPUs.
    std::vector<bool> settled(candidates.size(), false);
    for (size_t i = 0; i < candidates.size(); ++i) {
        auto &c = candidates[i];
        const int current =
            c.running ? c.running->job->running_gpus() : 0;
        // Hysteresis: a resize within +-25% of the current allocation is
        // not worth the checkpoint-restore churn (Pollux applies the same
        // re-allocation penalty); treat it as "keep".
        const bool keep =
            c.running &&
            (c.alloc == current ||
             (current >= c.job->spec().min_gpus &&
              c.alloc * 4 >= current * 3 && c.alloc * 4 <= current * 5));
        if (keep) {
            view.take(c.running->placement);
            held[size_t(c.job->group_id())] += current;
            settled[i] = true;
        }
    }

    // Phase 3b: resizes (preempt + start with the new size) and fresh
    // starts. If the new size cannot be placed (fragmentation), fall back
    // to the old placement when it still fits; otherwise the job stays
    // preempted and a later cycle restarts it.
    for (size_t i = 0; i < candidates.size(); ++i) {
        if (settled[i])
            continue;
        auto &c = candidates[i];
        const int current =
            c.running ? c.running->job->running_gpus() : 0;
        if (c.running)
            out.preemptions.push_back(c.job->id());
        if (c.alloc > 0 &&
            detail::try_start(ctx, view, held, c.job, c.alloc, &out)) {
            continue;
        }
        if (c.running && view.fits(c.running->placement)) {
            out.preemptions.pop_back();
            view.take(c.running->placement);
            held[size_t(c.job->group_id())] += current;
        }
    }
    return out;
}

} // namespace tacc::sched
