/**
 * @file
 * The scheduling-policy zoo.
 *
 * TACC's scheduling layer (backed by Slurm in the deployed system) supports
 * fair-share scheduling, gang time-slicing, backfill, quota management and
 * preemption; recent research policies (LAS/Tiresias, DRF, goodput-driven
 * elasticity a la Pollux) slot into the same interface. Every policy here
 * is a pure function from a SchedulerContext snapshot to a
 * ScheduleDecision, so they compare apples-to-apples in the benches.
 *
 * Policy summary:
 *  - FifoScheduler        strict arrival order (optionally skipping blocked
 *                         heads, which is backfilling without reservations)
 *  - SjfScheduler         shortest user-estimated runtime first
 *  - FairShareScheduler   Slurm-style multifactor priority (age, fair-share
 *                         deficit, QoS, size)
 *  - BackfillScheduler    EASY or conservative reservation backfill
 *  - QosPreemptScheduler  strict QoS tiers; preempts lower tiers on demand
 *  - LasScheduler         least-attained-service with two-queue preemption
 *                         (Tiresias-like)
 *  - GangScheduler        cluster-wide round-robin gang time-slicing
 *  - DrfScheduler         dominant-resource fairness across groups
 *  - ElasticScheduler     goodput-driven GPU re-allocation for elastic jobs
 *                         (Pollux-like)
 */
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/types.h"

namespace tacc::sched {

/** Tunables shared by the scheduler factory. */
struct SchedulerOptions {
    /** FIFO: true = head-of-line blocking (no skipping). */
    bool strict_fifo = true;
    /** Backfill: true = conservative (reservations for every queued job). */
    bool conservative_backfill = false;
    /**
     * Backfill: queued jobs examined per pass (Slurm bf_max_job_test).
     * 0 = unlimited (the historical behaviour); small depths trade
     * backfill opportunities for cheaper passes and less reservation
     * churn. A prime auto-tuning dimension.
     */
    int backfill_depth = 0;
    /**
     * Preemption-cost ceiling: a running victim whose sunk work in the
     * current segment (GPUs x segment age) exceeds this many
     * GPU-seconds is never preempted. 0 = no ceiling (the historical
     * behaviour). Applies to the preempting policies (qos-preempt,
     * las).
     */
    double preempt_cost_threshold_gpu_s = 0;
    /** Gang scheduler time-slice quantum. */
    Duration gang_quantum = Duration::minutes(10);
    /** Elastic scheduler re-allocation period. */
    Duration elastic_period = Duration::minutes(2);
    /** LAS: attained GPU-seconds separating the high from the low queue. */
    double las_queue_threshold_gpu_s = 3600.0;
    /** Fair-share priority weights. */
    double w_age = 0.3;
    double w_fairshare = 0.4;
    double w_qos = 0.2;
    double w_size = 0.1;
    /** Age at which the age factor saturates. */
    Duration age_saturation = Duration::hours(12);
};

/** Strict (or skipping) arrival-order scheduling. */
class FifoScheduler : public Scheduler
{
  public:
    explicit FifoScheduler(bool strict = true) : strict_(strict) {}
    std::string name() const override
    {
        return strict_ ? "fifo" : "fifo-skip";
    }
    ScheduleDecision schedule(const SchedulerContext &ctx) override;

  private:
    bool strict_;
};

/**
 * Shortest job first, ordered by the user's time limit or (when
 * use_estimates and history exist) the learned runtime prediction.
 */
class SjfScheduler : public Scheduler
{
  public:
    explicit SjfScheduler(bool use_estimates = false)
        : use_estimates_(use_estimates)
    {
    }
    std::string name() const override
    {
        return use_estimates_ ? "sjf-pred" : "sjf";
    }
    ScheduleDecision schedule(const SchedulerContext &ctx) override;

  private:
    bool use_estimates_;
};

/** Slurm-style multifactor priority with fair-share deficit. */
class FairShareScheduler : public Scheduler
{
  public:
    explicit FairShareScheduler(SchedulerOptions opts = {}) : opts_(opts) {}
    std::string name() const override { return "fairshare"; }
    ScheduleDecision schedule(const SchedulerContext &ctx) override;

    /** The priority value used for ordering (exposed for tests). */
    double priority(const SchedulerContext &ctx,
                    const workload::Job &job) const;

  private:
    SchedulerOptions opts_;
};

/**
 * EASY / conservative backfill over arrival order. With use_estimates,
 * reservation bounds come from the runtime estimator instead of the
 * (loose) user time limits, which tightens the shadow windows and admits
 * more backfill.
 */
class BackfillScheduler : public Scheduler
{
  public:
    /** @param depth queued jobs examined per pass; 0 = unlimited. */
    explicit BackfillScheduler(bool conservative = false,
                               bool use_estimates = false, int depth = 0)
        : conservative_(conservative), use_estimates_(use_estimates),
          depth_(depth)
    {
    }
    std::string name() const override
    {
        if (use_estimates_)
            return conservative_ ? "backfill-cons-pred" : "backfill-pred";
        return conservative_ ? "backfill-cons" : "backfill-easy";
    }
    ScheduleDecision schedule(const SchedulerContext &ctx) override;

  private:
    bool conservative_;
    bool use_estimates_;
    int depth_;
};

/** Strict QoS tiers with demand-driven preemption of lower tiers. */
class QosPreemptScheduler : public Scheduler
{
  public:
    /**
     * @param preemption_enabled false gives the no-preemption baseline.
     * @param cost_threshold_gpu_s victims with more sunk GPU-seconds in
     *        the current segment are spared; 0 = no ceiling.
     */
    explicit QosPreemptScheduler(bool preemption_enabled = true,
                                 double cost_threshold_gpu_s = 0)
        : preemption_enabled_(preemption_enabled),
          cost_threshold_gpu_s_(cost_threshold_gpu_s)
    {
    }
    std::string name() const override
    {
        return preemption_enabled_ ? "qos-preempt" : "qos-nopreempt";
    }
    ScheduleDecision schedule(const SchedulerContext &ctx) override;

  private:
    bool preemption_enabled_;
    double cost_threshold_gpu_s_;
};

/** Least-attained-service (Tiresias-like) two-queue scheduler. */
class LasScheduler : public Scheduler
{
  public:
    explicit LasScheduler(double queue_threshold_gpu_s = 3600.0,
                          double cost_threshold_gpu_s = 0)
        : threshold_(queue_threshold_gpu_s),
          cost_threshold_gpu_s_(cost_threshold_gpu_s)
    {
    }
    std::string name() const override { return "las"; }
    ScheduleDecision schedule(const SchedulerContext &ctx) override;
    Duration tick_period() const override { return Duration::minutes(5); }

  private:
    double threshold_;
    double cost_threshold_gpu_s_;
};

/** Cluster-wide round-robin gang time-slicing. */
class GangScheduler : public Scheduler
{
  public:
    explicit GangScheduler(Duration quantum = Duration::minutes(10))
        : quantum_(quantum)
    {
    }
    std::string name() const override { return "gang"; }
    ScheduleDecision schedule(const SchedulerContext &ctx) override;
    Duration tick_period() const override { return quantum_; }

  private:
    Duration quantum_;
    /** Round-robin recency: last quantum index each job was served. */
    std::unordered_map<cluster::JobId, uint64_t> last_served_;
    uint64_t round_ = 0;
};

/** Dominant-resource fairness across accounting groups. */
class DrfScheduler : public Scheduler
{
  public:
    std::string name() const override { return "drf"; }
    ScheduleDecision schedule(const SchedulerContext &ctx) override;
};

/**
 * Earliest-deadline-first over the pending queue; the preemptive variant
 * lets urgent deadline jobs (slack below the urgency window) preempt
 * later-deadline or deadline-free preemptible jobs.
 */
class EdfScheduler : public Scheduler
{
  public:
    explicit EdfScheduler(bool preemption_enabled = false,
                          Duration urgency_window = Duration::minutes(30))
        : preemption_enabled_(preemption_enabled),
          urgency_window_(urgency_window)
    {
    }
    std::string name() const override
    {
        return preemption_enabled_ ? "edf-preempt" : "edf";
    }
    ScheduleDecision schedule(const SchedulerContext &ctx) override;
    Duration tick_period() const override { return Duration::minutes(5); }

  private:
    bool preemption_enabled_;
    Duration urgency_window_;
};

/** Goodput-driven elastic re-allocation (Pollux-like). */
class ElasticScheduler : public Scheduler
{
  public:
    explicit ElasticScheduler(Duration period = Duration::minutes(2))
        : period_(period)
    {
    }
    std::string name() const override { return "elastic"; }
    ScheduleDecision schedule(const SchedulerContext &ctx) override;
    Duration tick_period() const override { return period_; }

  private:
    Duration period_;
};

/**
 * Builds a scheduler by name: "fifo", "fifo-skip", "sjf", "fairshare",
 * "backfill-easy", "backfill-cons", "qos-preempt", "qos-nopreempt", "las",
 * "gang", "drf", "elastic". @return nullptr for unknown names.
 */
std::unique_ptr<Scheduler> make_scheduler(const std::string &name,
                                          const SchedulerOptions &opts = {});

/** All factory names, for sweep benches. */
std::vector<std::string> scheduler_names();

} // namespace tacc::sched
