#include "sched/capacity_profile.h"

#include <algorithm>
#include <cassert>

namespace tacc::sched {

CapacityProfile::CapacityProfile(TimePoint now, int free_now)
    : now_(now), horizon_(now + Duration::days(365))
{
    time_.push_back(now);
    capacity_.push_back(free_now);
}

TimePoint
CapacityProfile::clamp_end(TimePoint start, Duration duration) const
{
    // Avoid overflow on absurd durations; the horizon is beyond any
    // simulated workload.
    if (duration > horizon_ - start)
        return horizon_;
    return start + duration;
}

void
CapacityProfile::add_release(TimePoint t, int gpus)
{
    assert(gpus >= 0);
    if (gpus == 0)
        return;
    t = std::max(t, now_);
    t = std::min(t, horizon_);
    // Insert a breakpoint at t (if missing), then raise capacity from t on.
    auto it = std::lower_bound(time_.begin(), time_.end(), t);
    size_t idx = size_t(it - time_.begin());
    if (it == time_.end() || *it != t) {
        time_.insert(it, t);
        capacity_.insert(capacity_.begin() + long(idx),
                         capacity_[idx - 1]);
    }
    for (size_t i = idx; i < capacity_.size(); ++i)
        capacity_[i] += gpus;
}

int
CapacityProfile::capacity_at(TimePoint t) const
{
    auto it = std::upper_bound(time_.begin(), time_.end(), t);
    assert(it != time_.begin());
    return capacity_[size_t(it - time_.begin()) - 1];
}

TimePoint
CapacityProfile::earliest_fit(int gpus, Duration duration) const
{
    assert(gpus >= 0);
    for (size_t start_idx = 0; start_idx < time_.size(); ++start_idx) {
        const TimePoint start = time_[start_idx];
        const TimePoint end = clamp_end(start, duration);
        bool fits = true;
        for (size_t i = start_idx; i < time_.size() && time_[i] < end; ++i) {
            if (capacity_[i] < gpus) {
                fits = false;
                break;
            }
        }
        if (fits)
            return start;
    }
    return TimePoint::max();
}

void
CapacityProfile::reserve(TimePoint start, Duration duration, int gpus)
{
    assert(gpus >= 0);
    if (gpus == 0)
        return;
    start = std::max(start, now_);
    const TimePoint end = clamp_end(start, duration);
    if (end <= start)
        return;

    auto ensure_breakpoint = [&](TimePoint t) {
        auto it = std::lower_bound(time_.begin(), time_.end(), t);
        const size_t idx = size_t(it - time_.begin());
        if (it == time_.end() || *it != t) {
            assert(idx > 0);
            time_.insert(it, t);
            capacity_.insert(capacity_.begin() + long(idx),
                             capacity_[idx - 1]);
        }
    };
    ensure_breakpoint(start);
    if (end < horizon_)
        ensure_breakpoint(end);

    for (size_t i = 0; i < time_.size(); ++i) {
        if (time_[i] >= start && time_[i] < end)
            capacity_[i] -= gpus;
    }
}

} // namespace tacc::sched
