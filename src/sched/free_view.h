/**
 * @file
 * Trial-allocation view of cluster free capacity.
 *
 * Schedulers plan several starts (and preemptions) per decision without
 * touching the real cluster; FreeView is the cheap scratch copy of per-node
 * free GPU counts they plan against.
 */
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "cluster/types.h"

namespace tacc::sched {

/** Mutable snapshot of free GPUs per node. */
class FreeView
{
  public:
    explicit FreeView(const cluster::Cluster &cluster);

    int free(cluster::NodeId node) const { return free_[node]; }
    int total_free() const { return total_free_; }
    int node_count() const { return int(free_.size()); }
    /** GPU capacity of one node (racks may differ in hardware). */
    int node_capacity(cluster::NodeId node) const
    {
        return capacity_[node];
    }
    /** Largest per-node capacity in the cluster. */
    int max_node_capacity() const { return max_capacity_; }

    /** Removes a placement's GPUs from the view. */
    void take(const cluster::Placement &placement);

    /** Returns a placement's GPUs to the view (e.g. a planned victim). */
    void give(const cluster::Placement &placement);

    /** True if some single node has at least n free GPUs. */
    bool fits_single_node(int n) const;

    /** True if every slice of the placement still fits in the view. */
    bool fits(const cluster::Placement &placement) const;

  private:
    std::vector<int> free_;
    std::vector<int> capacity_;
    int total_free_ = 0;
    int max_capacity_ = 0;
};

} // namespace tacc::sched
