/**
 * @file
 * Trial-allocation view of cluster free capacity.
 *
 * Schedulers plan several starts (and preemptions) per decision without
 * touching the real cluster; FreeView is the cheap scratch copy of per-node
 * free GPU counts they plan against.
 *
 * Beyond the raw per-node counts, the view keeps an incremental bucket
 * index: a bitmap of nodes per free count, suffix counts of nodes with at
 * least k free GPUs, and per-rack free totals. take()/give() update the
 * index in O(slice GPUs); in exchange fits_single_node() is O(1) and
 * tightest_single_node() / nodes_fullest_first() avoid the O(nodes) scans
 * and sorts the placement policies otherwise repeat for every candidate
 * job. The index is pure acceleration: every query returns exactly what
 * the straightforward linear scan over free() would (the property tests
 * pin this down).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/types.h"

namespace tacc::sched {

/** Mutable, index-accelerated snapshot of free GPUs per node. */
class FreeView
{
  public:
    /** Empty view; reset() must run before any query. */
    FreeView() = default;
    explicit FreeView(const cluster::Cluster &cluster);

    /**
     * Re-snapshots the cluster, reusing this view's storage. Nodes that
     * are not schedulable per the cluster's health tracker (cordoned,
     * draining, down, repairing) are masked: their free count snapshots
     * as 0 and take()/give() ignore slices on them, so neither a planned
     * start nor a planned preemption victim can expose their capacity.
     */
    void reset(const cluster::Cluster &cluster);

    int free(cluster::NodeId node) const { return free_[node]; }

    /** False when the node is health-masked out of this view. */
    bool
    schedulable(cluster::NodeId node) const
    {
        return !masked_ || schedulable_[size_t(node)] != 0;
    }
    int total_free() const { return total_free_; }
    int node_count() const { return int(free_.size()); }
    /** GPU capacity of one node (racks may differ in hardware). */
    int node_capacity(cluster::NodeId node) const
    {
        return capacity_[node];
    }
    /** Largest per-node capacity in the cluster. */
    int max_node_capacity() const { return max_capacity_; }

    /** Removes a placement's GPUs from the view. */
    void take(const cluster::Placement &placement);

    /** Returns a placement's GPUs to the view (e.g. a planned victim). */
    void give(const cluster::Placement &placement);

    /** True if some single node has at least n free GPUs. O(1). */
    bool
    fits_single_node(int n) const
    {
        if (n <= 0)
            return !free_.empty();
        return n <= max_capacity_ && count_ge_[size_t(n)] > 0;
    }

    /** True if every slice of the placement still fits in the view. */
    bool fits(const cluster::Placement &placement) const;

    /**
     * Tightest single node able to host the whole gang: smallest free
     * count >= gpus, lowest node id on ties (the order a forward linear
     * scan would pick). Nodes outside the eligibility mask are skipped.
     * @return kInvalidNode if none (or if gpus > per_node_limit).
     */
    cluster::NodeId
    tightest_single_node(int gpus, int per_node_limit,
                         const std::vector<uint8_t> *eligible = nullptr)
        const;

    /**
     * Fills `out` with every node holding free GPUs, ordered (free desc,
     * node id asc) — the stable fullest-first order greedy fills use.
     * Fully-busy nodes are omitted; a fill can never take from them.
     */
    void nodes_fullest_first(std::vector<cluster::NodeId> &out) const;

    int rack_count() const { return int(rack_free_.size()); }
    /** Free GPUs summed over the rack's nodes. */
    int rack_free(int rack) const { return rack_free_[size_t(rack)]; }
    int rack_of(cluster::NodeId node) const
    {
        return int(node) / nodes_per_rack_;
    }
    int nodes_per_rack() const { return nodes_per_rack_; }

  private:
    /** Moves a node between free-count buckets, keeping every aggregate
     *  (bitmaps, suffix counts, rack totals) consistent. */
    void move_bucket(cluster::NodeId node, int from, int to);

    std::vector<int> free_;
    std::vector<int> capacity_;
    /** Health mask; empty (masked_ == false) when every node is usable. */
    std::vector<uint8_t> schedulable_;
    bool masked_ = false;
    int total_free_ = 0;
    int max_capacity_ = 0;
    int nodes_per_rack_ = 1;

    /** @name Bucket index (see file header). */
    ///@{
    size_t bucket_words_ = 0; ///< 64-bit words per free-count bitmap
    /** Bitmap of nodes with exactly f free GPUs, at [f * bucket_words_). */
    std::vector<uint64_t> bits_;
    std::vector<int> bucket_count_; ///< nodes with exactly f free
    std::vector<int> count_ge_;     ///< nodes with at least f free
    std::vector<int> rack_free_;
    ///@}
};

} // namespace tacc::sched
