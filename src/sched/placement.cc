#include "sched/placement.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/strings.h"

namespace tacc::sched {

namespace {

using cluster::NodeId;
using cluster::Placement;
using cluster::PlacementSlice;

/** Builds a slice whose index list only conveys the GPU count. */
PlacementSlice
make_slice(NodeId node, int count)
{
    PlacementSlice slice;
    slice.node = node;
    slice.gpu_indices.resize(size_t(count));
    std::iota(slice.gpu_indices.begin(), slice.gpu_indices.end(), 0);
    return slice;
}

Status
no_fit(int gpus)
{
    return Status::resource_exhausted(
        strfmt("cannot place %d GPUs now", gpus));
}

bool
node_ok(const std::vector<uint8_t> *eligible, NodeId node)
{
    return !eligible || (*eligible)[node];
}

/**
 * Greedy fill over a given node order: take up to per_node_limit from each
 * eligible node until the demand is met.
 */
StatusOr<Placement>
fill_in_order(const FreeView &view, const std::vector<NodeId> &order,
              int gpus, int per_node_limit,
              const std::vector<uint8_t> *eligible)
{
    Placement out;
    int remaining = gpus;
    for (NodeId node : order) {
        if (remaining == 0)
            break;
        if (!node_ok(eligible, node))
            continue;
        const int take =
            std::min({view.free(node), per_node_limit, remaining});
        if (take > 0) {
            out.slices.push_back(make_slice(node, take));
            remaining -= take;
        }
    }
    if (remaining > 0)
        return no_fit(gpus);
    return out;
}

std::vector<NodeId>
all_nodes(const FreeView &view)
{
    std::vector<NodeId> order(size_t(view.node_count()));
    std::iota(order.begin(), order.end(), NodeId(0));
    return order;
}

/** Nodes of one rack in id order (nodes are laid out rack-major). */
std::vector<NodeId>
rack_nodes(const cluster::Topology &topo, int rack)
{
    const int per_rack = topo.config().nodes_per_rack;
    std::vector<NodeId> nodes;
    nodes.reserve(size_t(per_rack));
    const NodeId lo = NodeId(rack * per_rack);
    for (NodeId n = lo; n < lo + NodeId(per_rack); ++n)
        nodes.push_back(n);
    return nodes;
}

} // namespace

StatusOr<Placement>
FirstFitPlacement::plan(const FreeView &view, const cluster::Topology &,
                        int gpus, int per_node_limit,
                        const std::vector<uint8_t> *eligible)
{
    assert(gpus > 0 && per_node_limit > 0);
    return fill_in_order(view, all_nodes(view), gpus, per_node_limit,
                         eligible);
}

StatusOr<Placement>
PackPlacement::plan(const FreeView &view, const cluster::Topology &,
                    int gpus, int per_node_limit,
                    const std::vector<uint8_t> *eligible)
{
    assert(gpus > 0 && per_node_limit > 0);
    const NodeId single =
        view.tightest_single_node(gpus, per_node_limit, eligible);
    if (single != cluster::kInvalidNode) {
        Placement out;
        out.slices.push_back(make_slice(single, gpus));
        return out;
    }
    // Fewest nodes: fullest-free-first, stable by id — the view's bucket
    // index hands out exactly that order without a sort.
    view.nodes_fullest_first(order_scratch_);
    return fill_in_order(view, order_scratch_, gpus, per_node_limit,
                         eligible);
}

StatusOr<Placement>
SpreadPlacement::plan(const FreeView &view, const cluster::Topology &,
                      int gpus, int per_node_limit,
                      const std::vector<uint8_t> *eligible)
{
    assert(gpus > 0 && per_node_limit > 0);
    std::vector<int> taken(size_t(view.node_count()), 0);
    int remaining = gpus;
    while (remaining > 0) {
        // Emptiest node (most free after what we already took here).
        NodeId best = cluster::kInvalidNode;
        int best_room = 0;
        for (NodeId n = 0; n < NodeId(view.node_count()); ++n) {
            if (!node_ok(eligible, n))
                continue;
            const int room =
                std::min(view.free(n) - taken[n], per_node_limit - taken[n]);
            if (room > best_room) {
                best_room = room;
                best = n;
            }
        }
        if (best == cluster::kInvalidNode)
            return no_fit(gpus);
        ++taken[best];
        --remaining;
    }
    Placement out;
    for (NodeId n = 0; n < NodeId(view.node_count()); ++n) {
        if (taken[n] > 0)
            out.slices.push_back(make_slice(n, taken[n]));
    }
    return out;
}

StatusOr<Placement>
TopologyAwarePlacement::plan(const FreeView &view,
                             const cluster::Topology &topo, int gpus,
                             int per_node_limit,
                             const std::vector<uint8_t> *eligible)
{
    assert(gpus > 0 && per_node_limit > 0);
    const NodeId single =
        view.tightest_single_node(gpus, per_node_limit, eligible);
    if (single != cluster::kInvalidNode) {
        Placement out;
        out.slices.push_back(make_slice(single, gpus));
        return out;
    }

    // Capacity usable per rack under the per-node cap. With no mask and a
    // cap at least every node's capacity, min(free, cap) == free and the
    // view's incremental rack totals already hold the answer.
    const int racks = topo.racks();
    std::vector<int> rack_capacity(size_t(racks), 0);
    if (!eligible && per_node_limit >= view.max_node_capacity()) {
        for (int r = 0; r < racks; ++r)
            rack_capacity[size_t(r)] = view.rack_free(r);
    } else {
        for (NodeId n = 0; n < NodeId(view.node_count()); ++n) {
            if (!node_ok(eligible, n))
                continue;
            rack_capacity[size_t(topo.rack_of(n))] +=
                std::min(view.free(n), per_node_limit);
        }
    }

    // Tightest single rack that fits.
    int best_rack = -1;
    for (int r = 0; r < racks; ++r) {
        if (rack_capacity[size_t(r)] >= gpus &&
            (best_rack < 0 ||
             rack_capacity[size_t(r)] < rack_capacity[size_t(best_rack)])) {
            best_rack = r;
        }
    }
    if (best_rack >= 0) {
        auto order = rack_nodes(topo, best_rack);
        // Fewest nodes within the rack.
        std::stable_sort(order.begin(), order.end(),
                         [&](NodeId a, NodeId b) {
                             return view.free(a) > view.free(b);
                         });
        return fill_in_order(view, order, gpus, per_node_limit, eligible);
    }

    // Fewest racks: roomiest racks first, fullest nodes inside each.
    std::vector<int> rack_order(static_cast<size_t>(racks));
    std::iota(rack_order.begin(), rack_order.end(), 0);
    std::stable_sort(rack_order.begin(), rack_order.end(),
                     [&](int a, int b) {
                         return rack_capacity[size_t(a)] >
                                rack_capacity[size_t(b)];
                     });
    std::vector<NodeId> order;
    order.reserve(size_t(view.node_count()));
    for (int r : rack_order) {
        auto in_rack = rack_nodes(topo, r);
        std::stable_sort(in_rack.begin(), in_rack.end(),
                         [&](NodeId a, NodeId b) {
                             return view.free(a) > view.free(b);
                         });
        order.insert(order.end(), in_rack.begin(), in_rack.end());
    }
    return fill_in_order(view, order, gpus, per_node_limit, eligible);
}

StatusOr<Placement>
AntiAffinityPlacement::plan(const FreeView &view,
                            const cluster::Topology &topo, int gpus,
                            int per_node_limit,
                            const std::vector<uint8_t> *eligible)
{
    assert(gpus > 0 && per_node_limit > 0);
    // One node is one fault domain no matter the policy; keep NVLink
    // locality for gangs that fit.
    const NodeId single =
        view.tightest_single_node(gpus, per_node_limit, eligible);
    if (single != cluster::kInvalidNode) {
        Placement out;
        out.slices.push_back(make_slice(single, gpus));
        return out;
    }

    const int racks = topo.racks();
    std::vector<int> rack_capacity(size_t(racks), 0);
    for (NodeId n = 0; n < NodeId(view.node_count()); ++n) {
        if (!node_ok(eligible, n))
            continue;
        rack_capacity[size_t(topo.rack_of(n))] +=
            std::min(view.free(n), per_node_limit);
    }

    // Roomiest racks first so per-rack quotas are met where possible.
    std::vector<int> rack_order;
    rack_order.reserve(size_t(racks));
    for (int r = 0; r < racks; ++r) {
        if (rack_capacity[size_t(r)] > 0)
            rack_order.push_back(r);
    }
    std::stable_sort(rack_order.begin(), rack_order.end(),
                     [&](int a, int b) {
                         return rack_capacity[size_t(a)] >
                                rack_capacity[size_t(b)];
                     });

    // Even split: each rack contributes at most ceil(remaining / racks
    // left), so losing any one rack loses roughly 1/R of the gang. Racks
    // too small for their quota push the slack onto later (smaller)
    // racks; a final top-up pass relaxes the quota so a fit is never
    // refused when raw capacity exists.
    std::vector<int> taken(size_t(view.node_count()), 0);
    std::vector<NodeId> fill_order;
    fill_order.reserve(size_t(view.node_count()));
    for (int r : rack_order) {
        auto in_rack = rack_nodes(topo, r);
        std::stable_sort(in_rack.begin(), in_rack.end(),
                         [&](NodeId a, NodeId b) {
                             return view.free(a) > view.free(b);
                         });
        fill_order.insert(fill_order.end(), in_rack.begin(),
                          in_rack.end());
    }
    const auto take_from = [&](NodeId node, int cap) {
        if (!node_ok(eligible, node))
            return 0;
        const int take = std::min(
            {view.free(node) - taken[node], per_node_limit - taken[node],
             cap});
        if (take > 0)
            taken[node] += take;
        return std::max(take, 0);
    };

    int remaining = gpus;
    int racks_left = int(rack_order.size());
    size_t cursor = 0;
    for (int r : rack_order) {
        const int quota =
            remaining == 0 ? 0 : (remaining + racks_left - 1) / racks_left;
        --racks_left;
        int budget = std::min(quota, rack_capacity[size_t(r)]);
        const int per_rack = topo.config().nodes_per_rack;
        for (int i = 0; i < per_rack && budget > 0; ++i) {
            const int got = take_from(fill_order[cursor + size_t(i)],
                                      std::min(budget, remaining));
            budget -= got;
            remaining -= got;
        }
        cursor += size_t(per_rack);
    }
    for (size_t i = 0; i < fill_order.size() && remaining > 0; ++i)
        remaining -= take_from(fill_order[i], remaining);
    if (remaining > 0)
        return no_fit(gpus);

    Placement out;
    for (NodeId n = 0; n < NodeId(view.node_count()); ++n) {
        if (taken[n] > 0)
            out.slices.push_back(make_slice(n, taken[n]));
    }
    return out;
}

StatusOr<Placement>
RandomPlacement::plan(const FreeView &view, const cluster::Topology &,
                      int gpus, int per_node_limit,
                      const std::vector<uint8_t> *eligible)
{
    assert(gpus > 0 && per_node_limit > 0);
    auto order = [&] {
        std::vector<NodeId> nodes(size_t(view.node_count()));
        std::iota(nodes.begin(), nodes.end(), NodeId(0));
        rng_.shuffle(nodes);
        return nodes;
    }();
    return fill_in_order(view, order, gpus, per_node_limit, eligible);
}

std::unique_ptr<PlacementPolicy>
make_placement_policy(const std::string &name, uint64_t seed)
{
    if (name == "firstfit")
        return std::make_unique<FirstFitPlacement>();
    if (name == "pack")
        return std::make_unique<PackPlacement>();
    if (name == "spread")
        return std::make_unique<SpreadPlacement>();
    if (name == "topology")
        return std::make_unique<TopologyAwarePlacement>();
    if (name == "antiaffinity")
        return std::make_unique<AntiAffinityPlacement>();
    if (name == "random")
        return std::make_unique<RandomPlacement>(seed);
    return nullptr;
}

} // namespace tacc::sched
