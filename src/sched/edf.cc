/**
 * @file
 * Deadline-aware scheduling: earliest-deadline-first, optionally with
 * urgency-driven preemption.
 *
 * The task schema carries a per-job completion deadline (a QoS
 * requirement); EDF orders the queue by absolute deadline (deadline-free
 * jobs sort last, by arrival) and starts greedily. The preemptive
 * variant additionally computes each deadline job's *slack* — time to
 * deadline minus predicted remaining runtime — and, when a job with
 * negative-or-small slack cannot start, preempts running preemptible
 * jobs that either have no deadline or a later one (latest-deadline
 * victims first).
 */
#include <algorithm>
#include <unordered_set>

#include "sched/estimator.h"
#include "sched/greedy.h"
#include "sched/schedulers.h"
#include "sched/usage.h"

namespace tacc::sched {

namespace {

/** Predicted runtime: learned estimate when available, else the limit. */
Duration
predicted_runtime(const SchedulerContext &ctx, const workload::Job &job)
{
    return detail::runtime_bound(ctx, job, true);
}

/** Slack = time-to-deadline - predicted remaining runtime. */
Duration
slack(const SchedulerContext &ctx, const workload::Job &job)
{
    const TimePoint deadline = job.absolute_deadline();
    if (deadline == TimePoint::max())
        return Duration::max();
    return (deadline - ctx.now) - predicted_runtime(ctx, job);
}

} // namespace

ScheduleDecision
EdfScheduler::schedule(const SchedulerContext &ctx)
{
    ScheduleDecision out;
    FreeView &view = detail::scratch_view(*ctx.cluster);
    auto held = detail::held_by_group(ctx);
    std::unordered_set<cluster::JobId> already_victim;

    auto order = detail::pending_by_arrival(ctx);
    std::stable_sort(order.begin(), order.end(),
                     [](const workload::Job *a, const workload::Job *b) {
                         return a->absolute_deadline() <
                                b->absolute_deadline();
                     });

    for (workload::Job *job : order) {
        if (detail::try_start(ctx, view, held, job, job->spec().gpus,
                              &out)) {
            continue;
        }
        if (!preemption_enabled_ || !job->spec().has_deadline())
            continue;
        // Only urgent jobs may preempt: slack below the urgency window.
        if (slack(ctx, *job) > urgency_window_)
            continue;
        // Victims: preemptible running jobs with no deadline or a later
        // one; latest deadline (least urgent) first.
        std::vector<const RunningInfo *> candidates;
        for (const auto &r : ctx.running) {
            if (!r.job->spec().preemptible)
                continue;
            if (r.job->absolute_deadline() > job->absolute_deadline())
                candidates.push_back(&r);
        }
        std::stable_sort(candidates.begin(), candidates.end(),
                         [](const RunningInfo *a, const RunningInfo *b) {
                             return a->job->absolute_deadline() >
                                    b->job->absolute_deadline();
                         });

        std::vector<const RunningInfo *> chosen;
        bool started = false;
        for (const RunningInfo *victim : candidates) {
            if (already_victim.contains(victim->job->id()))
                continue;
            view.give(victim->placement);
            held[size_t(victim->job->group_id())] -=
                victim->job->running_gpus();
            chosen.push_back(victim);
            if (view.total_free() < job->spec().gpus)
                continue;
            if (detail::try_start(ctx, view, held, job,
                                  job->spec().gpus, &out)) {
                for (const RunningInfo *v : chosen) {
                    out.preemptions.push_back(v->job->id());
                    already_victim.insert(v->job->id());
                }
                started = true;
                break;
            }
        }
        if (!started) {
            for (const RunningInfo *v : chosen) {
                view.take(v->placement);
                held[size_t(v->job->group_id())] += v->job->running_gpus();
            }
        }
    }
    return out;
}

} // namespace tacc::sched
