/**
 * @file
 * Shared building blocks for scheduler implementations (internal).
 */
#pragma once

#include <vector>

#include "sched/free_view.h"
#include "sched/types.h"

namespace tacc::sched::detail {

/**
 * GPUs currently held per accounting group (from the running set),
 * indexed by workload::Job::group_id(). Sized for every group interned
 * so far, so any job visible to the scheduler indexes in range.
 */
std::vector<int> held_by_group(const SchedulerContext &ctx);

/**
 * Attempts to start one job with `gpus` devices: checks the group quota,
 * plans a placement against the trial view, and on success records the
 * start in `out` and debits `view` and `held`.
 * @return true if the start was planned.
 */
bool try_start(const SchedulerContext &ctx, FreeView &view,
               std::vector<int> &held, workload::Job *job, int gpus,
               ScheduleDecision *out);

/**
 * Plans starts for jobs in the given order.
 * @param stop_on_block true = stop at the first job that cannot start
 *        (head-of-line semantics); false = skip it and keep trying.
 */
ScheduleDecision greedy(const SchedulerContext &ctx,
                        const std::vector<workload::Job *> &order,
                        bool stop_on_block);

/**
 * Pending jobs sorted by (submit time, id). When the context's pending
 * view is flagged pre-sorted, this is a plain copy.
 */
std::vector<workload::Job *> pending_by_arrival(const SchedulerContext &ctx);

/**
 * Thread-local trial view re-snapshotted from the cluster. Schedulers run
 * on every queue event; reusing one view's storage avoids re-allocating
 * the per-node arrays and the bucket index each decision. At most one
 * scratch view may be in use at a time (every policy builds exactly one
 * view per decision, so this holds today).
 */
FreeView &scratch_view(const cluster::Cluster &cluster);

/** Effective per-node GPU cap for a job in this cluster. */
int per_node_limit(const SchedulerContext &ctx, const workload::Job &job);

/**
 * Runtime bound for reservations/ordering: the learned prediction when
 * requested (by the policy's use_estimates knob or the stack's
 * predictions_authoritative flag) and available, otherwise the user's
 * time limit.
 */
Duration runtime_bound(const SchedulerContext &ctx,
                       const workload::Job &job, bool use_estimates);

} // namespace tacc::sched::detail
