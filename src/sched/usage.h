/**
 * @file
 * Fair-share usage accounting and group quota enforcement.
 *
 * UsageTracker keeps exponentially-decayed GPU-seconds per accounting key
 * (user or group) — the Slurm fair-share "effective usage" with a
 * configurable half-life. QuotaManager caps the GPUs a group may hold at
 * once (the paper's "user quota management").
 */
#pragma once

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/time.h"

namespace tacc::sched {

/** Exponentially-decayed service accumulator per accounting key. */
class UsageTracker
{
  public:
    explicit UsageTracker(Duration half_life = Duration::hours(24));

    /** Adds gpu_seconds of service for key, observed at time now. */
    void charge(const std::string &key, double gpu_seconds, TimePoint now);

    /** Decayed usage of key as of time now (0 for unknown keys). */
    double usage(const std::string &key, TimePoint now) const;

    /**
     * Sum of decayed usage over all keys as of now. The sum for a given
     * instant is cached until the next charge, so fair-share ranking
     * (which asks for every key's share at one decision timestamp) and
     * the ops collectors stay O(keys) per timestamp instead of
     * O(keys^2); cached and uncached results are bit-identical.
     */
    double total_usage(TimePoint now) const;

    /**
     * Key's share of total decayed usage, in [0, 1]; returns 0 when no
     * usage has been recorded anywhere.
     */
    double usage_share(const std::string &key, TimePoint now) const;

    Duration half_life() const { return half_life_; }

    size_t key_count() const { return entries_.size(); }

    /**
     * Decayed usage of every key as of now, sorted by key — the
     * deterministic view the ops collectors and accounting reports
     * iterate.
     */
    std::vector<std::pair<std::string, double>> snapshot(TimePoint now)
        const;

  private:
    struct Entry {
        double value = 0;
        TimePoint updated;
    };

    double decayed(const Entry &e, TimePoint now) const;

    Duration half_life_;
    std::unordered_map<std::string, Entry> entries_;
    /** Memoized total_usage(now); invalidated by charge(). */
    mutable TimePoint total_cached_at_;
    mutable double total_cached_ = 0;
    mutable bool total_cache_valid_ = false;
};

/** Per-group concurrent GPU caps. */
class QuotaManager
{
  public:
    QuotaManager() = default;

    /** Sets the cap for one group (replaces any previous value). */
    void set_group_quota(const std::string &group, int max_gpus);

    /** Cap applied to groups without an explicit entry (<0 = unlimited). */
    void set_default_quota(int max_gpus) { default_quota_ = max_gpus; }

    int quota_of(const std::string &group) const;

    /** True if granting `request` more GPUs would push the group over. */
    bool would_exceed(const std::string &group, int gpus_held,
                      int request) const;

  private:
    std::unordered_map<std::string, int> quotas_;
    int default_quota_ = -1;
};

} // namespace tacc::sched
