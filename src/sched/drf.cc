/**
 * @file
 * Dominant Resource Fairness across accounting groups.
 *
 * Resources are GPUs and CPU cores. Each round the group with the lowest
 * dominant share that still has a startable job receives its oldest
 * pending job; shares update and the round repeats until nothing fits.
 */
#include <algorithm>
#include <map>

#include "sched/greedy.h"
#include "sched/schedulers.h"
#include "sched/usage.h"

namespace tacc::sched {

ScheduleDecision
DrfScheduler::schedule(const SchedulerContext &ctx)
{
    ScheduleDecision out;
    FreeView &view = detail::scratch_view(*ctx.cluster);
    auto held = detail::held_by_group(ctx);

    const double total_gpus = std::max(1, ctx.cluster->total_gpus());
    const double total_cpus =
        std::max(1, ctx.cluster->node_count() *
                        ctx.cluster->config().node.cpu_cores);

    // Per-group usage in both dimensions (from the running set).
    struct GroupUsage {
        double gpus = 0;
        double cpus = 0;
    };
    std::map<std::string, GroupUsage> usage; // ordered: deterministic ties
    for (const auto &r : ctx.running) {
        auto &u = usage[r.job->spec().group];
        u.gpus += r.job->running_gpus();
        u.cpus += double(r.job->running_gpus()) *
                  r.job->spec().cpu_cores_per_gpu;
    }

    // Per-group pending queues in arrival order.
    std::map<std::string, std::vector<workload::Job *>> queues;
    for (workload::Job *job : detail::pending_by_arrival(ctx))
        queues[job->spec().group].push_back(job);

    auto dominant_share = [&](const std::string &group) {
        const auto &u = usage[group];
        return std::max(u.gpus / total_gpus, u.cpus / total_cpus);
    };

    while (true) {
        // Lowest dominant share among groups with pending work.
        std::string best;
        double best_share = 0;
        for (const auto &[group, queue] : queues) {
            if (queue.empty())
                continue;
            const double share = dominant_share(group);
            if (best.empty() || share < best_share) {
                best = group;
                best_share = share;
            }
        }
        if (best.empty())
            break;

        auto &queue = queues[best];
        workload::Job *job = queue.front();
        if (detail::try_start(ctx, view, held, job, job->spec().gpus,
                              &out)) {
            queue.erase(queue.begin());
            auto &u = usage[best];
            u.gpus += job->spec().gpus;
            u.cpus +=
                double(job->spec().gpus) * job->spec().cpu_cores_per_gpu;
        } else {
            // The group's head doesn't fit: the group sits out this cycle
            // (strict DRF progressiveness).
            queue.clear();
        }
    }
    return out;
}

} // namespace tacc::sched
