#include "sched/free_view.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace tacc::sched {

FreeView::FreeView(const cluster::Cluster &cluster)
{
    reset(cluster);
}

void
FreeView::reset(const cluster::Cluster &cluster)
{
    const size_t n = size_t(cluster.node_count());
    const auto &health = cluster.health();
    masked_ = !health.all_healthy() && health.schedulable_count() <
                                           health.node_count();
    free_.clear();
    capacity_.clear();
    free_.reserve(n);
    capacity_.reserve(n);
    if (masked_) {
        schedulable_.clear();
        schedulable_.reserve(n);
        total_free_ = 0;
        for (const auto &node : cluster.nodes()) {
            const bool usable = health.schedulable(node.id());
            schedulable_.push_back(usable ? 1 : 0);
            free_.push_back(usable ? node.free_gpu_count() : 0);
            capacity_.push_back(node.gpu_count());
            total_free_ += free_.back();
        }
    } else {
        for (const auto &node : cluster.nodes()) {
            free_.push_back(node.free_gpu_count());
            capacity_.push_back(node.gpu_count());
        }
        total_free_ = cluster.free_gpus();
    }
    max_capacity_ = cluster.max_gpus_per_node();
    nodes_per_rack_ = cluster.topology().config().nodes_per_rack;

    bucket_words_ = (n + 63) / 64;
    bits_.assign(size_t(max_capacity_ + 1) * bucket_words_, 0);
    bucket_count_.assign(size_t(max_capacity_ + 1), 0);
    count_ge_.assign(size_t(max_capacity_ + 1), 0);
    rack_free_.assign(size_t(cluster.topology().racks()), 0);
    for (size_t i = 0; i < n; ++i) {
        const int f = free_[i];
        assert(f >= 0 && f <= max_capacity_);
        bits_[size_t(f) * bucket_words_ + i / 64] |= uint64_t(1)
                                                     << (i % 64);
        ++bucket_count_[size_t(f)];
        rack_free_[size_t(int(i) / nodes_per_rack_)] += f;
    }
    int running = 0;
    for (int f = max_capacity_; f >= 0; --f) {
        running += bucket_count_[size_t(f)];
        count_ge_[size_t(f)] = running;
    }
}

void
FreeView::move_bucket(cluster::NodeId node, int from, int to)
{
    const size_t word = size_t(node) / 64;
    const uint64_t bit = uint64_t(1) << (size_t(node) % 64);
    bits_[size_t(from) * bucket_words_ + word] &= ~bit;
    bits_[size_t(to) * bucket_words_ + word] |= bit;
    --bucket_count_[size_t(from)];
    ++bucket_count_[size_t(to)];
    if (to > from) {
        for (int f = from + 1; f <= to; ++f)
            ++count_ge_[size_t(f)];
    } else {
        for (int f = to + 1; f <= from; ++f)
            --count_ge_[size_t(f)];
    }
    rack_free_[size_t(rack_of(node))] += to - from;
}

void
FreeView::take(const cluster::Placement &placement)
{
    for (const auto &slice : placement.slices) {
        assert(size_t(slice.node) < free_.size());
        if (masked_ && !schedulable_[size_t(slice.node)])
            continue;
        const int n = int(slice.gpu_indices.size());
        if (n == 0)
            continue;
        const int f = free_[slice.node];
        assert(f >= n);
        free_[slice.node] = f - n;
        total_free_ -= n;
        move_bucket(slice.node, f, f - n);
    }
}

void
FreeView::give(const cluster::Placement &placement)
{
    for (const auto &slice : placement.slices) {
        assert(size_t(slice.node) < free_.size());
        if (masked_ && !schedulable_[size_t(slice.node)])
            continue;
        const int n = int(slice.gpu_indices.size());
        if (n == 0)
            continue;
        const int f = free_[slice.node];
        assert(f + n <= capacity_[slice.node]);
        free_[slice.node] = f + n;
        total_free_ += n;
        move_bucket(slice.node, f, f + n);
    }
}

bool
FreeView::fits(const cluster::Placement &placement) const
{
    for (const auto &slice : placement.slices) {
        assert(size_t(slice.node) < free_.size());
        if (free_[slice.node] < int(slice.gpu_indices.size()))
            return false;
    }
    return true;
}

cluster::NodeId
FreeView::tightest_single_node(int gpus, int per_node_limit,
                               const std::vector<uint8_t> *eligible) const
{
    if (gpus > per_node_limit)
        return cluster::kInvalidNode;
    if (eligible) {
        // Eligibility masks (explicit GPU-model requirements) are rare;
        // the straightforward scan keeps the mask handling obvious.
        cluster::NodeId best = cluster::kInvalidNode;
        int best_free = INT32_MAX;
        for (cluster::NodeId n = 0; n < cluster::NodeId(free_.size());
             ++n) {
            if (!(*eligible)[n])
                continue;
            const int f = free_[n];
            if (f >= gpus && f < best_free) {
                best = n;
                best_free = f;
            }
        }
        return best;
    }
    for (int f = std::max(gpus, 0); f <= max_capacity_; ++f) {
        if (bucket_count_[size_t(f)] == 0)
            continue;
        const uint64_t *words = &bits_[size_t(f) * bucket_words_];
        for (size_t w = 0; w < bucket_words_; ++w) {
            if (words[w]) {
                return cluster::NodeId(w * 64 +
                                       size_t(std::countr_zero(words[w])));
            }
        }
    }
    return cluster::kInvalidNode;
}

void
FreeView::nodes_fullest_first(std::vector<cluster::NodeId> &out) const
{
    out.clear();
    if (max_capacity_ >= 1)
        out.reserve(size_t(count_ge_[1]));
    for (int f = max_capacity_; f >= 1; --f) {
        if (bucket_count_[size_t(f)] == 0)
            continue;
        const uint64_t *words = &bits_[size_t(f) * bucket_words_];
        for (size_t w = 0; w < bucket_words_; ++w) {
            uint64_t word = words[w];
            while (word) {
                out.push_back(cluster::NodeId(
                    w * 64 + size_t(std::countr_zero(word))));
                word &= word - 1;
            }
        }
    }
}

} // namespace tacc::sched
