#include "sched/free_view.h"

#include <cassert>

namespace tacc::sched {

FreeView::FreeView(const cluster::Cluster &cluster)
{
    free_.reserve(size_t(cluster.node_count()));
    capacity_.reserve(size_t(cluster.node_count()));
    for (const auto &node : cluster.nodes()) {
        free_.push_back(node.free_gpu_count());
        capacity_.push_back(node.gpu_count());
    }
    total_free_ = cluster.free_gpus();
    max_capacity_ = cluster.max_gpus_per_node();
}

void
FreeView::take(const cluster::Placement &placement)
{
    for (const auto &slice : placement.slices) {
        assert(size_t(slice.node) < free_.size());
        const int n = int(slice.gpu_indices.size());
        assert(free_[slice.node] >= n);
        free_[slice.node] -= n;
        total_free_ -= n;
    }
}

void
FreeView::give(const cluster::Placement &placement)
{
    for (const auto &slice : placement.slices) {
        assert(size_t(slice.node) < free_.size());
        const int n = int(slice.gpu_indices.size());
        free_[slice.node] += n;
        assert(free_[slice.node] <= capacity_[slice.node]);
        total_free_ += n;
    }
}

bool
FreeView::fits(const cluster::Placement &placement) const
{
    for (const auto &slice : placement.slices) {
        assert(size_t(slice.node) < free_.size());
        if (free_[slice.node] < int(slice.gpu_indices.size()))
            return false;
    }
    return true;
}

bool
FreeView::fits_single_node(int n) const
{
    for (int f : free_) {
        if (f >= n)
            return true;
    }
    return false;
}

} // namespace tacc::sched
