/**
 * @file
 * Preemptive schedulers: strict QoS tiers and least-attained-service.
 */
#include <algorithm>
#include <unordered_set>

#include "sched/greedy.h"
#include "sched/schedulers.h"
#include "sched/usage.h"

namespace tacc::sched {

namespace {

int
qos_tier(const workload::Job &job)
{
    switch (job.spec().qos) {
      case workload::QosClass::kInteractive: return 2;
      case workload::QosClass::kBatch: return 1;
      case workload::QosClass::kBestEffort: return 0;
    }
    return 0;
}

/**
 * Work destroyed by preempting `r` now: GPUs held times the age of the
 * current segment. (Checkpointing bounds the real loss, but the
 * threshold is a policy ceiling, so the conservative estimate is the
 * right one to gate on.)
 */
double
preemption_loss_gpu_s(const RunningInfo &r, TimePoint now)
{
    const double age_s = (now - r.job->segment_start()).to_seconds();
    return double(r.job->running_gpus()) * (age_s > 0 ? age_s : 0.0);
}

/**
 * Tries to start `job` by preempting candidates (in the given order) until
 * a placement plan succeeds. On success the chosen victims and the start
 * are appended to `out` and the view/held bookkeeping reflects them; on
 * failure all trial state is rolled back.
 */
bool
try_start_with_preemption(const SchedulerContext &ctx, FreeView &view,
                          std::vector<int> &held,
                          workload::Job *job,
                          const std::vector<const RunningInfo *> &candidates,
                          std::unordered_set<cluster::JobId> &already_victim,
                          ScheduleDecision *out)
{
    std::vector<const RunningInfo *> chosen;
    for (const RunningInfo *victim : candidates) {
        if (already_victim.contains(victim->job->id()))
            continue;
        view.give(victim->placement);
        held[size_t(victim->job->group_id())] -= victim->job->running_gpus();
        chosen.push_back(victim);
        if (view.total_free() < job->spec().gpus)
            continue; // cheap lower bound before planning
        if (detail::try_start(ctx, view, held, job, job->spec().gpus, out)) {
            for (const RunningInfo *v : chosen) {
                out->preemptions.push_back(v->job->id());
                already_victim.insert(v->job->id());
            }
            return true;
        }
    }
    // Roll back.
    for (const RunningInfo *v : chosen) {
        view.take(v->placement);
        held[size_t(v->job->group_id())] += v->job->running_gpus();
    }
    return false;
}

} // namespace

ScheduleDecision
QosPreemptScheduler::schedule(const SchedulerContext &ctx)
{
    ScheduleDecision out;
    FreeView &view = detail::scratch_view(*ctx.cluster);
    auto held = detail::held_by_group(ctx);
    std::unordered_set<cluster::JobId> already_victim;

    auto order = detail::pending_by_arrival(ctx);
    std::stable_sort(order.begin(), order.end(),
                     [](const workload::Job *a, const workload::Job *b) {
                         return qos_tier(*a) > qos_tier(*b);
                     });

    for (workload::Job *job : order) {
        if (detail::try_start(ctx, view, held, job, job->spec().gpus, &out))
            continue;
        if (!preemption_enabled_)
            continue;
        // Victims: strictly lower tier, preemptible, youngest segment
        // first (least sunk work since the last checkpoint).
        std::vector<const RunningInfo *> candidates;
        for (const auto &r : ctx.running) {
            if (qos_tier(*r.job) < qos_tier(*job) &&
                r.job->spec().preemptible &&
                (cost_threshold_gpu_s_ <= 0 ||
                 preemption_loss_gpu_s(r, ctx.now) <=
                     cost_threshold_gpu_s_)) {
                candidates.push_back(&r);
            }
        }
        std::stable_sort(candidates.begin(), candidates.end(),
                         [](const RunningInfo *a, const RunningInfo *b) {
                             if (qos_tier(*a->job) != qos_tier(*b->job))
                                 return qos_tier(*a->job) <
                                        qos_tier(*b->job);
                             return a->job->segment_start() >
                                    b->job->segment_start();
                         });
        try_start_with_preemption(ctx, view, held, job, candidates,
                                  already_victim, &out);
    }
    return out;
}

ScheduleDecision
LasScheduler::schedule(const SchedulerContext &ctx)
{
    ScheduleDecision out;
    FreeView &view = detail::scratch_view(*ctx.cluster);
    auto held = detail::held_by_group(ctx);
    std::unordered_set<cluster::JobId> already_victim;

    auto queue_of = [&](const workload::Job &job) {
        return job.attained_gpu_seconds(ctx.now) < threshold_ ? 0 : 1;
    };

    auto order = detail::pending_by_arrival(ctx);
    std::stable_sort(order.begin(), order.end(),
                     [&](const workload::Job *a, const workload::Job *b) {
                         if (queue_of(*a) != queue_of(*b))
                             return queue_of(*a) < queue_of(*b);
                         return a->attained_gpu_seconds(ctx.now) <
                                b->attained_gpu_seconds(ctx.now);
                     });

    for (workload::Job *job : order) {
        if (detail::try_start(ctx, view, held, job, job->spec().gpus, &out))
            continue;
        if (queue_of(*job) != 0)
            continue;
        // A short-service job is starved: preempt long-service running
        // jobs, most-attained first (classic LAS).
        std::vector<const RunningInfo *> candidates;
        for (const auto &r : ctx.running) {
            if (queue_of(*r.job) == 1 && r.job->spec().preemptible &&
                (cost_threshold_gpu_s_ <= 0 ||
                 preemption_loss_gpu_s(r, ctx.now) <=
                     cost_threshold_gpu_s_))
                candidates.push_back(&r);
        }
        std::stable_sort(candidates.begin(), candidates.end(),
                         [&](const RunningInfo *a, const RunningInfo *b) {
                             return a->job->attained_gpu_seconds(ctx.now) >
                                    b->job->attained_gpu_seconds(ctx.now);
                         });
        try_start_with_preemption(ctx, view, held, job, candidates,
                                  already_victim, &out);
    }
    return out;
}

} // namespace tacc::sched
