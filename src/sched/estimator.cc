#include "sched/estimator.h"

#include <algorithm>
#include <cassert>

namespace tacc::sched {

RuntimeEstimator::RuntimeEstimator(double safety_factor, double ema_alpha)
    : safety_(safety_factor), alpha_(ema_alpha)
{
    assert(safety_ >= 1.0);
    assert(alpha_ > 0.0 && alpha_ <= 1.0);
}

std::string
RuntimeEstimator::key_of(const workload::Job &job)
{
    return job.spec().user + "|" + job.spec().model;
}

void
RuntimeEstimator::observe(const workload::Job &job)
{
    if (job.state() != workload::JobState::kCompleted)
        return;
    if (job.iterations_done() <= 0 || job.spec().gpus <= 0)
        return;
    // Realized wall service per iteration at the job's requested scale:
    // GPU-seconds normalizes away elastic resizes and retries.
    const double sample = job.gpu_seconds() /
                          double(job.spec().gpus) /
                          double(job.iterations_done());
    auto &entry = entries_[key_of(job)];
    if (entry.count == 0)
        entry.per_iter_s = sample;
    else
        entry.per_iter_s = alpha_ * sample + (1.0 - alpha_) * entry.per_iter_s;
    ++entry.count;
    ++observations_;
}

bool
RuntimeEstimator::has_history(const workload::Job &job) const
{
    auto it = entries_.find(key_of(job));
    return it != entries_.end() && it->second.count > 0;
}

Duration
RuntimeEstimator::predict(const workload::Job &job) const
{
    auto it = entries_.find(key_of(job));
    if (it == entries_.end() || it->second.count == 0)
        return job.spec().time_limit;
    const double predicted_s = it->second.per_iter_s *
                               double(job.spec().iterations) * safety_;
    return std::min(Duration::from_seconds(predicted_s),
                    job.spec().time_limit);
}

} // namespace tacc::sched
