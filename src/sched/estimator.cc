#include "sched/estimator.h"

#include <algorithm>
#include <cassert>

namespace tacc::sched {

RuntimeEstimator::RuntimeEstimator(double safety_factor, double ema_alpha)
    : safety_(safety_factor), alpha_(ema_alpha)
{
    assert(safety_ >= 1.0);
    assert(alpha_ > 0.0 && alpha_ <= 1.0);
}

double
RuntimeEstimator::sample_of(const workload::Job &job)
{
    if (job.state() != workload::JobState::kCompleted)
        return -1.0;
    if (job.iterations_done() <= 0 || job.spec().gpus <= 0)
        return -1.0;
    // Realized wall service per iteration at the job's requested scale:
    // GPU-seconds normalizes away elastic resizes and retries.
    return job.gpu_seconds() / double(job.spec().gpus) /
           double(job.iterations_done());
}

void
RuntimeEstimator::observe(const workload::Job &job)
{
    const double sample = sample_of(job);
    if (sample < 0)
        return;
    auto &entry = entries_[EstimatorKey::of(job)];
    if (entry.count == 0)
        entry.per_iter_s = sample;
    else
        entry.per_iter_s = alpha_ * sample + (1.0 - alpha_) * entry.per_iter_s;
    ++entry.count;
    ++observations_;
}

bool
RuntimeEstimator::has_history(const workload::Job &job) const
{
    auto it = entries_.find(EstimatorKey::of(job));
    return it != entries_.end() && it->second.count > 0;
}

Duration
RuntimeEstimator::predict(const workload::Job &job) const
{
    auto it = entries_.find(EstimatorKey::of(job));
    if (it == entries_.end() || it->second.count == 0)
        return job.spec().time_limit;
    const double predicted_s = it->second.per_iter_s *
                               double(job.spec().iterations) * safety_;
    return std::min(Duration::from_seconds(predicted_s),
                    job.spec().time_limit);
}

Duration
RuntimeEstimator::predict_remaining(const workload::Job &job) const
{
    const double frac =
        job.spec().iterations > 0
            ? double(job.iterations_remaining()) /
                  double(job.spec().iterations)
            : 0.0;
    return Duration::from_seconds(predict(job).to_seconds() *
                                  std::clamp(frac, 0.0, 1.0));
}

} // namespace tacc::sched
