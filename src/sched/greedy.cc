#include "sched/greedy.h"

#include <algorithm>

#include "common/interner.h"
#include "sched/estimator.h"
#include "sched/placement.h"
#include "sched/usage.h"

namespace tacc::sched::detail {

std::vector<int>
held_by_group(const SchedulerContext &ctx)
{
    std::vector<int> held(size_t(StringInterner::groups().size()), 0);
    for (const auto &r : ctx.running)
        held[size_t(r.job->group_id())] += r.job->running_gpus();
    return held;
}

int
per_node_limit(const SchedulerContext &ctx, const workload::Job &job)
{
    return std::min(job.spec().gpus_per_node_limit,
                    ctx.cluster->max_gpus_per_node());
}

bool
try_start(const SchedulerContext &ctx, FreeView &view,
          std::vector<int> &held, workload::Job *job, int gpus,
          ScheduleDecision *out)
{
    const size_t gid = size_t(job->group_id());
    if (ctx.quota &&
        ctx.quota->would_exceed(job->spec().group, held[gid], gpus)) {
        return false;
    }
    if (ctx.power && !ctx.power->admits(gpus)) {
        ++ctx.power->rejections;
        return false;
    }
    const int limit = per_node_limit(ctx, *job);
    const auto apply_filter = [&ctx](std::vector<uint8_t> &mask) {
        for (size_t i = 0; i < mask.size(); ++i)
            mask[i] &= (*ctx.node_filter)[i];
    };

    StatusOr<cluster::Placement> plan =
        Status::resource_exhausted("unplanned");
    if (!job->spec().gpu_model.empty()) {
        // Hard requirement: only nodes with the requested GPU model.
        auto mask = ctx.cluster->eligible_mask(job->spec().gpu_model);
        if (ctx.node_filter)
            apply_filter(mask);
        plan = ctx.placement->plan(view, ctx.cluster->topology(), gpus,
                                   limit, &mask);
    } else if (ctx.avoid_gpu_mixing) {
        // Soft policy: try one hardware generation at a time so a gang
        // never mixes GPU speeds (it would run at the slowest worker).
        for (const auto &model : ctx.cluster->gpu_models()) {
            auto mask = ctx.cluster->eligible_mask(model);
            if (ctx.node_filter)
                apply_filter(mask);
            plan = ctx.placement->plan(view, ctx.cluster->topology(),
                                       gpus, limit, &mask);
            if (plan.is_ok())
                break;
        }
    } else if (ctx.node_filter) {
        plan = ctx.placement->plan(view, ctx.cluster->topology(), gpus,
                                   limit, ctx.node_filter);
    } else {
        plan = ctx.placement->plan(view, ctx.cluster->topology(), gpus,
                                   limit);
    }
    if (!plan.is_ok())
        return false;
    if (ctx.power && !ctx.power->try_commit(plan.value())) {
        ++ctx.power->rejections;
        return false;
    }
    view.take(plan.value());
    held[gid] += gpus;
    out->starts.push_back(StartAction{job->id(), std::move(plan.value())});
    return true;
}

ScheduleDecision
greedy(const SchedulerContext &ctx, const std::vector<workload::Job *> &order,
       bool stop_on_block)
{
    ScheduleDecision out;
    FreeView &view = scratch_view(*ctx.cluster);
    auto held = held_by_group(ctx);
    for (workload::Job *job : order) {
        if (!try_start(ctx, view, held, job, job->spec().gpus, &out) &&
            stop_on_block) {
            break;
        }
    }
    return out;
}

Duration
runtime_bound(const SchedulerContext &ctx, const workload::Job &job,
              bool use_estimates)
{
    // A policy asks for estimates itself (use_estimates), or the stack
    // declares its prediction authority binding for everyone
    // (predictions_authoritative): either way the estimator answers.
    if ((use_estimates || ctx.predictions_authoritative) && ctx.estimator)
        return ctx.estimator->predict(job);
    return job.spec().time_limit;
}

std::vector<workload::Job *>
pending_by_arrival(const SchedulerContext &ctx)
{
    std::vector<workload::Job *> order(ctx.pending.begin(),
                                       ctx.pending.end());
    if (!ctx.pending_sorted) {
        std::stable_sort(
            order.begin(), order.end(),
            [](const workload::Job *a, const workload::Job *b) {
                if (a->submit_time() != b->submit_time())
                    return a->submit_time() < b->submit_time();
                return a->id() < b->id();
            });
    }
    return order;
}

FreeView &
scratch_view(const cluster::Cluster &cluster)
{
    static thread_local FreeView view;
    view.reset(cluster);
    return view;
}

} // namespace tacc::sched::detail
