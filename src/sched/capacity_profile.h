/**
 * @file
 * Piecewise-constant free-capacity timeline used by backfill.
 *
 * The profile starts from the GPUs free right now, gains capacity at the
 * projected end of each running job, and loses capacity where reservations
 * are placed. Backfill asks it two questions: "when is the earliest window
 * with room for this job?" and "does starting this candidate now delay an
 * existing reservation?" (answered implicitly, because reservations have
 * already debited the profile).
 */
#pragma once

#include <vector>

#include "common/time.h"

namespace tacc::sched {

/** Free-GPU capacity as a step function of time. */
class CapacityProfile
{
  public:
    /**
     * @param now start of the timeline
     * @param free_now GPUs free at `now`
     */
    CapacityProfile(TimePoint now, int free_now);

    /** Adds `gpus` of capacity from time t onward (a projected release). */
    void add_release(TimePoint t, int gpus);

    /**
     * Earliest start >= now with capacity >= gpus throughout
     * [start, start + duration). Always exists if gpus never exceeds the
     * eventual total; otherwise returns TimePoint::max().
     */
    TimePoint earliest_fit(int gpus, Duration duration) const;

    /** Debits `gpus` of capacity over [start, start + duration). */
    void reserve(TimePoint start, Duration duration, int gpus);

    /** Capacity at an instant. */
    int capacity_at(TimePoint t) const;

    TimePoint start() const { return now_; }

  private:
    /** Clamps additions so reservations cannot overflow the horizon. */
    TimePoint clamp_end(TimePoint start, Duration duration) const;

    TimePoint now_;
    TimePoint horizon_;
    /** Sorted breakpoints; capacity_[i] holds on [time_[i], time_[i+1]). */
    std::vector<TimePoint> time_;
    std::vector<int> capacity_;
};

} // namespace tacc::sched
