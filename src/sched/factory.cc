#include "sched/schedulers.h"

namespace tacc::sched {

std::unique_ptr<Scheduler>
make_scheduler(const std::string &name, const SchedulerOptions &opts)
{
    if (name == "fifo")
        return std::make_unique<FifoScheduler>(true);
    if (name == "fifo-skip")
        return std::make_unique<FifoScheduler>(false);
    if (name == "sjf")
        return std::make_unique<SjfScheduler>(false);
    if (name == "sjf-pred")
        return std::make_unique<SjfScheduler>(true);
    if (name == "fairshare")
        return std::make_unique<FairShareScheduler>(opts);
    if (name == "backfill-easy")
        return std::make_unique<BackfillScheduler>(false, false,
                                                   opts.backfill_depth);
    if (name == "backfill-cons")
        return std::make_unique<BackfillScheduler>(true, false,
                                                   opts.backfill_depth);
    if (name == "backfill-pred")
        return std::make_unique<BackfillScheduler>(false, true,
                                                   opts.backfill_depth);
    if (name == "backfill-cons-pred")
        return std::make_unique<BackfillScheduler>(true, true,
                                                   opts.backfill_depth);
    if (name == "qos-preempt")
        return std::make_unique<QosPreemptScheduler>(
            true, opts.preempt_cost_threshold_gpu_s);
    if (name == "qos-nopreempt")
        return std::make_unique<QosPreemptScheduler>(false);
    if (name == "las")
        return std::make_unique<LasScheduler>(
            opts.las_queue_threshold_gpu_s,
            opts.preempt_cost_threshold_gpu_s);
    if (name == "gang")
        return std::make_unique<GangScheduler>(opts.gang_quantum);
    if (name == "drf")
        return std::make_unique<DrfScheduler>();
    if (name == "edf")
        return std::make_unique<EdfScheduler>(false);
    if (name == "edf-preempt")
        return std::make_unique<EdfScheduler>(true);
    if (name == "elastic")
        return std::make_unique<ElasticScheduler>(opts.elastic_period);
    return nullptr;
}

std::vector<std::string>
scheduler_names()
{
    return {"fifo",          "fifo-skip",
            "sjf",           "sjf-pred",
            "fairshare",     "backfill-easy",
            "backfill-cons", "backfill-pred",
            "backfill-cons-pred",
            "qos-preempt",   "qos-nopreempt",
            "las",           "gang",
            "drf",           "edf",
            "edf-preempt",   "elastic"};
}

} // namespace tacc::sched
