/**
 * @file
 * Catalog of ML model profiles used by the analytic execution model.
 *
 * A profile captures just what the execution layer needs to derive an
 * iteration time: per-GPU compute work, gradient volume per synchronization,
 * and an achieved-efficiency factor. Values are representative of the
 * published characteristics of each family, not measurements of any
 * particular implementation.
 */
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace tacc::workload {

/** Compute/communication profile of one model family. */
struct ModelProfile {
    std::string name;
    /** Bytes exchanged per data-parallel synchronization (fp32 grads). */
    double param_bytes = 0;
    /** FLOPs per iteration per GPU at the profile's per-GPU batch size. */
    double flops_per_iter = 0;
    /** Fraction of peak TFLOPs this model family achieves in practice. */
    double compute_efficiency = 0.4;
    /**
     * Fraction of the gradient exchange that overlaps with backward
     * compute (communication scheduling a la ByteScheduler/P3 raises it).
     */
    double overlap_fraction = 0.5;
    /** Input-pipeline bytes read from the shared FS per iteration per GPU. */
    double input_mib_per_iter = 8.0;

    /** Pure compute time for one iteration on a GPU with given peak. */
    double
    compute_time_s(double gpu_tflops) const
    {
        return flops_per_iter / (gpu_tflops * 1e12 * compute_efficiency);
    }
};

/** Immutable catalog of known model profiles. */
class ModelCatalog
{
  public:
    /** The built-in catalog (thread-safe static). */
    static const ModelCatalog &instance();

    /** Looks up a profile by name. */
    StatusOr<ModelProfile> find(const std::string &name) const;

    bool contains(const std::string &name) const;

    std::vector<std::string> names() const;

    const std::vector<ModelProfile> &profiles() const { return profiles_; }

  private:
    ModelCatalog();
    std::vector<ModelProfile> profiles_;
};

} // namespace tacc::workload
