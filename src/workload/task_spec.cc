#include "workload/task_spec.h"

#include <sstream>

#include "common/strings.h"

namespace tacc::workload {

const char *
qos_class_name(QosClass qos)
{
    switch (qos) {
      case QosClass::kInteractive: return "interactive";
      case QosClass::kBatch: return "batch";
      case QosClass::kBestEffort: return "besteffort";
    }
    return "unknown";
}

StatusOr<QosClass>
parse_qos_class(const std::string &name)
{
    if (name == "interactive")
        return QosClass::kInteractive;
    if (name == "batch")
        return QosClass::kBatch;
    if (name == "besteffort")
        return QosClass::kBestEffort;
    return Status::invalid_argument("unknown qos class: " + name);
}

const char *
runtime_pref_name(RuntimePref pref)
{
    switch (pref) {
      case RuntimePref::kAuto: return "auto";
      case RuntimePref::kBareMetal: return "baremetal";
      case RuntimePref::kContainer: return "container";
    }
    return "unknown";
}

StatusOr<RuntimePref>
parse_runtime_pref(const std::string &name)
{
    if (name == "auto")
        return RuntimePref::kAuto;
    if (name == "baremetal")
        return RuntimePref::kBareMetal;
    if (name == "container")
        return RuntimePref::kContainer;
    return Status::invalid_argument("unknown runtime: " + name);
}

const char *
transport_pref_name(TransportPref pref)
{
    switch (pref) {
      case TransportPref::kAuto: return "auto";
      case TransportPref::kTcp: return "tcp";
      case TransportPref::kRdma: return "rdma";
      case TransportPref::kInNetwork: return "innetwork";
    }
    return "unknown";
}

StatusOr<TransportPref>
parse_transport_pref(const std::string &name)
{
    if (name == "auto")
        return TransportPref::kAuto;
    if (name == "tcp")
        return TransportPref::kTcp;
    if (name == "rdma")
        return TransportPref::kRdma;
    if (name == "innetwork")
        return TransportPref::kInNetwork;
    return Status::invalid_argument("unknown transport: " + name);
}

Status
TaskSpec::validate() const
{
    if (name.empty())
        return Status::invalid_argument("task name is empty");
    if (user.empty())
        return Status::invalid_argument("user is empty");
    if (group.empty())
        return Status::invalid_argument("group is empty");
    if (gpus <= 0)
        return Status::invalid_argument(strfmt("gpus must be > 0, got %d",
                                               gpus));
    if (gpus_per_node_limit <= 0)
        return Status::invalid_argument("gpus_per_node_limit must be > 0");
    if (cpu_cores_per_gpu < 0 || memory_gb_per_gpu < 0)
        return Status::invalid_argument("negative cpu/memory demand");
    if (time_limit.is_zero() || time_limit.is_negative())
        return Status::invalid_argument("time_limit must be positive");
    if (deadline.is_negative())
        return Status::invalid_argument("deadline must be >= 0");
    if (model.empty())
        return Status::invalid_argument("model is empty");
    if (iterations <= 0)
        return Status::invalid_argument("iterations must be > 0");
    for (const auto &a : artifacts) {
        if (a.name.empty())
            return Status::invalid_argument("artifact with empty name");
        if (a.bytes == 0)
            return Status::invalid_argument("artifact '" + a.name +
                                            "' has zero size");
    }
    if (min_gpus < 0 || max_gpus < 0)
        return Status::invalid_argument("negative elastic bounds");
    if ((min_gpus == 0) != (max_gpus == 0))
        return Status::invalid_argument(
            "elastic bounds must both be set or both be zero");
    if (min_gpus > 0 && (min_gpus > max_gpus || gpus < min_gpus ||
                         gpus > max_gpus)) {
        return Status::invalid_argument(
            strfmt("elastic bounds [%d, %d] must bracket gpus=%d", min_gpus,
                   max_gpus, gpus));
    }
    return Status::ok();
}

std::string
TaskSpec::to_text() const
{
    std::ostringstream os;
    os << "task: " << name << '\n';
    os << "user: " << user << '\n';
    os << "group: " << group << '\n';
    os << "gpus: " << gpus << '\n';
    os << "gpu_model: " << gpu_model << '\n';
    os << "gpus_per_node_limit: " << gpus_per_node_limit << '\n';
    os << "cpu_cores_per_gpu: " << cpu_cores_per_gpu << '\n';
    os << "memory_gb_per_gpu: " << memory_gb_per_gpu << '\n';
    os << "qos: " << qos_class_name(qos) << '\n';
    os << "preemptible: " << (preemptible ? "true" : "false") << '\n';
    os << "time_limit_s: " << time_limit.to_micros() / 1'000'000 << '\n';
    os << "deadline_s: " << deadline.to_micros() / 1'000'000 << '\n';
    os << "model: " << model << '\n';
    os << "iterations: " << iterations << '\n';
    for (const auto &a : artifacts) {
        os << "artifact: " << a.name << ',' << a.bytes << ',' << a.version
           << '\n';
    }
    os << "runtime: " << runtime_pref_name(runtime) << '\n';
    os << "transport: " << transport_pref_name(transport) << '\n';
    os << "image: " << image << '\n';
    os << "min_gpus: " << min_gpus << '\n';
    os << "max_gpus: " << max_gpus << '\n';
    return os.str();
}

StatusOr<TaskSpec>
TaskSpec::parse(const std::string &text)
{
    TaskSpec spec;
    spec.artifacts.clear();

    for (const auto &raw_line : split(text, '\n')) {
        const std::string line{trim(raw_line)};
        if (line.empty() || line[0] == '#')
            continue;
        const size_t colon = line.find(':');
        if (colon == std::string::npos)
            return Status::invalid_argument("malformed line: " + line);
        const std::string key{trim(line.substr(0, colon))};
        const std::string value{trim(line.substr(colon + 1))};

        auto to_int = [&](int64_t &out) -> Status {
            try {
                size_t pos = 0;
                out = std::stoll(value, &pos);
                if (pos != value.size())
                    throw std::invalid_argument(value);
            } catch (const std::exception &) {
                return Status::invalid_argument("bad integer for " + key +
                                                ": " + value);
            }
            return Status::ok();
        };
        auto to_double = [&](double &out) -> Status {
            try {
                size_t pos = 0;
                out = std::stod(value, &pos);
                if (pos != value.size())
                    throw std::invalid_argument(value);
            } catch (const std::exception &) {
                return Status::invalid_argument("bad number for " + key +
                                                ": " + value);
            }
            return Status::ok();
        };

        int64_t iv = 0;
        if (key == "task") {
            spec.name = value;
        } else if (key == "user") {
            spec.user = value;
        } else if (key == "group") {
            spec.group = value;
        } else if (key == "gpus") {
            if (auto s = to_int(iv); !s.is_ok())
                return s;
            spec.gpus = int(iv);
        } else if (key == "gpu_model") {
            spec.gpu_model = value;
        } else if (key == "gpus_per_node_limit") {
            if (auto s = to_int(iv); !s.is_ok())
                return s;
            spec.gpus_per_node_limit = int(iv);
        } else if (key == "cpu_cores_per_gpu") {
            if (auto s = to_int(iv); !s.is_ok())
                return s;
            spec.cpu_cores_per_gpu = int(iv);
        } else if (key == "memory_gb_per_gpu") {
            if (auto s = to_double(spec.memory_gb_per_gpu); !s.is_ok())
                return s;
        } else if (key == "qos") {
            auto q = parse_qos_class(value);
            if (!q.is_ok())
                return q.status();
            spec.qos = q.value();
        } else if (key == "preemptible") {
            if (value != "true" && value != "false")
                return Status::invalid_argument("bad bool: " + value);
            spec.preemptible = value == "true";
        } else if (key == "time_limit_s") {
            if (auto s = to_int(iv); !s.is_ok())
                return s;
            spec.time_limit = Duration::seconds(iv);
        } else if (key == "deadline_s") {
            if (auto s = to_int(iv); !s.is_ok())
                return s;
            spec.deadline = Duration::seconds(iv);
        } else if (key == "model") {
            spec.model = value;
        } else if (key == "iterations") {
            if (auto s = to_int(iv); !s.is_ok())
                return s;
            spec.iterations = iv;
        } else if (key == "artifact") {
            const auto parts = split(value, ',');
            if (parts.size() != 3)
                return Status::invalid_argument("bad artifact: " + value);
            Artifact a;
            a.name = std::string(trim(parts[0]));
            try {
                a.bytes = std::stoull(std::string(trim(parts[1])));
                a.version = std::stoull(std::string(trim(parts[2])));
            } catch (const std::exception &) {
                return Status::invalid_argument("bad artifact: " + value);
            }
            spec.artifacts.push_back(std::move(a));
        } else if (key == "runtime") {
            auto r = parse_runtime_pref(value);
            if (!r.is_ok())
                return r.status();
            spec.runtime = r.value();
        } else if (key == "transport") {
            auto t = parse_transport_pref(value);
            if (!t.is_ok())
                return t.status();
            spec.transport = t.value();
        } else if (key == "image") {
            spec.image = value;
        } else if (key == "min_gpus") {
            if (auto s = to_int(iv); !s.is_ok())
                return s;
            spec.min_gpus = int(iv);
        } else if (key == "max_gpus") {
            if (auto s = to_int(iv); !s.is_ok())
                return s;
            spec.max_gpus = int(iv);
        } else {
            return Status::invalid_argument("unknown key: " + key);
        }
    }

    if (auto s = spec.validate(); !s.is_ok())
        return s;
    return spec;
}

} // namespace tacc::workload
