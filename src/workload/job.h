/**
 * @file
 * Runtime job object: a submitted TaskSpec moving through its lifecycle.
 *
 * State machine (the paper's task lifecycle):
 *
 *   Submitted -> Provisioning -> Pending -> Running -> Completed
 *                                   ^          |
 *                                   +- preempt-+--> Failed / Killed
 *
 * Running happens in *segments*: a segment starts when the scheduler
 * places the job and ends on completion, preemption, failure, or elastic
 * resize. Progress (iterations) accrues per segment, so preempted and
 * resized jobs resume exactly where they stopped.
 */
#pragma once

#include <string>

#include "cluster/types.h"
#include "common/status.h"
#include "common/time.h"
#include "workload/model.h"
#include "workload/task_spec.h"

namespace tacc::workload {

/** Lifecycle states of a job. */
enum class JobState {
    kSubmitted,
    kProvisioning,
    kPending,
    kRunning,
    kCompleted,
    kFailed,
    kKilled,
};

const char *job_state_name(JobState state);

/** True for Completed/Failed/Killed. */
bool job_state_terminal(JobState state);

/** A job instance with progress and accounting. */
class Job
{
  public:
    Job(cluster::JobId id, TaskSpec spec, ModelProfile model,
        TimePoint submit_time);

    cluster::JobId id() const { return id_; }
    const TaskSpec &spec() const { return spec_; }
    /** Interned id of spec().group (StringInterner::groups()); scheduler
     *  hot paths tally per-group state in vectors indexed by this. */
    int group_id() const { return group_id_; }
    /** Interned id of spec().user (StringInterner::users()). */
    int user_id() const { return user_id_; }
    /** Interned id of spec().model (StringInterner::models()). */
    int model_id() const { return model_id_; }
    const ModelProfile &model() const { return model_; }
    JobState state() const { return state_; }
    bool terminal() const { return job_state_terminal(state_); }

    TimePoint submit_time() const { return submit_time_; }
    TimePoint finish_time() const { return finish_time_; }

    int64_t iterations_done() const { return iterations_done_; }
    int64_t
    iterations_remaining() const
    {
        return spec_.iterations - iterations_done_;
    }
    /** Completed fraction in [0, 1] over *finished* segments. */
    double progress() const;
    /** Progress including the in-flight segment (live monitoring). */
    double estimated_progress(TimePoint now) const;

    int preemption_count() const { return preemptions_; }
    int segment_count() const { return segments_; }
    /** GPU-seconds of service over *finished* segments. */
    double gpu_seconds() const { return gpu_seconds_; }
    /** Attained service including the in-flight segment (LAS priority). */
    double attained_gpu_seconds(TimePoint now) const;

    /** GPUs of the current running segment (0 when not running). */
    int running_gpus() const { return segment_gpus_; }
    /** Iteration wall time of the current segment (s). */
    double segment_iteration_s() const { return segment_iter_s_; }
    /** When the current segment was allocated (GPUs held from here). */
    TimePoint segment_start() const { return segment_start_; }
    /** When the current segment begins real iterations (post-startup). */
    TimePoint segment_compute_start() const { return compute_start_; }

    /**
     * Wall time from submission until the first running segment began.
     * Requires the job to have started at least once.
     */
    Duration queueing_delay() const;
    bool has_started() const { return started_; }

    /** Job completion time (finish - submit); requires terminal state. */
    Duration jct() const;

    /** Absolute deadline; TimePoint::max() when the job has none. */
    TimePoint absolute_deadline() const;
    /** True if the job is terminal and finished past its deadline (or
     *  never completed at all while having one). */
    bool missed_deadline() const;

    /** Provisioning (compiler-layer) latency for this job. */
    Duration provision_latency() const;

    /** @name Lifecycle transitions (validated). */
    ///@{
    Status begin_provisioning(TimePoint t);
    Status finish_provisioning(TimePoint t);
    /**
     * Starts a running segment with the given per-iteration wall time.
     * @param gpus GPUs granted (may differ from spec for elastic jobs)
     * @param iteration_s wall seconds per training iteration
     * @param startup runtime startup / checkpoint-restore time at the head
     *        of the segment: GPUs are held but no iterations complete
     */
    Status begin_segment(TimePoint t, int gpus, double iteration_s,
                         Duration startup = Duration::zero());
    /**
     * Ends the current segment at time t, crediting completed iterations
     * (floor of elapsed / iteration time, capped at the remaining work).
     * The job returns to Pending; callers then complete/kill/fail or let
     * the scheduler restart it.
     *
     * @param checkpoint_interval_s crash-recovery crediting:
     *   < 0  graceful stop — the runtime checkpoints on demand, nothing
     *        is lost (the default, used by preemption/completion/kill);
     *   == 0 crash with no periodic checkpoints — the whole segment's
     *        progress is lost;
     *   > 0  crash with periodic checkpoints — progress rolls back to
     *        the last multiple of the interval.
     */
    Status end_segment(TimePoint t, double checkpoint_interval_s = -1.0);
    /** end_segment + preemption accounting. */
    Status preempt(TimePoint t);
    /** Terminal transitions. complete() requires all iterations done. */
    Status complete(TimePoint t);
    Status fail(TimePoint t, const std::string &reason);
    Status kill(TimePoint t);
    ///@}

    const std::string &failure_reason() const { return failure_reason_; }

    /**
     * Time needed to finish the remaining iterations at the given
     * per-iteration time.
     */
    Duration remaining_runtime(double iteration_s) const;

  private:
    Status check_state(JobState expected, const char *op) const;

    cluster::JobId id_;
    TaskSpec spec_;
    int group_id_;
    int user_id_;
    int model_id_;
    ModelProfile model_;
    TimePoint submit_time_;
    TimePoint provision_start_;
    TimePoint provision_end_;
    TimePoint first_start_;
    TimePoint finish_time_;
    JobState state_ = JobState::kSubmitted;

    int64_t iterations_done_ = 0;
    int preemptions_ = 0;
    int segments_ = 0;
    bool started_ = false;
    double gpu_seconds_ = 0;
    std::string failure_reason_;

    TimePoint segment_start_;
    TimePoint compute_start_;
    double segment_iter_s_ = 0;
    int segment_gpus_ = 0;
};

} // namespace tacc::workload
