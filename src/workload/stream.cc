#include "workload/stream.h"

#include <algorithm>

#include "common/strings.h"
#include "workload/trace_io.h"

namespace tacc::workload {

size_t
SyntheticWorkloadStream::pull(std::vector<SubmittedTask> &out,
                              size_t max_count)
{
    size_t appended = 0;
    while (appended < max_count && !gen_.exhausted()) {
        out.push_back(gen_.next());
        ++appended;
    }
    return appended;
}

size_t
VectorWorkloadStream::pull(std::vector<SubmittedTask> &out,
                           size_t max_count)
{
    const size_t n = std::min(max_count, trace_.size() - cursor_);
    out.insert(out.end(), trace_.begin() + long(cursor_),
               trace_.begin() + long(cursor_ + n));
    cursor_ += n;
    return n;
}

FileTraceStream::FileTraceStream(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "r");
    if (!file_) {
        status_ = Status::not_found("cannot open " + path);
        return;
    }
    std::string header;
    if (!read_line(header) ||
        std::string(trim(header)) != trace_csv_header()) {
        status_ = Status::invalid_argument("missing or wrong CSV header: " +
                                           path);
        std::fclose(file_);
        file_ = nullptr;
    }
}

FileTraceStream::~FileTraceStream()
{
    if (file_)
        std::fclose(file_);
}

bool
FileTraceStream::read_line(std::string &line)
{
    line.clear();
    if (!file_)
        return false;
    char buf[512];
    while (std::fgets(buf, sizeof buf, file_)) {
        line += buf;
        if (!line.empty() && line.back() == '\n') {
            line.pop_back();
            return true;
        }
    }
    return !line.empty(); // final unterminated line
}

size_t
FileTraceStream::pull(std::vector<SubmittedTask> &out, size_t max_count)
{
    size_t appended = 0;
    std::string line;
    while (appended < max_count && status_.is_ok() && read_line(line)) {
        const std::string row{trim(line)};
        if (row.empty())
            continue;
        auto entry = parse_trace_row(row, row_);
        if (!entry.is_ok()) {
            status_ = entry.status();
            break;
        }
        const int64_t arrival_us = entry.value().arrival.to_micros();
        if (arrival_us < last_arrival_us_) {
            status_ = Status::invalid_argument(
                strfmt("row %zu: arrivals not sorted", row_ + 1));
            break;
        }
        last_arrival_us_ = arrival_us;
        ++row_;
        out.push_back(std::move(entry.value()));
        ++appended;
    }
    return appended;
}

void
FileTraceStream::rewind()
{
    if (!file_) {
        // Reopen after a constructor or I/O failure was cleared upstream;
        // keep the original status if the file is still unreadable.
        file_ = std::fopen(path_.c_str(), "r");
        if (!file_)
            return;
    }
    std::rewind(file_);
    status_ = Status::ok();
    row_ = 0;
    last_arrival_us_ = INT64_MIN;
    std::string header;
    if (!read_line(header) ||
        std::string(trim(header)) != trace_csv_header()) {
        status_ = Status::invalid_argument("missing or wrong CSV header: " +
                                           path_);
    }
}

} // namespace tacc::workload
