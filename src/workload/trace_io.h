/**
 * @file
 * Trace import/export in a flat CSV schema.
 *
 * Lets operators replay *real* cluster traces (Helios/Philly-style
 * exports can be mapped onto these columns) and lets generated workloads
 * be archived and shared. Columns:
 *
 *   arrival_s,name,user,group,gpus,gpu_model,qos,preemptible,model,
 *   iterations,time_limit_s,deadline_s,min_gpus,max_gpus
 *
 * trace_from_csv(trace_to_csv(t)) reproduces t exactly (arrival times
 * are kept at microsecond precision via fractional seconds).
 */
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "workload/trace.h"

namespace tacc::workload {

/** Serializes a trace (header + one row per task). */
std::string trace_to_csv(const std::vector<SubmittedTask> &trace);

/** The CSV header line shared by every trace parser/writer. */
const char *trace_csv_header();

/**
 * Parses one CSV data row (no header) into a validated task. @p row is
 * the 0-based data-row index; it seeds the standard artifact set the
 * same way trace_from_csv does. Row ordering is the caller's concern.
 */
StatusOr<SubmittedTask> parse_trace_row(const std::string &line,
                                        size_t row);

/**
 * Parses a CSV trace. Rows must be sorted by arrival time; every spec is
 * schema-validated. Artifacts are not part of the wire format; parsed
 * specs get a standard artifact set derived from (user, group) so the
 * compiler layer behaves as it would for generated traces.
 */
StatusOr<std::vector<SubmittedTask>> trace_from_csv(
    const std::string &csv);

/** Writes a trace to a file. */
Status write_trace_file(const std::string &path,
                        const std::vector<SubmittedTask> &trace);

/** Reads a trace from a file. */
StatusOr<std::vector<SubmittedTask>> read_trace_file(
    const std::string &path);

} // namespace tacc::workload
