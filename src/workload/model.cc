#include "workload/model.h"

namespace tacc::workload {

namespace {

constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kGiB = 1024.0 * kMiB;

} // namespace

ModelCatalog::ModelCatalog()
{
    // param_bytes: fp32 gradient volume; flops_per_iter: fwd+bwd at a
    // typical per-GPU batch. overlap_fraction reflects how much of the
    // exchange hides under backward compute for the family.
    profiles_ = {
        // Vision classification: moderate compute, small gradients.
        {"resnet50", 102.0 * kMiB, 0.78e12, 0.45, 0.70, 5.0},
        // Heavy-classifier outlier: huge dense layers, comm-bound.
        {"vgg19", 548.0 * kMiB, 1.20e12, 0.50, 0.50, 5.0},
        // Transformer encoder fine-tuning; bucketed DDP overlaps well.
        {"bert-large", 1.36 * kGiB, 3.80e12, 0.42, 0.75, 0.6},
        // Mid-size autoregressive LM.
        {"gpt2-xl", 6.2 * kGiB, 9.50e12, 0.40, 0.80, 0.8},
        // Vision transformer pretraining.
        {"vit-huge", 2.5 * kGiB, 6.00e12, 0.45, 0.75, 4.0},
        // Recommendation: small dense part, embedding-dominated.
        {"dlrm", 420.0 * kMiB, 0.55e12, 0.25, 0.40, 10.0},
        // RL policy: tiny network, env-step bound (low efficiency).
        {"rl-ppo", 12.0 * kMiB, 0.08e12, 0.10, 0.30, 0.1},
        // Speech.
        {"conformer", 480.0 * kMiB, 2.10e12, 0.38, 0.60, 2.0},
    };
}

const ModelCatalog &
ModelCatalog::instance()
{
    static const ModelCatalog catalog;
    return catalog;
}

StatusOr<ModelProfile>
ModelCatalog::find(const std::string &name) const
{
    for (const auto &p : profiles_) {
        if (p.name == name)
            return p;
    }
    return Status::not_found("unknown model: " + name);
}

bool
ModelCatalog::contains(const std::string &name) const
{
    for (const auto &p : profiles_) {
        if (p.name == name)
            return true;
    }
    return false;
}

std::vector<std::string>
ModelCatalog::names() const
{
    std::vector<std::string> out;
    out.reserve(profiles_.size());
    for (const auto &p : profiles_)
        out.push_back(p.name);
    return out;
}

} // namespace tacc::workload
